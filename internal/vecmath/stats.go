package vecmath

import (
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance using Welford's online
// algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples observed.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or 0 with no samples.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 with fewer than one sample.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the Bessel-corrected sample variance, or 0 with
// fewer than two samples.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// VectorWelford accumulates per-dimension streaming mean and variance for
// fixed-dimension vectors. Construct with NewVectorWelford.
type VectorWelford struct {
	dims []Welford
}

// NewVectorWelford returns an accumulator for dim-dimensional vectors.
func NewVectorWelford(dim int) *VectorWelford {
	return &VectorWelford{dims: make([]Welford, dim)}
}

// Dim returns the vector dimension the accumulator was built for.
func (vw *VectorWelford) Dim() int { return len(vw.dims) }

// Add folds one vector into the accumulator. Extra elements beyond the
// configured dimension are ignored; missing elements are treated as absent
// (their dimension statistics do not advance).
func (vw *VectorWelford) Add(v []float64) {
	n := len(v)
	if n > len(vw.dims) {
		n = len(vw.dims)
	}
	for i := 0; i < n; i++ {
		vw.dims[i].Add(v[i])
	}
}

// Means returns the per-dimension means.
func (vw *VectorWelford) Means() []float64 {
	out := make([]float64, len(vw.dims))
	for i := range vw.dims {
		out[i] = vw.dims[i].Mean()
	}
	return out
}

// StdDevs returns the per-dimension population standard deviations.
func (vw *VectorWelford) StdDevs() []float64 {
	out := make([]float64, len(vw.dims))
	for i := range vw.dims {
		out[i] = vw.dims[i].StdDev()
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of v using linear
// interpolation between closest ranks. v is not modified. An empty input
// returns NaN.
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	sorted := Clone(v)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice, avoiding
// the copy and sort.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	q = Clamp(q, 0, 1)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Entropy returns the Shannon entropy, in bits, of the empirical
// distribution described by the non-negative counts. Zero counts contribute
// nothing. A zero-total input returns 0.
func Entropy(counts []float64) float64 {
	total := Sum(counts)
	if total <= 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := c / total
		h -= p * math.Log2(p)
	}
	return h
}

// Histogram buckets the values of v into n equal-width bins spanning
// [min, max]. Values outside the range clamp to the edge bins. n must be
// positive; a non-positive n returns nil.
func Histogram(v []float64, min, max float64, n int) []int {
	if n <= 0 {
		return nil
	}
	bins := make([]int, n)
	if len(v) == 0 {
		return bins
	}
	width := (max - min) / float64(n)
	for _, x := range v {
		var idx int
		if width > 0 {
			idx = int((x - min) / width)
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		bins[idx]++
	}
	return bins
}
