// AVX2+FMA micro-kernels of the blocked BMU engine. Plan 9 assembler,
// operand order src..dst: VFMADD231PD a, b, c computes c += b*a.
//
// Both kernels require n > 0 and n ≡ 0 (mod 4); the Go wrappers round
// the dimension down and add the scalar tail themselves. Accumulation
// order differs from the canonical scalar kernels by design — these feed
// the candidate generator only (see gemm.go).

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func mul2x4AVX(x0, x1, w0, w1, w2, w3 *float64, n int, out *float64)
//
// The 2-record × 4-unit dot micro-block: out[0..3] = x0·w{0..3},
// out[4..7] = x1·w{0..3}, over the first n elements. Eight independent
// FMA accumulator chains saturate both FMA ports at 4-cycle latency;
// each loaded x vector is reused across four weight rows and each weight
// vector across both records.
TEXT ·mul2x4AVX(SB), NOSPLIT, $0-64
	MOVQ x0+0(FP), SI
	MOVQ x1+8(FP), DI
	MOVQ w0+16(FP), R8
	MOVQ w1+24(FP), R9
	MOVQ w2+32(FP), R10
	MOVQ w3+40(FP), R11
	MOVQ n+48(FP), CX
	MOVQ out+56(FP), DX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ AX, AX

loop:
	VMOVUPD (SI)(AX*1), Y8
	VMOVUPD (DI)(AX*1), Y9
	VMOVUPD (R8)(AX*1), Y10
	VMOVUPD (R9)(AX*1), Y11
	VMOVUPD (R10)(AX*1), Y12
	VMOVUPD (R11)(AX*1), Y13
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y11, Y8, Y1
	VFMADD231PD Y12, Y8, Y2
	VFMADD231PD Y13, Y8, Y3
	VFMADD231PD Y10, Y9, Y4
	VFMADD231PD Y11, Y9, Y5
	VFMADD231PD Y12, Y9, Y6
	VFMADD231PD Y13, Y9, Y7
	ADDQ $32, AX
	SUBQ $4, CX
	JNZ  loop

	// Horizontal reductions: fold each 4-lane accumulator to a scalar.
	VEXTRACTF128 $1, Y0, X8
	VADDPD       X8, X0, X0
	VHADDPD      X0, X0, X0
	VMOVSD       X0, (DX)
	VEXTRACTF128 $1, Y1, X8
	VADDPD       X8, X1, X1
	VHADDPD      X1, X1, X1
	VMOVSD       X1, 8(DX)
	VEXTRACTF128 $1, Y2, X8
	VADDPD       X8, X2, X2
	VHADDPD      X2, X2, X2
	VMOVSD       X2, 16(DX)
	VEXTRACTF128 $1, Y3, X8
	VADDPD       X8, X3, X3
	VHADDPD      X3, X3, X3
	VMOVSD       X3, 24(DX)
	VEXTRACTF128 $1, Y4, X8
	VADDPD       X8, X4, X4
	VHADDPD      X4, X4, X4
	VMOVSD       X4, 32(DX)
	VEXTRACTF128 $1, Y5, X8
	VADDPD       X8, X5, X5
	VHADDPD      X5, X5, X5
	VMOVSD       X5, 40(DX)
	VEXTRACTF128 $1, Y6, X8
	VADDPD       X8, X6, X6
	VHADDPD      X6, X6, X6
	VMOVSD       X6, 48(DX)
	VEXTRACTF128 $1, Y7, X8
	VADDPD       X8, X7, X7
	VHADDPD      X7, X7, X7
	VMOVSD       X7, 56(DX)
	VZEROUPPER
	RET

// func sumSquaresAVX(x *float64, n int) float64
//
// Two-chain squared-norm reduction over the first n elements.
TEXT ·sumSquaresAVX(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), SI
	MOVQ n+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $7, BX        // n % 8 != 0 → one leading 4-wide step
	JZ   loop8
	VMOVUPD (SI)(AX*1), Y2
	VFMADD231PD Y2, Y2, Y0
	ADDQ $32, AX
	SUBQ $4, CX
	JZ   reduce

loop8:
	VMOVUPD (SI)(AX*1), Y2
	VMOVUPD 32(SI)(AX*1), Y3
	VFMADD231PD Y2, Y2, Y0
	VFMADD231PD Y3, Y3, Y1
	ADDQ $64, AX
	SUBQ $8, CX
	JNZ  loop8

reduce:
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VHADDPD      X0, X0, X0
	VMOVSD       X0, ret+16(FP)
	VZEROUPPER
	RET
