package vecmath

import (
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the quantized candidate-generation engine: reduced-precision
// shadow copies of a weight arena (float32 narrowing, or int8 symmetric
// per-unit-scale quantization with exact i32 dot accumulation) that the
// blocked BMU search scores instead of the float64 arena, shrinking the
// per-tile memory traffic 2–8x. Quantization NEVER changes results: the
// quantized expanded-form distances only nominate candidates, the settle
// margin is widened by a rigorous per-call bound on the quantization error
// (see DotErrBoundQ8 / F32DotErrBound), and every surviving candidate is
// judged by the canonical f64 kernel — so winners, distances, and ties are
// bit-for-bit identical to the scalar scan on every input, exactly like
// the f64 blocked engine in gemm.go.

// Precision selects the candidate-generation rung of the blocked BMU
// search. The zero value is PrecisionAuto.
type Precision uint8

const (
	// PrecisionAuto lets the engine pick: int8 shadow arenas for
	// codebooks of at least QuantAutoMinBlock weights, the plain f64
	// engine below that (tiny codebooks cannot amortize the shadow-arena
	// build and per-record quantization).
	PrecisionAuto Precision = iota
	// PrecisionF64 forces the plain f64 blocked engine (no shadow arena).
	PrecisionF64
	// PrecisionF32 scores candidates against a float32-narrowed shadow
	// arena: half the weight traffic of f64.
	PrecisionF32
	// PrecisionI8 scores candidates against an int8 symmetric per-unit
	// quantized shadow arena with exact i32 dot accumulation: one eighth
	// the weight traffic of f64.
	PrecisionI8
)

// QuantAutoMinBlock is the units×dim codebook size at which PrecisionAuto
// engages the int8 shadow arena. Below it the quantization overhead
// (per-record code generation, error-bound evaluation) outweighs the
// traffic saved on a codebook that already fits in L1/L2.
const QuantAutoMinBlock = 4096

// quantI8MaxDim caps the int8 rung's dimension so the i32 dot
// accumulation provably cannot overflow: every code pair product is at
// most 127², so a dim-length sum stays far below 2³¹ for any dim up to
// this cap (and the asm kernel's per-lane VPMADDWD accumulation stays
// below 2³¹ up to ~10⁶). Wider inputs silently use the f64 engine.
const quantI8MaxDim = 1 << 16

// ParsePrecision parses a precision knob value: "auto" (or empty),
// "f64", "f32", or "i8".
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return PrecisionAuto, nil
	case "f64":
		return PrecisionF64, nil
	case "f32":
		return PrecisionF32, nil
	case "i8":
		return PrecisionI8, nil
	}
	return PrecisionAuto, fmt.Errorf("vecmath: invalid BMU precision %q (want f64, f32, i8, or auto)", s)
}

// String returns the knob spelling of the precision.
func (p Precision) String() string {
	switch p {
	case PrecisionF64:
		return "f64"
	case PrecisionF32:
		return "f32"
	case PrecisionI8:
		return "i8"
	default:
		return "auto"
	}
}

// Effective resolves the precision for a units×dim codebook: Auto engages
// int8 only for codebooks of at least QuantAutoMinBlock weights, and the
// int8 rung falls back to f64 beyond its accumulation-safe dimension cap.
func (p Precision) Effective(units, dim int) Precision {
	switch p {
	case PrecisionF32:
		return PrecisionF32
	case PrecisionI8:
		if dim > quantI8MaxDim {
			return PrecisionF64
		}
		return PrecisionI8
	case PrecisionAuto:
		if units*dim >= QuantAutoMinBlock && dim <= quantI8MaxDim {
			return PrecisionI8
		}
		return PrecisionF64
	default:
		return PrecisionF64
	}
}

// RecordElemBytes is the per-element width of the record tile the rung's
// kernel streams (the dim side of ResolveTileElem's cache-budget fit):
// 1 for int8 codes, 4 for narrowed float32 rows, 8 otherwise.
func (p Precision) RecordElemBytes() int {
	switch p {
	case PrecisionI8:
		return 1
	case PrecisionF32:
		return 4
	default:
		return 8
	}
}

// envPrecision reads the GHSOM_BMU_PRECISION escape hatch once. Invalid
// values are rejected with a one-time warning instead of being silently
// treated as a setting (the same validation contract as GHSOM_GEMM_TILE).
var envPrecision = sync.OnceValue(func() Precision {
	v := os.Getenv("GHSOM_BMU_PRECISION")
	if v == "" {
		return PrecisionAuto
	}
	p, err := ParsePrecision(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghsom: ignoring GHSOM_BMU_PRECISION=%q: want f64, f32, i8, or auto\n", v)
		return PrecisionAuto
	}
	return p
})

// EnvPrecision returns the validated GHSOM_BMU_PRECISION setting
// (PrecisionAuto when unset or invalid).
func EnvPrecision() Precision { return envPrecision() }

// ResolvePrecision applies the knob precedence: an explicit configured
// precision wins, an Auto config defers to GHSOM_BMU_PRECISION, and an
// unset environment leaves Auto (sized per codebook by Effective).
func ResolvePrecision(cfg Precision) Precision {
	if cfg != PrecisionAuto {
		return cfg
	}
	return EnvPrecision()
}

// QuantArena is one immutable reduced-precision shadow copy of a flat
// row-major weight arena, plus the per-unit error tables the settle
// margin needs. Built once per arena state (see QuantCache for mutable
// owners); safe for concurrent read-only use.
type QuantArena struct {
	prec       Precision
	dim, units int
	// stride is the padded row length of w32/q8: dim rounded up to the
	// kernel's vector width (16 codes / 8 floats), the pad lanes zero.
	// Zero pads are exact — they add nothing to either the integer or
	// the float dot — and let the micro-kernel cover whole rows with no
	// scalar tail (which otherwise dominates at awkward dims like 118).
	stride int
	// upad is units rounded up to the micro-kernel's 4-row group, the
	// pad rows all-zero, so the kernel never needs a unit tail either.
	// Score tiles are upad-strided; only the first units entries of a
	// row are meaningful.
	upad    int
	sqrtDim float64

	// w32 is the float32-narrowed arena (PrecisionF32 only), row stride
	// padded.
	w32 []float32
	// q8 holds the symmetric per-unit codes round(w/scale) in
	// [-127, 127] (PrecisionI8 only), row stride padded.
	q8 []int8
	// scale[u] is unit u's quantization step maxAbs(w_u)/127; the
	// dequantized weight is scale[u]*q8.
	scale []float64
	// rnorm[u] is the residual norm ‖w_u − scale[u]·q_u‖ — the exact
	// quantization error mass of unit u, the core term of the settle
	// margin's error bound.
	rnorm []float64
	// wqnorm[u] is ‖scale[u]·q_u‖, the dequantized-weight norm the
	// record-side residual multiplies in the bound's cross term.
	wqnorm []float64
	// maxR/maxWq are the arena-wide maxima of rnorm/wqnorm (NaN entries
	// from NaN-poisoned units excluded — such units can never win in any
	// kernel, so excluding them from the margin is safe, exactly like
	// MaxOrZero over the f64 norm table).
	maxR, maxWq float64
}

// BuildQuantArena quantizes the dim-wide rows of flat at the given rung.
// It returns nil when the precision has no shadow arena (F64/Auto — the
// caller resolves Auto via Effective first), the shape is degenerate, or
// the int8 dimension cap is exceeded; callers treat nil as "use the f64
// engine".
func BuildQuantArena(flat []float64, dim int, prec Precision) *QuantArena {
	if dim <= 0 {
		return nil
	}
	units := len(flat) / dim
	if units == 0 {
		return nil
	}
	qa := &QuantArena{prec: prec, dim: dim, units: units,
		upad: (units + 3) &^ 3, sqrtDim: math.Sqrt(float64(dim))}
	switch prec {
	case PrecisionF32:
		qa.stride = (dim + 7) &^ 7
		qa.w32 = make([]float32, qa.upad*qa.stride)
		for u := 0; u < units; u++ {
			NarrowRecord(flat[u*dim:(u+1)*dim], qa.w32[u*qa.stride:])
		}
	case PrecisionI8:
		if dim > quantI8MaxDim {
			return nil
		}
		qa.stride = (dim + 15) &^ 15
		qa.q8 = make([]int8, qa.upad*qa.stride)
		qa.scale = make([]float64, units)
		qa.rnorm = make([]float64, units)
		qa.wqnorm = make([]float64, units)
		for u := 0; u < units; u++ {
			s, rn, qn := quantizeQ8(flat[u*dim:(u+1)*dim], qa.q8[u*qa.stride:u*qa.stride+dim])
			qa.scale[u], qa.rnorm[u], qa.wqnorm[u] = s, rn, qn
		}
		qa.maxR = MaxOrZero(qa.rnorm)
		qa.maxWq = MaxOrZero(qa.wqnorm)
	default:
		return nil
	}
	return qa
}

// Precision returns the arena's rung.
func (qa *QuantArena) Precision() Precision { return qa.prec }

// Dim returns the quantized row width.
func (qa *QuantArena) Dim() int { return qa.dim }

// Units returns the quantized row count.
func (qa *QuantArena) Units() int { return qa.units }

// Scales returns the per-unit quantization steps (int8 rung only; nil
// otherwise). Read-only.
func (qa *QuantArena) Scales() []float64 { return qa.scale }

// Bytes returns the heap footprint of the shadow arena and its error
// tables — the NormBytes-style accounting hook. A nil arena reports 0.
func (qa *QuantArena) Bytes() int {
	if qa == nil {
		return 0
	}
	return len(qa.w32)*4 + len(qa.q8) + (len(qa.scale)+len(qa.rnorm)+len(qa.wqnorm))*8
}

// quantizeQ8 symmetric-quantizes one weight row: scale = maxAbs(w)/127,
// codes = round(w/scale) clamped to [-127, 127], with the residual norm
// ‖w − scale·q‖ and the dequantized norm ‖scale·q‖ computed in the same
// pass. NaN elements (ignored by the maxAbs scan) take code 0 and poison
// the norms to NaN, which excludes the unit from the arena maxima and —
// via its NaN f64 norm — from candidacy, matching the scalar kernels
// where such a unit can never win. An all-zero row quantizes exactly
// (scale 0, all codes 0). A row with ±Inf forces the whole arena's
// searches to the scalar path anyway (its f64 norm makes maxN infinite,
// failing every record's overflow guard), so its codes are never read.
func quantizeQ8(w []float64, dst []int8) (scale, residNorm, quantNorm float64) {
	m := maxAbs(w)
	if m == 0 || math.IsInf(m, 0) {
		for j := range dst {
			dst[j] = 0
		}
		if m == 0 {
			return 0, 0, 0
		}
		return 0, math.Inf(1), 0
	}
	scale = m / 127
	inv := 1 / scale
	var rs, qs float64
	for j, v := range w {
		q := math.Round(v * inv)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		} else if q != q { // NaN element: code 0, residual poisons the norms
			q = 0
		}
		dst[j] = int8(q)
		wq := scale * q
		r := v - wq
		rs += r * r
		qs += wq * wq
	}
	return scale, math.Sqrt(rs), math.Sqrt(qs)
}

// maxAbs returns the largest absolute element under plain > comparison
// (NaN ignored), or 0 for an empty slice.
func maxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// QuantizeRecordQ8 quantizes one record row for the int8 rung: dst (at
// least len(x) codes) receives round(x/scale) with scale = maxAbs(x)/127,
// and the returned residual norm ‖x − scale·q‖ feeds the settle margin's
// error bound. Degenerate rows (±Inf, NaN) return a NaN/Inf residual;
// such rows fail the overflow guard before their codes are ever scored.
func QuantizeRecordQ8(x []float64, dst []int8) (scale, residNorm float64) {
	scale, residNorm, _ = quantizeQ8(x, dst)
	return scale, residNorm
}

// NarrowRecord narrows one record row to float32 for the f32 rung. dst
// must have at least len(x) elements.
func NarrowRecord(x []float64, dst []float32) {
	for j, v := range x {
		dst[j] = float32(v)
	}
}

// Stride returns the zero-padded row length of the shadow arena; record
// tiles handed to the MulBatch kernels must use the same stride with
// zeroed pad lanes.
func (qa *QuantArena) Stride() int { return qa.stride }

// UnitsPadded returns the unit count rounded up to the kernel's 4-row
// group — the row stride of the score tiles the MulBatch kernels fill.
func (qa *QuantArena) UnitsPadded() int { return qa.upad }

// MulBatchQ8 computes the raw integer dot block of the int8 rung:
// out[r*UnitsPadded()+u] = Σ_j xq[r*Stride()+j]·q8[u*Stride()+j],
// accumulated exactly in int32 and stored as float64 (exact — the sums
// are far below 2⁵³). xq holds rows Stride()-strided quantized record
// rows (QuantizeRecordQ8 plus zeroed pads); out must have
// rows*UnitsPadded() elements (entries past Units() in a row come from
// all-zero pad rows and are meaningless). The caller applies the
// scales: dot ≈ recScale·Scales()[u]·out[r*UnitsPadded()+u]. Computing
// over the full padded shape is exact — zero pads contribute nothing —
// and keeps whole rows and whole unit groups inside the vector
// micro-kernel with no scalar tails.
func (qa *QuantArena) MulBatchQ8(xq []int8, rows int, out []float64) {
	mulBatchQ8(xq, qa.q8, out, rows, qa.upad, qa.stride)
}

// MulBatchF32 computes the float32 dot block of the f32 rung:
// out[r*UnitsPadded()+u] = x32 row r · w32 row u, accumulated in float32
// with an unspecified association (multi-chain portable kernel or
// AVX2+FMA assembly) and widened exactly to float64. x32 holds rows
// Stride()-strided narrowed record rows (NarrowRecord plus zeroed pads);
// out must have rows*UnitsPadded() elements.
func (qa *QuantArena) MulBatchF32(x32 []float32, rows int, out []float64) {
	mulBatchF32(x32, qa.w32, out, rows, qa.upad, qa.stride)
}

// DotErrBoundQ8 bounds |x·w_u − xs·ws_u·(xq·q_u)| over every unit u of
// the int8 arena, for a record of norm √xn = sqrtXn quantized with
// residual norm residNorm. Writing x = x̃+e and w = w̃+r (dequantized
// value plus residual), the dot error is x̃·r + e·w̃ + e·r, so by
// Cauchy-Schwarz it is at most
//
//	(‖x‖+‖e‖)·max‖r‖ + ‖e‖·(max‖w̃‖ + max‖r‖)
//
// using ‖x̃‖ ≤ ‖x‖+‖e‖. The trailing 2⁻⁵⁰⁰-scale term covers the only
// way the computed norms can undercount the true ones: squares of
// deep-subnormal residual elements flushing to zero inside the norm
// sums, each of which loses at most 2⁻¹⁰⁷⁴ of squared mass per element.
// Ordinary rounding of the norms and of this formula itself is relative
// (~dim·2⁻⁵³) and covered by the QuantSettleSlack safety factor.
func (qa *QuantArena) DotErrBoundQ8(sqrtXn, residNorm float64) float64 {
	return (sqrtXn+residNorm)*qa.maxR + residNorm*(qa.maxWq+qa.maxR) +
		(sqrtXn+residNorm+qa.maxR+qa.maxWq+1)*qa.sqrtDim*0x1p-500
}

// F32DotErrBound bounds |x·w_u − d̃_u| over every unit for the f32 rung:
// narrowing both operands and accumulating ≤ dim+2 roundings at unit
// 2⁻²⁴ against Σ|x_j||w_j| ≤ √(xn·maxN) ≤ (xn+maxN)/2 gives the first
// term (stated with ≥4x headroom); the second covers all absolute
// (subnormal flush) errors, each at most ~2⁻¹⁴⁹·(|x_j|+|w_j|) per
// element, again with orders-of-magnitude headroom. Valid only under
// F32GuardOK, which also rules out overflow of any f32 intermediate.
func F32DotErrBound(dim int, xn, maxN float64) float64 {
	return float64(dim+8)*0x1p-23*(xn+maxN) +
		float64(dim)*0x1p-126*(math.Sqrt(xn)+math.Sqrt(maxN)+1)
}

// f32Guard is the magnitude ceiling of the f32 rung: with
// xn+maxN < MaxFloat32/4, every partial product and sum in the f32 dot
// is bounded by √(xn·maxN)·(1+ε) ≤ (xn+maxN)/2·(1+ε) < MaxFloat32, so
// nothing overflows and F32DotErrBound's error model holds.
const f32Guard = math.MaxFloat32 / 4

// F32GuardOK reports whether a record of squared norm xn may take the
// f32 candidate path against weights topping out at maxNorm2; written so
// NaN fails. Records failing it fall back per-row exactly like the f64
// engine's overflow guard.
func F32GuardOK(xn, maxNorm2 float64) bool { return xn+maxNorm2 < f32Guard }

// quantSafety inflates the quantization-error settle slack by one part
// in 2²⁰, covering the relative rounding (~dim·2⁻⁵³) of the error-bound
// formula and of the norm tables it reads. Like ExpandSettleRel, the
// inflation only ever admits extra candidates for the exact settle.
const quantSafety = 1 + 1.0/(1<<20)

// QuantSettleSlack converts a per-dot quantization error bound into the
// extra settle-margin width of the quantized candidate generator. Each
// expanded distance carries at most 2e of quantization error (the dot
// enters doubled), and the winner-vs-minimum comparison stacks the
// winner's and the nominee's errors, so 4e — inflated by quantSafety —
// guarantees the canonical winner is always admitted.
func QuantSettleSlack(e float64) float64 { return 4 * e * quantSafety }

// mulBatchQ8Generic is the portable int8 dot-block kernel: one record row
// against unit pairs, two independent i32 accumulator chains.
func mulBatchQ8Generic(xq, codes []int8, out []float64, n, units, dim int) {
	for r := 0; r < n; r++ {
		xr := xq[r*dim : (r+1)*dim]
		or := out[r*units : (r+1)*units]
		u := 0
		for ; u+2 <= units; u += 2 {
			w0 := codes[(u+0)*dim : (u+1)*dim]
			w1 := codes[(u+1)*dim : (u+2)*dim]
			var a0, a1 int32
			for j, v8 := range xr {
				v := int32(v8)
				a0 += v * int32(w0[j])
				a1 += v * int32(w1[j])
			}
			or[u], or[u+1] = float64(a0), float64(a1)
		}
		if u < units {
			w0 := codes[u*dim : (u+1)*dim]
			var a0 int32
			for j, v8 := range xr {
				a0 += int32(v8) * int32(w0[j])
			}
			or[u] = float64(a0)
		}
	}
}

// mulBatchF32Generic is the portable float32 dot-block kernel, the f32
// shape of mulBatchQ8Generic. Accumulation stays in float32 (that is the
// rung's error model); the widening to float64 on store is exact.
func mulBatchF32Generic(x32, w32 []float32, out []float64, n, units, dim int) {
	for r := 0; r < n; r++ {
		xr := x32[r*dim : (r+1)*dim]
		or := out[r*units : (r+1)*units]
		u := 0
		for ; u+2 <= units; u += 2 {
			w0 := w32[(u+0)*dim : (u+1)*dim]
			w1 := w32[(u+1)*dim : (u+2)*dim]
			var a0, a1 float32
			for j, v := range xr {
				a0 += v * w0[j]
				a1 += v * w1[j]
			}
			or[u], or[u+1] = float64(a0), float64(a1)
		}
		if u < units {
			w0 := w32[u*dim : (u+1)*dim]
			var a0 float32
			for j, v := range xr {
				a0 += v * w0[j]
			}
			or[u] = float64(a0)
		}
	}
}

// quantSnapshot is one immutable generation of a QuantCache: the shadow
// arena of a specific (version, dim, units, precision) state. Like
// normSnapshot, it is never mutated after publication.
type quantSnapshot struct {
	version uint64
	dim     int
	units   int
	prec    Precision
	arena   *QuantArena // nil when the shape refused to quantize
}

// QuantCache is the shadow-arena sibling of NormCache: a versioned,
// lock-free, copy-on-invalidate cache of one BuildQuantArena result,
// keyed by the owner's mutation counter plus the arena shape and the
// requested rung. The staleness contract is identical to NormCache —
// every weight mutation bumps the owner's version, so a mutated arena
// re-quantizes lazily on the next Sync and a stale shadow is
// structurally impossible; concurrent first-touch syncs may race to
// publish identical snapshots, which is benign. The zero QuantCache is
// ready to use.
type QuantCache struct {
	snap atomic.Pointer[quantSnapshot]
}

// Sync returns the shadow arena of flat's current state at the given
// rung, rebuilding it only when the version, shape, or precision differs
// from the cached snapshot. The returned arena (possibly nil for shapes
// that refuse to quantize) is immutable and stays valid even if another
// goroutine invalidates the cache.
func (c *QuantCache) Sync(flat []float64, dim int, version uint64, prec Precision) *QuantArena {
	units := 0
	if dim > 0 {
		units = len(flat) / dim
	}
	if s := c.snap.Load(); s != nil && s.version == version && s.dim == dim && s.units == units && s.prec == prec {
		return s.arena
	}
	s := &quantSnapshot{version: version, dim: dim, units: units, prec: prec,
		arena: BuildQuantArena(flat, dim, prec)}
	c.snap.Store(s)
	return s.arena
}

// ArgMinDistanceBatchQuant is the package-level form of the quantized
// batch search, servicing callers without worker identity from the
// shared scratch pool (see the BMUScratch method).
func ArgMinDistanceBatchQuant(x View, flat []float64, norms []float64, qa *QuantArena, out []int, outDist []float64) {
	sc := bmuBatchPool.Get().(*BMUScratch)
	sc.ArgMinDistanceBatchQuant(x, flat, norms, qa, out, outDist)
	bmuBatchPool.Put(sc)
}

// ArgMinDistanceBatchQuant runs the batched BMU search with quantized
// candidate generation: per tile, record rows are quantized (int8 codes
// with residual norms) or narrowed (float32), the reduced-precision dot
// block replaces MulBatchT, and the settle margin is widened by the
// rigorous quantization-error bound before the canonical settle — so
// results stay bit-for-bit identical to ArgMinDistance per row, exactly
// like the f64 engine (same contract as ArgMinDistanceBatch, including
// nil out/outDist and the index-only single-candidate fast path). A nil,
// mismatched, or f64 arena simply runs the plain engine.
func (s *BMUScratch) ArgMinDistanceBatchQuant(x View, flat []float64, norms []float64, qa *QuantArena, out []int, outDist []float64) {
	n := x.Rows()
	if n == 0 {
		return
	}
	dim := x.Dim()
	units := 0
	if dim > 0 {
		units = len(flat) / dim
	}
	if qa == nil || units == 0 || units*dim < gemmMinBlock ||
		qa.dim != dim || qa.units != units ||
		(qa.prec != PrecisionF32 && qa.prec != PrecisionI8) {
		s.ArgMinDistanceBatch(x, flat, norms, out, outDist)
		return
	}
	if norms == nil {
		s.norms = SquaredNorms(flat, dim, s.norms[:0])
		norms = s.norms
	}
	maxN := MaxOrZero(norms)
	tile := s.Tile.Rows()
	if n < tile {
		tile = n
	}
	upad := qa.upad
	if cap(s.scores) < tile*upad {
		s.scores = make([]float64, tile*upad)
	}
	i8 := qa.prec == PrecisionI8
	stride := qa.stride
	if i8 {
		if cap(s.xq) < tile*stride {
			s.xq = make([]int8, tile*stride)
		}
		if cap(s.rowScale) < tile {
			s.rowScale = make([]float64, tile)
			s.rowResid = make([]float64, tile)
		}
	} else if cap(s.x32) < tile*stride {
		s.x32 = make([]float32, tile*stride)
	}
	for lo := 0; lo < n; lo += tile {
		hi := lo + tile
		if hi > n {
			hi = n
		}
		sub := x.Slice(lo, hi)
		rows := hi - lo
		scores := s.scores[:rows*upad]
		if i8 {
			xq := s.xq[:tile*stride]
			for i := 0; i < rows; i++ {
				s.rowScale[i], s.rowResid[i] = QuantizeRecordQ8(sub.Row(i), xq[i*stride:i*stride+dim])
				for j := i*stride + dim; j < (i+1)*stride; j++ {
					xq[j] = 0 // zero the pad: scratch may be reused at another shape
				}
			}
			qa.MulBatchQ8(xq[:rows*stride], rows, scores)
		} else {
			x32 := s.x32[:tile*stride]
			for i := 0; i < rows; i++ {
				NarrowRecord(sub.Row(i), x32[i*stride:i*stride+dim])
				for j := i*stride + dim; j < (i+1)*stride; j++ {
					x32[j] = 0
				}
			}
			qa.MulBatchF32(x32[:rows*stride], rows, scores)
		}
		for i := 0; i < rows; i++ {
			xi := sub.Row(i)
			var best int
			var bestVal float64
			if i8 {
				best, bestVal = settleRowQ8(xi, flat, norms, maxN, qa,
					s.rowScale[i], s.rowResid[i], scores[i*upad:i*upad+units], dim, outDist != nil)
			} else {
				best, bestVal = settleRowF32(xi, flat, norms, maxN,
					scores[i*upad:i*upad+units], dim, outDist != nil)
			}
			if out != nil {
				out[lo+i] = best
			}
			if outDist != nil {
				outDist[lo+i] = bestVal
			}
		}
	}
}

// settleRowQ8 is settleRow for the int8 rung: raw integer dots in dots
// are rescaled into expanded distances, and the settle threshold is
// widened by the record's rigorous quantization-error slack before the
// shared candidate settle. Degenerate magnitudes fall back to the scalar
// scan exactly like settleRow.
func settleRowQ8(xi, flat, norms []float64, maxN float64, qa *QuantArena, xs, exn float64, dots []float64, dim int, needDist bool) (int, float64) {
	xn := sumSquares(xi)
	if !(xn+maxN < overflowGuard) {
		return ArgMinDistance(xi, flat)
	}
	minD := rescaleMinQ8(dots, norms, qa.scale, xn, xs)
	thr := minD + ExpandSettleRel*(xn+maxN) + QuantSettleSlack(qa.DotErrBoundQ8(math.Sqrt(xn), exn))
	return settleCandidates(xi, flat, dots, thr, dim, needDist)
}

// settleRowF32 is settleRow for the f32 rung: the widened dots are
// already plain expanded dot products, and the margin grows by the f32
// rung's dimension-scaled error slack. Rows outside the f32 magnitude
// guard (where narrowing could overflow) fall back to the scalar scan.
func settleRowF32(xi, flat, norms []float64, maxN float64, dots []float64, dim int, needDist bool) (int, float64) {
	xn := sumSquares(xi)
	if !(xn+maxN < overflowGuard) || !F32GuardOK(xn, maxN) {
		return ArgMinDistance(xi, flat)
	}
	minD := math.Inf(1)
	for u, nrm := range norms {
		d := xn + nrm - 2*dots[u]
		dots[u] = d
		if d < minD {
			minD = d
		}
	}
	thr := minD + ExpandSettleRel*(xn+maxN) + QuantSettleSlack(F32DotErrBound(dim, xn, maxN))
	return settleCandidates(xi, flat, dots, thr, dim, needDist)
}
