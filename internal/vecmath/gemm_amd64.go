package vecmath

// amd64 dispatch of the blocked BMU engine: the micro-kernels in
// gemm_amd64.s are used when the CPU reports AVX2 + FMA and the OS has
// enabled YMM state. Everything else — including the exact settle — runs
// the portable code in gemm.go, so kernel selection can never change
// results, only speed.

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

//go:noescape
func mul2x4AVX(x0, x1, w0, w1, w2, w3 *float64, n int, out *float64)

//go:noescape
func sumSquaresAVX(x *float64, n int) float64

// useAVX gates the assembly micro-kernels. It is a variable (not a
// constant) so tests can force the portable path and assert both produce
// identical candidate blocks.
var useAVX = detectAVX()

func detectAVX() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuidex(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c&fma == 0 || c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 { // XMM and YMM state OS-enabled
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	return b&(1<<5) != 0 // AVX2
}

// sumSquares returns the squared Euclidean norm of v. The accumulation
// order is unspecified (SIMD when available); candidate-generation use
// only.
func sumSquares(v []float64) float64 {
	if n := len(v) &^ 3; useAVX && n > 0 {
		sum := sumSquaresAVX(&v[0], n)
		for _, x := range v[n:] {
			sum += x * x
		}
		return sum
	}
	return sumSquaresGeneric(v)
}

// mulBatchT dispatches the records×units dot block to the AVX or the
// portable kernel.
func mulBatchT(x View, flat []float64, out []float64, n, units, dim int) {
	if !useAVX || dim < 4 {
		mulBatchGeneric(x, flat, out, n, units, dim)
		return
	}
	dim4 := dim &^ 3
	r := 0
	for ; r < n; r += 2 {
		x0 := x.Row(r)[:dim]
		x1 := x0
		o0 := out[r*units : (r+1)*units]
		o1 := o0
		if r+1 < n {
			x1 = x.Row(r + 1)[:dim]
			o1 = out[(r+1)*units : (r+2)*units]
		}
		u := 0
		var res [8]float64
		for ; u+4 <= units; u += 4 {
			w0 := flat[(u+0)*dim : (u+1)*dim]
			w1 := flat[(u+1)*dim : (u+2)*dim]
			w2 := flat[(u+2)*dim : (u+3)*dim]
			w3 := flat[(u+3)*dim : (u+4)*dim]
			mul2x4AVX(&x0[0], &x1[0], &w0[0], &w1[0], &w2[0], &w3[0], dim4, &res[0])
			for j := dim4; j < dim; j++ {
				v0, v1 := x0[j], x1[j]
				res[0] += v0 * w0[j]
				res[1] += v0 * w1[j]
				res[2] += v0 * w2[j]
				res[3] += v0 * w3[j]
				res[4] += v1 * w0[j]
				res[5] += v1 * w1[j]
				res[6] += v1 * w2[j]
				res[7] += v1 * w3[j]
			}
			o0[u], o0[u+1], o0[u+2], o0[u+3] = res[0], res[1], res[2], res[3]
			o1[u], o1[u+1], o1[u+2], o1[u+3] = res[4], res[5], res[6], res[7]
		}
		// Unit tail (1–3 rows): reuse the micro-kernel with repeated rows.
		if u < units {
			w0 := flat[u*dim : (u+1)*dim]
			w1, w2, w3 := w0, w0, w0
			if u+1 < units {
				w1 = flat[(u+1)*dim : (u+2)*dim]
			}
			if u+2 < units {
				w2 = flat[(u+2)*dim : (u+3)*dim]
			}
			mul2x4AVX(&x0[0], &x1[0], &w0[0], &w1[0], &w2[0], &w3[0], dim4, &res[0])
			for j := dim4; j < dim; j++ {
				v0, v1 := x0[j], x1[j]
				res[0] += v0 * w0[j]
				res[1] += v0 * w1[j]
				res[2] += v0 * w2[j]
				res[4] += v1 * w0[j]
				res[5] += v1 * w1[j]
				res[6] += v1 * w2[j]
			}
			for k := 0; u+k < units; k++ {
				o0[u+k] = res[k]
				o1[u+k] = res[4+k]
			}
		}
	}
}
