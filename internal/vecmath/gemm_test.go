package vecmath

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// naiveDots is the reference for MulBatchT: per-pair Dot in canonical
// order.
func naiveDots(x View, flat []float64, dim int) []float64 {
	units := len(flat) / dim
	out := make([]float64, x.Rows()*units)
	for r := 0; r < x.Rows(); r++ {
		for u := 0; u < units; u++ {
			out[r*units+u] = Dot(x.Row(r), flat[u*dim:(u+1)*dim])
		}
	}
	return out
}

func TestMulBatchTMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, units, dim int }{
		{1, 1, 1}, {2, 3, 5}, {4, 2, 8}, {5, 7, 3}, {9, 5, 17},
		{33, 9, 118}, {4, 4, 4}, {7, 1, 31}, {3, 8, 2},
	} {
		flat := make([]float64, tc.units*tc.dim)
		data := make([]float64, tc.n*tc.dim)
		for i := range flat {
			flat[i] = rng.NormFloat64()
		}
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		mat, err := MatrixOver(data, tc.n, tc.dim)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, tc.n*tc.units)
		MulBatchT(mat.View(), flat, got)
		want := naiveDots(mat.View(), flat, tc.dim)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%+v: dot[%d] = %v, want %v", tc, i, got[i], want[i])
			}
		}
	}
}

// TestMulBatchTSubsetView checks the kernel over a non-contiguous
// index-subset view, the shape the level-synchronous routing descent
// feeds it.
func TestMulBatchTSubsetView(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, units, dim = 12, 5, 7
	flat := make([]float64, units*dim)
	data := make([]float64, n*dim)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	mat, err := MatrixOver(data, n, dim)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{11, 0, 5, 5, 2, 9, 1}
	v := mat.Subset(idx)
	got := make([]float64, len(idx)*units)
	MulBatchT(v, flat, got)
	want := naiveDots(v, flat, dim)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("subset dot[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// scalarArgMin applies the reference kernel per row.
func scalarArgMin(x View, flat []float64) ([]int, []float64) {
	idx := make([]int, x.Rows())
	d2 := make([]float64, x.Rows())
	for i := 0; i < x.Rows(); i++ {
		idx[i], d2[i] = ArgMinDistance(x.Row(i), flat)
	}
	return idx, d2
}

// assertBatchMatchesScalar runs the blocked engine (with and without a
// supplied norm table) and requires bitwise-identical indices and
// distances against the scalar scan.
func assertBatchMatchesScalar(t *testing.T, name string, x View, flat []float64) {
	t.Helper()
	wantIdx, wantD2 := scalarArgMin(x, flat)
	for _, withNorms := range []bool{false, true} {
		var norms []float64
		if withNorms {
			norms = SquaredNorms(flat, x.Dim(), nil)
		}
		gotIdx := make([]int, x.Rows())
		gotD2 := make([]float64, x.Rows())
		ArgMinDistanceBatch(x, flat, norms, gotIdx, gotD2)
		for i := range wantIdx {
			if gotIdx[i] != wantIdx[i] {
				t.Fatalf("%s (norms=%v): row %d argmin = %d, want %d", name, withNorms, i, gotIdx[i], wantIdx[i])
			}
			if math.Float64bits(gotD2[i]) != math.Float64bits(wantD2[i]) {
				t.Fatalf("%s (norms=%v): row %d dist bits = %x, want %x (%v vs %v)",
					name, withNorms, i, math.Float64bits(gotD2[i]), math.Float64bits(wantD2[i]), gotD2[i], wantD2[i])
			}
		}
		// Index-only mode (nil outDist) must select identical winners.
		idxOnly := make([]int, x.Rows())
		ArgMinDistanceBatch(x, flat, norms, idxOnly, nil)
		for i := range wantIdx {
			if idxOnly[i] != wantIdx[i] {
				t.Fatalf("%s (norms=%v, index-only): row %d argmin = %d, want %d",
					name, withNorms, i, idxOnly[i], wantIdx[i])
			}
		}
	}
}

func TestArgMinDistanceBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	t.Run("random", func(t *testing.T) {
		for _, tc := range []struct{ n, units, dim int }{
			{1, 1, 1}, {3, 4, 2}, {40, 64, 8}, {65, 256, 32}, {100, 25, 118}, {7, 3, 5},
		} {
			flat := make([]float64, tc.units*tc.dim)
			data := make([]float64, tc.n*tc.dim)
			for i := range flat {
				flat[i] = rng.NormFloat64()
			}
			for i := range data {
				data[i] = rng.NormFloat64()
			}
			mat, _ := MatrixOver(data, tc.n, tc.dim)
			assertBatchMatchesScalar(t, "random", mat.View(), flat)
		}
	})
	t.Run("exact ties", func(t *testing.T) {
		// Duplicate weight rows and records equal to weights: zero-distance
		// exact ties must resolve to the lowest unit index.
		const dim = 6
		base := make([]float64, dim)
		for i := range base {
			base[i] = rng.NormFloat64()
		}
		flat := make([]float64, 0, 5*dim)
		for k := 0; k < 5; k++ {
			flat = append(flat, base...) // five identical units
		}
		data := append([]float64(nil), base...)
		data = append(data, base...)
		mat, _ := MatrixOver(data, 2, dim)
		assertBatchMatchesScalar(t, "ties", mat.View(), flat)
	})
	t.Run("near ties", func(t *testing.T) {
		// Units separated by one ULP in one coordinate: the settle margin
		// must hand them all to the exact kernel.
		const dim, units = 4, 8
		flat := make([]float64, units*dim)
		for u := 0; u < units; u++ {
			for j := 0; j < dim; j++ {
				flat[u*dim+j] = 0.5
			}
			flat[u*dim] = math.Nextafter(0.5, 1) // vary the first coord by ULPs
			for k := 0; k < u; k++ {
				flat[u*dim] = math.Nextafter(flat[u*dim], 1)
			}
		}
		data := []float64{0.5, 0.5, 0.5, 0.5, 0.25, 0.5, 0.75, 0.5}
		mat, _ := MatrixOver(data, 2, dim)
		assertBatchMatchesScalar(t, "near ties", mat.View(), flat)
	})
	t.Run("signed zero and denormals", func(t *testing.T) {
		tiny := math.SmallestNonzeroFloat64
		flat := []float64{0, 0, math.Copysign(0, -1), tiny, tiny, -tiny, 1, 1}
		data := []float64{math.Copysign(0, -1), 0, tiny, 2 * tiny}
		mat, _ := MatrixOver(data, 2, 2)
		assertBatchMatchesScalar(t, "zeros", mat.View(), flat)
	})
	t.Run("non-finite", func(t *testing.T) {
		inf, nan := math.Inf(1), math.NaN()
		flat := []float64{1, 2, nan, 4, 5, inf, -1, -2}
		data := []float64{nan, nan, 1, 1, inf, 0, 1e308, -1e308}
		mat, _ := MatrixOver(data, 4, 2)
		assertBatchMatchesScalar(t, "non-finite", mat.View(), flat)
	})
	t.Run("overflow magnitudes", func(t *testing.T) {
		// Norms overflow while exact distances stay finite: the guard must
		// route these to the scalar scan.
		big := 1.5e154
		flat := []float64{big, big, big, -big, 1, 1}
		data := []float64{big, big, 1, 1}
		mat, _ := MatrixOver(data, 2, 2)
		assertBatchMatchesScalar(t, "overflow", mat.View(), flat)
	})
	t.Run("trailing partial weight row", func(t *testing.T) {
		flat := []float64{1, 2, 3, 4, 5} // 2 complete rows of dim 2 + partial
		data := []float64{4.4, 5.5, 1, 2}
		mat, _ := MatrixOver(data, 2, 2)
		assertBatchMatchesScalar(t, "partial", mat.View(), flat)
	})
	t.Run("no weights", func(t *testing.T) {
		data := []float64{1, 2, 3}
		mat, _ := MatrixOver(data, 1, 3)
		assertBatchMatchesScalar(t, "no weights", mat.View(), nil)
	})
}

// FuzzArgMinDistanceBatch fuzzes record/unit blocks — including exact-tie
// rows, signed zeros, and denormals seeded below — asserting the blocked
// and settled argmin is bitwise equal to the scalar scan on every row.
func FuzzArgMinDistanceBatch(f *testing.F) {
	le := binary.LittleEndian
	pack := func(dim byte, vals ...float64) []byte {
		b := []byte{dim}
		for _, v := range vals {
			var w [8]byte
			le.PutUint64(w[:], math.Float64bits(v))
			b = append(b, w[:]...)
		}
		return b
	}
	tiny := math.SmallestNonzeroFloat64
	f.Add(pack(2, 1, 2, 1, 2, 1, 2, 1, 2)) // exact ties
	f.Add(pack(1, 0, math.Copysign(0, -1), tiny, -tiny))
	f.Add(pack(3, 1, 2, 3, 3, 2, 1, 1.0000000001, 2, 3))
	f.Add(pack(2, math.NaN(), 1, math.Inf(1), -1, 5, 6))
	f.Add(pack(4, 1e308, -1e308, 1e-308, 0, 1e154, 1e154, -1e154, 2))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 1+8 {
			return
		}
		dim := int(raw[0])%8 + 1
		vals := make([]float64, 0, (len(raw)-1)/8)
		for o := 1; o+8 <= len(raw) && len(vals) < 512; o += 8 {
			vals = append(vals, math.Float64frombits(le.Uint64(raw[o:])))
		}
		if len(vals) < 2*dim {
			return
		}
		// First half becomes weight rows, second half records.
		half := len(vals) / 2
		flat := vals[:half]
		recs := (len(vals) - half) / dim
		if recs == 0 {
			return
		}
		mat, err := MatrixOver(vals[half:], recs, dim)
		if err != nil {
			return
		}
		x := mat.View()
		wantIdx, wantD2 := scalarArgMin(x, flat)
		gotIdx := make([]int, recs)
		gotD2 := make([]float64, recs)
		ArgMinDistanceBatch(x, flat, nil, gotIdx, gotD2)
		for i := range wantIdx {
			if gotIdx[i] != wantIdx[i] || math.Float64bits(gotD2[i]) != math.Float64bits(wantD2[i]) {
				t.Fatalf("row %d: blocked (%d, %x) != scalar (%d, %x)",
					i, gotIdx[i], math.Float64bits(gotD2[i]), wantIdx[i], math.Float64bits(wantD2[i]))
			}
		}
		idxOnly := make([]int, recs)
		ArgMinDistanceBatch(x, flat, nil, idxOnly, nil)
		for i := range wantIdx {
			if idxOnly[i] != wantIdx[i] {
				t.Fatalf("row %d: index-only blocked %d != scalar %d", i, idxOnly[i], wantIdx[i])
			}
		}
	})
}

// TestArgMinDistanceBatchPortableKernel forces the portable micro-kernels
// (useAVX off) and re-runs the scalar-equivalence suite, so platforms
// with the assembly path still exercise the fallback they would ship
// elsewhere.
func TestArgMinDistanceBatchPortableKernel(t *testing.T) {
	if !useAVX {
		t.Skip("portable kernels are already the active path")
	}
	useAVX = false
	defer func() { useAVX = true }()
	TestArgMinDistanceBatchMatchesScalar(t)
	TestMulBatchTMatchesDot(t)
}

// TestNormCacheSyncSemantics pins the version-keyed recompute contract:
// same version → cached table (even if the data changed behind it, which
// is exactly the hazard the owner's version counter exists to prevent);
// new version, new dim, or new row count → recompute.
func TestNormCacheSyncSemantics(t *testing.T) {
	var c NormCache
	flat := []float64{1, 2, 3, 4, 5, 6}
	n1 := c.Sync(flat, 2, 1)
	if len(n1) != 3 || n1[0] != 5 || n1[1] != 25 || n1[2] != 61 {
		t.Fatalf("norms = %v", n1)
	}
	flat[0] = 100
	if got := c.Sync(flat, 2, 1); got[0] != 5 {
		t.Fatalf("same version recomputed: %v", got[0])
	}
	if got := c.Sync(flat, 2, 2); got[0] != 100*100+2*2 {
		t.Fatalf("bumped version did not recompute: %v", got[0])
	}
	if got := c.Sync(flat, 3, 2); len(got) != 2 {
		t.Fatalf("dim change did not recompute: %v", got)
	}
	if got := c.Sync(flat[:4], 2, 2); len(got) != 2 {
		t.Fatalf("shrunk arena did not recompute: %v", got)
	}
}

// benchDims mirrors the BENCH_bmu.json sweep.
var benchBMUShapes = []struct{ dim, units int }{
	{8, 4}, {8, 64}, {8, 256},
	{32, 4}, {32, 64}, {32, 256},
	{118, 4}, {118, 64}, {118, 256},
}

func benchBMUData(dim, units, n int) (View, []float64, []float64) {
	rng := rand.New(rand.NewSource(42))
	flat := make([]float64, units*dim)
	data := make([]float64, n*dim)
	for i := range flat {
		flat[i] = rng.Float64()
	}
	for i := range data {
		data[i] = rng.Float64()
	}
	mat, _ := MatrixOver(data, n, dim)
	return mat.View(), flat, SquaredNorms(flat, dim, nil)
}

// BenchmarkArgMinDistanceBatch measures the blocked engine across the
// dim×units sweep, reporting rows/sec.
func BenchmarkArgMinDistanceBatch(b *testing.B) {
	const n = 1024
	for _, sh := range benchBMUShapes {
		b.Run(shapeName(sh.dim, sh.units), func(b *testing.B) {
			x, flat, norms := benchBMUData(sh.dim, sh.units, n)
			out := make([]int, n)
			d2 := make([]float64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ArgMinDistanceBatch(x, flat, norms, out, d2)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// BenchmarkArgMinDistanceScalar is the per-row baseline of the same sweep.
func BenchmarkArgMinDistanceScalar(b *testing.B) {
	const n = 1024
	for _, sh := range benchBMUShapes {
		b.Run(shapeName(sh.dim, sh.units), func(b *testing.B) {
			x, flat, _ := benchBMUData(sh.dim, sh.units, n)
			out := make([]int, n)
			d2 := make([]float64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < n; r++ {
					out[r], d2[r] = ArgMinDistance(x.Row(r), flat)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

func shapeName(dim, units int) string {
	return "dim" + itoa(dim) + "_units" + itoa(units)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
