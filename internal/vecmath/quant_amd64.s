//go:build amd64

#include "textflag.h"

// func dotQ8BlockAVX(x, codes *int8, stride, groups int, out *float64)
//
// One quantized record row against groups*4 consecutive weight rows of
// the int8 shadow arena: out[4g+k] = sum x[j]*codes[(4g+k)*stride+j]
// over j in [0, stride), stride a positive multiple of 16. Each 16-code
// chunk is sign-extended to int16 lanes (VPMOVSXBW), multiplied and
// pairwise-summed into int32 lanes (VPMADDWD — products are at most
// 127*127, so a pair stays far inside int32 range), and accumulated per
// lane; the int32 lane sums stay exact for any stride below ~2^24 and
// are converted exactly to float64 on store (VCVTDQ2PD). Keeping the
// group loop in here amortizes call and address-setup overhead that
// otherwise rivals the dot work itself at small strides.
TEXT ·dotQ8BlockAVX(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), SI
	MOVQ codes+8(FP), DI
	MOVQ stride+16(FP), BX
	MOVQ groups+24(FP), R13
	MOVQ out+32(FP), DX

group:
	// Weight row pointers for this 4-unit group.
	MOVQ DI, R8
	LEAQ (DI)(BX*1), R9
	LEAQ (DI)(BX*2), R10
	LEAQ (R9)(BX*2), R11

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3

	XORQ AX, AX // byte offset into the rows
	MOVQ BX, CX // codes remaining

inner:
	VPMOVSXBW (SI)(AX*1), Y8 // 16 record codes -> int16 lanes

	VPMOVSXBW (R8)(AX*1), Y9
	VPMADDWD  Y8, Y9, Y9
	VPADDD    Y9, Y0, Y0

	VPMOVSXBW (R9)(AX*1), Y10
	VPMADDWD  Y8, Y10, Y10
	VPADDD    Y10, Y1, Y1

	VPMOVSXBW (R10)(AX*1), Y11
	VPMADDWD  Y8, Y11, Y11
	VPADDD    Y11, Y2, Y2

	VPMOVSXBW (R11)(AX*1), Y12
	VPMADDWD  Y8, Y12, Y12
	VPADDD    Y12, Y3, Y3

	ADDQ $16, AX
	SUBQ $16, CX
	JNZ  inner

	// Reduce each accumulator's 8 int32 lanes to one sum, then widen the
	// four sums to float64 (exact) and store.
	VEXTRACTI128 $1, Y0, X8
	VPADDD       X8, X0, X0
	VPSHUFD      $0x4E, X0, X8
	VPADDD       X8, X0, X0
	VPSHUFD      $0xB1, X0, X8
	VPADDD       X8, X0, X0
	VCVTDQ2PD    X0, X0
	VMOVSD       X0, (DX)

	VEXTRACTI128 $1, Y1, X8
	VPADDD       X8, X1, X1
	VPSHUFD      $0x4E, X1, X8
	VPADDD       X8, X1, X1
	VPSHUFD      $0xB1, X1, X8
	VPADDD       X8, X1, X1
	VCVTDQ2PD    X1, X1
	VMOVSD       X1, 8(DX)

	VEXTRACTI128 $1, Y2, X8
	VPADDD       X8, X2, X2
	VPSHUFD      $0x4E, X2, X8
	VPADDD       X8, X2, X2
	VPSHUFD      $0xB1, X2, X8
	VPADDD       X8, X2, X2
	VCVTDQ2PD    X2, X2
	VMOVSD       X2, 16(DX)

	VEXTRACTI128 $1, Y3, X8
	VPADDD       X8, X3, X3
	VPSHUFD      $0x4E, X3, X8
	VPADDD       X8, X3, X3
	VPSHUFD      $0xB1, X3, X8
	VPADDD       X8, X3, X3
	VCVTDQ2PD    X3, X3
	VMOVSD       X3, 24(DX)

	LEAQ (DI)(BX*4), DI // next 4 weight rows
	ADDQ $32, DX        // next 4 outputs
	DECQ R13
	JNZ  group

	VZEROUPPER
	RET

// func dotF32BlockAVX(x, codes *float32, stride, groups int, out *float64)
//
// The float32 shape of dotQ8BlockAVX: one narrowed record row against
// groups*4 consecutive weight rows, stride a positive multiple of 8,
// FMA accumulation in 8 float32 lanes per weight row, the four sums
// widened exactly to float64 on store. The association differs from the
// portable kernel's, which the f32 rung's error model explicitly
// permits (F32DotErrBound covers any summation order).
TEXT ·dotF32BlockAVX(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), SI
	MOVQ codes+8(FP), DI
	MOVQ stride+16(FP), BX
	MOVQ groups+24(FP), R13
	MOVQ out+32(FP), DX

	// Byte stride of one weight row.
	MOVQ BX, R14
	SHLQ $2, R14

f32group:
	MOVQ DI, R8
	LEAQ (DI)(R14*1), R9
	LEAQ (DI)(R14*2), R10
	LEAQ (R9)(R14*2), R11

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	XORQ AX, AX
	MOVQ BX, CX

f32inner:
	VMOVUPS (SI)(AX*1), Y8

	VMOVUPS     (R8)(AX*1), Y9
	VFMADD231PS Y9, Y8, Y0

	VMOVUPS     (R9)(AX*1), Y10
	VFMADD231PS Y10, Y8, Y1

	VMOVUPS     (R10)(AX*1), Y11
	VFMADD231PS Y11, Y8, Y2

	VMOVUPS     (R11)(AX*1), Y12
	VFMADD231PS Y12, Y8, Y3

	ADDQ $32, AX
	SUBQ $8, CX
	JNZ  f32inner

	// Reduce each accumulator's 8 float32 lanes, widen to float64, store.
	VEXTRACTF128 $1, Y0, X8
	VADDPS       X8, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VCVTSS2SD    X0, X0, X0
	VMOVSD       X0, (DX)

	VEXTRACTF128 $1, Y1, X8
	VADDPS       X8, X1, X1
	VHADDPS      X1, X1, X1
	VHADDPS      X1, X1, X1
	VCVTSS2SD    X1, X1, X1
	VMOVSD       X1, 8(DX)

	VEXTRACTF128 $1, Y2, X8
	VADDPS       X8, X2, X2
	VHADDPS      X2, X2, X2
	VHADDPS      X2, X2, X2
	VCVTSS2SD    X2, X2, X2
	VMOVSD       X2, 16(DX)

	VEXTRACTF128 $1, Y3, X8
	VADDPS       X8, X3, X3
	VHADDPS      X3, X3, X3
	VHADDPS      X3, X3, X3
	VCVTSS2SD    X3, X3, X3
	VMOVSD       X3, 24(DX)

	LEAQ (DI)(R14*4), DI
	ADDQ $32, DX
	DECQ R13
	JNZ  f32group

	VZEROUPPER
	RET

// func rescaleMinQ8AVX(dots, norms, scales *float64, n int, xn, xs2 float64, lanes *float64)
//
// The int8 settle's rescale pass, 4 units wide: for u in [0, n) (n a
// positive multiple of 4), dots[u] = xn + norms[u] - (xs2*scales[u])*dots[u],
// accumulating per-lane minima into lanes[0..3] (caller-initialized,
// typically +Inf). VMINPD keeps the running lane on a NaN distance,
// matching the scalar loop's NaN-ignoring comparison; the caller folds
// the four lanes and any tail. Rounding here may differ from the scalar
// expression by a few ULP, which the settle margin's ExpandSettleRel
// term dwarfs — candidate sets may shift at the margin's edge but the
// canonical settle keeps final winners bit-identical.
TEXT ·rescaleMinQ8AVX(SB), NOSPLIT, $0-56
	MOVQ dots+0(FP), SI
	MOVQ norms+8(FP), DI
	MOVQ scales+16(FP), R8
	MOVQ n+24(FP), CX
	MOVQ lanes+48(FP), DX

	VBROADCASTSD xn+32(FP), Y4
	VBROADCASTSD xs2+40(FP), Y5
	VMOVUPD      (DX), Y6

	XORQ AX, AX

rmloop:
	VMOVUPD (SI)(AX*8), Y0 // dots
	VMOVUPD (DI)(AX*8), Y1 // norms
	VMOVUPD (R8)(AX*8), Y2 // scales
	VMULPD  Y5, Y2, Y2     // xs2*scale
	VMULPD  Y0, Y2, Y2     // *dot
	VADDPD  Y1, Y4, Y0     // xn + norm
	VSUBPD  Y2, Y0, Y0     // d
	VMOVUPD Y0, (SI)(AX*8)
	VMINPD  Y6, Y0, Y6     // min(d, acc); NaN d keeps acc
	ADDQ    $4, AX
	SUBQ    $4, CX
	JNZ     rmloop

	VMOVUPD Y6, (DX)
	VZEROUPPER
	RET
