// Package vecmath provides the dense float64 vector and statistics
// primitives used throughout the GHSOM library.
//
// All functions operate on plain []float64 slices. Functions that combine
// two vectors require equal lengths and report a length mismatch through
// their error return (or, for hot-path kernels documented as such, treat the
// shorter length as authoritative). The package allocates only where the
// signature returns a new slice; in-place variants are provided for the
// training hot paths.
package vecmath

import (
	"errors"
	"fmt"
	"math"
)

// ErrLengthMismatch is returned when two vectors that must have equal
// dimension do not.
var ErrLengthMismatch = errors.New("vecmath: vector length mismatch")

// ErrEmpty is returned when an operation requires a non-empty vector.
var ErrEmpty = errors.New("vecmath: empty vector")

// ErrBadShape is returned when a matrix shape or row index is invalid.
var ErrBadShape = errors.New("vecmath: invalid shape")

// SquaredDistance returns the squared Euclidean distance between a and b.
// It is the hot-path kernel for BMU search: no bounds errors are returned;
// the caller must guarantee len(a) == len(b). It panics otherwise, matching
// the behavior of the builtin index expression it compiles down to.
func SquaredDistance(a, b []float64) float64 {
	// Let the compiler eliminate bounds checks in the loop.
	_ = b[len(a)-1]
	var sum float64
	for i, av := range a {
		d := av - b[i]
		sum += d * d
	}
	return sum
}

// Distance returns the Euclidean distance between a and b. Same contract as
// SquaredDistance.
func Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// SquaredDistanceFlat returns the squared Euclidean distance between x and
// the row starting at offset off of the packed row-major matrix flat. It is
// the strided-view counterpart of SquaredDistance for flat weight storage:
// the caller must guarantee off >= 0 and off+len(x) <= len(flat); it panics
// otherwise.
func SquaredDistanceFlat(x, flat []float64, off int) float64 {
	row := flat[off : off+len(x)]
	var sum float64
	for i, xv := range x {
		d := xv - row[i]
		sum += d * d
	}
	return sum
}

// ArgMinDistance returns the index of the row of the packed row-major
// matrix flat (row length len(x), row count len(flat)/len(x)) nearest to x
// in squared Euclidean distance, and that squared distance. Ties resolve to
// the lowest index. A trailing partial row is ignored; an empty x or matrix
// returns (-1, +Inf). This is the BMU-search kernel: one pass over a single
// contiguous array, no per-row slice headers or pointer chasing.
func ArgMinDistance(x, flat []float64) (int, float64) {
	dim := len(x)
	best, bestVal := -1, math.Inf(1)
	if dim == 0 {
		return best, bestVal
	}
	for i, off := 0, 0; off+dim <= len(flat); i, off = i+1, off+dim {
		row := flat[off : off+dim]
		var sum float64
		for j, xv := range x {
			d := xv - row[j]
			sum += d * d
		}
		if sum < bestVal {
			best, bestVal = i, sum
		}
	}
	return best, bestVal
}

// ManhattanDistance returns the L1 distance between a and b. Same contract
// as SquaredDistance.
func ManhattanDistance(a, b []float64) float64 {
	_ = b[len(a)-1]
	var sum float64
	for i, av := range a {
		sum += math.Abs(av - b[i])
	}
	return sum
}

// Dot returns the inner product of a and b. Same contract as
// SquaredDistance.
func Dot(a, b []float64) float64 {
	_ = b[len(a)-1]
	var sum float64
	for i, av := range a {
		sum += av * b[i]
	}
	return sum
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Clone returns a copy of v. A nil input yields a nil output.
func Clone(v []float64) []float64 {
	if v == nil {
		return nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Add returns a+b as a new vector.
func Add(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("add %d-vector to %d-vector: %w", len(a), len(b), ErrLengthMismatch)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}

// Sub returns a-b as a new vector.
func Sub(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("subtract %d-vector from %d-vector: %w", len(b), len(a), ErrLengthMismatch)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}

// Scale returns s*v as a new vector.
func Scale(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = s * x
	}
	return out
}

// AXPYInPlace computes dst += alpha * x in place. The caller must guarantee
// len(dst) == len(x).
func AXPYInPlace(dst []float64, alpha float64, x []float64) {
	_ = x[len(dst)-1]
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// MoveToward moves dst a fraction alpha of the way toward target, in place:
// dst += alpha * (target - dst). This is the SOM online weight-update
// kernel. The caller must guarantee len(dst) == len(target).
func MoveToward(dst []float64, alpha float64, target []float64) {
	_ = target[len(dst)-1]
	for i := range dst {
		dst[i] += alpha * (target[i] - dst[i])
	}
}

// Lerp returns the linear interpolation (1-t)*a + t*b as a new vector.
func Lerp(a, b []float64, t float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("lerp %d-vector with %d-vector: %w", len(a), len(b), ErrLengthMismatch)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = (1-t)*a[i] + t*b[i]
	}
	return out, nil
}

// Mean returns the element-wise mean of the rows. All rows must share one
// length.
func Mean(rows [][]float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	dim := len(rows[0])
	out := make([]float64, dim)
	for ri, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("row %d has length %d, want %d: %w", ri, len(r), dim, ErrLengthMismatch)
		}
		for i, x := range r {
			out[i] += x
		}
	}
	inv := 1 / float64(len(rows))
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// ArgMin returns the index of the smallest element of v, and that element.
// Ties resolve to the lowest index. An empty slice returns (-1, +Inf).
func ArgMin(v []float64) (int, float64) {
	best, bestVal := -1, math.Inf(1)
	for i, x := range v {
		if x < bestVal {
			best, bestVal = i, x
		}
	}
	return best, bestVal
}

// ArgMax returns the index of the largest element of v, and that element.
// Ties resolve to the lowest index. An empty slice returns (-1, -Inf).
func ArgMax(v []float64) (int, float64) {
	best, bestVal := -1, math.Inf(-1)
	for i, x := range v {
		if x > bestVal {
			best, bestVal = i, x
		}
	}
	return best, bestVal
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// MinMax returns the smallest and largest elements of v. An empty slice
// returns (+Inf, -Inf).
func MinMax(v []float64) (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// IsFinite reports whether every element of v is finite (not NaN, not ±Inf).
func IsFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Equal reports whether a and b have the same length and every pair of
// elements differs by at most tol.
func Equal(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
