//go:build !amd64

package vecmath

// Portable fallbacks for platforms without the assembly micro-kernels.

// useAVX is always false off amd64; the portable kernels run everywhere.
var useAVX = false

func sumSquares(v []float64) float64 { return sumSquaresGeneric(v) }

func mulBatchT(x View, flat []float64, out []float64, n, units, dim int) {
	mulBatchGeneric(x, flat, out, n, units, dim)
}
