package vecmath

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
)

func TestResolveTileFitsBudget(t *testing.T) {
	cases := []struct {
		dim, units, workers int
	}{
		{8, 4, 1}, {8, 256, 1}, {32, 64, 1}, {118, 256, 1},
		{118, 256, 8}, {1024, 4096, 1}, {1024, 4096, 16},
		{0, 0, 0}, {-3, -7, -1},
	}
	for _, c := range cases {
		tile := ResolveTile(c.dim, c.units, c.workers)
		rows := tile.Rows()
		if rows < minTileRows || rows > maxTileRows {
			t.Errorf("ResolveTile(%d, %d, %d) = %d rows, outside [%d, %d]",
				c.dim, c.units, c.workers, rows, minTileRows, maxTileRows)
		}
		if rows%4 != 0 {
			t.Errorf("ResolveTile(%d, %d, %d) = %d rows, not a multiple of 4",
				c.dim, c.units, c.workers, rows)
		}
	}
}

func TestResolveTileShrinksWhenShared(t *testing.T) {
	// At a shape where the budget binds (mid-size working set), concurrent
	// workers must get a tile no larger than a solo worker's.
	dim, units := 256, 1024
	solo := ResolveTile(dim, units, 1).Rows()
	shared := ResolveTile(dim, units, 8).Rows()
	if shared > solo {
		t.Errorf("shared tile %d rows > solo tile %d rows", shared, solo)
	}
	if solo == maxTileRows && shared == maxTileRows {
		t.Fatalf("shape does not exercise the budget: both clamped at max")
	}
}

func TestResolveTileEnvOverride(t *testing.T) {
	// tileEnvOverride is a sync.OnceValue read at first use, so the test
	// cannot flip it per-case; it only verifies the parse helper contract
	// indirectly: with no env set (the test environment), ResolveTile obeys
	// the cache model.
	if got := tileEnvOverride(); got != 0 {
		t.Skipf("GHSOM_GEMM_TILE set in environment (%d); skipping model check", got)
	}
	if rows := ResolveTile(8, 4, 1).Rows(); rows != maxTileRows {
		t.Errorf("tiny codebook resolved %d rows, want max %d", rows, maxTileRows)
	}
}

func TestTileConfigZeroDefaults(t *testing.T) {
	var tile TileConfig
	if tile.Rows() != DefaultTileRows {
		t.Errorf("zero TileConfig rows = %d, want %d", tile.Rows(), DefaultTileRows)
	}
}

// TestBMUScratchMatchesPackageForm verifies the scratch-owning method form
// is bit-identical to the package-level pooled form at several tile
// shapes, including extremes of the clamp range.
func TestBMUScratchMatchesPackageForm(t *testing.T) {
	const n, dim, units = 300, 24, 96
	x, flat, norms := benchBMUData(dim, units, n)
	refIdx := make([]int, n)
	refDist := make([]float64, n)
	ArgMinDistanceBatch(x, flat, norms, refIdx, refDist)
	for _, rows := range []int{minTileRows, DefaultTileRows, maxTileRows, 1, n + 7} {
		sc := &BMUScratch{Tile: TileConfig{RecRows: rows}}
		idx := make([]int, n)
		dist := make([]float64, n)
		sc.ArgMinDistanceBatch(x, flat, norms, idx, dist)
		for i := range idx {
			if idx[i] != refIdx[i] || dist[i] != refDist[i] {
				t.Fatalf("rows=%d row %d: (%d, %v) != ref (%d, %v)",
					rows, i, idx[i], dist[i], refIdx[i], refDist[i])
			}
		}
	}
}

// TestNormCacheConcurrentSync hammers one NormCache from many goroutines
// mixing same-version reads with version bumps; under -race this proves
// the snapshot design is data-race-free, and every returned table must be
// internally consistent (matching its version's data).
func TestNormCacheConcurrentSync(t *testing.T) {
	const dim, units, goroutines, iters = 4, 32, 8, 2000
	var c NormCache
	arenas := make([][]float64, 4)
	for v := range arenas {
		arenas[v] = make([]float64, units*dim)
		for i := range arenas[v] {
			arenas[v][i] = float64(v + 1)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				v := rng.Intn(len(arenas))
				norms := c.Sync(arenas[v], dim, uint64(v))
				want := float64(dim) * float64(v+1) * float64(v+1)
				for u := 0; u < units; u++ {
					if norms[u] != want {
						errs <- fmt.Sprintf("version %d: norms[%d] = %v, want %v", v, u, norms[u], want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestBMUHotPathMutexFree is the lock-freedom assertion of the scaling
// engine: with mutex profiling fully enabled, concurrent steady-state BMU
// searches over a shared codebook (scratch-owning form, warm norm cache —
// exactly the per-worker dataplane configuration) must record zero mutex
// contention events inside this package. The former design took
// Map.normMu around NormCache.Sync on every batch; the atomic-snapshot
// cache and per-worker scratches leave nothing to contend on.
func TestBMUHotPathMutexFree(t *testing.T) {
	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)

	const n, dim, units, goroutines, iters = 512, 32, 256, 8, 50
	x, flat, _ := benchBMUData(dim, units, n)
	var cache NormCache
	tile := ResolveTile(dim, units, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &BMUScratch{Tile: tile}
			idx := make([]int, n)
			dist := make([]float64, n)
			for i := 0; i < iters; i++ {
				norms := cache.Sync(flat, dim, 1)
				sc.ArgMinDistanceBatch(x, flat, norms, idx, dist)
			}
		}()
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
		t.Fatalf("mutex profile: %v", err)
	}
	if profile := buf.String(); strings.Contains(profile, "internal/vecmath") {
		t.Errorf("mutex contention recorded inside vecmath:\n%s", profile)
	}
}

// BenchmarkNormCacheSyncParallel measures the steady-state (warm,
// same-version) norm-cache read under maximum goroutine pressure — the
// path that previously serialized on Map.normMu.
func BenchmarkNormCacheSyncParallel(b *testing.B) {
	const dim, units = 32, 256
	flat := make([]float64, units*dim)
	for i := range flat {
		flat[i] = float64(i%7) * 0.25
	}
	var c NormCache
	c.Sync(flat, dim, 1)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if norms := c.Sync(flat, dim, 1); len(norms) != units {
				b.Fatal("bad norms")
			}
		}
	})
}
