package vecmath

import (
	"errors"
	"math"
	"math/rand"
)

// ErrNoConverge is returned when power iteration fails to converge.
var ErrNoConverge = errors.New("vecmath: power iteration did not converge")

// PrincipalComponents returns the top-k principal axes of the rows (unit
// vectors, ordered by decreasing variance) and the standard deviation of
// the data along each axis. It centers the data, then applies power
// iteration with deflation on the covariance operator — O(k·iters·n·d)
// time and O(d) extra space, which is all the SOM linear initializer
// needs (k=2).
//
// Degenerate directions (zero variance) yield arbitrary orthonormal axes
// with zero scale. rng seeds the iteration start vectors.
func PrincipalComponents(rows [][]float64, k int, rng *rand.Rand) (axes [][]float64, scales []float64, err error) {
	if len(rows) == 0 {
		return nil, nil, ErrEmpty
	}
	dim := len(rows[0])
	if k < 1 || k > dim {
		return nil, nil, errors.New("vecmath: component count out of range")
	}
	mean, err := Mean(rows)
	if err != nil {
		return nil, nil, err
	}
	centered := make([][]float64, len(rows))
	for i, r := range rows {
		c := make([]float64, dim)
		for d := range c {
			c[d] = r[d] - mean[d]
		}
		centered[i] = c
	}

	axes = make([][]float64, 0, k)
	scales = make([]float64, 0, k)
	const (
		maxIters = 200
		tol      = 1e-9
	)
	for comp := 0; comp < k; comp++ {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		orthonormalize(v, axes)
		if normalizeInPlace(v) == 0 {
			// Fully degenerate residual space: emit an arbitrary basis
			// vector orthogonal to previous axes.
			v = basisOrthogonal(dim, axes)
		}
		var lambda float64
		for iter := 0; iter < maxIters; iter++ {
			next := applyCovariance(centered, v)
			orthonormalize(next, axes)
			norm := normalizeInPlace(next)
			if norm == 0 {
				lambda = 0
				break
			}
			delta := 1 - math.Abs(Dot(next, v))
			copy(v, next)
			lambda = norm
			if delta < tol {
				break
			}
		}
		axes = append(axes, Clone(v))
		if lambda < 0 {
			lambda = 0
		}
		scales = append(scales, math.Sqrt(lambda))
	}
	return axes, scales, nil
}

// applyCovariance returns C·v for the empirical covariance C of the
// centered rows, without materializing C: C·v = (1/n) Σ x (xᵀ v).
func applyCovariance(centered [][]float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for _, x := range centered {
		coef := Dot(x, v)
		AXPYInPlace(out, coef, x)
	}
	inv := 1 / float64(len(centered))
	for d := range out {
		out[d] *= inv
	}
	return out
}

// orthonormalize removes the projections of v onto each axis, in place.
func orthonormalize(v []float64, axes [][]float64) {
	for _, a := range axes {
		coef := Dot(v, a)
		AXPYInPlace(v, -coef, a)
	}
}

// normalizeInPlace scales v to unit norm and returns the original norm.
func normalizeInPlace(v []float64) float64 {
	n := Norm(v)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for d := range v {
		v[d] *= inv
	}
	return n
}

// basisOrthogonal returns the first standard basis vector orthogonal to
// all axes (falling back to e0 in pathological cases).
func basisOrthogonal(dim int, axes [][]float64) []float64 {
	for d := 0; d < dim; d++ {
		v := make([]float64, dim)
		v[d] = 1
		orthonormalize(v, axes)
		if normalizeInPlace(v) > 1e-9 {
			return v
		}
	}
	v := make([]float64, dim)
	v[0] = 1
	return v
}
