package vecmath

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSquaredDistance(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"zero", []float64{0, 0}, []float64{0, 0}, 0},
		{"unit axes", []float64{1, 0}, []float64{0, 1}, 2},
		{"345 triangle", []float64{0, 0}, []float64{3, 4}, 25},
		{"negative coords", []float64{-1, -2}, []float64{1, 2}, 20},
		{"single dim", []float64{2.5}, []float64{-2.5}, 25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SquaredDistance(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("SquaredDistance(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDistanceMatchesSquaredDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	if got, want := Distance(a, b), math.Sqrt(SquaredDistance(a, b)); got != want {
		t.Errorf("Distance = %v, want sqrt of squared distance %v", got, want)
	}
}

func TestManhattanDistance(t *testing.T) {
	a := []float64{1, -1, 2}
	b := []float64{-1, 1, 0}
	if got := ManhattanDistance(a, b); got != 6 {
		t.Errorf("ManhattanDistance = %v, want 6", got)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Norm(nil); got != 0 {
		t.Errorf("Norm(nil) = %v, want 0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := []float64{1, 2, 3}
	c := Clone(orig)
	c[0] = 99
	if orig[0] != 1 {
		t.Error("Clone shares backing array with original")
	}
	if Clone(nil) != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestAddSub(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	sum, err := Add(a, b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !Equal(sum, []float64{4, 7}, 0) {
		t.Errorf("Add = %v", sum)
	}
	diff, err := Sub(b, a)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if !Equal(diff, []float64{2, 3}, 0) {
		t.Errorf("Sub = %v", diff)
	}
}

func TestAddLengthMismatch(t *testing.T) {
	if _, err := Add([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("Add mismatch error = %v, want ErrLengthMismatch", err)
	}
	if _, err := Sub([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("Sub mismatch error = %v, want ErrLengthMismatch", err)
	}
	if _, err := Lerp([]float64{1}, []float64{1, 2}, 0.5); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("Lerp mismatch error = %v, want ErrLengthMismatch", err)
	}
}

func TestScale(t *testing.T) {
	if got := Scale([]float64{1, -2}, -3); !Equal(got, []float64{-3, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
}

func TestAXPYInPlace(t *testing.T) {
	dst := []float64{1, 1}
	AXPYInPlace(dst, 2, []float64{3, 4})
	if !Equal(dst, []float64{7, 9}, 0) {
		t.Errorf("AXPYInPlace = %v", dst)
	}
}

func TestMoveToward(t *testing.T) {
	dst := []float64{0, 0}
	MoveToward(dst, 0.5, []float64{2, 4})
	if !Equal(dst, []float64{1, 2}, 1e-12) {
		t.Errorf("MoveToward = %v, want [1 2]", dst)
	}
	// alpha=1 lands exactly on the target.
	MoveToward(dst, 1, []float64{5, 5})
	if !Equal(dst, []float64{5, 5}, 1e-12) {
		t.Errorf("MoveToward alpha=1 = %v, want [5 5]", dst)
	}
	// alpha=0 is a no-op.
	MoveToward(dst, 0, []float64{-5, -5})
	if !Equal(dst, []float64{5, 5}, 0) {
		t.Errorf("MoveToward alpha=0 = %v, want unchanged [5 5]", dst)
	}
}

func TestLerp(t *testing.T) {
	got, err := Lerp([]float64{0, 10}, []float64{10, 0}, 0.25)
	if err != nil {
		t.Fatalf("Lerp: %v", err)
	}
	if !Equal(got, []float64{2.5, 7.5}, 1e-12) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if !Equal(got, []float64{3, 4}, 1e-12) {
		t.Errorf("Mean = %v, want [3 4]", got)
	}
}

func TestMeanErrors(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil) error = %v, want ErrEmpty", err)
	}
	if _, err := Mean([][]float64{{1}, {1, 2}}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("Mean ragged error = %v, want ErrLengthMismatch", err)
	}
}

func TestArgMinArgMax(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5}
	if i, val := ArgMin(v); i != 1 || val != 1 {
		t.Errorf("ArgMin = (%d, %v), want (1, 1)", i, val)
	}
	if i, val := ArgMax(v); i != 4 || val != 5 {
		t.Errorf("ArgMax = (%d, %v), want (4, 5)", i, val)
	}
	if i, _ := ArgMin(nil); i != -1 {
		t.Errorf("ArgMin(nil) index = %d, want -1", i)
	}
	if i, _ := ArgMax(nil); i != -1 {
		t.Errorf("ArgMax(nil) index = %d, want -1", i)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{2, -3, 7, 0})
	if min != -3 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-3, 7)", min, max)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite([]float64{1, 2, 3}) {
		t.Error("IsFinite finite vector = false")
	}
	if IsFinite([]float64{1, math.NaN()}) {
		t.Error("IsFinite NaN vector = true")
	}
	if IsFinite([]float64{math.Inf(1)}) {
		t.Error("IsFinite Inf vector = true")
	}
	if !IsFinite(nil) {
		t.Error("IsFinite(nil) = false, want true (vacuously finite)")
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]float64{1, 2}, []float64{1.0000001, 2}, 1e-3) {
		t.Error("Equal within tolerance = false")
	}
	if Equal([]float64{1}, []float64{1, 2}, 1) {
		t.Error("Equal different lengths = true")
	}
	if Equal([]float64{1}, []float64{2}, 0.5) {
		t.Error("Equal outside tolerance = true")
	}
}

// --- property-based tests ---

func randomVecPair(r *rand.Rand, dim int) (a, b []float64) {
	a = make([]float64, dim)
	b = make([]float64, dim)
	for i := range a {
		a[i] = r.NormFloat64() * 10
		b[i] = r.NormFloat64() * 10
	}
	return a, b
}

func TestPropDistanceSymmetryAndIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		dim := 1 + rr.Intn(64)
		a, b := randomVecPair(r, dim)
		dab := Distance(a, b)
		dba := Distance(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			return false
		}
		if Distance(a, a) != 0 {
			return false
		}
		return dab >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		dim := 1 + r.Intn(32)
		a, b := randomVecPair(r, dim)
		c, _ := randomVecPair(r, dim)
		if Distance(a, b) > Distance(a, c)+Distance(c, b)+1e-9 {
			t.Fatalf("triangle inequality violated at iteration %d", i)
		}
	}
}

func TestPropMeanIsCentroid(t *testing.T) {
	// The mean minimizes the sum of squared distances: moving it in any
	// coordinate direction cannot reduce the total.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(20)
		dim := 1 + r.Intn(8)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, dim)
			for j := range rows[i] {
				rows[i][j] = r.NormFloat64()
			}
		}
		m, err := Mean(rows)
		if err != nil {
			t.Fatalf("Mean: %v", err)
		}
		total := func(center []float64) float64 {
			var s float64
			for _, row := range rows {
				s += SquaredDistance(row, center)
			}
			return s
		}
		base := total(m)
		for j := 0; j < dim; j++ {
			shifted := Clone(m)
			shifted[j] += 0.1
			if total(shifted) < base-1e-9 {
				t.Fatalf("mean is not the centroid: shifting dim %d reduced cost", j)
			}
		}
	}
}

func TestPropLerpEndpoints(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		dim := 1 + r.Intn(16)
		a, b := randomVecPair(r, dim)
		at0, err := Lerp(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		at1, err := Lerp(a, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(at0, a, 1e-12) || !Equal(at1, b, 1e-12) {
			t.Fatal("Lerp endpoints do not match inputs")
		}
	}
}

func BenchmarkSquaredDistance41(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	x, y := randomVecPair(r, 41)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SquaredDistance(x, y)
	}
}

func BenchmarkMoveToward41(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	x, y := randomVecPair(r, 41)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MoveToward(x, 0.05, y)
	}
}
