package vecmath

import "fmt"

// Matrix is a dense row-major float64 matrix backed by one contiguous
// slice: row i occupies data[i*cols : (i+1)*cols]. It is the storage type
// of the training dataplane — the same layout the inference batch path and
// the SOM weight storage use — so a whole training set streams as a single
// allocation with no per-row pointer chasing.
//
// A Matrix value is a view header (slice + shape); copying it aliases the
// same storage. The zero Matrix has no rows and is valid for reading.
type Matrix struct {
	data       []float64
	rows, cols int
}

// NewMatrix returns a zero-filled rows x cols matrix.
func NewMatrix(rows, cols int) (Matrix, error) {
	if rows < 0 || cols < 1 {
		return Matrix{}, fmt.Errorf("vecmath: new %dx%d matrix: %w", rows, cols, ErrBadShape)
	}
	return Matrix{data: make([]float64, rows*cols), rows: rows, cols: cols}, nil
}

// MatrixOver wraps an existing flat row-major slice as a rows x cols
// matrix without copying. The slice must hold at least rows*cols values;
// the matrix aliases it, so later writes through either view are shared.
func MatrixOver(data []float64, rows, cols int) (Matrix, error) {
	if rows < 0 || cols < 1 {
		return Matrix{}, fmt.Errorf("vecmath: matrix over %dx%d: %w", rows, cols, ErrBadShape)
	}
	if len(data) < rows*cols {
		return Matrix{}, fmt.Errorf("vecmath: matrix over %d values, want >= %d*%d: %w",
			len(data), rows, cols, ErrBadShape)
	}
	return Matrix{data: data[:rows*cols], rows: rows, cols: cols}, nil
}

// MatrixFromRows copies a slice-of-slices data set into a fresh contiguous
// matrix. Every row must have the same, non-zero length.
func MatrixFromRows(rows [][]float64) (Matrix, error) {
	if len(rows) == 0 {
		return Matrix{}, ErrEmpty
	}
	cols := len(rows[0])
	if cols < 1 {
		return Matrix{}, fmt.Errorf("vecmath: matrix from zero-length rows: %w", ErrBadShape)
	}
	m := Matrix{data: make([]float64, len(rows)*cols), rows: len(rows), cols: cols}
	for i, r := range rows {
		if len(r) != cols {
			return Matrix{}, fmt.Errorf("vecmath: row %d has length %d, want %d: %w",
				i, len(r), cols, ErrLengthMismatch)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the row count.
func (m Matrix) Rows() int { return m.rows }

// Cols returns the column count (the feature dimension).
func (m Matrix) Cols() int { return m.cols }

// Row returns row i as a capacity-capped view into the backing array. It
// aliases matrix storage: valid for reading, and writes are shared with
// every other view of the matrix.
func (m Matrix) Row(i int) []float64 {
	o := i * m.cols
	return m.data[o : o+m.cols : o+m.cols]
}

// Data returns the contiguous row-major backing slice (row i at
// [i*Cols, (i+1)*Cols)). It aliases live storage.
func (m Matrix) Data() []float64 { return m.data }

// View returns the all-rows view of the matrix.
func (m Matrix) View() View { return View{m: m} }

// Subset returns the zero-copy view of the rows selected by idx, in idx
// order (indices may repeat). The index slice is retained, not copied;
// callers must not mutate it while the view is in use. Indices are not
// validated here — out-of-range entries panic on first Row access; callers
// holding untrusted indices should validate with CheckIndex first.
func (m Matrix) Subset(idx []int) View { return View{m: m, idx: idx} }

// CheckIndex validates that every entry of idx names a matrix row.
func (m Matrix) CheckIndex(idx []int) error {
	for k, i := range idx {
		if i < 0 || i >= m.rows {
			return fmt.Errorf("vecmath: index %d at position %d outside %d rows: %w",
				i, k, m.rows, ErrBadShape)
		}
	}
	return nil
}

// View is a zero-copy row-subset view of a Matrix: the whole matrix when
// idx is nil, otherwise the rows named by idx in idx order. Views are the
// unit of work of the training dataplane — a GHSOM child map trains on a
// View carrying only an index slice instead of a rebuilt [][]float64
// subset, so hierarchical expansion never copies feature data.
type View struct {
	m   Matrix
	idx []int
}

// Rows returns the number of rows in the view.
func (v View) Rows() int {
	if v.idx != nil {
		return len(v.idx)
	}
	return v.m.rows
}

// Dim returns the feature dimension (the matrix column count).
func (v View) Dim() int { return v.m.cols }

// Row returns view row i, aliasing matrix storage.
func (v View) Row(i int) []float64 {
	if v.idx != nil {
		return v.m.Row(v.idx[i])
	}
	return v.m.Row(i)
}

// Index returns the matrix row index behind view row i.
func (v View) Index(i int) int {
	if v.idx != nil {
		return v.idx[i]
	}
	return i
}

// Slice returns the zero-copy view of the contiguous view-relative row
// range [lo, hi). Unlike Subview it allocates nothing for any view: an
// indexed view reslices its index, and a whole-matrix view narrows to a
// sub-matrix over the same backing rows. It is the work-splitting
// primitive of the batched BMU engine — workers call it to carve a view
// into per-worker ranges whose Row data still aliases the original
// storage.
//
// Caveat: on a whole-matrix view the narrowed result is its own
// sub-matrix, so Index reports positions relative to the slice, not the
// original matrix (an indexed view keeps original indices). Callers
// that need to map sliced rows back to matrix rows must add lo
// themselves; the BMU engine only reads Row/Rows/Dim.
func (v View) Slice(lo, hi int) View {
	if v.idx != nil {
		return View{m: v.m, idx: v.idx[lo:hi]}
	}
	sub := Matrix{data: v.m.data[lo*v.m.cols : hi*v.m.cols], rows: hi - lo, cols: v.m.cols}
	return View{m: sub}
}

// Subview returns the view of the view-relative rows in rows, composing
// index indirections so the result still points straight into the backing
// matrix. The rows slice is retained when the view has no indirection of
// its own.
func (v View) Subview(rows []int) View {
	if v.idx == nil {
		return View{m: v.m, idx: rows}
	}
	idx := make([]int, len(rows))
	for k, i := range rows {
		idx[k] = v.idx[i]
	}
	return View{m: v.m, idx: idx}
}

// Mean returns the element-wise mean of the view's rows.
func (v View) Mean() ([]float64, error) {
	n := v.Rows()
	if n == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, v.m.cols)
	for i := 0; i < n; i++ {
		row := v.Row(i)
		for d, x := range row {
			out[d] += x
		}
	}
	inv := 1 / float64(n)
	for d := range out {
		out[d] *= inv
	}
	return out, nil
}
