//go:build amd64

package vecmath

import "math"

// dotQ8BlockAVX computes one record row against groups*4 consecutive
// int8 weight rows (stride > 0, stride%16 == 0), exact int32
// accumulation widened to float64 in out[0 : groups*4]. AVX2; callers
// must check useAVX.
//
//go:noescape
func dotQ8BlockAVX(x, codes *int8, stride, groups int, out *float64)

// dotF32BlockAVX computes one narrowed record row against groups*4
// consecutive float32 weight rows (stride > 0, stride%8 == 0), FMA
// accumulation widened to float64 in out[0 : groups*4]. AVX2+FMA;
// callers must check useAVX.
//
//go:noescape
func dotF32BlockAVX(x, codes *float32, stride, groups int, out *float64)

// rescaleMinQ8AVX rescales n raw int8 dots into expanded distances in
// place and folds per-lane minima into lanes[0..3] (n > 0, n%4 == 0).
// AVX2; callers must check useAVX.
//
//go:noescape
func rescaleMinQ8AVX(dots, norms, scales *float64, n int, xn, xs2 float64, lanes *float64)

// mulBatchQ8 dispatches the int8 dot block: the AVX2 micro-kernel when
// the padded arena shape fits its alignment (whole 16-code chunks,
// whole 4-unit groups — both accumulate the same exact int32 sums, so
// the paths are bit-identical), the portable kernel otherwise.
func mulBatchQ8(xq, codes []int8, out []float64, n, units, dim int) {
	if !useAVX || dim <= 0 || dim&15 != 0 || units <= 0 || units&3 != 0 {
		mulBatchQ8Generic(xq, codes, out, n, units, dim)
		return
	}
	groups := units >> 2
	for r := 0; r < n; r++ {
		dotQ8BlockAVX(&xq[r*dim], &codes[0], dim, groups, &out[r*units])
	}
}

// mulBatchF32 dispatches the float32 dot block the same way. The asm
// and portable kernels associate the float32 sums differently, which
// the rung's settle slack (F32DotErrBound covers any order) absorbs —
// final BMU results remain bit-identical either way.
func mulBatchF32(x32, w32 []float32, out []float64, n, units, dim int) {
	if !useAVX || dim <= 0 || dim&7 != 0 || units <= 0 || units&3 != 0 {
		mulBatchF32Generic(x32, w32, out, n, units, dim)
		return
	}
	groups := units >> 2
	for r := 0; r < n; r++ {
		dotF32BlockAVX(&x32[r*dim], &w32[0], dim, groups, &out[r*units])
	}
}

// rescaleMinQ8 turns one record's raw int8 dots into expanded distances
// in place and returns their minimum (NaN entries ignored): the AVX2
// pass over whole 4-unit groups plus a scalar tail. The two paths may
// round a distance differently by a few ULP; the settle margin covers
// that (see rescaleMinQ8AVX).
func rescaleMinQ8(dots, norms, scales []float64, xn, xs float64) float64 {
	minD := math.Inf(1)
	i := 0
	if n4 := len(norms) &^ 3; useAVX && n4 > 0 {
		lanes := [4]float64{minD, minD, minD, minD}
		rescaleMinQ8AVX(&dots[0], &norms[0], &scales[0], n4, xn, 2*xs, &lanes[0])
		for _, v := range lanes {
			if v < minD {
				minD = v
			}
		}
		i = n4
	}
	for ; i < len(norms); i++ {
		d := xn + norms[i] - 2*(xs*scales[i]*dots[i])
		dots[i] = d
		if d < minD {
			minD = d
		}
	}
	return minD
}
