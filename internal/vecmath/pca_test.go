package vecmath

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// anisotropicCloud samples points stretched along a known direction.
func anisotropicCloud(rng *rand.Rand, n int, dir []float64, major, minor float64) [][]float64 {
	dim := len(dir)
	// Build an arbitrary orthogonal direction for the minor axis.
	perp := make([]float64, dim)
	perp[(argMaxAbs(dir)+1)%dim] = 1
	coef := Dot(perp, dir)
	AXPYInPlace(perp, -coef, dir)
	normalizeInPlace(perp)

	rows := make([][]float64, n)
	for i := range rows {
		a := rng.NormFloat64() * major
		b := rng.NormFloat64() * minor
		x := make([]float64, dim)
		for d := range x {
			x[d] = 5 + a*dir[d] + b*perp[d] // offset mean to test centering
		}
		rows[i] = x
	}
	return rows
}

func argMaxAbs(v []float64) int {
	best, bestV := 0, 0.0
	for i, x := range v {
		if math.Abs(x) > bestV {
			best, bestV = i, math.Abs(x)
		}
	}
	return best
}

func TestPrincipalComponentsRecoversAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dir := []float64{1 / math.Sqrt2, 1 / math.Sqrt2, 0}
	rows := anisotropicCloud(rng, 2000, dir, 5, 0.5)
	axes, scales, err := PrincipalComponents(rows, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(axes) != 2 || len(scales) != 2 {
		t.Fatalf("got %d axes, %d scales", len(axes), len(scales))
	}
	// First axis aligns with dir up to sign.
	align := math.Abs(Dot(axes[0], dir))
	if align < 0.99 {
		t.Errorf("first axis alignment = %v, want ~1 (axis %v)", align, axes[0])
	}
	// Scales approximate the generating standard deviations.
	if math.Abs(scales[0]-5) > 0.5 {
		t.Errorf("first scale = %v, want ~5", scales[0])
	}
	if math.Abs(scales[1]-0.5) > 0.2 {
		t.Errorf("second scale = %v, want ~0.5", scales[1])
	}
	// Axes are orthonormal.
	if math.Abs(Norm(axes[0])-1) > 1e-9 || math.Abs(Norm(axes[1])-1) > 1e-9 {
		t.Error("axes not unit length")
	}
	if math.Abs(Dot(axes[0], axes[1])) > 1e-6 {
		t.Errorf("axes not orthogonal: dot = %v", Dot(axes[0], axes[1]))
	}
}

func TestPrincipalComponentsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, _, err := PrincipalComponents(nil, 1, rng); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	rows := [][]float64{{1, 2}, {3, 4}}
	if _, _, err := PrincipalComponents(rows, 0, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := PrincipalComponents(rows, 3, rng); err == nil {
		t.Error("k>dim accepted")
	}
}

func TestPrincipalComponentsConstantData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := [][]float64{{7, 7}, {7, 7}, {7, 7}}
	axes, scales, err := PrincipalComponents(rows, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if scales[0] != 0 || scales[1] != 0 {
		t.Errorf("constant data scales = %v, want zeros", scales)
	}
	// Axes still orthonormal even if arbitrary.
	if math.Abs(Dot(axes[0], axes[1])) > 1e-6 {
		t.Error("degenerate axes not orthogonal")
	}
}

func TestPrincipalComponentsRankOne(t *testing.T) {
	// All points on a single line: second component has ~zero scale.
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 100)
	for i := range rows {
		a := rng.NormFloat64()
		rows[i] = []float64{a, 2 * a}
	}
	axes, scales, err := PrincipalComponents(rows, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1 / math.Sqrt(5), 2 / math.Sqrt(5)}
	if math.Abs(math.Abs(Dot(axes[0], want))-1) > 1e-3 {
		t.Errorf("rank-one axis = %v", axes[0])
	}
	if scales[1] > 1e-6 {
		t.Errorf("rank-one second scale = %v, want ~0", scales[1])
	}
}

func TestPropPCAFirstScaleDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		dim := 2 + rng.Intn(6)
		n := 50 + rng.Intn(200)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, dim)
			for d := range rows[i] {
				rows[i][d] = rng.NormFloat64() * float64(d+1)
			}
		}
		_, scales, err := PrincipalComponents(rows, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		if scales[1] > scales[0]+1e-9 {
			t.Fatalf("trial %d: scales not ordered: %v", trial, scales)
		}
	}
}
