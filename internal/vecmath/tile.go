package vecmath

import (
	"fmt"
	"os"
	"strconv"
	"sync"
)

// TileConfig is the resolved block shape of one blocked BMU engine
// instance: how many record rows each GEMM score tile spans. It is
// computed once at engine init (ResolveTile) from the codebook shape and
// the worker count that will share the cache, instead of the former
// one-size-fits-all gemmRecBlock constant. The tile NEVER affects
// results — the expanded form is only a candidate generator and every
// winner is settled with the canonical kernel — it only moves the
// compute/traffic balance, so autotuning is always safe.
type TileConfig struct {
	// RecRows is the record rows per score tile. Zero means "unresolved";
	// the engine falls back to DefaultTileRows.
	RecRows int
}

// Tile size bounds and defaults of the resolver.
const (
	// DefaultTileRows is the tile used when no TileConfig was resolved —
	// the former fixed gemmRecBlock.
	DefaultTileRows = 32
	// minTileRows keeps enough rows per tile for the 4×2 micro-kernel to
	// amortize its weight loads.
	minTileRows = 8
	// maxTileRows caps the scores scratch (maxTileRows×units floats) even
	// for tiny codebooks, where the norm-pass amortization has long
	// saturated.
	maxTileRows = 128
	// tileBudgetBytes is the per-worker cache budget the resolver fits
	// the tile working set into — record rows (rows×dim), the score tile
	// (rows×units), and one streamed pass of the weight block. 256 KiB
	// targets a private L2 share with room for the weight stream.
	tileBudgetBytes = 256 << 10
	// tileSharedBudgetBytes is the budget when multiple workers run
	// concurrently: SMT siblings share L2 and all cores share L3, so each
	// worker plans for half the private budget rather than assuming the
	// whole cache to itself.
	tileSharedBudgetBytes = tileBudgetBytes / 2
)

// tileEnvOverride reads the GHSOM_GEMM_TILE escape hatch once: a positive
// integer forces that many record rows per tile on every engine instance,
// for A/B measurement on hardware the resolver's cache model mispredicts.
// Values the engine could not actually run well — non-numeric,
// non-positive, outside the [minTileRows, maxTileRows] clamp, or not a
// multiple of 4 (the micro-kernel's record-row group) — are rejected with
// a one-time warning instead of silently steering the tile.
var tileEnvOverride = sync.OnceValue(func() int {
	v := os.Getenv("GHSOM_GEMM_TILE")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < minTileRows || n > maxTileRows || n%4 != 0 {
		fmt.Fprintf(os.Stderr, "ghsom: ignoring GHSOM_GEMM_TILE=%q: want a multiple of 4 in [%d, %d]\n",
			v, minTileRows, maxTileRows)
		return 0
	}
	return n
})

// ResolveTile returns the GEMM tile for a dim-wide codebook of units rows
// searched by the given number of concurrent workers (values < 1 are
// treated as 1). The tile working set — rows×(dim+units) float64s — is
// fitted into a per-worker cache budget that shrinks when workers share
// the cache hierarchy, clamped to [8, 128] rows and rounded down to a
// multiple of 4 (the micro-kernel's record-row group). The
// GHSOM_GEMM_TILE environment variable overrides the resolved row count
// wholesale.
func ResolveTile(dim, units, workers int) TileConfig {
	return ResolveTileElem(dim, units, workers, 8)
}

// ResolveTileElem is ResolveTile with the record-side element width made
// explicit: quantized candidate generation streams 1-byte int8 codes or
// 4-byte float32 rows instead of 8-byte float64s, so the same cache
// budget fits proportionally more record rows per tile (the score tile
// stays rows×units float64s either way). elemBytes of 8 is exactly
// ResolveTile.
func ResolveTileElem(dim, units, workers, elemBytes int) TileConfig {
	if n := tileEnvOverride(); n > 0 {
		return TileConfig{RecRows: n}
	}
	if dim < 1 {
		dim = 1
	}
	if units < 1 {
		units = 1
	}
	if elemBytes < 1 {
		elemBytes = 8
	}
	budget := tileBudgetBytes
	if workers > 1 {
		budget = tileSharedBudgetBytes
	}
	rows := budget / (dim*elemBytes + units*8)
	if rows > maxTileRows {
		rows = maxTileRows
	}
	rows &^= 3 // multiple of 4: full micro-kernel row groups
	if rows < minTileRows {
		rows = minTileRows
	}
	return TileConfig{RecRows: rows}
}

// Rows returns the configured tile rows, defaulting an unresolved config.
func (t TileConfig) Rows() int {
	if t.RecRows < 1 {
		return DefaultTileRows
	}
	return t.RecRows
}
