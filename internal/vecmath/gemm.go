package vecmath

import (
	"math"
	"sync"
	"sync/atomic"
)

// This file is the blocked BMU search engine: batched best-matching-unit
// search on the expanded-form identity
//
//	‖x−w‖² = ‖x‖² + ‖w‖² − 2·x·w
//
// The records×units dot-product block x·w is computed by MulBatchT — a
// cache-tiled, register-blocked matrix product over the flat record matrix
// and the flat weight arena — and the per-unit squared norms ‖w‖² come
// from a cache (NormCache) maintained by the weight owner. This turns BMU
// search from a memory-latency-bound per-record scan (one serially
// dependent accumulator walking every weight row per record) into a
// compute-dense kernel that reuses every loaded record and weight value
// across multiple accumulator chains.
//
// Exactness: the expanded form reassociates the arithmetic, so its values
// carry different rounding than the canonical scalar kernel
// (SquaredDistanceFlat). It is therefore used only as a CANDIDATE
// GENERATOR — every unit whose expanded distance lies within a small
// safety margin of the blocked minimum is settled with the exact canonical
// kernel, and the settled winner (lowest index on exact ties) is returned.
// Records whose magnitudes could overflow or cancel beyond the margin's
// error model fall back to the scalar scan wholesale. The result — index
// and squared distance — is bit-for-bit identical to ArgMinDistance on
// every input; see TestArgMinDistanceBatchMatchesScalar and
// FuzzArgMinDistanceBatch.

// Block shape of the engine: the number of record rows scored per tile
// is no longer a constant — it is a TileConfig resolved at engine init
// from the codebook shape and the worker count sharing the cache (see
// ResolveTile in tile.go; GHSOM_GEMM_TILE overrides it). The scores
// scratch is RecRows×units floats, sized to stay cache-resident. The
// micro-kernel inside MulBatchT processes 4 record rows × 2 weight rows
// per accumulator group (8 independent accumulator chains: enough to
// saturate two FMA ports at 4-cycle add latency, while the 14 live
// values still fit the register file); each loaded record value is
// reused across 2 weight rows and each weight value across 4 records.

// gemmMinBlock is the smallest units×dim codebook the blocked engine
// engages for; below it (a handful of very short rows) the per-record
// scalar scan wins and ArgMinDistanceBatch simply runs it.
const gemmMinBlock = 128

// ExpandSettleRel is the relative settle margin of the blocked BMU search:
// every unit whose expanded-form distance is within
// ExpandSettleRel·(‖x‖²+max‖w‖²) of the blocked minimum is re-judged with
// the exact canonical kernel. The true floating-point discrepancy between
// the expanded and canonical forms is bounded by ~(dim+3)·ε·(‖x‖²+‖w‖²)
// with ε = 2⁻⁵³ — below 1e-10 relative for any dim under ~10⁵ — so the
// 1e-9 margin only ever admits extra candidates (which the exact settle
// then judges); it can never exclude the true winner.
const ExpandSettleRel = 1e-9

// overflowGuard is the magnitude ceiling of the expanded-form fast path:
// when ‖x‖²+max‖w‖² is not comfortably below MaxFloat64, intermediate
// products could overflow to ±Inf (and their difference to NaN), breaking
// the candidate generator's error model. Such records take the scalar
// scan instead.
const overflowGuard = math.MaxFloat64 / 4

// ExpandGuardOK reports whether a record with squared norm xn searched
// against weights whose squared norms top out at maxNorm2 fits the
// expanded-form error model: magnitudes small enough that no
// intermediate term can overflow and the settle margin covers the
// floating-point discrepancy. Callers embedding the expanded form
// directly (the compiled routing descent) must fall back to their scalar
// kernel when this is false — the comparison is written so NaN fails it.
func ExpandGuardOK(xn, maxNorm2 float64) bool { return xn+maxNorm2 < overflowGuard }

// SumSquares returns ‖v‖² with unspecified accumulation order (SIMD when
// the platform kernel is active) — the record-norm reduction of the
// blocked engine. Candidate-generation use only; canonical rounding
// comes from Dot/SquaredDistanceFlat.
func SumSquares(v []float64) float64 { return sumSquares(v) }

// MulBatchT computes the records×units dot-product block of the batched
// BMU search: out[r*units+u] = x.Row(r) · flat[u*dim : (u+1)*dim], for all
// rows of x against all complete dim-wide rows of flat (a trailing partial
// row is ignored, matching ArgMinDistance). out must have length at least
// x.Rows()*units. The accumulation order is unspecified — the kernel
// reassociates sums for instruction-level parallelism, and uses AVX2+FMA
// assembly where the CPU supports it — so callers needing canonical
// rounding must re-derive it with Dot/SquaredDistanceFlat.
func MulBatchT(x View, flat []float64, out []float64) {
	dim := x.Dim()
	if dim == 0 {
		return
	}
	units := len(flat) / dim
	if units == 0 {
		return
	}
	mulBatchT(x, flat, out, x.Rows(), units, dim)
}

// mulBatchGeneric is the portable records×units dot-block kernel: 4
// record rows × 2 weight rows per accumulator group (8 independent
// chains), every loaded record value reused across 2 weight rows and
// every weight value across 4 records.
func mulBatchGeneric(x View, flat []float64, out []float64, n, units, dim int) {
	r := 0
	for ; r+4 <= n; r += 4 {
		x0 := x.Row(r)[:dim]
		x1 := x.Row(r + 1)[:dim]
		x2 := x.Row(r + 2)[:dim]
		x3 := x.Row(r + 3)[:dim]
		o0 := out[(r+0)*units : (r+1)*units]
		o1 := out[(r+1)*units : (r+2)*units]
		o2 := out[(r+2)*units : (r+3)*units]
		o3 := out[(r+3)*units : (r+4)*units]
		u := 0
		for ; u+2 <= units; u += 2 {
			w0 := flat[(u+0)*dim : (u+1)*dim]
			w1 := flat[(u+1)*dim : (u+2)*dim]
			var a00, a01, a10, a11, a20, a21, a30, a31 float64
			for j := 0; j < dim; j++ {
				wv0, wv1 := w0[j], w1[j]
				v0 := x0[j]
				a00 += v0 * wv0
				a01 += v0 * wv1
				v1 := x1[j]
				a10 += v1 * wv0
				a11 += v1 * wv1
				v2 := x2[j]
				a20 += v2 * wv0
				a21 += v2 * wv1
				v3 := x3[j]
				a30 += v3 * wv0
				a31 += v3 * wv1
			}
			o0[u], o0[u+1] = a00, a01
			o1[u], o1[u+1] = a10, a11
			o2[u], o2[u+1] = a20, a21
			o3[u], o3[u+1] = a30, a31
		}
		if u < units {
			w0 := flat[u*dim : (u+1)*dim]
			var a0, a1, a2, a3 float64
			for j := 0; j < dim; j++ {
				wv := w0[j]
				a0 += x0[j] * wv
				a1 += x1[j] * wv
				a2 += x2[j] * wv
				a3 += x3[j] * wv
			}
			o0[u], o1[u], o2[u], o3[u] = a0, a1, a2, a3
		}
	}
	// Record tail: one row against unit pairs, two accumulator chains.
	for ; r < n; r++ {
		xr := x.Row(r)[:dim]
		or := out[r*units : (r+1)*units]
		u := 0
		for ; u+2 <= units; u += 2 {
			w0 := flat[(u+0)*dim : (u+1)*dim]
			w1 := flat[(u+1)*dim : (u+2)*dim]
			var a0, a1 float64
			for j := 0; j < dim; j++ {
				v := xr[j]
				a0 += v * w0[j]
				a1 += v * w1[j]
			}
			or[u], or[u+1] = a0, a1
		}
		if u < units {
			w0 := flat[u*dim : (u+1)*dim]
			var a0 float64
			for j := 0; j < dim; j++ {
				a0 += xr[j] * w0[j]
			}
			or[u] = a0
		}
	}
}

// SquaredNorms writes the squared Euclidean norm of every complete
// dim-wide row of flat into dst (appended, so pass dst[:0] to reuse
// storage) and returns it.
func SquaredNorms(flat []float64, dim int, dst []float64) []float64 {
	if dim <= 0 {
		return dst
	}
	for off := 0; off+dim <= len(flat); off += dim {
		dst = append(dst, sumSquares(flat[off:off+dim]))
	}
	return dst
}

// sumSquaresGeneric is the portable squared-norm reduction: four
// independent accumulator chains so the sum is not bound by the serial
// add latency of the canonical kernels. Candidate-generation use only.
func sumSquaresGeneric(v []float64) float64 {
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= len(v); j += 4 {
		s0 += v[j] * v[j]
		s1 += v[j+1] * v[j+1]
		s2 += v[j+2] * v[j+2]
		s3 += v[j+3] * v[j+3]
	}
	for ; j < len(v); j++ {
		s0 += v[j] * v[j]
	}
	return s0 + s1 + s2 + s3
}

// MaxOrZero returns the largest element of v under plain > comparison
// (NaN entries are ignored), or 0 for an empty slice. It is the
// max-squared-norm reduction of the blocked engine's settle margin: a NaN
// norm means the unit's weights contain NaN, so its exact distance is NaN
// for every query and the unit can never win in the scalar kernel either —
// excluding it from the margin is safe.
func MaxOrZero(v []float64) float64 {
	var m float64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// normSnapshot is one immutable generation of a NormCache: the norm
// table of a specific (version, dim, units) arena state. Snapshots are
// never mutated after publication — invalidation builds a fresh one —
// so readers holding a loaded snapshot are always consistent.
type normSnapshot struct {
	version uint64
	dim     int
	norms   []float64
}

// NormCache is a versioned, read-mostly cache of the per-row squared
// norms of a flat row-major weight arena — the ‖w‖² term of the
// expanded-form BMU search. The arena owner holds one counter that it
// bumps on every weight mutation (see som.Map.Version); Sync recomputes
// the table if and only if the presented version, dimension, or row
// count differs from the cached one, which makes a stale cache
// structurally impossible as long as every mutation bumps the counter —
// including reallocating growth, where the new arena arrives with a new
// version.
//
// The cache holds one atomic snapshot pointer and copies on invalidate:
// the steady-state read path (trained model, unchanged version) is one
// atomic load and three comparisons — no mutex, so any number of
// concurrent batch searches share the table without contending. On a
// version change each syncing goroutine builds a private replacement
// table and publishes it with an atomic store; concurrent syncs of the
// same state may race to publish, but every candidate snapshot is
// derived from identical inputs, so whichever lands is correct and the
// transient duplicate work is bounded by the worker count. Mutating the
// arena concurrently with Sync remains the caller's race, exactly as it
// is for the search itself. The zero NormCache is ready to use.
type NormCache struct {
	snap atomic.Pointer[normSnapshot]
}

// Sync returns the squared-norm table of flat's dim-wide rows,
// recomputing it when version, dim, or the row count differs from the
// cached snapshot. The returned slice is immutable once published:
// callers may share it read-only across goroutines and it stays valid —
// and consistent — even if another goroutine invalidates the cache,
// which installs a fresh table rather than rewriting this one.
func (c *NormCache) Sync(flat []float64, dim int, version uint64) []float64 {
	units := 0
	if dim > 0 {
		units = len(flat) / dim
	}
	if s := c.snap.Load(); s != nil && s.version == version && s.dim == dim && len(s.norms) == units {
		return s.norms
	}
	s := &normSnapshot{version: version, dim: dim, norms: SquaredNorms(flat, dim, nil)}
	c.snap.Store(s)
	return s.norms
}

// BMUScratch is the per-engine-instance working state of the blocked BMU
// search: the RecRows×units expanded-distance score tile, a norm table
// for callers that pass none, and the resolved TileConfig. A scratch is
// NOT safe for concurrent use; parallel callers give each worker its own
// (the per-worker arenas of som's bmuView and the routing descent), which
// keeps the steady-state hot path free of pool and lock traffic. The
// zero value is ready to use with the default tile.
type BMUScratch struct {
	// Tile is the resolved block shape; the zero value selects
	// DefaultTileRows.
	Tile   TileConfig
	scores []float64
	norms  []float64

	// Quantized candidate-generation working state (see
	// ArgMinDistanceBatchQuant in quant.go): per-tile record codes /
	// narrowed rows plus the per-row scale and residual-norm tables the
	// int8 settle margin consumes.
	xq       []int8
	x32      []float32
	rowScale []float64
	rowResid []float64
}

// bmuBatchPool recycles scratches for the package-level
// ArgMinDistanceBatch entry point, whose callers don't manage worker
// identity themselves.
var bmuBatchPool = sync.Pool{New: func() any { return &BMUScratch{} }}

// ArgMinDistanceBatch computes, for every row of x, the index of the
// nearest dim-wide row of the packed row-major matrix flat and the squared
// distance to it — the batched form of calling ArgMinDistance per row,
// with bit-for-bit identical results (same indices, same distance bits,
// ties to the lowest index, (-1, +Inf) for degenerate queries). out
// receives the indices and outDist the squared distances; either may be
// nil to skip that output, and both must otherwise have length at least
// x.Rows().
//
// norms carries the squared norm of every flat row (e.g. from
// NormCache.Sync); pass nil to have them computed internally. Supplying a
// cached table amortizes the ‖w‖² pass across calls — the point of the
// norm cache on training loops that search between incremental weight
// updates.
//
// Passing outDist == nil does more than skip a store: when the settle
// margin leaves a single candidate — virtually every record outside
// near-ties — that candidate is provably the scalar argmin and the
// canonical distance scan is skipped entirely, removing the serial
// add-latency chain from the per-record critical path. The training BMU
// pass (which only needs classes) and interior routing levels (which only
// need the descent edge) run in this mode.
//
// The call runs serially; callers parallelize by splitting the view
// (View.Slice) and the output slices across workers, giving each worker
// its own BMUScratch (see the method form) so no pool or lock is touched
// per tile. This package-level form services callers without worker
// identity from an internal pool. Steady-state heap allocation is zero.
func ArgMinDistanceBatch(x View, flat []float64, norms []float64, out []int, outDist []float64) {
	sc := bmuBatchPool.Get().(*BMUScratch)
	sc.ArgMinDistanceBatch(x, flat, norms, out, outDist)
	bmuBatchPool.Put(sc)
}

// ArgMinDistanceBatch is the scratch-owning form of the package-level
// function: identical contract and bit-identical results, with the score
// tile, fallback norm table, and tile shape held by s. One scratch per
// worker is the contention-free steady state of the parallel dataplanes.
func (s *BMUScratch) ArgMinDistanceBatch(x View, flat []float64, norms []float64, out []int, outDist []float64) {
	n := x.Rows()
	if n == 0 {
		return
	}
	dim := x.Dim()
	units := 0
	if dim > 0 {
		units = len(flat) / dim
	}
	if units == 0 {
		// Matches the scalar contract: empty query or no complete weight
		// row yields (-1, +Inf).
		for i := 0; i < n; i++ {
			if out != nil {
				out[i] = -1
			}
			if outDist != nil {
				outDist[i] = math.Inf(1)
			}
		}
		return
	}
	if units*dim < gemmMinBlock {
		// Codebooks too small to amortize the blocked machinery (norm
		// pass, score tile, settle scans): the scalar scan is faster and
		// trivially identical.
		for i := 0; i < n; i++ {
			b, d := ArgMinDistance(x.Row(i), flat)
			if out != nil {
				out[i] = b
			}
			if outDist != nil {
				outDist[i] = d
			}
		}
		return
	}
	if norms == nil {
		s.norms = SquaredNorms(flat, dim, s.norms[:0])
		norms = s.norms
	}
	maxN := MaxOrZero(norms)
	tile := s.Tile.Rows()
	if n < tile {
		tile = n
	}
	if cap(s.scores) < tile*units {
		s.scores = make([]float64, tile*units)
	}
	for lo := 0; lo < n; lo += tile {
		hi := lo + tile
		if hi > n {
			hi = n
		}
		sub := x.Slice(lo, hi)
		scores := s.scores[:(hi-lo)*units]
		MulBatchT(sub, flat, scores)
		for i := 0; i < hi-lo; i++ {
			xi := sub.Row(i)
			best, bestVal := settleRow(xi, flat, norms, maxN, scores[i*units:(i+1)*units], dim, outDist != nil)
			if out != nil {
				out[lo+i] = best
			}
			if outDist != nil {
				outDist[lo+i] = bestVal
			}
		}
	}
}

// settleRow turns one record's dot-product row into the exact argmin:
// expanded-form distances select candidates within the settle margin of
// the blocked minimum, the canonical kernel judges them, and degenerate
// magnitudes (overflow risk, non-finite norms, or an empty candidate set)
// fall back to the scalar scan. dots is overwritten with the expanded
// distances. When needDist is false and a single candidate survives the
// margin, the canonical scan is skipped: the scalar argmin is always
// inside the margin, so a unique candidate is it.
func settleRow(xi, flat, norms []float64, maxN float64, dots []float64, dim int, needDist bool) (int, float64) {
	xn := sumSquares(xi)
	if !(xn+maxN < overflowGuard) {
		return ArgMinDistance(xi, flat)
	}
	minD := math.Inf(1)
	for u, nrm := range norms {
		d := xn + nrm - 2*dots[u]
		dots[u] = d
		if d < minD {
			minD = d
		}
	}
	thr := minD + ExpandSettleRel*(xn+maxN)
	return settleCandidates(xi, flat, dots, thr, dim, needDist)
}

// settleCandidates is the exact-settle tail shared by every candidate
// generator (f64, f32, int8): judge the expanded distances in dots
// against the already-widened threshold, short-circuiting the unique
// candidate in index-only mode, and fall back to the scalar scan when
// no candidate survives (NaN-saturated rows).
func settleCandidates(xi, flat, dots []float64, thr float64, dim int, needDist bool) (int, float64) {
	if !needDist {
		// Index-only mode: count the candidates; a unique one needs no
		// canonical judging.
		cand, nc := -1, 0
		for u, d := range dots {
			if d <= thr {
				cand = u
				nc++
				if nc > 1 {
					break
				}
			}
		}
		if nc == 1 {
			return cand, math.NaN()
		}
	}
	best, bestVal := -1, math.Inf(1)
	for u, d := range dots {
		if d <= thr {
			if e := SquaredDistanceFlat(xi, flat, u*dim); e < bestVal {
				best, bestVal = u, e
			}
		}
	}
	if best < 0 {
		// All candidates (or all expanded distances) were NaN — exactly the
		// inputs whose scalar behavior is subtle; let the reference kernel
		// decide.
		return ArgMinDistance(xi, flat)
	}
	return best, bestVal
}
