package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

func TestSquaredDistanceFlatMatchesRowView(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dim, rows := 5, 8
	flat := make([]float64, dim*rows)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for r := 0; r < rows; r++ {
		want := SquaredDistance(x, flat[r*dim:(r+1)*dim])
		got := SquaredDistanceFlat(x, flat, r*dim)
		if got != want {
			t.Errorf("row %d: flat = %v, rowwise = %v", r, got, want)
		}
	}
}

func TestArgMinDistance(t *testing.T) {
	// Rows at known distances from the origin query.
	flat := []float64{
		3, 0, // d2 = 9
		1, 1, // d2 = 2
		0, 2, // d2 = 4
		1, 1, // d2 = 2 (tie: must lose to index 1)
	}
	x := []float64{0, 0}
	idx, d2 := ArgMinDistance(x, flat)
	if idx != 1 || d2 != 2 {
		t.Errorf("ArgMinDistance = (%d, %v), want (1, 2)", idx, d2)
	}
}

func TestArgMinDistanceMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		dim := 1 + rng.Intn(10)
		rows := 1 + rng.Intn(30)
		flat := make([]float64, dim*rows)
		for i := range flat {
			flat[i] = rng.NormFloat64()
		}
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		wantIdx, wantD2 := -1, math.Inf(1)
		for r := 0; r < rows; r++ {
			if d := SquaredDistance(x, flat[r*dim:(r+1)*dim]); d < wantD2 {
				wantIdx, wantD2 = r, d
			}
		}
		gotIdx, gotD2 := ArgMinDistance(x, flat)
		if gotIdx != wantIdx || gotD2 != wantD2 {
			t.Fatalf("trial %d: ArgMinDistance = (%d, %v), want (%d, %v)",
				trial, gotIdx, gotD2, wantIdx, wantD2)
		}
	}
}

func TestArgMinDistanceDegenerate(t *testing.T) {
	if idx, d2 := ArgMinDistance(nil, []float64{1, 2}); idx != -1 || !math.IsInf(d2, 1) {
		t.Errorf("empty query: (%d, %v)", idx, d2)
	}
	if idx, d2 := ArgMinDistance([]float64{1, 2, 3}, []float64{1, 2}); idx != -1 || !math.IsInf(d2, 1) {
		t.Errorf("matrix shorter than one row: (%d, %v)", idx, d2)
	}
	// Trailing partial row is ignored.
	if idx, _ := ArgMinDistance([]float64{0, 0}, []float64{5, 5, 0, 0, 9}); idx != 1 {
		t.Errorf("partial trailing row: idx = %d, want 1", idx)
	}
}
