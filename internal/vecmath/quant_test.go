package vecmath

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// quantPrecisions are the shadow-arena rungs under test.
var quantPrecisions = []Precision{PrecisionF32, PrecisionI8}

// assertQuantMatchesScalar checks the quantized batch search against the
// scalar reference on every row, both with and without distances, at a
// given rung. Bitwise: same indices, same distance bits.
func assertQuantMatchesScalar(t *testing.T, prec Precision, data []float64, flat []float64, dim int) {
	t.Helper()
	qa := BuildQuantArena(flat, dim, prec)
	n := len(data) / dim
	mat, err := MatrixOver(data, n, dim)
	if err != nil {
		t.Fatalf("MatrixOver: %v", err)
	}
	v := mat.View()
	norms := SquaredNorms(flat, dim, nil)

	got := make([]int, n)
	gotD := make([]float64, n)
	ArgMinDistanceBatchQuant(v, flat, norms, qa, got, gotD)

	idxOnly := make([]int, n)
	ArgMinDistanceBatchQuant(v, flat, norms, qa, idxOnly, nil)

	for i := 0; i < n; i++ {
		wb, wd := ArgMinDistance(v.Row(i), flat)
		if got[i] != wb {
			t.Fatalf("prec=%v row %d: batch index %d, scalar %d", prec, i, got[i], wb)
		}
		if idxOnly[i] != wb {
			t.Fatalf("prec=%v row %d: index-only index %d, scalar %d", prec, i, idxOnly[i], wb)
		}
		if math.Float64bits(gotD[i]) != math.Float64bits(wd) {
			t.Fatalf("prec=%v row %d: batch dist %x (%v), scalar %x (%v)",
				prec, i, math.Float64bits(gotD[i]), gotD[i], math.Float64bits(wd), wd)
		}
	}
}

func TestArgMinDistanceBatchQuantMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sz := range []struct{ n, units, dim int }{
		{1, 16, 11}, {37, 48, 8}, {129, 64, 33}, {64, 200, 17}, {5, 1024, 118},
	} {
		flat := make([]float64, sz.units*sz.dim)
		for i := range flat {
			flat[i] = rng.NormFloat64() * 3
		}
		data := make([]float64, sz.n*sz.dim)
		for i := range data {
			data[i] = rng.NormFloat64() * 3
		}
		for _, p := range quantPrecisions {
			assertQuantMatchesScalar(t, p, data, flat, sz.dim)
		}
	}
}

// TestArgMinDistanceBatchQuantNearTies drives records onto ULP-ladder
// near-ties and exact ties between units, where a candidate generator
// with an unsound error bound would pick the wrong winner or break the
// lowest-index tie rule.
func TestArgMinDistanceBatchQuantNearTies(t *testing.T) {
	const dim = 9
	const units = 32
	base := make([]float64, dim)
	for j := range base {
		base[j] = float64(j%5) - 2.25
	}
	flat := make([]float64, units*dim)
	for u := 0; u < units; u++ {
		copy(flat[u*dim:], base)
	}
	// Units 0..7 exactly tie; units 8+ walk away one ULP at a time.
	for u := 8; u < units; u++ {
		w := flat[u*dim : (u+1)*dim]
		w[0] = math.Nextafter(w[0], math.Inf(1))
		for k := 8; k < u; k++ {
			w[1] = math.Nextafter(w[1], math.Inf(1))
		}
	}
	var data []float64
	probe := make([]float64, dim)
	copy(probe, base)
	for i := 0; i < 48; i++ {
		data = append(data, probe...)
		probe[i%dim] = math.Nextafter(probe[i%dim], math.Inf(-1))
	}
	for _, p := range quantPrecisions {
		assertQuantMatchesScalar(t, p, data, flat, dim)
	}
}

// TestArgMinDistanceBatchQuantSpecials exercises the wholesale fallback
// (overflow-scale magnitudes, Inf, NaN rows and weights) and the
// denormal/±0 regime where quantization scales collapse.
func TestArgMinDistanceBatchQuantSpecials(t *testing.T) {
	const dim = 8
	const units = 24
	big := 1.5e154 // sq exceeds overflowGuard in pairs
	tiny := math.SmallestNonzeroFloat64
	rows := [][]float64{
		{big, -big, big, -big, big, -big, big, -big},
		{math.Inf(1), 0, 0, 0, 0, 0, 0, 0},
		{math.NaN(), 1, 2, 3, 4, 5, 6, 7},
		{tiny, -tiny, tiny * 4, 0, math.Copysign(0, -1), tiny, -tiny, 0},
		{0, 0, 0, 0, 0, 0, 0, 0},
		{1e-300, -1e-300, 1e-308, -1e-308, 0, 0, 0, 0},
		{1, 2, 3, 4, 5, 6, 7, 8},
	}
	rng := rand.New(rand.NewSource(11))
	specials := []float64{0, math.Copysign(0, -1), tiny, -tiny, 1e-310, math.Inf(1), math.NaN(), big}
	for c := 0; c < 3; c++ {
		flat := make([]float64, units*dim)
		for i := range flat {
			switch {
			case c == 1 && rng.Intn(7) == 0:
				flat[i] = specials[rng.Intn(len(specials))]
			case c == 2:
				flat[i] = specials[rng.Intn(4)] // denormal/zero-only codebook
			default:
				flat[i] = rng.NormFloat64()
			}
		}
		var data []float64
		for _, r := range rows {
			data = append(data, r...)
		}
		for i := 0; i < 16*dim; i++ {
			data = append(data, rng.NormFloat64())
		}
		for _, p := range quantPrecisions {
			assertQuantMatchesScalar(t, p, data, flat, dim)
		}
	}
}

// TestArgMinDistanceBatchQuantPortableKernel forces the portable Go
// kernels and re-checks bit-identity, so non-amd64 builds are covered by
// proxy and the asm/generic pair can never drift apart.
func TestArgMinDistanceBatchQuantPortableKernel(t *testing.T) {
	saved := useAVX
	useAVX = false
	defer func() { useAVX = saved }()

	rng := rand.New(rand.NewSource(13))
	flat := make([]float64, 96*21)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	data := make([]float64, 70*21)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	for _, p := range quantPrecisions {
		assertQuantMatchesScalar(t, p, data, flat, 21)
	}
}

// TestMulBatchQ8KernelExact checks that the asm and portable int8 dot
// blocks agree exactly (both are exact int32 sums) across awkward dims
// around the 16-lane boundary and unit tails around the 4-row kernel.
func TestMulBatchQ8KernelExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dim := range []int{1, 15, 16, 17, 31, 32, 33, 48, 118, 128} {
		for _, units := range []int{1, 2, 3, 4, 5, 7, 8, 12} {
			n := 6
			xq := make([]int8, n*dim)
			codes := make([]int8, units*dim)
			for i := range xq {
				xq[i] = int8(rng.Intn(255) - 127)
			}
			for i := range codes {
				codes[i] = int8(rng.Intn(255) - 127)
			}
			got := make([]float64, n*units)
			want := make([]float64, n*units)
			mulBatchQ8(xq, codes, got, n, units, dim)
			mulBatchQ8Generic(xq, codes, want, n, units, dim)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dim=%d units=%d out[%d]: asm %v, generic %v", dim, units, i, got[i], want[i])
				}
			}
		}
	}
}

func TestParsePrecision(t *testing.T) {
	for s, want := range map[string]Precision{
		"": PrecisionAuto, "auto": PrecisionAuto, "AUTO": PrecisionAuto,
		"f64": PrecisionF64, "F32": PrecisionF32, "i8": PrecisionI8,
	} {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"f16", "int8", "8", "fast"} {
		if _, err := ParsePrecision(s); err == nil {
			t.Fatalf("ParsePrecision(%q) accepted", s)
		}
	}
}

func TestPrecisionEffective(t *testing.T) {
	if got := PrecisionAuto.Effective(1024, 118); got != PrecisionI8 {
		t.Fatalf("auto on large codebook: %v", got)
	}
	if got := PrecisionAuto.Effective(4, 8); got != PrecisionF64 {
		t.Fatalf("auto on tiny codebook: %v", got)
	}
	if got := PrecisionI8.Effective(2, quantI8MaxDim+1); got != PrecisionF64 {
		t.Fatalf("i8 beyond dim cap: %v", got)
	}
	if got := PrecisionF32.Effective(1, 1); got != PrecisionF32 {
		t.Fatalf("explicit f32: %v", got)
	}
}

func TestQuantCacheSync(t *testing.T) {
	flat := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	var c QuantCache
	a1 := c.Sync(flat, 2, 1, PrecisionI8)
	a2 := c.Sync(flat, 2, 1, PrecisionI8)
	if a1 == nil || a1 != a2 {
		t.Fatalf("same version should reuse the snapshot: %p %p", a1, a2)
	}
	a3 := c.Sync(flat, 2, 2, PrecisionI8)
	if a3 == a1 {
		t.Fatal("version bump should rebuild")
	}
	a4 := c.Sync(flat, 2, 2, PrecisionF32)
	if a4 == nil || a4 == a3 || a4.Precision() != PrecisionF32 {
		t.Fatal("precision change should rebuild")
	}
	if c.Sync(flat, 0, 3, PrecisionI8) != nil {
		t.Fatal("degenerate dim should yield nil arena")
	}
}

func TestQuantArenaBytes(t *testing.T) {
	flat := make([]float64, 64*16)
	for i := range flat {
		flat[i] = float64(i%13) - 6
	}
	i8 := BuildQuantArena(flat, 16, PrecisionI8)
	f32 := BuildQuantArena(flat, 16, PrecisionF32)
	if i8.Bytes() != 64*16+3*64*8 {
		t.Fatalf("i8 bytes = %d", i8.Bytes())
	}
	if f32.Bytes() != 64*16*4 {
		t.Fatalf("f32 bytes = %d", f32.Bytes())
	}
	var nilA *QuantArena
	if nilA.Bytes() != 0 {
		t.Fatal("nil arena bytes")
	}
}

// FuzzArgMinDistanceBatchQuantized drives both rungs with adversarial
// bit patterns — ties, ±0, denormals, Inf/NaN fallback rows, and
// near-ties straddling the quantization error bound — asserting bitwise
// agreement with the scalar reference kernel.
func FuzzArgMinDistanceBatchQuantized(f *testing.F) {
	mk := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(uint8(3), uint8(1), mk(1, 2, 3, 1, 2, 3.0000000001, 0.5, 1.5, 2.5))
	f.Add(uint8(2), uint8(0), mk(0, math.Copysign(0, -1), math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, 1e-310, 0))
	f.Add(uint8(4), uint8(1), mk(math.Inf(1), math.NaN(), 1.5e154, -1.5e154, 1, 2, 3, 4, 5, 6, 7, 8))
	f.Add(uint8(4), uint8(0), mk(1e300, 1e-300, -1e300, math.MaxFloat64/4, 7, 7, 7, 7, 7, 7))
	f.Fuzz(func(t *testing.T, rawDim, precSel uint8, raw []byte) {
		dim := int(rawDim)%8 + 1
		prec := quantPrecisions[int(precSel)%len(quantPrecisions)]
		vals := make([]float64, len(raw)/8)
		if len(vals) < 2*dim {
			t.Skip()
		}
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		// First half becomes the codebook, second half the queries; pad
		// the codebook so the blocked path actually engages.
		half := len(vals) / 2
		units := half / dim
		if units == 0 {
			t.Skip()
		}
		flat := make([]float64, 0, (units+gemmMinBlock/dim+1)*dim)
		flat = append(flat, vals[:units*dim]...)
		for len(flat)*1 < gemmMinBlock {
			flat = append(flat, flat[:dim]...)
		}
		qn := len(vals[half:]) / dim
		if qn == 0 {
			t.Skip()
		}
		data := vals[half : half+qn*dim]
		assertQuantMatchesScalar(t, prec, data, flat, dim)
	})
}

// BenchmarkArgMinDistanceBatchQuant measures the quantized engine on the
// acceptance shape (1024 units × dim 118) per rung; compare against
// BenchmarkArgMinDistanceBatch for the f64 baseline.
func BenchmarkArgMinDistanceBatchQuant(b *testing.B) {
	const dim = 118
	const units = 1024
	const n = 2048
	rng := rand.New(rand.NewSource(42))
	flat := make([]float64, units*dim)
	for i := range flat {
		flat[i] = rng.Float64()
	}
	data := make([]float64, n*dim)
	for i := range data {
		data[i] = rng.Float64()
	}
	mat, err := MatrixOver(data, n, dim)
	if err != nil {
		b.Fatalf("MatrixOver: %v", err)
	}
	v := mat.View()
	norms := SquaredNorms(flat, dim, nil)
	out := make([]int, n)
	for _, p := range quantPrecisions {
		b.Run(p.String(), func(b *testing.B) {
			qa := BuildQuantArena(flat, dim, p)
			var sc BMUScratch
			sc.Tile = ResolveTileElem(dim, units, 1, p.RecordElemBytes())
			b.SetBytes(int64(n * dim * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.ArgMinDistanceBatchQuant(v, flat, norms, qa, out, nil)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}
