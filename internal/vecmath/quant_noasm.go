//go:build !amd64

package vecmath

import "math"

func mulBatchQ8(xq, codes []int8, out []float64, n, units, dim int) {
	mulBatchQ8Generic(xq, codes, out, n, units, dim)
}

func mulBatchF32(x32, w32 []float32, out []float64, n, units, dim int) {
	mulBatchF32Generic(x32, w32, out, n, units, dim)
}

// rescaleMinQ8 turns one record's raw int8 dots into expanded distances
// in place and returns their minimum (NaN entries ignored).
func rescaleMinQ8(dots, norms, scales []float64, xn, xs float64) float64 {
	minD := math.Inf(1)
	for i := range norms {
		d := xn + norms[i] - 2*(xs*scales[i]*dots[i])
		dots[i] = d
		if d < minD {
			minD = d
		}
	}
	return minD
}
