package vecmath

import (
	"errors"
	"testing"
)

func TestMatrixFromRowsAndRowViews(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	m, err := MatrixFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	for i, want := range rows {
		if !Equal(m.Row(i), want, 0) {
			t.Errorf("row %d = %v, want %v", i, m.Row(i), want)
		}
	}
	// Row views alias the backing array.
	m.Row(1)[0] = 30
	if m.Data()[2] != 30 {
		t.Error("Row view does not alias Data")
	}
	// The source rows were copied, not aliased.
	if rows[1][0] != 3 {
		t.Error("MatrixFromRows aliased its input")
	}
}

func TestMatrixFromRowsErrors(t *testing.T) {
	if _, err := MatrixFromRows(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("ragged err = %v", err)
	}
	if _, err := MatrixFromRows([][]float64{{}}); !errors.Is(err, ErrBadShape) {
		t.Errorf("zero-width err = %v", err)
	}
}

func TestMatrixOver(t *testing.T) {
	backing := []float64{1, 2, 3, 4, 5, 6}
	m, err := MatrixOver(backing, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(m.Row(1), []float64{4, 5, 6}, 0) {
		t.Errorf("row 1 = %v", m.Row(1))
	}
	// Zero-copy: writes through the matrix reach the original slice.
	m.Row(0)[0] = 10
	if backing[0] != 10 {
		t.Error("MatrixOver copied instead of aliasing")
	}
	if _, err := MatrixOver(backing, 3, 3); !errors.Is(err, ErrBadShape) {
		t.Errorf("short-backing err = %v", err)
	}
}

func TestViewSubsetAndSubview(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{0}, {1}, {2}, {3}, {4}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	all := m.View()
	if all.Rows() != 6 || all.Dim() != 1 {
		t.Fatalf("all view shape %dx%d", all.Rows(), all.Dim())
	}
	sub := m.Subset([]int{5, 1, 3})
	if sub.Rows() != 3 {
		t.Fatalf("subset rows = %d", sub.Rows())
	}
	for k, want := range []float64{5, 1, 3} {
		if sub.Row(k)[0] != want {
			t.Errorf("subset row %d = %v, want %v", k, sub.Row(k)[0], want)
		}
		if sub.Index(k) != int(want) {
			t.Errorf("subset index %d = %d, want %d", k, sub.Index(k), int(want))
		}
	}
	// Subview composes indirections down to matrix rows.
	subsub := sub.Subview([]int{2, 0})
	if subsub.Row(0)[0] != 3 || subsub.Row(1)[0] != 5 {
		t.Errorf("subview rows = %v, %v, want 3, 5", subsub.Row(0)[0], subsub.Row(1)[0])
	}
	if subsub.Index(0) != 3 || subsub.Index(1) != 5 {
		t.Errorf("subview indices = %d, %d", subsub.Index(0), subsub.Index(1))
	}
	// Subview of an all-rows view is a plain subset.
	direct := all.Subview([]int{4})
	if direct.Row(0)[0] != 4 || direct.Index(0) != 4 {
		t.Error("subview of all-rows view broken")
	}
}

func TestViewMean(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 10}, {3, 30}, {5, 50}})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := m.View().Mean()
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(mean, []float64{3, 30}, 1e-15) {
		t.Errorf("mean = %v", mean)
	}
	sub, err := m.Subset([]int{0, 2}).Mean()
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(sub, []float64{3, 30}, 1e-15) {
		t.Errorf("subset mean = %v", sub)
	}
	if _, err := m.Subset([]int{}).Mean(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty-view mean err = %v", err)
	}
}

func TestMatrixCheckIndex(t *testing.T) {
	m, _ := NewMatrix(4, 2)
	if err := m.CheckIndex([]int{0, 3, 2}); err != nil {
		t.Errorf("valid index rejected: %v", err)
	}
	if err := m.CheckIndex(nil); err != nil {
		t.Errorf("nil index rejected: %v", err)
	}
	if err := m.CheckIndex([]int{0, 4}); !errors.Is(err, ErrBadShape) {
		t.Errorf("out-of-range err = %v", err)
	}
	if err := m.CheckIndex([]int{-1}); !errors.Is(err, ErrBadShape) {
		t.Errorf("negative err = %v", err)
	}
}
