package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := w.Variance(); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := w.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d, want %d", w.N(), len(xs))
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.SampleVariance() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
	w.Add(42)
	if w.Mean() != 42 {
		t.Errorf("single-sample mean = %v", w.Mean())
	}
	if w.SampleVariance() != 0 {
		t.Errorf("single-sample SampleVariance = %v, want 0", w.SampleVariance())
	}
}

func TestPropWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.NormFloat64()*5 + 3
			w.Add(xs[i])
		}
		mean := Sum(xs) / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-ss/float64(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVectorWelford(t *testing.T) {
	vw := NewVectorWelford(2)
	vw.Add([]float64{1, 10})
	vw.Add([]float64{3, 30})
	if got := vw.Means(); !Equal(got, []float64{2, 20}, 1e-12) {
		t.Errorf("Means = %v", got)
	}
	if vw.Dim() != 2 {
		t.Errorf("Dim = %d", vw.Dim())
	}
	sd := vw.StdDevs()
	if math.Abs(sd[0]-1) > 1e-12 || math.Abs(sd[1]-10) > 1e-12 {
		t.Errorf("StdDevs = %v", sd)
	}
}

func TestVectorWelfordRaggedInput(t *testing.T) {
	vw := NewVectorWelford(3)
	vw.Add([]float64{1, 2})          // short: third dim untouched
	vw.Add([]float64{1, 2, 3, 4, 5}) // long: extras ignored
	means := vw.Means()
	if means[0] != 1 || means[1] != 2 || means[2] != 3 {
		t.Errorf("Means after ragged input = %v", means)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{4, 1, 3, 2, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		if got := Quantile(v, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty slice should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Quantile(v, 0.5)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Errorf("Quantile mutated input: %v", v)
	}
}

func TestQuantileSortedInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := QuantileSorted(sorted, 0.3); math.Abs(got-3) > 1e-12 {
		t.Errorf("QuantileSorted interpolation = %v, want 3", got)
	}
	// Out-of-range q clamps.
	if got := QuantileSorted(sorted, -1); got != 0 {
		t.Errorf("QuantileSorted(q=-1) = %v, want 0", got)
	}
	if got := QuantileSorted(sorted, 2); got != 10 {
		t.Errorf("QuantileSorted(q=2) = %v, want 10", got)
	}
}

func TestEntropy(t *testing.T) {
	// Uniform over 4 outcomes: 2 bits.
	if got := Entropy([]float64{1, 1, 1, 1}); math.Abs(got-2) > 1e-12 {
		t.Errorf("uniform entropy = %v, want 2", got)
	}
	// Single outcome: 0 bits.
	if got := Entropy([]float64{7, 0, 0}); got != 0 {
		t.Errorf("concentrated entropy = %v, want 0", got)
	}
	// Empty / zero total: 0 by convention.
	if got := Entropy(nil); got != 0 {
		t.Errorf("empty entropy = %v, want 0", got)
	}
}

func TestPropEntropyBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		counts := make([]float64, n)
		for i := range counts {
			counts[i] = float64(r.Intn(100))
		}
		h := Entropy(counts)
		return h >= -1e-12 && h <= math.Log2(float64(n))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 0, 2, 2)
	// Width 1: [0,1) -> bin0 except values >= 1 go to bin1; 2 clamps to last.
	if bins[0] != 2 || bins[1] != 3 {
		t.Errorf("Histogram = %v, want [2 3]", bins)
	}
	if got := Histogram(nil, 0, 1, 3); len(got) != 3 || got[0]+got[1]+got[2] != 0 {
		t.Errorf("empty Histogram = %v", got)
	}
	if Histogram([]float64{1}, 0, 1, 0) != nil {
		t.Error("Histogram with n=0 should be nil")
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	bins := Histogram([]float64{-100, 100}, 0, 10, 4)
	if bins[0] != 1 || bins[3] != 1 {
		t.Errorf("Histogram outlier clamp = %v", bins)
	}
}

func TestHistogramDegenerateRange(t *testing.T) {
	// min == max: all values land in bin 0 (width 0 guard).
	bins := Histogram([]float64{5, 5, 5}, 5, 5, 3)
	if bins[0] != 3 {
		t.Errorf("degenerate-range Histogram = %v, want all in bin 0", bins)
	}
}

func TestPropHistogramConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Float64()*20 - 10
		}
		bins := Histogram(v, -5, 5, 8)
		total := 0
		for _, b := range bins {
			total += b
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
