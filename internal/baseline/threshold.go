package baseline

import (
	"math"
	"sort"
)

// VolumeThreshold is the naive single-feature detector: flag a record as
// an attack when a chosen feature (typically the 2-second connection
// count) exceeds a quantile learned from normal traffic. It is the floor
// every clustering detector must beat.
type VolumeThreshold struct {
	feature   int
	threshold float64
}

// TrainVolumeThreshold learns the q-quantile of feature featureIdx over
// normalData (rows of encoded vectors known to be normal).
func TrainVolumeThreshold(normalData [][]float64, featureIdx int, q float64) (*VolumeThreshold, error) {
	if len(normalData) == 0 {
		return nil, ErrNoData
	}
	vals := make([]float64, 0, len(normalData))
	for _, row := range normalData {
		if featureIdx < 0 || featureIdx >= len(row) {
			continue
		}
		vals = append(vals, row[featureIdx])
	}
	if len(vals) == 0 {
		return nil, ErrNoData
	}
	sort.Float64s(vals)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(vals)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	thr := vals[lo]
	if hi != lo {
		frac := pos - float64(lo)
		thr = vals[lo]*(1-frac) + vals[hi]*frac
	}
	return &VolumeThreshold{feature: featureIdx, threshold: thr}, nil
}

// Threshold returns the learned cutoff.
func (v *VolumeThreshold) Threshold() float64 { return v.threshold }

// Score returns the feature value (higher = more anomalous).
func (v *VolumeThreshold) Score(x []float64) float64 {
	if v.feature < 0 || v.feature >= len(x) {
		return 0
	}
	return x[v.feature]
}

// IsAttack reports whether x exceeds the learned threshold.
func (v *VolumeThreshold) IsAttack(x []float64) bool {
	return v.Score(x) > v.threshold
}
