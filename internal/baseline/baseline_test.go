package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ghsom/internal/vecmath"
)

func clusters(rng *rand.Rand, nPer int, centers ...[]float64) [][]float64 {
	var data [][]float64
	for _, c := range centers {
		for i := 0; i < nPer; i++ {
			x := make([]float64, len(c))
			for d := range x {
				x[d] = c[d] + rng.NormFloat64()*0.3
			}
			data = append(data, x)
		}
	}
	return data
}

func TestKMeansRecoversCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	data := clusters(rng, 100, centers...)
	m, err := TrainKMeans(data, KMeansConfig{K: 3, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 {
		t.Fatalf("K = %d", m.K())
	}
	// Every true center must be within 1 of some centroid.
	for _, c := range centers {
		best := math.Inf(1)
		for i := 0; i < m.K(); i++ {
			if d := vecmath.Distance(c, m.Centroid(i)); d < best {
				best = d
			}
		}
		if best > 1 {
			t.Errorf("no centroid near true center %v (nearest %v)", c, best)
		}
	}
	// Assignments of the centers differ pairwise.
	a1, _ := m.Assign(centers[0])
	a2, _ := m.Assign(centers[1])
	a3, _ := m.Assign(centers[2])
	if a1 == a2 || a2 == a3 || a1 == a3 {
		t.Error("cluster centers share assignments")
	}
}

func TestKMeansAssignDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := [][]float64{{0}, {0.1}, {10}, {10.1}}
	m, err := TrainKMeans(data, KMeansConfig{K: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	_, d := m.Assign([]float64{0.05})
	if d > 0.2 {
		t.Errorf("assignment distance %v too large", d)
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := TrainKMeans(nil, KMeansConfig{K: 2, Rng: rng}); !errors.Is(err, ErrNoData) {
		t.Errorf("no-data err = %v", err)
	}
	if _, err := TrainKMeans([][]float64{{1}}, KMeansConfig{K: 0, Rng: rng}); !errors.Is(err, ErrBadK) {
		t.Errorf("bad-k err = %v", err)
	}
	if _, err := TrainKMeans([][]float64{{1}}, KMeansConfig{K: 1}); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := TrainKMeans([][]float64{{1}, {1, 2}}, KMeansConfig{K: 1, Rng: rng}); err == nil {
		t.Error("ragged data accepted")
	}
}

func TestKMeansKLargerThanData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := TrainKMeans([][]float64{{1}, {2}}, KMeansConfig{K: 10, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 2 {
		t.Errorf("K = %d, want clamped to 2", m.K())
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	m, err := TrainKMeans(data, KMeansConfig{K: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if m.Inertia() > 1e-9 {
		t.Errorf("inertia on identical points = %v", m.Inertia())
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	mk := func() *KMeans {
		rng := rand.New(rand.NewSource(42))
		data := clusters(rng, 50, []float64{0, 0}, []float64{5, 5})
		m, err := TrainKMeans(data, KMeansConfig{K: 2, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := mk(), mk()
	for c := 0; c < m1.K(); c++ {
		if !vecmath.Equal(m1.Centroid(c), m2.Centroid(c), 0) {
			t.Fatal("same-seed training differs")
		}
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := clusters(rng, 80, []float64{0, 0}, []float64{8, 0}, []float64{0, 8}, []float64{8, 8})
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		m, err := TrainKMeans(data, KMeansConfig{K: k, Rng: rand.New(rand.NewSource(7))})
		if err != nil {
			t.Fatal(err)
		}
		if m.Inertia() > prev*1.05 { // small tolerance: k-means is not globally optimal
			t.Errorf("inertia rose from %v to %v at k=%d", prev, m.Inertia(), k)
		}
		prev = m.Inertia()
	}
}

func TestVolumeThreshold(t *testing.T) {
	normal := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}}
	vt, err := TrainVolumeThreshold(normal, 0, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if vt.Threshold() < 8 || vt.Threshold() > 10 {
		t.Errorf("threshold = %v", vt.Threshold())
	}
	if vt.IsAttack([]float64{5}) {
		t.Error("median flagged as attack")
	}
	if !vt.IsAttack([]float64{100}) {
		t.Error("outlier not flagged")
	}
	if vt.Score([]float64{42}) != 42 {
		t.Error("Score should return the raw feature")
	}
}

func TestVolumeThresholdErrors(t *testing.T) {
	if _, err := TrainVolumeThreshold(nil, 0, 0.9); !errors.Is(err, ErrNoData) {
		t.Errorf("no-data err = %v", err)
	}
	// Feature index out of range for all rows.
	if _, err := TrainVolumeThreshold([][]float64{{1}}, 5, 0.9); !errors.Is(err, ErrNoData) {
		t.Errorf("bad-feature err = %v", err)
	}
}

func TestVolumeThresholdQuantileClamping(t *testing.T) {
	normal := [][]float64{{1}, {2}, {3}}
	lo, err := TrainVolumeThreshold(normal, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Threshold() != 1 {
		t.Errorf("q=-1 threshold = %v, want min", lo.Threshold())
	}
	hi, err := TrainVolumeThreshold(normal, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Threshold() != 3 {
		t.Errorf("q=2 threshold = %v, want max", hi.Threshold())
	}
}

func TestVolumeThresholdScoreOutOfRange(t *testing.T) {
	vt, err := TrainVolumeThreshold([][]float64{{1, 2}}, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if vt.Score([]float64{9}) != 0 {
		t.Error("out-of-range feature should score 0")
	}
}
