package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"ghsom/internal/vecmath"
)

func TestAggloRecoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	data := clusters(rng, 40, centers...)
	m, err := TrainAgglo(data, AggloConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 {
		t.Fatalf("K = %d", m.K())
	}
	// Each true center is near some centroid, and assignments separate.
	seen := make(map[int]bool)
	for _, c := range centers {
		idx, d := m.Assign(c)
		if d > 1 {
			t.Errorf("center %v is %v from nearest centroid", c, d)
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Errorf("centers collapse onto %d clusters", len(seen))
	}
	// Sizes sum to the dataset.
	var total int
	for c := 0; c < m.K(); c++ {
		total += m.ClusterSize(c)
	}
	if total != len(data) {
		t.Errorf("cluster sizes sum to %d, want %d", total, len(data))
	}
}

func TestAggloK1(t *testing.T) {
	data := [][]float64{{0}, {2}, {4}}
	m, err := TrainAgglo(data, AggloConfig{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 1 {
		t.Fatalf("K = %d", m.K())
	}
	// Single cluster centroid is the mean.
	if !vecmath.Equal(m.Centroid(0), []float64{2}, 1e-12) {
		t.Errorf("centroid = %v, want [2]", m.Centroid(0))
	}
}

func TestAggloKLargerThanData(t *testing.T) {
	data := [][]float64{{0}, {5}}
	m, err := TrainAgglo(data, AggloConfig{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 2 {
		t.Errorf("K = %d, want 2", m.K())
	}
}

func TestAggloErrors(t *testing.T) {
	if _, err := TrainAgglo(nil, AggloConfig{K: 2}); !errors.Is(err, ErrNoData) {
		t.Errorf("no-data err = %v", err)
	}
	if _, err := TrainAgglo([][]float64{{1}}, AggloConfig{K: 0}); !errors.Is(err, ErrBadK) {
		t.Errorf("bad-k err = %v", err)
	}
	if _, err := TrainAgglo([][]float64{{1}, {1, 2}}, AggloConfig{K: 1}); err == nil {
		t.Error("ragged data accepted")
	}
	big := make([][]float64, 50)
	for i := range big {
		big[i] = []float64{float64(i)}
	}
	if _, err := TrainAgglo(big, AggloConfig{K: 2, MaxN: 10}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("over-cap err = %v", err)
	}
}

func TestAggloMergesNearestFirst(t *testing.T) {
	// Points at 0, 1, 100: cutting at 2 must group {0,1} together.
	data := [][]float64{{0}, {1}, {100}}
	m, err := TrainAgglo(data, AggloConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	a0, _ := m.Assign([]float64{0})
	a1, _ := m.Assign([]float64{1})
	a2, _ := m.Assign([]float64{100})
	if a0 != a1 {
		t.Error("adjacent points split")
	}
	if a2 == a0 {
		t.Error("distant point merged")
	}
}

func TestAggloDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := clusters(rng, 30, []float64{0, 0}, []float64{5, 5})
	m1, err := TrainAgglo(data, AggloConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainAgglo(data, AggloConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m1.K() != m2.K() {
		t.Fatal("cluster counts differ")
	}
	for c := 0; c < m1.K(); c++ {
		if !vecmath.Equal(m1.Centroid(c), m2.Centroid(c), 0) {
			t.Fatal("centroids differ across identical runs")
		}
	}
}
