// Package baseline implements the comparison detectors the GHSOM is
// evaluated against: k-means clustering (k-means++ initialization, Lloyd
// iterations) and a naive volume-threshold detector. A flat fixed-size SOM
// baseline is available directly from internal/som.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ghsom/internal/vecmath"
)

// Errors returned by the package.
var (
	// ErrNoData is returned when an operation requires at least one row.
	ErrNoData = errors.New("baseline: no data")
	// ErrBadK is returned for a non-positive cluster count.
	ErrBadK = errors.New("baseline: k must be positive")
)

// KMeans is a trained k-means model.
type KMeans struct {
	centroids [][]float64
	inertia   float64
	iters     int
}

// KMeansConfig controls training.
type KMeansConfig struct {
	// K is the number of clusters.
	K int
	// MaxIters caps Lloyd iterations (default 50 when zero).
	MaxIters int
	// Tol stops training when the relative inertia improvement falls
	// below it (default 1e-4 when zero).
	Tol float64
	// Rng drives k-means++ seeding. Required.
	Rng *rand.Rand
}

// TrainKMeans clusters data into cfg.K groups. When data has fewer rows
// than K, K is reduced to len(data).
func TrainKMeans(data [][]float64, cfg KMeansConfig) (*KMeans, error) {
	if len(data) == 0 {
		return nil, ErrNoData
	}
	if cfg.K < 1 {
		return nil, ErrBadK
	}
	if cfg.Rng == nil {
		return nil, errors.New("baseline: rng required")
	}
	dim := len(data[0])
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("baseline: row %d has dim %d, want %d", i, len(row), dim)
		}
	}
	k := cfg.K
	if k > len(data) {
		k = len(data)
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 50
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-4
	}

	centroids := kmeansPlusPlus(data, k, cfg.Rng)
	assign := make([]int, len(data))
	counts := make([]int, k)
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}

	model := &KMeans{}
	prevInertia := math.Inf(1)
	for iter := 0; iter < maxIters; iter++ {
		// Assignment step.
		var inertia float64
		for i, x := range data {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := vecmath.SquaredDistance(x, cent); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			inertia += bestD
		}
		// Update step.
		for c := range sums {
			counts[c] = 0
			for d := range sums[c] {
				sums[c][d] = 0
			}
		}
		for i, x := range data {
			c := assign[i]
			counts[c]++
			vecmath.AXPYInPlace(sums[c], 1, x)
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed empty clusters at the point farthest from its
				// centroid — the standard fix for dead centroids.
				centroids[c] = vecmath.Clone(data[cfg.Rng.Intn(len(data))])
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] * inv
			}
		}
		model.iters = iter + 1
		model.inertia = inertia
		if prevInertia-inertia < tol*prevInertia {
			break
		}
		prevInertia = inertia
	}
	model.centroids = centroids
	return model, nil
}

// kmeansPlusPlus seeds k centroids with the k-means++ distribution:
// each next centroid is drawn proportionally to squared distance from the
// nearest already-chosen one.
func kmeansPlusPlus(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, vecmath.Clone(data[rng.Intn(len(data))]))
	dist2 := make([]float64, len(data))
	for i, x := range data {
		dist2[i] = vecmath.SquaredDistance(x, centroids[0])
	}
	for len(centroids) < k {
		total := vecmath.Sum(dist2)
		var next int
		if total <= 0 {
			next = rng.Intn(len(data))
		} else {
			r := rng.Float64() * total
			for i, d := range dist2 {
				r -= d
				if r <= 0 {
					next = i
					break
				}
			}
		}
		c := vecmath.Clone(data[next])
		centroids = append(centroids, c)
		for i, x := range data {
			if d := vecmath.SquaredDistance(x, c); d < dist2[i] {
				dist2[i] = d
			}
		}
	}
	return centroids
}

// K returns the number of centroids.
func (m *KMeans) K() int { return len(m.centroids) }

// Iters returns the number of Lloyd iterations run.
func (m *KMeans) Iters() int { return m.iters }

// Inertia returns the final total within-cluster squared distance.
func (m *KMeans) Inertia() float64 { return m.inertia }

// Centroid returns the c-th centroid, aliasing model storage.
func (m *KMeans) Centroid(c int) []float64 { return m.centroids[c] }

// Assign returns the nearest centroid index for x and the Euclidean
// distance to it.
func (m *KMeans) Assign(x []float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c, cent := range m.centroids {
		if d := vecmath.SquaredDistance(x, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best, math.Sqrt(bestD)
}
