package baseline

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"ghsom/internal/vecmath"
)

// Agglo is a trained agglomerative (bottom-up hierarchical) clustering
// model, cut at k clusters and reduced to a centroid codebook for
// assignment. Average linkage via the Lance-Williams update; O(n²)
// memory, O(n² log n) time — use on a (capped) training subsample, like
// the other codebook baselines.
type Agglo struct {
	centroids [][]float64
	sizes     []int
}

// AggloConfig controls training.
type AggloConfig struct {
	// K is the number of clusters to cut the dendrogram at.
	K int
	// MaxN caps the number of rows clustered (subsampling is the caller's
	// job; exceeding the cap is an error to keep memory bounded).
	// Defaults to 4096 when zero.
	MaxN int
}

// ErrTooLarge is returned when the input exceeds AggloConfig.MaxN.
var ErrTooLarge = errors.New("baseline: input too large for agglomerative clustering")

// mergeCandidate is a heap entry proposing to merge clusters a and b at
// the given average-linkage distance. Entries go stale when either
// cluster has since merged; staleness is detected via version counters.
type mergeCandidate struct {
	dist float64
	a, b int
	verA int
	verB int
}

type mergeHeap []mergeCandidate

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeCandidate)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TrainAgglo builds the clustering. All rows must share one dimension.
func TrainAgglo(data [][]float64, cfg AggloConfig) (*Agglo, error) {
	if len(data) == 0 {
		return nil, ErrNoData
	}
	if cfg.K < 1 {
		return nil, ErrBadK
	}
	maxN := cfg.MaxN
	if maxN <= 0 {
		maxN = 4096
	}
	if len(data) > maxN {
		return nil, fmt.Errorf("%d rows exceeds cap %d: %w", len(data), maxN, ErrTooLarge)
	}
	dim := len(data[0])
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("baseline: row %d has dim %d, want %d", i, len(row), dim)
		}
	}
	n := len(data)
	k := cfg.K
	if k > n {
		k = n
	}

	// Active clusters: centroid sums, sizes, versions. Average linkage
	// between clusters is tracked through a lazy-deletion heap of
	// pairwise candidates; distances between cluster averages are
	// maintained with the centroid approximation of average linkage
	// (exact for single points, standard in codebook use).
	sums := make([][]float64, n)
	sizes := make([]int, n)
	version := make([]int, n)
	alive := make([]bool, n)
	for i, row := range data {
		sums[i] = vecmath.Clone(row)
		sizes[i] = 1
		alive[i] = true
	}
	centroid := func(i int) []float64 {
		c := make([]float64, dim)
		inv := 1 / float64(sizes[i])
		for d := range c {
			c[d] = sums[i][d] * inv
		}
		return c
	}

	h := &mergeHeap{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			heap.Push(h, mergeCandidate{
				dist: vecmath.SquaredDistance(data[i], data[j]),
				a:    i, b: j,
			})
		}
	}

	activeCount := n
	for activeCount > k && h.Len() > 0 {
		cand := heap.Pop(h).(mergeCandidate)
		if !alive[cand.a] || !alive[cand.b] ||
			version[cand.a] != cand.verA || version[cand.b] != cand.verB {
			continue // stale
		}
		// Merge b into a.
		alive[cand.b] = false
		for d := 0; d < dim; d++ {
			sums[cand.a][d] += sums[cand.b][d]
		}
		sizes[cand.a] += sizes[cand.b]
		version[cand.a]++
		activeCount--
		// New candidates from the merged cluster to every live cluster.
		ca := centroid(cand.a)
		for j := 0; j < n; j++ {
			if j == cand.a || !alive[j] {
				continue
			}
			heap.Push(h, mergeCandidate{
				dist: vecmath.SquaredDistance(ca, centroid(j)),
				a:    cand.a, b: j,
				verA: version[cand.a], verB: version[j],
			})
		}
	}

	model := &Agglo{}
	for i := 0; i < n; i++ {
		if alive[i] {
			model.centroids = append(model.centroids, centroid(i))
			model.sizes = append(model.sizes, sizes[i])
		}
	}
	return model, nil
}

// K returns the number of clusters in the cut.
func (m *Agglo) K() int { return len(m.centroids) }

// ClusterSize returns the training population of cluster c.
func (m *Agglo) ClusterSize(c int) int { return m.sizes[c] }

// Centroid returns the c-th cluster centroid, aliasing model storage.
func (m *Agglo) Centroid(c int) []float64 { return m.centroids[c] }

// Assign returns the nearest centroid index for x and the Euclidean
// distance to it.
func (m *Agglo) Assign(x []float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c, cent := range m.centroids {
		if d := vecmath.SquaredDistance(x, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best, math.Sqrt(bestD)
}
