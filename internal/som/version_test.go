package som

import (
	"math"
	"math/rand"
	"testing"

	"ghsom/internal/vecmath"
)

// TestVersionBumpsOnEveryMutation pins the weight-arena version
// contract: every mutating API increments Version, which is what the
// blocked BMU engine's norm cache keys on.
func TestVersionBumpsOnEveryMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := New(2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]float64{{1, 2, 3}, {4, 5, 6}, {0.5, 0.25, 0.125}}
	steps := []struct {
		name string
		fn   func() error
	}{
		{"SetWeight", func() error { return m.SetWeight(1, []float64{9, 8, 7}) }},
		{"InitRandomUniform", func() error { return m.InitRandomUniform(data, rng) }},
		{"InitSample", func() error { return m.InitSample(data, rng) }},
		{"InitLinear", func() error { return m.InitLinear(data, rng) }},
		{"InitAroundMean", func() error { return m.InitAroundMean([]float64{1, 1, 1}, 0.1, rng) }},
		{"InsertRowBetween", func() error { return m.InsertRowBetween(0) }},
		{"InsertColBetween", func() error { return m.InsertColBetween(0) }},
		{"GrowBetween", func() error { return m.GrowBetween(0, 1) }},
		{"TrainBatch", func() error {
			_, err := m.TrainBatch(data, TrainConfig{
				Epochs: 2, Alpha0: 0.5, AlphaEnd: 0.01, RadiusEnd: 0.5,
				Kernel: KernelGaussian, Decay: DecayLinear,
			})
			return err
		}},
		{"TrainOnline", func() error {
			_, err := m.TrainOnline(data, TrainConfig{
				Epochs: 1, Alpha0: 0.5, AlphaEnd: 0.01, RadiusEnd: 0.5,
				Kernel: KernelGaussian, Decay: DecayLinear,
			})
			return err
		}},
	}
	for _, s := range steps {
		before := m.Version()
		if err := s.fn(); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if m.Version() <= before {
			t.Errorf("%s did not bump Version (%d -> %d)", s.name, before, m.Version())
		}
	}
}

// TestNormCacheNeverStaleAcrossGrowth is the regression test of the
// norm-cache staleness hazard: growth reallocates the weight arena (the
// documented view-invalidation event of PR 1), and the version counter
// must make the cached norms impossible to observe stale — the batched
// BMU results after growth must match the per-row scalar scan exactly.
func TestNormCacheNeverStaleAcrossGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const dim = 7
	m, err := New(2, 2, dim)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]float64, 40)
	flatData := make([]float64, len(data)*dim)
	for i := range data {
		row := flatData[i*dim : (i+1)*dim]
		for d := range row {
			row[d] = rng.NormFloat64()
		}
		data[i] = row
	}
	if err := m.InitSample(data, rng); err != nil {
		t.Fatal(err)
	}

	check := func(stage string) {
		t.Helper()
		bmus := make([]int, len(data))
		d2s := make([]float64, len(data))
		if err := m.AssignFlat(flatData, len(data), bmus, d2s, 1); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		for i, row := range data {
			wantB, wantD := vecmath.ArgMinDistance(row, m.Weights())
			if wantB < 0 {
				wantB = 0
			}
			if bmus[i] != wantB || math.Float64bits(d2s[i]) != math.Float64bits(wantD) {
				t.Fatalf("%s: row %d batched (%d, %x) != scalar (%d, %x) — stale norm cache",
					stage, i, bmus[i], math.Float64bits(d2s[i]), wantB, math.Float64bits(wantD))
			}
		}
	}

	check("before growth")
	// Grow (reallocates the arena), then mutate a weight in place via
	// SetWeight, then grow again: each step must invalidate.
	if err := m.InsertRowBetween(0); err != nil {
		t.Fatal(err)
	}
	check("after row growth")
	w := append([]float64(nil), m.Weight(3)...)
	for d := range w {
		w[d] += 3.5
	}
	if err := m.SetWeight(3, w); err != nil {
		t.Fatal(err)
	}
	check("after SetWeight")
	if err := m.InsertColBetween(0); err != nil {
		t.Fatal(err)
	}
	check("after column growth")
	// Training rewrites every weight each epoch; the engine's per-epoch
	// BMU passes must track it.
	if _, err := m.TrainBatch(data, TrainConfig{
		Epochs: 3, Alpha0: 0.5, AlphaEnd: 0.01, RadiusEnd: 0.5,
		Kernel: KernelGaussian, Decay: DecayExponential,
	}); err != nil {
		t.Fatal(err)
	}
	check("after training")
}

// TestAssignViewMatchesScalarBMU pins the batched assignment paths to
// the scalar per-row kernel across parallelism settings.
func TestAssignViewMatchesScalarBMU(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const dim, n = 11, 100
	m, err := New(3, 4, dim)
	if err != nil {
		t.Fatal(err)
	}
	flatData := make([]float64, n*dim)
	for i := range flatData {
		flatData[i] = rng.NormFloat64()
	}
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flatData[i*dim : (i+1)*dim]
	}
	if err := m.InitSample(rows, rng); err != nil {
		t.Fatal(err)
	}
	mat, err := vecmath.MatrixOver(flatData, n, dim)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 8, 0} {
		m.SetParallelism(p)
		got := m.AssignView(mat.View())
		for i, row := range rows {
			want, _ := m.BMU(row)
			if got[i] != want {
				t.Fatalf("P=%d: row %d assigned %d, want %d", p, i, got[i], want)
			}
		}
	}
}
