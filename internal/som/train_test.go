package som

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ghsom/internal/vecmath"
)

// twoClusters returns points drawn from two well-separated gaussian blobs.
func twoClusters(rng *rand.Rand, nPer int) [][]float64 {
	data := make([][]float64, 0, 2*nPer)
	centers := [][]float64{{0, 0}, {10, 10}}
	for _, c := range centers {
		for i := 0; i < nPer; i++ {
			data = append(data, []float64{
				c[0] + rng.NormFloat64()*0.5,
				c[1] + rng.NormFloat64()*0.5,
			})
		}
	}
	return data
}

func TestTrainOnlineReducesMQE(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := twoClusters(rng, 100)
	m, err := New(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitRandomUniform(data, rng); err != nil {
		t.Fatal(err)
	}
	before := m.MQE(data)
	cfg := DefaultTrainConfig(rng)
	cfg.Epochs = 20
	stats, err := m.TrainOnline(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := stats.FinalMQE()
	if !(after < before) {
		t.Errorf("training did not reduce MQE: before %v after %v", before, after)
	}
	if after > 1.0 {
		t.Errorf("final MQE %v too high for two tight clusters", after)
	}
	if len(stats.EpochMQE) != cfg.Epochs {
		t.Errorf("EpochMQE has %d entries, want %d", len(stats.EpochMQE), cfg.Epochs)
	}
}

func TestTrainBatchReducesMQE(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := twoClusters(rng, 100)
	m, err := New(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Start from a deliberately poor init: every unit at the global mean,
	// far from both cluster centers.
	for i := 0; i < m.Units(); i++ {
		_ = m.SetWeight(i, []float64{5, 5})
	}
	before := m.MQE(data)
	cfg := DefaultTrainConfig(rng)
	cfg.Epochs = 15
	stats, err := m.TrainBatch(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(stats.FinalMQE() < before/2) {
		t.Errorf("batch training did not substantially reduce MQE: before %v after %v", before, stats.FinalMQE())
	}
}

func TestTrainSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := twoClusters(rng, 150)
	m, _ := New(2, 2, 2)
	if err := m.InitRandomUniform(data, rng); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig(rng)
	cfg.Epochs = 30
	if _, err := m.TrainOnline(data, cfg); err != nil {
		t.Fatal(err)
	}
	// The BMUs of the two cluster centers must differ.
	b1, _ := m.BMU([]float64{0, 0})
	b2, _ := m.BMU([]float64{10, 10})
	if b1 == b2 {
		t.Error("trained 2x2 map does not separate two well-separated clusters")
	}
}

func TestTrainConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := DefaultTrainConfig(rng)
	data := [][]float64{{0, 0}, {1, 1}}
	m, _ := New(2, 2, 2)

	tests := []struct {
		name   string
		mutate func(*TrainConfig)
	}{
		{"zero epochs", func(c *TrainConfig) { c.Epochs = 0 }},
		{"alpha0 zero", func(c *TrainConfig) { c.Alpha0 = 0 }},
		{"alpha0 above one", func(c *TrainConfig) { c.Alpha0 = 1.5 }},
		{"alphaEnd above alpha0", func(c *TrainConfig) { c.AlphaEnd = 0.9; c.Alpha0 = 0.5 }},
		{"negative alphaEnd", func(c *TrainConfig) { c.AlphaEnd = -0.1 }},
		{"bad kernel", func(c *TrainConfig) { c.Kernel = Kernel(99) }},
		{"bad decay", func(c *TrainConfig) { c.Decay = Decay(0) }},
		{"shuffle without rng", func(c *TrainConfig) { c.Rng = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := m.TrainOnline(data, cfg); err == nil {
				t.Error("TrainOnline accepted invalid config")
			}
			if _, err := m.TrainBatch(data, cfg); err == nil {
				t.Error("TrainBatch accepted invalid config")
			}
		})
	}
}

func TestTrainDataValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, _ := New(2, 2, 2)
	cfg := DefaultTrainConfig(rng)
	if _, err := m.TrainOnline(nil, cfg); !errors.Is(err, ErrNoData) {
		t.Errorf("TrainOnline(nil) err = %v, want ErrNoData", err)
	}
	if _, err := m.TrainOnline([][]float64{{1, 2, 3}}, cfg); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("TrainOnline wrong-dim err = %v, want ErrDimMismatch", err)
	}
}

func TestTrainDoesNotMutateData(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	snapshot := make([][]float64, len(data))
	for i, row := range data {
		snapshot[i] = vecmath.Clone(row)
	}
	m, _ := New(2, 2, 2)
	_ = m.InitSample(data, rng)
	cfg := DefaultTrainConfig(rng)
	cfg.Epochs = 3
	if _, err := m.TrainOnline(data, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !vecmath.Equal(data[i], snapshot[i], 0) {
			t.Fatalf("TrainOnline mutated data row %d", i)
		}
	}
}

func TestTrainDeterministicWithSeed(t *testing.T) {
	run := func() *Map {
		rng := rand.New(rand.NewSource(42))
		data := twoClusters(rng, 50)
		m, _ := New(3, 3, 2)
		_ = m.InitRandomUniform(data, rng)
		cfg := DefaultTrainConfig(rng)
		cfg.Epochs = 5
		_, _ = m.TrainOnline(data, cfg)
		return m
	}
	m1, m2 := run(), run()
	for i := 0; i < m1.Units(); i++ {
		if !vecmath.Equal(m1.Weight(i), m2.Weight(i), 0) {
			t.Fatalf("same seed produced different weights at unit %d", i)
		}
	}
}

func TestBMU(t *testing.T) {
	m, _ := New(1, 3, 1)
	_ = m.SetWeight(0, []float64{0})
	_ = m.SetWeight(1, []float64{5})
	_ = m.SetWeight(2, []float64{10})
	tests := []struct {
		x    float64
		want int
	}{
		{-1, 0}, {2.4, 0}, {2.6, 1}, {7.6, 2}, {100, 2},
	}
	for _, tt := range tests {
		if got, _ := m.BMU([]float64{tt.x}); got != tt.want {
			t.Errorf("BMU(%v) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestBMU2(t *testing.T) {
	m, _ := New(1, 3, 1)
	_ = m.SetWeight(0, []float64{0})
	_ = m.SetWeight(1, []float64{5})
	_ = m.SetWeight(2, []float64{10})
	first, second := m.BMU2([]float64{1})
	if first != 0 || second != 1 {
		t.Errorf("BMU2(1) = (%d, %d), want (0, 1)", first, second)
	}
	first, second = m.BMU2([]float64{9})
	if first != 2 || second != 1 {
		t.Errorf("BMU2(9) = (%d, %d), want (2, 1)", first, second)
	}
}

func TestBMUWhere(t *testing.T) {
	m, _ := New(1, 3, 1)
	_ = m.SetWeight(0, []float64{0})
	_ = m.SetWeight(1, []float64{5})
	_ = m.SetWeight(2, []float64{10})
	// Unrestricted: same as BMU.
	bmu, _, ok := m.BMUWhere([]float64{1}, func(int) bool { return true })
	if !ok || bmu != 0 {
		t.Errorf("BMUWhere unrestricted = %d, %v", bmu, ok)
	}
	// Exclude the true BMU: second-best wins.
	bmu, d2, ok := m.BMUWhere([]float64{1}, func(u int) bool { return u != 0 })
	if !ok || bmu != 1 {
		t.Errorf("BMUWhere excluding 0 = %d, %v", bmu, ok)
	}
	if d2 != 16 {
		t.Errorf("BMUWhere dist2 = %v, want 16", d2)
	}
	// Nothing allowed.
	if _, _, ok := m.BMUWhere([]float64{1}, func(int) bool { return false }); ok {
		t.Error("BMUWhere with empty allow-set reported ok")
	}
}

func TestBMU2SingleUnit(t *testing.T) {
	m, _ := New(1, 1, 1)
	first, second := m.BMU2([]float64{3})
	if first != 0 || second != 0 {
		t.Errorf("BMU2 on single-unit map = (%d, %d), want (0, 0)", first, second)
	}
}

func TestPropBMUIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		dim := 1 + rng.Intn(8)
		m, _ := New(rows, cols, dim)
		data := make([][]float64, 10)
		for i := range data {
			data[i] = make([]float64, dim)
			for d := range data[i] {
				data[i][d] = rng.NormFloat64()
			}
		}
		_ = m.InitRandomUniform(data, rng)
		x := data[rng.Intn(len(data))]
		bmu, d2 := m.BMU(x)
		for i := 0; i < m.Units(); i++ {
			if vecmath.SquaredDistance(x, m.Weight(i)) < d2-1e-12 {
				t.Fatalf("unit %d closer than reported BMU %d", i, bmu)
			}
		}
	}
}

func TestInitAroundMean(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, _ := New(2, 2, 3)
	mean := []float64{5, 5, 5}
	if err := m.InitAroundMean(mean, 0.01, rng); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Units(); i++ {
		if vecmath.Distance(m.Weight(i), mean) > 1 {
			t.Errorf("unit %d initialized far from mean: %v", i, m.Weight(i))
		}
	}
	if err := m.InitAroundMean([]float64{1}, 0.1, rng); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("InitAroundMean wrong dim err = %v", err)
	}
}

func TestInitLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Data stretched along the x axis: rows of the map must span x.
	data := make([][]float64, 500)
	for i := range data {
		data[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 1}
	}
	m, _ := New(5, 3, 2)
	if err := m.InitLinear(data, rng); err != nil {
		t.Fatal(err)
	}
	// Weights along the row dimension move mostly in x.
	top := m.WeightAt(0, 1)
	bottom := m.WeightAt(4, 1)
	if math.Abs(top[0]-bottom[0]) < math.Abs(top[1]-bottom[1]) {
		t.Errorf("rows do not span the dominant axis: top %v bottom %v", top, bottom)
	}
	// The map is ordered: row coordinates monotone along x (the PCA axis
	// sign is arbitrary, so either direction qualifies).
	xs := make([]float64, 5)
	for r := 0; r < 5; r++ {
		xs[r] = m.WeightAt(r, 1)[0]
	}
	if !monotone(xs) {
		t.Fatalf("linear init rows not ordered: %v", xs)
	}
	// Center unit near the data mean (0, 0).
	center := m.WeightAt(2, 1)
	if math.Abs(center[0]) > 1.5 || math.Abs(center[1]) > 1.5 {
		t.Errorf("center unit = %v, want near origin", center)
	}
}

func TestInitLinearOneDim(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	data := make([][]float64, 100)
	for i := range data {
		data[i] = []float64{rng.NormFloat64() * 3}
	}
	m, _ := New(4, 1, 1)
	if err := m.InitLinear(data, rng); err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 4)
	for r := range xs {
		xs[r] = m.WeightAt(r, 0)[0]
	}
	if !monotone(xs) {
		t.Errorf("1-D linear init not ordered: %v", xs)
	}
}

// monotone reports whether xs is strictly increasing or strictly
// decreasing.
func monotone(xs []float64) bool {
	inc, dec := true, true
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			inc = false
		}
		if xs[i] >= xs[i-1] {
			dec = false
		}
	}
	return inc || dec
}

func TestInitLinearOrderingAdvantage(t *testing.T) {
	// Linear init's value is a globally ordered starting state, not raw
	// quantization. Its initial MQE must be in the same ballpark as
	// random init, and after brief training the linearly initialized map
	// must preserve topology at least as well (low topographic error).
	rng := rand.New(rand.NewSource(19))
	data := make([][]float64, 400)
	for i := range data {
		data[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 0.5}
	}
	lin, _ := New(6, 6, 2)
	if err := lin.InitLinear(data, rng); err != nil {
		t.Fatal(err)
	}
	linMQE := lin.MQE(data)

	rnd, _ := New(6, 6, 2)
	if err := rnd.InitRandomUniform(data, rng); err != nil {
		t.Fatal(err)
	}
	rndMQE := rnd.MQE(data)
	if linMQE > rndMQE*3 {
		t.Errorf("linear init MQE %v wildly worse than random %v", linMQE, rndMQE)
	}

	cfg := DefaultTrainConfig(rng)
	cfg.Epochs = 3
	if _, err := lin.TrainOnline(data, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := rnd.TrainOnline(data, cfg); err != nil {
		t.Fatal(err)
	}
	linTE := lin.TopographicError(data)
	rndTE := rnd.TopographicError(data)
	if linTE > rndTE+0.15 {
		t.Errorf("linear init topographic error %v much worse than random %v", linTE, rndTE)
	}
}

func TestInitLinearErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m, _ := New(2, 2, 2)
	if err := m.InitLinear(nil, rng); !errors.Is(err, ErrNoData) {
		t.Errorf("InitLinear(nil) err = %v", err)
	}
	if err := m.InitLinear([][]float64{{1}}, rng); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("InitLinear wrong-dim err = %v", err)
	}
}

func TestBatchTrainingIsDeterministicGivenInit(t *testing.T) {
	data := twoClusters(rand.New(rand.NewSource(13)), 50)
	mk := func() *Map {
		m, _ := New(3, 3, 2)
		// Deterministic init: unit i gets data[i].
		for i := 0; i < m.Units(); i++ {
			_ = m.SetWeight(i, data[i])
		}
		cfg := TrainConfig{
			Epochs: 5, Alpha0: 0.5, AlphaEnd: 0.01,
			Radius0: 2, RadiusEnd: 0.5,
			Kernel: KernelGaussian, Decay: DecayLinear,
		}
		_, _ = m.TrainBatch(data, cfg)
		return m
	}
	m1, m2 := mk(), mk()
	for i := 0; i < m1.Units(); i++ {
		if !vecmath.Equal(m1.Weight(i), m2.Weight(i), 0) {
			t.Fatal("batch training not deterministic")
		}
	}
}

func TestTrainStatsFinalMQEEmpty(t *testing.T) {
	var s TrainStats
	if !math.IsNaN(s.FinalMQE()) {
		t.Error("FinalMQE of empty stats should be NaN")
	}
}
