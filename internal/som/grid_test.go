package som

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name            string
		rows, cols, dim int
		wantErr         bool
	}{
		{"minimal", 1, 1, 1, false},
		{"typical", 4, 5, 41, false},
		{"zero rows", 0, 3, 2, true},
		{"zero cols", 3, 0, 2, true},
		{"zero dim", 3, 3, 0, true},
		{"negative", -1, 3, 2, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := New(tt.rows, tt.cols, tt.dim)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d,%d,%d) err = %v, wantErr %v", tt.rows, tt.cols, tt.dim, err, tt.wantErr)
			}
			if err != nil {
				if !errors.Is(err, ErrBadShape) {
					t.Errorf("error %v not ErrBadShape", err)
				}
				return
			}
			if m.Units() != tt.rows*tt.cols {
				t.Errorf("Units = %d", m.Units())
			}
			if m.Dim() != tt.dim {
				t.Errorf("Dim = %d", m.Dim())
			}
		})
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	m, err := New(3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 5; c++ {
			i := m.Index(r, c)
			gr, gc := m.Coords(i)
			if gr != r || gc != c {
				t.Errorf("Coords(Index(%d,%d)) = (%d,%d)", r, c, gr, gc)
			}
		}
	}
}

func TestGridDistance2(t *testing.T) {
	m, _ := New(4, 4, 1)
	a := m.Index(0, 0)
	b := m.Index(3, 4-1)
	if got := m.GridDistance2(a, b); got != 9+9 {
		t.Errorf("GridDistance2 corner to corner = %v, want 18", got)
	}
	if got := m.GridDistance2(a, a); got != 0 {
		t.Errorf("GridDistance2 self = %v", got)
	}
}

func TestNeighbors(t *testing.T) {
	m, _ := New(3, 3, 1)
	tests := []struct {
		r, c int
		want []int
	}{
		{0, 0, []int{1, 3}},       // corner: right, down
		{1, 1, []int{1, 3, 5, 7}}, // center: all four
		{2, 2, []int{5, 7}},       // corner: up, left
		{0, 1, []int{0, 2, 4}},    // edge
	}
	for _, tt := range tests {
		got := m.Neighbors(m.Index(tt.r, tt.c), nil)
		sort.Ints(got)
		sort.Ints(tt.want)
		if len(got) != len(tt.want) {
			t.Errorf("Neighbors(%d,%d) = %v, want %v", tt.r, tt.c, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Neighbors(%d,%d) = %v, want %v", tt.r, tt.c, got, tt.want)
				break
			}
		}
	}
}

func TestAreGridNeighbors(t *testing.T) {
	m, _ := New(3, 3, 1)
	if !m.AreGridNeighbors(m.Index(1, 1), m.Index(1, 2)) {
		t.Error("horizontal neighbors not detected")
	}
	if !m.AreGridNeighbors(m.Index(1, 1), m.Index(0, 1)) {
		t.Error("vertical neighbors not detected")
	}
	if m.AreGridNeighbors(m.Index(0, 0), m.Index(1, 1)) {
		t.Error("diagonal units reported as neighbors")
	}
	if m.AreGridNeighbors(m.Index(0, 0), m.Index(0, 0)) {
		t.Error("unit reported as its own neighbor")
	}
	if m.AreGridNeighbors(m.Index(0, 2), m.Index(1, 0)) {
		t.Error("row-wrap adjacency in index space must not count as grid adjacency")
	}
}

func TestSetWeightAndAliasing(t *testing.T) {
	m, _ := New(2, 2, 3)
	w := []float64{1, 2, 3}
	if err := m.SetWeight(2, w); err != nil {
		t.Fatal(err)
	}
	w[0] = 99 // mutating the caller's slice must not change the map
	if m.Weight(2)[0] != 1 {
		t.Error("SetWeight did not copy")
	}
	if err := m.SetWeight(0, []float64{1}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("SetWeight wrong dim err = %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, _ := New(2, 2, 2)
	_ = m.SetWeight(0, []float64{5, 5})
	c := m.Clone()
	_ = c.SetWeight(0, []float64{9, 9})
	if m.Weight(0)[0] != 5 {
		t.Error("Clone shares weight storage")
	}
	if c.Rows() != m.Rows() || c.Cols() != m.Cols() || c.Dim() != m.Dim() {
		t.Error("Clone shape mismatch")
	}
}

func TestPropCoordsIndexBijection(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(10)
		cols := 1 + r.Intn(10)
		m, err := New(rows, cols, 1)
		if err != nil {
			return false
		}
		for i := 0; i < m.Units(); i++ {
			rr, cc := m.Coords(i)
			if !m.InBounds(rr, cc) || m.Index(rr, cc) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
