package som

import (
	"fmt"
	"math"
)

// Kernel selects the neighborhood function used to scale weight updates by
// grid distance from the best-matching unit.
type Kernel int

// Supported neighborhood kernels.
const (
	// KernelGaussian scales updates by exp(-d²/(2σ²)). The canonical SOM
	// choice and the GHSOM default.
	KernelGaussian Kernel = iota + 1
	// KernelBubble applies the full update inside the radius and none
	// outside (a hard cutoff).
	KernelBubble
	// KernelMexicanHat uses the difference-of-Gaussians "ricker" shape:
	// excitatory near the BMU, mildly inhibitory at mid range.
	KernelMexicanHat
)

// String returns the kernel name.
func (k Kernel) String() string {
	switch k {
	case KernelGaussian:
		return "gaussian"
	case KernelBubble:
		return "bubble"
	case KernelMexicanHat:
		return "mexican-hat"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Valid reports whether k names a supported kernel.
func (k Kernel) Valid() bool {
	return k >= KernelGaussian && k <= KernelMexicanHat
}

// Value returns the neighborhood coefficient in [-1, 1] for a unit at
// squared grid distance dist2 from the BMU, given the current radius.
// A non-positive radius degenerates to "BMU only".
func (k Kernel) Value(dist2, radius float64) float64 {
	if radius <= 0 {
		if dist2 == 0 {
			return 1
		}
		return 0
	}
	switch k {
	case KernelBubble:
		if dist2 <= radius*radius {
			return 1
		}
		return 0
	case KernelMexicanHat:
		s2 := radius * radius
		u := dist2 / s2
		return (1 - u) * math.Exp(-u/2)
	default: // KernelGaussian
		return math.Exp(-dist2 / (2 * radius * radius))
	}
}

// Decay selects how a training parameter (learning rate, radius) moves from
// its start value to its end value over training.
type Decay int

// Supported decay schedules.
const (
	// DecayLinear interpolates linearly from start to end.
	DecayLinear Decay = iota + 1
	// DecayExponential interpolates geometrically: start*(end/start)^frac.
	// If either endpoint is non-positive it falls back to linear.
	DecayExponential
)

// String returns the decay-schedule name.
func (d Decay) String() string {
	switch d {
	case DecayLinear:
		return "linear"
	case DecayExponential:
		return "exponential"
	default:
		return fmt.Sprintf("Decay(%d)", int(d))
	}
}

// Valid reports whether d names a supported schedule.
func (d Decay) Valid() bool { return d == DecayLinear || d == DecayExponential }

// Interp returns the parameter value at training fraction frac ∈ [0, 1].
func (d Decay) Interp(start, end, frac float64) float64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	if d == DecayExponential && start > 0 && end > 0 {
		return start * math.Pow(end/start, frac)
	}
	return start + (end-start)*frac
}
