package som

import (
	"math/rand"
	"testing"
)

// randomMap builds a trained-looking map with gaussian weights.
func randomMap(t *testing.T, rows, cols, dim int, seed int64) *Map {
	t.Helper()
	m, err := New(rows, cols, dim)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, dim)
	for u := 0; u < m.Units(); u++ {
		for d := range w {
			w[d] = rng.NormFloat64()
		}
		if err := m.SetWeight(u, w); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestBMUMaskedMatchesBMUWhere verifies the closure-free masked kernel is
// bit-identical to BMUWhere with the equivalent unit-count predicate,
// including tie-breaking and the no-allowed-unit case.
func TestBMUMaskedMatchesBMUWhere(t *testing.T) {
	m := randomMap(t, 4, 5, 3, 1)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, m.Units())
	for u := range counts {
		if rng.Intn(3) > 0 {
			counts[u] = rng.Intn(5) + 1
		}
	}
	// A short counts slice must exclude the tail units, like the predicate.
	for _, c := range [][]int{counts, counts[:7], make([]int, m.Units()), nil} {
		for i := 0; i < 200; i++ {
			x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			wantBMU, wantD2, wantOK := m.BMUWhere(x, func(u int) bool {
				return u < len(c) && c[u] > 0
			})
			gotBMU, gotD2, gotOK := m.BMUMasked(x, c)
			if gotBMU != wantBMU || gotD2 != wantD2 || gotOK != wantOK {
				t.Fatalf("BMUMasked = (%d, %v, %v), BMUWhere = (%d, %v, %v)",
					gotBMU, gotD2, gotOK, wantBMU, wantD2, wantOK)
			}
		}
	}
}

// TestAssignFlatMatchesBMU verifies the flat batch assignment equals the
// per-row BMU at every worker count.
func TestAssignFlatMatchesBMU(t *testing.T) {
	m := randomMap(t, 3, 4, 5, 3)
	rng := rand.New(rand.NewSource(4))
	n := 333
	flat := make([]float64, n*m.Dim())
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	wantBMU := make([]int, n)
	wantD2 := make([]float64, n)
	for i := 0; i < n; i++ {
		wantBMU[i], wantD2[i] = m.BMU(flat[i*m.Dim() : (i+1)*m.Dim()])
	}
	for _, p := range []int{1, 2, 8, 0} {
		bmus := make([]int, n)
		d2s := make([]float64, n)
		if err := m.AssignFlat(flat, n, bmus, d2s, p); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if bmus[i] != wantBMU[i] || d2s[i] != wantD2[i] {
				t.Fatalf("p=%d row %d: AssignFlat = (%d, %v), want (%d, %v)",
					p, i, bmus[i], d2s[i], wantBMU[i], wantD2[i])
			}
		}
		// Nil output slices skip that result without error.
		if err := m.AssignFlat(flat, n, bmus, nil, p); err != nil {
			t.Fatal(err)
		}
		if err := m.AssignFlat(flat, n, nil, d2s, p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAssignFlatValidation(t *testing.T) {
	m := randomMap(t, 2, 2, 3, 5)
	flat := make([]float64, 4*m.Dim())
	if err := m.AssignFlat(flat, 5, make([]int, 5), nil, 1); err == nil {
		t.Error("short flat accepted")
	}
	if err := m.AssignFlat(flat, 4, make([]int, 3), nil, 1); err == nil {
		t.Error("short bmus accepted")
	}
	if err := m.AssignFlat(flat, 4, nil, make([]float64, 3), 1); err == nil {
		t.Error("short d2s accepted")
	}
}
