package som

import (
	"math"
	"math/rand"
	"testing"
)

// lineMap returns a 1x3 map with weights 0, 5, 10 in one dimension.
func lineMap(t *testing.T) *Map {
	t.Helper()
	m, err := New(1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.SetWeight(0, []float64{0})
	_ = m.SetWeight(1, []float64{5})
	_ = m.SetWeight(2, []float64{10})
	return m
}

func TestMQE(t *testing.T) {
	m := lineMap(t)
	data := [][]float64{{1}, {4}, {11}} // distances 1, 1, 1
	if got := m.MQE(data); math.Abs(got-1) > 1e-12 {
		t.Errorf("MQE = %v, want 1", got)
	}
	if !math.IsNaN(m.MQE(nil)) {
		t.Error("MQE of empty data should be NaN")
	}
}

func TestUnitErrorsAndCounts(t *testing.T) {
	m := lineMap(t)
	data := [][]float64{{0}, {1}, {6}} // units 0,0,1
	sum, counts := m.UnitErrors(data)
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 0 {
		t.Errorf("counts = %v", counts)
	}
	if math.Abs(sum[0]-1) > 1e-12 { // 0 + 1
		t.Errorf("sumQE[0] = %v, want 1", sum[0])
	}
	if math.Abs(sum[1]-1) > 1e-12 {
		t.Errorf("sumQE[1] = %v, want 1", sum[1])
	}
	mean, counts2 := m.UnitMeanErrors(data)
	if counts2[0] != 2 {
		t.Errorf("mean counts = %v", counts2)
	}
	if math.Abs(mean[0]-0.5) > 1e-12 {
		t.Errorf("meanQE[0] = %v, want 0.5", mean[0])
	}
	if mean[2] != 0 {
		t.Errorf("meanQE of empty unit = %v, want 0", mean[2])
	}
}

func TestMeanUnitMQE(t *testing.T) {
	m := lineMap(t)
	data := [][]float64{{0}, {1}, {6}}
	// Unit 0 mean = 0.5, unit 1 mean = 1, unit 2 empty.
	want := (0.5 + 1.0) / 2
	if got := m.MeanUnitMQE(data); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanUnitMQE = %v, want %v", got, want)
	}
}

func TestTopographicError(t *testing.T) {
	m := lineMap(t)
	// x=1: BMU 0, second 1 — neighbors, no error.
	if got := m.TopographicError([][]float64{{1}}); got != 0 {
		t.Errorf("TE for adjacent BMUs = %v, want 0", got)
	}
	// Build a map where first and second BMU are non-adjacent.
	m2, _ := New(1, 3, 1)
	_ = m2.SetWeight(0, []float64{0})
	_ = m2.SetWeight(1, []float64{100})
	_ = m2.SetWeight(2, []float64{1})
	if got := m2.TopographicError([][]float64{{0.4}}); got != 1 {
		t.Errorf("TE for split BMUs = %v, want 1", got)
	}
	if !math.IsNaN(m.TopographicError(nil)) {
		t.Error("TE of empty data should be NaN")
	}
	single, _ := New(1, 1, 1)
	if got := single.TopographicError([][]float64{{1}}); got != 0 {
		t.Errorf("TE of single-unit map = %v, want 0", got)
	}
}

func TestAssign(t *testing.T) {
	m := lineMap(t)
	got := m.Assign([][]float64{{-1}, {6}, {100}})
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Assign[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestUMatrix(t *testing.T) {
	m := lineMap(t)
	u := m.UMatrix()
	if len(u) != 1 || len(u[0]) != 3 {
		t.Fatalf("UMatrix shape = %dx%d", len(u), len(u[0]))
	}
	// Unit 0 has one neighbor at distance 5; unit 1 two at distance 5.
	if math.Abs(u[0][0]-5) > 1e-12 || math.Abs(u[0][1]-5) > 1e-12 || math.Abs(u[0][2]-5) > 1e-12 {
		t.Errorf("UMatrix = %v", u)
	}
}

func TestUMatrixMarksBoundary(t *testing.T) {
	// Two tight groups of columns far apart: the boundary column pair gets
	// a much higher U-value than the interior pairs.
	m, _ := New(1, 4, 1)
	_ = m.SetWeight(0, []float64{0})
	_ = m.SetWeight(1, []float64{0.1})
	_ = m.SetWeight(2, []float64{10})
	_ = m.SetWeight(3, []float64{10.1})
	u := m.UMatrix()
	if !(u[0][1] > u[0][0] && u[0][2] > u[0][3]) {
		t.Errorf("UMatrix boundary not elevated: %v", u)
	}
}

func TestComponentPlane(t *testing.T) {
	m, _ := New(2, 2, 2)
	_ = m.SetWeight(0, []float64{1, 10})
	_ = m.SetWeight(1, []float64{2, 20})
	_ = m.SetWeight(2, []float64{3, 30})
	_ = m.SetWeight(3, []float64{4, 40})
	p0 := m.ComponentPlane(0)
	p1 := m.ComponentPlane(1)
	if p0[0][0] != 1 || p0[1][1] != 4 {
		t.Errorf("ComponentPlane(0) = %v", p0)
	}
	if p1[0][1] != 20 || p1[1][0] != 30 {
		t.Errorf("ComponentPlane(1) = %v", p1)
	}
}

func TestUMatrixSymmetryProperty(t *testing.T) {
	// For any map, the U-matrix entry of a unit is the mean of symmetric
	// pairwise distances, so the total over all units of (value * degree)
	// counts each edge exactly twice.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		m, _ := New(rows, cols, 3)
		data := [][]float64{{0, 0, 0}, {1, 1, 1}}
		_ = m.InitRandomUniform([][]float64{{-1, -1, -1}, {1, 1, 1}}, rng)
		_ = data
		u := m.UMatrix()
		var weightedTotal float64
		var edgeTotal float64
		var buf [4]int
		for i := 0; i < m.Units(); i++ {
			r, c := m.Coords(i)
			deg := len(m.Neighbors(i, buf[:0]))
			weightedTotal += u[r][c] * float64(deg)
			for _, j := range m.Neighbors(i, buf[:0]) {
				edgeTotal += dist(m.Weight(i), m.Weight(j))
			}
		}
		if math.Abs(weightedTotal-edgeTotal) > 1e-9 {
			t.Fatalf("U-matrix edge accounting mismatch: %v vs %v", weightedTotal, edgeTotal)
		}
	}
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
