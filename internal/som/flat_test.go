package som

import (
	"math/rand"
	"testing"
)

// TestWeightViewsShareContiguousStorage verifies the flat-layout contract:
// Weight(i) is a strided view into one backing array, and writing through
// SetWeight is visible through both Weight and Weights.
func TestWeightViewsShareContiguousStorage(t *testing.T) {
	m, err := New(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(m.Weights()), 2*3*4; got != want {
		t.Fatalf("backing array length = %d, want %d", got, want)
	}
	if err := m.SetWeight(4, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	flat := m.Weights()
	for d := 0; d < 4; d++ {
		if flat[4*4+d] != float64(d+1) {
			t.Fatalf("backing array at unit 4 dim %d = %v, want %v", d, flat[4*4+d], float64(d+1))
		}
	}
	w := m.Weight(4)
	if len(w) != 4 || cap(w) != 4 {
		t.Errorf("Weight(4) len/cap = %d/%d, want 4/4 (capped view)", len(w), cap(w))
	}
	// A view write must be visible in the backing array (views alias).
	w[0] = 42
	if m.Weights()[4*4] != 42 {
		t.Error("Weight view does not alias backing storage")
	}
}

// TestGrowInvalidatesRetainedWeightViews is the regression test for the
// Weight/GrowBetween documentation contract: growth reallocates the backing
// array, so weight slices retained across a growth call go stale — they
// keep the pre-growth values and no longer observe the live map.
func TestGrowInvalidatesRetainedWeightViews(t *testing.T) {
	m, err := New(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.SetWeight(i, []float64{float64(i), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	retained := m.Weight(3) // unit (1,1) before growth
	retainedFlat := m.Weights()
	if err := m.GrowBetween(0, 1); err != nil { // insert a column
		t.Fatal(err)
	}

	// The retained views still hold the old values: they must not have
	// been silently remapped or zeroed.
	if retained[0] != 3 || retained[1] != 3 {
		t.Errorf("retained view changed value after growth: %v", retained)
	}
	if len(retainedFlat) != 4*2 {
		t.Errorf("retained backing array resized in place: len %d", len(retainedFlat))
	}

	// Writes through the stale view must not leak into the grown map: unit
	// (1,1) of the old shape is unit (1,1) of an abandoned array.
	retained[0] = -999
	for u := 0; u < m.Units(); u++ {
		for _, v := range m.Weight(u) {
			if v == -999 {
				t.Fatalf("stale view write leaked into grown map at unit %d", u)
			}
		}
	}

	// And fresh views observe the grown geometry: old unit 3 (1,1) moved
	// to unit index 5 under the new 2x3 shape.
	if got := m.Weight(5); got[0] != 3 || got[1] != 3 {
		t.Errorf("post-growth Weight(5) = %v, want [3 3]", got)
	}
}

// TestBMUShortQueryStaysInRange pins the dimension-mismatch contract kept
// from the pre-flat storage: a query shorter than the map dimension is
// matched by prefix distance and always yields an in-range unit index
// (the flat kernel would otherwise stride misaligned rows).
func TestBMUShortQueryStaysInRange(t *testing.T) {
	m, err := New(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.SetWeight(i, []float64{float64(i), float64(i), 9, 9}); err != nil {
			t.Fatal(err)
		}
	}
	bmu, d2 := m.BMU([]float64{3, 3})
	if bmu < 0 || bmu >= m.Units() {
		t.Fatalf("short query returned out-of-range unit %d of %d", bmu, m.Units())
	}
	if bmu != 3 || d2 != 0 {
		t.Errorf("short query BMU = (%d, %v), want prefix match (3, 0)", bmu, d2)
	}
}

// TestBatchOpsIdenticalAcrossParallelism verifies the determinism contract
// of the parallel batch operations: Assign, MQE, UnitErrors, TrainBatch and
// TopographicError produce bit-identical results for every worker count.
func TestBatchOpsIdenticalAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([][]float64, 500)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	build := func(p int) *Map {
		m, err := New(4, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		m.SetParallelism(p)
		if err := m.InitSample(data, rand.New(rand.NewSource(9))); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultTrainConfig(nil)
		cfg.Shuffle = false
		cfg.Parallelism = p
		if _, err := m.TrainBatch(data, cfg); err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := build(1)
	refAssign := ref.Assign(data)
	refMQE := ref.MQE(data)
	refSum, refCounts := ref.UnitErrors(data)
	refTE := ref.TopographicError(data)
	for _, p := range []int{2, 4, 8, 0} {
		m := build(p)
		for i, w := range m.Weights() {
			if w != ref.Weights()[i] {
				t.Fatalf("p=%d: trained weights differ at flat index %d", p, i)
			}
		}
		assign := m.Assign(data)
		for i := range assign {
			if assign[i] != refAssign[i] {
				t.Fatalf("p=%d: Assign[%d] = %d, want %d", p, i, assign[i], refAssign[i])
			}
		}
		if mqe := m.MQE(data); mqe != refMQE {
			t.Errorf("p=%d: MQE = %v, want %v", p, mqe, refMQE)
		}
		sum, counts := m.UnitErrors(data)
		for u := range sum {
			if sum[u] != refSum[u] || counts[u] != refCounts[u] {
				t.Fatalf("p=%d: UnitErrors[%d] = (%v, %d), want (%v, %d)",
					p, u, sum[u], counts[u], refSum[u], refCounts[u])
			}
		}
		if te := m.TopographicError(data); te != refTE {
			t.Errorf("p=%d: TopographicError = %v, want %v", p, te, refTE)
		}
	}
}
