package som

import "fmt"

// InsertRowBetween grows the map by one row inserted between adjacent rows
// r and r+1. Each new unit's weight is the mean of its vertical neighbors —
// the GHSOM interpolation rule, which preserves the map's ordering.
func (m *Map) InsertRowBetween(r int) error {
	if r < 0 || r >= m.rows-1 {
		return fmt.Errorf("insert row between %d and %d in %d-row map: %w", r, r+1, m.rows, ErrBadShape)
	}
	newWeights := make([][]float64, (m.rows+1)*m.cols)
	for row := 0; row <= r; row++ {
		for c := 0; c < m.cols; c++ {
			newWeights[row*m.cols+c] = m.weights[row*m.cols+c]
		}
	}
	for c := 0; c < m.cols; c++ {
		above := m.weights[r*m.cols+c]
		below := m.weights[(r+1)*m.cols+c]
		w := make([]float64, m.dim)
		for d := 0; d < m.dim; d++ {
			w[d] = (above[d] + below[d]) / 2
		}
		newWeights[(r+1)*m.cols+c] = w
	}
	for row := r + 1; row < m.rows; row++ {
		for c := 0; c < m.cols; c++ {
			newWeights[(row+1)*m.cols+c] = m.weights[row*m.cols+c]
		}
	}
	m.weights = newWeights
	m.rows++
	return nil
}

// InsertColBetween grows the map by one column inserted between adjacent
// columns c and c+1, with interpolated weights.
func (m *Map) InsertColBetween(c int) error {
	if c < 0 || c >= m.cols-1 {
		return fmt.Errorf("insert column between %d and %d in %d-col map: %w", c, c+1, m.cols, ErrBadShape)
	}
	newCols := m.cols + 1
	newWeights := make([][]float64, m.rows*newCols)
	for r := 0; r < m.rows; r++ {
		for col := 0; col <= c; col++ {
			newWeights[r*newCols+col] = m.weights[r*m.cols+col]
		}
		left := m.weights[r*m.cols+c]
		right := m.weights[r*m.cols+c+1]
		w := make([]float64, m.dim)
		for d := 0; d < m.dim; d++ {
			w[d] = (left[d] + right[d]) / 2
		}
		newWeights[r*newCols+c+1] = w
		for col := c + 1; col < m.cols; col++ {
			newWeights[r*newCols+col+1] = m.weights[r*m.cols+col]
		}
	}
	m.weights = newWeights
	m.cols = newCols
	return nil
}

// GrowBetween inserts a row or a column between the error unit e and its
// dissimilar neighbor d, which must be direct grid neighbors. This is the
// single growth step of the GHSOM horizontal-growth loop.
func (m *Map) GrowBetween(e, d int) error {
	if e < 0 || e >= m.Units() || d < 0 || d >= m.Units() {
		return fmt.Errorf("grow between units %d and %d of %d: %w", e, d, m.Units(), ErrBadShape)
	}
	if !m.AreGridNeighbors(e, d) {
		return fmt.Errorf("grow between non-neighbor units %d and %d: %w", e, d, ErrBadShape)
	}
	re, ce := m.Coords(e)
	rd, _ := m.Coords(d)
	if re != rd {
		// Vertical neighbors: insert a row between them.
		r := re
		if rd < re {
			r = rd
		}
		return m.InsertRowBetween(r)
	}
	// Horizontal neighbors: insert a column between them.
	cd := ce
	if c2 := d % m.cols; c2 < ce {
		cd = c2
	}
	return m.InsertColBetween(cd)
}
