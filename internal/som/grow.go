package som

import "fmt"

// Growth operations reallocate the map's contiguous backing array: every
// weight slice previously obtained via Weight/WeightAt/Weights keeps
// aliasing the old array and becomes stale. Callers must re-fetch views
// after a successful growth call.

// InsertRowBetween grows the map by one row inserted between adjacent rows
// r and r+1. Each new unit's weight is the mean of its vertical neighbors —
// the GHSOM interpolation rule, which preserves the map's ordering.
func (m *Map) InsertRowBetween(r int) error {
	if r < 0 || r >= m.rows-1 {
		return fmt.Errorf("insert row between %d and %d in %d-row map: %w", r, r+1, m.rows, ErrBadShape)
	}
	rowLen := m.cols * m.dim // one grid row of packed weights
	newFlat := make([]float64, (m.rows+1)*rowLen)
	// Rows 0..r keep their position; rows r+1.. shift down by one.
	copy(newFlat[:(r+1)*rowLen], m.flat[:(r+1)*rowLen])
	copy(newFlat[(r+2)*rowLen:], m.flat[(r+1)*rowLen:])
	// The inserted row interpolates its vertical neighbors.
	above := m.flat[r*rowLen : (r+1)*rowLen]
	below := m.flat[(r+1)*rowLen : (r+2)*rowLen]
	inserted := newFlat[(r+1)*rowLen : (r+2)*rowLen]
	for i := range inserted {
		inserted[i] = (above[i] + below[i]) / 2
	}
	m.flat = newFlat
	m.rows++
	m.touch()
	return nil
}

// InsertColBetween grows the map by one column inserted between adjacent
// columns c and c+1, with interpolated weights.
func (m *Map) InsertColBetween(c int) error {
	if c < 0 || c >= m.cols-1 {
		return fmt.Errorf("insert column between %d and %d in %d-col map: %w", c, c+1, m.cols, ErrBadShape)
	}
	newCols := m.cols + 1
	newFlat := make([]float64, m.rows*newCols*m.dim)
	for r := 0; r < m.rows; r++ {
		oldRow := m.flat[r*m.cols*m.dim : (r+1)*m.cols*m.dim]
		newRow := newFlat[r*newCols*m.dim : (r+1)*newCols*m.dim]
		// Columns 0..c keep their position; columns c+1.. shift right.
		copy(newRow[:(c+1)*m.dim], oldRow[:(c+1)*m.dim])
		copy(newRow[(c+2)*m.dim:], oldRow[(c+1)*m.dim:])
		left := oldRow[c*m.dim : (c+1)*m.dim]
		right := oldRow[(c+1)*m.dim : (c+2)*m.dim]
		inserted := newRow[(c+1)*m.dim : (c+2)*m.dim]
		for d := range inserted {
			inserted[d] = (left[d] + right[d]) / 2
		}
	}
	m.flat = newFlat
	m.cols = newCols
	m.touch()
	return nil
}

// GrowBetween inserts a row or a column between the error unit e and its
// dissimilar neighbor d, which must be direct grid neighbors. This is the
// single growth step of the GHSOM horizontal-growth loop. Like all growth
// operations it reallocates the backing array, invalidating previously
// returned weight views.
func (m *Map) GrowBetween(e, d int) error {
	if e < 0 || e >= m.Units() || d < 0 || d >= m.Units() {
		return fmt.Errorf("grow between units %d and %d of %d: %w", e, d, m.Units(), ErrBadShape)
	}
	if !m.AreGridNeighbors(e, d) {
		return fmt.Errorf("grow between non-neighbor units %d and %d: %w", e, d, ErrBadShape)
	}
	re, ce := m.Coords(e)
	rd, _ := m.Coords(d)
	if re != rd {
		// Vertical neighbors: insert a row between them.
		r := re
		if rd < re {
			r = rd
		}
		return m.InsertRowBetween(r)
	}
	// Horizontal neighbors: insert a column between them.
	cd := ce
	if c2 := d % m.cols; c2 < ce {
		cd = c2
	}
	return m.InsertColBetween(cd)
}
