package som

import (
	"fmt"
	"math"
	"sync"

	"ghsom/internal/parallel"
	"ghsom/internal/vecmath"
)

// This file holds the flat training dataplane: batch and online training
// kernels over a vecmath.View (a row-major matrix plus an optional row
// subset), mirroring the inference dataplane in batch.go. The slice-based
// TrainBatch/TrainOnline in train.go are thin adapters that copy their
// data into a Matrix once and delegate here.
//
// Both kernels hoist the neighborhood kernel out of the per-record loop:
// the training parameters are per-epoch constants (see scheduleFrac), so
// the full coefficient table H[bmu][unit] — units² entries, tiny for
// GHSOM child maps — is computed once per epoch and the inner loops
// reduce to table lookups. Batch training additionally replaces the
// per-(record, unit) weighted accumulation with BMU-class accumulation:
// per-class sums and counts in one O(N·dim) pass, then one rank-1 update
// per (class, unit) pair — O(N·dim + units²·dim) per epoch instead of
// O(N·units·dim).
//
// Determinism: the per-record BMU searches write only their own output
// slots and every floating-point reduction (class sums, MQE) runs on the
// chunked scheduler (parallel.MapReduceChunk), whose chunk layout is a
// function of the row count only and whose per-chunk partials fold in
// ascending chunk order — so training results are bit-for-bit identical
// at every Parallelism setting, including serial execution.

// scheduleFrac returns the training fraction of an epoch for parameter
// decay: epochs interpolate over Epochs-1 so the final epoch trains
// exactly at the schedule's end values (AlphaEnd, RadiusEnd). Before this
// fix the fraction was epoch/Epochs, which never reached the endpoints. A
// single-epoch run has no schedule to traverse and trains at the start
// values.
func (c *TrainConfig) scheduleFrac(epoch int) float64 {
	if c.Epochs <= 1 {
		return 0
	}
	return float64(epoch) / float64(c.Epochs-1)
}

// checkView validates a data view against the map dimension.
func (m *Map) checkView(v vecmath.View) error {
	if v.Rows() == 0 {
		return ErrNoData
	}
	if v.Dim() != m.dim {
		return fmt.Errorf("data view of dim %d, map dim %d: %w", v.Dim(), m.dim, ErrDimMismatch)
	}
	return nil
}

// neighborhoodTable fills dst (length units*units) with the neighborhood
// coefficient of every (bmu, unit) pair at the given radius, scaled by
// scale: dst[bmu*units+u] = scale * kernel(gridDist²(bmu, u), radius).
// When cutoff is set, coefficients outside the kernel's reach (3σ for
// gaussian and mexican-hat, σ for bubble) are zeroed except at the BMU
// itself — the online rule's update window; the batch rule keeps every
// coefficient, matching its historical all-units accumulation. Grid
// coordinates are enumerated directly, so building the table performs no
// division and exactly units² kernel evaluations.
func (m *Map) neighborhoodTable(dst []float64, radius, scale float64, kernel Kernel, cutoff bool) {
	units := m.Units()
	cut2 := math.Inf(1)
	if cutoff {
		cut := radius * 3
		if kernel == KernelBubble {
			cut = radius
		}
		cut2 = cut * cut
	}
	b := 0
	for br := 0; br < m.rows; br++ {
		for bc := 0; bc < m.cols; bc++ {
			row := dst[b*units : (b+1)*units]
			u := 0
			for ur := 0; ur < m.rows; ur++ {
				dr := float64(br - ur)
				for uc := 0; uc < m.cols; uc++ {
					dc := float64(bc - uc)
					d2 := dr*dr + dc*dc
					if d2 > cut2 && u != b {
						row[u] = 0
					} else {
						row[u] = scale * kernel.Value(d2, radius)
					}
					u++
				}
			}
			b++
		}
	}
}

// bmuScratchPool recycles per-worker BMU engine scratches across bmuView
// calls. Scratches are claimed once per worker per call — never on the
// per-chunk path — so the steady state has no pool traffic and no
// cross-worker contention inside the BMU search.
var bmuScratchPool = sync.Pool{New: func() any { return new(vecmath.BMUScratch) }}

// bmuView computes the BMU index and squared distance of every view row
// into bmus and d2s (either may be nil), through the blocked BMU engine:
// work-stealing workers (parallel.ForEachChunk) take GEMM-tile-sized row
// chunks and run the norm-cached expanded-distance kernel
// (vecmath.BMUScratch.ArgMinDistanceBatch) over them, which is
// bit-for-bit identical to the per-row ArgMinDistance scan. The tile
// shape is resolved per call from the codebook and worker count
// (vecmath.ResolveTile); the worker count is clamped so no worker gets
// less than one tile (parallel.WorkersGrain); each worker owns a pooled
// scratch for the whole call, and the norm-cache read is a lock-free
// atomic snapshot — no mutex or pool sits on the per-chunk path. When
// d2s is nil — the training BMU pass under SkipEpochMQE — the engine
// skips the canonical distance settle for every unambiguous record.
// Each chunk writes only its own slots, so results are identical at
// every worker count.
//
// When the map's BMU precision (SetBMUPrecision) resolves to a reduced
// rung for this codebook, the quantized shadow arena is synced from its
// version-keyed cache — the same lock-free copy-on-invalidate contract
// as the norm cache — and candidate generation runs through it, with
// the tile resized for the narrower record elements; results stay
// bit-identical (the exact settle guarantees the same winners).
func (m *Map) bmuView(v vecmath.View, bmus []int, d2s []float64, p int) {
	n := v.Rows()
	if n == 0 || (bmus == nil && d2s == nil) {
		return
	}
	norms := m.syncedNorms()
	prec := vecmath.ResolvePrecision(m.bmuPrec).Effective(m.Units(), m.dim)
	var qa *vecmath.QuantArena
	if prec != vecmath.PrecisionF64 {
		qa = m.quant.Sync(m.flat, m.dim, m.version, prec)
	}
	tile := vecmath.ResolveTileElem(m.dim, m.Units(), parallel.Workers(p, n), prec.RecordElemBytes())
	grain := tile.RecRows
	w := parallel.WorkersGrain(p, n, grain)
	scratches := make([]*vecmath.BMUScratch, w)
	for i := range scratches {
		sc := bmuScratchPool.Get().(*vecmath.BMUScratch)
		sc.Tile = tile
		scratches[i] = sc
	}
	parallel.ForEachChunk(p, n, grain, func(wk, lo, hi int) {
		var ob []int
		var od []float64
		if bmus != nil {
			ob = bmus[lo:hi]
		}
		if d2s != nil {
			od = d2s[lo:hi]
		}
		if qa != nil {
			scratches[wk].ArgMinDistanceBatchQuant(v.Slice(lo, hi), m.flat, norms, qa, ob, od)
		} else {
			scratches[wk].ArgMinDistanceBatch(v.Slice(lo, hi), m.flat, norms, ob, od)
		}
		for i := range ob {
			if ob[i] < 0 {
				ob[i] = 0 // degenerate query: keep the BMU contract of unit 0
			}
		}
	})
	for _, sc := range scratches {
		bmuScratchPool.Put(sc)
	}
}

// classAccum is one chunk's BMU-class partial: per-unit data-row sums and
// counts. Partials live in cache-line-padded MapReduceChunk slots while
// workers fill them and are pooled across epochs, so the steady-state
// fold neither false-shares nor allocates.
type classAccum struct {
	sum []float64
	cnt []int
}

var classAccumPool = sync.Pool{New: func() any { return new(classAccum) }}

// reset shapes the accumulator for a units×dim map and zeroes it.
func (a *classAccum) reset(units, dim int) {
	if cap(a.sum) < units*dim {
		a.sum = make([]float64, units*dim)
	} else {
		a.sum = a.sum[:units*dim]
		for i := range a.sum {
			a.sum[i] = 0
		}
	}
	if cap(a.cnt) < units {
		a.cnt = make([]int, units)
	} else {
		a.cnt = a.cnt[:units]
		for i := range a.cnt {
			a.cnt[i] = 0
		}
	}
}

// classFoldGrain is the chunk grain of the BMU-class accumulation fold: a
// pure function of the row count (so the chunk layout never depends on
// the worker count), bounding live per-chunk class tables at ~64 while
// keeping batches of up to 2048 rows in one chunk — where the fold is
// exactly the retired serial row-order accumulation.
func classFoldGrain(n int) int {
	g := (n + 63) / 64
	if g < 2048 {
		g = 2048
	}
	return g
}

// mqeFoldGrain is the chunk grain of the scalar sqrt-sum folds (epoch
// MQE): constant, so the layout depends on the row count only.
const mqeFoldGrain = 8192

// TrainBatchView trains the map with the deterministic batch rule over a
// flat data view. Each epoch runs one parallel BMU pass, accumulates
// per-BMU-class sums and counts with a chunked deterministic fold
// (parallel.MapReduceChunk: fixed row-count-only chunk layout, partials
// folded in ascending chunk order), and moves every unit to its
// neighborhood-weighted class mean via one rank-1 update per (class,
// unit) pair. The BMU-pass distances double as the previous epoch's MQE
// measurement, so no separate quality scan runs inside the epoch loop;
// unless cfg.SkipEpochMQE is set, one extra distance-only pass after the
// final epoch completes the stats. Batch training ignores Alpha and
// Shuffle. Results are bit-for-bit identical at every cfg.Parallelism
// setting.
func (m *Map) TrainBatchView(v vecmath.View, cfg TrainConfig) (TrainStats, error) {
	if err := cfg.validate(); err != nil {
		return TrainStats{}, err
	}
	if err := m.checkView(v); err != nil {
		return TrainStats{}, err
	}
	radius0 := cfg.effectiveRadius0(m)
	units, dim, n := m.Units(), m.dim, v.Rows()
	var (
		h     = make([]float64, units*units)
		numer = make([]float64, dim)
		bmus  = make([]int, n)
		d2s   []float64
	)
	foldGrain := classFoldGrain(n)
	stats := TrainStats{}
	if !cfg.SkipEpochMQE {
		stats.EpochMQE = make([]float64, 0, cfg.Epochs)
		d2s = make([]float64, n)
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		radius := cfg.Decay.Interp(radius0, cfg.RadiusEnd, cfg.scheduleFrac(epoch))
		m.neighborhoodTable(h, radius, 1, cfg.Kernel, false)

		m.bmuView(v, bmus, d2s, cfg.Parallelism)
		acc := parallel.MapReduceChunk(cfg.Parallelism, n, foldGrain, (*classAccum)(nil),
			func(lo, hi int) *classAccum {
				a := classAccumPool.Get().(*classAccum)
				a.reset(units, dim)
				for i := lo; i < hi; i++ {
					c := bmus[i]
					a.cnt[c]++
					vecmath.AXPYInPlace(a.sum[c*dim:(c+1)*dim], 1, v.Row(i))
				}
				return a
			},
			func(acc, part *classAccum) *classAccum {
				if acc == nil {
					return part
				}
				vecmath.AXPYInPlace(acc.sum, 1, part.sum)
				for i, c := range part.cnt {
					acc.cnt[i] += c
				}
				classAccumPool.Put(part)
				return acc
			})
		classSum, classCnt := acc.sum, acc.cnt
		if epoch > 0 && !cfg.SkipEpochMQE {
			// This epoch's BMU pass ran against the weights produced by the
			// previous epoch's update: its distances are exactly the
			// previous epoch's post-update MQE.
			qeSum := parallel.MapReduceChunk(cfg.Parallelism, n, mqeFoldGrain, 0.0,
				func(lo, hi int) float64 {
					var s float64
					for i := lo; i < hi; i++ {
						s += math.Sqrt(d2s[i])
					}
					return s
				},
				func(acc, part float64) float64 { return acc + part })
			stats.EpochMQE = append(stats.EpochMQE, qeSum/float64(n))
		}

		for u := 0; u < units; u++ {
			var denom float64
			for d := range numer {
				numer[d] = 0
			}
			for c := 0; c < units; c++ {
				if classCnt[c] == 0 {
					continue
				}
				hc := h[c*units+u]
				if hc <= 0 {
					continue
				}
				denom += hc * float64(classCnt[c])
				vecmath.AXPYInPlace(numer, hc, classSum[c*dim:(c+1)*dim])
			}
			if denom <= 0 {
				continue // keep previous weight for starved units
			}
			inv := 1 / denom
			w := m.Weight(u)
			for d := range w {
				w[d] = numer[d] * inv
			}
		}
		classAccumPool.Put(acc)
		// The rank-1 updates above rewrote the weight arena: bump the
		// version so the next epoch's blocked BMU pass resyncs its norm
		// cache.
		m.touch()
	}
	if !cfg.SkipEpochMQE {
		stats.EpochMQE = append(stats.EpochMQE, m.mqeView(v, cfg.Parallelism, d2s))
	}
	return stats, nil
}

// TrainOnlineView trains the map with stochastic per-record updates over
// a flat data view. The learning rate and radius are per-epoch constants
// (see scheduleFrac), which lets each epoch precompute the α-scaled
// neighborhood table once; the per-record update is then a BMU search
// plus one table-gated MoveToward per in-cutoff unit, with no kernel or
// grid-distance evaluation in the loop. Presentation order is shuffled on
// a private index slice; the view is never modified.
func (m *Map) TrainOnlineView(v vecmath.View, cfg TrainConfig) (TrainStats, error) {
	if err := cfg.validate(); err != nil {
		return TrainStats{}, err
	}
	if err := m.checkView(v); err != nil {
		return TrainStats{}, err
	}
	radius0 := cfg.effectiveRadius0(m)
	units, n := m.Units(), v.Rows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ah := make([]float64, units*units)
	var d2scratch []float64
	stats := TrainStats{}
	if !cfg.SkipEpochMQE {
		stats.EpochMQE = make([]float64, 0, cfg.Epochs)
		d2scratch = make([]float64, n)
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		frac := cfg.scheduleFrac(epoch)
		alpha := cfg.Decay.Interp(cfg.Alpha0, cfg.AlphaEnd, frac)
		radius := cfg.Decay.Interp(radius0, cfg.RadiusEnd, frac)
		m.neighborhoodTable(ah, radius, alpha, cfg.Kernel, true)
		if cfg.Shuffle {
			cfg.Rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		for _, idx := range order {
			x := v.Row(idx)
			bmu, _ := m.BMU(x)
			row := ah[bmu*units : (bmu+1)*units]
			for u, coef := range row {
				if coef == 0 {
					continue
				}
				vecmath.MoveToward(m.Weight(u), coef, x)
			}
			m.touch() // MoveToward mutated the arena: invalidate norms
		}
		if !cfg.SkipEpochMQE {
			stats.EpochMQE = append(stats.EpochMQE, m.mqeView(v, cfg.Parallelism, d2scratch))
		}
	}
	return stats, nil
}

// mqeView returns the mean quantization error of the view on p workers,
// reusing d2s (length >= v.Rows(), or nil to allocate) as distance
// scratch. The sum folds on the chunked deterministic scheduler: the
// result is bit-identical at every worker count.
func (m *Map) mqeView(v vecmath.View, p int, d2s []float64) float64 {
	n := v.Rows()
	if n == 0 {
		return math.NaN()
	}
	if len(d2s) < n {
		d2s = make([]float64, n)
	}
	m.bmuView(v, nil, d2s, p)
	sum := parallel.MapReduceChunk(p, n, mqeFoldGrain, 0.0,
		func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += math.Sqrt(d2s[i])
			}
			return s
		},
		func(acc, part float64) float64 { return acc + part })
	return sum / float64(n)
}

// MQEView returns the map's mean quantization error over the view, on the
// map's configured Parallelism.
func (m *Map) MQEView(v vecmath.View) float64 { return m.mqeView(v, m.parallelism, nil) }

// AssignView returns the BMU index of every view row, on the map's
// configured Parallelism.
func (m *Map) AssignView(v vecmath.View) []int {
	out := make([]int, v.Rows())
	m.bmuView(v, out, nil, m.parallelism)
	return out
}

// UnitErrorsView returns, per unit, the summed quantization error of the
// view rows mapped to it and the number of rows mapped.
func (m *Map) UnitErrorsView(v vecmath.View) (sumQE []float64, counts []int) {
	sumQE = make([]float64, m.Units())
	counts = make([]int, m.Units())
	n := v.Rows()
	bmus := make([]int, n)
	d2s := make([]float64, n)
	m.bmuView(v, bmus, d2s, m.parallelism)
	for i := 0; i < n; i++ {
		sumQE[bmus[i]] += math.Sqrt(d2s[i])
		counts[bmus[i]]++
	}
	return sumQE, counts
}

// UnitMeanErrorsView returns the per-unit mean quantization error over
// the view (zero for empty units), plus the counts.
func (m *Map) UnitMeanErrorsView(v vecmath.View) (meanQE []float64, counts []int) {
	meanQE, counts = m.UnitErrorsView(v)
	for i := range meanQE {
		if counts[i] > 0 {
			meanQE[i] /= float64(counts[i])
		}
	}
	return meanQE, counts
}

// MeanUnitMQEView returns the GHSOM growth criterion over the view: the
// mean of the per-unit mean quantization errors, over units with at least
// one mapped row. Returns NaN when no unit has data.
func (m *Map) MeanUnitMQEView(v vecmath.View) float64 {
	meanQE, counts := m.UnitMeanErrorsView(v)
	var sum float64
	var cnt int
	for i, c := range counts {
		if c > 0 {
			sum += meanQE[i]
			cnt++
		}
	}
	if cnt == 0 {
		return math.NaN()
	}
	return sum / float64(cnt)
}
