// Package som implements the classic Kohonen Self-Organizing Map on a
// rectangular grid: online and batch training, neighborhood kernels,
// parameter decay schedules, and the standard map-quality measures
// (quantization error, topographic error, U-matrix).
//
// The package is the substrate under the GHSOM in internal/core: a GHSOM is
// a hierarchy of these maps, grown row/column-wise. It is also usable as a
// flat-SOM baseline detector on its own.
package som

import (
	"errors"
	"fmt"

	"ghsom/internal/vecmath"
)

// Errors shared by the package.
var (
	// ErrNoData is returned when an operation requires at least one data
	// vector.
	ErrNoData = errors.New("som: no data")
	// ErrDimMismatch is returned when a data vector does not match the
	// map's weight dimension.
	ErrDimMismatch = errors.New("som: dimension mismatch")
	// ErrBadShape is returned when a map shape or index is invalid.
	ErrBadShape = errors.New("som: invalid shape")
)

// Map is a rectangular self-organizing map. Units are stored row-major:
// unit (r, c) lives at index r*Cols + c. All weight vectors live in one
// contiguous row-major backing array (unit i occupies flat[i*Dim :
// (i+1)*Dim]), so BMU search streams a single allocation instead of
// pointer-chasing one heap object per unit. Weight vectors are owned by
// the map; callers must not retain references across training or growth
// calls (see Weight).
type Map struct {
	rows, cols, dim int
	flat            []float64 // rows*cols*dim, unit-major then dimension
	parallelism     int       // batch-op worker knob; <= 0 means GOMAXPROCS

	// version counts weight-arena mutations: every mutating method
	// (SetWeight, the Init* family, training updates, and the growth
	// operations, which also reallocate the arena) bumps it. It is the
	// staleness token of the norm cache below — see Version.
	version uint64
	// norms caches the per-unit squared weight norms for the blocked BMU
	// engine, keyed by version. The cache is an atomic snapshot
	// (lock-free reads, copy-on-invalidate), so concurrent read-only
	// batch operations (Assign, AssignFlat, MQE) on a trained map never
	// serialize on it. Weight mutation itself requires exclusive access,
	// exactly as it always has.
	norms vecmath.NormCache

	// bmuPrec selects the candidate-generation precision of the blocked
	// BMU engine (f64/f32/i8/auto); results are bit-identical at every
	// setting — only the candidate generator changes. See SetBMUPrecision.
	bmuPrec vecmath.Precision
	// quant caches the reduced-precision shadow arena beside the norm
	// cache, under the same version-keyed copy-on-invalidate staleness
	// contract: weight mutations bump version, and the next BMU pass
	// re-quantizes lazily.
	quant vecmath.QuantCache
}

// New returns an untrained map of the given shape with zero-valued weights.
// Use one of the Init* methods (or set weights via SetWeight) before
// training.
func New(rows, cols, dim int) (*Map, error) {
	if rows < 1 || cols < 1 || dim < 1 {
		return nil, fmt.Errorf("new %dx%d map of dim %d: %w", rows, cols, dim, ErrBadShape)
	}
	return &Map{rows: rows, cols: cols, dim: dim, flat: make([]float64, rows*cols*dim), version: 1}, nil
}

// Version returns the weight-arena mutation counter. Every mutation made
// through the map's API — SetWeight, the Init* initializers, training
// updates (batch rank-1 updates and online MoveToward steps), and the
// reallocating growth operations — increments it, which is what makes a
// stale norm cache impossible: the blocked BMU engine's NormCache
// recomputes whenever the version it sees differs from the one it cached
// (see internal/vecmath). Writes through slices returned by
// Weight/WeightAt/Weights bypass the counter — the documented contract
// has always been to mutate via SetWeight only.
func (m *Map) Version() uint64 { return m.version }

// touch records a weight mutation.
func (m *Map) touch() { m.version++ }

// syncedNorms returns the up-to-date per-unit squared-norm table. Safe
// for concurrent callers on a map that is not being mutated: the cache
// read is a single atomic snapshot load, so the steady-state BMU hot
// path acquires no lock (concurrent first-touch callers may redundantly
// recompute and republish the same table, which is benign).
func (m *Map) syncedNorms() []float64 {
	return m.norms.Sync(m.flat, m.dim, m.version)
}

// Rows returns the number of grid rows.
func (m *Map) Rows() int { return m.rows }

// Cols returns the number of grid columns.
func (m *Map) Cols() int { return m.cols }

// Dim returns the weight-vector dimension.
func (m *Map) Dim() int { return m.dim }

// Units returns the total number of units (Rows*Cols).
func (m *Map) Units() int { return m.rows * m.cols }

// Index converts grid coordinates to a unit index. It does not validate
// bounds; use InBounds for that.
func (m *Map) Index(r, c int) int { return r*m.cols + c }

// Coords converts a unit index back to grid coordinates.
func (m *Map) Coords(i int) (r, c int) { return i / m.cols, i % m.cols }

// InBounds reports whether (r, c) is a valid grid coordinate.
func (m *Map) InBounds(r, c int) bool {
	return r >= 0 && r < m.rows && c >= 0 && c < m.cols
}

// Weight returns the weight vector of unit i as a strided view into the
// map's contiguous backing array. The returned slice aliases map storage:
// it is valid for reading; mutate only via SetWeight.
//
// Invalidation: any growth operation (InsertRowBetween, InsertColBetween,
// GrowBetween) reallocates the backing array. Slices returned by Weight or
// WeightAt before a growth call keep pointing at the old, abandoned array —
// they neither observe nor affect the grown map. Re-fetch weight views
// after every growth (and, defensively, after any training call).
func (m *Map) Weight(i int) []float64 {
	o := i * m.dim
	return m.flat[o : o+m.dim : o+m.dim]
}

// WeightAt returns the weight vector of unit (r, c), aliasing map storage.
// The invalidation rules of Weight apply.
func (m *Map) WeightAt(r, c int) []float64 { return m.Weight(m.Index(r, c)) }

// Weights returns the map's contiguous row-major backing array (unit i at
// [i*Dim, (i+1)*Dim)). It aliases live storage and is invalidated by growth
// operations exactly like Weight; treat it as read-only.
func (m *Map) Weights() []float64 { return m.flat }

// SetWeight copies w into unit i's weight vector.
func (m *Map) SetWeight(i int, w []float64) error {
	if len(w) != m.dim {
		return fmt.Errorf("set weight of length %d on dim-%d map: %w", len(w), m.dim, ErrDimMismatch)
	}
	copy(m.Weight(i), w)
	m.touch()
	return nil
}

// SetBMUPrecision sets the candidate-generation precision of the map's
// blocked BMU searches: PrecisionAuto (the default) engages the int8
// shadow arena only on codebooks large enough to pay for it, and
// explicit f64/f32/i8 force a rung. BMU results are bit-for-bit
// identical at every setting — reduced precision only nominates
// candidates, which are always settled with the canonical f64 kernel —
// so the knob is purely a performance control, like SetParallelism.
func (m *Map) SetBMUPrecision(p vecmath.Precision) { m.bmuPrec = p }

// BMUPrecision returns the configured candidate-generation precision.
func (m *Map) BMUPrecision() vecmath.Precision { return m.bmuPrec }

// SetParallelism sets the worker bound used by the map's batch operations
// (Assign, MQE, UnitErrors, TrainBatch's BMU pass): 0 (the default) means
// runtime.GOMAXPROCS, 1 forces serial execution, n > 1 caps the fan-out at
// n goroutines. Results are bit-for-bit identical for every setting; see
// internal/parallel.
func (m *Map) SetParallelism(p int) { m.parallelism = p }

// Parallelism returns the configured batch-operation worker bound.
func (m *Map) Parallelism() int { return m.parallelism }

// GridDistance2 returns the squared Euclidean distance between units i and
// j measured on the grid lattice (not in weight space).
func (m *Map) GridDistance2(i, j int) float64 {
	ri, ci := m.Coords(i)
	rj, cj := m.Coords(j)
	dr := float64(ri - rj)
	dc := float64(ci - cj)
	return dr*dr + dc*dc
}

// AreGridNeighbors reports whether units i and j are direct 4-neighbors on
// the lattice.
func (m *Map) AreGridNeighbors(i, j int) bool {
	ri, ci := m.Coords(i)
	rj, cj := m.Coords(j)
	dr := ri - rj
	if dr < 0 {
		dr = -dr
	}
	dc := ci - cj
	if dc < 0 {
		dc = -dc
	}
	return dr+dc == 1
}

// Neighbors returns the direct 4-neighborhood unit indices of unit i,
// appended to dst (which may be nil). At most four indices are appended.
func (m *Map) Neighbors(i int, dst []int) []int {
	r, c := m.Coords(i)
	if m.InBounds(r-1, c) {
		dst = append(dst, m.Index(r-1, c))
	}
	if m.InBounds(r+1, c) {
		dst = append(dst, m.Index(r+1, c))
	}
	if m.InBounds(r, c-1) {
		dst = append(dst, m.Index(r, c-1))
	}
	if m.InBounds(r, c+1) {
		dst = append(dst, m.Index(r, c+1))
	}
	return dst
}

// Clone returns a deep copy of the map. The clone starts with a fresh
// version counter and empty norm/shadow-arena caches of its own.
func (m *Map) Clone() *Map {
	out := &Map{rows: m.rows, cols: m.cols, dim: m.dim, parallelism: m.parallelism,
		bmuPrec: m.bmuPrec, version: 1}
	out.flat = make([]float64, len(m.flat))
	copy(out.flat, m.flat)
	return out
}

// checkData validates a data set against the map dimension.
func (m *Map) checkData(data [][]float64) error {
	if len(data) == 0 {
		return ErrNoData
	}
	for i, x := range data {
		if len(x) != m.dim {
			return fmt.Errorf("data row %d has dim %d, map dim %d: %w", i, len(x), m.dim, ErrDimMismatch)
		}
	}
	return nil
}
