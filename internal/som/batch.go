package som

import (
	"fmt"
	"math"

	"ghsom/internal/vecmath"
)

// This file holds the flat-batch BMU kernels of the inference dataplane:
// closure-free masked BMU search and batch assignment over a row-major
// flat data matrix. They reuse the contiguous weight storage kernels
// (vecmath.ArgMinDistance / SquaredDistanceFlat) so a batch descent
// touches exactly two flat arrays — the query rows and the weights.

// BMUMasked returns the best-matching unit of x among units u with
// counts[u] > 0 (units at or beyond len(counts) are excluded), with its
// squared distance. ok is false when no unit passes the mask. It is the
// allocation-free equivalent of BMUWhere with a unit-count predicate —
// the kernel under effective-codebook routing — and resolves ties to the
// lowest unit index, exactly like BMU.
func (m *Map) BMUMasked(x []float64, counts []int) (bmu int, dist2 float64, ok bool) {
	bmu, dist2 = -1, math.Inf(1)
	limit := len(counts)
	if u := m.Units(); u < limit {
		limit = u
	}
	for i := 0; i < limit; i++ {
		if counts[i] <= 0 {
			continue
		}
		if d := vecmath.SquaredDistanceFlat(x, m.flat, i*m.dim); d < dist2 {
			bmu, dist2 = i, d
		}
	}
	if bmu < 0 {
		return 0, 0, false
	}
	return bmu, dist2, true
}

// AssignFlat computes the BMU index and squared distance of every row of
// the flat row-major matrix (n rows of Dim() values) into bmus and d2s,
// which must both have length at least n. Unlike the map-level batch ops
// (Assign, MQE) it takes the worker bound explicitly — 0 = GOMAXPROCS,
// 1 = serial — so callers embedding it under an outer parallel loop (the
// anomaly batch quantizer) can pin it to 1 instead of inheriting the
// map's knob. The search runs on the blocked BMU engine (norm-cached
// expanded-distance candidates, exact settle); results are positionally
// stable and bit-for-bit identical to calling BMU per row at every
// setting. Either output slice may be nil to skip that result.
func (m *Map) AssignFlat(flat []float64, n int, bmus []int, d2s []float64, parallelism int) error {
	if len(flat) < n*m.dim {
		return fmt.Errorf("assign flat batch of %d rows from %d values, want >= %d: %w",
			n, len(flat), n*m.dim, ErrDimMismatch)
	}
	if bmus != nil && len(bmus) < n {
		return fmt.Errorf("bmus length %d < %d rows: %w", len(bmus), n, ErrBadShape)
	}
	if d2s != nil && len(d2s) < n {
		return fmt.Errorf("d2s length %d < %d rows: %w", len(d2s), n, ErrBadShape)
	}
	mat, err := vecmath.MatrixOver(flat, n, m.dim)
	if err != nil {
		return fmt.Errorf("assign flat batch: %w", err)
	}
	m.bmuView(mat.View(), bmus, d2s, parallelism)
	return nil
}
