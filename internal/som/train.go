package som

import (
	"fmt"
	"math"
	"math/rand"

	"ghsom/internal/vecmath"
)

// TrainConfig controls SOM training. The zero value is not usable; obtain a
// baseline with DefaultTrainConfig and override fields as needed.
type TrainConfig struct {
	// Epochs is the number of full passes over the data.
	Epochs int
	// Alpha0 and AlphaEnd are the initial and final learning rates.
	Alpha0, AlphaEnd float64
	// Radius0 and RadiusEnd are the initial and final neighborhood radii,
	// in grid units. If Radius0 <= 0 it defaults to half the larger grid
	// side at training time.
	Radius0, RadiusEnd float64
	// Kernel is the neighborhood function (default gaussian).
	Kernel Kernel
	// Decay is the parameter schedule (default exponential).
	Decay Decay
	// Shuffle controls whether the presentation order is reshuffled each
	// epoch (online training only).
	Shuffle bool
	// Rng drives initialization sampling and shuffling. Required when
	// Shuffle is set.
	Rng *rand.Rand
	// SkipEpochMQE disables the per-epoch MQE measurement (TrainStats is
	// returned with an empty EpochMQE). Callers that track map quality
	// themselves — the GHSOM growth loop measures MeanUnitMQE after every
	// training call — set it to drop the extra per-epoch data scan.
	SkipEpochMQE bool
	// Parallelism bounds the workers used inside a training call — batch
	// training's BMU pass and the per-epoch MQE measurement of both rules:
	// 0 means GOMAXPROCS, 1 forces strictly serial execution on the
	// calling goroutine. Training results are bit-for-bit identical for
	// every setting (the BMU pass is embarrassingly parallel; accumulation
	// stays in data order). Map-level batch operations called outside
	// training read the separate Map.SetParallelism knob instead.
	Parallelism int
}

// DefaultTrainConfig returns the training configuration used by the GHSOM
// layers: a short, hot training run suited to small growing maps.
func DefaultTrainConfig(rng *rand.Rand) TrainConfig {
	return TrainConfig{
		Epochs:    10,
		Alpha0:    0.5,
		AlphaEnd:  0.01,
		Radius0:   0, // auto: max(rows, cols)/2
		RadiusEnd: 0.5,
		Kernel:    KernelGaussian,
		Decay:     DecayExponential,
		Shuffle:   true,
		Rng:       rng,
	}
}

func (c *TrainConfig) validate() error {
	if c.Epochs < 1 {
		return fmt.Errorf("som: epochs %d, want >= 1", c.Epochs)
	}
	if c.Alpha0 <= 0 || c.Alpha0 > 1 {
		return fmt.Errorf("som: alpha0 %v outside (0, 1]", c.Alpha0)
	}
	if c.AlphaEnd < 0 || c.AlphaEnd > c.Alpha0 {
		return fmt.Errorf("som: alphaEnd %v outside [0, alpha0=%v]", c.AlphaEnd, c.Alpha0)
	}
	if !c.Kernel.Valid() {
		return fmt.Errorf("som: invalid kernel %v", c.Kernel)
	}
	if !c.Decay.Valid() {
		return fmt.Errorf("som: invalid decay %v", c.Decay)
	}
	if c.Shuffle && c.Rng == nil {
		return fmt.Errorf("som: shuffle requested without rng")
	}
	return nil
}

// effectiveRadius0 resolves the auto (non-positive) initial radius.
func (c *TrainConfig) effectiveRadius0(m *Map) float64 {
	if c.Radius0 > 0 {
		return c.Radius0
	}
	r := float64(m.rows)
	if float64(m.cols) > r {
		r = float64(m.cols)
	}
	r /= 2
	if r < 1 {
		r = 1
	}
	return r
}

// TrainStats reports per-epoch quality collected during training.
type TrainStats struct {
	// EpochMQE is the mean quantization error measured after each epoch.
	EpochMQE []float64
}

// FinalMQE returns the last epoch's MQE, or NaN if no epochs ran.
func (s TrainStats) FinalMQE() float64 {
	if len(s.EpochMQE) == 0 {
		return math.NaN()
	}
	return s.EpochMQE[len(s.EpochMQE)-1]
}

// InitRandomUniform initializes each weight uniformly within the
// per-dimension [min, max] ranges observed in data.
func (m *Map) InitRandomUniform(data [][]float64, rng *rand.Rand) error {
	if err := m.checkData(data); err != nil {
		return err
	}
	lo := make([]float64, m.dim)
	hi := make([]float64, m.dim)
	for d := 0; d < m.dim; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, x := range data {
		for d, v := range x {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	for i := 0; i < m.Units(); i++ {
		w := m.Weight(i)
		for d := range w {
			w[d] = lo[d] + rng.Float64()*(hi[d]-lo[d])
		}
	}
	m.touch()
	return nil
}

// InitSample initializes each unit with a uniformly sampled data vector
// (with replacement).
func (m *Map) InitSample(data [][]float64, rng *rand.Rand) error {
	if err := m.checkData(data); err != nil {
		return err
	}
	for i := 0; i < m.Units(); i++ {
		copy(m.Weight(i), data[rng.Intn(len(data))])
	}
	m.touch()
	return nil
}

// InitLinear initializes the map on the plane spanned by the data's two
// principal axes — the SOM-Toolbox "lininit". Unit (r, c) is placed at
// mean + a·scale1·axis1 + b·scale2·axis2 with a, b spanning [-1, 1]
// across the grid. Linear initialization gives the map a globally ordered
// starting state, which speeds convergence and removes most topological
// defects. For one-dimensional data (or a 1xN map) only the first axis is
// used.
func (m *Map) InitLinear(data [][]float64, rng *rand.Rand) error {
	if err := m.checkData(data); err != nil {
		return err
	}
	k := 2
	if m.dim < 2 {
		k = 1
	}
	axes, scales, err := vecmath.PrincipalComponents(data, k, rng)
	if err != nil {
		return fmt.Errorf("som: linear init: %w", err)
	}
	mean, err := vecmath.Mean(data)
	if err != nil {
		return fmt.Errorf("som: linear init: %w", err)
	}
	// Span ±2 standard deviations across the grid, covering ~95% of the
	// data along each axis.
	spread := func(idx, n int) float64 {
		if n <= 1 {
			return 0
		}
		return 2 * (2*float64(idx)/float64(n-1) - 1)
	}
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			w := m.WeightAt(r, c)
			copy(w, mean)
			// Rows span the first (dominant) axis, columns the second.
			vecmath.AXPYInPlace(w, spread(r, m.rows)*scales[0], axes[0])
			if k > 1 {
				vecmath.AXPYInPlace(w, spread(c, m.cols)*scales[1], axes[1])
			}
		}
	}
	m.touch()
	return nil
}

// InitAroundMean initializes every unit at mean plus gaussian jitter of the
// given spread. This is the GHSOM child-map initializer: new maps start
// near their parent unit's position in weight space.
func (m *Map) InitAroundMean(mean []float64, spread float64, rng *rand.Rand) error {
	if len(mean) != m.dim {
		return fmt.Errorf("init around mean of dim %d on dim-%d map: %w", len(mean), m.dim, ErrDimMismatch)
	}
	for i := 0; i < m.Units(); i++ {
		w := m.Weight(i)
		for d := range w {
			w[d] = mean[d] + rng.NormFloat64()*spread
		}
	}
	m.touch()
	return nil
}

// BMU returns the index of the best-matching (nearest) unit for x and the
// squared distance to it.
func (m *Map) BMU(x []float64) (int, float64) {
	if len(x) == m.dim {
		best, bestDist := vecmath.ArgMinDistance(x, m.flat)
		if best < 0 {
			// Degenerate query (e.g. all-NaN distances): keep the
			// historical contract of reporting unit 0.
			return 0, bestDist
		}
		return best, bestDist
	}
	// Dimension-mismatched query: ArgMinDistance strides by len(x), which
	// would walk misaligned rows. Fall back to the per-unit kernel, whose
	// contract matches the pre-flat storage (prefix distance for short
	// queries, panic for long ones) and always yields an in-range unit.
	best, bestDist := 0, math.Inf(1)
	for i, units := 0, m.Units(); i < units; i++ {
		if d := vecmath.SquaredDistance(x, m.Weight(i)); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, bestDist
}

// BMUWhere returns the best-matching unit among units accepted by the
// allowed predicate, with its squared distance. ok is false when no unit
// is allowed.
func (m *Map) BMUWhere(x []float64, allowed func(int) bool) (bmu int, dist2 float64, ok bool) {
	bmu, dist2 = -1, math.Inf(1)
	for i, units := 0, m.Units(); i < units; i++ {
		if !allowed(i) {
			continue
		}
		if d := vecmath.SquaredDistanceFlat(x, m.flat, i*m.dim); d < dist2 {
			bmu, dist2 = i, d
		}
	}
	if bmu < 0 {
		return 0, 0, false
	}
	return bmu, dist2, true
}

// BMU2 returns the indices of the best and second-best matching units for
// x. The map must have at least two units; with a single unit both results
// are 0.
func (m *Map) BMU2(x []float64) (first, second int) {
	firstDist, secondDist := math.Inf(1), math.Inf(1)
	second = -1
	for i, units := 0, m.Units(); i < units; i++ {
		d := vecmath.SquaredDistanceFlat(x, m.flat, i*m.dim)
		switch {
		case d < firstDist:
			second, secondDist = first, firstDist
			first, firstDist = i, d
		case d < secondDist:
			second, secondDist = i, d
		}
	}
	if second < 0 {
		second = first
	}
	return first, second
}

// TrainOnline trains the map with stochastic (per-record) updates and
// returns per-epoch statistics. The data slice itself is never modified;
// presentation order is shuffled on a private index slice. It is a thin
// adapter over TrainOnlineView: the data is copied once into a contiguous
// matrix and trained on the flat kernel.
func (m *Map) TrainOnline(data [][]float64, cfg TrainConfig) (TrainStats, error) {
	if err := cfg.validate(); err != nil {
		return TrainStats{}, err
	}
	if err := m.checkData(data); err != nil {
		return TrainStats{}, err
	}
	mat, err := vecmath.MatrixFromRows(data)
	if err != nil {
		return TrainStats{}, fmt.Errorf("som: %w", err)
	}
	return m.TrainOnlineView(mat.View(), cfg)
}

// TrainBatch trains the map with the deterministic batch rule: each epoch
// every unit moves to the neighborhood-weighted mean of all data. Batch
// training ignores Alpha and Shuffle, and is bit-for-bit identical at
// every cfg.Parallelism setting. It is a thin adapter over
// TrainBatchView: the data is copied once into a contiguous matrix and
// trained on the flat BMU-class accumulation kernel.
func (m *Map) TrainBatch(data [][]float64, cfg TrainConfig) (TrainStats, error) {
	if err := cfg.validate(); err != nil {
		return TrainStats{}, err
	}
	if err := m.checkData(data); err != nil {
		return TrainStats{}, err
	}
	mat, err := vecmath.MatrixFromRows(data)
	if err != nil {
		return TrainStats{}, fmt.Errorf("som: %w", err)
	}
	return m.TrainBatchView(mat.View(), cfg)
}
