package som

import (
	"math"
	"strings"
	"testing"
)

func TestKernelValues(t *testing.T) {
	tests := []struct {
		name   string
		k      Kernel
		dist2  float64
		radius float64
		want   float64
		tol    float64
	}{
		{"gaussian at center", KernelGaussian, 0, 2, 1, 0},
		{"gaussian at radius", KernelGaussian, 4, 2, math.Exp(-0.5), 1e-12},
		{"bubble inside", KernelBubble, 3.9, 2, 1, 0},
		{"bubble outside", KernelBubble, 4.1, 2, 0, 0},
		{"hat at center", KernelMexicanHat, 0, 2, 1, 0},
		{"hat inhibitory region", KernelMexicanHat, 8, 2, (1 - 2.0) * math.Exp(-1), 1e-12},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.k.Value(tt.dist2, tt.radius); math.Abs(got-tt.want) > tt.tol {
				t.Errorf("Value(%v, %v) = %v, want %v", tt.dist2, tt.radius, got, tt.want)
			}
		})
	}
}

func TestKernelZeroRadius(t *testing.T) {
	for _, k := range []Kernel{KernelGaussian, KernelBubble, KernelMexicanHat} {
		if got := k.Value(0, 0); got != 1 {
			t.Errorf("%v.Value(0, 0) = %v, want 1 (BMU only)", k, got)
		}
		if got := k.Value(1, 0); got != 0 {
			t.Errorf("%v.Value(1, 0) = %v, want 0", k, got)
		}
	}
}

func TestKernelMonotoneDecreasing(t *testing.T) {
	// Gaussian and bubble must be non-increasing in distance.
	for _, k := range []Kernel{KernelGaussian, KernelBubble} {
		prev := math.Inf(1)
		for d2 := 0.0; d2 <= 25; d2 += 0.5 {
			v := k.Value(d2, 2)
			if v > prev+1e-12 {
				t.Errorf("%v not monotone at d2=%v", k, d2)
			}
			prev = v
		}
	}
}

func TestKernelStringAndValid(t *testing.T) {
	if KernelGaussian.String() != "gaussian" || KernelBubble.String() != "bubble" || KernelMexicanHat.String() != "mexican-hat" {
		t.Error("kernel names wrong")
	}
	if !strings.Contains(Kernel(42).String(), "42") {
		t.Error("unknown kernel String should embed the value")
	}
	if Kernel(0).Valid() || Kernel(42).Valid() {
		t.Error("invalid kernels reported valid")
	}
	if !KernelGaussian.Valid() || !KernelMexicanHat.Valid() {
		t.Error("valid kernels reported invalid")
	}
}

func TestDecayInterp(t *testing.T) {
	tests := []struct {
		name       string
		d          Decay
		start, end float64
		frac       float64
		want       float64
		tol        float64
	}{
		{"linear start", DecayLinear, 10, 1, 0, 10, 0},
		{"linear mid", DecayLinear, 10, 0, 0.5, 5, 0},
		{"linear end", DecayLinear, 10, 1, 1, 1, 0},
		{"exp start", DecayExponential, 8, 2, 0, 8, 0},
		{"exp mid", DecayExponential, 8, 2, 0.5, 4, 1e-12},
		{"exp end", DecayExponential, 8, 2, 1, 2, 1e-12},
		{"exp falls back to linear for zero end", DecayExponential, 8, 0, 0.5, 4, 0},
		{"clamps frac below", DecayLinear, 10, 0, -0.5, 10, 0},
		{"clamps frac above", DecayLinear, 10, 0, 1.5, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.d.Interp(tt.start, tt.end, tt.frac); math.Abs(got-tt.want) > tt.tol {
				t.Errorf("Interp(%v, %v, %v) = %v, want %v", tt.start, tt.end, tt.frac, got, tt.want)
			}
		})
	}
}

func TestDecayStringAndValid(t *testing.T) {
	if DecayLinear.String() != "linear" || DecayExponential.String() != "exponential" {
		t.Error("decay names wrong")
	}
	if !strings.Contains(Decay(9).String(), "9") {
		t.Error("unknown decay String should embed the value")
	}
	if Decay(0).Valid() {
		t.Error("Decay(0) reported valid")
	}
}
