package som

import (
	"math"
	"math/rand"
	"testing"

	"ghsom/internal/vecmath"
)

// referenceTrainBatch is the retired slice-path batch trainer: per-record
// accumulation that re-evaluates the neighborhood kernel for every
// (record, unit) pair, with a separate full MQE scan per epoch. It shares
// the current decay schedule (scheduleFrac) so the only difference from
// TrainBatchView is the accumulation algebra — the equivalence oracle for
// the BMU-class kernel.
func referenceTrainBatch(m *Map, data [][]float64, cfg TrainConfig) TrainStats {
	radius0 := cfg.effectiveRadius0(m)
	units := m.Units()
	numer := make([][]float64, units)
	for i := range numer {
		numer[i] = make([]float64, m.dim)
	}
	denom := make([]float64, units)
	stats := TrainStats{EpochMQE: make([]float64, 0, cfg.Epochs)}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		radius := cfg.Decay.Interp(radius0, cfg.RadiusEnd, cfg.scheduleFrac(epoch))
		for i := range numer {
			for d := range numer[i] {
				numer[i][d] = 0
			}
			denom[i] = 0
		}
		for _, x := range data {
			bmu, _ := m.BMU(x)
			for i := 0; i < units; i++ {
				h := cfg.Kernel.Value(m.GridDistance2(bmu, i), radius)
				if h <= 0 {
					continue
				}
				denom[i] += h
				vecmath.AXPYInPlace(numer[i], h, x)
			}
		}
		for i := 0; i < units; i++ {
			if denom[i] <= 0 {
				continue
			}
			inv := 1 / denom[i]
			w := m.Weight(i)
			for d := range w {
				w[d] = numer[i][d] * inv
			}
		}
		var sum float64
		for _, x := range data {
			_, d2 := m.BMU(x)
			sum += math.Sqrt(d2)
		}
		stats.EpochMQE = append(stats.EpochMQE, sum/float64(len(data)))
	}
	return stats
}

// flatTrainData builds a clustered data set of the given shape.
func flatTrainData(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, n)
	for i := range data {
		data[i] = make([]float64, dim)
		base := float64(i%3) * 4
		for d := range data[i] {
			data[i][d] = base + rng.NormFloat64()
		}
	}
	return data
}

// initDeterministic sets unit i's weight from data row i (wrapping), so
// two maps can start from identical states without an RNG.
func initDeterministic(m *Map, data [][]float64) {
	for i := 0; i < m.Units(); i++ {
		_ = m.SetWeight(i, data[i%len(data)])
	}
}

func batchCfg(epochs int, kernel Kernel) TrainConfig {
	return TrainConfig{
		Epochs: epochs, Alpha0: 0.5, AlphaEnd: 0.01,
		Radius0: 2, RadiusEnd: 0.5,
		Kernel: kernel, Decay: DecayLinear,
	}
}

// TestTrainBatchMatchesRetiredAccumulation pins the BMU-class
// accumulation to the retired per-record accumulation: same init, same
// schedule, weights and per-epoch MQE equal up to floating-point
// reassociation, for every kernel.
func TestTrainBatchMatchesRetiredAccumulation(t *testing.T) {
	data := flatTrainData(300, 6, 21)
	for _, kernel := range []Kernel{KernelGaussian, KernelBubble, KernelMexicanHat} {
		t.Run(kernel.String(), func(t *testing.T) {
			cfg := batchCfg(7, kernel)
			flat, _ := New(3, 4, 6)
			initDeterministic(flat, data)
			stats, err := flat.TrainBatch(data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, _ := New(3, 4, 6)
			initDeterministic(ref, data)
			refStats := referenceTrainBatch(ref, data, cfg)
			for i := 0; i < flat.Units(); i++ {
				if !vecmath.Equal(flat.Weight(i), ref.Weight(i), 1e-8) {
					t.Fatalf("unit %d diverged from retired accumulation:\nflat %v\nref  %v",
						i, flat.Weight(i), ref.Weight(i))
				}
			}
			if len(stats.EpochMQE) != len(refStats.EpochMQE) {
				t.Fatalf("EpochMQE length %d, reference %d", len(stats.EpochMQE), len(refStats.EpochMQE))
			}
			for e := range stats.EpochMQE {
				if math.Abs(stats.EpochMQE[e]-refStats.EpochMQE[e]) > 1e-8 {
					t.Fatalf("epoch %d MQE %v, reference %v", e, stats.EpochMQE[e], refStats.EpochMQE[e])
				}
			}
		})
	}
}

// TestTrainBatchBitIdenticalAcrossParallelism is the determinism gate of
// the flat batch kernel: every Parallelism setting must produce exactly
// the same bits, weights and stats alike.
func TestTrainBatchBitIdenticalAcrossParallelism(t *testing.T) {
	data := flatTrainData(500, 8, 33)
	run := func(p int) (*Map, TrainStats) {
		m, _ := New(4, 4, 8)
		initDeterministic(m, data)
		cfg := batchCfg(6, KernelGaussian)
		cfg.Parallelism = p
		stats, err := m.TrainBatch(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m, stats
	}
	ref, refStats := run(1)
	for _, p := range []int{2, 3, 8, 0} {
		m, stats := run(p)
		for i := range ref.flat {
			if math.Float64bits(m.flat[i]) != math.Float64bits(ref.flat[i]) {
				t.Fatalf("Parallelism=%d weight value %d differs from serial: %v vs %v",
					p, i, m.flat[i], ref.flat[i])
			}
		}
		for e := range refStats.EpochMQE {
			if math.Float64bits(stats.EpochMQE[e]) != math.Float64bits(refStats.EpochMQE[e]) {
				t.Fatalf("Parallelism=%d epoch %d MQE differs from serial", p, e)
			}
		}
	}
}

// TestTrainViewSubsetMatchesGatheredRows proves the zero-copy subset view
// contract: training on a Subset view of a big matrix is bit-identical to
// training on a matrix built from the gathered rows, for both rules.
func TestTrainViewSubsetMatchesGatheredRows(t *testing.T) {
	data := flatTrainData(400, 5, 44)
	mat, err := vecmath.MatrixFromRows(data)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 0, 150)
	for i := 0; i < 400; i += 3 {
		idx = append(idx, i)
	}
	gathered := make([][]float64, len(idx))
	for k, i := range idx {
		gathered[k] = data[i]
	}
	gmat, err := vecmath.MatrixFromRows(gathered)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []bool{true, false} {
		cfg := batchCfg(5, KernelGaussian)
		train := func(m *Map, v vecmath.View) error {
			if batch {
				_, err := m.TrainBatchView(v, cfg)
				return err
			}
			c := cfg
			c.Shuffle = true
			c.Rng = rand.New(rand.NewSource(7))
			_, err := m.TrainOnlineView(v, c)
			return err
		}
		sub, _ := New(3, 3, 5)
		initDeterministic(sub, gathered)
		if err := train(sub, mat.Subset(idx)); err != nil {
			t.Fatal(err)
		}
		full, _ := New(3, 3, 5)
		initDeterministic(full, gathered)
		if err := train(full, gmat.View()); err != nil {
			t.Fatal(err)
		}
		for i := range sub.flat {
			if math.Float64bits(sub.flat[i]) != math.Float64bits(full.flat[i]) {
				t.Fatalf("batch=%v: subset-view training differs from gathered-rows training at value %d", batch, i)
			}
		}
	}
}

// TestSkipEpochMQE checks the stats knob: identical weights, empty stats.
func TestSkipEpochMQE(t *testing.T) {
	data := flatTrainData(200, 4, 55)
	run := func(skip bool) (*Map, TrainStats) {
		m, _ := New(3, 3, 4)
		initDeterministic(m, data)
		cfg := batchCfg(4, KernelGaussian)
		cfg.SkipEpochMQE = skip
		stats, err := m.TrainBatch(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m, stats
	}
	withStats, s1 := run(false)
	without, s2 := run(true)
	if len(s1.EpochMQE) != 4 {
		t.Errorf("EpochMQE has %d entries, want 4", len(s1.EpochMQE))
	}
	if len(s2.EpochMQE) != 0 {
		t.Errorf("SkipEpochMQE stats have %d entries, want 0", len(s2.EpochMQE))
	}
	for i := range withStats.flat {
		if withStats.flat[i] != without.flat[i] {
			t.Fatal("SkipEpochMQE changed training results")
		}
	}
}

// TestScheduleFracReachesEndpoints pins the decay fix: the final epoch
// trains exactly at the schedule's end values, and a single-epoch run
// stays at the start values.
func TestScheduleFracReachesEndpoints(t *testing.T) {
	cfg := batchCfg(5, KernelGaussian)
	if got := cfg.scheduleFrac(0); got != 0 {
		t.Errorf("scheduleFrac(0) = %v, want 0", got)
	}
	if got := cfg.scheduleFrac(4); got != 1 {
		t.Errorf("scheduleFrac(last) = %v, want 1", got)
	}
	if got := cfg.Decay.Interp(cfg.Radius0, cfg.RadiusEnd, cfg.scheduleFrac(4)); got != cfg.RadiusEnd {
		t.Errorf("final-epoch radius = %v, want RadiusEnd %v", got, cfg.RadiusEnd)
	}
	one := batchCfg(1, KernelGaussian)
	if got := one.scheduleFrac(0); got != 0 {
		t.Errorf("single-epoch scheduleFrac = %v, want 0", got)
	}
}

// TestTrainOnlineViewEndpointAlpha spot-checks the online table: with one
// unit and per-epoch parameters, each epoch applies exactly alpha(e) per
// record, so the weight trajectory is a closed form of the schedule.
func TestTrainOnlineViewEndpointAlpha(t *testing.T) {
	m, _ := New(1, 1, 1)
	_ = m.SetWeight(0, []float64{0})
	mat, _ := vecmath.MatrixFromRows([][]float64{{1}})
	cfg := TrainConfig{
		Epochs: 2, Alpha0: 0.5, AlphaEnd: 0.25,
		Radius0: 1, RadiusEnd: 1,
		Kernel: KernelGaussian, Decay: DecayLinear,
		SkipEpochMQE: true,
	}
	if _, err := m.TrainOnlineView(mat.View(), cfg); err != nil {
		t.Fatal(err)
	}
	// Epoch 0 at alpha=0.5: w = 0.5. Epoch 1 at alpha=AlphaEnd=0.25:
	// w = 0.5 + 0.25*(1-0.5) = 0.625. The pre-fix schedule never reached
	// AlphaEnd, so this value is the observable proof of the fix.
	if got := m.Weight(0)[0]; math.Abs(got-0.625) > 1e-15 {
		t.Fatalf("weight after schedule = %v, want 0.625", got)
	}
}

// BenchmarkTrainBatchView measures the flat batch kernel: records·epochs
// per second and allocations per epoch on a KDD-dimensioned data set.
func BenchmarkTrainBatchView(b *testing.B) {
	const n, dim, epochs = 2000, 41, 10
	data := flatTrainData(n, dim, 77)
	mat, err := vecmath.MatrixFromRows(data)
	if err != nil {
		b.Fatal(err)
	}
	m, _ := New(5, 5, dim)
	initDeterministic(m, data)
	cfg := batchCfg(epochs, KernelGaussian)
	cfg.Parallelism = 1
	cfg.SkipEpochMQE = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TrainBatchView(mat.View(), cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n*epochs*b.N)/b.Elapsed().Seconds(), "rec·epochs/sec")
}

// BenchmarkTrainOnlineView measures the flat online kernel under the same
// shape for comparison with the batch rule.
func BenchmarkTrainOnlineView(b *testing.B) {
	const n, dim, epochs = 2000, 41, 10
	data := flatTrainData(n, dim, 78)
	mat, err := vecmath.MatrixFromRows(data)
	if err != nil {
		b.Fatal(err)
	}
	m, _ := New(5, 5, dim)
	initDeterministic(m, data)
	cfg := batchCfg(epochs, KernelGaussian)
	cfg.Parallelism = 1
	cfg.SkipEpochMQE = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TrainOnlineView(mat.View(), cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n*epochs*b.N)/b.Elapsed().Seconds(), "rec·epochs/sec")
}
