package som

import (
	"math"

	"ghsom/internal/parallel"
	"ghsom/internal/vecmath"
)

// Batch quality measures run their BMU searches on the map's configured
// Parallelism (SetParallelism; 0 = GOMAXPROCS). Every reduction over the
// per-record results happens serially in data order, so all results are
// bit-for-bit identical for every worker count.

// bmuAll computes the BMU index and squared distance for every data vector
// into the provided slices, in parallel.
func (m *Map) bmuAll(data [][]float64, bmus []int, d2s []float64) {
	parallel.ForEach(m.parallelism, len(data), func(i int) {
		bmus[i], d2s[i] = m.BMU(data[i])
	})
}

// Assign returns the BMU index for every data vector. Callers must ensure
// dimensions match (use checkData-validating entry points otherwise).
func (m *Map) Assign(data [][]float64) []int {
	out := make([]int, len(data))
	parallel.ForEach(m.parallelism, len(data), func(i int) {
		out[i], _ = m.BMU(data[i])
	})
	return out
}

// MQE returns the map's mean quantization error over data: the mean
// Euclidean distance from each vector to its BMU. Returns NaN for empty
// data.
func (m *Map) MQE(data [][]float64) float64 { return m.mqeAt(data, m.parallelism) }

// mqeAt is MQE with an explicit worker bound, so TrainBatch can honor its
// own TrainConfig.Parallelism rather than the map-level knob.
func (m *Map) mqeAt(data [][]float64, p int) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	d2s := make([]float64, len(data))
	parallel.ForEach(p, len(data), func(i int) {
		_, d2s[i] = m.BMU(data[i])
	})
	var sum float64
	for _, d2 := range d2s {
		sum += math.Sqrt(d2)
	}
	return sum / float64(len(data))
}

// UnitErrors returns, per unit, the summed quantization error of the data
// vectors mapped to it and the number of vectors mapped. Units with no data
// have zero error and zero count.
func (m *Map) UnitErrors(data [][]float64) (sumQE []float64, counts []int) {
	sumQE = make([]float64, m.Units())
	counts = make([]int, m.Units())
	bmus := make([]int, len(data))
	d2s := make([]float64, len(data))
	m.bmuAll(data, bmus, d2s)
	for i := range data {
		sumQE[bmus[i]] += math.Sqrt(d2s[i])
		counts[bmus[i]]++
	}
	return sumQE, counts
}

// UnitMeanErrors returns the per-unit mean quantization error (sum/count)
// with zero for empty units, plus the counts.
func (m *Map) UnitMeanErrors(data [][]float64) (meanQE []float64, counts []int) {
	sum, counts := m.UnitErrors(data)
	meanQE = sum
	for i := range meanQE {
		if counts[i] > 0 {
			meanQE[i] /= float64(counts[i])
		}
	}
	return meanQE, counts
}

// MeanUnitMQE returns the GHSOM growth criterion: the mean of the per-unit
// mean quantization errors, taken over units that have at least one mapped
// vector. Returns NaN when no unit has data.
func (m *Map) MeanUnitMQE(data [][]float64) float64 {
	meanQE, counts := m.UnitMeanErrors(data)
	var sum float64
	var n int
	for i, c := range counts {
		if c > 0 {
			sum += meanQE[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// TopographicError returns the fraction of data vectors whose first and
// second BMUs are not grid neighbors — the standard measure of topology
// preservation. Returns 0 for maps with fewer than two units, NaN for empty
// data.
func (m *Map) TopographicError(data [][]float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	if m.Units() < 2 {
		return 0
	}
	// An integer count is order-independent, so the chunked map-reduce is
	// exact at every worker count.
	n := parallel.MapReduce(m.parallelism, len(data), 0,
		func(lo, hi int) int {
			bad := 0
			for i := lo; i < hi; i++ {
				first, second := m.BMU2(data[i])
				if !m.AreGridNeighbors(first, second) {
					bad++
				}
			}
			return bad
		},
		func(acc, part int) int { return acc + part })
	return float64(n) / float64(len(data))
}

// UMatrix returns the unified distance matrix: for each unit, the mean
// weight-space distance to its direct grid neighbors. High values mark
// cluster boundaries. The result is indexed [row][col].
func (m *Map) UMatrix() [][]float64 {
	out := make([][]float64, m.rows)
	var nbuf [4]int
	for r := 0; r < m.rows; r++ {
		out[r] = make([]float64, m.cols)
		for c := 0; c < m.cols; c++ {
			i := m.Index(r, c)
			neighbors := m.Neighbors(i, nbuf[:0])
			if len(neighbors) == 0 {
				continue
			}
			var sum float64
			for _, j := range neighbors {
				sum += vecmath.Distance(m.Weight(i), m.Weight(j))
			}
			out[r][c] = sum / float64(len(neighbors))
		}
	}
	return out
}

// ComponentPlane returns the d-th weight component of every unit as a
// [row][col] matrix — the standard per-feature view of a trained map.
func (m *Map) ComponentPlane(d int) [][]float64 {
	out := make([][]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		out[r] = make([]float64, m.cols)
		for c := 0; c < m.cols; c++ {
			out[r][c] = m.WeightAt(r, c)[d]
		}
	}
	return out
}
