package som

import (
	"math"

	"ghsom/internal/vecmath"
)

// Assign returns the BMU index for every data vector. Callers must ensure
// dimensions match (use checkData-validating entry points otherwise).
func (m *Map) Assign(data [][]float64) []int {
	out := make([]int, len(data))
	for i, x := range data {
		out[i], _ = m.BMU(x)
	}
	return out
}

// MQE returns the map's mean quantization error over data: the mean
// Euclidean distance from each vector to its BMU. Returns NaN for empty
// data.
func (m *Map) MQE(data [][]float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range data {
		_, d2 := m.BMU(x)
		sum += math.Sqrt(d2)
	}
	return sum / float64(len(data))
}

// UnitErrors returns, per unit, the summed quantization error of the data
// vectors mapped to it and the number of vectors mapped. Units with no data
// have zero error and zero count.
func (m *Map) UnitErrors(data [][]float64) (sumQE []float64, counts []int) {
	sumQE = make([]float64, m.Units())
	counts = make([]int, m.Units())
	for _, x := range data {
		bmu, d2 := m.BMU(x)
		sumQE[bmu] += math.Sqrt(d2)
		counts[bmu]++
	}
	return sumQE, counts
}

// UnitMeanErrors returns the per-unit mean quantization error (sum/count)
// with zero for empty units, plus the counts.
func (m *Map) UnitMeanErrors(data [][]float64) (meanQE []float64, counts []int) {
	sum, counts := m.UnitErrors(data)
	meanQE = sum
	for i := range meanQE {
		if counts[i] > 0 {
			meanQE[i] /= float64(counts[i])
		}
	}
	return meanQE, counts
}

// MeanUnitMQE returns the GHSOM growth criterion: the mean of the per-unit
// mean quantization errors, taken over units that have at least one mapped
// vector. Returns NaN when no unit has data.
func (m *Map) MeanUnitMQE(data [][]float64) float64 {
	meanQE, counts := m.UnitMeanErrors(data)
	var sum float64
	var n int
	for i, c := range counts {
		if c > 0 {
			sum += meanQE[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// TopographicError returns the fraction of data vectors whose first and
// second BMUs are not grid neighbors — the standard measure of topology
// preservation. Returns 0 for maps with fewer than two units, NaN for empty
// data.
func (m *Map) TopographicError(data [][]float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	if m.Units() < 2 {
		return 0
	}
	var bad int
	for _, x := range data {
		first, second := m.BMU2(x)
		if !m.AreGridNeighbors(first, second) {
			bad++
		}
	}
	return float64(bad) / float64(len(data))
}

// UMatrix returns the unified distance matrix: for each unit, the mean
// weight-space distance to its direct grid neighbors. High values mark
// cluster boundaries. The result is indexed [row][col].
func (m *Map) UMatrix() [][]float64 {
	out := make([][]float64, m.rows)
	var nbuf [4]int
	for r := 0; r < m.rows; r++ {
		out[r] = make([]float64, m.cols)
		for c := 0; c < m.cols; c++ {
			i := m.Index(r, c)
			neighbors := m.Neighbors(i, nbuf[:0])
			if len(neighbors) == 0 {
				continue
			}
			var sum float64
			for _, j := range neighbors {
				sum += vecmath.Distance(m.weights[i], m.weights[j])
			}
			out[r][c] = sum / float64(len(neighbors))
		}
	}
	return out
}

// ComponentPlane returns the d-th weight component of every unit as a
// [row][col] matrix — the standard per-feature view of a trained map.
func (m *Map) ComponentPlane(d int) [][]float64 {
	out := make([][]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		out[r] = make([]float64, m.cols)
		for c := 0; c < m.cols; c++ {
			out[r][c] = m.weights[m.Index(r, c)][d]
		}
	}
	return out
}
