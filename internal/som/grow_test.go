package som

import (
	"errors"
	"math/rand"
	"testing"

	"ghsom/internal/vecmath"
)

// numberedMap builds a rows x cols map of dim 1 whose unit i holds weight
// [i], making position tracking after insertion easy.
func numberedMap(t *testing.T, rows, cols int) *Map {
	t.Helper()
	m, err := New(rows, cols, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Units(); i++ {
		_ = m.SetWeight(i, []float64{float64(i)})
	}
	return m
}

func TestInsertRowBetween(t *testing.T) {
	m := numberedMap(t, 2, 2) // weights: [0 1; 2 3]
	if err := m.InsertRowBetween(0); err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape after insert = %dx%d", m.Rows(), m.Cols())
	}
	// New middle row should be the average of rows 0 and 2.
	wantMiddle := [][]float64{{1}, {2}} // (0+2)/2, (1+3)/2
	for c := 0; c < 2; c++ {
		if !vecmath.Equal(m.WeightAt(1, c), wantMiddle[c], 1e-12) {
			t.Errorf("inserted unit (1,%d) = %v, want %v", c, m.WeightAt(1, c), wantMiddle[c])
		}
	}
	// Old rows preserved.
	if m.WeightAt(0, 0)[0] != 0 || m.WeightAt(0, 1)[0] != 1 {
		t.Error("top row corrupted")
	}
	if m.WeightAt(2, 0)[0] != 2 || m.WeightAt(2, 1)[0] != 3 {
		t.Error("bottom row corrupted")
	}
}

func TestInsertColBetween(t *testing.T) {
	m := numberedMap(t, 2, 2) // [0 1; 2 3]
	if err := m.InsertColBetween(0); err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape after insert = %dx%d", m.Rows(), m.Cols())
	}
	if got := m.WeightAt(0, 1)[0]; got != 0.5 {
		t.Errorf("inserted (0,1) = %v, want 0.5", got)
	}
	if got := m.WeightAt(1, 1)[0]; got != 2.5 {
		t.Errorf("inserted (1,1) = %v, want 2.5", got)
	}
	if m.WeightAt(0, 0)[0] != 0 || m.WeightAt(0, 2)[0] != 1 {
		t.Error("first row columns corrupted")
	}
	if m.WeightAt(1, 0)[0] != 2 || m.WeightAt(1, 2)[0] != 3 {
		t.Error("second row columns corrupted")
	}
}

func TestInsertBounds(t *testing.T) {
	m := numberedMap(t, 2, 2)
	if err := m.InsertRowBetween(-1); !errors.Is(err, ErrBadShape) {
		t.Errorf("InsertRowBetween(-1) err = %v", err)
	}
	if err := m.InsertRowBetween(1); !errors.Is(err, ErrBadShape) {
		t.Errorf("InsertRowBetween(last) err = %v", err)
	}
	if err := m.InsertColBetween(1); !errors.Is(err, ErrBadShape) {
		t.Errorf("InsertColBetween(last) err = %v", err)
	}
}

func TestGrowBetweenVertical(t *testing.T) {
	m := numberedMap(t, 3, 2)
	e := m.Index(1, 0)
	d := m.Index(2, 0)
	if err := m.GrowBetween(e, d); err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 4 {
		t.Errorf("rows = %d, want 4", m.Rows())
	}
	// The inserted row sits between original rows 1 and 2: weights avg of
	// 2 and 4 => 3 at column 0.
	if got := m.WeightAt(2, 0)[0]; got != 3 {
		t.Errorf("inserted weight = %v, want 3", got)
	}
}

func TestGrowBetweenHorizontal(t *testing.T) {
	m := numberedMap(t, 2, 3)
	e := m.Index(0, 2)
	d := m.Index(0, 1)
	if err := m.GrowBetween(e, d); err != nil {
		t.Fatal(err)
	}
	if m.Cols() != 4 {
		t.Errorf("cols = %d, want 4", m.Cols())
	}
	if got := m.WeightAt(0, 2)[0]; got != 1.5 {
		t.Errorf("inserted weight = %v, want 1.5", got)
	}
}

func TestGrowBetweenRejectsNonNeighbors(t *testing.T) {
	m := numberedMap(t, 3, 3)
	if err := m.GrowBetween(m.Index(0, 0), m.Index(2, 2)); !errors.Is(err, ErrBadShape) {
		t.Errorf("GrowBetween diagonal err = %v", err)
	}
	if err := m.GrowBetween(0, 0); !errors.Is(err, ErrBadShape) {
		t.Errorf("GrowBetween self err = %v", err)
	}
	if err := m.GrowBetween(-1, 0); !errors.Is(err, ErrBadShape) {
		t.Errorf("GrowBetween out-of-range err = %v", err)
	}
}

func TestPropInsertPreservesExistingWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 50; trial++ {
		rows := 2 + rng.Intn(4)
		cols := 2 + rng.Intn(4)
		dim := 1 + rng.Intn(4)
		m, _ := New(rows, cols, dim)
		for i := 0; i < m.Units(); i++ {
			w := make([]float64, dim)
			for d := range w {
				w[d] = rng.NormFloat64()
			}
			_ = m.SetWeight(i, w)
		}
		before := m.Clone()
		r := rng.Intn(rows - 1)
		if err := m.InsertRowBetween(r); err != nil {
			t.Fatal(err)
		}
		// All original units must still exist with identical weights.
		for origRow := 0; origRow < rows; origRow++ {
			newRow := origRow
			if origRow > r {
				newRow = origRow + 1
			}
			for c := 0; c < cols; c++ {
				if !vecmath.Equal(before.WeightAt(origRow, c), m.WeightAt(newRow, c), 0) {
					t.Fatalf("trial %d: original unit (%d,%d) changed after row insert", trial, origRow, c)
				}
			}
		}
	}
}

func TestPropInsertedWeightsAreMidpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 50; trial++ {
		rows := 2 + rng.Intn(3)
		cols := 2 + rng.Intn(3)
		m, _ := New(rows, cols, 2)
		for i := 0; i < m.Units(); i++ {
			_ = m.SetWeight(i, []float64{rng.NormFloat64(), rng.NormFloat64()})
		}
		c := rng.Intn(cols - 1)
		before := m.Clone()
		if err := m.InsertColBetween(c); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rows; r++ {
			left := before.WeightAt(r, c)
			right := before.WeightAt(r, c+1)
			mid, err := vecmath.Lerp(left, right, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if !vecmath.Equal(m.WeightAt(r, c+1), mid, 1e-12) {
				t.Fatalf("trial %d: inserted column not midpoint at row %d", trial, r)
			}
		}
	}
}
