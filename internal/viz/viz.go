// Package viz renders the textual figures of the reproduction: ASCII
// heatmaps of U-matrices and component planes, aligned tables for the
// experiment reports, bar charts, and sparklines for convergence series.
// Everything prints to plain text so results live in terminals, logs, and
// EXPERIMENTS.md alike.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// shades orders the heatmap glyphs from low to high intensity.
var shades = []rune(" .:-=+*#%@")

// Heatmap renders a matrix as an ASCII intensity grid, one glyph per
// cell, normalized to the matrix's own min/max. Rows render top to
// bottom. An empty matrix renders as "".
func Heatmap(m [][]float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range m {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	span := hi - lo
	var b strings.Builder
	for _, row := range m {
		for _, v := range row {
			idx := 0
			if span > 0 {
				idx = int((v - lo) / span * float64(len(shades)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteRune(shades[idx])
			b.WriteRune(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders rows as an aligned text table with a header rule. Cells
// are left-aligned; short rows are padded with empty cells.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
			if i < len(widths)-1 {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// BarChart renders horizontal bars scaled to width characters, one line
// per (label, value) pair. Negative values render as empty bars.
func BarChart(labels []string, values []float64, width int) string {
	if width < 1 {
		width = 40
	}
	maxLabel := 0
	maxVal := 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if i < len(values) && values[i] > maxVal {
			maxVal = values[i]
		}
	}
	var b strings.Builder
	for i, l := range labels {
		var v float64
		if i < len(values) {
			v = values[i]
		}
		n := 0
		if maxVal > 0 && v > 0 {
			n = int(v / maxVal * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%s %g\n", maxLabel, l, strings.Repeat("█", n), v)
	}
	return b.String()
}

// sparkGlyphs orders the sparkline glyphs from low to high.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a numeric series as a one-line unicode sparkline,
// normalized to its own range. Non-finite values render as spaces.
func Sparkline(values []float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteRune(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkGlyphs)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// Pct formats a fraction as a fixed-width percentage ("93.41%"); NaN
// renders as "n/a".
func Pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", v*100)
}

// F formats a float with 4 significant decimals; NaN renders as "n/a".
func F(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.4f", v)
}

// LabelGrid renders a rows x cols grid of short cell labels (e.g. the
// majority class of each SOM unit), padded to equal width. Missing cells
// render as dots.
func LabelGrid(rows, cols int, labels map[int]string) string {
	width := 1
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			l, ok := labels[r*cols+c]
			if !ok {
				l = "."
			}
			fmt.Fprintf(&b, "%-*s ", width, l)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
