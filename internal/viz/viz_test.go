package viz

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmap(t *testing.T) {
	m := [][]float64{{0, 1}, {0.5, 0.5}}
	out := Heatmap(m)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("heatmap has %d lines", len(lines))
	}
	// Min cell renders as the lightest glyph, max as the darkest.
	if !strings.HasPrefix(lines[0], "  ") { // space + separator space
		t.Errorf("min cell not lightest: %q", lines[0])
	}
	if !strings.Contains(lines[0], "@") {
		t.Errorf("max cell not darkest: %q", lines[0])
	}
}

func TestHeatmapDegenerate(t *testing.T) {
	if Heatmap(nil) != "" {
		t.Error("empty heatmap should be empty string")
	}
	out := Heatmap([][]float64{{3, 3}, {3, 3}})
	if strings.Contains(out, "@") {
		t.Error("constant heatmap should render uniformly light")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"a-very-long-name", "22"},
		{"short"}, // short row: padded
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + rule + 3 rows
		t.Fatalf("table has %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Error("header missing")
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("rule missing")
	}
	// All rows align: same width.
	if len(lines[2]) > len(lines[3])+3 {
		t.Error("rows not aligned")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"dos", "probe"}, []float64{10, 5}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("chart has %d lines", len(lines))
	}
	dosBars := strings.Count(lines[0], "█")
	probeBars := strings.Count(lines[1], "█")
	if dosBars != 10 || probeBars != 5 {
		t.Errorf("bars = %d/%d, want 10/5", dosBars, probeBars)
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	out := BarChart([]string{"neg"}, []float64{-5}, 10)
	if strings.Count(out, "█") != 0 {
		t.Error("negative value should render empty bar")
	}
	out = BarChart([]string{"z"}, []float64{0}, 0) // width auto-corrects
	if !strings.Contains(out, "z") {
		t.Error("zero-width chart missing label")
	}
}

func TestSparkline(t *testing.T) {
	out := Sparkline([]float64{0, 1, 2, 3})
	runes := []rune(out)
	if len(runes) != 4 {
		t.Fatalf("sparkline length = %d", len(runes))
	}
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline endpoints = %q", out)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	withNaN := Sparkline([]float64{1, math.NaN(), 2})
	if []rune(withNaN)[1] != ' ' {
		t.Errorf("NaN should render as space: %q", withNaN)
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline length wrong: %q", flat)
	}
}

func TestPctAndF(t *testing.T) {
	if Pct(0.9341) != "93.41%" {
		t.Errorf("Pct = %q", Pct(0.9341))
	}
	if Pct(math.NaN()) != "n/a" {
		t.Error("Pct(NaN) should be n/a")
	}
	if F(1.23456) != "1.2346" {
		t.Errorf("F = %q", F(1.23456))
	}
	if F(math.NaN()) != "n/a" {
		t.Error("F(NaN) should be n/a")
	}
}

func TestLabelGrid(t *testing.T) {
	out := LabelGrid(2, 2, map[int]string{0: "dos", 3: "normal"})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("grid has %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "dos") {
		t.Error("label (0,0) missing")
	}
	if !strings.Contains(lines[1], "normal") {
		t.Error("label (1,1) missing")
	}
	if !strings.Contains(lines[0], ".") {
		t.Error("missing cells should render as dots")
	}
}
