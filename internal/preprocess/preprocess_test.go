package preprocess

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinMaxScalerBasic(t *testing.T) {
	var s MinMaxScaler
	data := [][]float64{{0, 10}, {5, 20}, {10, 30}}
	if err := s.Fit(data); err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 2 {
		t.Errorf("Dim = %d", s.Dim())
	}
	got, err := s.Transform([]float64{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Errorf("Transform = %v, want [0.5 0.5]", got)
	}
	lo, _ := s.Transform([]float64{0, 10})
	hi, _ := s.Transform([]float64{10, 30})
	if lo[0] != 0 || lo[1] != 0 || hi[0] != 1 || hi[1] != 1 {
		t.Errorf("endpoints = %v, %v", lo, hi)
	}
}

func TestMinMaxScalerClampsOutliers(t *testing.T) {
	var s MinMaxScaler
	if err := s.Fit([][]float64{{0}, {10}}); err != nil {
		t.Fatal(err)
	}
	out, _ := s.Transform([]float64{-5})
	if out[0] != 0 {
		t.Errorf("below-range transform = %v, want 0", out[0])
	}
	out, _ = s.Transform([]float64{100})
	if out[0] != 1 {
		t.Errorf("above-range transform = %v, want 1", out[0])
	}
}

func TestMinMaxScalerConstantDim(t *testing.T) {
	var s MinMaxScaler
	if err := s.Fit([][]float64{{7, 1}, {7, 2}}); err != nil {
		t.Fatal(err)
	}
	out, _ := s.Transform([]float64{7, 1.5})
	if out[0] != 0 {
		t.Errorf("constant dim transform = %v, want 0", out[0])
	}
}

func TestScalerErrors(t *testing.T) {
	var mm MinMaxScaler
	if _, err := mm.Transform([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted Transform err = %v", err)
	}
	if err := mm.Fit(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("Fit(nil) err = %v", err)
	}
	if err := mm.Fit([][]float64{{1}, {1, 2}}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("ragged Fit err = %v", err)
	}
	if err := mm.Fit([][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := mm.Transform([]float64{1}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("wrong-dim Transform err = %v", err)
	}

	var z ZScoreScaler
	if _, err := z.Transform([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted z Transform err = %v", err)
	}
	if err := z.Fit(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("z Fit(nil) err = %v", err)
	}
	if err := z.Fit([][]float64{{1}, {1, 2}}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("z ragged Fit err = %v", err)
	}
}

func TestZScoreScaler(t *testing.T) {
	var s ZScoreScaler
	data := [][]float64{{2}, {4}, {4}, {4}, {5}, {5}, {7}, {9}} // mean 5, sd 2
	if err := s.Fit(data); err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform([]float64{9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-2) > 1e-12 {
		t.Errorf("Transform(9) = %v, want 2", out[0])
	}
	out, _ = s.Transform([]float64{5})
	if math.Abs(out[0]) > 1e-12 {
		t.Errorf("Transform(mean) = %v, want 0", out[0])
	}
}

func TestZScoreConstantDim(t *testing.T) {
	var s ZScoreScaler
	if err := s.Fit([][]float64{{3, 1}, {3, 2}}); err != nil {
		t.Fatal(err)
	}
	out, _ := s.Transform([]float64{3, 1})
	if out[0] != 0 {
		t.Errorf("constant dim z-transform = %v, want 0", out[0])
	}
}

func TestPropZScoreStandardizesTrainingData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		data := make([][]float64, n)
		for i := range data {
			data[i] = []float64{rng.NormFloat64()*5 + 10}
		}
		var s ZScoreScaler
		scaled, err := FitTransform(&s, data)
		if err != nil {
			return false
		}
		var mean, varsum float64
		for _, r := range scaled {
			mean += r[0]
		}
		mean /= float64(n)
		for _, r := range scaled {
			varsum += (r[0] - mean) * (r[0] - mean)
		}
		variance := varsum / float64(n)
		return math.Abs(mean) < 1e-9 && math.Abs(variance-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropMinMaxInUnitRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		dim := 1 + rng.Intn(5)
		data := make([][]float64, n)
		for i := range data {
			data[i] = make([]float64, dim)
			for d := range data[i] {
				data[i][d] = rng.NormFloat64() * 100
			}
		}
		var s MinMaxScaler
		scaled, err := FitTransform(&s, data)
		if err != nil {
			return false
		}
		for _, r := range scaled {
			for _, v := range r {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransformAllErrorPropagation(t *testing.T) {
	var s MinMaxScaler
	if err := s.Fit([][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := TransformAll(&s, [][]float64{{1, 2}, {1}}); err == nil {
		t.Error("TransformAll accepted ragged data")
	}
}

// TestInPlaceAndBatchMatchTransform verifies TransformInPlace and
// TransformBatch are byte-identical to Transform for both scalers.
func TestInPlaceAndBatchMatchTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	train := make([][]float64, 80)
	for i := range train {
		train[i] = []float64{rng.NormFloat64() * 5, rng.Float64() * 100, 3} // last dim constant
	}
	for name, s := range map[string]Scaler{
		"minmax": &MinMaxScaler{},
		"zscore": &ZScoreScaler{},
	} {
		if err := s.Fit(train); err != nil {
			t.Fatal(err)
		}
		n, d := 50, 3
		flat := make([]float64, n*d)
		want := make([][]float64, n)
		for i := 0; i < n; i++ {
			row := []float64{rng.NormFloat64() * 20, rng.Float64() * 300, float64(i)}
			copy(flat[i*d:(i+1)*d], row)
			w, err := s.Transform(row)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = w

			inPlace := append([]float64(nil), row...)
			if err := s.TransformInPlace(inPlace); err != nil {
				t.Fatal(err)
			}
			for j := range w {
				if inPlace[j] != w[j] {
					t.Fatalf("%s row %d dim %d: in-place %v, copy %v", name, i, j, inPlace[j], w[j])
				}
			}
		}
		if err := s.TransformBatch(flat, d); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				if flat[i*d+j] != want[i][j] {
					t.Fatalf("%s row %d dim %d: batch %v, copy %v", name, i, j, flat[i*d+j], want[i][j])
				}
			}
		}
	}
}

func TestInPlaceAndBatchValidation(t *testing.T) {
	for name, s := range map[string]Scaler{
		"minmax": &MinMaxScaler{},
		"zscore": &ZScoreScaler{},
	} {
		if err := s.TransformInPlace([]float64{1}); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s unfitted in-place err = %v", name, err)
		}
		if err := s.TransformBatch([]float64{1}, 1); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s unfitted batch err = %v", name, err)
		}
		if err := s.Fit([][]float64{{1, 2}, {3, 4}}); err != nil {
			t.Fatal(err)
		}
		if err := s.TransformInPlace([]float64{1}); !errors.Is(err, ErrDimMismatch) {
			t.Errorf("%s dim mismatch in-place err = %v", name, err)
		}
		if err := s.TransformBatch(make([]float64, 4), 3); !errors.Is(err, ErrDimMismatch) {
			t.Errorf("%s wrong batch dim err = %v", name, err)
		}
		if err := s.TransformBatch(make([]float64, 5), 2); !errors.Is(err, ErrDimMismatch) {
			t.Errorf("%s ragged batch err = %v", name, err)
		}
	}
}

func TestStratifiedSplit(t *testing.T) {
	keys := make([]string, 100)
	for i := range keys {
		if i < 80 {
			keys[i] = "a"
		} else {
			keys[i] = "b"
		}
	}
	rng := rand.New(rand.NewSource(1))
	sp, err := StratifiedSplit(keys, 0.75, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Train)+len(sp.Test) != 100 {
		t.Fatalf("split loses rows: %d + %d", len(sp.Train), len(sp.Test))
	}
	countKey := func(idx []int, k string) int {
		var n int
		for _, i := range idx {
			if keys[i] == k {
				n++
			}
		}
		return n
	}
	if got := countKey(sp.Train, "a"); got != 60 {
		t.Errorf("train a count = %d, want 60", got)
	}
	if got := countKey(sp.Train, "b"); got != 15 {
		t.Errorf("train b count = %d, want 15", got)
	}
	// No index may appear twice.
	seen := make(map[int]bool)
	for _, i := range append(append([]int{}, sp.Train...), sp.Test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
}

func TestStratifiedSplitSingletonStratum(t *testing.T) {
	keys := []string{"a", "a", "a", "rare"}
	rng := rand.New(rand.NewSource(2))
	sp, err := StratifiedSplit(keys, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The singleton goes to train.
	found := false
	for _, i := range sp.Train {
		if keys[i] == "rare" {
			found = true
		}
	}
	if !found {
		t.Error("singleton stratum not in train set")
	}
}

func TestStratifiedSplitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := StratifiedSplit(nil, 0.5, rng); !errors.Is(err, ErrNoData) {
		t.Errorf("empty keys err = %v", err)
	}
	if _, err := StratifiedSplit([]string{"a"}, 0, rng); err == nil {
		t.Error("trainFrac 0 accepted")
	}
	if _, err := StratifiedSplit([]string{"a"}, 1, rng); err == nil {
		t.Error("trainFrac 1 accepted")
	}
}

func TestGather(t *testing.T) {
	data := [][]float64{{0}, {1}, {2}, {3}}
	got := Gather(data, []int{3, 1})
	if len(got) != 2 || got[0][0] != 3 || got[1][0] != 1 {
		t.Errorf("Gather = %v", got)
	}
	s := GatherStrings([]string{"x", "y", "z"}, []int{2, 0})
	if s[0] != "z" || s[1] != "x" {
		t.Errorf("GatherStrings = %v", s)
	}
}

func TestCapPerKey(t *testing.T) {
	keys := []string{"a", "a", "a", "a", "b", "b", "c"}
	rng := rand.New(rand.NewSource(4))
	idx := CapPerKey(keys, 2, rng)
	counts := make(map[string]int)
	for _, i := range idx {
		counts[keys[i]]++
	}
	if counts["a"] != 2 || counts["b"] != 2 || counts["c"] != 1 {
		t.Errorf("CapPerKey counts = %v", counts)
	}
	if CapPerKey(keys, 0, rng) != nil {
		t.Error("CapPerKey with cap 0 should be nil")
	}
}
