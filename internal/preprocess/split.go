package preprocess

import (
	"fmt"
	"math/rand"
)

// Split holds index sets for a train/test partition of a dataset.
type Split struct {
	// Train and Test are row indices into the original dataset.
	Train, Test []int
}

// StratifiedSplit partitions indices 0..n-1 into train and test sets,
// preserving the per-key proportions given by keys (len(keys) == n). Each
// stratum contributes ~trainFrac of its rows to the train set; strata with
// a single row go to the train set. The split is deterministic for a given
// rng state.
func StratifiedSplit(keys []string, trainFrac float64, rng *rand.Rand) (Split, error) {
	if len(keys) == 0 {
		return Split{}, ErrNoData
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return Split{}, fmt.Errorf("preprocess: trainFrac %v outside (0, 1)", trainFrac)
	}
	byKey := make(map[string][]int)
	order := make([]string, 0) // first-appearance order for determinism
	for i, k := range keys {
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], i)
	}
	var sp Split
	for _, k := range order {
		idx := byKey[k]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nTrain := int(float64(len(idx))*trainFrac + 0.5)
		if nTrain == 0 {
			nTrain = 1
		}
		if nTrain > len(idx) {
			nTrain = len(idx)
		}
		sp.Train = append(sp.Train, idx[:nTrain]...)
		sp.Test = append(sp.Test, idx[nTrain:]...)
	}
	return sp, nil
}

// Gather returns the rows of data selected by idx, sharing row storage.
func Gather(data [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = data[j]
	}
	return out
}

// GatherStrings returns the elements of s selected by idx.
func GatherStrings(s []string, idx []int) []string {
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}

// CapPerKey limits the number of indices per key to at most cap,
// preserving relative order within each key. It is used to downsample the
// dominant DoS classes so low-volume classes are not drowned during
// training (the standard KDD-99 rebalancing step).
func CapPerKey(keys []string, maxPer int, rng *rand.Rand) []int {
	if maxPer <= 0 {
		return nil
	}
	byKey := make(map[string][]int)
	order := make([]string, 0)
	for i, k := range keys {
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], i)
	}
	var out []int
	for _, k := range order {
		idx := byKey[k]
		if len(idx) > maxPer {
			rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
			idx = idx[:maxPer]
		}
		out = append(out, idx...)
	}
	return out
}
