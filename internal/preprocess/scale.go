// Package preprocess provides the feature scaling and data-splitting
// utilities of the detection pipeline: min-max and z-score scalers fit on
// training data and applied to all splits, plus stratified train/test
// splitting and per-class sampling.
package preprocess

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the package.
var (
	// ErrNoData is returned when an operation requires at least one row.
	ErrNoData = errors.New("preprocess: no data")
	// ErrDimMismatch is returned when a vector does not match the fitted
	// dimension.
	ErrDimMismatch = errors.New("preprocess: dimension mismatch")
	// ErrNotFitted is returned when transform is called before fit.
	ErrNotFitted = errors.New("preprocess: scaler not fitted")
)

// Scaler transforms feature vectors using statistics learned from a
// training set.
type Scaler interface {
	// Fit learns the scaling statistics from data.
	Fit(data [][]float64) error
	// Transform returns a scaled copy of x.
	Transform(x []float64) ([]float64, error)
	// TransformInPlace scales x in place without allocating. On error
	// (not fitted, dimension mismatch) x is left unmodified.
	TransformInPlace(x []float64) error
	// TransformBatch scales every d-wide row of the flat row-major matrix
	// in place. len(flat) must be a multiple of d and d must equal the
	// fitted dimension.
	TransformBatch(flat []float64, d int) error
	// Dim returns the fitted dimension, or 0 if not fitted.
	Dim() int
}

// Compile-time interface checks.
var (
	_ Scaler = (*MinMaxScaler)(nil)
	_ Scaler = (*ZScoreScaler)(nil)
)

// MinMaxScaler maps each dimension linearly to [0, 1] using the min and
// max observed at fit time. Constant dimensions map to 0. Out-of-range
// values at transform time are clamped, which keeps test-set outliers from
// exploding the SOM distance metric.
type MinMaxScaler struct {
	min, span []float64
}

// Fit learns per-dimension minima and ranges.
func (s *MinMaxScaler) Fit(data [][]float64) error {
	if len(data) == 0 {
		return ErrNoData
	}
	dim := len(data[0])
	min := make([]float64, dim)
	max := make([]float64, dim)
	for d := 0; d < dim; d++ {
		min[d], max[d] = math.Inf(1), math.Inf(-1)
	}
	for i, row := range data {
		if len(row) != dim {
			return fmt.Errorf("row %d has dim %d, want %d: %w", i, len(row), dim, ErrDimMismatch)
		}
		for d, v := range row {
			if v < min[d] {
				min[d] = v
			}
			if v > max[d] {
				max[d] = v
			}
		}
	}
	span := make([]float64, dim)
	for d := range span {
		span[d] = max[d] - min[d]
	}
	s.min, s.span = min, span
	return nil
}

// Transform scales x into [0, 1] per dimension, clamping outliers.
func (s *MinMaxScaler) Transform(x []float64) ([]float64, error) {
	if s.min == nil {
		return nil, ErrNotFitted
	}
	if len(x) != len(s.min) {
		return nil, fmt.Errorf("vector dim %d, fitted %d: %w", len(x), len(s.min), ErrDimMismatch)
	}
	out := make([]float64, len(x))
	copy(out, x)
	s.transformRow(out)
	return out, nil
}

// TransformInPlace scales x into [0, 1] per dimension in place, clamping
// outliers, without allocating.
func (s *MinMaxScaler) TransformInPlace(x []float64) error {
	if s.min == nil {
		return ErrNotFitted
	}
	if len(x) != len(s.min) {
		return fmt.Errorf("vector dim %d, fitted %d: %w", len(x), len(s.min), ErrDimMismatch)
	}
	s.transformRow(x)
	return nil
}

// transformRow is the validated min-max kernel: len(x) == len(s.min).
func (s *MinMaxScaler) transformRow(x []float64) {
	for d, v := range x {
		if s.span[d] <= 0 {
			x[d] = 0
			continue
		}
		u := (v - s.min[d]) / s.span[d]
		if u < 0 {
			u = 0
		} else if u > 1 {
			u = 1
		}
		x[d] = u
	}
}

// TransformBatch scales every d-wide row of the flat row-major matrix in
// place. The batch is processed serially; parallelize across row ranges at
// a higher layer when needed.
func (s *MinMaxScaler) TransformBatch(flat []float64, d int) error {
	if err := checkFlatBatch(len(s.min), flat, d); err != nil {
		return err
	}
	for off := 0; off < len(flat); off += d {
		s.transformRow(flat[off : off+d])
	}
	return nil
}

// checkFlatBatch validates a flat row-major batch of d-wide rows against
// the fitted dimension dim.
func checkFlatBatch(dim int, flat []float64, d int) error {
	if dim == 0 {
		return ErrNotFitted
	}
	if d != dim {
		return fmt.Errorf("batch dim %d, fitted %d: %w", d, dim, ErrDimMismatch)
	}
	if len(flat)%d != 0 {
		return fmt.Errorf("flat batch length %d not a multiple of dim %d: %w", len(flat), d, ErrDimMismatch)
	}
	return nil
}

// Dim returns the fitted dimension.
func (s *MinMaxScaler) Dim() int { return len(s.min) }

// State exports the fitted minima and spans for serialization. The
// returned slices are copies.
func (s *MinMaxScaler) State() (min, span []float64) {
	min = make([]float64, len(s.min))
	span = make([]float64, len(s.span))
	copy(min, s.min)
	copy(span, s.span)
	return min, span
}

// NewMinMaxScalerFromState rebuilds a scaler from exported state.
func NewMinMaxScalerFromState(min, span []float64) (*MinMaxScaler, error) {
	if len(min) == 0 || len(min) != len(span) {
		return nil, fmt.Errorf("preprocess: state dims %d/%d: %w", len(min), len(span), ErrDimMismatch)
	}
	s := &MinMaxScaler{min: make([]float64, len(min)), span: make([]float64, len(span))}
	copy(s.min, min)
	copy(s.span, span)
	return s, nil
}

// ZScoreScaler standardizes each dimension to zero mean and unit variance
// using statistics from fit time. Constant dimensions map to 0.
type ZScoreScaler struct {
	mean, invStd []float64
}

// Fit learns per-dimension means and standard deviations.
func (s *ZScoreScaler) Fit(data [][]float64) error {
	if len(data) == 0 {
		return ErrNoData
	}
	dim := len(data[0])
	mean := make([]float64, dim)
	for i, row := range data {
		if len(row) != dim {
			return fmt.Errorf("row %d has dim %d, want %d: %w", i, len(row), dim, ErrDimMismatch)
		}
		for d, v := range row {
			mean[d] += v
		}
	}
	n := float64(len(data))
	for d := range mean {
		mean[d] /= n
	}
	variance := make([]float64, dim)
	for _, row := range data {
		for d, v := range row {
			dv := v - mean[d]
			variance[d] += dv * dv
		}
	}
	invStd := make([]float64, dim)
	for d := range variance {
		sd := math.Sqrt(variance[d] / n)
		if sd > 0 {
			invStd[d] = 1 / sd
		}
	}
	s.mean, s.invStd = mean, invStd
	return nil
}

// Transform standardizes x.
func (s *ZScoreScaler) Transform(x []float64) ([]float64, error) {
	if s.mean == nil {
		return nil, ErrNotFitted
	}
	if len(x) != len(s.mean) {
		return nil, fmt.Errorf("vector dim %d, fitted %d: %w", len(x), len(s.mean), ErrDimMismatch)
	}
	out := make([]float64, len(x))
	copy(out, x)
	s.transformRow(out)
	return out, nil
}

// TransformInPlace standardizes x in place without allocating.
func (s *ZScoreScaler) TransformInPlace(x []float64) error {
	if s.mean == nil {
		return ErrNotFitted
	}
	if len(x) != len(s.mean) {
		return fmt.Errorf("vector dim %d, fitted %d: %w", len(x), len(s.mean), ErrDimMismatch)
	}
	s.transformRow(x)
	return nil
}

// transformRow is the validated z-score kernel: len(x) == len(s.mean).
func (s *ZScoreScaler) transformRow(x []float64) {
	for d, v := range x {
		x[d] = (v - s.mean[d]) * s.invStd[d]
	}
}

// TransformBatch standardizes every d-wide row of the flat row-major
// matrix in place.
func (s *ZScoreScaler) TransformBatch(flat []float64, d int) error {
	if err := checkFlatBatch(len(s.mean), flat, d); err != nil {
		return err
	}
	for off := 0; off < len(flat); off += d {
		s.transformRow(flat[off : off+d])
	}
	return nil
}

// Dim returns the fitted dimension.
func (s *ZScoreScaler) Dim() int { return len(s.mean) }

// TransformAll applies a fitted scaler to every row.
func TransformAll(s Scaler, data [][]float64) ([][]float64, error) {
	out := make([][]float64, len(data))
	for i, row := range data {
		t, err := s.Transform(row)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// FitTransform fits the scaler on data and returns the transformed rows.
func FitTransform(s Scaler, data [][]float64) ([][]float64, error) {
	if err := s.Fit(data); err != nil {
		return nil, err
	}
	return TransformAll(s, data)
}
