package eval

import (
	"strings"
	"testing"

	"ghsom/internal/anomaly"
	"ghsom/internal/core"
	"ghsom/internal/trafficgen"
)

// fastModel shrinks the GHSOM budget so the suite stays quick.
func fastModel(seed int64) core.Config {
	c := DefaultModelConfig(seed)
	c.EpochsPerGrowth = 3
	c.FineTuneEpochs = 3
	c.MaxGrowIters = 6
	c.MaxDepth = 3
	return c
}

// sharedEncoded builds one small encoded dataset reused across tests.
func sharedEncoded(t *testing.T) *Encoded {
	t.Helper()
	if testing.Short() {
		t.Skip("integration experiment; skipped with -short")
	}
	ds, err := MakeDataset(trafficgen.Small(1), 0.7, 42)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Encode(ds)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestMakeDatasetAndEncode(t *testing.T) {
	ds, err := MakeDataset(trafficgen.Small(1), 0.7, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) == 0 || len(ds.Test) == 0 {
		t.Fatalf("split sizes: %d/%d", len(ds.Train), len(ds.Test))
	}
	frac := float64(len(ds.Train)) / float64(len(ds.Train)+len(ds.Test))
	if frac < 0.65 || frac > 0.75 {
		t.Errorf("train fraction = %v, want ~0.7", frac)
	}
	enc, err := Encode(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.TrainX) != len(ds.Train) || len(enc.TestX) != len(ds.Test) {
		t.Error("encoded sizes mismatch")
	}
	if len(enc.TrainLabels) != len(enc.TrainX) {
		t.Error("label count mismatch")
	}
	// All vectors share the encoder dimension and live in [0,1].
	dim := enc.Encoder.Dim()
	for _, x := range enc.TrainX[:50] {
		if len(x) != dim {
			t.Fatal("train vector dim mismatch")
		}
		for _, v := range x {
			if v < 0 || v > 1 {
				t.Fatal("train vector outside [0,1]")
			}
		}
	}
}

func TestComposition(t *testing.T) {
	ds, err := MakeDataset(trafficgen.Small(2), 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := Composition(ds)
	if len(rows) < 10 {
		t.Fatalf("composition has %d rows", len(rows))
	}
	// normal first (category order), with the largest train count.
	if rows[0].Label != "normal" {
		t.Errorf("first row = %q, want normal", rows[0].Label)
	}
	var train, test int
	for _, r := range rows {
		train += r.Train
		test += r.Test
	}
	if train != len(ds.Train) || test != len(ds.Test) {
		t.Errorf("composition totals %d/%d, want %d/%d", train, test, len(ds.Train), len(ds.Test))
	}
	s := FormatComposition(rows)
	if !strings.Contains(s, "TOTAL") || !strings.Contains(s, "normal") {
		t.Error("FormatComposition malformed")
	}
}

func TestRunGHSOMQuality(t *testing.T) {
	enc := sharedEncoded(t)
	res, model, det, err := RunGHSOM(enc, fastModel(1), anomaly.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || det == nil {
		t.Fatal("missing model or detector")
	}
	if res.Accuracy < 0.8 {
		t.Errorf("GHSOM test accuracy = %v, want >= 0.8", res.Accuracy)
	}
	if res.DetectionRate < 0.8 {
		t.Errorf("GHSOM detection rate = %v", res.DetectionRate)
	}
	if res.FPR > 0.2 {
		t.Errorf("GHSOM FPR = %v", res.FPR)
	}
	if res.AUC < 0.85 {
		t.Errorf("GHSOM AUC = %v", res.AUC)
	}
	if res.Cells < 4 {
		t.Errorf("GHSOM cells = %d", res.Cells)
	}
	if res.ClassifyPerSec <= 0 {
		t.Error("no throughput recorded")
	}
}

func TestComparisonShape(t *testing.T) {
	// The key qualitative claim (T2): GHSOM beats the naive volume
	// threshold and is at least competitive with the flat SOM and k-means
	// on AUC.
	enc := sharedEncoded(t)
	results, err := Comparison(enc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("comparison has %d rows", len(results))
	}
	byName := map[string]DetectorResult{}
	for _, r := range results {
		byName[strings.SplitN(r.Name, "(", 2)[0]] = r
	}
	g := byName["ghsom"]
	vt := byName["volume-threshold"]
	if g.AUC <= vt.AUC {
		t.Errorf("GHSOM AUC %v <= volume threshold AUC %v", g.AUC, vt.AUC)
	}
	if g.Accuracy <= vt.Accuracy {
		t.Errorf("GHSOM accuracy %v <= volume threshold accuracy %v", g.Accuracy, vt.Accuracy)
	}
	out := FormatComparison(results)
	if !strings.Contains(out, "ghsom") || !strings.Contains(out, "kmeans-144") || !strings.Contains(out, "agglo-144") {
		t.Errorf("FormatComparison malformed:\n%s", out)
	}
}

func TestRunAggloQuality(t *testing.T) {
	enc := sharedEncoded(t)
	res, err := RunAgglo(enc, 64, 1500, 1, anomaly.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 64 {
		t.Errorf("cells = %d", res.Cells)
	}
	if res.Accuracy < 0.85 {
		t.Errorf("agglo accuracy = %v", res.Accuracy)
	}
}

func TestPerClass(t *testing.T) {
	enc := sharedEncoded(t)
	_, _, det, err := RunGHSOM(enc, fastModel(1), anomaly.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := PerClass(enc, det)
	if res.Confusion.Total() != len(enc.TestX) {
		t.Errorf("confusion total %d, want %d", res.Confusion.Total(), len(enc.TestX))
	}
	// DoS must be detected nearly perfectly on the synthetic mix; this is
	// the canonical KDD shape.
	if dr := res.Recall["dos"]; dr < 0.9 {
		t.Errorf("DoS recall = %v, want >= 0.9", dr)
	}
	if _, ok := res.Recall["probe"]; !ok {
		t.Error("probe recall missing")
	}
	out := FormatPerClass(res)
	if !strings.Contains(out, "dos") || !strings.Contains(out, "confusion") {
		t.Errorf("FormatPerClass malformed:\n%s", out)
	}
}

func TestTauSweepStructureShape(t *testing.T) {
	// T4's qualitative claim: smaller tau2 => at least as many maps/units
	// (deeper hierarchies), smaller tau1 => at least as many units on the
	// root map.
	enc := sharedEncoded(t)
	rows, err := TauSweep(enc, []float64{0.8, 0.4}, []float64{0.1, 0.02}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("sweep has %d rows", len(rows))
	}
	get := func(t1, t2 float64) TauSweepRow {
		for _, r := range rows {
			if r.Tau1 == t1 && r.Tau2 == t2 {
				return r
			}
		}
		t.Fatalf("row (%v, %v) missing", t1, t2)
		return TauSweepRow{}
	}
	// Depth grows (or stays) as tau2 shrinks at fixed tau1.
	if get(0.8, 0.02).Maps < get(0.8, 0.1).Maps {
		t.Errorf("smaller tau2 produced fewer maps: %d vs %d",
			get(0.8, 0.02).Maps, get(0.8, 0.1).Maps)
	}
	// Units grow (or stay) as tau1 shrinks at fixed tau2.
	if get(0.4, 0.1).Units < get(0.8, 0.1).Units {
		t.Errorf("smaller tau1 produced fewer units: %d vs %d",
			get(0.4, 0.1).Units, get(0.8, 0.1).Units)
	}
	out := FormatTauSweep(rows)
	if !strings.Contains(out, "tau1") {
		t.Error("FormatTauSweep malformed")
	}
}

func TestConvergenceTrace(t *testing.T) {
	enc := sharedEncoded(t)
	trace, model, err := ConvergenceTrace(enc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if trace == nil || len(trace.Events) == 0 {
		t.Fatal("empty trace")
	}
	events := trace.ForNode(model.Root().ID)
	if len(events) < 1 {
		t.Fatal("no root events")
	}
	// F1 claim: the final mean-unit MQE does not exceed the initial one.
	first, last := events[0], events[len(events)-1]
	if last.MeanUnitMQE > first.MeanUnitMQE*1.05 {
		t.Errorf("MQE rose over growth: %v -> %v", first.MeanUnitMQE, last.MeanUnitMQE)
	}
	// F3 claim: units are non-decreasing.
	prev := 0
	for _, e := range events {
		if e.Rows*e.Cols < prev {
			t.Error("unit count decreased during growth")
		}
		prev = e.Rows * e.Cols
	}
	out := FormatTrace(trace, model.Root().ID)
	if !strings.Contains(out, "F1") || !strings.Contains(out, "F3") {
		t.Error("FormatTrace malformed")
	}
}

func TestROCCurves(t *testing.T) {
	enc := sharedEncoded(t)
	results, err := ROCCurves(enc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d curves", len(results))
	}
	for _, r := range results {
		if r.AUC < 0.7 {
			t.Errorf("%s AUC = %v, implausibly low", r.Name, r.AUC)
		}
		if len(r.Curve) < 3 {
			t.Errorf("%s curve has %d points", r.Name, len(r.Curve))
		}
	}
	out := FormatROC(results)
	if !strings.Contains(out, "auc") || !strings.Contains(out, "tpr@1%fpr") {
		t.Error("FormatROC malformed")
	}
}

func TestScalability(t *testing.T) {
	enc := sharedEncoded(t)
	rows, err := Scalability(enc, []int{500, 1500}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].N != 500 || rows[1].N != 1500 {
		t.Errorf("sizes = %d/%d", rows[0].N, rows[1].N)
	}
	for _, r := range rows {
		if r.TrainSeconds <= 0 || r.ClassifyPerSec <= 0 || r.Units < 4 {
			t.Errorf("implausible row %+v", r)
		}
	}
	out := FormatScalability(rows)
	if !strings.Contains(out, "train-n") {
		t.Error("FormatScalability malformed")
	}
}

func TestNoveltyHoldout(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment; skipped with -short")
	}
	res, err := NoveltyHoldout(5, 1, "smurf", "satan")
	if err != nil {
		t.Fatal(err)
	}
	if res.SeenDR < 0.7 {
		t.Errorf("seen detection rate = %v", res.SeenDR)
	}
	// The point of A1: unseen attacks are still substantially detected.
	if res.UnseenDR < 0.5 {
		t.Errorf("unseen detection rate = %v, novelty path ineffective", res.UnseenDR)
	}
	if res.FPR > 0.25 {
		t.Errorf("holdout FPR = %v", res.FPR)
	}
	out := FormatHoldout(res)
	if !strings.Contains(out, "UNSEEN") {
		t.Error("FormatHoldout malformed")
	}
}

func TestNoveltyCorrectedTestSet(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment; skipped with -short")
	}
	res, err := NoveltyCorrectedTestSet(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Held) != 9 {
		t.Errorf("held %d labels, want 9", len(res.Held))
	}
	if res.SeenDR < 0.7 {
		t.Errorf("seen detection rate = %v", res.SeenDR)
	}
	// Test-set-only attacks must be substantially detected despite never
	// appearing in training (the corrected-test-set claim).
	if res.UnseenDR < 0.4 {
		t.Errorf("novel-attack detection rate = %v", res.UnseenDR)
	}
	if res.FPR > 0.3 {
		t.Errorf("FPR = %v", res.FPR)
	}
}

func TestRoutingAblation(t *testing.T) {
	enc := sharedEncoded(t)
	results, err := RoutingAblation(enc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	trained, all := results[0], results[1]
	if trained.Name != "ghsom-route-trained" || all.Name != "ghsom-route-all-units" {
		t.Errorf("names = %s/%s", trained.Name, all.Name)
	}
	// The claim behind RouteTrained: effective-codebook routing does not
	// do worse than naive routing (on most seeds it does strictly
	// better because records no longer strand on data-less units).
	if trained.Accuracy < all.Accuracy-0.02 {
		t.Errorf("route-trained accuracy %v well below all-units %v", trained.Accuracy, all.Accuracy)
	}
}

func TestMarginSweep(t *testing.T) {
	enc := sharedEncoded(t)
	rows, err := MarginSweep(enc, []float64{1.0, 2.0, 3.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// FPR must be non-increasing in the margin (wider thresholds flag
	// strictly fewer records).
	for i := 1; i < len(rows); i++ {
		if rows[i].FPR > rows[i-1].FPR+1e-9 {
			t.Errorf("FPR rose with margin: %v -> %v", rows[i-1].FPR, rows[i].FPR)
		}
		if rows[i].DetectionRate > rows[i-1].DetectionRate+1e-9 {
			t.Errorf("DR rose with margin: %v -> %v", rows[i-1].DetectionRate, rows[i].DetectionRate)
		}
	}
	out := FormatMarginSweep(rows)
	if !strings.Contains(out, "margin") || !strings.Contains(out, "mcc") {
		t.Error("FormatMarginSweep malformed")
	}
}

func TestBatchVsOnline(t *testing.T) {
	enc := sharedEncoded(t)
	results, err := BatchVsOnline(enc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Name != "ghsom-online" || results[1].Name != "ghsom-batch" {
		t.Errorf("names = %s/%s", results[0].Name, results[1].Name)
	}
	for _, r := range results {
		if r.Accuracy < 0.75 {
			t.Errorf("%s accuracy = %v", r.Name, r.Accuracy)
		}
	}
}
