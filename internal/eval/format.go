package eval

import (
	"fmt"
	"sort"
	"strings"

	"ghsom/internal/core"
	"ghsom/internal/viz"
)

// FormatComposition renders the T1 dataset table.
func FormatComposition(rows []CompositionRow) string {
	var trainTotal, testTotal int
	out := make([][]string, 0, len(rows)+1)
	for _, r := range rows {
		trainTotal += r.Train
		testTotal += r.Test
		out = append(out, []string{r.Label, r.Category, fmt.Sprint(r.Train), fmt.Sprint(r.Test)})
	}
	out = append(out, []string{"TOTAL", "", fmt.Sprint(trainTotal), fmt.Sprint(testTotal)})
	return viz.Table([]string{"label", "category", "train", "test"}, out)
}

// FormatComparison renders the T2 (and A2) detector-comparison table.
func FormatComparison(results []DetectorResult) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.Name,
			viz.Pct(r.Accuracy),
			viz.Pct(r.DetectionRate),
			viz.Pct(r.FPR),
			viz.Pct(r.Precision),
			viz.F(r.F1),
			viz.F(r.AUC),
			fmt.Sprint(r.Cells),
			fmt.Sprintf("%.2fs", r.TrainSeconds),
			fmt.Sprintf("%.0f/s", r.ClassifyPerSec),
		})
	}
	return viz.Table(
		[]string{"detector", "accuracy", "detect-rate", "fpr", "precision", "f1", "auc", "cells", "train", "classify"},
		rows)
}

// FormatPerClass renders the T3 per-category report.
func FormatPerClass(res PerClassResult) string {
	var b strings.Builder
	b.WriteString("Per-category attack detection (recall of binary verdict):\n")
	cats := make([]string, 0, len(res.Recall))
	for c := range res.Recall {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	rows := make([][]string, 0, len(cats))
	for _, c := range cats {
		rows = append(rows, []string{c, viz.Pct(res.Recall[c])})
	}
	b.WriteString(viz.Table([]string{"category", "recall"}, rows))
	b.WriteString("\nCategory confusion matrix:\n")
	b.WriteString(res.Confusion.String())
	b.WriteString("\nOverall: " + res.Binary.String() + "\n")
	return b.String()
}

// FormatTauSweep renders the T4 table.
func FormatTauSweep(rows []TauSweepRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.2f", r.Tau1),
			fmt.Sprintf("%.3f", r.Tau2),
			fmt.Sprint(r.Maps),
			fmt.Sprint(r.Units),
			fmt.Sprint(r.Leaves),
			fmt.Sprint(r.Depth),
			viz.Pct(r.Accuracy),
			viz.Pct(r.DetectionRate),
			viz.Pct(r.FPR),
			fmt.Sprintf("%.2fs", r.TrainSeconds),
		})
	}
	return viz.Table(
		[]string{"tau1", "tau2", "maps", "units", "leaves", "depth", "accuracy", "detect-rate", "fpr", "train"},
		out)
}

// FormatTrace renders the F1 convergence series and F3 growth series of
// the root map as sparklines plus a per-iteration table.
func FormatTrace(trace *core.GrowthTrace, rootID int) string {
	events := trace.ForNode(rootID)
	var b strings.Builder
	var mqes, units []float64
	rows := make([][]string, 0, len(events))
	for _, e := range events {
		mqes = append(mqes, e.MeanUnitMQE)
		units = append(units, float64(e.Rows*e.Cols))
		rows = append(rows, []string{
			fmt.Sprint(e.Iteration),
			fmt.Sprintf("%dx%d", e.Rows, e.Cols),
			viz.F(e.MeanUnitMQE),
			viz.F(e.MQE),
		})
	}
	fmt.Fprintf(&b, "F1 root-map mean-unit-MQE per growth iteration: %s\n", viz.Sparkline(mqes))
	fmt.Fprintf(&b, "F3 root-map units per growth iteration:         %s\n", viz.Sparkline(units))
	b.WriteString(viz.Table([]string{"iter", "shape", "mean-unit-mqe", "mqe"}, rows))
	return b.String()
}

// FormatROC renders the F2 curves: AUC per detector plus fixed-FPR
// operating points.
func FormatROC(results []ROCResult) string {
	var b strings.Builder
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{r.Name, viz.F(r.AUC)})
	}
	b.WriteString(viz.Table([]string{"detector", "auc"}, rows))
	b.WriteString("\nDetection rate at fixed false-positive budgets:\n")
	budgets := []float64{0.01, 0.02, 0.05, 0.10}
	oprows := make([][]string, 0, len(results))
	for _, r := range results {
		row := []string{r.Name}
		for _, fpr := range budgets {
			p := operatingPoint(r, fpr)
			row = append(row, viz.Pct(p))
		}
		oprows = append(oprows, row)
	}
	b.WriteString(viz.Table([]string{"detector", "tpr@1%fpr", "tpr@2%fpr", "tpr@5%fpr", "tpr@10%fpr"}, oprows))
	return b.String()
}

func operatingPoint(r ROCResult, maxFPR float64) float64 {
	best := 0.0
	for _, p := range r.Curve {
		if p.FPR <= maxFPR && p.TPR > best {
			best = p.TPR
		}
	}
	return best
}

// FormatScalability renders the F4 table.
func FormatScalability(rows []ScaleRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.N),
			fmt.Sprintf("%.2fs", r.TrainSeconds),
			fmt.Sprint(r.Units),
			fmt.Sprintf("%.0f/s", r.ClassifyPerSec),
		})
	}
	return viz.Table([]string{"train-n", "train-time", "units", "classify"}, out)
}

// FormatMarginSweep renders the A4 table.
func FormatMarginSweep(rows []MarginRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.2f", r.Margin),
			viz.Pct(r.DetectionRate),
			viz.Pct(r.FPR),
			viz.Pct(r.Accuracy),
			viz.F(r.MCC),
		})
	}
	return viz.Table([]string{"margin", "detect-rate", "fpr", "accuracy", "mcc"}, out)
}

// FormatHoldout renders the A1 report.
func FormatHoldout(res HoldoutResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Held-out attacks: %s\n", strings.Join(res.Held, ", "))
	b.WriteString(viz.Table(
		[]string{"metric", "value"},
		[][]string{
			{"seen-attack detection rate", viz.Pct(res.SeenDR)},
			{"UNSEEN-attack detection rate", viz.Pct(res.UnseenDR)},
			{"unseen flagged via novelty path", viz.Pct(res.UnseenNovelRate)},
			{"false positive rate", viz.Pct(res.FPR)},
		}))
	return b.String()
}
