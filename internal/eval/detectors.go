package eval

import (
	"fmt"
	"math/rand"
	"time"

	"ghsom/internal/anomaly"
	"ghsom/internal/baseline"
	"ghsom/internal/core"
	"ghsom/internal/metrics"
	"ghsom/internal/parallel"
	"ghsom/internal/preprocess"
	"ghsom/internal/som"
)

// DetectorResult is one row of the headline comparison table (T2): one
// detector evaluated on the shared test split.
type DetectorResult struct {
	// Name identifies the detector ("ghsom", "som-12x12", "kmeans-144",
	// "volume-threshold").
	Name string
	// Accuracy, DetectionRate, FPR, Precision, F1 are the binary
	// (attack vs normal) measures on the test split.
	Accuracy, DetectionRate, FPR, Precision, F1 float64
	// AUC is the area under the score ROC on the test split.
	AUC float64
	// Cells is the detector's codebook size (leaf units / centroids).
	Cells int
	// TrainSeconds is wall-clock training time.
	TrainSeconds float64
	// ClassifyPerSec is test-set classification throughput.
	ClassifyPerSec float64
}

// trainCap bounds per-label training records fed to the quantizer, the
// standard KDD rebalancing step (detector fitting still sees everything).
const trainCap = 3000

// capIdxForModel returns the rebalanced training subset for codebook
// training as row indices into the encoded training matrix — the form
// the GHSOM's zero-copy TrainMatrix path consumes directly.
func capIdxForModel(enc *Encoded, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	return preprocess.CapPerKey(enc.TrainLabels, trainCap, rng)
}

// capForModel returns the rebalanced training subset as gathered rows,
// for the baseline trainers that still take [][]float64.
func capForModel(enc *Encoded, seed int64) [][]float64 {
	return preprocess.Gather(enc.TrainX, capIdxForModel(enc, seed))
}

// evalFoldGrain is the chunk grain of evaluate's classification fold:
// constant, so the chunk layout depends on the test-set size only and
// the tallied outcome is identical at every worker count (the confusion
// counts are exact integers regardless of fold order).
const evalFoldGrain = 1024

// evaluate runs the fitted detector over the test split and fills the
// quality and throughput fields. Records classify concurrently on the
// detector's configured Parallelism: scores and truth are per-slot
// writes and the confusion tally folds per-chunk partials on the
// deterministic chunked scheduler.
func evaluate(name string, det *anomaly.Detector, enc *Encoded, trainSeconds float64) (DetectorResult, error) {
	scores := make([]float64, len(enc.TestX))
	truth := make([]bool, len(enc.TestX))
	start := time.Now()
	outcome := parallel.MapReduceChunk(det.Parallelism(), len(enc.TestX), evalFoldGrain,
		metrics.BinaryOutcome{},
		func(lo, hi int) metrics.BinaryOutcome {
			var part metrics.BinaryOutcome
			for i := lo; i < hi; i++ {
				p := det.Classify(enc.TestX[i])
				truth[i] = enc.TestLabels[i] != "normal"
				part.AddBinary(truth[i], p.Attack)
				scores[i] = p.Score
			}
			return part
		},
		func(acc, part metrics.BinaryOutcome) metrics.BinaryOutcome {
			acc.TP += part.TP
			acc.FP += part.FP
			acc.TN += part.TN
			acc.FN += part.FN
			return acc
		})
	elapsed := time.Since(start).Seconds()
	curve, err := metrics.ROC(scores, truth)
	if err != nil {
		return DetectorResult{}, fmt.Errorf("eval: roc for %s: %w", name, err)
	}
	res := DetectorResult{
		Name:          name,
		Accuracy:      outcome.Accuracy(),
		DetectionRate: outcome.DetectionRate(),
		FPR:           outcome.FalsePositiveRate(),
		Precision:     outcome.Precision(),
		F1:            outcome.F1(),
		AUC:           metrics.AUC(curve),
		Cells:         det.Cells(),
		TrainSeconds:  trainSeconds,
	}
	if elapsed > 0 {
		res.ClassifyPerSec = float64(len(enc.TestX)) / elapsed
	}
	return res, nil
}

// RunGHSOM trains a GHSOM detector and evaluates it. The model trains on
// the encoded flat matrix through the zero-copy subset view of the
// label-capped rows.
func RunGHSOM(enc *Encoded, mcfg core.Config, dcfg anomaly.Config) (DetectorResult, *core.GHSOM, *anomaly.Detector, error) {
	modelIdx := capIdxForModel(enc, mcfg.Seed)
	start := time.Now()
	model, err := core.TrainMatrix(enc.TrainMat, modelIdx, mcfg)
	if err != nil {
		return DetectorResult{}, nil, nil, fmt.Errorf("eval: train ghsom: %w", err)
	}
	det, err := anomaly.Fit(anomaly.GHSOMQuantizer{Model: model}, enc.TrainX, enc.TrainLabels, dcfg)
	if err != nil {
		return DetectorResult{}, nil, nil, fmt.Errorf("eval: fit ghsom detector: %w", err)
	}
	trainSecs := time.Since(start).Seconds()
	res, err := evaluate(fmt.Sprintf("ghsom(t1=%.2g,t2=%.2g)", mcfg.Tau1, mcfg.Tau2), det, enc, trainSecs)
	if err != nil {
		return DetectorResult{}, nil, nil, err
	}
	// For the GHSOM the structural codebook size is the leaf-unit count.
	res.Cells = model.Stats().LeafUnits
	return res, model, det, nil
}

// RunSOM trains a flat fixed-size SOM detector and evaluates it.
func RunSOM(enc *Encoded, rows, cols, epochs int, seed int64, dcfg anomaly.Config) (DetectorResult, error) {
	modelData := capForModel(enc, seed)
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	m, err := som.New(rows, cols, len(enc.TrainX[0]))
	if err != nil {
		return DetectorResult{}, fmt.Errorf("eval: som: %w", err)
	}
	if err := m.InitSample(modelData, rng); err != nil {
		return DetectorResult{}, fmt.Errorf("eval: som init: %w", err)
	}
	tc := som.DefaultTrainConfig(rng)
	tc.Epochs = epochs
	if _, err := m.TrainOnline(modelData, tc); err != nil {
		return DetectorResult{}, fmt.Errorf("eval: som train: %w", err)
	}
	counts := make([]int, m.Units())
	for _, b := range m.Assign(modelData) {
		counts[b]++
	}
	det, err := anomaly.Fit(anomaly.SOMQuantizer{Map: m, UnitCounts: counts}, enc.TrainX, enc.TrainLabels, dcfg)
	if err != nil {
		return DetectorResult{}, fmt.Errorf("eval: fit som detector: %w", err)
	}
	trainSecs := time.Since(start).Seconds()
	res, err := evaluate(fmt.Sprintf("som-%dx%d", rows, cols), det, enc, trainSecs)
	if err != nil {
		return DetectorResult{}, err
	}
	res.Cells = m.Units()
	return res, nil
}

// somDetector trains a flat SOM and returns its fitted detector (used by
// experiments that need the detector itself rather than a result row).
func somDetector(enc *Encoded, rows, cols, epochs int, seed int64, dcfg anomaly.Config) (*anomaly.Detector, error) {
	modelData := capForModel(enc, seed)
	rng := rand.New(rand.NewSource(seed))
	m, err := som.New(rows, cols, len(enc.TrainX[0]))
	if err != nil {
		return nil, fmt.Errorf("eval: som: %w", err)
	}
	if err := m.InitSample(modelData, rng); err != nil {
		return nil, fmt.Errorf("eval: som init: %w", err)
	}
	tc := som.DefaultTrainConfig(rng)
	tc.Epochs = epochs
	if _, err := m.TrainOnline(modelData, tc); err != nil {
		return nil, fmt.Errorf("eval: som train: %w", err)
	}
	counts := make([]int, m.Units())
	for _, b := range m.Assign(modelData) {
		counts[b]++
	}
	det, err := anomaly.Fit(anomaly.SOMQuantizer{Map: m, UnitCounts: counts}, enc.TrainX, enc.TrainLabels, dcfg)
	if err != nil {
		return nil, fmt.Errorf("eval: fit som detector: %w", err)
	}
	return det, nil
}

// RunKMeans trains a k-means detector and evaluates it.
func RunKMeans(enc *Encoded, k int, seed int64, dcfg anomaly.Config) (DetectorResult, error) {
	modelData := capForModel(enc, seed)
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	km, err := baseline.TrainKMeans(modelData, baseline.KMeansConfig{K: k, Rng: rng})
	if err != nil {
		return DetectorResult{}, fmt.Errorf("eval: kmeans: %w", err)
	}
	det, err := anomaly.Fit(anomaly.KMeansQuantizer{Model: km}, enc.TrainX, enc.TrainLabels, dcfg)
	if err != nil {
		return DetectorResult{}, fmt.Errorf("eval: fit kmeans detector: %w", err)
	}
	trainSecs := time.Since(start).Seconds()
	res, err := evaluate(fmt.Sprintf("kmeans-%d", k), det, enc, trainSecs)
	if err != nil {
		return DetectorResult{}, err
	}
	res.Cells = km.K()
	return res, nil
}

// RunAgglo trains an agglomerative-clustering detector and evaluates it.
// The dendrogram is built on a subsample bounded by maxN (the algorithm
// is quadratic), then the k-cut codebook labels the full training set.
func RunAgglo(enc *Encoded, k, maxN int, seed int64, dcfg anomaly.Config) (DetectorResult, error) {
	modelData := capForModel(enc, seed)
	if len(modelData) > maxN {
		// Deterministic thinning: stride sampling preserves class mix of
		// the capped set.
		stride := (len(modelData) + maxN - 1) / maxN
		thinned := make([][]float64, 0, maxN)
		for i := 0; i < len(modelData); i += stride {
			thinned = append(thinned, modelData[i])
		}
		modelData = thinned
	}
	start := time.Now()
	ag, err := baseline.TrainAgglo(modelData, baseline.AggloConfig{K: k, MaxN: maxN})
	if err != nil {
		return DetectorResult{}, fmt.Errorf("eval: agglo: %w", err)
	}
	det, err := anomaly.Fit(anomaly.AggloQuantizer{Model: ag}, enc.TrainX, enc.TrainLabels, dcfg)
	if err != nil {
		return DetectorResult{}, fmt.Errorf("eval: fit agglo detector: %w", err)
	}
	trainSecs := time.Since(start).Seconds()
	res, err := evaluate(fmt.Sprintf("agglo-%d", k), det, enc, trainSecs)
	if err != nil {
		return DetectorResult{}, err
	}
	res.Cells = ag.K()
	return res, nil
}

// RunVolumeThreshold evaluates the naive count-threshold floor detector.
func RunVolumeThreshold(enc *Encoded) (DetectorResult, error) {
	// Feature 19 of the numeric block is the 2-second connection count
	// (see kdd.NumericFeatureNames).
	const countFeature = 19
	var normals [][]float64
	for i, l := range enc.TrainLabels {
		if l == "normal" {
			normals = append(normals, enc.TrainX[i])
		}
	}
	start := time.Now()
	vt, err := baseline.TrainVolumeThreshold(normals, countFeature, 0.99)
	if err != nil {
		return DetectorResult{}, fmt.Errorf("eval: volume threshold: %w", err)
	}
	trainSecs := time.Since(start).Seconds()

	var outcome metrics.BinaryOutcome
	scores := make([]float64, len(enc.TestX))
	truth := make([]bool, len(enc.TestX))
	cstart := time.Now()
	for i, x := range enc.TestX {
		truth[i] = enc.TestLabels[i] != "normal"
		outcome.AddBinary(truth[i], vt.IsAttack(x))
		scores[i] = vt.Score(x)
	}
	elapsed := time.Since(cstart).Seconds()
	curve, err := metrics.ROC(scores, truth)
	if err != nil {
		return DetectorResult{}, fmt.Errorf("eval: roc for volume threshold: %w", err)
	}
	res := DetectorResult{
		Name:          "volume-threshold",
		Accuracy:      outcome.Accuracy(),
		DetectionRate: outcome.DetectionRate(),
		FPR:           outcome.FalsePositiveRate(),
		Precision:     outcome.Precision(),
		F1:            outcome.F1(),
		AUC:           metrics.AUC(curve),
		Cells:         1,
		TrainSeconds:  trainSecs,
	}
	if elapsed > 0 {
		res.ClassifyPerSec = float64(len(enc.TestX)) / elapsed
	}
	return res, nil
}
