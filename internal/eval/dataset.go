// Package eval implements the reproduction experiments: dataset
// preparation, matched-budget runs of the GHSOM and the baseline
// detectors, and one runner per table (T1-T4) and figure (F1-F4) plus the
// ablations (A1, A2) listed in DESIGN.md. cmd/experiments and the root
// bench_test.go are thin wrappers over this package.
package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"ghsom/internal/kdd"
	"ghsom/internal/preprocess"
	"ghsom/internal/trafficgen"
	"ghsom/internal/vecmath"
)

// Dataset is a labeled train/test split of generated traffic.
type Dataset struct {
	// Train and Test are the record splits.
	Train, Test []kdd.Record
}

// MakeDataset generates traffic from gen and splits it stratified by
// label. trainFrac is the train-side fraction; splitSeed drives the
// shuffle inside each stratum.
func MakeDataset(gen trafficgen.Config, trainFrac float64, splitSeed int64) (Dataset, error) {
	records, err := trafficgen.Generate(gen)
	if err != nil {
		return Dataset{}, fmt.Errorf("eval: generate: %w", err)
	}
	labels := kdd.Labels(records)
	split, err := preprocess.StratifiedSplit(labels, trainFrac, rand.New(rand.NewSource(splitSeed)))
	if err != nil {
		return Dataset{}, fmt.Errorf("eval: split: %w", err)
	}
	ds := Dataset{
		Train: make([]kdd.Record, len(split.Train)),
		Test:  make([]kdd.Record, len(split.Test)),
	}
	for i, j := range split.Train {
		ds.Train[i] = records[j]
	}
	for i, j := range split.Test {
		ds.Test[i] = records[j]
	}
	return ds, nil
}

// Encoded is the numeric view of a Dataset: one encoder and scaler fit on
// the training split and applied to both, so every detector sees the same
// features.
type Encoded struct {
	// Encoder is the record-to-vector encoder (vocabulary from train).
	Encoder *kdd.Encoder
	// Scaler is the min-max scaler fit on the training vectors.
	Scaler *preprocess.MinMaxScaler
	// TrainMat is the scaled training split as one flat row-major matrix —
	// the storage GHSOM training runs on. TrainX aliases its rows.
	TrainMat vecmath.Matrix
	// TrainX and TestX are the scaled feature matrices.
	TrainX, TestX [][]float64
	// TrainLabels and TestLabels are the ground-truth labels.
	TrainLabels, TestLabels []string
}

// Encode builds the shared numeric view of ds. Both splits are encoded
// through the flat batch dataplane (EncodeBatch into one backing array
// per split, scaled in place by TransformBatch); the exposed [][]float64
// matrices are row views of that storage.
func Encode(ds Dataset) (*Encoded, error) {
	enc := kdd.NewEncoder(ds.Train, kdd.EncoderConfig{LogTransform: true})
	d := enc.Dim()
	flatRows := func(records []kdd.Record) ([]float64, [][]float64, error) {
		flat := make([]float64, len(records)*d)
		if err := enc.EncodeBatch(records, flat); err != nil {
			return nil, nil, err
		}
		rows := make([][]float64, len(records))
		for i := range rows {
			rows[i] = flat[i*d : (i+1)*d : (i+1)*d]
		}
		return flat, rows, nil
	}
	trainFlat, trainX, err := flatRows(ds.Train)
	if err != nil {
		return nil, fmt.Errorf("eval: encode train: %w", err)
	}
	scaler := &preprocess.MinMaxScaler{}
	if err := scaler.Fit(trainX); err != nil {
		return nil, fmt.Errorf("eval: scale train: %w", err)
	}
	if err := scaler.TransformBatch(trainFlat, d); err != nil {
		return nil, fmt.Errorf("eval: scale train: %w", err)
	}
	testFlat, testX, err := flatRows(ds.Test)
	if err != nil {
		return nil, fmt.Errorf("eval: encode test: %w", err)
	}
	if err := scaler.TransformBatch(testFlat, d); err != nil {
		return nil, fmt.Errorf("eval: scale test: %w", err)
	}
	trainMat, err := vecmath.MatrixOver(trainFlat, len(ds.Train), d)
	if err != nil {
		return nil, fmt.Errorf("eval: train matrix: %w", err)
	}
	return &Encoded{
		Encoder:     enc,
		Scaler:      scaler,
		TrainMat:    trainMat,
		TrainX:      trainX,
		TestX:       testX,
		TrainLabels: kdd.Labels(ds.Train),
		TestLabels:  kdd.Labels(ds.Test),
	}, nil
}

// CompositionRow is one line of the dataset-composition table (T1).
type CompositionRow struct {
	// Label is the record label.
	Label string
	// Category is the label's attack category.
	Category string
	// Train and Test are the per-split record counts.
	Train, Test int
}

// Composition tallies records per label for the T1 table, ordered by
// category then descending train count.
func Composition(ds Dataset) []CompositionRow {
	trainCounts := make(map[string]int)
	testCounts := make(map[string]int)
	for i := range ds.Train {
		trainCounts[ds.Train[i].Label]++
	}
	for i := range ds.Test {
		testCounts[ds.Test[i].Label]++
	}
	seen := make(map[string]bool)
	var rows []CompositionRow
	add := func(label string) {
		if seen[label] {
			return
		}
		seen[label] = true
		rows = append(rows, CompositionRow{
			Label:    label,
			Category: kdd.CategoryOf(label).String(),
			Train:    trainCounts[label],
			Test:     testCounts[label],
		})
	}
	for label := range trainCounts {
		add(label)
	}
	for label := range testCounts {
		add(label)
	}
	sort.Slice(rows, func(i, j int) bool {
		ci := kdd.CategoryOf(rows[i].Label)
		cj := kdd.CategoryOf(rows[j].Label)
		if ci != cj {
			return ci < cj
		}
		if rows[i].Train != rows[j].Train {
			return rows[i].Train > rows[j].Train
		}
		return rows[i].Label < rows[j].Label
	})
	return rows
}
