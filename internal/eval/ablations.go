package eval

import (
	"fmt"

	"ghsom/internal/anomaly"
	"ghsom/internal/core"
	"ghsom/internal/metrics"
)

// fullRouteQuantizer is the A3 ablation quantizer: hierarchical routing
// over all units, including data-less interpolated ones (the naive
// Route), instead of the effective-codebook RouteTrained the production
// detector uses.
type fullRouteQuantizer struct {
	model *core.GHSOM
}

func (q fullRouteQuantizer) Quantize(x []float64) (string, float64) {
	p := q.model.Route(x)
	return p.Key().String(), p.QE
}

// RoutingAblation runs A3: the same trained GHSOM evaluated with
// effective-codebook routing vs naive all-units routing. The naive
// variant strands test records on units with no label evidence, which is
// the failure mode RouteTrained exists to prevent.
func RoutingAblation(enc *Encoded, seed int64) ([]DetectorResult, error) {
	mcfg := DefaultModelConfig(seed)
	model, err := core.TrainMatrix(enc.TrainMat, capIdxForModel(enc, seed), mcfg)
	if err != nil {
		return nil, fmt.Errorf("eval: routing ablation train: %w", err)
	}
	var out []DetectorResult
	variants := []struct {
		name string
		q    anomaly.Quantizer
	}{
		{"ghsom-route-trained", anomaly.GHSOMQuantizer{Model: model}},
		{"ghsom-route-all-units", fullRouteQuantizer{model: model}},
	}
	for _, v := range variants {
		det, err := anomaly.Fit(v.q, enc.TrainX, enc.TrainLabels, anomaly.Config{})
		if err != nil {
			return nil, fmt.Errorf("eval: routing ablation fit %s: %w", v.name, err)
		}
		res, err := evaluate(v.name, det, enc, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// MarginRow is one point of the A4 novelty-margin sweep.
type MarginRow struct {
	// Margin is the threshold multiplier.
	Margin float64
	// DetectionRate, FPR, Accuracy, MCC are the test-split binary
	// measures at that margin.
	DetectionRate, FPR, Accuracy, MCC float64
}

// MarginSweep runs A4: the novelty-margin sensitivity sweep on a single
// trained model — the knob that trades unseen-attack sensitivity against
// false alarms under distribution shift.
func MarginSweep(enc *Encoded, margins []float64, seed int64) ([]MarginRow, error) {
	mcfg := DefaultModelConfig(seed)
	model, err := core.TrainMatrix(enc.TrainMat, capIdxForModel(enc, seed), mcfg)
	if err != nil {
		return nil, fmt.Errorf("eval: margin sweep train: %w", err)
	}
	var rows []MarginRow
	for _, margin := range margins {
		det, err := anomaly.Fit(anomaly.GHSOMQuantizer{Model: model}, enc.TrainX, enc.TrainLabels,
			anomaly.Config{NoveltyMargin: margin})
		if err != nil {
			return nil, fmt.Errorf("eval: margin %v: %w", margin, err)
		}
		var outcome metrics.BinaryOutcome
		for i, x := range enc.TestX {
			p := det.Classify(x)
			outcome.AddBinary(enc.TestLabels[i] != "normal", p.Attack)
		}
		rows = append(rows, MarginRow{
			Margin:        margin,
			DetectionRate: outcome.DetectionRate(),
			FPR:           outcome.FalsePositiveRate(),
			Accuracy:      outcome.Accuracy(),
			MCC:           metrics.MCC(outcome),
		})
	}
	return rows, nil
}
