package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ghsom/internal/anomaly"
	"ghsom/internal/core"
	"ghsom/internal/kdd"
	"ghsom/internal/metrics"
	"ghsom/internal/trafficgen"
)

// DefaultModelConfig returns the GHSOM configuration used by the
// experiment suite (the paper's operating point).
func DefaultModelConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// Comparison runs the T2 headline table: GHSOM vs flat SOM vs k-means vs
// the volume-threshold floor, all on the same encoded split with matched
// codebook budgets (SOM 12x12 = 144 units, k-means k=144).
func Comparison(enc *Encoded, seed int64) ([]DetectorResult, error) {
	dcfg := anomaly.Config{}
	var out []DetectorResult

	gres, _, _, err := RunGHSOM(enc, DefaultModelConfig(seed), dcfg)
	if err != nil {
		return nil, err
	}
	out = append(out, gres)

	sres, err := RunSOM(enc, 12, 12, 20, seed, dcfg)
	if err != nil {
		return nil, err
	}
	out = append(out, sres)

	kres, err := RunKMeans(enc, 144, seed, dcfg)
	if err != nil {
		return nil, err
	}
	out = append(out, kres)

	ares, err := RunAgglo(enc, 144, 3000, seed, dcfg)
	if err != nil {
		return nil, err
	}
	out = append(out, ares)

	vres, err := RunVolumeThreshold(enc)
	if err != nil {
		return nil, err
	}
	out = append(out, vres)
	return out, nil
}

// PerClassResult is the T3 output: the category-level confusion matrix
// and per-category recall of the GHSOM detector.
type PerClassResult struct {
	// Confusion is truth-category vs predicted-category (predictions map
	// through the predicted label's category; novel predictions count as
	// attacks of category "unknown").
	Confusion *metrics.Confusion
	// Recall maps category name to attack-detection recall within the
	// category (binary attack/normal verdict, not exact category match).
	Recall map[string]float64
	// Binary is the overall binary outcome.
	Binary metrics.BinaryOutcome
}

// PerClass runs T3 for a fitted detector on the encoded test split.
func PerClass(enc *Encoded, det *anomaly.Detector) PerClassResult {
	conf := metrics.NewConfusion("normal", "dos", "probe", "r2l", "u2r")
	detected := make(map[string]int)
	totals := make(map[string]int)
	var binary metrics.BinaryOutcome
	for i, x := range enc.TestX {
		p := det.Classify(x)
		truthCat := kdd.CategoryOf(enc.TestLabels[i]).String()
		predCat := kdd.CategoryOf(p.Label).String()
		if p.Label == anomaly.NovelLabel {
			predCat = "unknown"
		}
		// The binary verdict overrides the label for normal-labeled cells
		// flagged by novelty.
		if p.Attack && predCat == "normal" {
			predCat = "unknown"
		}
		conf.Add(truthCat, predCat)
		truthAttack := enc.TestLabels[i] != "normal"
		binary.AddBinary(truthAttack, p.Attack)
		if truthAttack {
			totals[truthCat]++
			if p.Attack {
				detected[truthCat]++
			}
		}
	}
	recall := make(map[string]float64, len(totals))
	for cat, n := range totals {
		recall[cat] = float64(detected[cat]) / float64(n)
	}
	return PerClassResult{Confusion: conf, Recall: recall, Binary: binary}
}

// TauSweepRow is one cell of the T4 structure-vs-parameters table.
type TauSweepRow struct {
	// Tau1 and Tau2 are the GHSOM breadth/depth parameters.
	Tau1, Tau2 float64
	// Maps, Units, Leaves, Depth summarize the trained structure.
	Maps, Units, Leaves, Depth int
	// Accuracy, DetectionRate, FPR are test-split binary measures.
	Accuracy, DetectionRate, FPR float64
	// TrainSeconds is wall-clock training time.
	TrainSeconds float64
}

// TauSweep runs T4: a grid of (tau1, tau2) values, reporting structure
// and quality for each.
func TauSweep(enc *Encoded, tau1s, tau2s []float64, seed int64) ([]TauSweepRow, error) {
	var rows []TauSweepRow
	for _, t1 := range tau1s {
		for _, t2 := range tau2s {
			mcfg := DefaultModelConfig(seed)
			mcfg.Tau1 = t1
			mcfg.Tau2 = t2
			res, model, _, err := RunGHSOM(enc, mcfg, anomaly.Config{})
			if err != nil {
				return nil, fmt.Errorf("eval: tau sweep (%v, %v): %w", t1, t2, err)
			}
			st := model.Stats()
			rows = append(rows, TauSweepRow{
				Tau1: t1, Tau2: t2,
				Maps: st.Maps, Units: st.Units, Leaves: st.LeafUnits, Depth: st.MaxDepth,
				Accuracy: res.Accuracy, DetectionRate: res.DetectionRate, FPR: res.FPR,
				TrainSeconds: res.TrainSeconds,
			})
		}
	}
	return rows, nil
}

// ConvergenceTrace runs F1/F3: trains a GHSOM with tracing enabled and
// returns the growth trace (per-iteration MQE and map size) plus the
// model.
func ConvergenceTrace(enc *Encoded, seed int64) (*core.GrowthTrace, *core.GHSOM, error) {
	mcfg := DefaultModelConfig(seed)
	mcfg.CollectTrace = true
	model, err := core.TrainMatrix(enc.TrainMat, capIdxForModel(enc, seed), mcfg)
	if err != nil {
		return nil, nil, fmt.Errorf("eval: convergence trace: %w", err)
	}
	return model.Trace(), model, nil
}

// ROCResult is one curve of the F2 figure.
type ROCResult struct {
	// Name identifies the detector.
	Name string
	// Curve is the ROC curve on the test split.
	Curve []metrics.ROCPoint
	// AUC is its area.
	AUC float64
}

// ROCCurves runs F2: score-threshold ROC curves for GHSOM and the flat
// SOM at a matched unit budget.
func ROCCurves(enc *Encoded, seed int64) ([]ROCResult, error) {
	dcfg := anomaly.Config{}
	truth := make([]bool, len(enc.TestX))
	for i, l := range enc.TestLabels {
		truth[i] = l != "normal"
	}
	scoreCurve := func(name string, det *anomaly.Detector) (ROCResult, error) {
		scores := make([]float64, len(enc.TestX))
		for i, x := range enc.TestX {
			scores[i] = det.Score(x)
		}
		curve, err := metrics.ROC(scores, truth)
		if err != nil {
			return ROCResult{}, fmt.Errorf("eval: roc %s: %w", name, err)
		}
		return ROCResult{Name: name, Curve: curve, AUC: metrics.AUC(curve)}, nil
	}

	_, model, gdet, err := RunGHSOM(enc, DefaultModelConfig(seed), dcfg)
	if err != nil {
		return nil, err
	}
	gres, err := scoreCurve("ghsom", gdet)
	if err != nil {
		return nil, err
	}
	// Match the SOM's unit budget to the GHSOM's leaf count.
	leaves := model.Stats().LeafUnits
	side := 2
	for side*side < leaves {
		side++
	}
	sdet, err := somDetector(enc, side, side, 20, seed, dcfg)
	if err != nil {
		return nil, err
	}
	scurve, err := scoreCurve(fmt.Sprintf("som-%dx%d", side, side), sdet)
	if err != nil {
		return nil, err
	}
	return []ROCResult{gres, scurve}, nil
}

// ScaleRow is one point of the F4 scalability figure.
type ScaleRow struct {
	// N is the training-set size.
	N int
	// TrainSeconds is GHSOM wall-clock training time.
	TrainSeconds float64
	// Units is the trained structure size.
	Units int
	// ClassifyPerSec is classification throughput on held-out records.
	ClassifyPerSec float64
}

// Scalability runs F4: training time and classify throughput across
// training-set sizes. The training rows are drawn from a deterministic
// shuffle so every size sees the full label mix (the stratified split
// stores rows grouped by label, so a raw prefix would be skewed).
func Scalability(enc *Encoded, sizes []int, seed int64) ([]ScaleRow, error) {
	order := make([]int, len(enc.TrainX))
	for i := range order {
		order[i] = i
	}
	rand.New(rand.NewSource(seed)).Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	var rows []ScaleRow
	for _, n := range sizes {
		if n > len(order) {
			n = len(order)
		}
		mcfg := DefaultModelConfig(seed)
		start := time.Now()
		model, err := core.TrainMatrix(enc.TrainMat, order[:n], mcfg)
		if err != nil {
			return nil, fmt.Errorf("eval: scalability n=%d: %w", n, err)
		}
		trainSecs := time.Since(start).Seconds()

		probe := enc.TestX
		if len(probe) > 5000 {
			probe = probe[:5000]
		}
		cstart := time.Now()
		for _, x := range probe {
			model.Route(x)
		}
		elapsed := time.Since(cstart).Seconds()
		row := ScaleRow{N: n, TrainSeconds: trainSecs, Units: model.Stats().Units}
		if elapsed > 0 {
			row.ClassifyPerSec = float64(len(probe)) / elapsed
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// HoldoutResult is the A1 novelty-ablation output.
type HoldoutResult struct {
	// Held lists the attack labels excluded from training.
	Held []string
	// SeenDR is the detection rate on attacks whose labels were trained.
	SeenDR float64
	// UnseenDR is the detection rate on the held-out attack labels —
	// detectable only through the novelty path.
	UnseenDR float64
	// UnseenNovelRate is the fraction of held-out attacks flagged
	// specifically by the novelty mechanism.
	UnseenNovelRate float64
	// FPR is the false positive rate on normal test traffic.
	FPR float64
}

// NoveltyHoldout runs A1: train with a set of attacks removed, test on
// the full mix, and separate detection on seen vs unseen attack labels.
func NoveltyHoldout(genSeed, seed int64, held ...string) (HoldoutResult, error) {
	if len(held) == 0 {
		held = []string{"smurf", "satan", "warezclient"}
	}
	full := trafficgen.Small(genSeed)
	trainGen := trafficgen.WithoutAttacks(full, held...)
	testGen := full
	testGen.Seed = genSeed + 1
	return holdoutEval(trainGen, testGen, held, seed)
}

// NoveltyCorrectedTestSet runs the "corrected test set" variant of A1,
// mirroring how the real KDD-99 evaluation works: the training trace
// carries only the 22 training-set attacks, while the test trace adds the
// nine test-set-only attacks (mailbomb, apache2, mscan, saint, snmpguess,
// snmpgetattack, httptunnel, xterm, ps). Detection on those attacks can
// come only from the novelty path and from their resemblance to trained
// attack families.
func NoveltyCorrectedTestSet(genSeed, seed int64) (HoldoutResult, error) {
	trainGen := trafficgen.Small(genSeed)
	testGen := trafficgen.WithNovelAttacks(trafficgen.Small(genSeed+1), 1)
	held := make([]string, 0, 9)
	for label := range trafficgen.NovelAttackEpisodes(1) {
		held = append(held, label)
	}
	sort.Strings(held)
	return holdoutEval(trainGen, testGen, held, seed)
}

// holdoutEval trains on trainGen, tests on testGen, and splits attack
// detection by membership in held.
func holdoutEval(trainGen, testGen trafficgen.Config, held []string, seed int64) (HoldoutResult, error) {
	trainRecs, err := trafficgen.Generate(trainGen)
	if err != nil {
		return HoldoutResult{}, fmt.Errorf("eval: holdout train gen: %w", err)
	}
	testRecs, err := trafficgen.Generate(testGen)
	if err != nil {
		return HoldoutResult{}, fmt.Errorf("eval: holdout test gen: %w", err)
	}
	enc, err := Encode(Dataset{Train: trainRecs, Test: testRecs})
	if err != nil {
		return HoldoutResult{}, err
	}
	_, _, det, err := RunGHSOM(enc, DefaultModelConfig(seed), anomaly.Config{})
	if err != nil {
		return HoldoutResult{}, err
	}
	heldSet := make(map[string]bool, len(held))
	for _, h := range held {
		heldSet[h] = true
	}
	var seenTot, seenHit, unseenTot, unseenHit, unseenNovel, normTot, normFP int
	for i, x := range enc.TestX {
		p := det.Classify(x)
		label := enc.TestLabels[i]
		switch {
		case label == "normal":
			normTot++
			if p.Attack {
				normFP++
			}
		case heldSet[label]:
			unseenTot++
			if p.Attack {
				unseenHit++
			}
			if p.Novel {
				unseenNovel++
			}
		default:
			seenTot++
			if p.Attack {
				seenHit++
			}
		}
	}
	res := HoldoutResult{Held: held}
	if seenTot > 0 {
		res.SeenDR = float64(seenHit) / float64(seenTot)
	}
	if unseenTot > 0 {
		res.UnseenDR = float64(unseenHit) / float64(unseenTot)
		res.UnseenNovelRate = float64(unseenNovel) / float64(unseenTot)
	}
	if normTot > 0 {
		res.FPR = float64(normFP) / float64(normTot)
	}
	return res, nil
}

// BatchVsOnline runs A2: identical GHSOM configurations trained with the
// online rule and the batch rule.
func BatchVsOnline(enc *Encoded, seed int64) ([]DetectorResult, error) {
	var out []DetectorResult
	for _, batch := range []bool{false, true} {
		mcfg := DefaultModelConfig(seed)
		mcfg.Batch = batch
		res, _, _, err := RunGHSOM(enc, mcfg, anomaly.Config{})
		if err != nil {
			return nil, fmt.Errorf("eval: batch=%v: %w", batch, err)
		}
		if batch {
			res.Name = "ghsom-batch"
		} else {
			res.Name = "ghsom-online"
		}
		out = append(out, res)
	}
	return out, nil
}
