package kdd

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// sampleRow is a syntactically faithful kddcup.data row (normal http).
const sampleRow = "0,tcp,http,SF,215,45076,0,0,0,0,0,1,0,0,0,0,0,0,0,0,0,0,1,1,0.00,0.00,0.00,0.00,1.00,0.00,0.00,0,0,0.00,0.00,0.00,0.00,0.00,0.00,0.00,0.00,normal."

func TestParseFieldsSample(t *testing.T) {
	r, err := ParseFields(strings.Split(sampleRow, ","))
	if err != nil {
		t.Fatal(err)
	}
	if r.Protocol != "tcp" || r.Service != "http" || r.Flag != "SF" {
		t.Errorf("categoricals wrong: %+v", r)
	}
	if r.SrcBytes != 215 || r.DstBytes != 45076 {
		t.Errorf("bytes wrong: %v %v", r.SrcBytes, r.DstBytes)
	}
	if !r.LoggedIn {
		t.Error("logged_in should be true")
	}
	if r.Count != 1 || r.SameSrvRate != 1 {
		t.Errorf("traffic features wrong: count=%v sameSrv=%v", r.Count, r.SameSrvRate)
	}
	if r.Label != "normal" {
		t.Errorf("label = %q", r.Label)
	}
}

func TestParseFieldsErrors(t *testing.T) {
	if _, err := ParseFields([]string{"1", "2"}); err == nil {
		t.Error("short row accepted")
	}
	fields := strings.Split(sampleRow, ",")
	fields[0] = "not-a-number"
	if _, err := ParseFields(fields); err == nil {
		t.Error("non-numeric duration accepted")
	}
	fields = strings.Split(sampleRow, ",")
	fields[25] = "abc" // a rate column
	if _, err := ParseFields(fields); err == nil {
		t.Error("non-numeric rate accepted")
	}
}

func TestFieldsRoundTrip(t *testing.T) {
	orig, err := ParseFields(strings.Split(sampleRow, ","))
	if err != nil {
		t.Fatal(err)
	}
	orig.SerrorRate = 0.25
	orig.DstHostCount = 255
	fields := orig.Fields()
	if len(fields) != 42 {
		t.Fatalf("Fields produced %d columns", len(fields))
	}
	back, err := ParseFields(fields)
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, orig)
	}
}

func TestReadAllWriteAllRoundTrip(t *testing.T) {
	recs := []Record{}
	r1, _ := ParseFields(strings.Split(sampleRow, ","))
	r2 := r1
	r2.Label = "neptune"
	r2.Flag = "S0"
	r2.SerrorRate = 1
	r2.Count = 200
	recs = append(recs, r1, r2)

	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	if got[0] != recs[0] || got[1] != recs[1] {
		t.Error("records differ after round trip")
	}
}

func TestReadAllEmpty(t *testing.T) {
	got, err := ReadAll(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty input produced %d records", len(got))
	}
}

func TestReadAllMalformedLine(t *testing.T) {
	in := sampleRow + "\n" + "only,three,fields\n"
	if _, err := ReadAll(strings.NewReader(in)); err == nil {
		t.Error("malformed line accepted")
	}
	in = sampleRow + "\n" + strings.Replace(sampleRow, "215", "XYZ", 1) + "\n"
	if _, err := ReadAll(strings.NewReader(in)); err == nil {
		t.Error("non-numeric field accepted")
	}
}

func TestPropFieldsParseRoundTrip(t *testing.T) {
	// Random schema-valid records survive Fields -> ParseFields exactly.
	// Rates are generated on the 0.01 grid the CSV format preserves;
	// volume features are integral, as in the real dataset.
	rng := rand.New(rand.NewSource(90))
	services := CommonServices
	labels := append(KnownLabels(), "normal")
	rate := func() float64 { return float64(rng.Intn(101)) / 100 }
	vol := func(max int) float64 { return float64(rng.Intn(max)) }
	for trial := 0; trial < 300; trial++ {
		r := Record{
			Duration:               vol(5000),
			Protocol:               Protocols[rng.Intn(len(Protocols))],
			Service:                services[rng.Intn(len(services))],
			Flag:                   Flags[rng.Intn(len(Flags))],
			SrcBytes:               vol(1 << 20),
			DstBytes:               vol(1 << 20),
			Land:                   rng.Intn(2) == 1,
			WrongFragment:          vol(3),
			Urgent:                 vol(3),
			Hot:                    vol(10),
			NumFailedLogins:        vol(5),
			LoggedIn:               rng.Intn(2) == 1,
			NumCompromised:         vol(5),
			RootShell:              vol(1),
			SuAttempted:            vol(2),
			NumRoot:                vol(5),
			NumFileCreations:       vol(5),
			NumShells:              vol(2),
			NumAccessFiles:         vol(3),
			IsHostLogin:            rng.Intn(2) == 1,
			IsGuestLogin:           rng.Intn(2) == 1,
			Count:                  vol(511),
			SrvCount:               vol(511),
			SerrorRate:             rate(),
			SrvSerrorRate:          rate(),
			RerrorRate:             rate(),
			SrvRerrorRate:          rate(),
			SameSrvRate:            rate(),
			DiffSrvRate:            rate(),
			SrvDiffHostRate:        rate(),
			DstHostCount:           vol(256),
			DstHostSrvCount:        vol(256),
			DstHostSameSrvRate:     rate(),
			DstHostDiffSrvRate:     rate(),
			DstHostSameSrcPortRate: rate(),
			DstHostSrvDiffHostRate: rate(),
			DstHostSerrorRate:      rate(),
			DstHostSrvSerrorRate:   rate(),
			DstHostRerrorRate:      rate(),
			DstHostSrvRerrorRate:   rate(),
			Label:                  labels[rng.Intn(len(labels))],
		}
		back, err := ParseFields(r.Fields())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back != r {
			t.Fatalf("trial %d: round trip mismatch:\n got %+v\nwant %+v", trial, back, r)
		}
	}
}

func TestWriteAllLabelsGetDot(t *testing.T) {
	r, _ := ParseFields(strings.Split(sampleRow, ","))
	var buf bytes.Buffer
	if err := WriteAll(&buf, []Record{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "normal.") {
		t.Errorf("written row missing dotted label: %q", buf.String())
	}
}
