package kdd

import (
	"strings"
	"testing"
)

// FuzzParseFields asserts that arbitrary CSV rows never panic the parser
// and that every successfully parsed record survives a format round trip.
func FuzzParseFields(f *testing.F) {
	f.Add(sampleRow)
	f.Add("0,udp,domain_u,SF,45,44,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,2,2,0.00,0.00,0.00,0.00,1.00,0.00,0.00,255,254,1.00,0.01,0.00,0.00,0.00,0.00,0.00,0.00,snmpgetattack.")
	f.Add(strings.Repeat(",", 41))
	f.Add("")
	f.Fuzz(func(t *testing.T, row string) {
		fields := strings.Split(row, ",")
		rec, err := ParseFields(fields)
		if err != nil {
			return
		}
		back, err := ParseFields(rec.Fields())
		if err != nil {
			t.Fatalf("round trip re-parse failed: %v", err)
		}
		// Categorical fields always survive exactly; numeric fields may
		// be reformatted (e.g. scientific notation in, fixed out), so
		// only check the identity-preserving columns.
		if back.Protocol != rec.Protocol || back.Service != rec.Service ||
			back.Flag != rec.Flag || back.Label != rec.Label {
			t.Fatalf("categoricals changed in round trip: %+v vs %+v", back, rec)
		}
	})
}
