package kdd

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseFields asserts that arbitrary CSV rows never panic the parser
// and that every successfully parsed record survives a format round trip.
func FuzzParseFields(f *testing.F) {
	f.Add(sampleRow)
	f.Add("0,udp,domain_u,SF,45,44,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,2,2,0.00,0.00,0.00,0.00,1.00,0.00,0.00,255,254,1.00,0.01,0.00,0.00,0.00,0.00,0.00,0.00,snmpgetattack.")
	f.Add(strings.Repeat(",", 41))
	f.Add("")
	f.Fuzz(func(t *testing.T, row string) {
		fields := strings.Split(row, ",")
		rec, err := ParseFields(fields)
		if err != nil {
			return
		}
		back, err := ParseFields(rec.Fields())
		if err != nil {
			t.Fatalf("round trip re-parse failed: %v", err)
		}
		// Categorical fields always survive exactly; numeric fields may
		// be reformatted (e.g. scientific notation in, fixed out), so
		// only check the identity-preserving columns.
		if back.Protocol != rec.Protocol || back.Service != rec.Service ||
			back.Flag != rec.Flag || back.Label != rec.Label {
			t.Fatalf("categoricals changed in round trip: %+v vs %+v", back, rec)
		}
	})
}

// FuzzReadColumnarBatch asserts that adversarial GHSOMWB1 frames —
// truncated, mutated, huge claimed lengths, mismatched row counts,
// out-of-range categorical codes — never panic the reader, never force
// an allocation proportional to a lie in the header, and that every
// frame the reader accepts also binds and encodes cleanly.
func FuzzReadColumnarBatch(f *testing.F) {
	seedBatch := func(opts ColumnarWriteOptions, n int) []byte {
		var buf bytes.Buffer
		if err := WriteColumnarBatch(&buf, columnarTestRecords(n), opts); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seedBatch(ColumnarWriteOptions{}, 3))
	f.Add(seedBatch(ColumnarWriteOptions{Labels: true}, 7))
	f.Add(seedBatch(ColumnarWriteOptions{Float32: true, Labels: true}, 2))
	f.Add([]byte("GHSOMWB1"))
	f.Add([]byte{})
	// Mutated seeds: the fuzzer starts from these and flips more.
	base := seedBatch(ColumnarWriteOptions{Labels: true}, 5)
	for _, off := range []int{8, 12, 13, 17, 21, len(base) - 1} {
		m := bytes.Clone(base)
		m[off] ^= 0xFF
		f.Add(m)
	}
	enc := NewEncoder(nil, EncoderConfig{LogTransform: true})
	f.Fuzz(func(t *testing.T, frame []byte) {
		var cb ColumnarBatch
		lim := ColumnarLimits{MaxRows: 1 << 16, MaxFrameBytes: 1 << 24}
		r := bytes.NewReader(frame)
		for {
			err := ReadColumnarBatch(r, &cb, lim)
			if err != nil {
				return
			}
			if cb.Rows() < 1 || cb.Rows() > 1<<16 {
				t.Fatalf("accepted frame with %d rows", cb.Rows())
			}
			if err := enc.BindColumnar(&cb); err != nil {
				t.Fatalf("accepted frame failed BindColumnar: %v", err)
			}
			dst := make([]float64, cb.Rows()*enc.Dim())
			// Unknown protocols/flags in the frame are a clean encode
			// error, never a panic.
			_ = enc.EncodeColumnarRows(&cb, 0, cb.Rows(), dst)
			if _, err := cb.Record(0); err != nil {
				t.Fatalf("accepted frame failed Record(0): %v", err)
			}
			cb.AppendLabels(nil)
		}
	})
}
