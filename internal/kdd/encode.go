package kdd

import (
	"fmt"
	"math"
	"sort"
)

// EncoderConfig controls the record-to-vector encoding.
type EncoderConfig struct {
	// LogTransform applies log1p to the heavy-tailed volume features
	// (duration, src_bytes, dst_bytes, count, srv_count, dst_host_count,
	// dst_host_srv_count) before scaling. This is the standard KDD
	// preprocessing step: byte counts span eight orders of magnitude and
	// would otherwise dominate the Euclidean metric.
	LogTransform bool
	// OtherService is the bucket used for services outside the vocabulary.
	// Defaults to "other" when empty.
	OtherService string
}

// indices of the log-transformed features inside NumericFeatureNames.
var logFeatureIndex = map[int]bool{
	0:  true, // duration
	1:  true, // src_bytes
	2:  true, // dst_bytes
	19: true, // count
	20: true, // srv_count
	28: true, // dst_host_count
	29: true, // dst_host_srv_count
}

// Encoder converts Records into dense numeric vectors: 38 numeric/boolean
// features followed by one-hot blocks for protocol, service, and flag.
// Build one with NewEncoder over the training set so the service
// vocabulary matches the data, then reuse it for all splits.
type Encoder struct {
	cfg      EncoderConfig
	services []string       // sorted vocabulary, always containing the other bucket
	svcIndex map[string]int // service -> position in services
	protoIdx map[string]int
	flagIdx  map[string]int
}

// NewEncoder builds an encoder whose service vocabulary is the union of
// CommonServices and the services observed in records.
func NewEncoder(records []Record, cfg EncoderConfig) *Encoder {
	if cfg.OtherService == "" {
		cfg.OtherService = "other"
	}
	seen := make(map[string]bool)
	for _, s := range CommonServices {
		seen[s] = true
	}
	seen[cfg.OtherService] = true
	for i := range records {
		seen[records[i].Service] = true
	}
	services := make([]string, 0, len(seen))
	for s := range seen {
		services = append(services, s)
	}
	sort.Strings(services)

	e := &Encoder{
		cfg:      cfg,
		services: services,
		svcIndex: make(map[string]int, len(services)),
		protoIdx: make(map[string]int, len(Protocols)),
		flagIdx:  make(map[string]int, len(Flags)),
	}
	for i, s := range services {
		e.svcIndex[s] = i
	}
	for i, p := range Protocols {
		e.protoIdx[p] = i
	}
	for i, f := range Flags {
		e.flagIdx[f] = i
	}
	return e
}

// NewEncoderFromServices rebuilds an encoder from a previously exported
// service vocabulary (see Services). The vocabulary is used as-is except
// that the other bucket is added if missing.
func NewEncoderFromServices(services []string, cfg EncoderConfig) *Encoder {
	if cfg.OtherService == "" {
		cfg.OtherService = "other"
	}
	seen := make(map[string]bool, len(services)+1)
	vocab := make([]string, 0, len(services)+1)
	for _, s := range services {
		if !seen[s] {
			seen[s] = true
			vocab = append(vocab, s)
		}
	}
	if !seen[cfg.OtherService] {
		vocab = append(vocab, cfg.OtherService)
	}
	sort.Strings(vocab)
	e := &Encoder{
		cfg:      cfg,
		services: vocab,
		svcIndex: make(map[string]int, len(vocab)),
		protoIdx: make(map[string]int, len(Protocols)),
		flagIdx:  make(map[string]int, len(Flags)),
	}
	for i, s := range vocab {
		e.svcIndex[s] = i
	}
	for i, p := range Protocols {
		e.protoIdx[p] = i
	}
	for i, f := range Flags {
		e.flagIdx[f] = i
	}
	return e
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() EncoderConfig { return e.cfg }

// Dim returns the encoded vector dimension.
func (e *Encoder) Dim() int {
	return len(NumericFeatureNames) + len(Protocols) + len(e.services) + len(Flags)
}

// Services returns the service vocabulary (sorted). The slice is shared;
// callers must not modify it.
func (e *Encoder) Services() []string { return e.services }

// FeatureNames returns the name of every encoded dimension, in order.
func (e *Encoder) FeatureNames() []string {
	out := make([]string, 0, e.Dim())
	out = append(out, NumericFeatureNames...)
	for _, p := range Protocols {
		out = append(out, "protocol="+p)
	}
	for _, s := range e.services {
		out = append(out, "service="+s)
	}
	for _, f := range Flags {
		out = append(out, "flag="+f)
	}
	return out
}

// Encode converts one record into a dense vector. Unknown protocols or
// flags return an error (they indicate corrupted input); unknown services
// fall into the other bucket.
func (e *Encoder) Encode(r *Record) ([]float64, error) {
	out := make([]float64, 0, e.Dim())
	numeric := r.NumericFeatures()
	if e.cfg.LogTransform {
		for i := range numeric {
			if logFeatureIndex[i] {
				numeric[i] = math.Log1p(numeric[i])
			}
		}
	}
	out = append(out, numeric...)

	proto := make([]float64, len(Protocols))
	pi, ok := e.protoIdx[r.Protocol]
	if !ok {
		return nil, fmt.Errorf("kdd: encode: unknown protocol %q", r.Protocol)
	}
	proto[pi] = 1
	out = append(out, proto...)

	svc := make([]float64, len(e.services))
	si, ok := e.svcIndex[r.Service]
	if !ok {
		si = e.svcIndex[e.cfg.OtherService]
	}
	svc[si] = 1
	out = append(out, svc...)

	flag := make([]float64, len(Flags))
	fi, ok := e.flagIdx[r.Flag]
	if !ok {
		return nil, fmt.Errorf("kdd: encode: unknown flag %q", r.Flag)
	}
	flag[fi] = 1
	out = append(out, flag...)
	return out, nil
}

// EncodeAll encodes all records, aborting on the first failure.
func (e *Encoder) EncodeAll(records []Record) ([][]float64, error) {
	out := make([][]float64, len(records))
	for i := range records {
		v, err := e.Encode(&records[i])
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// Labels extracts the label of every record.
func Labels(records []Record) []string {
	out := make([]string, len(records))
	for i := range records {
		out[i] = records[i].Label
	}
	return out
}

// CategoryCounts tallies records per category.
func CategoryCounts(records []Record) map[Category]int {
	out := make(map[Category]int)
	for i := range records {
		out[records[i].Category()]++
	}
	return out
}
