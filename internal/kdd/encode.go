package kdd

import (
	"fmt"
	"math"
	"sort"
)

// EncoderConfig controls the record-to-vector encoding.
type EncoderConfig struct {
	// LogTransform applies log1p to the heavy-tailed volume features
	// (duration, src_bytes, dst_bytes, count, srv_count, dst_host_count,
	// dst_host_srv_count) before scaling. This is the standard KDD
	// preprocessing step: byte counts span eight orders of magnitude and
	// would otherwise dominate the Euclidean metric.
	LogTransform bool
	// OtherService is the bucket used for services outside the vocabulary.
	// Defaults to "other" when empty.
	OtherService string
}

// logFeatureIdxs lists the indices of the log-transformed features inside
// NumericFeatureNames: duration, src_bytes, dst_bytes, count, srv_count,
// dst_host_count, dst_host_srv_count.
var logFeatureIdxs = [...]int{0, 1, 2, 19, 20, 28, 29}

// Encoder converts Records into dense numeric vectors: 38 numeric/boolean
// features followed by one-hot blocks for protocol, service, and flag.
// Build one with NewEncoder over the training set so the service
// vocabulary matches the data, then reuse it for all splits.
type Encoder struct {
	cfg      EncoderConfig
	services []string       // sorted vocabulary, always containing the other bucket
	svcIndex map[string]int // service -> position in services
	protoIdx map[string]int
	flagIdx  map[string]int
}

// NewEncoder builds an encoder whose service vocabulary is the union of
// CommonServices and the services observed in records.
func NewEncoder(records []Record, cfg EncoderConfig) *Encoder {
	if cfg.OtherService == "" {
		cfg.OtherService = "other"
	}
	seen := make(map[string]bool)
	for _, s := range CommonServices {
		seen[s] = true
	}
	seen[cfg.OtherService] = true
	for i := range records {
		seen[records[i].Service] = true
	}
	services := make([]string, 0, len(seen))
	for s := range seen {
		services = append(services, s)
	}
	sort.Strings(services)

	e := &Encoder{
		cfg:      cfg,
		services: services,
		svcIndex: make(map[string]int, len(services)),
		protoIdx: make(map[string]int, len(Protocols)),
		flagIdx:  make(map[string]int, len(Flags)),
	}
	for i, s := range services {
		e.svcIndex[s] = i
	}
	for i, p := range Protocols {
		e.protoIdx[p] = i
	}
	for i, f := range Flags {
		e.flagIdx[f] = i
	}
	return e
}

// NewEncoderFromServices rebuilds an encoder from a previously exported
// service vocabulary (see Services). The vocabulary is used as-is except
// that the other bucket is added if missing.
func NewEncoderFromServices(services []string, cfg EncoderConfig) *Encoder {
	if cfg.OtherService == "" {
		cfg.OtherService = "other"
	}
	seen := make(map[string]bool, len(services)+1)
	vocab := make([]string, 0, len(services)+1)
	for _, s := range services {
		if !seen[s] {
			seen[s] = true
			vocab = append(vocab, s)
		}
	}
	if !seen[cfg.OtherService] {
		vocab = append(vocab, cfg.OtherService)
	}
	sort.Strings(vocab)
	e := &Encoder{
		cfg:      cfg,
		services: vocab,
		svcIndex: make(map[string]int, len(vocab)),
		protoIdx: make(map[string]int, len(Protocols)),
		flagIdx:  make(map[string]int, len(Flags)),
	}
	for i, s := range vocab {
		e.svcIndex[s] = i
	}
	for i, p := range Protocols {
		e.protoIdx[p] = i
	}
	for i, f := range Flags {
		e.flagIdx[f] = i
	}
	return e
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() EncoderConfig { return e.cfg }

// Dim returns the encoded vector dimension.
func (e *Encoder) Dim() int {
	return len(NumericFeatureNames) + len(Protocols) + len(e.services) + len(Flags)
}

// Services returns the service vocabulary (sorted). The slice is shared;
// callers must not modify it.
func (e *Encoder) Services() []string { return e.services }

// FeatureNames returns the name of every encoded dimension, in order.
func (e *Encoder) FeatureNames() []string {
	out := make([]string, 0, e.Dim())
	out = append(out, NumericFeatureNames...)
	for _, p := range Protocols {
		out = append(out, "protocol="+p)
	}
	for _, s := range e.services {
		out = append(out, "service="+s)
	}
	for _, f := range Flags {
		out = append(out, "flag="+f)
	}
	return out
}

// Encode converts one record into a dense vector. Unknown protocols or
// flags return an error (they indicate corrupted input); unknown services
// fall into the other bucket.
func (e *Encoder) Encode(r *Record) ([]float64, error) {
	out := make([]float64, e.Dim())
	if err := e.EncodeInto(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeInto encodes one record into dst, which must have length exactly
// Dim(). It is the allocation-free kernel under Encode and EncodeBatch:
// every element of dst is overwritten (the one-hot blocks are zeroed
// first), so dst may be reused across calls without clearing. Unknown
// protocols or flags return an error and leave dst in an unspecified
// state; unknown services fall into the other bucket.
func (e *Encoder) EncodeInto(r *Record, dst []float64) error {
	if len(dst) != e.Dim() {
		return fmt.Errorf("kdd: encode into buffer of length %d, want %d", len(dst), e.Dim())
	}
	numeric := dst[:len(NumericFeatureNames)]
	r.NumericFeaturesInto(numeric)
	if e.cfg.LogTransform {
		for _, i := range logFeatureIdxs {
			numeric[i] = math.Log1p(numeric[i])
		}
	}

	oneHot := dst[len(NumericFeatureNames):]
	for i := range oneHot {
		oneHot[i] = 0
	}
	pi, ok := e.protoIdx[r.Protocol]
	if !ok {
		return fmt.Errorf("kdd: encode: unknown protocol %q", r.Protocol)
	}
	oneHot[pi] = 1

	si, ok := e.svcIndex[r.Service]
	if !ok {
		si = e.svcIndex[e.cfg.OtherService]
	}
	oneHot[len(Protocols)+si] = 1

	fi, ok := e.flagIdx[r.Flag]
	if !ok {
		return fmt.Errorf("kdd: encode: unknown flag %q", r.Flag)
	}
	oneHot[len(Protocols)+len(e.services)+fi] = 1
	return nil
}

// EncodeBatch encodes records into the flat row-major matrix dst: record i
// occupies dst[i*Dim() : (i+1)*Dim()]. dst must have length at least
// len(records)*Dim(); the batch is written serially (parallelize across
// row ranges at a higher layer when needed) and aborts on the first bad
// record, reporting its index. On error the rows already written remain
// but the batch must be considered invalid.
func (e *Encoder) EncodeBatch(records []Record, dst []float64) error {
	d := e.Dim()
	if len(dst) < len(records)*d {
		return fmt.Errorf("kdd: encode batch of %d records into buffer of length %d, want >= %d",
			len(records), len(dst), len(records)*d)
	}
	for i := range records {
		if err := e.EncodeInto(&records[i], dst[i*d:(i+1)*d]); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	return nil
}

// EncodeAll encodes all records, aborting on the first failure.
func (e *Encoder) EncodeAll(records []Record) ([][]float64, error) {
	out := make([][]float64, len(records))
	for i := range records {
		v, err := e.Encode(&records[i])
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// Labels extracts the label of every record.
func Labels(records []Record) []string {
	out := make([]string, len(records))
	for i := range records {
		out[i] = records[i].Label
	}
	return out
}

// CategoryCounts tallies records per category.
func CategoryCounts(records []Record) map[Category]int {
	out := make(map[Category]int)
	for i := range records {
		out[records[i].Category()]++
	}
	return out
}
