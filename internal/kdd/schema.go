// Package kdd defines the KDD-Cup-99 connection-record schema used by the
// intrusion-detection experiments: the 41 features, the attack-label
// taxonomy (normal / DoS / Probe / R2L / U2R), CSV parsing and writing in
// the original kddcup.data format, and the numeric vector encoding
// (numeric features plus one-hot categorical features) consumed by the
// SOM-family models.
//
// The schema intentionally matches the original dataset so that the real
// kddcup.data file can be used as a drop-in replacement for the synthetic
// traffic produced by internal/trafficgen.
package kdd

import "fmt"

// Category is the coarse attack taxonomy of KDD-99.
type Category int

// The five KDD-99 record categories plus an explicit unknown.
const (
	// Normal marks legitimate traffic.
	Normal Category = iota + 1
	// DoS marks denial-of-service attacks (neptune, smurf, back, ...).
	DoS
	// Probe marks reconnaissance (portsweep, ipsweep, nmap, satan).
	Probe
	// R2L marks remote-to-local attacks (guess_passwd, warezclient, ...).
	R2L
	// U2R marks user-to-root escalations (buffer_overflow, rootkit, ...).
	U2R
	// Unknown marks labels outside the standard taxonomy.
	Unknown
)

// String returns the category name as used in reports.
func (c Category) String() string {
	switch c {
	case Normal:
		return "normal"
	case DoS:
		return "dos"
	case Probe:
		return "probe"
	case R2L:
		return "r2l"
	case U2R:
		return "u2r"
	default:
		return "unknown"
	}
}

// Categories lists the five standard categories in report order.
func Categories() []Category { return []Category{Normal, DoS, Probe, R2L, U2R} }

// labelCategory maps every KDD-99 label to its category: the 22
// training-set attacks plus the novel attacks that appear only in the
// original corrected test set (mailbomb, apache2, mscan, ...), which the
// unseen-attack experiments use.
var labelCategory = map[string]Category{
	"normal": Normal,

	"back": DoS, "land": DoS, "neptune": DoS, "pod": DoS, "smurf": DoS, "teardrop": DoS,
	// test-set-only DoS
	"mailbomb": DoS, "apache2": DoS, "processtable": DoS, "udpstorm": DoS,

	"ipsweep": Probe, "nmap": Probe, "portsweep": Probe, "satan": Probe,
	// test-set-only Probe
	"mscan": Probe, "saint": Probe,

	"ftp_write": R2L, "guess_passwd": R2L, "imap": R2L, "multihop": R2L,
	"phf": R2L, "spy": R2L, "warezclient": R2L, "warezmaster": R2L,
	// test-set-only R2L
	"snmpguess": R2L, "snmpgetattack": R2L, "httptunnel": R2L, "named": R2L,
	"sendmail": R2L, "xlock": R2L, "xsnoop": R2L, "worm": R2L,

	"buffer_overflow": U2R, "loadmodule": U2R, "perl": U2R, "rootkit": U2R,
	// test-set-only U2R
	"xterm": U2R, "ps": U2R, "sqlattack": U2R,
}

// trainSetLabels is the set of labels present in the KDD-99 training
// data; everything else in labelCategory is test-set-only.
var trainSetLabels = map[string]bool{
	"normal": true,
	"back":   true, "land": true, "neptune": true, "pod": true, "smurf": true, "teardrop": true,
	"ipsweep": true, "nmap": true, "portsweep": true, "satan": true,
	"ftp_write": true, "guess_passwd": true, "imap": true, "multihop": true,
	"phf": true, "spy": true, "warezclient": true, "warezmaster": true,
	"buffer_overflow": true, "loadmodule": true, "perl": true, "rootkit": true,
}

// IsNovelLabel reports whether a label belongs to the KDD-99 corrected
// test set only (an attack never present in training data).
func IsNovelLabel(label string) bool {
	label = TrimLabel(label)
	_, known := labelCategory[label]
	return known && !trainSetLabels[label]
}

// CategoryOf returns the category for a KDD label (with or without the
// trailing '.' the original files carry). Labels outside the taxonomy map
// to Unknown.
func CategoryOf(label string) Category {
	label = TrimLabel(label)
	if c, ok := labelCategory[label]; ok {
		return c
	}
	return Unknown
}

// TrimLabel strips the trailing '.' that kddcup.data labels carry.
func TrimLabel(label string) string {
	if n := len(label); n > 0 && label[n-1] == '.' {
		return label[:n-1]
	}
	return label
}

// KnownLabels returns all labels in the standard taxonomy, sorted by
// category then name (deterministic but unspecified order within category).
func KnownLabels() []string {
	out := make([]string, 0, len(labelCategory))
	for _, cat := range Categories() {
		for l, c := range labelCategory {
			if c == cat {
				out = append(out, l)
			}
		}
	}
	return out
}

// Protocols lists the protocol_type vocabulary of KDD-99.
var Protocols = []string{"tcp", "udp", "icmp"}

// Flags lists the connection-status flag vocabulary of KDD-99.
//
//	SF    normal establish + termination
//	S0    connection attempt seen, no reply (classic SYN-flood signature)
//	S1-S3 established, not torn down cleanly
//	REJ   connection attempt rejected
//	RSTO  reset by originator
//	RSTR  reset by responder
//	RSTOS0 originator sent SYN then RST
//	SH    SYN then FIN from originator only (stealth-scan signature)
//	OTH   no SYN seen, mid-stream traffic
var Flags = []string{"SF", "S0", "S1", "S2", "S3", "REJ", "RSTO", "RSTR", "RSTOS0", "SH", "OTH"}

// CommonServices lists the service vocabulary produced by the synthetic
// generator, a representative subset of the ~70 KDD-99 services. The
// encoder treats any service outside this list as "other", so real
// kddcup.data records remain encodable.
var CommonServices = []string{
	"http", "smtp", "ftp", "ftp_data", "telnet", "ssh", "domain_u", "dns",
	"pop_3", "imap4", "finger", "auth", "ecr_i", "eco_i", "private",
	"other",
}

// Record is one KDD-99 connection record: 41 features plus a label.
// Numeric fields use float64 even for integral features to match the
// vector encoding; boolean flags use bool and encode as 0/1.
type Record struct {
	// --- intrinsic (per-connection) features 1-9 ---

	// Duration is the connection length in seconds.
	Duration float64
	// Protocol is the transport protocol (tcp, udp, icmp).
	Protocol string
	// Service is the destination service name.
	Service string
	// Flag is the connection status summary (SF, S0, REJ, ...).
	Flag string
	// SrcBytes is bytes sent from source to destination.
	SrcBytes float64
	// DstBytes is bytes sent from destination to source.
	DstBytes float64
	// Land reports source host/port equal to destination host/port.
	Land bool
	// WrongFragment counts bad fragments.
	WrongFragment float64
	// Urgent counts urgent packets.
	Urgent float64

	// --- content features 10-22 ---

	// Hot counts "hot" indicators (entering system directories, etc.).
	Hot float64
	// NumFailedLogins counts failed login attempts.
	NumFailedLogins float64
	// LoggedIn reports a successful login.
	LoggedIn bool
	// NumCompromised counts compromised conditions.
	NumCompromised float64
	// RootShell reports whether a root shell was obtained.
	RootShell float64
	// SuAttempted reports "su root" attempts.
	SuAttempted float64
	// NumRoot counts root accesses.
	NumRoot float64
	// NumFileCreations counts file-creation operations.
	NumFileCreations float64
	// NumShells counts shell prompts.
	NumShells float64
	// NumAccessFiles counts operations on access-control files.
	NumAccessFiles float64
	// NumOutboundCmds counts outbound commands in an ftp session.
	NumOutboundCmds float64
	// IsHostLogin reports login to a "hot" (root/admin) account.
	IsHostLogin bool
	// IsGuestLogin reports a guest login.
	IsGuestLogin bool

	// --- time-based traffic features 23-31 (2-second window) ---

	// Count is connections to the same destination host in the window.
	Count float64
	// SrvCount is connections to the same service in the window.
	SrvCount float64
	// SerrorRate is the fraction of Count connections with SYN errors.
	SerrorRate float64
	// SrvSerrorRate is the fraction of SrvCount connections with SYN errors.
	SrvSerrorRate float64
	// RerrorRate is the fraction of Count connections with REJ errors.
	RerrorRate float64
	// SrvRerrorRate is the fraction of SrvCount connections with REJ errors.
	SrvRerrorRate float64
	// SameSrvRate is the fraction of Count connections to the same service.
	SameSrvRate float64
	// DiffSrvRate is the fraction of Count connections to different services.
	DiffSrvRate float64
	// SrvDiffHostRate is the fraction of SrvCount connections to different hosts.
	SrvDiffHostRate float64

	// --- host-based traffic features 32-41 (last-100-connections window) ---

	// DstHostCount is connections to the same destination host.
	DstHostCount float64
	// DstHostSrvCount is connections to the same host and service.
	DstHostSrvCount float64
	// DstHostSameSrvRate is the same-service fraction at the host.
	DstHostSameSrvRate float64
	// DstHostDiffSrvRate is the different-service fraction at the host.
	DstHostDiffSrvRate float64
	// DstHostSameSrcPortRate is the same-source-port fraction at the host.
	DstHostSameSrcPortRate float64
	// DstHostSrvDiffHostRate is the different-host fraction per service.
	DstHostSrvDiffHostRate float64
	// DstHostSerrorRate is the SYN-error fraction at the host.
	DstHostSerrorRate float64
	// DstHostSrvSerrorRate is the SYN-error fraction per service.
	DstHostSrvSerrorRate float64
	// DstHostRerrorRate is the REJ-error fraction at the host.
	DstHostRerrorRate float64
	// DstHostSrvRerrorRate is the REJ-error fraction per service.
	DstHostSrvRerrorRate float64

	// Label is the ground-truth label ("normal", "neptune", ...), without
	// the trailing dot.
	Label string
}

// Category returns the record's attack category.
func (r *Record) Category() Category { return CategoryOf(r.Label) }

// IsAttack reports whether the record is labeled as any attack.
func (r *Record) IsAttack() bool {
	c := r.Category()
	return c != Normal && c != Unknown
}

// Validate checks categorical vocabulary membership and value ranges of
// the rate features.
func (r *Record) Validate() error {
	if !contains(Protocols, r.Protocol) {
		return fmt.Errorf("kdd: unknown protocol %q", r.Protocol)
	}
	if !contains(Flags, r.Flag) {
		return fmt.Errorf("kdd: unknown flag %q", r.Flag)
	}
	if r.Service == "" {
		return fmt.Errorf("kdd: empty service")
	}
	if r.Duration < 0 || r.SrcBytes < 0 || r.DstBytes < 0 {
		return fmt.Errorf("kdd: negative volume feature")
	}
	rates := []struct {
		name string
		v    float64
	}{
		{"serror_rate", r.SerrorRate}, {"srv_serror_rate", r.SrvSerrorRate},
		{"rerror_rate", r.RerrorRate}, {"srv_rerror_rate", r.SrvRerrorRate},
		{"same_srv_rate", r.SameSrvRate}, {"diff_srv_rate", r.DiffSrvRate},
		{"srv_diff_host_rate", r.SrvDiffHostRate},
		{"dst_host_same_srv_rate", r.DstHostSameSrvRate},
		{"dst_host_diff_srv_rate", r.DstHostDiffSrvRate},
		{"dst_host_same_src_port_rate", r.DstHostSameSrcPortRate},
		{"dst_host_srv_diff_host_rate", r.DstHostSrvDiffHostRate},
		{"dst_host_serror_rate", r.DstHostSerrorRate},
		{"dst_host_srv_serror_rate", r.DstHostSrvSerrorRate},
		{"dst_host_rerror_rate", r.DstHostRerrorRate},
		{"dst_host_srv_rerror_rate", r.DstHostSrvRerrorRate},
	}
	for _, rate := range rates {
		if rate.v < 0 || rate.v > 1 {
			return fmt.Errorf("kdd: %s = %v outside [0, 1]", rate.name, rate.v)
		}
	}
	return nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// NumericFeatureNames lists the 38 numeric/boolean features in encoding
// order (the 41 features minus the three categorical ones).
var NumericFeatureNames = []string{
	"duration", "src_bytes", "dst_bytes", "land", "wrong_fragment", "urgent",
	"hot", "num_failed_logins", "logged_in", "num_compromised", "root_shell",
	"su_attempted", "num_root", "num_file_creations", "num_shells",
	"num_access_files", "num_outbound_cmds", "is_host_login", "is_guest_login",
	"count", "srv_count", "serror_rate", "srv_serror_rate", "rerror_rate",
	"srv_rerror_rate", "same_srv_rate", "diff_srv_rate", "srv_diff_host_rate",
	"dst_host_count", "dst_host_srv_count", "dst_host_same_srv_rate",
	"dst_host_diff_srv_rate", "dst_host_same_src_port_rate",
	"dst_host_srv_diff_host_rate", "dst_host_serror_rate",
	"dst_host_srv_serror_rate", "dst_host_rerror_rate", "dst_host_srv_rerror_rate",
}

// NumericFeatures returns the record's 38 numeric/boolean features in the
// order of NumericFeatureNames.
func (r *Record) NumericFeatures() []float64 {
	out := make([]float64, len(NumericFeatureNames))
	r.NumericFeaturesInto(out)
	return out
}

// NumericFeaturesInto writes the record's 38 numeric/boolean features into
// dst in the order of NumericFeatureNames, without allocating. It is the
// hot-path kernel under NumericFeatures and Encoder.EncodeInto: the caller
// must guarantee len(dst) >= len(NumericFeatureNames); it panics otherwise.
func (r *Record) NumericFeaturesInto(dst []float64) {
	_ = dst[len(NumericFeatureNames)-1]
	dst[0], dst[1], dst[2] = r.Duration, r.SrcBytes, r.DstBytes
	dst[3], dst[4], dst[5] = b2f(r.Land), r.WrongFragment, r.Urgent
	dst[6], dst[7], dst[8] = r.Hot, r.NumFailedLogins, b2f(r.LoggedIn)
	dst[9], dst[10], dst[11] = r.NumCompromised, r.RootShell, r.SuAttempted
	dst[12], dst[13], dst[14] = r.NumRoot, r.NumFileCreations, r.NumShells
	dst[15], dst[16] = r.NumAccessFiles, r.NumOutboundCmds
	dst[17], dst[18] = b2f(r.IsHostLogin), b2f(r.IsGuestLogin)
	dst[19], dst[20] = r.Count, r.SrvCount
	dst[21], dst[22] = r.SerrorRate, r.SrvSerrorRate
	dst[23], dst[24] = r.RerrorRate, r.SrvRerrorRate
	dst[25], dst[26] = r.SameSrvRate, r.DiffSrvRate
	dst[27] = r.SrvDiffHostRate
	dst[28], dst[29] = r.DstHostCount, r.DstHostSrvCount
	dst[30], dst[31] = r.DstHostSameSrvRate, r.DstHostDiffSrvRate
	dst[32], dst[33] = r.DstHostSameSrcPortRate, r.DstHostSrvDiffHostRate
	dst[34], dst[35] = r.DstHostSerrorRate, r.DstHostSrvSerrorRate
	dst[36], dst[37] = r.DstHostRerrorRate, r.DstHostSrvRerrorRate
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
