package kdd

import (
	"bytes"
	"encoding/json"
	"io"
	"iter"
	"math"
	"strings"
	"testing"
)

// decodeRef is the reference implementation the fast parser must match:
// the json.Decoder loop ghsom-serve used before RecordParser.
func decodeRef(input string) ([]Record, error) {
	dec := json.NewDecoder(strings.NewReader(input))
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// parseFast drains the input through RecordParser.
func parseFast(input string) ([]Record, error) {
	p := NewRecordParser(strings.NewReader(input))
	var out []Record
	for {
		var rec Record
		if err := p.Next(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// recordsBitEqual compares records with float64 bit identity (so -0 vs 0
// and NaN-shaped corruption cannot slip through a == compare).
func recordsBitEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	var va, vb [38]float64
	for i := range a {
		a[i].NumericFeaturesInto(va[:])
		b[i].NumericFeaturesInto(vb[:])
		for j := range va {
			if math.Float64bits(va[j]) != math.Float64bits(vb[j]) {
				return false
			}
		}
		if a[i].Protocol != b[i].Protocol || a[i].Service != b[i].Service ||
			a[i].Flag != b[i].Flag || a[i].Label != b[i].Label ||
			a[i].Land != b[i].Land || a[i].LoggedIn != b[i].LoggedIn ||
			a[i].IsHostLogin != b[i].IsHostLogin || a[i].IsGuestLogin != b[i].IsGuestLogin {
			return false
		}
	}
	return true
}

// checkParserEquivalence asserts RecordParser and json.Decoder agree on
// input: same records bit-for-bit, and errors on the same record index.
func checkParserEquivalence(t *testing.T, input string) {
	t.Helper()
	want, wantErr := decodeRef(input)
	got, gotErr := parseFast(input)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("input %q:\n decoder err: %v\n parser err:  %v", input, wantErr, gotErr)
	}
	if !recordsBitEqual(want, got) {
		t.Fatalf("input %q:\n decoder: %+v\n parser:  %+v", input, want, got)
	}
}

func ndjsonTestInputs() iter.Seq[string] {
	return func(yield func(string) bool) {
		records := columnarTestRecords(40)
		var marshaled bytes.Buffer
		enc := json.NewEncoder(&marshaled)
		for i := range records {
			enc.Encode(&records[i])
		}
		var pretty bytes.Buffer
		ind := json.NewEncoder(&pretty)
		ind.SetIndent("", "  ")
		for i := 0; i < 5; i++ {
			ind.Encode(&records[i])
		}
		inputs := []string{
			"", "   \n\t ", marshaled.String(), pretty.String(),
			// Back-to-back objects with no separator.
			`{"Duration":1}{"Duration":2}`,
			// Unknown keys (skipped), case-folded keys (matched).
			`{"duration": 3.5, "Bogus": {"nested": [1,2,{"x":"}"}]}, "SERVICE": "http"}`,
			`{"Unknown": "value", "Protocol": "tcp"}`,
			// Escaped strings take the slow path but must still parse.
			`{"Service": "ht\u0074p", "Label": "a\"b\\c", "Protocol": "tcp"}`,
			// Number zoo: exact fast path and beyond-15-digit slow path,
			// big exponents, -0, leading-zero errors, overflow.
			`{"Duration": 0.30000000000000004, "SrcBytes": 1e300, "DstBytes": -0}`,
			`{"Duration": 123456789012345678901234567890.5}`,
			`{"Duration": 1E+5, "SrcBytes": 2e-7, "Count": 0.0001}`,
			`{"Duration": 1e999}`,
			`{"Duration": 01}`,
			`{"Duration": +1}`,
			`{"Duration": .5}`,
			`{"Duration": 1.}`,
			`{"Duration": 5e}`,
			`{"Duration": --3}`,
			`{"Duration": NaN}`,
			// Type mismatches: both paths must reject identically.
			`{"Duration": "fast"}`,
			`{"Land": 1}`,
			`{"Protocol": 7}`,
			`{"Duration": true}`,
			// null leaves fields untouched in both.
			`{"Duration": null, "Protocol": null, "Land": null}`,
			// Whole-value type errors.
			`[{"Duration": 1}]`,
			`42`,
			`"just a string"`,
			`true`,
			`null`,
			// Structural damage.
			`{"Duration": 1`,
			`{"Duration"}`,
			`{Duration: 1}`,
			`{"Duration": 1,}`,
			`{"Duration" 1}`,
			`{"Duration": 1} trailing-garbage`,
			`{"Duration": 1}{`,
			// Duplicate keys: last wins in both.
			`{"Duration": 1, "Duration": 2}`,
			// Unicode in symbols.
			`{"Service": "héttp", "Label": "日本語"}`,
		}
		for _, in := range inputs {
			if !yield(in) {
				return
			}
		}
	}
}

func TestRecordParserMatchesJSONDecoder(t *testing.T) {
	for input := range ndjsonTestInputs() {
		checkParserEquivalence(t, input)
	}
}

// TestRecordParserSmallReads feeds the stream one byte at a time so
// every refill/slide boundary inside scanValue is crossed mid-value.
func TestRecordParserSmallReads(t *testing.T) {
	records := columnarTestRecords(30)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range records {
		enc.Encode(&records[i])
	}
	p := NewRecordParser(iotest(buf.Bytes()))
	var got []Record
	for {
		var rec Record
		err := p.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, rec)
	}
	if !recordsBitEqual(records, got) {
		t.Fatal("one-byte-at-a-time parse diverged")
	}
}

// iotest returns a reader yielding one byte per Read call.
func iotest(b []byte) io.Reader { return &oneByteReader{b: b} }

type oneByteReader struct{ b []byte }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	p[0] = r.b[0]
	r.b = r.b[1:]
	return 1, nil
}

// TestRecordParserLargeStreamBuffer checks the buffer does not grow with
// stream length: consumed bytes must be reclaimed across records.
func TestRecordParserLargeStreamBuffer(t *testing.T) {
	records := columnarTestRecords(20)
	var one bytes.Buffer
	enc := json.NewEncoder(&one)
	for i := range records {
		enc.Encode(&records[i])
	}
	// ~200 copies: a few MB of stream through a parser whose buffer must
	// stay near the chunk size.
	p := NewRecordParser(strings.NewReader(strings.Repeat(one.String(), 200)))
	var rec Record
	n := 0
	for {
		err := p.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		n++
	}
	if n != 20*200 {
		t.Fatalf("parsed %d records, want %d", n, 20*200)
	}
	if cap(p.buf) > 4*ndjsonReadChunk {
		t.Fatalf("parser buffer grew to %d bytes on a streaming workload", cap(p.buf))
	}
}

func TestRecordParserOversizedRecord(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"Service": "`)
	b.WriteString(strings.Repeat("x", maxNDJSONRecordBytes+1000))
	b.WriteString(`"}`)
	p := NewRecordParser(strings.NewReader(b.String()))
	var rec Record
	err := p.Next(&rec)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized record: err = %v, want size cap error", err)
	}
}

func TestRecordParserSteadyStateAllocs(t *testing.T) {
	records := columnarTestRecords(100)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range records {
		enc.Encode(&records[i])
	}
	stream := buf.Bytes()
	p := NewRecordParser(bytes.NewReader(stream))
	var rec Record
	// Warm up: buffer growth and vocabulary interning happen here.
	for p.Next(&rec) == nil {
	}
	rd := bytes.NewReader(nil)
	allocs := testing.AllocsPerRun(10, func() {
		rd.Reset(stream)
		p.Reset(rd)
		for {
			if err := p.Next(&rec); err != nil {
				if err != io.EOF {
					t.Fatal(err)
				}
				break
			}
		}
	})
	perRecord := allocs / float64(len(records))
	if perRecord > 0.05 {
		t.Fatalf("fast NDJSON path allocates %.3f/record, want <= 0.05", perRecord)
	}
}

func TestReadRecordsNDJSONCapAndErrors(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	records := columnarTestRecords(10)
	for i := range records {
		enc.Encode(&records[i])
	}
	if _, err := ReadRecordsNDJSON(bytes.NewReader(buf.Bytes()), nil, 5); err == nil ||
		!strings.Contains(err.Error(), "exceeds 5 records") {
		t.Fatalf("cap err = %v", err)
	}
	got, err := ReadRecordsNDJSON(bytes.NewReader(buf.Bytes()), make([]Record, 0, 64), 0)
	if err != nil {
		t.Fatalf("ReadRecordsNDJSON: %v", err)
	}
	if !recordsBitEqual(records, got) {
		t.Fatal("ReadRecordsNDJSON diverged from input")
	}
	// Error position is 1-based like the old readRecords loop.
	_, err = ReadRecordsNDJSON(strings.NewReader(`{"Duration":1}`+"\n"+`{"Duration":bad}`), nil, 0)
	if err == nil || !strings.Contains(err.Error(), "record 2:") {
		t.Fatalf("position err = %v, want record 2", err)
	}
}

// FuzzRecordParserEquivalence cross-checks the fast parser against the
// stock json.Decoder on arbitrary streams: identical records and
// identical accept/reject decisions, never a panic.
func FuzzRecordParserEquivalence(f *testing.F) {
	for input := range ndjsonTestInputs() {
		f.Add(input)
	}
	f.Fuzz(func(t *testing.T, input string) {
		want, wantErr := decodeRef(input)
		got, gotErr := parseFast(input)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("decoder err %v vs parser err %v", wantErr, gotErr)
		}
		if !recordsBitEqual(want, got) {
			t.Fatalf("records diverged:\n decoder: %+v\n parser:  %+v", want, got)
		}
	})
}
