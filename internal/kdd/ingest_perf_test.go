package kdd

import (
	"bytes"
	"testing"
	"time"
)

// TestColumnarIngestSpeedup gates the wire-format acceptance bar: the
// columnar parse+encode dataplane must sustain at least 3x the NDJSON
// path's records/sec. The measured margin is ~15-20x, so the 3x gate has
// an order of magnitude of headroom against machine noise; it exists to
// catch regressions that would erase the format's reason to exist, not
// to benchmark precisely. Skipped with -short (timing-sensitive).
func TestColumnarIngestSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-gated test; skipped with -short")
	}
	records, ndjson, columnar := ingestCorpus(t, 4096)
	enc := NewEncoder(records, EncoderConfig{LogTransform: true})
	flat := make([]float64, len(records)*enc.Dim())

	p := NewRecordParser(bytes.NewReader(ndjson))
	var rec Record
	var cb ColumnarBatch
	// Warm both paths (pools, interning table, symbol bind).
	ingestNDJSON(t, p, enc, ndjson, &rec, flat)
	ingestColumnar(t, &cb, enc, columnar, flat)

	timeIt := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 5; round++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	nd := timeIt(func() { ingestNDJSON(t, p, enc, ndjson, &rec, flat) })
	col := timeIt(func() { ingestColumnar(t, &cb, enc, columnar, flat) })
	ratio := float64(nd) / float64(col)
	t.Logf("parse+encode %d records: ndjson %v, columnar %v (%.1fx)", len(records), nd, col, ratio)
	if ratio < 3 {
		t.Fatalf("columnar parse+encode only %.2fx NDJSON, want >= 3x", ratio)
	}
}
