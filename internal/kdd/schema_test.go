package kdd

import (
	"strings"
	"testing"
)

func TestCategoryOf(t *testing.T) {
	tests := []struct {
		label string
		want  Category
	}{
		{"normal", Normal},
		{"normal.", Normal},
		{"neptune", DoS},
		{"smurf.", DoS},
		{"back", DoS},
		{"teardrop", DoS},
		{"pod", DoS},
		{"land", DoS},
		{"portsweep", Probe},
		{"ipsweep", Probe},
		{"nmap", Probe},
		{"satan", Probe},
		{"guess_passwd", R2L},
		{"warezclient", R2L},
		{"ftp_write", R2L},
		{"imap", R2L},
		{"multihop", R2L},
		{"phf", R2L},
		{"spy", R2L},
		{"warezmaster", R2L},
		{"buffer_overflow", U2R},
		{"rootkit", U2R},
		{"loadmodule", U2R},
		{"perl", U2R},
		{"mystery_attack", Unknown},
		{"", Unknown},
	}
	for _, tt := range tests {
		if got := CategoryOf(tt.label); got != tt.want {
			t.Errorf("CategoryOf(%q) = %v, want %v", tt.label, got, tt.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{
		Normal: "normal", DoS: "dos", Probe: "probe", R2L: "r2l", U2R: "u2r",
		Unknown: "unknown", Category(99): "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

func TestCategories(t *testing.T) {
	cats := Categories()
	if len(cats) != 5 {
		t.Fatalf("Categories() has %d entries", len(cats))
	}
	if cats[0] != Normal || cats[1] != DoS {
		t.Error("Categories order wrong")
	}
}

func TestTrimLabel(t *testing.T) {
	if TrimLabel("smurf.") != "smurf" {
		t.Error("TrimLabel failed to strip dot")
	}
	if TrimLabel("smurf") != "smurf" {
		t.Error("TrimLabel altered clean label")
	}
	if TrimLabel("") != "" {
		t.Error("TrimLabel on empty string")
	}
}

func TestKnownLabelsCoverTaxonomy(t *testing.T) {
	labels := KnownLabels()
	// 1 normal + 10 dos + 6 probe + 16 r2l + 7 u2r, including the
	// corrected-test-set-only attacks.
	if len(labels) != 40 {
		t.Errorf("KnownLabels() has %d labels, want 40", len(labels))
	}
	for _, l := range labels {
		if CategoryOf(l) == Unknown {
			t.Errorf("known label %q maps to Unknown", l)
		}
	}
}

func TestIsNovelLabel(t *testing.T) {
	tests := []struct {
		label string
		want  bool
	}{
		{"neptune", false},  // training-set attack
		{"normal", false},   // training-set label
		{"mailbomb", true},  // test-set-only DoS
		{"mscan", true},     // test-set-only probe
		{"snmpguess", true}, // test-set-only R2L
		{"xterm", true},     // test-set-only U2R
		{"xterm.", true},    // dotted form
		{"not-a-label", false},
	}
	for _, tt := range tests {
		if got := IsNovelLabel(tt.label); got != tt.want {
			t.Errorf("IsNovelLabel(%q) = %v, want %v", tt.label, got, tt.want)
		}
	}
}

func TestRecordCategoryAndIsAttack(t *testing.T) {
	r := Record{Label: "neptune"}
	if r.Category() != DoS || !r.IsAttack() {
		t.Error("neptune should be a DoS attack")
	}
	n := Record{Label: "normal"}
	if n.IsAttack() {
		t.Error("normal flagged as attack")
	}
	u := Record{Label: "weird"}
	if u.IsAttack() {
		t.Error("unknown label should not count as attack by default")
	}
}

func validRecord() Record {
	return Record{
		Duration: 1, Protocol: "tcp", Service: "http", Flag: "SF",
		SrcBytes: 200, DstBytes: 4000, Count: 4, SrvCount: 4,
		SameSrvRate: 1, DstHostCount: 20, DstHostSrvCount: 20,
		DstHostSameSrvRate: 1, Label: "normal",
	}
}

func TestRecordValidate(t *testing.T) {
	r := validRecord()
	if err := r.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Record)
	}{
		{"bad protocol", func(r *Record) { r.Protocol = "sctp" }},
		{"bad flag", func(r *Record) { r.Flag = "XX" }},
		{"empty service", func(r *Record) { r.Service = "" }},
		{"negative bytes", func(r *Record) { r.SrcBytes = -1 }},
		{"negative duration", func(r *Record) { r.Duration = -1 }},
		{"rate above one", func(r *Record) { r.SerrorRate = 1.5 }},
		{"negative rate", func(r *Record) { r.DstHostRerrorRate = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := validRecord()
			tt.mutate(&r)
			if err := r.Validate(); err == nil {
				t.Error("Validate accepted invalid record")
			}
		})
	}
}

func TestNumericFeaturesOrderAndLength(t *testing.T) {
	r := validRecord()
	r.LoggedIn = true
	feats := r.NumericFeatures()
	if len(feats) != len(NumericFeatureNames) {
		t.Fatalf("NumericFeatures has %d values, names list %d", len(feats), len(NumericFeatureNames))
	}
	if len(feats) != 38 {
		t.Fatalf("want 38 numeric features, got %d", len(feats))
	}
	// Spot-check positions against the canonical ordering.
	if feats[0] != r.Duration {
		t.Error("feature 0 should be duration")
	}
	if feats[1] != r.SrcBytes || feats[2] != r.DstBytes {
		t.Error("features 1-2 should be src/dst bytes")
	}
	if feats[8] != 1 { // logged_in
		t.Error("feature 8 should be logged_in = 1")
	}
	if feats[37] != r.DstHostSrvRerrorRate {
		t.Error("feature 37 should be dst_host_srv_rerror_rate")
	}
}

func TestVocabulariesDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for _, f := range Flags {
		if seen[f] {
			t.Errorf("duplicate flag %q", f)
		}
		seen[f] = true
	}
	seen = make(map[string]bool)
	for _, s := range CommonServices {
		if seen[s] {
			t.Errorf("duplicate service %q", s)
		}
		seen[s] = true
	}
	if !seen["other"] {
		t.Error("CommonServices must include the other bucket")
	}
	for _, f := range NumericFeatureNames {
		if strings.Contains(f, " ") {
			t.Errorf("feature name %q contains space", f)
		}
	}
}
