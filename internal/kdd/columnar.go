package kdd

// Columnar batch wire format (magic GHSOMWB1): the binary ingestion
// format of the detection dataplane. One frame carries a batch of
// records column by column — every numeric feature as one contiguous
// run of float64 (or float32) values, every categorical feature as a
// run of small-int codes against a per-frame symbol table — so a
// decoder touches each payload byte exactly once and writes straight
// into the pipeline's pooled row-major batch matrix: no per-record
// parsing, no intermediate Record structs, no per-record allocation.
//
// Frame layout (all integers little-endian):
//
//	magic   [8]byte  "GHSOMWB1"
//	length  uint32   byte length of the frame body (everything below)
//	flags   uint8    bit0: numeric values are float32 (default float64)
//	                 bit1: a label column follows the categorical runs
//	rows    uint32   record count, >= 1
//	nNum    uint16   numeric column count; must equal the schema's 38
//	nCat    uint16   categorical column count; must equal 3
//	symbol tables, in order protocol, service, flag[, label]:
//	    nSyms uint16           1 <= nSyms <= 4096
//	    nSyms x { len uint8, bytes }   symbol names, 1..255 bytes
//	payload:
//	    nNum runs of rows numeric values (8 or 4 bytes each), in
//	        NumericFeatureNames order
//	    3 runs of rows categorical codes (1 byte if the column's table
//	        has <= 256 symbols, else 2), indexing the symbol table
//	    [1 run of rows label codes, same width rule]
//
// The symbol table is the negotiation mechanism: the client writes the
// vocabulary it used, the decoder resolves every symbol against the
// serving encoder once per frame (unknown services fall into the
// encoder's "other" bucket, exactly like the NDJSON path), and the
// per-record work collapses to one table lookup per categorical value.
// A stream may carry any number of frames back to back.
//
// Every frame is validated before use: the body length is capped and
// read incrementally (a hostile header cannot force a proportional
// allocation from a short stream), row and symbol counts are capped,
// the payload length must agree exactly with the declared shape, and
// every categorical code is range-checked against its symbol table.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// ColumnarContentType is the Content-Type that selects the columnar
// wire format on ghsom-serve's /detect endpoint.
const ColumnarContentType = "application/x-ghsom-columnar"

// columnarMagic opens every GHSOMWB1 frame.
var columnarMagic = [8]byte{'G', 'H', 'S', 'O', 'M', 'W', 'B', '1'}

// Frame flag bits.
const (
	columnarFlagF32    = 1 << 0
	columnarFlagLabels = 1 << 1
)

// numCategoricalColumns is the fixed categorical column count of the
// schema: protocol, service, flag.
const numCategoricalColumns = 3

// categoricalNames names the categorical columns for error messages.
var categoricalNames = [numCategoricalColumns]string{"protocol", "service", "flag"}

// Structural caps of one frame, applied before any proportional
// allocation.
const (
	columnarMaxSyms   = 4096
	columnarMaxRows   = 1 << 22
	columnarMaxBytes  = 1 << 30
	columnarReadChunk = 64 << 10
)

// isLogFeature marks the log-transformed numeric columns (see
// logFeatureIdxs) for the columnar encode pass.
var isLogFeature = func() [38]bool {
	var m [38]bool
	for _, i := range logFeatureIdxs {
		m[i] = true
	}
	return m
}()

// ColumnarLimits bounds one frame during ReadColumnarBatch. Zero fields
// fall back to the package caps.
type ColumnarLimits struct {
	// MaxRows caps the record count of one frame.
	MaxRows int
	// MaxFrameBytes caps the body length of one frame.
	MaxFrameBytes int
}

// DefaultColumnarLimits are the package-cap limits.
var DefaultColumnarLimits = ColumnarLimits{MaxRows: columnarMaxRows, MaxFrameBytes: columnarMaxBytes}

// ColumnarBatch is one decoded frame. Its buffers are reused across
// ReadColumnarBatch calls, so a steady-state reader allocates only for
// the per-frame symbol strings. The payload stays in the raw frame
// buffer — decoding to float64 happens during EncodeColumnarRows,
// straight into the caller's row-major matrix.
type ColumnarBatch struct {
	rows      int
	f32       bool
	hasLabels bool
	// buf holds the raw frame body; all offsets below index it.
	buf []byte
	// numOff is the offset of the first numeric run.
	numOff int
	// catOff/catW locate the categorical code runs and their code width.
	catOff [numCategoricalColumns]int
	catW   [numCategoricalColumns]int
	// labelOff/labelW locate the optional label run.
	labelOff, labelW int
	// syms holds the frame's symbol tables: protocol, service, flag,
	// label (label only when hasLabels).
	syms [numCategoricalColumns + 1][]string
	// resolved maps each categorical column's codes to offsets inside
	// the encoder's one-hot block (-1 = symbol unknown to the encoder).
	// Built by Encoder.BindColumnar, reused across frames.
	resolved [numCategoricalColumns][]int32
	bound    bool
}

// Rows returns the frame's record count.
func (cb *ColumnarBatch) Rows() int { return cb.rows }

// Float32 reports whether the frame carries float32 numeric values.
func (cb *ColumnarBatch) Float32() bool { return cb.f32 }

// HasLabels reports whether the frame carries a ground-truth label
// column (training and evaluation traffic; the serving path ignores it).
func (cb *ColumnarBatch) HasLabels() bool { return cb.hasLabels }

// Label returns record r's label, or "" when the frame has none.
func (cb *ColumnarBatch) Label(r int) string {
	if !cb.hasLabels || r < 0 || r >= cb.rows {
		return ""
	}
	return cb.syms[numCategoricalColumns][cb.code(cb.labelOff, cb.labelW, r)]
}

// AppendLabels appends all labels to dst (no-op when the frame has no
// label column) and returns the extended slice.
func (cb *ColumnarBatch) AppendLabels(dst []string) []string {
	if !cb.hasLabels {
		return dst
	}
	for r := 0; r < cb.rows; r++ {
		dst = append(dst, cb.Label(r))
	}
	return dst
}

// code reads one categorical code.
func (cb *ColumnarBatch) code(off, w, r int) int {
	if w == 1 {
		return int(cb.buf[off+r])
	}
	return int(binary.LittleEndian.Uint16(cb.buf[off+2*r:]))
}

// numeric reads one numeric value from column j, record r.
func (cb *ColumnarBatch) numeric(j, r int) float64 {
	if cb.f32 {
		off := cb.numOff + (j*cb.rows+r)*4
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(cb.buf[off:])))
	}
	off := cb.numOff + (j*cb.rows+r)*8
	return math.Float64frombits(binary.LittleEndian.Uint64(cb.buf[off:]))
}

// Record materializes record r as a Record struct — the slow path for
// tooling and tests; the serving dataplane never calls it.
func (cb *ColumnarBatch) Record(r int) (Record, error) {
	if r < 0 || r >= cb.rows {
		return Record{}, fmt.Errorf("kdd: columnar record %d of %d", r, cb.rows)
	}
	var vals [38]float64
	for j := range vals {
		vals[j] = cb.numeric(j, r)
	}
	rec := recordFromNumeric(vals)
	rec.Protocol = cb.syms[0][cb.code(cb.catOff[0], cb.catW[0], r)]
	rec.Service = cb.syms[1][cb.code(cb.catOff[1], cb.catW[1], r)]
	rec.Flag = cb.syms[2][cb.code(cb.catOff[2], cb.catW[2], r)]
	rec.Label = cb.Label(r)
	return rec, nil
}

// recordFromNumeric is the inverse of Record.NumericFeaturesInto.
func recordFromNumeric(v [38]float64) Record {
	return Record{
		Duration: v[0], SrcBytes: v[1], DstBytes: v[2],
		Land: v[3] != 0, WrongFragment: v[4], Urgent: v[5],
		Hot: v[6], NumFailedLogins: v[7], LoggedIn: v[8] != 0,
		NumCompromised: v[9], RootShell: v[10], SuAttempted: v[11],
		NumRoot: v[12], NumFileCreations: v[13], NumShells: v[14],
		NumAccessFiles: v[15], NumOutboundCmds: v[16],
		IsHostLogin: v[17] != 0, IsGuestLogin: v[18] != 0,
		Count: v[19], SrvCount: v[20],
		SerrorRate: v[21], SrvSerrorRate: v[22],
		RerrorRate: v[23], SrvRerrorRate: v[24],
		SameSrvRate: v[25], DiffSrvRate: v[26], SrvDiffHostRate: v[27],
		DstHostCount: v[28], DstHostSrvCount: v[29],
		DstHostSameSrvRate: v[30], DstHostDiffSrvRate: v[31],
		DstHostSameSrcPortRate: v[32], DstHostSrvDiffHostRate: v[33],
		DstHostSerrorRate: v[34], DstHostSrvSerrorRate: v[35],
		DstHostRerrorRate: v[36], DstHostSrvRerrorRate: v[37],
	}
}

// codeWidth is the wire width of codes against an n-symbol table.
func codeWidth(n int) int {
	if n <= 256 {
		return 1
	}
	return 2
}

// ReadColumnarBatch reads and validates the next frame from r into cb,
// reusing cb's buffers. It returns io.EOF (exactly) when the stream is
// cleanly exhausted before a frame starts; any other failure — truncated
// frame, bad magic, cap violation, shape disagreement, out-of-range
// code — returns a descriptive error. After a successful read the
// previous contents of cb are gone; the frame's payload is only valid
// until the next call.
func ReadColumnarBatch(r io.Reader, cb *ColumnarBatch, lim ColumnarLimits) error {
	if lim.MaxRows <= 0 || lim.MaxRows > columnarMaxRows {
		lim.MaxRows = columnarMaxRows
	}
	if lim.MaxFrameBytes <= 0 || lim.MaxFrameBytes > columnarMaxBytes {
		lim.MaxFrameBytes = columnarMaxBytes
	}
	var pre [12]byte
	if _, err := io.ReadFull(r, pre[:1]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("kdd: read columnar frame: %w", err)
	}
	if _, err := io.ReadFull(r, pre[1:]); err != nil {
		return fmt.Errorf("kdd: read columnar frame header: %w", noEOF(err))
	}
	if [8]byte(pre[:8]) != columnarMagic {
		return fmt.Errorf("kdd: not a columnar frame (magic %q)", pre[:8])
	}
	bodyLen := int(binary.LittleEndian.Uint32(pre[8:]))
	if bodyLen > lim.MaxFrameBytes {
		return fmt.Errorf("kdd: columnar frame of %d bytes exceeds cap %d", bodyLen, lim.MaxFrameBytes)
	}
	// Minimum body: flags + rows + nNum + nCat + three 1-symbol tables.
	if bodyLen < 1+4+2+2+3*(2+2) {
		return fmt.Errorf("kdd: columnar frame body of %d bytes too short", bodyLen)
	}
	// Read the body incrementally, growing only as bytes actually
	// arrive, so a corrupt length cannot force a large allocation from
	// a short stream.
	buf := cb.buf[:0]
	for len(buf) < bodyLen {
		k := min(bodyLen-len(buf), columnarReadChunk)
		if cap(buf) < len(buf)+k {
			buf = append(buf, make([]byte, k)...)
		} else {
			buf = buf[:len(buf)+k]
		}
		if _, err := io.ReadFull(r, buf[len(buf)-k:]); err != nil {
			cb.buf = buf[:0]
			return fmt.Errorf("kdd: read columnar frame body: %w", noEOF(err))
		}
	}
	cb.buf = buf
	if err := cb.parse(lim); err != nil {
		cb.rows = 0
		return err
	}
	return nil
}

// noEOF turns a bare io.EOF into io.ErrUnexpectedEOF: only a clean
// stream end before any frame byte is a true EOF.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// parse validates the frame body in cb.buf and records the payload
// offsets.
func (cb *ColumnarBatch) parse(lim ColumnarLimits) error {
	buf := cb.buf
	flags := buf[0]
	if flags&^(columnarFlagF32|columnarFlagLabels) != 0 {
		return fmt.Errorf("kdd: columnar frame has unknown flags %#x", flags)
	}
	cb.f32 = flags&columnarFlagF32 != 0
	cb.hasLabels = flags&columnarFlagLabels != 0
	rows := int(binary.LittleEndian.Uint32(buf[1:]))
	if rows < 1 || rows > lim.MaxRows {
		return fmt.Errorf("kdd: columnar frame has %d rows, want [1, %d]", rows, lim.MaxRows)
	}
	cb.rows = rows
	nNum := int(binary.LittleEndian.Uint16(buf[5:]))
	nCat := int(binary.LittleEndian.Uint16(buf[7:]))
	if nNum != len(NumericFeatureNames) || nCat != numCategoricalColumns {
		return fmt.Errorf("kdd: columnar frame has %dx%d columns, want %dx%d (schema mismatch)",
			nNum, nCat, len(NumericFeatureNames), numCategoricalColumns)
	}
	off := 9
	nTables := numCategoricalColumns
	if cb.hasLabels {
		nTables++
	}
	for t := 0; t < nTables; t++ {
		cb.syms[t] = cb.syms[t][:0]
		if off+2 > len(buf) {
			return fmt.Errorf("kdd: columnar frame truncated in symbol table %d", t)
		}
		nSyms := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if nSyms < 1 || nSyms > columnarMaxSyms {
			return fmt.Errorf("kdd: columnar symbol table %d has %d symbols, want [1, %d]", t, nSyms, columnarMaxSyms)
		}
		for s := 0; s < nSyms; s++ {
			if off >= len(buf) {
				return fmt.Errorf("kdd: columnar frame truncated in symbol table %d", t)
			}
			slen := int(buf[off])
			off++
			if slen < 1 {
				return fmt.Errorf("kdd: columnar symbol table %d has an empty symbol", t)
			}
			if off+slen > len(buf) {
				return fmt.Errorf("kdd: columnar frame truncated in symbol table %d", t)
			}
			cb.syms[t] = append(cb.syms[t], string(buf[off:off+slen]))
			off += slen
		}
	}
	if !cb.hasLabels {
		cb.syms[numCategoricalColumns] = cb.syms[numCategoricalColumns][:0]
	}

	// Payload shape must agree exactly with the header: every column is
	// a full run of rows values, nothing more, nothing less.
	valSize := 8
	if cb.f32 {
		valSize = 4
	}
	want := nNum * rows * valSize
	cb.numOff = off
	for c := 0; c < numCategoricalColumns; c++ {
		cb.catW[c] = codeWidth(len(cb.syms[c]))
		cb.catOff[c] = off + want
		want += rows * cb.catW[c]
	}
	if cb.hasLabels {
		cb.labelW = codeWidth(len(cb.syms[numCategoricalColumns]))
		cb.labelOff = off + want
		want += rows * cb.labelW
	} else {
		cb.labelOff, cb.labelW = 0, 0
	}
	if len(buf)-off != want {
		return fmt.Errorf("kdd: columnar payload of %d bytes disagrees with declared shape (%d rows -> %d bytes)",
			len(buf)-off, rows, want)
	}

	// Range-check every categorical code against its table up front, so
	// the encode pass can index the resolution tables unguarded.
	for c := 0; c < numCategoricalColumns; c++ {
		n := len(cb.syms[c])
		for r := 0; r < rows; r++ {
			if code := cb.code(cb.catOff[c], cb.catW[c], r); code >= n {
				return fmt.Errorf("kdd: record %d: %s code %d outside symbol table of %d", r, categoricalNames[c], code, n)
			}
		}
	}
	if cb.hasLabels {
		n := len(cb.syms[numCategoricalColumns])
		for r := 0; r < rows; r++ {
			if code := cb.code(cb.labelOff, cb.labelW, r); code >= n {
				return fmt.Errorf("kdd: record %d: label code %d outside symbol table of %d", r, code, n)
			}
		}
	}
	cb.bound = false
	return nil
}

// BindColumnar resolves the frame's symbol tables against the encoder's
// vocabulary: every (column, code) pair maps to an offset inside the
// encoded one-hot block, computed once per frame. Unknown services fall
// into the encoder's "other" bucket — identical to the NDJSON path —
// while unknown protocols or flags resolve to -1 and only fail when a
// record actually uses them (EncodeColumnarRows reports the record).
func (e *Encoder) BindColumnar(cb *ColumnarBatch) error {
	if cb.rows == 0 {
		return fmt.Errorf("kdd: bind an empty columnar batch")
	}
	svcBase := len(Protocols)
	flagBase := len(Protocols) + len(e.services)
	for c := 0; c < numCategoricalColumns; c++ {
		res := cb.resolved[c][:0]
		for _, sym := range cb.syms[c] {
			idx := -1
			switch c {
			case 0:
				if i, ok := e.protoIdx[sym]; ok {
					idx = i
				}
			case 1:
				i, ok := e.svcIndex[sym]
				if !ok {
					i = e.svcIndex[e.cfg.OtherService]
				}
				idx = svcBase + i
			case 2:
				if i, ok := e.flagIdx[sym]; ok {
					idx = flagBase + i
				}
			}
			res = append(res, int32(idx))
		}
		cb.resolved[c] = res
	}
	cb.bound = true
	return nil
}

// EncodeColumnarRows encodes frame records [lo, hi) into the row-major
// matrix dst — record lo+r occupies dst[r*Dim() : (r+1)*Dim()] — with
// the same semantics as EncodeInto on the equivalent Record (log1p on
// the heavy-tailed columns, one-hot categoricals, unknown services in
// the other bucket). The frame must have been bound to this encoder
// with BindColumnar. The pass is allocation-free: numeric runs stream
// from the raw frame buffer into dst, and categoricals are one table
// lookup per value. Errors report absolute record indices.
func (e *Encoder) EncodeColumnarRows(cb *ColumnarBatch, lo, hi int, dst []float64) error {
	if !cb.bound {
		return fmt.Errorf("kdd: columnar batch not bound to an encoder")
	}
	if lo < 0 || hi > cb.rows || lo > hi {
		return fmt.Errorf("kdd: columnar rows [%d, %d) outside batch of %d", lo, hi, cb.rows)
	}
	d := e.Dim()
	n := hi - lo
	if len(dst) < n*d {
		return fmt.Errorf("kdd: encode %d columnar rows into buffer of length %d, want >= %d", n, len(dst), n*d)
	}
	nNum := len(NumericFeatureNames)
	logT := e.cfg.LogTransform

	// Numeric columns: one sequential scan of each run, strided writes
	// into the row-major destination.
	for j := 0; j < nNum; j++ {
		lg := logT && isLogFeature[j]
		if cb.f32 {
			base := cb.numOff + (j*cb.rows+lo)*4
			for r := 0; r < n; r++ {
				v := float64(math.Float32frombits(binary.LittleEndian.Uint32(cb.buf[base+4*r:])))
				if lg {
					v = math.Log1p(v)
				}
				dst[r*d+j] = v
			}
		} else {
			base := cb.numOff + (j*cb.rows+lo)*8
			for r := 0; r < n; r++ {
				v := math.Float64frombits(binary.LittleEndian.Uint64(cb.buf[base+8*r:]))
				if lg {
					v = math.Log1p(v)
				}
				dst[r*d+j] = v
			}
		}
	}
	// One-hot region: zero then set one bit per categorical column.
	for r := 0; r < n; r++ {
		oh := dst[r*d+nNum : r*d+d]
		for i := range oh {
			oh[i] = 0
		}
	}
	for c := 0; c < numCategoricalColumns; c++ {
		res := cb.resolved[c]
		w := cb.catW[c]
		base := cb.catOff[c] + lo*w
		for r := 0; r < n; r++ {
			off := res[cb.code(base, w, r)]
			if off < 0 {
				return fmt.Errorf("record %d: kdd: encode: unknown %s %q",
					lo+r, categoricalNames[c], cb.syms[c][cb.code(base, w, r)])
			}
			dst[r*d+nNum+int(off)] = 1
		}
	}
	return nil
}

// ColumnarWriteOptions controls WriteColumnarBatch.
type ColumnarWriteOptions struct {
	// Float32 writes numeric columns as float32 — half the bytes, at
	// the cost of exact equivalence with the NDJSON encoding.
	Float32 bool
	// Labels appends the records' ground-truth labels as an extra
	// column (training and evaluation traffic; serving ignores it).
	Labels bool
}

// WriteColumnarBatch writes records as one GHSOMWB1 frame. The symbol
// tables carry each categorical column's distinct values in order of
// first appearance. Large streams should be split across frames (a few
// thousand records each) so receivers can bound per-frame memory.
func WriteColumnarBatch(w io.Writer, records []Record, opts ColumnarWriteOptions) error {
	if len(records) == 0 {
		return fmt.Errorf("kdd: write empty columnar batch")
	}
	if len(records) > columnarMaxRows {
		return fmt.Errorf("kdd: columnar batch of %d records exceeds cap %d", len(records), columnarMaxRows)
	}
	nTables := numCategoricalColumns
	if opts.Labels {
		nTables++
	}
	syms := make([][]string, nTables)
	idx := make([]map[string]int, nTables)
	codes := make([][]int, nTables)
	for t := range idx {
		idx[t] = make(map[string]int)
		codes[t] = make([]int, len(records))
	}
	colVal := func(rec *Record, t int) string {
		switch t {
		case 0:
			return rec.Protocol
		case 1:
			return rec.Service
		case 2:
			return rec.Flag
		default:
			return rec.Label
		}
	}
	for i := range records {
		for t := 0; t < nTables; t++ {
			v := colVal(&records[i], t)
			if len(v) < 1 || len(v) > 255 {
				return fmt.Errorf("kdd: record %d: %s %q not encodable as a symbol (1..255 bytes)",
					i, tableName(t), v)
			}
			j, ok := idx[t][v]
			if !ok {
				j = len(syms[t])
				if j >= columnarMaxSyms {
					return fmt.Errorf("kdd: %s column exceeds %d distinct symbols", tableName(t), columnarMaxSyms)
				}
				idx[t][v] = j
				syms[t] = append(syms[t], v)
			}
			codes[t][i] = j
		}
	}

	valSize := 8
	flags := byte(0)
	if opts.Float32 {
		valSize = 4
		flags |= columnarFlagF32
	}
	if opts.Labels {
		flags |= columnarFlagLabels
	}
	bodyLen := 9
	for t := 0; t < nTables; t++ {
		bodyLen += 2
		for _, s := range syms[t] {
			bodyLen += 1 + len(s)
		}
	}
	bodyLen += len(NumericFeatureNames) * len(records) * valSize
	for t := 0; t < nTables; t++ {
		bodyLen += len(records) * codeWidth(len(syms[t]))
	}
	if bodyLen > columnarMaxBytes {
		return fmt.Errorf("kdd: columnar frame of %d bytes exceeds cap %d; split the batch", bodyLen, columnarMaxBytes)
	}

	le := binary.LittleEndian
	buf := make([]byte, 0, 12+bodyLen)
	buf = append(buf, columnarMagic[:]...)
	buf = le.AppendUint32(buf, uint32(bodyLen))
	buf = append(buf, flags)
	buf = le.AppendUint32(buf, uint32(len(records)))
	buf = le.AppendUint16(buf, uint16(len(NumericFeatureNames)))
	buf = le.AppendUint16(buf, numCategoricalColumns)
	for t := 0; t < nTables; t++ {
		buf = le.AppendUint16(buf, uint16(len(syms[t])))
		for _, s := range syms[t] {
			buf = append(buf, byte(len(s)))
			buf = append(buf, s...)
		}
	}
	// Transpose row-major records into column-major runs in one pass.
	nNum := len(NumericFeatureNames)
	numeric := make([]float64, nNum*len(records))
	var vals [38]float64
	for i := range records {
		records[i].NumericFeaturesInto(vals[:])
		for j := 0; j < nNum; j++ {
			numeric[j*len(records)+i] = vals[j]
		}
	}
	for _, v := range numeric {
		if opts.Float32 {
			buf = le.AppendUint32(buf, math.Float32bits(float32(v)))
		} else {
			buf = le.AppendUint64(buf, math.Float64bits(v))
		}
	}
	for t := 0; t < nTables; t++ {
		w := codeWidth(len(syms[t]))
		for i := range records {
			if w == 1 {
				buf = append(buf, byte(codes[t][i]))
			} else {
				buf = le.AppendUint16(buf, uint16(codes[t][i]))
			}
		}
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("kdd: write columnar frame: %w", err)
	}
	return nil
}

// tableName names a symbol table for error messages.
func tableName(t int) string {
	if t < numCategoricalColumns {
		return categoricalNames[t]
	}
	return "label"
}
