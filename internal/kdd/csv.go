package kdd

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// fieldCount is the number of CSV fields in a kddcup.data row: 41 features
// plus the label.
const fieldCount = 42

// ParseFields builds a Record from the 42 CSV fields of one kddcup.data
// row.
func ParseFields(fields []string) (Record, error) {
	if len(fields) != fieldCount {
		return Record{}, fmt.Errorf("kdd: row has %d fields, want %d", len(fields), fieldCount)
	}
	var r Record
	var err error
	idx := 0
	nextF := func(name string) float64 {
		if err != nil {
			return 0
		}
		v, convErr := strconv.ParseFloat(fields[idx], 64)
		if convErr != nil {
			err = fmt.Errorf("kdd: field %d (%s) = %q: %w", idx, name, fields[idx], convErr)
		}
		idx++
		return v
	}
	nextS := func() string {
		s := fields[idx]
		idx++
		return s
	}
	nextB := func(name string) bool { return nextF(name) != 0 }

	r.Duration = nextF("duration")
	r.Protocol = nextS()
	r.Service = nextS()
	r.Flag = nextS()
	r.SrcBytes = nextF("src_bytes")
	r.DstBytes = nextF("dst_bytes")
	r.Land = nextB("land")
	r.WrongFragment = nextF("wrong_fragment")
	r.Urgent = nextF("urgent")
	r.Hot = nextF("hot")
	r.NumFailedLogins = nextF("num_failed_logins")
	r.LoggedIn = nextB("logged_in")
	r.NumCompromised = nextF("num_compromised")
	r.RootShell = nextF("root_shell")
	r.SuAttempted = nextF("su_attempted")
	r.NumRoot = nextF("num_root")
	r.NumFileCreations = nextF("num_file_creations")
	r.NumShells = nextF("num_shells")
	r.NumAccessFiles = nextF("num_access_files")
	r.NumOutboundCmds = nextF("num_outbound_cmds")
	r.IsHostLogin = nextB("is_host_login")
	r.IsGuestLogin = nextB("is_guest_login")
	r.Count = nextF("count")
	r.SrvCount = nextF("srv_count")
	r.SerrorRate = nextF("serror_rate")
	r.SrvSerrorRate = nextF("srv_serror_rate")
	r.RerrorRate = nextF("rerror_rate")
	r.SrvRerrorRate = nextF("srv_rerror_rate")
	r.SameSrvRate = nextF("same_srv_rate")
	r.DiffSrvRate = nextF("diff_srv_rate")
	r.SrvDiffHostRate = nextF("srv_diff_host_rate")
	r.DstHostCount = nextF("dst_host_count")
	r.DstHostSrvCount = nextF("dst_host_srv_count")
	r.DstHostSameSrvRate = nextF("dst_host_same_srv_rate")
	r.DstHostDiffSrvRate = nextF("dst_host_diff_srv_rate")
	r.DstHostSameSrcPortRate = nextF("dst_host_same_src_port_rate")
	r.DstHostSrvDiffHostRate = nextF("dst_host_srv_diff_host_rate")
	r.DstHostSerrorRate = nextF("dst_host_serror_rate")
	r.DstHostSrvSerrorRate = nextF("dst_host_srv_serror_rate")
	r.DstHostRerrorRate = nextF("dst_host_rerror_rate")
	r.DstHostSrvRerrorRate = nextF("dst_host_srv_rerror_rate")
	r.Label = TrimLabel(nextS())
	if err != nil {
		return Record{}, err
	}
	return r, nil
}

// Fields renders the record as the 42 CSV fields of the kddcup.data
// format. Integral values print without decimals; rates print with up to
// two decimals, matching the original files.
func (r *Record) Fields() []string {
	fInt := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	fRate := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
	fBool := func(b bool) string {
		if b {
			return "1"
		}
		return "0"
	}
	return []string{
		fInt(r.Duration), r.Protocol, r.Service, r.Flag,
		fInt(r.SrcBytes), fInt(r.DstBytes), fBool(r.Land),
		fInt(r.WrongFragment), fInt(r.Urgent), fInt(r.Hot),
		fInt(r.NumFailedLogins), fBool(r.LoggedIn), fInt(r.NumCompromised),
		fInt(r.RootShell), fInt(r.SuAttempted), fInt(r.NumRoot),
		fInt(r.NumFileCreations), fInt(r.NumShells), fInt(r.NumAccessFiles),
		fInt(r.NumOutboundCmds), fBool(r.IsHostLogin), fBool(r.IsGuestLogin),
		fInt(r.Count), fInt(r.SrvCount),
		fRate(r.SerrorRate), fRate(r.SrvSerrorRate), fRate(r.RerrorRate),
		fRate(r.SrvRerrorRate), fRate(r.SameSrvRate), fRate(r.DiffSrvRate),
		fRate(r.SrvDiffHostRate), fInt(r.DstHostCount), fInt(r.DstHostSrvCount),
		fRate(r.DstHostSameSrvRate), fRate(r.DstHostDiffSrvRate),
		fRate(r.DstHostSameSrcPortRate), fRate(r.DstHostSrvDiffHostRate),
		fRate(r.DstHostSerrorRate), fRate(r.DstHostSrvSerrorRate),
		fRate(r.DstHostRerrorRate), fRate(r.DstHostSrvRerrorRate),
		r.Label + ".",
	}
}

// ReadAll parses an entire kddcup.data stream. Malformed rows abort with
// an error identifying the line.
func ReadAll(rd io.Reader) ([]Record, error) {
	cr := csv.NewReader(bufio.NewReader(rd))
	cr.FieldsPerRecord = fieldCount
	cr.ReuseRecord = true
	var out []Record
	line := 0
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("kdd: line %d: %w", line, err)
		}
		rec, err := ParseFields(fields)
		if err != nil {
			return nil, fmt.Errorf("kdd: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

// WriteAll writes records in kddcup.data CSV format.
func WriteAll(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	for i := range records {
		if err := cw.Write(records[i].Fields()); err != nil {
			return fmt.Errorf("kdd: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("kdd: flush: %w", err)
	}
	return bw.Flush()
}
