package kdd

// Allocation-lean NDJSON record parsing: the legacy /detect wire format.
//
// encoding/json's Decoder costs several allocations and a reflection
// walk per record, which at PR-5 detection rates makes the wire step
// more expensive than the math. RecordParser keeps the generality of
// the stream format (whitespace-separated JSON values, exactly like
// json.Decoder) but parses the overwhelmingly common shape — a flat
// object with exact Go field names, plain strings, plain numbers —
// with a hand-rolled scanner that reuses one buffer and interns the
// small categorical vocabularies, so the steady state allocates
// nothing per record. Anything outside that shape (escaped strings,
// case-folded or unknown keys, nested values, malformed numbers) falls
// back to json.Unmarshal over the same bytes, so accepted inputs and
// error behavior match the stock decoder.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// maxNDJSONRecordBytes caps one JSON value in the stream; a request
// body is additionally capped by the HTTP layer.
const maxNDJSONRecordBytes = 1 << 20

// ndjsonReadChunk is the refill granularity of the parser's buffer.
const ndjsonReadChunk = 32 << 10

// RecordParser reads a stream of JSON-encoded Records — newline- or
// whitespace-separated, exactly the values json.Decoder would accept.
// It is not safe for concurrent use; pool parsers across requests via
// Reset.
type RecordParser struct {
	r      io.Reader
	buf    []byte
	pos    int  // next unread byte in buf
	eof    bool // underlying reader exhausted
	intern map[string]string
}

// NewRecordParser returns a parser reading from r.
func NewRecordParser(r io.Reader) *RecordParser {
	p := &RecordParser{intern: make(map[string]string, 64)}
	p.Reset(r)
	return p
}

// Reset rebinds the parser to a new stream, keeping its buffer and
// intern table (the categorical vocabularies are shared across
// requests, which is exactly why interning pays).
func (p *RecordParser) Reset(r io.Reader) {
	p.r = r
	p.buf = p.buf[:0]
	p.pos = 0
	p.eof = false
}

// Next parses the next record in the stream into rec (which is zeroed
// first). It returns io.EOF exactly when the stream ends cleanly before
// another value starts.
func (p *RecordParser) Next(rec *Record) error {
	if err := p.skipSpace(); err != nil {
		return err // io.EOF here is a clean end of stream
	}
	val, err := p.scanValue()
	if err != nil {
		return err
	}
	*rec = Record{}
	if val[0] == '{' {
		if p.parseObjectFast(val, rec) {
			return nil
		}
		*rec = Record{}
	}
	// Fallback: bytes outside the fast shape go through the stock
	// decoder for identical accept/reject behavior.
	if err := json.Unmarshal(val, rec); err != nil {
		return err
	}
	return nil
}

// fill discards the consumed prefix of the buffer and appends up to
// ndjsonReadChunk more bytes from the reader. It returns how many bytes
// were discarded: p.pos is adjusted here, but any extra indices a caller
// holds into p.buf must be reduced by the same amount.
func (p *RecordParser) fill() (int, error) {
	if p.eof {
		return 0, io.EOF
	}
	slid := 0
	if p.pos > 0 {
		slid = p.pos
		n := copy(p.buf, p.buf[p.pos:])
		p.buf = p.buf[:n]
		p.pos = 0
	}
	if len(p.buf) >= maxNDJSONRecordBytes {
		return slid, fmt.Errorf("kdd: JSON record exceeds %d bytes", maxNDJSONRecordBytes)
	}
	start := len(p.buf)
	if cap(p.buf) < start+ndjsonReadChunk {
		grown := make([]byte, start, start+ndjsonReadChunk)
		copy(grown, p.buf)
		p.buf = grown
	}
	n, err := p.r.Read(p.buf[start : start+ndjsonReadChunk])
	p.buf = p.buf[:start+n]
	if err == io.EOF {
		p.eof = true
		if n == 0 {
			return slid, io.EOF
		}
		return slid, nil
	}
	return slid, err
}

// peek returns the next byte without consuming it, refilling as needed.
func (p *RecordParser) peek() (byte, error) {
	for p.pos >= len(p.buf) {
		if _, err := p.fill(); err != nil {
			return 0, err
		}
	}
	return p.buf[p.pos], nil
}

func isJSONSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// skipSpace consumes inter-value whitespace; io.EOF means clean end.
func (p *RecordParser) skipSpace() error {
	for {
		c, err := p.peek()
		if err != nil {
			return err
		}
		if !isJSONSpace(c) {
			return nil
		}
		p.pos++
	}
}

// scanValue consumes one complete JSON value and returns its bytes
// (valid until the next fill). Objects and arrays are scanned with
// string-aware brace balancing; scalars run to the next delimiter.
// The scan start equals p.pos throughout, so after a fill (which slides
// consumed bytes out and moves p.pos) the value always begins at p.pos.
func (p *RecordParser) scanValue() ([]byte, error) {
	c := p.buf[p.pos]
	// refill extends the buffer so index i (relative to p.pos) exists;
	// it returns the adjusted absolute index.
	refill := func(i int) (int, error) {
		for i >= len(p.buf) {
			slid, err := p.fill()
			i -= slid
			if err != nil {
				return i, err
			}
		}
		return i, nil
	}
	switch c {
	case '{', '[':
		depth := 0
		inStr, esc := false, false
		for i := p.pos; ; i++ {
			var err error
			if i, err = refill(i); err != nil {
				return nil, unexpectedEnd(err)
			}
			b := p.buf[i]
			switch {
			case esc:
				esc = false
			case inStr && b == '\\':
				esc = true
			case b == '"':
				inStr = !inStr
			case !inStr && (b == '{' || b == '['):
				depth++
			case !inStr && (b == '}' || b == ']'):
				depth--
				if depth == 0 {
					start := p.pos
					p.pos = i + 1
					return p.buf[start : i+1], nil
				}
			}
		}
	case '"':
		esc := false
		for i := p.pos + 1; ; i++ {
			var err error
			if i, err = refill(i); err != nil {
				return nil, unexpectedEnd(err)
			}
			b := p.buf[i]
			if esc {
				esc = false
			} else if b == '\\' {
				esc = true
			} else if b == '"' {
				start := p.pos
				p.pos = i + 1
				return p.buf[start : i+1], nil
			}
		}
	default:
		// Scalar: number / true / false / null (or garbage the fallback
		// will reject). Runs to whitespace or a structural delimiter.
		for i := p.pos; ; i++ {
			var err error
			if i, err = refill(i); err != nil {
				if err == io.EOF {
					start := p.pos
					p.pos = len(p.buf)
					return p.buf[start:], nil
				}
				return nil, err
			}
			b := p.buf[i]
			if isJSONSpace(b) || b == ',' || b == '}' || b == ']' || b == '{' || b == '[' || b == '"' {
				if i == p.pos {
					// A delimiter where a value must begin ("," / "}" /
					// ...): invalid JSON, same verdict as json.Decoder.
					return nil, fmt.Errorf("kdd: invalid character %q looking for beginning of value", b)
				}
				start := p.pos
				p.pos = i
				return p.buf[start:i], nil
			}
		}
	}
}

func unexpectedEnd(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// parseObjectFast parses a flat Record object with exact field names.
// It reports false — leaving rec partially written — whenever the input
// steps outside the fast shape; the caller falls back to json.Unmarshal
// over the same bytes.
func (p *RecordParser) parseObjectFast(val []byte, rec *Record) bool {
	i := 1 // past '{'
	skip := func() {
		for i < len(val) && isJSONSpace(val[i]) {
			i++
		}
	}
	skip()
	if i < len(val) && val[i] == '}' {
		return i == len(val)-1
	}
	for {
		skip()
		if i >= len(val) || val[i] != '"' {
			return false
		}
		// Key: plain string, no escapes.
		i++
		ks := i
		for i < len(val) && val[i] != '"' && val[i] != '\\' {
			i++
		}
		if i >= len(val) || val[i] == '\\' {
			return false
		}
		key := val[ks:i]
		i++
		skip()
		if i >= len(val) || val[i] != ':' {
			return false
		}
		i++
		skip()
		if i >= len(val) {
			return false
		}
		if !p.assignField(key, val, &i, rec) {
			return false
		}
		skip()
		if i >= len(val) {
			return false
		}
		switch val[i] {
		case ',':
			i++
		case '}':
			// Must be the last byte of the scanned value.
			return i == len(val)-1
		default:
			return false
		}
	}
}

// assignField parses the value at val[*i] into the field named key.
// Unknown keys, type mismatches, and out-of-shape values report false.
func (p *RecordParser) assignField(key, val []byte, i *int, rec *Record) bool {
	var fp *float64
	var bp *bool
	var sp *string
	switch string(key) { // compiler avoids allocation for this conversion
	case "Duration":
		fp = &rec.Duration
	case "SrcBytes":
		fp = &rec.SrcBytes
	case "DstBytes":
		fp = &rec.DstBytes
	case "WrongFragment":
		fp = &rec.WrongFragment
	case "Urgent":
		fp = &rec.Urgent
	case "Hot":
		fp = &rec.Hot
	case "NumFailedLogins":
		fp = &rec.NumFailedLogins
	case "NumCompromised":
		fp = &rec.NumCompromised
	case "RootShell":
		fp = &rec.RootShell
	case "SuAttempted":
		fp = &rec.SuAttempted
	case "NumRoot":
		fp = &rec.NumRoot
	case "NumFileCreations":
		fp = &rec.NumFileCreations
	case "NumShells":
		fp = &rec.NumShells
	case "NumAccessFiles":
		fp = &rec.NumAccessFiles
	case "NumOutboundCmds":
		fp = &rec.NumOutboundCmds
	case "Count":
		fp = &rec.Count
	case "SrvCount":
		fp = &rec.SrvCount
	case "SerrorRate":
		fp = &rec.SerrorRate
	case "SrvSerrorRate":
		fp = &rec.SrvSerrorRate
	case "RerrorRate":
		fp = &rec.RerrorRate
	case "SrvRerrorRate":
		fp = &rec.SrvRerrorRate
	case "SameSrvRate":
		fp = &rec.SameSrvRate
	case "DiffSrvRate":
		fp = &rec.DiffSrvRate
	case "SrvDiffHostRate":
		fp = &rec.SrvDiffHostRate
	case "DstHostCount":
		fp = &rec.DstHostCount
	case "DstHostSrvCount":
		fp = &rec.DstHostSrvCount
	case "DstHostSameSrvRate":
		fp = &rec.DstHostSameSrvRate
	case "DstHostDiffSrvRate":
		fp = &rec.DstHostDiffSrvRate
	case "DstHostSameSrcPortRate":
		fp = &rec.DstHostSameSrcPortRate
	case "DstHostSrvDiffHostRate":
		fp = &rec.DstHostSrvDiffHostRate
	case "DstHostSerrorRate":
		fp = &rec.DstHostSerrorRate
	case "DstHostSrvSerrorRate":
		fp = &rec.DstHostSrvSerrorRate
	case "DstHostRerrorRate":
		fp = &rec.DstHostRerrorRate
	case "DstHostSrvRerrorRate":
		fp = &rec.DstHostSrvRerrorRate
	case "Land":
		bp = &rec.Land
	case "LoggedIn":
		bp = &rec.LoggedIn
	case "IsHostLogin":
		bp = &rec.IsHostLogin
	case "IsGuestLogin":
		bp = &rec.IsGuestLogin
	case "Protocol":
		sp = &rec.Protocol
	case "Service":
		sp = &rec.Service
	case "Flag":
		sp = &rec.Flag
	case "Label":
		sp = &rec.Label
	default:
		// Unknown key: json.Unmarshal would skip it case-insensitively
		// or match a field case-folded — either way, not our fast shape.
		return false
	}

	// null leaves any field untouched, matching encoding/json.
	if hasPrefix(val[*i:], "null") {
		*i += 4
		return true
	}
	switch {
	case fp != nil:
		v, n, ok := parseJSONNumber(val[*i:])
		if !ok {
			return false
		}
		*fp = v
		*i += n
		return true
	case bp != nil:
		if hasPrefix(val[*i:], "true") {
			*bp = true
			*i += 4
			return true
		}
		if hasPrefix(val[*i:], "false") {
			*bp = false
			*i += 5
			return true
		}
		return false
	default:
		if val[*i] != '"' {
			return false
		}
		j := *i + 1
		for j < len(val) && val[j] != '"' && val[j] != '\\' {
			j++
		}
		if j >= len(val) || val[j] == '\\' {
			return false // escapes take the slow path
		}
		*sp = p.internString(val[*i+1 : j])
		*i = j + 1
		return true
	}
}

func hasPrefix(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[:len(s)]) == s
}

// internString returns a string for b, reusing a previously allocated
// copy when the same bytes have been seen. The categorical vocabularies
// (protocols, services, flags, labels) are tiny, so after warm-up this
// never allocates. Oversized or high-cardinality values skip the table.
func (p *RecordParser) internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > 64 || len(p.intern) >= 4096 {
		return string(b)
	}
	if s, ok := p.intern[string(b)]; ok { // no-alloc map lookup idiom
		return s
	}
	s := string(b)
	p.intern[s] = s
	return s
}

// parseJSONNumber parses a strict JSON number at the head of b,
// returning the value, bytes consumed, and ok. It refuses anything the
// JSON grammar refuses (leading '+', bare '.', leading zeros) so the
// fallback path produces the canonical error instead. The common case —
// ≤ 15 significant digits, decimal exponent within ±22 — is computed
// exactly with one float multiply/divide, which is correctly rounded
// and therefore bit-identical to strconv.ParseFloat; everything else
// defers to strconv on a copied string (rare).
func parseJSONNumber(b []byte) (float64, int, bool) {
	i := 0
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	if i >= len(b) || b[i] < '0' || b[i] > '9' {
		return 0, 0, false
	}
	// Integer part: '0' alone or nonzero-led digit run.
	if b[i] == '0' {
		i++
		if i < len(b) && b[i] >= '0' && b[i] <= '9' {
			return 0, 0, false // leading zero
		}
	} else {
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	intEnd := i
	fracStart, fracEnd := i, i
	if i < len(b) && b[i] == '.' {
		i++
		fracStart = i
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, 0, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		fracEnd = i
	}
	exp := 0

	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++

		expNeg := false
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			expNeg = b[i] == '-'
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, 0, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			if exp < 10000 {
				exp = exp*10 + int(b[i]-'0')
			}
			i++
		}
		if expNeg {
			exp = -exp
		}
	}
	end := i

	// Fast exact path.
	intStart := 0
	if neg {
		intStart = 1
	}
	nd := (intEnd - intStart) + (fracEnd - fracStart)
	if nd <= 15 {
		mant := uint64(0)
		for _, c := range b[intStart:intEnd] {
			mant = mant*10 + uint64(c-'0')
		}
		for _, c := range b[fracStart:fracEnd] {
			mant = mant*10 + uint64(c-'0')
		}
		e10 := exp - (fracEnd - fracStart)
		if e10 >= -22 && e10 <= 22 && mant <= 1<<53 {
			v := float64(mant)
			if e10 > 0 {
				v *= pow10Table[e10]
			} else if e10 < 0 {
				v /= pow10Table[-e10]
			}
			if neg {
				v = -v
			}
			return v, end, true
		}
	}
	v, err := strconv.ParseFloat(string(b[:end]), 64)
	if err != nil {
		// Overflow: encoding/json reports its own error; take slow path.
		return 0, 0, false
	}
	if math.IsInf(v, 0) {
		return 0, 0, false
	}
	return v, end, true
}

// pow10Table holds the exactly-representable powers of ten 1e0..1e22.
var pow10Table = [23]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// ReadRecordsNDJSON parses a whole NDJSON stream with the fast parser,
// appending to dst (which may be nil or a pooled slice with spare
// capacity). maxRecords > 0 caps the count. Errors report 1-based
// record positions like the json.Decoder loop it replaces.
func ReadRecordsNDJSON(r io.Reader, dst []Record, maxRecords int) ([]Record, error) {
	p := NewRecordParser(r)
	return p.AppendAll(dst, maxRecords)
}

// AppendAll drains the parser's stream into dst.
func (p *RecordParser) AppendAll(dst []Record, maxRecords int) ([]Record, error) {
	for line := len(dst) + 1; ; line++ {
		var rec Record
		if len(dst) < cap(dst) {
			dst = dst[:len(dst)+1]
			err := p.Next(&dst[len(dst)-1])
			if err == io.EOF {
				return dst[:len(dst)-1], nil
			}
			if err != nil {
				return dst[:len(dst)-1], fmt.Errorf("record %d: %w", line, err)
			}
		} else {
			err := p.Next(&rec)
			if err == io.EOF {
				return dst, nil
			}
			if err != nil {
				return dst, fmt.Errorf("record %d: %w", line, err)
			}
			dst = append(dst, rec)
		}
		if maxRecords > 0 && len(dst) > maxRecords {
			return dst, fmt.Errorf("request exceeds %d records", maxRecords)
		}
	}
}
