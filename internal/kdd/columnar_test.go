package kdd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// columnarTestRecords builds a deterministic, varied batch: every
// protocol and flag, known and unknown services, boolean toggles, and
// heavy-tailed volume features that exercise the log transform.
func columnarTestRecords(n int) []Record {
	rng := rand.New(rand.NewSource(7))
	services := []string{"http", "smtp", "ftp_data", "uucp_path", "telnet", "weird_svc_42"}
	labels := []string{"normal", "neptune", "portsweep", "guess_passwd", "mailbomb"}
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			Duration:               float64(rng.Intn(5000)),
			Protocol:               Protocols[rng.Intn(len(Protocols))],
			Service:                services[rng.Intn(len(services))],
			Flag:                   Flags[rng.Intn(len(Flags))],
			SrcBytes:               float64(rng.Intn(1 << 20)),
			DstBytes:               float64(rng.Intn(1 << 16)),
			Land:                   rng.Intn(2) == 1,
			WrongFragment:          float64(rng.Intn(3)),
			Hot:                    float64(rng.Intn(10)),
			LoggedIn:               rng.Intn(2) == 1,
			IsGuestLogin:           rng.Intn(2) == 1,
			Count:                  float64(rng.Intn(511)),
			SrvCount:               float64(rng.Intn(511)),
			SerrorRate:             rng.Float64(),
			SameSrvRate:            rng.Float64(),
			DstHostCount:           float64(rng.Intn(256)),
			DstHostSrvCount:        float64(rng.Intn(256)),
			DstHostSameSrcPortRate: rng.Float64(),
			Label:                  labels[rng.Intn(len(labels))],
		}
	}
	return out
}

func mustFrame(t testing.TB, records []Record, opts ColumnarWriteOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteColumnarBatch(&buf, records, opts); err != nil {
		t.Fatalf("WriteColumnarBatch: %v", err)
	}
	return buf.Bytes()
}

func TestColumnarRoundTripRecords(t *testing.T) {
	records := columnarTestRecords(257)
	frame := mustFrame(t, records, ColumnarWriteOptions{Labels: true})

	var cb ColumnarBatch
	if err := ReadColumnarBatch(bytes.NewReader(frame), &cb, ColumnarLimits{}); err != nil {
		t.Fatalf("ReadColumnarBatch: %v", err)
	}
	if cb.Rows() != len(records) {
		t.Fatalf("Rows = %d, want %d", cb.Rows(), len(records))
	}
	if !cb.HasLabels() {
		t.Fatal("HasLabels = false, want true")
	}
	for i := range records {
		got, err := cb.Record(i)
		if err != nil {
			t.Fatalf("Record(%d): %v", i, err)
		}
		if got != records[i] {
			t.Fatalf("record %d round trip:\n got %+v\nwant %+v", i, got, records[i])
		}
	}
	labels := cb.AppendLabels(nil)
	for i := range records {
		if labels[i] != records[i].Label {
			t.Fatalf("label %d = %q, want %q", i, labels[i], records[i].Label)
		}
	}
}

func TestColumnarEncodeMatchesEncodeBatch(t *testing.T) {
	records := columnarTestRecords(100)
	for _, tc := range []struct {
		name string
		cfg  EncoderConfig
	}{
		{"log", EncoderConfig{LogTransform: true}},
		{"nolog", EncoderConfig{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Encoder trained WITHOUT the unseen services, so
			// "uucp_path" and "weird_svc_42" hit the other bucket on
			// both paths.
			enc := NewEncoder(nil, tc.cfg)
			d := enc.Dim()

			want := make([]float64, len(records)*d)
			if err := enc.EncodeBatch(records, want); err != nil {
				t.Fatalf("EncodeBatch: %v", err)
			}

			frame := mustFrame(t, records, ColumnarWriteOptions{Labels: true})
			var cb ColumnarBatch
			if err := ReadColumnarBatch(bytes.NewReader(frame), &cb, ColumnarLimits{}); err != nil {
				t.Fatalf("ReadColumnarBatch: %v", err)
			}
			if err := enc.BindColumnar(&cb); err != nil {
				t.Fatalf("BindColumnar: %v", err)
			}
			got := make([]float64, len(records)*d)
			// Encode in two sub-ranges to exercise lo/hi offsets.
			mid := len(records) / 3
			if err := enc.EncodeColumnarRows(&cb, 0, mid, got[:mid*d]); err != nil {
				t.Fatalf("EncodeColumnarRows lo: %v", err)
			}
			if err := enc.EncodeColumnarRows(&cb, mid, len(records), got[mid*d:]); err != nil {
				t.Fatalf("EncodeColumnarRows hi: %v", err)
			}
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("element %d (record %d, col %d): columnar %v != row %v",
						i, i/d, i%d, got[i], want[i])
				}
			}
		})
	}
}

func TestColumnarEncodeZeroAlloc(t *testing.T) {
	records := columnarTestRecords(512)
	frame := mustFrame(t, records, ColumnarWriteOptions{})
	enc := NewEncoder(nil, EncoderConfig{LogTransform: true})
	var cb ColumnarBatch
	if err := ReadColumnarBatch(bytes.NewReader(frame), &cb, ColumnarLimits{}); err != nil {
		t.Fatalf("ReadColumnarBatch: %v", err)
	}
	if err := enc.BindColumnar(&cb); err != nil {
		t.Fatalf("BindColumnar: %v", err)
	}
	dst := make([]float64, len(records)*enc.Dim())
	allocs := testing.AllocsPerRun(20, func() {
		if err := enc.EncodeColumnarRows(&cb, 0, len(records), dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeColumnarRows allocates %v times per call, want 0", allocs)
	}
}

func TestColumnarFloat32Mode(t *testing.T) {
	records := columnarTestRecords(64)
	frame := mustFrame(t, records, ColumnarWriteOptions{Float32: true, Labels: true})
	var cb ColumnarBatch
	if err := ReadColumnarBatch(bytes.NewReader(frame), &cb, ColumnarLimits{}); err != nil {
		t.Fatalf("ReadColumnarBatch: %v", err)
	}
	if !cb.Float32() {
		t.Fatal("Float32 = false, want true")
	}
	// f32 mode must equal EncodeBatch over the float32-rounded records.
	rounded := make([]Record, len(records))
	copy(rounded, records)
	var vals [38]float64
	for i := range rounded {
		rounded[i].NumericFeaturesInto(vals[:])
		for j := range vals {
			vals[j] = float64(float32(vals[j]))
		}
		rec := recordFromNumeric(vals)
		rec.Protocol, rec.Service, rec.Flag, rec.Label =
			rounded[i].Protocol, rounded[i].Service, rounded[i].Flag, rounded[i].Label
		rounded[i] = rec
	}
	enc := NewEncoder(nil, EncoderConfig{LogTransform: true})
	d := enc.Dim()
	want := make([]float64, len(records)*d)
	if err := enc.EncodeBatch(rounded, want); err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	if err := enc.BindColumnar(&cb); err != nil {
		t.Fatalf("BindColumnar: %v", err)
	}
	got := make([]float64, len(records)*d)
	if err := enc.EncodeColumnarRows(&cb, 0, len(records), got); err != nil {
		t.Fatalf("EncodeColumnarRows: %v", err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("element %d: f32 columnar %v != rounded row %v", i, got[i], want[i])
		}
	}
}

func TestColumnarMultiFrameStream(t *testing.T) {
	var stream bytes.Buffer
	batches := [][]Record{columnarTestRecords(10), columnarTestRecords(300), columnarTestRecords(1)}
	for _, b := range batches {
		if err := WriteColumnarBatch(&stream, b, ColumnarWriteOptions{Labels: true}); err != nil {
			t.Fatalf("WriteColumnarBatch: %v", err)
		}
	}
	r := bytes.NewReader(stream.Bytes())
	var cb ColumnarBatch
	var total, frames int
	for {
		err := ReadColumnarBatch(r, &cb, ColumnarLimits{})
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		if cb.Rows() != len(batches[frames]) {
			t.Fatalf("frame %d: rows = %d, want %d", frames, cb.Rows(), len(batches[frames]))
		}
		total += cb.Rows()
		frames++
	}
	if frames != 3 || total != 311 {
		t.Fatalf("read %d frames / %d rows, want 3 / 311", frames, total)
	}
}

func TestColumnarUnknownProtocolReportsRecord(t *testing.T) {
	records := columnarTestRecords(5)
	records[3].Protocol = "sctp"
	frame := mustFrame(t, records, ColumnarWriteOptions{})
	var cb ColumnarBatch
	if err := ReadColumnarBatch(bytes.NewReader(frame), &cb, ColumnarLimits{}); err != nil {
		t.Fatalf("ReadColumnarBatch: %v", err)
	}
	enc := NewEncoder(nil, EncoderConfig{})
	if err := enc.BindColumnar(&cb); err != nil {
		t.Fatalf("BindColumnar: %v", err)
	}
	dst := make([]float64, len(records)*enc.Dim())
	err := enc.EncodeColumnarRows(&cb, 0, len(records), dst)
	if err == nil || !strings.Contains(err.Error(), "record 3") ||
		!strings.Contains(err.Error(), `unknown protocol "sctp"`) {
		t.Fatalf("EncodeColumnarRows error = %v, want record 3 / unknown protocol", err)
	}
}

// corrupt returns a copy of frame with buf[off] replaced.
func corrupt(frame []byte, off int, b byte) []byte {
	out := bytes.Clone(frame)
	out[off] = b
	return out
}

func TestColumnarAdversarialFrames(t *testing.T) {
	records := columnarTestRecords(4)
	frame := mustFrame(t, records, ColumnarWriteOptions{Labels: true})
	le := binary.LittleEndian

	cases := []struct {
		name    string
		frame   []byte
		lim     ColumnarLimits
		wantSub string
	}{
		{"bad magic", corrupt(frame, 0, 'X'), ColumnarLimits{}, "magic"},
		{"unknown flags", corrupt(frame, 12, 0xF0), ColumnarLimits{}, "unknown flags"},
		{"zero rows", func() []byte {
			f := bytes.Clone(frame)
			le.PutUint32(f[13:], 0)
			return f
		}(), ColumnarLimits{}, "rows"},
		{"rows over limit", frame, ColumnarLimits{MaxRows: 3}, "rows"},
		{"frame over byte limit", frame, ColumnarLimits{MaxFrameBytes: 64}, "exceeds cap"},
		{"wrong numeric column count", func() []byte {
			f := bytes.Clone(frame)
			le.PutUint16(f[17:], 37)
			return f
		}(), ColumnarLimits{}, "schema mismatch"},
		{"wrong categorical column count", func() []byte {
			f := bytes.Clone(frame)
			le.PutUint16(f[19:], 4)
			return f
		}(), ColumnarLimits{}, "schema mismatch"},
		{"zero symbols", func() []byte {
			f := bytes.Clone(frame)
			le.PutUint16(f[21:], 0)
			return f
		}(), ColumnarLimits{}, "symbol table"},
		{"symbol table overrun", func() []byte {
			f := bytes.Clone(frame)
			le.PutUint16(f[21:], 60000)
			return f
		}(), ColumnarLimits{}, "symbol table"},
		{"truncated body", frame[:len(frame)-5], ColumnarLimits{}, "unexpected EOF"},
		{"huge claimed length, short stream", func() []byte {
			f := bytes.Clone(frame[:64])
			le.PutUint32(f[8:], 1<<29)
			return f
		}(), ColumnarLimits{}, "unexpected EOF"},
		{"payload shape mismatch", func() []byte {
			// Shrink the declared body length by one: payload no longer
			// agrees with rows x columns.
			f := bytes.Clone(frame[:len(frame)-1])
			le.PutUint32(f[8:], le.Uint32(f[8:])-1)
			return f
		}(), ColumnarLimits{}, "disagrees"},
		{"out-of-range categorical code", func() []byte {
			// Protocol codes sit right after the numeric runs; smash one
			// to an index past the table.
			f := bytes.Clone(frame)
			var cb ColumnarBatch
			if err := ReadColumnarBatch(bytes.NewReader(frame), &cb, ColumnarLimits{}); err != nil {
				t.Fatalf("setup read: %v", err)
			}
			f[12+cb.catOff[0]] = 0xFF
			return f
		}(), ColumnarLimits{}, "outside symbol table"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var cb ColumnarBatch
			err := ReadColumnarBatch(bytes.NewReader(tc.frame), &cb, tc.lim)
			if err == nil || err == io.EOF {
				t.Fatalf("ReadColumnarBatch = %v, want error containing %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestColumnarHugeLengthNoAllocationBlowup(t *testing.T) {
	// A frame claiming a near-cap body backed by a tiny stream must fail
	// with unexpected EOF after reading only what arrived — the chunked
	// body reader must not allocate the claimed size up front.
	var hdr bytes.Buffer
	hdr.WriteString("GHSOMWB1")
	var lenB [4]byte
	binary.LittleEndian.PutUint32(lenB[:], 1<<29)
	hdr.Write(lenB[:])
	hdr.Write(make([]byte, 100))
	var cb ColumnarBatch
	err := ReadColumnarBatch(bytes.NewReader(hdr.Bytes()), &cb, ColumnarLimits{})
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
	if cap(cb.buf) > 1<<20 {
		t.Fatalf("reader grew buffer to %d bytes for a 100-byte stream", cap(cb.buf))
	}
}

func TestColumnarBatchReuseAcrossFrames(t *testing.T) {
	big := mustFrame(t, columnarTestRecords(500), ColumnarWriteOptions{Labels: true})
	small := mustFrame(t, columnarTestRecords(3), ColumnarWriteOptions{})
	enc := NewEncoder(nil, EncoderConfig{LogTransform: true})
	var cb ColumnarBatch
	for i, tc := range []struct {
		frame      []byte
		wantLabels bool
	}{{big, true}, {small, false}, {big, true}} {
		if err := ReadColumnarBatch(bytes.NewReader(tc.frame), &cb, ColumnarLimits{}); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if cb.HasLabels() != tc.wantLabels {
			t.Fatalf("frame %d: HasLabels = %v, want %v (state leaked across reuse)", i, cb.HasLabels(), tc.wantLabels)
		}
		if err := enc.BindColumnar(&cb); err != nil {
			t.Fatalf("bind %d: %v", i, err)
		}
		dst := make([]float64, cb.Rows()*enc.Dim())
		if err := enc.EncodeColumnarRows(&cb, 0, cb.Rows(), dst); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
}

func TestColumnarEncodeRequiresBind(t *testing.T) {
	frame := mustFrame(t, columnarTestRecords(2), ColumnarWriteOptions{})
	var cb ColumnarBatch
	if err := ReadColumnarBatch(bytes.NewReader(frame), &cb, ColumnarLimits{}); err != nil {
		t.Fatalf("read: %v", err)
	}
	enc := NewEncoder(nil, EncoderConfig{})
	dst := make([]float64, 2*enc.Dim())
	if err := enc.EncodeColumnarRows(&cb, 0, 2, dst); err == nil {
		t.Fatal("EncodeColumnarRows without BindColumnar succeeded")
	}
}

func TestWriteColumnarBatchRejectsBadSymbols(t *testing.T) {
	rec := columnarTestRecords(1)
	rec[0].Service = ""
	var buf bytes.Buffer
	if err := WriteColumnarBatch(&buf, rec, ColumnarWriteOptions{}); err == nil {
		t.Fatal("empty service accepted")
	}
	rec[0].Service = strings.Repeat("x", 256)
	if err := WriteColumnarBatch(&buf, rec, ColumnarWriteOptions{}); err == nil {
		t.Fatal("256-byte service accepted")
	}
	if err := WriteColumnarBatch(&buf, nil, ColumnarWriteOptions{}); err == nil {
		t.Fatal("empty batch accepted")
	}
}
