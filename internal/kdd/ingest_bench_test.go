package kdd

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// ingestCorpus renders n deterministic records in both wire formats.
func ingestCorpus(tb testing.TB, n int) (records []Record, ndjson, columnar []byte) {
	tb.Helper()
	records = columnarTestRecords(n)
	var nd bytes.Buffer
	enc := json.NewEncoder(&nd)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			tb.Fatal(err)
		}
	}
	var col bytes.Buffer
	if err := WriteColumnarBatch(&col, records, ColumnarWriteOptions{}); err != nil {
		tb.Fatal(err)
	}
	return records, nd.Bytes(), col.Bytes()
}

// ingestNDJSON parses the NDJSON corpus and encodes every record into
// flat — the legacy ingestion dataplane (with the pooled fast parser).
func ingestNDJSON(tb testing.TB, p *RecordParser, enc *Encoder, ndjson []byte, rec *Record, flat []float64) int {
	tb.Helper()
	p.Reset(bytes.NewReader(ndjson))
	d := enc.Dim()
	n := 0
	for {
		if err := p.Next(rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			tb.Fatal(err)
		}
		if err := enc.EncodeInto(rec, flat[n*d:(n+1)*d]); err != nil {
			tb.Fatal(err)
		}
		n++
	}
	return n
}

// ingestColumnar parses the columnar corpus and encodes every record
// into flat — the zero-copy ingestion dataplane.
func ingestColumnar(tb testing.TB, cb *ColumnarBatch, enc *Encoder, columnar []byte, flat []float64) int {
	tb.Helper()
	if err := ReadColumnarBatch(bytes.NewReader(columnar), cb, DefaultColumnarLimits); err != nil {
		tb.Fatal(err)
	}
	if err := enc.BindColumnar(cb); err != nil {
		tb.Fatal(err)
	}
	if err := enc.EncodeColumnarRows(cb, 0, cb.Rows(), flat); err != nil {
		tb.Fatal(err)
	}
	return cb.Rows()
}

func BenchmarkIngestNDJSON(b *testing.B) {
	records, ndjson, _ := ingestCorpus(b, 4096)
	enc := NewEncoder(records, EncoderConfig{LogTransform: true})
	flat := make([]float64, len(records)*enc.Dim())
	p := NewRecordParser(bytes.NewReader(ndjson))
	var rec Record
	b.SetBytes(int64(len(ndjson)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ingestNDJSON(b, p, enc, ndjson, &rec, flat); got != len(records) {
			b.Fatalf("parsed %d records, want %d", got, len(records))
		}
	}
}

func BenchmarkIngestNDJSONStdlib(b *testing.B) {
	records, ndjson, _ := ingestCorpus(b, 4096)
	enc := NewEncoder(records, EncoderConfig{LogTransform: true})
	flat := make([]float64, len(records)*enc.Dim())
	d := enc.Dim()
	b.SetBytes(int64(len(ndjson)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := json.NewDecoder(bytes.NewReader(ndjson))
		n := 0
		for dec.More() {
			var rec Record
			if err := dec.Decode(&rec); err != nil {
				b.Fatal(err)
			}
			if err := enc.EncodeInto(&rec, flat[n*d:(n+1)*d]); err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(records) {
			b.Fatalf("parsed %d records, want %d", n, len(records))
		}
	}
}

func BenchmarkIngestColumnar(b *testing.B) {
	records, _, columnar := ingestCorpus(b, 4096)
	enc := NewEncoder(records, EncoderConfig{LogTransform: true})
	flat := make([]float64, len(records)*enc.Dim())
	var cb ColumnarBatch
	b.SetBytes(int64(len(columnar)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ingestColumnar(b, &cb, enc, columnar, flat); got != len(records) {
			b.Fatalf("parsed %d records, want %d", got, len(records))
		}
	}
}
