package kdd

import (
	"math"
	"strings"
	"testing"
)

func TestEncoderDimAndNames(t *testing.T) {
	e := NewEncoder(nil, EncoderConfig{})
	wantDim := 38 + len(Protocols) + len(e.Services()) + len(Flags)
	if e.Dim() != wantDim {
		t.Errorf("Dim = %d, want %d", e.Dim(), wantDim)
	}
	names := e.FeatureNames()
	if len(names) != e.Dim() {
		t.Fatalf("FeatureNames has %d entries, dim %d", len(names), e.Dim())
	}
	if names[0] != "duration" {
		t.Errorf("first feature = %q", names[0])
	}
	var protoSeen, svcSeen, flagSeen bool
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "protocol="):
			protoSeen = true
		case strings.HasPrefix(n, "service="):
			svcSeen = true
		case strings.HasPrefix(n, "flag="):
			flagSeen = true
		}
	}
	if !protoSeen || !svcSeen || !flagSeen {
		t.Error("one-hot name blocks missing")
	}
}

func TestEncodeOneHot(t *testing.T) {
	e := NewEncoder(nil, EncoderConfig{})
	r := validRecord()
	v, err := e.Encode(&r)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != e.Dim() {
		t.Fatalf("encoded dim %d, want %d", len(v), e.Dim())
	}
	names := e.FeatureNames()
	// Exactly one 1 in each categorical block, at the right name.
	blocks := map[string]string{
		"protocol=": "protocol=tcp",
		"service=":  "service=http",
		"flag=":     "flag=SF",
	}
	for prefix, wantHot := range blocks {
		var ones int
		for i, n := range names {
			if !strings.HasPrefix(n, prefix) {
				continue
			}
			if v[i] == 1 {
				ones++
				if n != wantHot {
					t.Errorf("hot dimension %q, want %q", n, wantHot)
				}
			} else if v[i] != 0 {
				t.Errorf("one-hot dim %q has value %v", n, v[i])
			}
		}
		if ones != 1 {
			t.Errorf("block %q has %d hot dims", prefix, ones)
		}
	}
}

func TestEncodeUnknownServiceFallsToOther(t *testing.T) {
	e := NewEncoder(nil, EncoderConfig{})
	r := validRecord()
	r.Service = "never_seen_service"
	v, err := e.Encode(&r)
	if err != nil {
		t.Fatal(err)
	}
	names := e.FeatureNames()
	for i, n := range names {
		if n == "service=other" && v[i] != 1 {
			t.Error("unknown service did not fall into other bucket")
		}
	}
}

func TestEncodeVocabularyFromRecords(t *testing.T) {
	r := validRecord()
	r.Service = "exotic_svc"
	e := NewEncoder([]Record{r}, EncoderConfig{})
	found := false
	for _, s := range e.Services() {
		if s == "exotic_svc" {
			found = true
		}
	}
	if !found {
		t.Error("observed service missing from vocabulary")
	}
	v, err := e.Encode(&r)
	if err != nil {
		t.Fatal(err)
	}
	names := e.FeatureNames()
	for i, n := range names {
		if n == "service=exotic_svc" && v[i] != 1 {
			t.Error("observed service not one-hot encoded at its own dimension")
		}
	}
}

func TestEncodeRejectsUnknownProtocolAndFlag(t *testing.T) {
	e := NewEncoder(nil, EncoderConfig{})
	r := validRecord()
	r.Protocol = "gre"
	if _, err := e.Encode(&r); err == nil {
		t.Error("unknown protocol accepted")
	}
	r = validRecord()
	r.Flag = "??"
	if _, err := e.Encode(&r); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestEncodeLogTransform(t *testing.T) {
	r := validRecord()
	r.SrcBytes = math.E - 1 // log1p = 1
	plain := NewEncoder(nil, EncoderConfig{})
	logged := NewEncoder(nil, EncoderConfig{LogTransform: true})
	vp, err := plain.Encode(&r)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := logged.Encode(&r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vp[1]-(math.E-1)) > 1e-12 {
		t.Errorf("plain src_bytes = %v", vp[1])
	}
	if math.Abs(vl[1]-1) > 1e-12 {
		t.Errorf("log src_bytes = %v, want 1", vl[1])
	}
	// Rates must be untouched by the log transform.
	if vp[25] != vl[25] {
		t.Error("log transform touched a rate feature")
	}
}

func TestEncodeAll(t *testing.T) {
	e := NewEncoder(nil, EncoderConfig{})
	r1 := validRecord()
	r2 := validRecord()
	r2.Protocol = "udp"
	r2.Service = "domain_u"
	vs, err := e.EncodeAll([]Record{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("EncodeAll returned %d vectors", len(vs))
	}
	bad := validRecord()
	bad.Flag = "NOPE"
	if _, err := e.EncodeAll([]Record{r1, bad}); err == nil {
		t.Error("EncodeAll accepted bad record")
	}
}

// batchTestRecords returns a varied set of encodable records: every
// protocol and flag, known and unknown services, log-transformed volume
// features at several magnitudes.
func batchTestRecords() []Record {
	var out []Record
	services := []string{"http", "smtp", "nosuch_svc", "other", "telnet", "weird-9"}
	for i, proto := range []string{"tcp", "udp", "icmp"} {
		for j, flag := range Flags {
			r := validRecord()
			r.Protocol = proto
			r.Flag = flag
			r.Service = services[(i+j)%len(services)]
			r.SrcBytes = float64(i * 1000)
			r.DstBytes = float64(j * j)
			r.Count = float64(i + j)
			r.LoggedIn = j%2 == 0
			out = append(out, r)
		}
	}
	return out
}

// TestEncodeIntoAndBatchMatchEncode verifies the allocation-free kernels
// are byte-identical to Encode: EncodeInto on a dirty buffer, and
// EncodeBatch rows of a shared flat matrix.
func TestEncodeIntoAndBatchMatchEncode(t *testing.T) {
	records := batchTestRecords()
	for _, logT := range []bool{false, true} {
		e := NewEncoder(records, EncoderConfig{LogTransform: logT})
		d := e.Dim()
		flat := make([]float64, len(records)*d)
		for i := range flat {
			flat[i] = math.NaN() // dirty buffer: every element must be overwritten
		}
		if err := e.EncodeBatch(records, flat); err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, d)
		for i := range records {
			want, err := e.Encode(&records[i])
			if err != nil {
				t.Fatal(err)
			}
			for j := range dst {
				dst[j] = 7.5 // dirty single-row buffer too
			}
			if err := e.EncodeInto(&records[i], dst); err != nil {
				t.Fatal(err)
			}
			row := flat[i*d : (i+1)*d]
			for j := range want {
				if dst[j] != want[j] {
					t.Fatalf("logT=%v record %d dim %d: EncodeInto %v, Encode %v", logT, i, j, dst[j], want[j])
				}
				if row[j] != want[j] {
					t.Fatalf("logT=%v record %d dim %d: EncodeBatch %v, Encode %v", logT, i, j, row[j], want[j])
				}
			}
		}
	}
}

func TestEncodeIntoValidation(t *testing.T) {
	e := NewEncoder(nil, EncoderConfig{})
	r := validRecord()
	if err := e.EncodeInto(&r, make([]float64, e.Dim()-1)); err == nil {
		t.Error("short buffer accepted")
	}
	if err := e.EncodeBatch([]Record{r, r}, make([]float64, e.Dim())); err == nil {
		t.Error("short batch buffer accepted")
	}
	bad := validRecord()
	bad.Flag = "XX"
	err := e.EncodeBatch([]Record{r, bad}, make([]float64, 2*e.Dim()))
	if err == nil || !strings.Contains(err.Error(), "record 1") {
		t.Errorf("bad record error = %v, want record index", err)
	}
}

// TestNumericFeaturesIndexMapping pins the 38-field index mapping of
// NumericFeaturesInto (and hence NumericFeatures, its wrapper) against an
// independent literal with a distinct value per field, so a transposition
// in the hand-written index assignments cannot slip through: the suite's
// only other numeric-index anchors are spot checks of dims 1 and 25.
func TestNumericFeaturesIndexMapping(t *testing.T) {
	r := Record{
		Duration: 1, SrcBytes: 2, DstBytes: 3, Land: true, WrongFragment: 5,
		Urgent: 6, Hot: 7, NumFailedLogins: 8, LoggedIn: true,
		NumCompromised: 10, RootShell: 11, SuAttempted: 12, NumRoot: 13,
		NumFileCreations: 14, NumShells: 15, NumAccessFiles: 16,
		NumOutboundCmds: 17, IsHostLogin: true, IsGuestLogin: true,
		Count: 20, SrvCount: 21, SerrorRate: 22, SrvSerrorRate: 23,
		RerrorRate: 24, SrvRerrorRate: 25, SameSrvRate: 26, DiffSrvRate: 27,
		SrvDiffHostRate: 28, DstHostCount: 29, DstHostSrvCount: 30,
		DstHostSameSrvRate: 31, DstHostDiffSrvRate: 32,
		DstHostSameSrcPortRate: 33, DstHostSrvDiffHostRate: 34,
		DstHostSerrorRate: 35, DstHostSrvSerrorRate: 36,
		DstHostRerrorRate: 37, DstHostSrvRerrorRate: 38,
	}
	// Expected vector written out independently in NumericFeatureNames
	// order: booleans (indices 3, 8, 17, 18) encode as 1.
	want := []float64{
		1, 2, 3, 1, 5, 6, 7, 8, 1, 10, 11, 12, 13, 14, 15, 16, 17, 1, 1,
		20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38,
	}
	if len(want) != len(NumericFeatureNames) {
		t.Fatalf("expected vector has %d entries, want %d", len(want), len(NumericFeatureNames))
	}
	got := make([]float64, len(NumericFeatureNames))
	r.NumericFeaturesInto(got)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("feature %d (%s): got %v, want %v", i, NumericFeatureNames[i], got[i], want[i])
		}
	}
	alloc := r.NumericFeatures()
	for i := range want {
		if alloc[i] != want[i] {
			t.Errorf("NumericFeatures[%d] (%s): got %v, want %v", i, NumericFeatureNames[i], alloc[i], want[i])
		}
	}
}

func TestLabelsAndCategoryCounts(t *testing.T) {
	recs := []Record{
		{Label: "normal"}, {Label: "neptune"}, {Label: "neptune"}, {Label: "portsweep"},
	}
	labels := Labels(recs)
	if len(labels) != 4 || labels[1] != "neptune" {
		t.Errorf("Labels = %v", labels)
	}
	counts := CategoryCounts(recs)
	if counts[Normal] != 1 || counts[DoS] != 2 || counts[Probe] != 1 {
		t.Errorf("CategoryCounts = %v", counts)
	}
}
