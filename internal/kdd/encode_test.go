package kdd

import (
	"math"
	"strings"
	"testing"
)

func TestEncoderDimAndNames(t *testing.T) {
	e := NewEncoder(nil, EncoderConfig{})
	wantDim := 38 + len(Protocols) + len(e.Services()) + len(Flags)
	if e.Dim() != wantDim {
		t.Errorf("Dim = %d, want %d", e.Dim(), wantDim)
	}
	names := e.FeatureNames()
	if len(names) != e.Dim() {
		t.Fatalf("FeatureNames has %d entries, dim %d", len(names), e.Dim())
	}
	if names[0] != "duration" {
		t.Errorf("first feature = %q", names[0])
	}
	var protoSeen, svcSeen, flagSeen bool
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "protocol="):
			protoSeen = true
		case strings.HasPrefix(n, "service="):
			svcSeen = true
		case strings.HasPrefix(n, "flag="):
			flagSeen = true
		}
	}
	if !protoSeen || !svcSeen || !flagSeen {
		t.Error("one-hot name blocks missing")
	}
}

func TestEncodeOneHot(t *testing.T) {
	e := NewEncoder(nil, EncoderConfig{})
	r := validRecord()
	v, err := e.Encode(&r)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != e.Dim() {
		t.Fatalf("encoded dim %d, want %d", len(v), e.Dim())
	}
	names := e.FeatureNames()
	// Exactly one 1 in each categorical block, at the right name.
	blocks := map[string]string{
		"protocol=": "protocol=tcp",
		"service=":  "service=http",
		"flag=":     "flag=SF",
	}
	for prefix, wantHot := range blocks {
		var ones int
		for i, n := range names {
			if !strings.HasPrefix(n, prefix) {
				continue
			}
			if v[i] == 1 {
				ones++
				if n != wantHot {
					t.Errorf("hot dimension %q, want %q", n, wantHot)
				}
			} else if v[i] != 0 {
				t.Errorf("one-hot dim %q has value %v", n, v[i])
			}
		}
		if ones != 1 {
			t.Errorf("block %q has %d hot dims", prefix, ones)
		}
	}
}

func TestEncodeUnknownServiceFallsToOther(t *testing.T) {
	e := NewEncoder(nil, EncoderConfig{})
	r := validRecord()
	r.Service = "never_seen_service"
	v, err := e.Encode(&r)
	if err != nil {
		t.Fatal(err)
	}
	names := e.FeatureNames()
	for i, n := range names {
		if n == "service=other" && v[i] != 1 {
			t.Error("unknown service did not fall into other bucket")
		}
	}
}

func TestEncodeVocabularyFromRecords(t *testing.T) {
	r := validRecord()
	r.Service = "exotic_svc"
	e := NewEncoder([]Record{r}, EncoderConfig{})
	found := false
	for _, s := range e.Services() {
		if s == "exotic_svc" {
			found = true
		}
	}
	if !found {
		t.Error("observed service missing from vocabulary")
	}
	v, err := e.Encode(&r)
	if err != nil {
		t.Fatal(err)
	}
	names := e.FeatureNames()
	for i, n := range names {
		if n == "service=exotic_svc" && v[i] != 1 {
			t.Error("observed service not one-hot encoded at its own dimension")
		}
	}
}

func TestEncodeRejectsUnknownProtocolAndFlag(t *testing.T) {
	e := NewEncoder(nil, EncoderConfig{})
	r := validRecord()
	r.Protocol = "gre"
	if _, err := e.Encode(&r); err == nil {
		t.Error("unknown protocol accepted")
	}
	r = validRecord()
	r.Flag = "??"
	if _, err := e.Encode(&r); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestEncodeLogTransform(t *testing.T) {
	r := validRecord()
	r.SrcBytes = math.E - 1 // log1p = 1
	plain := NewEncoder(nil, EncoderConfig{})
	logged := NewEncoder(nil, EncoderConfig{LogTransform: true})
	vp, err := plain.Encode(&r)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := logged.Encode(&r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vp[1]-(math.E-1)) > 1e-12 {
		t.Errorf("plain src_bytes = %v", vp[1])
	}
	if math.Abs(vl[1]-1) > 1e-12 {
		t.Errorf("log src_bytes = %v, want 1", vl[1])
	}
	// Rates must be untouched by the log transform.
	if vp[25] != vl[25] {
		t.Error("log transform touched a rate feature")
	}
}

func TestEncodeAll(t *testing.T) {
	e := NewEncoder(nil, EncoderConfig{})
	r1 := validRecord()
	r2 := validRecord()
	r2.Protocol = "udp"
	r2.Service = "domain_u"
	vs, err := e.EncodeAll([]Record{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("EncodeAll returned %d vectors", len(vs))
	}
	bad := validRecord()
	bad.Flag = "NOPE"
	if _, err := e.EncodeAll([]Record{r1, bad}); err == nil {
		t.Error("EncodeAll accepted bad record")
	}
}

func TestLabelsAndCategoryCounts(t *testing.T) {
	recs := []Record{
		{Label: "normal"}, {Label: "neptune"}, {Label: "neptune"}, {Label: "portsweep"},
	}
	labels := Labels(recs)
	if len(labels) != 4 || labels[1] != "neptune" {
		t.Errorf("Labels = %v", labels)
	}
	counts := CategoryCounts(recs)
	if counts[Normal] != 1 || counts[DoS] != 2 || counts[Probe] != 1 {
		t.Errorf("CategoryCounts = %v", counts)
	}
}
