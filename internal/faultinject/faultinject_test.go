package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() after Disarm")
	}
	for _, p := range points {
		if err := Hit(p); err != nil {
			t.Errorf("disarmed Hit(%s) = %v", p, err)
		}
	}
}

func TestArmErrorPoint(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("decode-error=error"); err != nil {
		t.Fatal(err)
	}
	if !Armed() {
		t.Fatal("not armed")
	}
	err := Hit(DecodeError)
	if err == nil || !IsInjected(err) {
		t.Fatalf("Hit = %v, want injected error", err)
	}
	// Other points stay clean.
	if err := Hit(ModelLoad); err != nil {
		t.Errorf("unarmed point fired: %v", err)
	}
}

func TestBoundedCount(t *testing.T) {
	t.Cleanup(Disarm)
	before := Hits(ModelLoad)
	if err := Arm("model-load=error:2"); err != nil {
		t.Fatal(err)
	}
	if err := Hit(ModelLoad); err == nil {
		t.Fatal("first bounded hit did not fire")
	}
	if err := Hit(ModelLoad); err == nil {
		t.Fatal("second bounded hit did not fire")
	}
	if err := Hit(ModelLoad); err != nil {
		t.Fatalf("third hit fired past bound: %v", err)
	}
	if got := Hits(ModelLoad) - before; got != 2 {
		t.Errorf("Hits delta = %d, want 2", got)
	}
}

func TestPanicPoint(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("classify-panic=panic:1"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("armed panic point did not panic")
			}
		}()
		Hit(ClassifyPanic)
	}()
	// Bound spent: no second panic.
	if err := Hit(ClassifyPanic); err != nil {
		t.Fatalf("spent panic point: %v", err)
	}
}

func TestLatencyPoint(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("dataplane-latency=latency:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit(DataplaneLatency); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("latency point slept %v, want ~30ms", d)
	}
}

func TestArmRejectsBadSpecs(t *testing.T) {
	t.Cleanup(Disarm)
	for _, spec := range []string{
		"nope=error",                    // unknown point
		"decode-error",                  // no action
		"decode-error=explode",          // unknown action
		"dataplane-latency=latency",     // missing duration
		"dataplane-latency=latency:-1s", // negative duration
		"model-load=error:0",            // zero count
		"model-load=error:2:3",          // trailing junk
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
	// A bad Arm must not leave a previous plan half-applied into a
	// confusing state: arming empty disarms.
	if err := Arm(""); err != nil {
		t.Fatal(err)
	}
	if Armed() {
		t.Error("empty spec left points armed")
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Cleanup(Disarm)
	t.Setenv(EnvVar, "decode-error=error:1")
	set, err := ArmFromEnv()
	if !set || err != nil {
		t.Fatalf("ArmFromEnv = %v, %v", set, err)
	}
	if err := Hit(DecodeError); err == nil {
		t.Error("env-armed point did not fire")
	}
	t.Setenv(EnvVar, "garbage")
	if set, err := ArmFromEnv(); !set || err == nil {
		t.Errorf("bad env spec: set=%v err=%v, want set and error", set, err)
	}
}

func TestMultiPointSpec(t *testing.T) {
	t.Cleanup(Disarm)
	err := Arm("decode-error=error, dataplane-latency=latency:1ms, classify-panic=panic:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := Hit(DecodeError); err == nil || !strings.Contains(err.Error(), DecodeError) {
		t.Errorf("decode point: %v", err)
	}
	if err := Hit(DataplaneLatency); err != nil {
		t.Errorf("latency point errored: %v", err)
	}
}
