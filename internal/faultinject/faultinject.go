// Package faultinject provides named fault-injection points for chaos
// testing the serving stack. Points are disarmed by default and cost one
// atomic load per Hit — effectively a no-op on the hot path — until a
// spec arms them via Arm, the GHSOM_FAULTS environment variable, or a
// CLI flag.
//
// A spec is a comma-separated list of point=action pairs:
//
//	dataplane-latency=latency:5ms     sleep 5ms at every hit
//	decode-error=error                fail every hit
//	model-load=error:3                fail the next 3 hits, then pass
//	classify-panic=panic:1            panic on the next hit, then pass
//
// Actions are error, panic, and latency:<duration>; an optional trailing
// :N bounds how many hits fire (unbounded without it). Unknown point
// names are rejected at Arm time so a typo cannot silently disarm a
// chaos run.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The named injection points wired into the serving stack.
const (
	// DataplaneLatency delays a micro-batch flush before it enters the
	// detection dataplane (constrains serve capacity for overload tests).
	DataplaneLatency = "dataplane-latency"
	// DecodeError fails request-body record parsing.
	DecodeError = "decode-error"
	// ModelLoad fails a POST /model envelope load.
	ModelLoad = "model-load"
	// ScratchExhausted simulates inference scratch-pool exhaustion: the
	// dataplane call fails before any detection work runs.
	ScratchExhausted = "scratch-exhausted"
	// ClassifyPanic panics inside the detection dataplane, exercising the
	// server's per-job panic isolation.
	ClassifyPanic = "classify-panic"
	// DialError fails a gateway→replica request before any bytes are
	// sent, simulating a dead host or refused connection.
	DialError = "dial-error"
	// SlowReplica delays a gateway→replica request in flight, simulating
	// a straggler for hedging and tail-latency drills.
	SlowReplica = "slow-replica"
	// DroppedResponse discards a replica's response after it was received,
	// simulating a connection torn down mid-response.
	DroppedResponse = "dropped-response"
)

// EnvVar is the environment variable ArmFromEnv reads a spec from.
const EnvVar = "GHSOM_FAULTS"

// points is every valid point name; Arm rejects others.
var points = []string{DataplaneLatency, DecodeError, ModelLoad, ScratchExhausted, ClassifyPanic, DialError, SlowReplica, DroppedResponse}

// fault is the armed behavior of one point. remaining < 0 means
// unbounded.
type fault struct {
	latency   time.Duration
	fail      bool
	panics    bool
	remaining atomic.Int64
	hits      atomic.Int64
}

// plan is an immutable point→fault table; Arm swaps the whole table
// atomically so Hit never locks.
type plan struct {
	faults map[string]*fault
}

var (
	armed   atomic.Bool
	current atomic.Pointer[plan]
	// hitCounts survives Disarm so tests can assert after tearing down.
	hitCounts atomic.Pointer[map[string]*atomic.Int64]
)

func init() {
	m := make(map[string]*atomic.Int64, len(points))
	for _, p := range points {
		m[p] = new(atomic.Int64)
	}
	hitCounts.Store(&m)
}

// ErrInjected is the error value wrapped by every injected failure.
type injectedError struct{ point string }

func (e *injectedError) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s", e.point)
}

// IsInjected reports whether err originated from an armed point.
func IsInjected(err error) bool {
	_, ok := err.(*injectedError)
	return ok
}

// Arm parses spec and arms the listed points, replacing any previous
// plan. An empty spec disarms. Arm is not meant for concurrent use with
// itself (tests and startup arm; Hit is the concurrent-safe side).
func Arm(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disarm()
		return nil
	}
	faults := make(map[string]*fault)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, action, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("faultinject: %q: want point=action", part)
		}
		if !validPoint(name) {
			return fmt.Errorf("faultinject: unknown point %q (valid: %s)", name, strings.Join(points, ", "))
		}
		f, err := parseAction(action)
		if err != nil {
			return fmt.Errorf("faultinject: point %s: %w", name, err)
		}
		faults[name] = f
	}
	current.Store(&plan{faults: faults})
	armed.Store(len(faults) > 0)
	return nil
}

// ArmFromEnv arms from the GHSOM_FAULTS environment variable. It reports
// whether the variable was set (even if parsing failed).
func ArmFromEnv() (bool, error) {
	spec, ok := os.LookupEnv(EnvVar)
	if !ok {
		return false, nil
	}
	return true, Arm(spec)
}

// Disarm removes every armed point; Hit returns to its no-op fast path.
func Disarm() {
	armed.Store(false)
	current.Store(nil)
}

// Armed reports whether any point is armed.
func Armed() bool { return armed.Load() }

// Hit fires the named point: disarmed (the common case) it is one atomic
// load and returns nil. Armed with latency it sleeps; armed with error
// it returns an injected error; armed with panic it panics. Bounded
// points stop firing after their count is spent. Every actual firing is
// counted for Hits.
func Hit(point string) error {
	if !armed.Load() {
		return nil
	}
	p := current.Load()
	if p == nil {
		return nil
	}
	f := p.faults[point]
	if f == nil {
		return nil
	}
	if !f.consume() {
		return nil
	}
	countHit(point)
	if f.latency > 0 {
		time.Sleep(f.latency)
	}
	if f.panics {
		panic(&injectedError{point: point})
	}
	if f.fail {
		return &injectedError{point: point}
	}
	return nil
}

// consume claims one firing, honoring a bounded count.
func (f *fault) consume() bool {
	for {
		r := f.remaining.Load()
		if r < 0 {
			return true // unbounded
		}
		if r == 0 {
			return false
		}
		if f.remaining.CompareAndSwap(r, r-1) {
			return true
		}
	}
}

// Hits reports how many times the named point has actually fired since
// process start (survives Arm/Disarm cycles).
func Hits(point string) int64 {
	m := *hitCounts.Load()
	if c := m[point]; c != nil {
		return c.Load()
	}
	return 0
}

func countHit(point string) {
	m := *hitCounts.Load()
	if c := m[point]; c != nil {
		c.Add(1)
	}
}

func validPoint(name string) bool {
	for _, p := range points {
		if p == name {
			return true
		}
	}
	return false
}

// parseAction parses "error", "panic", "latency:<dur>", each with an
// optional trailing ":N" firing bound.
func parseAction(action string) (*fault, error) {
	parts := strings.Split(action, ":")
	f := &fault{}
	f.remaining.Store(-1)
	rest := parts[1:]
	switch parts[0] {
	case "error":
		f.fail = true
	case "panic":
		f.panics = true
	case "latency":
		if len(rest) == 0 {
			return nil, fmt.Errorf("latency needs a duration, e.g. latency:5ms")
		}
		d, err := time.ParseDuration(rest[0])
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad latency duration %q", rest[0])
		}
		f.latency = d
		rest = rest[1:]
	default:
		return nil, fmt.Errorf("unknown action %q (want error, panic, or latency:<dur>)", parts[0])
	}
	if len(rest) > 1 {
		return nil, fmt.Errorf("trailing junk in action %q", action)
	}
	if len(rest) == 1 {
		n, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad firing count %q", rest[0])
		}
		f.remaining.Store(n)
	}
	return f, nil
}
