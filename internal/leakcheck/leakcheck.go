// Package leakcheck provides a goroutine-leak assertion for tests:
// snapshot the goroutine count up front, then verify at cleanup that the
// count settles back to the baseline. The settle loop retries for a
// bounded window, since goroutines finishing concurrently with the test
// (HTTP keep-alive reapers, drained worker pools) need a few scheduler
// ticks to unwind.
package leakcheck

import (
	"fmt"
	"runtime"
	"time"
)

// TB is the subset of testing.TB leakcheck needs, kept small so the
// package has no test-only dependents beyond the standard library.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// Check snapshots runtime.NumGoroutine and registers a cleanup that
// fails t if the count has not settled back to the baseline (plus slack)
// within the settle window. Call it first in a test so its cleanup runs
// last, after the test's own defers and cleanups have torn servers and
// pools down.
func Check(t TB) {
	t.Helper()
	CheckSlack(t, 0)
}

// CheckSlack is Check with an explicit allowance for goroutines the test
// legitimately leaves behind (e.g. a shared global started lazily).
func CheckSlack(t TB, slack int) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		if n, ok := Settle(before+slack, 3*time.Second); !ok {
			t.Errorf("goroutine leak: %d before, %d after settle window\n%s", before, n, stacks())
		}
	})
}

// Settle polls runtime.NumGoroutine until it is <= target or the window
// expires, returning the final count and whether it settled. Exposed so
// tests can assert mid-test (e.g. after a drain, before shutdown).
func Settle(target int, window time.Duration) (int, bool) {
	deadline := time.Now().Add(window)
	for {
		n := runtime.NumGoroutine()
		if n <= target {
			return n, true
		}
		if time.Now().After(deadline) {
			return n, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// stacks renders all goroutine stacks for the failure message, truncated
// to keep test logs readable.
func stacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	s := string(buf[:n])
	const max = 16 << 10
	if len(s) > max {
		s = s[:max] + fmt.Sprintf("\n... (%d bytes truncated)", len(s)-max)
	}
	return s
}
