package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ghsom"
	"ghsom/internal/kdd"
	"ghsom/internal/trafficgen"
)

// servePipe caches one trained pipeline and its generated records across
// the tests of this package.
var servePipe struct {
	once sync.Once
	pipe *ghsom.Pipeline
	recs []kdd.Record
	err  error
}

func testPipeline(t *testing.T) (*ghsom.Pipeline, []kdd.Record) {
	t.Helper()
	if testing.Short() {
		t.Skip("serving integration test; skipped with -short")
	}
	servePipe.once.Do(func() {
		recs, err := trafficgen.Generate(trafficgen.Small(71))
		if err != nil {
			servePipe.err = err
			return
		}
		cfg := ghsom.DefaultPipelineConfig()
		cfg.Model.EpochsPerGrowth = 3
		cfg.Model.FineTuneEpochs = 3
		cfg.Model.MaxGrowIters = 6
		cfg.Model.MaxDepth = 3
		cfg.TrainCapPerLabel = 800
		servePipe.pipe, servePipe.err = ghsom.TrainPipeline(recs, cfg)
		servePipe.recs = recs
	})
	if servePipe.err != nil {
		t.Fatal(servePipe.err)
	}
	return servePipe.pipe, servePipe.recs
}

// testConfig builds a Config with the given batching knobs and
// production-default caps.
func testConfig(maxBatch int, flushEvery time.Duration, par int) Config {
	return Config{
		MaxBatch:    maxBatch,
		FlushEvery:  flushEvery,
		Parallelism: par,
		QueueCap:    DefaultQueueCap,
		MaxBody:     DefaultMaxBodyBytes,
		MaxModel:    DefaultMaxModelBytes,
	}
}

// ndjson renders records as one JSON document per line.
func ndjson(t *testing.T, recs []kdd.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// decodePreds parses an NDJSON prediction stream.
func decodePreds(t *testing.T, r io.Reader) []ghsom.Prediction {
	t.Helper()
	dec := json.NewDecoder(r)
	var out []ghsom.Prediction
	for {
		var p ghsom.Prediction
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// TestBatcherCoalescesAndMatchesDetectAll submits many small concurrent
// requests through the micro-batcher and verifies every client gets the
// same predictions the direct batch path produces, and that coalescing
// actually happened (fewer batches than jobs).
func TestBatcherCoalescesAndMatchesDetectAll(t *testing.T) {
	pipe, recs := testPipeline(t)
	eval := recs[:600]
	want, err := pipe.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	b := newBatcher(pipe, testConfig(128, 5*time.Millisecond, 0))
	defer b.close()

	const jobRecs = 5
	nJobs := len(eval) / jobRecs
	got := make([][]ghsom.Prediction, nJobs)
	var wg sync.WaitGroup
	errs := make([]error, nJobs)
	for j := 0; j < nJobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			got[j], errs[j] = b.submit(context.Background(), eval[j*jobRecs:(j+1)*jobRecs], time.Time{})
		}(j)
	}
	wg.Wait()
	for j := 0; j < nJobs; j++ {
		if errs[j] != nil {
			t.Fatalf("job %d: %v", j, errs[j])
		}
		for i, p := range got[j] {
			if p != want[j*jobRecs+i] {
				t.Fatalf("job %d record %d: batched %+v, direct %+v", j, i, p, want[j*jobRecs+i])
			}
		}
	}
	snap := b.stats.snapshot()
	if snap.Records != int64(nJobs*jobRecs) {
		t.Errorf("stats.records = %d, want %d", snap.Records, nJobs*jobRecs)
	}
	if snap.Batches >= int64(nJobs) {
		t.Errorf("micro-batching did not coalesce: %d batches for %d jobs", snap.Batches, nJobs)
	}
	// Queue-wait aggregates: every dequeued job observed a wait, and a
	// scrape drains the window.
	waits := b.q.TakeWaitStats()
	if waits.Count < int64(nJobs) {
		t.Errorf("wait stats count = %d, want >= %d", waits.Count, nJobs)
	}
	if waits.Max < waits.Mean {
		t.Errorf("wait stats max %v < mean %v", waits.Max, waits.Mean)
	}
	if again := b.q.TakeWaitStats(); again.Count != 0 || again.Max != 0 {
		t.Errorf("second scrape not reset: %+v", again)
	}
}

// TestBatcherIsolatesBadJob verifies a bad record in one client's request
// does not fail co-batched valid requests, and that the failing client's
// error carries its own record index, not the merged batch's.
func TestBatcherIsolatesBadJob(t *testing.T) {
	pipe, recs := testPipeline(t)
	// Large flush window + batch so both jobs coalesce into one flush.
	b := newBatcher(pipe, testConfig(1024, 50*time.Millisecond, 0))
	defer b.close()

	good := recs[:20]
	bad := append([]kdd.Record(nil), recs[20:30]...)
	bad[7].Flag = "BOGUS"

	var wg sync.WaitGroup
	var goodPreds, badPreds []ghsom.Prediction
	var goodErr, badErr error
	wg.Add(2)
	go func() { defer wg.Done(); goodPreds, goodErr = b.submit(context.Background(), good, time.Time{}) }()
	go func() { defer wg.Done(); badPreds, badErr = b.submit(context.Background(), bad, time.Time{}) }()
	wg.Wait()

	if goodErr != nil {
		t.Fatalf("valid job failed alongside a bad co-batched job: %v", goodErr)
	}
	want, err := pipe.DetectAll(good)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if goodPreds[i] != want[i] {
			t.Fatalf("record %d: isolated retry %+v, direct %+v", i, goodPreds[i], want[i])
		}
	}
	if badErr == nil || !strings.Contains(badErr.Error(), "record 7") {
		t.Errorf("bad job err = %v, want its own record 7", badErr)
	}
	if badPreds != nil {
		t.Error("bad job received predictions despite error")
	}
}

// TestHandleDetectHTTP exercises the HTTP surface end to end.
func TestHandleDetectHTTP(t *testing.T) {
	pipe, recs := testPipeline(t)
	eval := recs[100:160]
	cfg := testConfig(64, 2*time.Millisecond, 0)
	cfg.Instance = "test-replica-1"
	reg := NewRegistry(cfg)
	defer reg.Close()
	if _, _, err := reg.Swap(DefaultModelName, pipe); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Mux())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", bytes.NewReader(ndjson(t, eval)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if inst := resp.Header.Get(InstanceHeader); inst != "test-replica-1" {
		t.Errorf("%s = %q, want test-replica-1", InstanceHeader, inst)
	}
	preds := decodePreds(t, resp.Body)
	want, err := pipe.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(want))
	}
	for i := range preds {
		if preds[i] != want[i] {
			t.Fatalf("record %d: http %+v, direct %+v", i, preds[i], want[i])
		}
	}

	// Malformed and empty bodies are client errors.
	for _, body := range []string{"", "{not json}"} {
		resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Stats reflect the served traffic and carry the instance identity.
	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap StatsView
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Records < int64(len(eval)) || snap.Batches < 1 {
		t.Errorf("stats = %+v, want >= %d records in >= 1 batch", snap, len(eval))
	}
	if snap.Instance != "test-replica-1" {
		t.Errorf("stats instance = %q, want test-replica-1", snap.Instance)
	}
	if snap.Draining {
		t.Error("stats report draining on a serving registry")
	}
	if snap.RetryAfterSec < 1 {
		t.Errorf("retryAfterSec = %d, want >= 1", snap.RetryAfterSec)
	}
}

// altPipeline trains a second, distinguishable pipeline for swap tests.
func altPipeline(t *testing.T, recs []kdd.Record) *ghsom.Pipeline {
	t.Helper()
	cfg := ghsom.DefaultPipelineConfig()
	cfg.Model.EpochsPerGrowth = 3
	cfg.Model.FineTuneEpochs = 3
	cfg.Model.MaxGrowIters = 4
	cfg.Model.MaxDepth = 2
	cfg.Model.Seed = 99
	cfg.TrainCapPerLabel = 400
	pipe, err := ghsom.TrainPipeline(recs[:2000], cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

// TestRegistryHotSwapUnderLoad hammers /detect from concurrent clients
// while a new model is hot-swapped in via POST /model: no request may
// fail, be dropped, or be torn (every response must match one model's
// predictions wholesale), and traffic after the swap must be served by
// the new model.
func TestRegistryHotSwapUnderLoad(t *testing.T) {
	pipeA, recs := testPipeline(t)
	pipeB := altPipeline(t, recs)
	eval := recs[:40]
	wantA, err := pipeA.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := pipeB.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(testConfig(64, time.Millisecond, 0))
	defer reg.Close()
	reg.Swap(DefaultModelName, pipeA)
	srv := httptest.NewServer(reg.Mux())
	defer srv.Close()

	body := ndjson(t, eval)
	matches := func(preds []ghsom.Prediction) string {
		if len(preds) != len(eval) {
			return "wrong count"
		}
		a, b := true, true
		for i := range preds {
			if preds[i] != wantA[i] {
				a = false
			}
			if preds[i] != wantB[i] {
				b = false
			}
		}
		switch {
		case a:
			return "A"
		case b:
			return "B"
		default:
			return "torn"
		}
	}

	const workers = 4
	const reqsPerWorker = 25
	results := make([][]string, workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < reqsPerWorker; r++ {
				resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", bytes.NewReader(body))
				if err != nil {
					errs[w] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					errs[w] = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
					return
				}
				preds := decodePreds(t, resp.Body)
				resp.Body.Close()
				results[w] = append(results[w], matches(preds))
			}
		}(w)
	}

	// Swap to model B mid-load.
	var envB bytes.Buffer
	if err := pipeB.Save(&envB); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	resp, err := http.Post(srv.URL+"/model", "application/octet-stream", bytes.NewReader(envB.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var swapped ModelView
	if err := json.NewDecoder(resp.Body).Decode(&swapped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status = %d", resp.StatusCode)
	}
	if swapped.Swaps != 1 || swapped.EnvelopeVersion != 3 {
		t.Errorf("swap view = %+v, want swaps=1 envelopeVersion=3", swapped)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	sawA, sawB := false, false
	for w := range results {
		if len(results[w]) != reqsPerWorker {
			t.Fatalf("worker %d served %d of %d requests", w, len(results[w]), reqsPerWorker)
		}
		for r, m := range results[w] {
			switch m {
			case "A":
				sawA = true
			case "B":
				sawB = true
			default:
				t.Fatalf("worker %d request %d: %s response", w, r, m)
			}
		}
	}
	if !sawA {
		t.Error("no request was served by the original model")
	}
	_ = sawB // timing-dependent: the swap may land after most workers finish

	// After the swap, traffic must come from model B.
	resp, err = http.Post(srv.URL+"/detect", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	preds := decodePreds(t, resp.Body)
	resp.Body.Close()
	if m := matches(preds); m != "B" {
		t.Fatalf("post-swap response served by %s, want B", m)
	}
}

// TestRegistryNamedModels exercises per-request model selection and the
// /models listing.
func TestRegistryNamedModels(t *testing.T) {
	pipeA, recs := testPipeline(t)
	pipeB := altPipeline(t, recs)
	eval := recs[50:70]
	wantA, err := pipeA.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := pipeB.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(testConfig(64, time.Millisecond, 0))
	defer reg.Close()
	reg.Swap(DefaultModelName, pipeA)
	srv := httptest.NewServer(reg.Mux())
	defer srv.Close()

	// Unknown model name is a 404.
	resp, err := http.Post(srv.URL+"/detect?model=nope", "application/x-ndjson", bytes.NewReader(ndjson(t, eval)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status = %d, want 404", resp.StatusCode)
	}

	// Create a named entry via POST /model?name=canary (201 Created).
	var envB bytes.Buffer
	if err := pipeB.Save(&envB); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/model?name=canary", "application/octet-stream", bytes.NewReader(envB.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d, want 201", resp.StatusCode)
	}

	// Per-request selection routes to the right model.
	check := func(query string, want []ghsom.Prediction) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/detect"+query, "application/x-ndjson", bytes.NewReader(ndjson(t, eval)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		preds := decodePreds(t, resp.Body)
		if len(preds) != len(want) {
			t.Fatalf("%s: got %d predictions, want %d", query, len(preds), len(want))
		}
		for i := range preds {
			if preds[i] != want[i] {
				t.Fatalf("%s record %d: got %+v, want %+v", query, i, preds[i], want[i])
			}
		}
	}
	check("", wantA)
	check("?model=default", wantA)
	check("?model=canary", wantB)

	// Listing shows both entries with their envelope versions and shapes.
	lresp, err := http.Get(srv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var views []ModelView
	if err := json.NewDecoder(lresp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 || views[0].Name != "canary" || views[1].Name != "default" {
		t.Fatalf("listing = %+v", views)
	}
	for _, v := range views {
		if v.EnvelopeVersion != 3 || v.Nodes < 1 || v.Units < 1 || v.ArenaBytes < 1 {
			t.Errorf("listing entry %+v missing model metadata", v)
		}
	}

	// A malformed envelope upload is rejected without disturbing the
	// registry.
	resp, err = http.Post(srv.URL+"/model?name=canary", "application/octet-stream", strings.NewReader("not an envelope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad envelope status = %d, want 400", resp.StatusCode)
	}
	check("?model=canary", wantB)

	// DELETE unloads the canary; the default model is protected.
	del := func(query string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, srv.URL+"/model"+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del("?name=default"); code != http.StatusBadRequest {
		t.Fatalf("deleting default = %d, want 400", code)
	}
	if code := del("?name=canary"); code != http.StatusNoContent {
		t.Fatalf("deleting canary = %d, want 204", code)
	}
	if code := del("?name=canary"); code != http.StatusNotFound {
		t.Fatalf("re-deleting canary = %d, want 404", code)
	}
	resp, err = http.Post(srv.URL+"/detect?model=canary", "application/x-ndjson", bytes.NewReader(ndjson(t, eval)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("detect on unloaded model = %d, want 404", resp.StatusCode)
	}
	check("", wantA) // default still serves
}

// columnarBody renders records as one columnar wire frame.
func columnarBody(t *testing.T, recs []kdd.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := kdd.WriteColumnarBatch(&buf, recs, kdd.ColumnarWriteOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHandleDetectColumnar posts columnar frames to /detect and checks
// the verdicts match the NDJSON path bit for bit, across single- and
// multi-frame bodies.
func TestHandleDetectColumnar(t *testing.T) {
	pipe, recs := testPipeline(t)
	eval := recs[300:500]
	b := newBatcher(pipe, testConfig(64, 2*time.Millisecond, 0))
	defer b.close()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /detect", b.handleDetect)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	want, err := pipe.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	// Two frames in one body: predictions must stream out frame by frame
	// in record order.
	body := append(columnarBody(t, eval[:120]), columnarBody(t, eval[120:])...)
	resp, err := http.Post(srv.URL+"/detect", kdd.ColumnarContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("response Content-Type = %q", ct)
	}
	preds := decodePreds(t, resp.Body)
	if len(preds) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(want))
	}
	for i := range preds {
		if preds[i] != want[i] {
			t.Fatalf("record %d: columnar %+v, direct %+v", i, preds[i], want[i])
		}
	}

	// Structurally broken frames and empty bodies are client errors.
	for _, bad := range [][]byte{nil, []byte("GHSOMWB1 not a frame"), body[:len(body)-5]} {
		resp, err := http.Post(srv.URL+"/detect", kdd.ColumnarContentType, bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// A truncated *second* frame lands after output began: the server
		// has already committed a 200 and just ends the stream.
		wantCode := http.StatusBadRequest
		if len(bad) > len(body)/2 {
			wantCode = http.StatusOK
		}
		if resp.StatusCode != wantCode {
			t.Errorf("bad body (%d bytes): status %d, want %d", len(bad), resp.StatusCode, wantCode)
		}
	}

	// A frame with an unknown protocol symbol is a 422, like the NDJSON
	// path's unprocessable records.
	badRecs := append([]kdd.Record(nil), eval[:10]...)
	badRecs[3].Protocol = "sctp"
	resp, err = http.Post(srv.URL+"/detect", kdd.ColumnarContentType, bytes.NewReader(columnarBody(t, badRecs)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(string(raw), "record 3") {
		t.Errorf("unknown protocol: status %d body %q, want 422 naming record 3", resp.StatusCode, raw)
	}
}

// TestDetectBodyCap413 pins the -max-body contract on both wire formats:
// a body over the cap is rejected with 413, under it with 200.
func TestDetectBodyCap413(t *testing.T) {
	pipe, recs := testPipeline(t)
	eval := recs[:64]
	b := newBatcher(pipe, testConfig(64, 2*time.Millisecond, 0))
	b.maxBody = 2048 // tiny cap for the test
	defer b.close()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /detect", b.handleDetect)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, tc := range []struct {
		name string
		ct   string
		body []byte
	}{
		{"ndjson", "application/x-ndjson", ndjson(t, eval)},
		{"columnar", kdd.ColumnarContentType, columnarBody(t, eval)},
	} {
		if len(tc.body) <= 2048 {
			t.Fatalf("%s test body only %d bytes, cap not exercised", tc.name, len(tc.body))
		}
		resp, err := http.Post(srv.URL+"/detect", tc.ct, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s over-cap body: status %d, want 413", tc.name, resp.StatusCode)
		}
		small, err := http.Post(srv.URL+"/detect", tc.ct, bytes.NewReader(tc.body[:0]))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, small.Body)
		small.Body.Close()
		if small.StatusCode != http.StatusBadRequest {
			t.Errorf("%s empty body: status %d, want 400", tc.name, small.StatusCode)
		}
	}
	// An under-cap request still succeeds.
	resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", bytes.NewReader(ndjson(t, eval[:1])))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("under-cap body: status %d, want 200", resp.StatusCode)
	}
}

// TestModelUploadCap413 pins the -max-model contract on POST /model.
func TestModelUploadCap413(t *testing.T) {
	pipe, _ := testPipeline(t)
	cfg := testConfig(64, time.Millisecond, 0)
	cfg.MaxModel = 4096
	reg := NewRegistry(cfg)
	defer reg.Close()
	reg.Swap(DefaultModelName, pipe)
	srv := httptest.NewServer(reg.Mux())
	defer srv.Close()

	var env bytes.Buffer
	if err := pipe.Save(&env); err != nil {
		t.Fatal(err)
	}
	if env.Len() <= 4096 {
		t.Fatalf("envelope only %d bytes, cap not exercised", env.Len())
	}
	resp, err := http.Post(srv.URL+"/model?name=big", "application/octet-stream", bytes.NewReader(env.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over-cap envelope: status %d, want 413", resp.StatusCode)
	}
	if reg.get("big") != nil {
		t.Error("over-cap upload created a registry entry")
	}
}
