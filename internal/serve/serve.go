// Package serve is the single-node serving tier behind cmd/ghsom-serve:
// a registry of named models with atomic hot-swap, a deadline-aware
// micro-batcher per model, bounded admission with 429/503 shedding, and
// the HTTP surface (/detect, /model, /models, /stats, /healthz, /livez).
//
// It lives in an importable package (rather than inside the command) so
// the distributed tier can compose with it: cmd/ghsom-gateway's chaos
// tests spin real replicas up in-process, and cmd/benchjson measures
// gateway overhead against a direct replica, all without shelling out.
//
// Each server carries a stable instance identity (Config.Instance),
// surfaced as the X-GHSOM-Instance response header on every endpoint and
// in the /stats document, so a coordinator and cluster-wide rollups can
// attribute state to replicas.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	netpprof "net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ghsom"
	"ghsom/internal/faultinject"
	"ghsom/internal/kdd"
	"ghsom/internal/parallel"
	"ghsom/internal/serveq"
)

// Admission and lifecycle defaults.
const (
	DefaultQueueCap   = 256
	DefaultJobTimeout = 30 * time.Second
	DefaultDrainGrace = 15 * time.Second
)

// DefaultMaxModelBytes and DefaultMaxBodyBytes cap one uploaded envelope
// and one /detect request body unless Config overrides them.
const (
	DefaultMaxModelBytes = 1 << 30
	DefaultMaxBodyBytes  = 64 << 20
)

// DefaultModelName is the registry entry served when a request names no
// model.
const DefaultModelName = "default"

// DeadlineHeader lets clients carry an explicit time budget: the value
// is a positive integer of milliseconds from arrival. The gateway
// rewrites it per hop with the remaining budget, so a request's deadline
// survives retries and replica hops.
const DeadlineHeader = "X-GHSOM-Deadline-Ms"

// InstanceHeader carries the server's stable instance identity on every
// response, so upstream coordinators can attribute replies (and health
// transitions) to replicas even behind port-forwarding or proxies.
const InstanceHeader = "X-GHSOM-Instance"

// Config bundles the per-server knobs the registry hands to every
// batcher it creates.
type Config struct {
	// Instance is the server's stable identity (the -instance flag,
	// defaulting to hostname:port), echoed on every response and in
	// /stats so cluster rollups can attribute state to replicas.
	Instance   string
	MaxBatch   int
	FlushEvery time.Duration
	// Parallelism is the detection worker bound (0 = GOMAXPROCS).
	Parallelism int
	// Precision is the BMU candidate-generation precision applied to
	// every loaded model (the -bmu-precision flag); a pure performance
	// knob — verdicts are bit-identical at every setting.
	Precision ghsom.Precision
	// QueueCap bounds each model's admission queue; beyond it requests
	// shed with 429 instead of building an unbounded backlog.
	QueueCap int
	// DefaultTimeout is the deadline given to requests that carry none.
	// Zero means no default deadline.
	DefaultTimeout time.Duration
	// MaxBody and MaxModel cap one /detect body and one uploaded
	// envelope; requests beyond them get 413.
	MaxBody  int64
	MaxModel int64
	// Pprof exposes /debug/pprof on the mux when set (-pprof flag).
	Pprof bool
}

// modelEntry is one hosted model: its micro-batcher (whose pipeline
// pointer hot-swaps atomically) plus registry metadata.
type modelEntry struct {
	name     string
	batcher  *batcher
	loadedAt time.Time
	swaps    int
}

// Registry hosts the named models behind the HTTP surface. Lookups take
// a read lock; loading or swapping a model takes the write lock only to
// update the map and metadata — the swap itself is one atomic pointer
// store on the entry's batcher, so detection traffic never blocks on a
// model upload.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*modelEntry
	cfg     Config
	// ready flips true when the first model lands; until then /healthz
	// reports 503 so load balancers do not route to a server that cannot
	// serve.
	ready atomic.Bool
	// draining flips true at the start of the SIGTERM drain sequence:
	// /healthz reports 503, new detection work sheds with 503, queued
	// and in-flight work still completes. /livez stays 200 throughout.
	draining  atomic.Bool
	drainOnce sync.Once
}

// NewRegistry builds an empty registry; Swap installs the first model.
func NewRegistry(cfg Config) *Registry {
	if cfg.QueueCap < 1 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MaxBody < 1 {
		cfg.MaxBody = DefaultMaxBodyBytes
	}
	if cfg.MaxModel < 1 {
		cfg.MaxModel = DefaultMaxModelBytes
	}
	return &Registry{
		entries: make(map[string]*modelEntry),
		cfg:     cfg,
	}
}

// BeginDrain starts the graceful-exit sequence: readiness goes 503 and
// every model's admission queue closes, so new work sheds while queued
// and in-flight jobs drain. Idempotent.
func (reg *Registry) BeginDrain() {
	reg.drainOnce.Do(func() {
		reg.draining.Store(true)
		reg.mu.RLock()
		for _, e := range reg.entries {
			e.batcher.q.CloseAdmission()
		}
		reg.mu.RUnlock()
	})
}

// Draining reports whether the drain sequence has begun.
func (reg *Registry) Draining() bool { return reg.draining.Load() }

// Close shuts every batcher down after its in-flight jobs drain.
func (reg *Registry) Close() {
	// Take the entries out of the map before closing them, so a DELETE
	// handler racing shutdown cannot find an entry whose batcher is
	// already closed and close it a second time.
	reg.mu.Lock()
	entries := reg.entries
	reg.entries = make(map[string]*modelEntry)
	reg.mu.Unlock()
	for _, e := range entries {
		e.batcher.close()
	}
}

// get returns the named entry, or nil when absent.
func (reg *Registry) get(name string) *modelEntry {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return reg.entries[name]
}

// maxRegistryModels caps the number of hosted models: each entry pins a
// pipeline and a batcher goroutine, so an unbounded registry would let a
// deploy loop with unique names exhaust memory. Stale entries are
// removed with DELETE /model.
const maxRegistryModels = 32

// Swap installs pipe under name: an existing entry's pipeline pointer is
// replaced atomically (in-flight batches finish on the old pipeline, the
// next flush uses the new one — no request is dropped or torn); a new
// name gets a fresh batcher, unless the registry is at capacity. The
// returned view is snapshotted under the lock; swapped reports whether
// the entry already existed.
func (reg *Registry) Swap(name string, pipe *ghsom.Pipeline) (view ModelView, swapped bool, err error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if e, ok := reg.entries[name]; ok {
		e.batcher.pipe.Store(pipe)
		e.loadedAt = time.Now()
		e.swaps++
		reg.ready.Store(true)
		return e.view(), true, nil
	}
	if len(reg.entries) >= maxRegistryModels {
		return ModelView{}, false, fmt.Errorf("registry full (%d models); DELETE unused entries first", maxRegistryModels)
	}
	e := &modelEntry{
		name:     name,
		batcher:  newBatcher(pipe, reg.cfg),
		loadedAt: time.Now(),
	}
	if reg.draining.Load() {
		// A swap may land during drain (it must complete — in-flight
		// upgrades are part of the no-dropped-requests contract), but a
		// brand-new entry created mid-drain admits nothing.
		e.batcher.q.CloseAdmission()
	}
	reg.entries[name] = e
	reg.ready.Store(true)
	return e.view(), false, nil
}

// remove unloads the named entry, shutting its batcher down after
// in-flight jobs drain. Returns false when the name is unknown.
func (reg *Registry) remove(name string) bool {
	reg.mu.Lock()
	e, ok := reg.entries[name]
	delete(reg.entries, name)
	reg.mu.Unlock()
	if ok {
		// Outside the lock: close drains pending jobs through one last
		// flush, which must not block other registry traffic.
		e.batcher.close()
	}
	return ok
}

// Mux builds the HTTP surface over the registry. Every response carries
// the instance-identity header when Config.Instance is set.
func (reg *Registry) Mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /detect", reg.handleDetect)
	mux.HandleFunc("POST /model", reg.handleLoadModel)
	mux.HandleFunc("DELETE /model", reg.handleUnloadModel)
	mux.HandleFunc("GET /models", reg.handleModels)
	mux.HandleFunc("GET /stats", reg.handleStats)
	// /healthz is readiness: load balancers stop routing here while the
	// initial model loads and the moment a drain begins. /livez is
	// liveness: the process is up — supervisors must not restart a
	// draining server that is still finishing in-flight work. The bodies
	// are single keywords ("ok", "loading", "draining") so upstream
	// health checkers can distinguish a replica that is warming up from
	// one on its way out.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case reg.draining.Load():
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case !reg.ready.Load():
			http.Error(w, "loading", http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		}
	})
	mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if reg.cfg.Pprof {
		// Opt-in: profiling endpoints leak operational detail, so they are
		// off unless -pprof is passed. These are the stdlib handlers that
		// net/http/pprof would install on the default mux.
		mux.HandleFunc("GET /debug/pprof/", netpprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", netpprof.Trace)
	}
	if reg.cfg.Instance == "" {
		return mux
	}
	instance := reg.cfg.Instance
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(InstanceHeader, instance)
		mux.ServeHTTP(w, r)
	})
}

// requestModel resolves the ?model= selector (default "default"),
// writing a 404 when the name is unknown.
func (reg *Registry) requestModel(w http.ResponseWriter, r *http.Request) *modelEntry {
	name := r.URL.Query().Get("model")
	if name == "" {
		name = DefaultModelName
	}
	e := reg.get(name)
	if e == nil {
		http.Error(w, fmt.Sprintf("unknown model %q", name), http.StatusNotFound)
		return nil
	}
	return e
}

func (reg *Registry) handleDetect(w http.ResponseWriter, r *http.Request) {
	if reg.draining.Load() {
		// Shed before touching the body: a draining server serves what it
		// admitted, nothing new. (The closed admission queue would reject
		// anyway; this path just refuses earlier and cheaper.) The
		// Retry-After hint reflects observed backlog: the time the drain
		// will plausibly take to clear what is queued.
		writeDetectError(w, serveq.ErrClosed, reg.drainRetrySeconds())
		return
	}
	if e := reg.requestModel(w, r); e != nil {
		e.batcher.handleDetect(w, r)
	}
}

// drainRetrySeconds derives the 503 Retry-After hint during drain from
// the observed backlog across every model: the estimated time for the
// deepest queue to flush, clamped like retryAfterSeconds, floored at 2s
// because a drain implies a restart or handoff is in progress.
func (reg *Registry) drainRetrySeconds() int {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	secs := 2
	for _, e := range reg.entries {
		if s := e.batcher.retryAfterSeconds(); s > secs {
			secs = s
		}
	}
	return secs
}

func (reg *Registry) handleStats(w http.ResponseWriter, r *http.Request) {
	if e := reg.requestModel(w, r); e != nil {
		snap := e.batcher.statsSnapshot()
		snap.Instance = reg.cfg.Instance
		snap.Draining = reg.draining.Load()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&snap)
	}
}

// errorStatus maps a request-parsing failure to its HTTP status: bodies
// that blew through a MaxBytesReader cap are 413 (the client should not
// retry the same payload), everything else is a 400.
func errorStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// ModelView is the JSON shape of one registry entry on /models and
// POST /model responses.
type ModelView struct {
	Name            string    `json:"name"`
	EnvelopeVersion int       `json:"envelopeVersion"`
	LoadedAt        time.Time `json:"loadedAt"`
	Swaps           int       `json:"swaps"`
	Nodes           int       `json:"nodes"`
	Units           int       `json:"units"`
	MaxDepth        int       `json:"maxDepth"`
	ArenaBytes      int       `json:"arenaBytes"`
	TableBytes      int       `json:"tableBytes"`
	Stats           StatsView `json:"stats"`
}

func (e *modelEntry) view() ModelView {
	pipe := e.batcher.pipe.Load()
	c := pipe.Compiled()
	st := c.Stats()
	return ModelView{
		Name:            e.name,
		EnvelopeVersion: pipe.EnvelopeVersion(),
		LoadedAt:        e.loadedAt,
		Swaps:           e.swaps,
		Nodes:           st.Maps,
		Units:           st.Units,
		MaxDepth:        st.MaxDepth,
		ArenaBytes:      c.ArenaBytes(),
		TableBytes:      c.TableBytes(),
		Stats:           e.batcher.statsSnapshot(),
	}
}

// handleLoadModel reads a pipeline envelope from the request body and
// installs it under ?name= (default "default"), hot-swapping any
// existing entry without interrupting in-flight traffic.
func (reg *Registry) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = DefaultModelName
	}
	// Cheap pre-check before parsing a potentially huge envelope; the
	// authoritative capacity check in Swap still guards the race.
	reg.mu.RLock()
	_, exists := reg.entries[name]
	full := len(reg.entries) >= maxRegistryModels
	reg.mu.RUnlock()
	if !exists && full {
		http.Error(w, fmt.Sprintf("registry full (%d models); DELETE unused entries first", maxRegistryModels), http.StatusConflict)
		return
	}
	if err := faultinject.Hit(faultinject.ModelLoad); err != nil {
		http.Error(w, fmt.Sprintf("load model: %v", err), http.StatusInternalServerError)
		return
	}
	pipe, err := ghsom.LoadPipeline(http.MaxBytesReader(w, r.Body, reg.cfg.MaxModel))
	if err != nil {
		http.Error(w, fmt.Sprintf("load model: %v", err), errorStatus(err))
		return
	}
	pipe.SetParallelism(reg.cfg.Parallelism)
	pipe.SetBMUPrecision(reg.cfg.Precision)
	view, swapped, err := reg.Swap(name, pipe)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !swapped {
		w.WriteHeader(http.StatusCreated)
	}
	json.NewEncoder(w).Encode(view)
}

// handleUnloadModel removes the ?name= entry from the registry, draining
// its batcher. The default model cannot be unloaded (swap it instead),
// so the server always has a model to serve.
func (reg *Registry) handleUnloadModel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" || name == DefaultModelName {
		http.Error(w, "cannot unload the default model; POST /model to replace it", http.StatusBadRequest)
		return
	}
	if !reg.remove(name) {
		http.Error(w, fmt.Sprintf("unknown model %q", name), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleModels lists the registry, sorted by name for stable output.
func (reg *Registry) handleModels(w http.ResponseWriter, r *http.Request) {
	reg.mu.RLock()
	views := make([]ModelView, 0, len(reg.entries))
	for _, e := range reg.entries {
		views = append(views, e.view())
	}
	reg.mu.RUnlock()
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(views)
}

// job is one client request moving through the batcher: its records, the
// absolute deadline it must finish by (zero = none), the predictions
// written back by the flush, and a done signal.
type job struct {
	records    []kdd.Record
	deadline   time.Time
	enqueuedAt time.Time
	preds      []ghsom.Prediction
	err        error
	done       chan struct{}
}

// Deadline implements serveq.Job.
func (j *job) Deadline() time.Time { return j.deadline }

// context returns a context bounded by the job's deadline, for per-job
// dataplane retries.
func (j *job) context() (context.Context, context.CancelFunc) {
	if j.deadline.IsZero() {
		return context.Background(), func() {}
	}
	return context.WithDeadline(context.Background(), j.deadline)
}

// serveStats is the monotonically growing counter set behind /stats.
type serveStats struct {
	mu         sync.Mutex
	start      time.Time
	batches    int64
	records    int64
	maxBatch   int
	sumLatency time.Duration
	maxLatency time.Duration
	// quarantined counts jobs that failed in the dataplane (poison
	// records, injected faults, recovered panics) without harming their
	// co-batched neighbors; lastError keeps the most recent failure for
	// /stats-level triage.
	quarantined int64
	lastError   string
	lastErrorAt time.Time
}

func (s *serveStats) record(records int, latency time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	s.records += int64(records)
	if records > s.maxBatch {
		s.maxBatch = records
	}
	s.sumLatency += latency
	if latency > s.maxLatency {
		s.maxLatency = latency
	}
}

// meanBatchLatency is the lifetime mean flush latency, zero before the
// first batch. Used to derive Retry-After from observed pressure.
func (s *serveStats) meanBatchLatency() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.batches == 0 {
		return 0
	}
	return s.sumLatency / time.Duration(s.batches)
}

// noteError records a dataplane failure; quarantine says whether it
// condemned a job (deadline misses, for example, are not quarantines).
func (s *serveStats) noteError(err error, quarantine bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if quarantine {
		s.quarantined++
	}
	s.lastError = err.Error()
	s.lastErrorAt = time.Now()
}

// StatsView is the marshal-safe derived view served on /stats. The
// worker-pool gauges (WorkerBound, BusyWorkers, IdleWorkers, QueueDepth)
// are point-in-time snapshots for diagnosing scaling stalls: a saturated
// queue with idle workers points at batching latency, busy workers with
// a deep queue at CPU saturation.
type StatsView struct {
	// Instance is the server's stable identity (Config.Instance), so a
	// cluster rollup can attribute this document to a replica.
	Instance string `json:"instance,omitempty"`
	// Draining reports the upstream-visible drain state: true from the
	// moment the SIGTERM sequence begins until the process exits.
	Draining      bool    `json:"draining"`
	Batches       int64   `json:"batches"`
	Records       int64   `json:"records"`
	MaxBatchSize  int     `json:"maxBatchSize"`
	UptimeSec     float64 `json:"uptimeSec"`
	RecordsPerSec float64 `json:"recordsPerSec"`
	MeanBatchSize float64 `json:"meanBatchSize"`
	MeanBatchMs   float64 `json:"meanBatchLatencyMs"`
	MaxBatchMs    float64 `json:"maxBatchLatencyMs"`
	// WorkerBound is the resolved per-batch worker count (the
	// -parallelism knob, 0 resolved to GOMAXPROCS).
	WorkerBound int `json:"workerBound"`
	// BMUPrecision is the effective candidate-generation rung of the
	// model's routing descent (the -bmu-precision knob with auto
	// resolved against the model's widest codebook).
	BMUPrecision string `json:"bmuPrecision"`
	// BusyWorkers is the worker count claimed by detect calls executing
	// right now (in-flight batches × WorkerBound); IdleWorkers is the
	// remainder of the bound, floored at zero.
	BusyWorkers int64 `json:"busyWorkers"`
	IdleWorkers int64 `json:"idleWorkers"`
	// QueueDepth is the number of jobs waiting in the admission queue,
	// not yet picked up by the flush loop; QueueCap is its bound.
	QueueDepth int `json:"queueDepth"`
	QueueCap   int `json:"queueCap"`
	// QueueWaitMaxMs and QueueWaitMeanMs aggregate how long dequeued
	// jobs waited for admission→dequeue since the last /stats scrape —
	// the backlog signal a cluster balancer uses to prefer the
	// less-loaded replica over a round-robin guess.
	QueueWaitMaxMs  float64 `json:"queueWaitMaxMs"`
	QueueWaitMeanMs float64 `json:"queueWaitMeanMs"`
	// RetryAfterSec is the server's current overload hint: the seconds a
	// shed client should wait, derived from observed queue pressure.
	RetryAfterSec int `json:"retryAfterSec"`
	// Overload and hardening counters: admission outcomes from the
	// bounded deadline-aware queue, plus dataplane quarantines.
	Admitted        int64  `json:"admitted"`
	ShedQueueFull   int64  `json:"shedQueueFull"`
	ShedDeadline    int64  `json:"shedDeadline"`
	ShedClosed      int64  `json:"shedClosed"`
	DroppedDeadline int64  `json:"droppedDeadline"`
	Quarantined     int64  `json:"quarantined"`
	LastError       string `json:"lastError,omitempty"`
	LastErrorAt     string `json:"lastErrorAt,omitempty"`
}

// snapshot derives the rate/mean fields under the lock.
func (s *serveStats) snapshot() StatsView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := StatsView{
		Batches:      s.batches,
		Records:      s.records,
		MaxBatchSize: s.maxBatch,
		MaxBatchMs:   s.maxLatency.Seconds() * 1e3,
	}
	up := time.Since(s.start)
	out.UptimeSec = up.Seconds()
	if up > 0 {
		out.RecordsPerSec = float64(s.records) / up.Seconds()
	}
	if s.batches > 0 {
		out.MeanBatchSize = float64(s.records) / float64(s.batches)
		out.MeanBatchMs = (s.sumLatency / time.Duration(s.batches)).Seconds() * 1e3
	}
	out.Quarantined = s.quarantined
	out.LastError = s.lastError
	if !s.lastErrorAt.IsZero() {
		out.LastErrorAt = s.lastErrorAt.UTC().Format(time.RFC3339Nano)
	}
	return out
}

// batcher accumulates jobs into micro-batches and flushes them through
// DetectBatch on size or deadline. The pipeline pointer is atomic: a
// model hot-swap stores a new pipeline, each flush loads the pointer
// exactly once, so every batch runs whole against one model — requests
// are never split or torn across a swap. Admission is the bounded
// deadline-aware serveq.Queue: a full queue sheds new work instead of
// building unbounded backlog, and jobs whose deadline lapses while
// queued are dropped before costing dataplane time.
type batcher struct {
	pipe           atomic.Pointer[ghsom.Pipeline]
	maxBatch       int
	flushEvery     time.Duration
	maxBody        int64
	par            int
	defaultTimeout time.Duration
	inflight       atomic.Int64
	q              *serveq.Queue[*job]
	quit           chan struct{}
	wg             sync.WaitGroup
	stats          serveStats
}

func newBatcher(pipe *ghsom.Pipeline, cfg Config) *batcher {
	b := &batcher{
		maxBatch:       cfg.MaxBatch,
		flushEvery:     cfg.FlushEvery,
		maxBody:        cfg.MaxBody,
		par:            cfg.Parallelism,
		defaultTimeout: cfg.DefaultTimeout,
		q:              serveq.New[*job](cfg.QueueCap),
		quit:           make(chan struct{}),
	}
	if b.maxBody < 1 {
		b.maxBody = DefaultMaxBodyBytes
	}
	b.pipe.Store(pipe)
	b.stats.start = time.Now()
	b.wg.Add(1)
	go b.loop()
	return b
}

func (b *batcher) close() {
	b.q.CloseAdmission()
	close(b.quit)
	b.wg.Wait()
	// Fail any job that raced past the loop's final drain, so no client
	// hangs on a batcher that will never flush again.
	for {
		select {
		case j := <-b.q.C():
			j.err = errUnloaded
			close(j.done)
		default:
			return
		}
	}
}

// errUnloaded is returned to requests that race a model unload.
var errUnloaded = fmt.Errorf("model unloaded")

// errDeadline is returned to jobs whose deadline lapsed before their
// batch could serve them.
var errDeadline = fmt.Errorf("deadline exceeded before detection completed")

// loop is the micro-batching core: it drains the job channel, flushing
// the pending batch when it reaches maxBatch records or when the oldest
// pending job has waited flushEvery.
func (b *batcher) loop() {
	defer b.wg.Done()
	var (
		pending []*job
		size    int
		timer   *time.Timer
		timeout <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timeout = nil, nil
		}
		if len(pending) == 0 {
			return
		}
		b.flush(pending, size)
		pending, size = nil, 0
	}
	take := func(j *job) bool {
		b.q.ObserveWait(time.Since(j.enqueuedAt))
		if !b.q.Alive(j, time.Now()) {
			// Expired while queued: fail it now, spend nothing on it.
			j.err = errDeadline
			close(j.done)
			return false
		}
		return true
	}
	for {
		select {
		case j := <-b.q.C():
			if !take(j) {
				continue
			}
			pending = append(pending, j)
			size += len(j.records)
			if size >= b.maxBatch {
				flush()
				continue
			}
			if timer == nil {
				timer = time.NewTimer(b.flushEvery)
				timeout = timer.C
			}
		case <-timeout:
			timer, timeout = nil, nil
			flush()
		case <-b.quit:
			// Drain whatever arrived before shutdown so no job hangs.
			for {
				select {
				case j := <-b.q.C():
					if !take(j) {
						continue
					}
					pending = append(pending, j)
					size += len(j.records)
				default:
					flush()
					return
				}
			}
		}
	}
}

// detectSafe runs one dataplane pass with the panic barrier and the
// chaos-drill fault points. A panicking batch (poison model state, an
// injected classify-panic) is converted to an error so the flush loop —
// and the process — survive it and quarantine only the offending jobs.
func detectSafe(ctx context.Context, pipe *ghsom.Pipeline, recs []kdd.Record, out []ghsom.Prediction) (preds []ghsom.Prediction, err error) {
	defer func() {
		if r := recover(); r != nil {
			preds, err = nil, fmt.Errorf("dataplane panic (job quarantined): %v", r)
		}
	}()
	faultinject.Hit(faultinject.DataplaneLatency)
	if err := faultinject.Hit(faultinject.ScratchExhausted); err != nil {
		return nil, err
	}
	faultinject.Hit(faultinject.ClassifyPanic)
	return pipe.DetectBatchCtx(ctx, recs, out)
}

// detectColumnarSafe is detectSafe for the columnar fast path.
func detectColumnarSafe(ctx context.Context, pipe *ghsom.Pipeline, cb *kdd.ColumnarBatch, out []ghsom.Prediction) (preds []ghsom.Prediction, err error) {
	defer func() {
		if r := recover(); r != nil {
			preds, err = nil, fmt.Errorf("dataplane panic (job quarantined): %v", r)
		}
	}()
	faultinject.Hit(faultinject.DataplaneLatency)
	if err := faultinject.Hit(faultinject.ScratchExhausted); err != nil {
		return nil, err
	}
	faultinject.Hit(faultinject.ClassifyPanic)
	return pipe.DetectColumnarCtx(ctx, cb, out)
}

// batchContext bounds a merged flush by the latest deadline among its
// jobs — but only when every job has one; a single no-deadline job means
// the batch must be allowed to run to completion.
func batchContext(pending []*job) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, j := range pending {
		if j.deadline.IsZero() {
			return context.Background(), func() {}
		}
		if j.deadline.After(latest) {
			latest = j.deadline
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// flush concatenates the pending jobs into one record batch, runs the
// dataplane, and scatters the predictions back per job. A failed merged
// batch must not fail co-batched clients' valid requests (and its record
// index refers to the concatenated batch, not any one client's payload),
// so on error every job is retried individually: valid jobs succeed and
// the bad job gets an error with job-local record indices. Jobs whose
// deadline lapsed while pending are failed without dataplane work, and
// each failure path is quarantined rather than allowed to escape.
func (b *batcher) flush(pending []*job, size int) {
	// Re-check deadlines at flush time: a job admitted alive may have
	// expired while the batch accumulated.
	now := time.Now()
	live := pending[:0]
	for _, j := range pending {
		if !b.q.Alive(j, now) {
			size -= len(j.records)
			j.err = errDeadline
			close(j.done)
			continue
		}
		live = append(live, j)
	}
	pending = live
	if len(pending) == 0 {
		return
	}
	// One pointer load per flush: the whole merged batch (and its per-job
	// retries) runs against a single pipeline even if a hot-swap lands
	// mid-flush.
	pipe := b.pipe.Load()
	batch := make([]kdd.Record, 0, size)
	for _, j := range pending {
		batch = append(batch, j.records...)
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	ctx, cancel := batchContext(pending)
	start := time.Now()
	preds, err := detectSafe(ctx, pipe, batch, nil)
	cancel()
	if err != nil {
		// Only the per-job retries actually serve records, so only they
		// count toward /stats; the failed merged attempt is discarded.
		// Each job retries under its own deadline, so one slow or poisoned
		// neighbor cannot condemn the rest.
		for _, j := range pending {
			if !b.q.Alive(j, time.Now()) {
				j.err = errDeadline
				close(j.done)
				continue
			}
			jctx, jcancel := j.context()
			start := time.Now()
			j.preds, j.err = detectSafe(jctx, pipe, j.records, nil)
			jcancel()
			if j.err == nil {
				b.stats.record(len(j.records), time.Since(start))
			} else if errors.Is(j.err, context.DeadlineExceeded) {
				b.stats.noteError(j.err, false)
				j.err = errDeadline
			} else {
				b.stats.noteError(j.err, true)
			}
			close(j.done)
		}
		return
	}
	b.stats.record(len(batch), time.Since(start))
	off := 0
	for _, j := range pending {
		j.preds = preds[off : off+len(j.records)]
		off += len(j.records)
		close(j.done)
	}
}

// submit pushes records through bounded admission and blocks until their
// batch is flushed, the deadline or ctx expires, or the batcher closes.
// Admission failures (queue full, past deadline, admission closed) come
// back immediately as serveq errors — the caller maps them to 429/503.
func (b *batcher) submit(ctx context.Context, records []kdd.Record, deadline time.Time) ([]ghsom.Prediction, error) {
	j := &job{records: records, deadline: deadline, enqueuedAt: time.Now(), done: make(chan struct{})}
	if err := b.q.Push(j); err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j.preds, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.quit:
		// The batcher is shutting down. The job may still have been
		// served by the final drain — report that result if it is
		// already in; otherwise tell the client the model went away.
		select {
		case <-j.done:
			return j.preds, j.err
		default:
			return nil, errUnloaded
		}
	}
}

// parserPool recycles NDJSON record parsers (and their internal buffers
// and string-interning tables) across requests, so the legacy ingestion
// path costs near-zero steady-state allocation too.
var parserPool = sync.Pool{New: func() any { return kdd.NewRecordParser(nil) }}

// readRecords parses NDJSON records with the pooled allocation-lean
// parser, reporting the line of the first malformed one. Accept/reject
// behavior matches the json.Decoder loop it replaced.
func readRecords(r io.Reader, maxRecords int) ([]kdd.Record, error) {
	if err := faultinject.Hit(faultinject.DecodeError); err != nil {
		return nil, err
	}
	p := parserPool.Get().(*kdd.RecordParser)
	p.Reset(r)
	out, err := p.AppendAll(nil, maxRecords)
	p.Reset(nil) // drop the body reference before pooling
	parserPool.Put(p)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// columnarPool recycles decoded-frame buffers across columnar requests.
var columnarPool = sync.Pool{New: func() any { return new(kdd.ColumnarBatch) }}

// maxRequestRecords bounds one HTTP request body by record count (the
// raw size is bounded by -max-body); bulk scoring belongs on the stdin
// path or multiple requests.
const maxRequestRecords = 100_000

// RequestDeadline resolves the absolute deadline of one request:
// X-GHSOM-Deadline-Ms wins, then any deadline on the request context
// (e.g. a proxy timeout), then the def fallback. A zero time means the
// request runs unbounded. Exported because the gateway resolves the same
// contract at its own edge before re-budgeting per hop.
func RequestDeadline(r *http.Request, def time.Duration) (time.Time, error) {
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return time.Time{}, fmt.Errorf("%s: want a positive integer of milliseconds, got %q", DeadlineHeader, h)
		}
		return time.Now().Add(time.Duration(ms) * time.Millisecond), nil
	}
	if dl, ok := r.Context().Deadline(); ok {
		return dl, nil
	}
	if def > 0 {
		return time.Now().Add(def), nil
	}
	return time.Time{}, nil
}

// retryAfterClamp bounds the derived Retry-After hint: at least 1s (the
// header is integral seconds and zero means "hammer me again"), at most
// 30s so a transient spike cannot park clients for minutes.
const (
	minRetryAfterSec = 1
	maxRetryAfterSec = 30
)

// retryAfterSeconds derives the overload Retry-After hint from observed
// queue pressure instead of a fixed constant: the estimated time to
// drain the current backlog — queued jobs served at the measured mean
// flush cadence — clamped to [1, 30] seconds. An idle or just-started
// server (no latency data yet) answers the 1s floor, matching the old
// fixed behavior.
func (b *batcher) retryAfterSeconds() int {
	depth := b.q.Depth()
	mean := b.stats.meanBatchLatency()
	if depth == 0 || mean <= 0 {
		return minRetryAfterSec
	}
	// Each flush serves at least one queued job, so depth × mean latency
	// bounds the drain time from above; the ceil keeps sub-second
	// pressure visible as the 1s floor.
	est := time.Duration(depth) * mean
	secs := int(math.Ceil(est.Seconds()))
	if secs < minRetryAfterSec {
		return minRetryAfterSec
	}
	if secs > maxRetryAfterSec {
		return maxRetryAfterSec
	}
	return secs
}

// writeDetectError maps a detection-path failure to its HTTP response.
// Load shedding is deliberate and retryable — 429 with Retry-After for
// overload (full queue, lapsed deadline), 503 for a draining or unloaded
// server — while dataplane failures (poison records, injected faults,
// quarantined panics) are the client's 422. A vanished client gets
// nothing. retryAfterSec is the pressure-derived wait hint.
func writeDetectError(w http.ResponseWriter, err error, retryAfterSec int) {
	if retryAfterSec < minRetryAfterSec {
		retryAfterSec = minRetryAfterSec
	}
	switch {
	case errors.Is(err, serveq.ErrFull), errors.Is(err, serveq.ErrPastDeadline), errors.Is(err, errDeadline):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, serveq.ErrClosed), errors.Is(err, errUnloaded):
		w.Header().Set("Retry-After", strconv.Itoa(max(retryAfterSec, 2)))
		http.Error(w, "server draining or model unloaded: "+err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled):
		// The client went away; there is no one to write to.
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
	}
}

func (b *batcher) handleDetect(w http.ResponseWriter, r *http.Request) {
	if ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err == nil && ct == kdd.ColumnarContentType {
		b.handleDetectColumnar(w, r)
		return
	}
	deadline, err := RequestDeadline(r, b.defaultTimeout)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	records, err := readRecords(http.MaxBytesReader(w, r.Body, b.maxBody), maxRequestRecords)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	if len(records) == 0 {
		http.Error(w, "empty request: expected NDJSON records", http.StatusBadRequest)
		return
	}
	preds, err := b.submit(r.Context(), records, deadline)
	if err != nil {
		writeDetectError(w, err, b.retryAfterSeconds())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range preds {
		if err := enc.Encode(&preds[i]); err != nil {
			return // client went away mid-response
		}
	}
}

// handleDetectColumnar is the wire-format fast path: each GHSOMWB1 frame
// in the body is already a formed batch, so it skips the micro-batcher
// and runs whole through DetectColumnar — column runs decoded straight
// into the pipeline's pooled flat matrix, no intermediate Record structs
// — against one atomically-loaded pipeline per frame. Predictions stream
// out as NDJSON in record order, frame by frame. Errors on the first
// frame map to a status code (400/413/422); once output has begun a
// malformed trailing frame just ends the response.
func (b *batcher) handleDetectColumnar(w http.ResponseWriter, r *http.Request) {
	// The HTTP/1 server closes the request body on the first response
	// write; a multi-frame body interleaves reads with prediction writes,
	// so opt in to full duplex (no-op where unsupported, e.g. HTTP/2,
	// which is duplex already).
	_ = http.NewResponseController(w).EnableFullDuplex()
	// Full duplex makes the body the handler's to finish: close it on
	// every exit so an early error return (bad frame, shed, poison) never
	// leaves the connection's reader mid-body — the server's keep-alive
	// loop would panic on the next request's read and reset the client.
	defer r.Body.Close()
	deadline, err := RequestDeadline(r, b.defaultTimeout)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	frameCtx := context.Context(nil)
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		frameCtx, cancel = context.WithDeadline(r.Context(), deadline)
		defer cancel()
	}
	body := http.MaxBytesReader(w, r.Body, b.maxBody)
	cb := columnarPool.Get().(*kdd.ColumnarBatch)
	defer columnarPool.Put(cb)
	enc := json.NewEncoder(w)
	var preds []ghsom.Prediction
	frames, total := 0, 0
	fail := func(msg string, code int) {
		if frames == 0 {
			http.Error(w, msg, code)
		}
	}
	for {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			// Out of budget: shed remaining frames. Before any output this
			// is a clean 429; mid-stream the truncated NDJSON ends here.
			if frames == 0 {
				writeDetectError(w, errDeadline, b.retryAfterSeconds())
			}
			return
		}
		err := kdd.ReadColumnarBatch(body, cb, kdd.DefaultColumnarLimits)
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(fmt.Sprintf("frame %d: %v", frames+1, err), errorStatus(err))
			return
		}
		if total += cb.Rows(); total > maxRequestRecords {
			fail(fmt.Sprintf("request exceeds %d records", maxRequestRecords), http.StatusBadRequest)
			return
		}
		pipe := b.pipe.Load()
		b.inflight.Add(1)
		start := time.Now()
		preds, err = detectColumnarSafe(frameCtx, pipe, cb, preds)
		b.inflight.Add(-1)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				b.stats.noteError(err, false)
				if frames == 0 {
					writeDetectError(w, errDeadline, b.retryAfterSeconds())
				}
				return
			}
			b.stats.noteError(err, true)
			if frames == 0 {
				writeDetectError(w, err, b.retryAfterSeconds())
			}
			return
		}
		b.stats.record(cb.Rows(), time.Since(start))
		if frames == 0 {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		frames++
		for i := range preds {
			if err := enc.Encode(&preds[i]); err != nil {
				return // client went away mid-response
			}
		}
	}
	if frames == 0 {
		http.Error(w, "empty request: expected columnar frames", http.StatusBadRequest)
	}
}

// statsSnapshot derives the counter view and overlays the point-in-time
// worker-pool gauges.
func (b *batcher) statsSnapshot() StatsView {
	out := b.stats.snapshot()
	bound := parallel.Resolve(b.par)
	busy := b.inflight.Load() * int64(bound)
	out.WorkerBound = bound
	if pipe := b.pipe.Load(); pipe != nil {
		out.BMUPrecision = pipe.BMUPrecision().String()
	}
	out.BusyWorkers = busy
	if idle := int64(bound) - busy; idle > 0 {
		out.IdleWorkers = idle
	}
	out.QueueDepth = b.q.Depth()
	out.QueueCap = b.q.Cap()
	waits := b.q.TakeWaitStats()
	out.QueueWaitMaxMs = waits.Max.Seconds() * 1e3
	out.QueueWaitMeanMs = waits.Mean.Seconds() * 1e3
	out.RetryAfterSec = b.retryAfterSeconds()
	qs := b.q.Stats()
	out.Admitted = qs.Admitted
	out.ShedQueueFull = qs.RejectedFull
	out.ShedDeadline = qs.RejectedDeadline
	out.ShedClosed = qs.RejectedClosed
	out.DroppedDeadline = qs.DroppedDeadline
	return out
}
