package serve

// Chaos suite: drives the server through overload, drain, poison storms,
// and injected dataplane faults, asserting the hardening contract — every
// accepted request is served whole and byte-identical to the unloaded
// server's verdicts, everything else sheds with a clean retryable status,
// and no scenario leaks goroutines or kills the process.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"ghsom"
	"ghsom/internal/faultinject"
	"ghsom/internal/kdd"
	"ghsom/internal/leakcheck"
)

// predsEqual reports whether an HTTP response's predictions match the
// direct dataplane's, element for element.
func predsEqual(preds, want []ghsom.Prediction) bool {
	if len(preds) != len(want) {
		return false
	}
	for i := range preds {
		if preds[i] != want[i] {
			return false
		}
	}
	return true
}

// fetchStats decodes /stats for the default model.
func fetchStats(t *testing.T, url string) StatsView {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatsView
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestChaosOverloadShedsCleanly throttles the dataplane with injected
// latency, shrinks the admission queue, and hammers the server at 2×
// what it can absorb: every 200 must carry verdicts byte-identical to
// the unloaded server's, every shed must be a clean 429 with Retry-After,
// nothing else may come back, and the shed/deadline counters must show
// up on /stats. With CHAOS_OUT set, the final counter snapshot is
// written there as a CI artifact.
func TestChaosOverloadShedsCleanly(t *testing.T) {
	leakcheck.CheckSlack(t, 2)
	pipe, recs := testPipeline(t)
	eval := recs[:24]
	want, err := pipe.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(64, 2*time.Millisecond, 0)
	cfg.QueueCap = 2 // tiny: overload must shed, not queue
	cfg.DefaultTimeout = 5 * time.Second
	reg := NewRegistry(cfg)
	defer reg.Close()
	if _, _, err := reg.Swap(DefaultModelName, pipe); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Mux())
	defer srv.Close()
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	t.Cleanup(faultinject.Disarm)
	if err := faultinject.Arm(faultinject.DataplaneLatency + "=latency:5ms"); err != nil {
		t.Fatal(err)
	}

	body := ndjson(t, eval)
	const workers, reqs = 12, 6
	var (
		mu     sync.Mutex
		counts = map[int]int{}
		fails  []string
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reqs; r++ {
				resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					fails = append(fails, err.Error())
					mu.Unlock()
					return
				}
				var note string
				switch resp.StatusCode {
				case http.StatusOK:
					if !predsEqual(decodePreds(t, resp.Body), want) {
						note = "200 with verdicts differing from the unloaded server"
					}
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						note = "429 without Retry-After"
					}
					io.Copy(io.Discard, resp.Body)
				default:
					raw, _ := io.ReadAll(resp.Body)
					note = fmt.Sprintf("unexpected status %d: %s", resp.StatusCode, raw)
				}
				resp.Body.Close()
				mu.Lock()
				counts[resp.StatusCode]++
				if note != "" {
					fails = append(fails, note)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, f := range fails {
		t.Error(f)
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("no request was served under overload: %v", counts)
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Errorf("2x overload against a %d-deep queue shed nothing: %v", cfg.QueueCap, counts)
	}

	// Phase two: 1ms budgets against a 20ms dataplane — admitted jobs
	// must be dropped as deadline misses, never served late.
	if err := faultinject.Arm(faultinject.DataplaneLatency + "=latency:20ms"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/detect", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(DeadlineHeader, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("1ms-budget request %d: status %d, want 429", i, resp.StatusCode)
		}
	}
	faultinject.Disarm()

	snap := fetchStats(t, srv.URL)
	if snap.Admitted == 0 {
		t.Error("stats show no admitted jobs")
	}
	if snap.ShedQueueFull == 0 {
		t.Errorf("stats show no queue-full sheds: %+v", snap)
	}
	if snap.ShedDeadline+snap.DroppedDeadline == 0 {
		t.Errorf("stats show no deadline misses: %+v", snap)
	}
	if out := os.Getenv("CHAOS_OUT"); out != "" {
		raw, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSwapUnderDrain begins the SIGTERM drain sequence under live load
// and lands a model hot-swap mid-drain: the swap must complete, loaded
// work must finish whole on exactly one model, new work must shed with a
// clean 503, and the drain must conclude within grace without leaking
// goroutines.
func TestSwapUnderDrain(t *testing.T) {
	leakcheck.CheckSlack(t, 2)
	pipeA, recs := testPipeline(t)
	pipeB := altPipeline(t, recs)
	eval := recs[:30]
	wantA, err := pipeA.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := pipeB.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(testConfig(64, 2*time.Millisecond, 0))
	defer reg.Close()
	if _, _, err := reg.Swap(DefaultModelName, pipeA); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Mux())
	defer srv.Close()
	t.Cleanup(http.DefaultClient.CloseIdleConnections)

	body := ndjson(t, eval)
	const workers, reqs = 6, 12
	var (
		mu             sync.Mutex
		fails          []string
		saw200, saw503 bool
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reqs; r++ {
				resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					fails = append(fails, err.Error())
					mu.Unlock()
					return
				}
				var note string
				switch resp.StatusCode {
				case http.StatusOK:
					preds := decodePreds(t, resp.Body)
					if !predsEqual(preds, wantA) && !predsEqual(preds, wantB) {
						note = "torn response: matches neither model wholesale"
					}
					mu.Lock()
					saw200 = true
					mu.Unlock()
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						note = "503 without Retry-After"
					}
					io.Copy(io.Discard, resp.Body)
					mu.Lock()
					saw503 = true
					mu.Unlock()
				case http.StatusTooManyRequests:
					io.Copy(io.Discard, resp.Body)
				default:
					raw, _ := io.ReadAll(resp.Body)
					note = fmt.Sprintf("unexpected status %d: %s", resp.StatusCode, raw)
				}
				resp.Body.Close()
				if note != "" {
					mu.Lock()
					fails = append(fails, note)
					mu.Unlock()
				}
			}
		}()
	}

	// Let some load land on model A, then begin the drain.
	time.Sleep(10 * time.Millisecond)
	reg.BeginDrain()

	// A hot-swap arriving mid-drain is part of the contract: it must
	// complete (200, swaps=1) even though detection admission is closed.
	var envB bytes.Buffer
	if err := pipeB.Save(&envB); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/model", "application/octet-stream", bytes.NewReader(envB.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var swapped ModelView
	if err := json.NewDecoder(resp.Body).Decode(&swapped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || swapped.Swaps != 1 {
		t.Fatalf("swap during drain: status %d view %+v, want 200 swaps=1", resp.StatusCode, swapped)
	}

	wg.Wait()
	for _, f := range fails {
		t.Error(f)
	}
	if !saw200 {
		t.Error("no request was served before the drain")
	}
	if !saw503 {
		t.Error("no request observed the draining 503")
	}

	// Readiness reflects the drain; liveness does not. /stats reports the
	// drain to upstream coordinators.
	for path, want := range map[string]int{"/healthz": http.StatusServiceUnavailable, "/livez": http.StatusOK} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s during drain = %d, want %d", path, resp.StatusCode, want)
		}
	}
	if snap := fetchStats(t, srv.URL); !snap.Draining {
		t.Error("stats do not report draining mid-drain")
	}

	// The full drain sequence (the same steps cmd/ghsom-serve runs on
	// SIGTERM) concludes within grace.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Config.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not conclude cleanly: %v", err)
	}
	reg.Close()
}

// TestPoisonStormIsolation co-batches poison requests (undecodable
// symbols on the NDJSON path, NaN payloads on the columnar path) with
// valid ones: valid clients always get their exact verdicts, poison
// clients get a 422 naming their own record, and the quarantine counter
// records the storm.
func TestPoisonStormIsolation(t *testing.T) {
	leakcheck.CheckSlack(t, 2)
	pipe, recs := testPipeline(t)
	good := recs[:20]
	want, err := pipe.DetectAll(good)
	if err != nil {
		t.Fatal(err)
	}
	// Big batch and slow flush so poison and valid jobs share flushes.
	b := newBatcher(pipe, testConfig(1024, 10*time.Millisecond, 0))
	defer b.close()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /detect", b.handleDetect)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	t.Cleanup(http.DefaultClient.CloseIdleConnections)

	poison := append([]kdd.Record(nil), recs[20:30]...)
	poison[7].Flag = "BOGUS"
	goodBody := ndjson(t, good)
	poisonBody := ndjson(t, poison)

	const rounds = 5
	var wg sync.WaitGroup
	var mu sync.Mutex
	var fails []string
	post := func(body []byte, check func(status int, raw []byte) string) {
		defer wg.Done()
		resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			mu.Lock()
			fails = append(fails, err.Error())
			mu.Unlock()
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if note := check(resp.StatusCode, raw); note != "" {
			mu.Lock()
			fails = append(fails, note)
			mu.Unlock()
		}
	}
	for r := 0; r < rounds; r++ {
		wg.Add(3)
		go post(goodBody, func(status int, raw []byte) string {
			if status != http.StatusOK {
				return fmt.Sprintf("valid job: status %d: %s", status, raw)
			}
			if !predsEqual(decodePreds(t, bytes.NewReader(raw)), want) {
				return "valid job served wrong verdicts next to poison"
			}
			return ""
		})
		go post(goodBody, func(status int, raw []byte) string {
			if status != http.StatusOK {
				return fmt.Sprintf("valid job: status %d: %s", status, raw)
			}
			return ""
		})
		go post(poisonBody, func(status int, raw []byte) string {
			if status != http.StatusUnprocessableEntity || !strings.Contains(string(raw), "record 7") {
				return fmt.Sprintf("poison job: status %d body %q, want 422 naming record 7", status, raw)
			}
			return ""
		})
		wg.Wait()
	}
	for _, f := range fails {
		t.Error(f)
	}
	if q := b.stats.snapshot().Quarantined; q < rounds {
		t.Errorf("quarantined = %d, want >= %d", q, rounds)
	}

	// Columnar storm: a frame with a raw NaN (inexpressible in JSON,
	// trivial on the wire) fails with its record named, not a truncated
	// 200 stream.
	nan := append([]kdd.Record(nil), recs[:8]...)
	nan[5].SameSrvRate = math.NaN()
	resp, err := http.Post(srv.URL+"/detect", kdd.ColumnarContentType, bytes.NewReader(columnarBody(t, nan)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(string(raw), "record 5") {
		t.Errorf("NaN frame: status %d body %q, want 422 naming record 5", resp.StatusCode, raw)
	}
}

// TestPanicIsolation pins the recover() barrier: an injected dataplane
// panic is absorbed — a panic on the merged flush falls back to per-job
// retries, a persistent panic quarantines only its job as a 422 — and
// the server keeps serving afterward.
func TestPanicIsolation(t *testing.T) {
	leakcheck.CheckSlack(t, 2)
	pipe, recs := testPipeline(t)
	eval := recs[:12]
	want, err := pipe.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	b := newBatcher(pipe, testConfig(64, 2*time.Millisecond, 0))
	defer b.close()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /detect", b.handleDetect)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	t.Cleanup(faultinject.Disarm)

	post := func() (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", bytes.NewReader(ndjson(t, eval)))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, raw
	}

	// One panic: the merged flush dies, the per-job retry succeeds — the
	// client never sees the crash.
	if err := faultinject.Arm(faultinject.ClassifyPanic + "=panic:1"); err != nil {
		t.Fatal(err)
	}
	if status, raw := post(); status != http.StatusOK || !predsEqual(decodePreds(t, bytes.NewReader(raw)), want) {
		t.Fatalf("one-shot panic: status %d, want 200 with exact verdicts", status)
	}

	// A panic that persists through the retry condemns only that job.
	if err := faultinject.Arm(faultinject.ClassifyPanic + "=panic:2"); err != nil {
		t.Fatal(err)
	}
	if status, raw := post(); status != http.StatusUnprocessableEntity || !strings.Contains(string(raw), "panic") {
		t.Fatalf("persistent panic: status %d body %q, want 422 mentioning the quarantined panic", status, raw)
	}
	faultinject.Disarm()

	// The server survives: the next request serves normally.
	if status, raw := post(); status != http.StatusOK || !predsEqual(decodePreds(t, bytes.NewReader(raw)), want) {
		t.Fatalf("post-panic request: status %d, want 200 with exact verdicts", status)
	}
	snap := b.stats.snapshot()
	if snap.Quarantined < 1 {
		t.Errorf("quarantined = %d, want >= 1", snap.Quarantined)
	}
	if !strings.Contains(snap.LastError, "panic") {
		t.Errorf("lastError = %q, want the quarantined panic", snap.LastError)
	}
}

// TestHealthzLifecycle walks readiness through its three states —
// loading, serving, draining — and pins that liveness stays green
// throughout.
func TestHealthzLifecycle(t *testing.T) {
	pipe, _ := testPipeline(t)
	reg := NewRegistry(testConfig(64, 2*time.Millisecond, 0))
	defer reg.Close()
	srv := httptest.NewServer(reg.Mux())
	defer srv.Close()
	t.Cleanup(http.DefaultClient.CloseIdleConnections)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, strings.TrimSpace(string(raw))
	}

	if status, body := get("/healthz"); status != http.StatusServiceUnavailable || body != "loading" {
		t.Errorf("pre-model /healthz = %d %q, want 503 loading", status, body)
	}
	if status, _ := get("/livez"); status != http.StatusOK {
		t.Errorf("pre-model /livez = %d, want 200", status)
	}

	if _, _, err := reg.Swap(DefaultModelName, pipe); err != nil {
		t.Fatal(err)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Errorf("serving /healthz = %d, want 200", status)
	}

	reg.BeginDrain()
	if status, body := get("/healthz"); status != http.StatusServiceUnavailable || body != "draining" {
		t.Errorf("draining /healthz = %d %q, want 503 draining", status, body)
	}
	if status, _ := get("/livez"); status != http.StatusOK {
		t.Errorf("draining /livez = %d, want 200", status)
	}
}

// TestFaultInjectionSmoke cycles every injection point under live
// traffic for a bounded window (GHSOM_CHAOS_SMOKE stretches it in CI),
// asserting the server only ever answers with clean statuses and that
// every 200 carries a complete verdict stream.
func TestFaultInjectionSmoke(t *testing.T) {
	pipe, recs := testPipeline(t)
	window := 500 * time.Millisecond
	if s := os.Getenv("GHSOM_CHAOS_SMOKE"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("GHSOM_CHAOS_SMOKE: %v", err)
		}
		window = d
	}
	eval := recs[:16]
	cfg := testConfig(64, 2*time.Millisecond, 0)
	cfg.DefaultTimeout = 5 * time.Second
	reg := NewRegistry(cfg)
	defer reg.Close()
	if _, _, err := reg.Swap(DefaultModelName, pipe); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Mux())
	defer srv.Close()
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	t.Cleanup(faultinject.Disarm)

	var env bytes.Buffer
	if err := pipe.Save(&env); err != nil {
		t.Fatal(err)
	}
	specs := []string{
		"",
		faultinject.DataplaneLatency + "=latency:2ms",
		faultinject.DecodeError + "=error:3",
		faultinject.ScratchExhausted + "=error:2",
		faultinject.ClassifyPanic + "=panic:1",
		faultinject.ModelLoad + "=error:1",
	}
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true, // injected decode failures
		http.StatusUnprocessableEntity: true, // quarantined dataplane faults
		http.StatusTooManyRequests:     true,
		http.StatusInternalServerError: true, // injected model-load failures
		http.StatusServiceUnavailable:  true,
	}
	body := ndjson(t, eval)
	deadline := time.Now().Add(window)
	for i := 0; time.Now().Before(deadline); i++ {
		if err := faultinject.Arm(specs[i%len(specs)]); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if !allowed[resp.StatusCode] {
				t.Fatalf("spec %q: status %d: %s", specs[i%len(specs)], resp.StatusCode, raw)
			}
			if resp.StatusCode == http.StatusOK {
				if preds := decodePreds(t, bytes.NewReader(raw)); len(preds) != len(eval) {
					t.Fatalf("spec %q: truncated 200 stream: %d of %d verdicts", specs[i%len(specs)], len(preds), len(eval))
				}
			}
		}
		// Exercise the model-load point too.
		resp, err := http.Post(srv.URL+"/model?name=smoke", "application/octet-stream", bytes.NewReader(env.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if !allowed[resp.StatusCode] && resp.StatusCode != http.StatusCreated {
			t.Fatalf("spec %q: POST /model status %d", specs[i%len(specs)], resp.StatusCode)
		}
	}
	faultinject.Disarm()
	if hits := faultinject.Hits(faultinject.DataplaneLatency); hits == 0 {
		t.Error("smoke window never fired the dataplane-latency point")
	}
}
