package trafficgen

import "ghsom/internal/flowstats"

// episodeGens dispatches an attack label to its episode generator. Each
// call emits one episode: a time-local burst of connections carrying the
// attack's signature.
var episodeGens = map[string]func(*gen){
	// DoS
	"neptune":  (*gen).neptuneEpisode,
	"smurf":    (*gen).smurfEpisode,
	"back":     (*gen).backEpisode,
	"teardrop": (*gen).teardropEpisode,
	"pod":      (*gen).podEpisode,
	"land":     (*gen).landEpisode,
	// Probe
	"portsweep": (*gen).portsweepEpisode,
	"ipsweep":   (*gen).ipsweepEpisode,
	"nmap":      (*gen).nmapEpisode,
	"satan":     (*gen).satanEpisode,
	// R2L
	"guess_passwd": (*gen).guessPasswdEpisode,
	"warezclient":  (*gen).warezclientEpisode,
	"warezmaster":  (*gen).warezmasterEpisode,
	"ftp_write":    (*gen).ftpWriteEpisode,
	"imap":         (*gen).imapEpisode,
	"phf":          (*gen).phfEpisode,
	"multihop":     (*gen).multihopEpisode,
	"spy":          (*gen).spyEpisode,
	// U2R
	"buffer_overflow": (*gen).bufferOverflowEpisode,
	"rootkit":         (*gen).rootkitEpisode,
	"loadmodule":      (*gen).loadmoduleEpisode,
	"perl":            (*gen).perlEpisode,
}

// --- DoS ---

// neptuneEpisode emits a SYN flood: hundreds of half-open connections
// (flag S0, zero payload) from spoofed sources to one victim service.
// Signature: count and serror_rate saturate.
func (g *gen) neptuneEpisode() {
	victim := g.server()
	service := [...]string{"private", "http", "telnet", "smtp"}[g.rng.Intn(4)]
	n := g.intn(250, 600)
	start := g.when()
	span := g.uniform(2, 12)
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol: "tcp",
			label:    "neptune",
			fc: flowstats.Conn{
				Time:    start + g.rng.Float64()*span,
				SrcHost: g.spoofed(),
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: service,
				Flag:    "S0",
			},
		})
	}
}

// smurfEpisode emits an ICMP echo-reply flood (ecr_i) at one victim:
// fixed-size 1032-byte payloads from many spoofed reflectors. Signature:
// huge srv_count on icmp with constant src_bytes.
func (g *gen) smurfEpisode() {
	victim := g.server()
	n := g.intn(300, 700)
	start := g.when()
	span := g.uniform(3, 15)
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol: "icmp",
			label:    "smurf",
			srcBytes: 1032,
			fc: flowstats.Conn{
				Time:    start + g.rng.Float64()*span,
				SrcHost: g.spoofed(),
				DstHost: victim,
				SrcPort: 0,
				Service: "ecr_i",
				Flag:    "SF",
			},
		})
	}
}

// backEpisode emits the Apache "back" DoS: HTTP requests whose URL is
// thousands of slashes. Signature: src_bytes ~54k on service http.
func (g *gen) backEpisode() {
	victim := g.server()
	src := g.client()
	n := g.intn(20, 80)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol: "tcp",
			label:    "back",
			duration: g.uniform(0, 4),
			srcBytes: g.jitter(54540),
			dstBytes: g.jitter(8314),
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "http",
				Flag:    "SF",
			},
		})
		t += g.uniform(0.05, 0.5)
	}
}

// teardropEpisode emits overlapping-fragment UDP datagrams
// (wrong_fragment set). Signature: udp with wrong_fragment > 0.
func (g *gen) teardropEpisode() {
	victim := g.server()
	src := g.spoofed()
	n := g.intn(80, 250)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol:      "udp",
			label:         "teardrop",
			srcBytes:      28,
			wrongFragment: 3,
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "private",
				Flag:    "SF",
			},
		})
		t += g.uniform(0.01, 0.1)
	}
}

// podEpisode emits ping-of-death ICMP fragments. Signature: icmp ecr_i
// with wrong_fragment.
func (g *gen) podEpisode() {
	victim := g.server()
	src := g.spoofed()
	n := g.intn(40, 150)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol:      "icmp",
			label:         "pod",
			srcBytes:      1480,
			wrongFragment: 1,
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: 0,
				Service: "ecr_i",
				Flag:    "SF",
			},
		})
		t += g.uniform(0.02, 0.2)
	}
}

// landEpisode emits the land attack: a SYN whose source equals its
// destination. Signature: the land bit itself.
func (g *gen) landEpisode() {
	victim := g.server()
	n := g.intn(1, 3)
	start := g.when()
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol: "tcp",
			label:    "land",
			land:     true,
			fc: flowstats.Conn{
				Time:    start + float64(i)*0.5,
				SrcHost: victim,
				DstHost: victim,
				SrcPort: 23,
				Service: "telnet",
				Flag:    "S0",
			},
		})
	}
}

// --- Probe ---

// portsweepEpisode probes many services on one host. Signature: REJ/S0
// flags with near-1 diff_srv_rate at the victim.
func (g *gen) portsweepEpisode() {
	victim := g.server()
	src := g.client()
	n := g.intn(30, 90)
	start := g.when()
	t := start
	services := []string{"http", "ftp", "telnet", "smtp", "pop_3", "imap4", "ssh", "finger", "auth", "private"}
	for i := 0; i < n; i++ {
		flag := "REJ"
		if g.chance(0.3) {
			flag = "S0"
		}
		g.emit(rawConn{
			protocol: "tcp",
			label:    "portsweep",
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: services[g.rng.Intn(len(services))],
				Flag:    flag,
			},
		})
		t += g.uniform(0.02, 0.6)
	}
}

// ipsweepEpisode pings many hosts looking for live ones. Signature: icmp
// eco_i fanning out across destinations (high srv_diff_host_rate).
func (g *gen) ipsweepEpisode() {
	src := g.client()
	n := g.intn(30, 90)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		dst := g.server()
		if g.chance(0.4) {
			dst = g.client()
		}
		g.emit(rawConn{
			protocol: "icmp",
			label:    "ipsweep",
			srcBytes: 8,
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: dst,
				SrcPort: 0,
				Service: "eco_i",
				Flag:    "SF",
			},
		})
		t += g.uniform(0.01, 0.3)
	}
}

// nmapEpisode is a fast stealth scan: SH/S0/REJ mix over services and a
// couple of hosts.
func (g *gen) nmapEpisode() {
	src := g.client()
	n := g.intn(20, 60)
	start := g.when()
	t := start
	services := []string{"http", "ftp", "telnet", "private", "ssh", "smtp"}
	flags := []string{"SH", "S0", "REJ"}
	victims := []int{g.server(), g.server()}
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol: "tcp",
			label:    "nmap",
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victims[g.rng.Intn(len(victims))],
				SrcPort: g.ephemeralPort(),
				Service: services[g.rng.Intn(len(services))],
				Flag:    flags[g.rng.Intn(len(flags))],
			},
		})
		t += g.uniform(0.005, 0.08)
	}
}

// satanEpisode is a vulnerability scan across hosts and services with
// mixed rejected and tiny successful probes.
func (g *gen) satanEpisode() {
	src := g.client()
	n := g.intn(50, 140)
	start := g.when()
	t := start
	services := []string{"http", "ftp", "telnet", "smtp", "finger", "auth", "private", "domain_u"}
	for i := 0; i < n; i++ {
		flag := "REJ"
		var src2, dst2 float64
		if g.chance(0.25) {
			flag = "SF"
			src2, dst2 = g.uniform(10, 60), g.uniform(20, 200)
		}
		proto := "tcp"
		svc := services[g.rng.Intn(len(services))]
		if svc == "domain_u" {
			proto = "udp"
		}
		g.emit(rawConn{
			protocol: proto,
			label:    "satan",
			srcBytes: src2,
			dstBytes: dst2,
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: g.server(),
				SrcPort: g.ephemeralPort(),
				Service: svc,
				Flag:    flag,
			},
		})
		t += g.uniform(0.01, 0.25)
	}
}

// --- R2L ---

// guessPasswdEpisode is a password-guessing run against one login
// service: a series of short sessions each ending in a failed login.
func (g *gen) guessPasswdEpisode() {
	victim := g.server()
	src := g.client()
	service := [...]string{"telnet", "pop_3", "ftp"}[g.rng.Intn(3)]
	n := g.intn(10, 30)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol:        "tcp",
			label:           "guess_passwd",
			duration:        g.uniform(1, 5),
			srcBytes:        g.jitter(120),
			dstBytes:        g.jitter(300),
			numFailedLogins: float64(g.intn(1, 5)),
			hot:             1, // failed auth is itself a hot indicator
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: service,
				Flag:    "SF",
			},
		})
		t += g.uniform(1, 6)
	}
}

// warezclientEpisode downloads pirated content over anonymous FTP:
// guest logins pulling large files.
func (g *gen) warezclientEpisode() {
	victim := g.server()
	src := g.client()
	n := g.intn(5, 18)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol:     "tcp",
			label:        "warezclient",
			duration:     g.uniform(2, 90),
			srcBytes:     g.jitter(150),
			dstBytes:     g.uniform(100000, 5000000),
			loggedIn:     true,
			isGuestLogin: true,
			hot:          float64(g.intn(1, 3)),
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "ftp_data",
				Flag:    "SF",
			},
		})
		t += g.uniform(5, 60)
	}
}

// warezmasterEpisode uploads pirated content: the mirror image of
// warezclient with large src_bytes.
func (g *gen) warezmasterEpisode() {
	victim := g.server()
	src := g.client()
	n := g.intn(2, 8)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol:         "tcp",
			label:            "warezmaster",
			duration:         g.uniform(5, 120),
			srcBytes:         g.uniform(100000, 3000000),
			dstBytes:         g.jitter(300),
			loggedIn:         true,
			isGuestLogin:     true,
			hot:              float64(g.intn(1, 3)),
			numFileCreations: 1,
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "ftp",
				Flag:    "SF",
			},
		})
		t += g.uniform(10, 120)
	}
}

// ftpWriteEpisode exploits a writable anonymous FTP directory.
func (g *gen) ftpWriteEpisode() {
	victim := g.server()
	src := g.client()
	n := g.intn(1, 3)
	start := g.when()
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol:         "tcp",
			label:            "ftp_write",
			duration:         g.uniform(5, 60),
			srcBytes:         g.jitter(250),
			dstBytes:         g.jitter(400),
			loggedIn:         true,
			isGuestLogin:     true,
			numFileCreations: float64(g.intn(1, 2)),
			numAccessFiles:   1,
			fc: flowstats.Conn{
				Time:    start + float64(i)*10,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "ftp",
				Flag:    "SF",
			},
		})
	}
}

// imapEpisode attacks the IMAP server (buffer exploit attempts over the
// imap4 service, connections often reset).
func (g *gen) imapEpisode() {
	victim := g.server()
	src := g.client()
	n := g.intn(2, 6)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		flag := "RSTO"
		if g.chance(0.4) {
			flag = "SF"
		}
		g.emit(rawConn{
			protocol: "tcp",
			label:    "imap",
			duration: g.uniform(0, 3),
			srcBytes: g.jitter(1200),
			dstBytes: g.jitter(300),
			hot:      1,
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "imap4",
				Flag:    flag,
			},
		})
		t += g.uniform(1, 10)
	}
}

// phfEpisode exploits the classic CGI phf bug over HTTP.
func (g *gen) phfEpisode() {
	g.emit(rawConn{
		protocol:       "tcp",
		label:          "phf",
		duration:       g.uniform(0, 2),
		srcBytes:       g.jitter(51),
		dstBytes:       g.jitter(8127),
		hot:            2,
		numAccessFiles: 1,
		fc: flowstats.Conn{
			Time:    g.when(),
			SrcHost: g.client(),
			DstHost: g.server(),
			SrcPort: g.ephemeralPort(),
			Service: "http",
			Flag:    "SF",
		},
	})
}

// multihopEpisode hops through an intermediate host to reach a target:
// long telnet sessions with file activity.
func (g *gen) multihopEpisode() {
	victim := g.server()
	src := g.client()
	n := g.intn(1, 3)
	start := g.when()
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol:         "tcp",
			label:            "multihop",
			duration:         g.uniform(30, 500),
			srcBytes:         g.jitter(1500),
			dstBytes:         g.jitter(3000),
			loggedIn:         true,
			hot:              float64(g.intn(1, 4)),
			numFileCreations: float64(g.intn(0, 2)),
			fc: flowstats.Conn{
				Time:    start + float64(i)*60,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "telnet",
				Flag:    "SF",
			},
		})
	}
}

// spyEpisode is low-and-slow credential snooping over telnet.
func (g *gen) spyEpisode() {
	g.emit(rawConn{
		protocol:       "tcp",
		label:          "spy",
		duration:       g.uniform(60, 900),
		srcBytes:       g.jitter(800),
		dstBytes:       g.jitter(5000),
		loggedIn:       true,
		hot:            1,
		numAccessFiles: float64(g.intn(1, 2)),
		fc: flowstats.Conn{
			Time:    g.when(),
			SrcHost: g.client(),
			DstHost: g.server(),
			SrcPort: g.ephemeralPort(),
			Service: "telnet",
			Flag:    "SF",
		},
	})
}

// --- U2R ---

// u2rSession emits one privilege-escalation telnet session with the given
// content signature.
func (g *gen) u2rSession(label string, hotLo, hotHi int, rootShell, suAttempted float64, numRootLo, numRootHi, filesLo, filesHi int) {
	g.emit(rawConn{
		protocol:         "tcp",
		label:            label,
		duration:         g.uniform(30, 400),
		srcBytes:         g.jitter(1800),
		dstBytes:         g.jitter(10000),
		loggedIn:         true,
		hot:              float64(g.intn(hotLo, hotHi)),
		rootShell:        rootShell,
		suAttempted:      suAttempted,
		numRoot:          float64(g.intn(numRootLo, numRootHi)),
		numFileCreations: float64(g.intn(filesLo, filesHi)),
		numCompromised:   float64(g.intn(0, 2)),
		numShells:        float64(g.intn(0, 1)),
		fc: flowstats.Conn{
			Time:    g.when(),
			SrcHost: g.client(),
			DstHost: g.server(),
			SrcPort: g.ephemeralPort(),
			Service: "telnet",
			Flag:    "SF",
		},
	})
}

// bufferOverflowEpisode overflows a setuid binary to get a root shell.
func (g *gen) bufferOverflowEpisode() {
	n := g.intn(1, 3)
	for i := 0; i < n; i++ {
		g.u2rSession("buffer_overflow", 2, 6, 1, 0, 1, 3, 1, 4)
	}
}

// rootkitEpisode installs a rootkit: heavy root activity and file drops.
func (g *gen) rootkitEpisode() {
	n := g.intn(1, 4)
	for i := 0; i < n; i++ {
		g.u2rSession("rootkit", 1, 3, float64(g.rng.Intn(2)), 0, 2, 6, 1, 3)
	}
}

// loadmoduleEpisode abuses loadmodule to escalate.
func (g *gen) loadmoduleEpisode() {
	n := g.intn(1, 2)
	for i := 0; i < n; i++ {
		g.u2rSession("loadmodule", 1, 4, 1, 1, 1, 2, 1, 3)
	}
}

// perlEpisode exploits a setuid perl bug.
func (g *gen) perlEpisode() {
	g.u2rSession("perl", 1, 3, 1, 1, 1, 2, 0, 1)
}
