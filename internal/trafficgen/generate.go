package trafficgen

import (
	"fmt"
	"math/rand"
	"sort"

	"ghsom/internal/flowstats"
	"ghsom/internal/kdd"
)

// rawConn is one connection before the window statistics are computed: the
// flowstats view plus the intrinsic and content features and the label.
type rawConn struct {
	fc       flowstats.Conn
	protocol string

	duration, srcBytes, dstBytes float64
	land                         bool
	wrongFragment, urgent        float64

	hot, numFailedLogins float64
	loggedIn             bool
	numCompromised       float64
	rootShell            float64
	suAttempted          float64
	numRoot              float64
	numFileCreations     float64
	numShells            float64
	numAccessFiles       float64
	isHostLogin          bool
	isGuestLogin         bool

	label string
}

// gen carries shared generation state.
type gen struct {
	cfg Config
	rng *rand.Rand
	out []rawConn
}

// Generate synthesizes the trace described by cfg and returns the records
// in time order.
func Generate(cfg Config) ([]kdd.Record, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}

	for i := 0; i < cfg.NormalSessions; i++ {
		g.normalSession()
	}
	// Attack labels in sorted order for determinism.
	labels := make([]string, 0, len(cfg.AttackEpisodes))
	for l := range cfg.AttackEpisodes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, label := range labels {
		genFn := episodeGens[label]
		for e := 0; e < cfg.AttackEpisodes[label]; e++ {
			genFn(g)
		}
	}

	sort.SliceStable(g.out, func(i, j int) bool { return g.out[i].fc.Time < g.out[j].fc.Time })

	tracker := flowstats.NewTracker()
	records := make([]kdd.Record, 0, len(g.out))
	for i := range g.out {
		rc := &g.out[i]
		d, err := tracker.Observe(rc.fc)
		if err != nil {
			return nil, fmt.Errorf("trafficgen: record %d: %w", i, err)
		}
		records = append(records, assemble(rc, d))
	}
	return records, nil
}

// assemble merges the raw connection and its derived statistics into a
// full KDD record.
func assemble(rc *rawConn, d flowstats.Derived) kdd.Record {
	return kdd.Record{
		Duration:         rc.duration,
		Protocol:         rc.protocol,
		Service:          rc.fc.Service,
		Flag:             rc.fc.Flag,
		SrcBytes:         rc.srcBytes,
		DstBytes:         rc.dstBytes,
		Land:             rc.land,
		WrongFragment:    rc.wrongFragment,
		Urgent:           rc.urgent,
		Hot:              rc.hot,
		NumFailedLogins:  rc.numFailedLogins,
		LoggedIn:         rc.loggedIn,
		NumCompromised:   rc.numCompromised,
		RootShell:        rc.rootShell,
		SuAttempted:      rc.suAttempted,
		NumRoot:          rc.numRoot,
		NumFileCreations: rc.numFileCreations,
		NumShells:        rc.numShells,
		NumAccessFiles:   rc.numAccessFiles,
		IsHostLogin:      rc.isHostLogin,
		IsGuestLogin:     rc.isGuestLogin,

		Count:           d.Count,
		SrvCount:        d.SrvCount,
		SerrorRate:      d.SerrorRate,
		SrvSerrorRate:   d.SrvSerrorRate,
		RerrorRate:      d.RerrorRate,
		SrvRerrorRate:   d.SrvRerrorRate,
		SameSrvRate:     d.SameSrvRate,
		DiffSrvRate:     d.DiffSrvRate,
		SrvDiffHostRate: d.SrvDiffHostRate,

		DstHostCount:           d.DstHostCount,
		DstHostSrvCount:        d.DstHostSrvCount,
		DstHostSameSrvRate:     d.DstHostSameSrvRate,
		DstHostDiffSrvRate:     d.DstHostDiffSrvRate,
		DstHostSameSrcPortRate: d.DstHostSameSrcPortRate,
		DstHostSrvDiffHostRate: d.DstHostSrvDiffHostRate,
		DstHostSerrorRate:      d.DstHostSerrorRate,
		DstHostSrvSerrorRate:   d.DstHostSrvSerrorRate,
		DstHostRerrorRate:      d.DstHostRerrorRate,
		DstHostSrvRerrorRate:   d.DstHostSrvRerrorRate,

		Label: rc.label,
	}
}

// GenerateSequence generates each phase in order and concatenates the
// record streams — the building block for drift scenarios, where later
// phases shift the traffic mix or introduce attacks absent from earlier
// ones. Window statistics are computed per phase (the phase boundary is a
// measurement restart, as when a sensor is redeployed).
func GenerateSequence(phases ...Config) ([]kdd.Record, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("trafficgen: no phases: %w", ErrBadConfig)
	}
	var out []kdd.Record
	for i, cfg := range phases {
		records, err := Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("trafficgen: phase %d: %w", i, err)
		}
		out = append(out, records...)
	}
	return out, nil
}

// --- shared sampling helpers ---

// client returns a random client host ID.
func (g *gen) client() int { return g.rng.Intn(g.cfg.Clients) }

// server returns a random server host ID (IDs after the client range).
func (g *gen) server() int { return g.cfg.Clients + g.rng.Intn(g.cfg.Servers) }

// spoofed returns a host ID outside both pools, modeling a spoofed source.
func (g *gen) spoofed() int {
	return g.cfg.Clients + g.cfg.Servers + g.rng.Intn(1<<16)
}

// when returns a uniform random trace time.
func (g *gen) when() float64 { return g.rng.Float64() * g.cfg.Duration }

// ephemeralPort returns a random high source port.
func (g *gen) ephemeralPort() int { return 1024 + g.rng.Intn(60000) }

// jitter multiplies v by a noise-scaled lognormal-ish factor, keeping the
// result non-negative.
func (g *gen) jitter(v float64) float64 {
	if v == 0 {
		return 0
	}
	spread := 0.1 + 0.6*g.cfg.Noise
	f := 1 + g.rng.NormFloat64()*spread
	if f < 0.05 {
		f = 0.05
	}
	return v * f
}

// uniform returns a uniform value in [lo, hi).
func (g *gen) uniform(lo, hi float64) float64 {
	return lo + g.rng.Float64()*(hi-lo)
}

// intn returns a uniform int in [lo, hi].
func (g *gen) intn(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// chance reports true with probability p.
func (g *gen) chance(p float64) bool { return g.rng.Float64() < p }

// emit appends a raw connection.
func (g *gen) emit(rc rawConn) { g.out = append(g.out, rc) }
