package trafficgen

import "ghsom/internal/flowstats"

// serviceProfile describes the shape of one legitimate service's traffic.
type serviceProfile struct {
	service  string
	protocol string
	// weight is the relative frequency of the service in normal traffic.
	weight float64
	// connsLo/Hi bound the number of connections per session.
	connsLo, connsHi int
	// durLo/Hi bound per-connection duration (seconds).
	durLo, durHi float64
	// srcLo/Hi and dstLo/Hi bound the byte volumes.
	srcLo, srcHi float64
	dstLo, dstHi float64
	// login services set logged_in and may carry content activity.
	login bool
	// guestRate is the probability of a guest login (ftp anonymous).
	guestRate float64
}

// normalProfiles approximates the service mix of the KDD-99 normal
// traffic: web-dominated with mail, file transfer, name lookups and
// interactive logins.
var normalProfiles = []serviceProfile{
	{service: "http", protocol: "tcp", weight: 0.46, connsLo: 1, connsHi: 8, durLo: 0, durHi: 4, srcLo: 100, srcHi: 1500, dstLo: 300, dstHi: 40000},
	{service: "smtp", protocol: "tcp", weight: 0.14, connsLo: 1, connsHi: 2, durLo: 0.5, durHi: 8, srcLo: 300, srcHi: 4000, dstLo: 250, dstHi: 800},
	{service: "domain_u", protocol: "udp", weight: 0.12, connsLo: 1, connsHi: 4, durLo: 0, durHi: 0.1, srcLo: 30, srcHi: 90, dstLo: 50, dstHi: 350},
	{service: "ftp_data", protocol: "tcp", weight: 0.07, connsLo: 1, connsHi: 4, durLo: 0.5, durHi: 30, srcLo: 0, srcHi: 100, dstLo: 2000, dstHi: 500000},
	{service: "ftp", protocol: "tcp", weight: 0.04, connsLo: 1, connsHi: 1, durLo: 2, durHi: 60, srcLo: 100, srcHi: 800, dstLo: 200, dstHi: 2000, login: true, guestRate: 0.3},
	{service: "telnet", protocol: "tcp", weight: 0.04, connsLo: 1, connsHi: 1, durLo: 10, durHi: 600, srcLo: 200, srcHi: 5000, dstLo: 500, dstHi: 20000, login: true},
	{service: "ssh", protocol: "tcp", weight: 0.03, connsLo: 1, connsHi: 1, durLo: 5, durHi: 300, srcLo: 500, srcHi: 8000, dstLo: 500, dstHi: 8000, login: true},
	{service: "pop_3", protocol: "tcp", weight: 0.03, connsLo: 1, connsHi: 2, durLo: 0.5, durHi: 5, srcLo: 60, srcHi: 300, dstLo: 200, dstHi: 30000, login: true},
	{service: "imap4", protocol: "tcp", weight: 0.02, connsLo: 1, connsHi: 2, durLo: 0.5, durHi: 10, srcLo: 80, srcHi: 400, dstLo: 200, dstHi: 20000, login: true},
	{service: "finger", protocol: "tcp", weight: 0.02, connsLo: 1, connsHi: 1, durLo: 0, durHi: 1, srcLo: 10, srcHi: 60, dstLo: 50, dstHi: 500},
	{service: "auth", protocol: "tcp", weight: 0.01, connsLo: 1, connsHi: 1, durLo: 0, durHi: 1, srcLo: 20, srcHi: 80, dstLo: 20, dstHi: 120},
	{service: "eco_i", protocol: "icmp", weight: 0.02, connsLo: 1, connsHi: 5, durLo: 0, durHi: 0, srcLo: 8, srcHi: 64, dstLo: 0, dstHi: 0},
}

// pickProfile samples a service profile by weight.
func (g *gen) pickProfile() *serviceProfile {
	var total float64
	for i := range normalProfiles {
		total += normalProfiles[i].weight
	}
	r := g.rng.Float64() * total
	for i := range normalProfiles {
		r -= normalProfiles[i].weight
		if r <= 0 {
			return &normalProfiles[i]
		}
	}
	return &normalProfiles[len(normalProfiles)-1]
}

// normalSession emits the connections of one legitimate session.
func (g *gen) normalSession() {
	p := g.pickProfile()
	src := g.client()
	dst := g.server()
	start := g.when()
	conns := g.intn(p.connsLo, p.connsHi)
	t := start
	for i := 0; i < conns; i++ {
		rc := rawConn{
			protocol: p.protocol,
			label:    "normal",
		}
		rc.fc = flowstats.Conn{
			Time:    t,
			SrcHost: src,
			DstHost: dst,
			SrcPort: g.srcPortFor(p),
			Service: p.service,
			Flag:    g.normalFlag(),
		}
		rc.duration = g.jitter(g.uniform(p.durLo, p.durHi))
		rc.srcBytes = g.jitter(g.uniform(p.srcLo, p.srcHi))
		rc.dstBytes = g.jitter(g.uniform(p.dstLo, p.dstHi))
		if flowstats.IsSynError(rc.fc.Flag) || flowstats.IsRejError(rc.fc.Flag) {
			// Failed handshakes carry no payload.
			rc.duration, rc.srcBytes, rc.dstBytes = 0, 0, 0
		}
		if p.login && rc.fc.Flag == "SF" {
			rc.loggedIn = true
			if g.chance(p.guestRate) {
				rc.isGuestLogin = true
			}
			// Benign interactive sessions occasionally touch "hot" paths
			// or create files; this is the noise floor U2R must beat.
			if p.service == "telnet" || p.service == "ssh" {
				if g.chance(0.05 + 0.1*g.cfg.Noise) {
					rc.hot = float64(g.intn(1, 2))
				}
				if g.chance(0.04 + 0.08*g.cfg.Noise) {
					rc.numFileCreations = float64(g.intn(1, 2))
				}
				if g.chance(0.02) {
					rc.numShells = 1
				}
			}
			if g.chance(0.01 + 0.04*g.cfg.Noise) {
				rc.numFailedLogins = 1 // a benign typo before success
			}
		}
		g.emit(rc)
		t += g.uniform(0.05, 1.5)
	}
}

// srcPortFor returns a source port: ephemeral for tcp/udp, 0 for icmp
// (which has no ports; the constant port is itself a weak icmp signature,
// matching the original dataset).
func (g *gen) srcPortFor(p *serviceProfile) int {
	if p.protocol == "icmp" {
		return 0
	}
	return g.ephemeralPort()
}

// normalFlag samples a connection status for legitimate traffic: almost
// always SF, with a noise-scaled residue of resets and rejections (busy
// servers, crashed peers).
func (g *gen) normalFlag() string {
	errP := 0.01 + 0.06*g.cfg.Noise
	if !g.chance(errP) {
		return "SF"
	}
	switch g.rng.Intn(4) {
	case 0:
		return "REJ"
	case 1:
		return "RSTO"
	case 2:
		return "RSTR"
	default:
		return "S1"
	}
}
