package trafficgen

import "ghsom/internal/flowstats"

// This file implements the attacks that appear only in the KDD-99
// *corrected test set* — the novel attacks absent from all training data.
// They exist to exercise the unseen-attack experiments (A1 and the
// streaming drift demo): a detector trained on the 22 training-set
// attacks meets these through its novelty path only.

func init() {
	for label, fn := range map[string]func(*gen){
		"mailbomb":      (*gen).mailbombEpisode,
		"apache2":       (*gen).apache2Episode,
		"mscan":         (*gen).mscanEpisode,
		"saint":         (*gen).saintEpisode,
		"snmpguess":     (*gen).snmpguessEpisode,
		"snmpgetattack": (*gen).snmpgetattackEpisode,
		"httptunnel":    (*gen).httptunnelEpisode,
		"xterm":         (*gen).xtermEpisode,
		"ps":            (*gen).psEpisode,
	} {
		episodeGens[label] = fn
	}
}

// mailbombEpisode floods an SMTP server with oversized messages from one
// source. Signature: smtp with large src_bytes at high same-service rate
// — unlike neptune (no payload) or back (http).
func (g *gen) mailbombEpisode() {
	victim := g.server()
	src := g.client()
	n := g.intn(100, 300)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol: "tcp",
			label:    "mailbomb",
			duration: g.uniform(0.5, 4),
			srcBytes: g.jitter(12000),
			dstBytes: g.jitter(330),
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "smtp",
				Flag:    "SF",
			},
		})
		t += g.uniform(0.02, 0.3)
	}
}

// apache2Episode sends HTTP requests with thousands of headers, tying up
// Apache workers. Signature: http with moderate src_bytes but long
// durations and many concurrent connections — distinct from back's huge
// 54k URLs.
func (g *gen) apache2Episode() {
	victim := g.server()
	src := g.client()
	n := g.intn(60, 200)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		flag := "SF"
		if g.chance(0.2) {
			flag = "RSTR" // server killing wedged workers
		}
		g.emit(rawConn{
			protocol: "tcp",
			label:    "apache2",
			duration: g.uniform(5, 60),
			srcBytes: g.jitter(2500),
			dstBytes: g.jitter(450),
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "http",
				Flag:    flag,
			},
		})
		t += g.uniform(0.05, 0.4)
	}
}

// mscanEpisode is a broad multi-host scan hitting well-known weak points
// across every server. Signature: one source fanning over hosts and
// services with REJ/S0, denser than satan.
func (g *gen) mscanEpisode() {
	src := g.client()
	n := g.intn(80, 200)
	start := g.when()
	t := start
	services := []string{"http", "ftp", "telnet", "domain_u", "imap4", "pop_3", "private", "ssh"}
	for i := 0; i < n; i++ {
		flag := "S0"
		if g.chance(0.5) {
			flag = "REJ"
		}
		proto := "tcp"
		svc := services[g.rng.Intn(len(services))]
		if svc == "domain_u" {
			proto = "udp"
		}
		g.emit(rawConn{
			protocol: proto,
			label:    "mscan",
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: g.server(),
				SrcPort: g.ephemeralPort(),
				Service: svc,
				Flag:    flag,
			},
		})
		t += g.uniform(0.005, 0.1)
	}
}

// saintEpisode is the SATAN successor: slower, politer vulnerability
// sweep with more successful tiny probes.
func (g *gen) saintEpisode() {
	src := g.client()
	n := g.intn(40, 120)
	start := g.when()
	t := start
	services := []string{"http", "ftp", "telnet", "smtp", "finger", "private"}
	for i := 0; i < n; i++ {
		flag := "REJ"
		var sb, db float64
		if g.chance(0.4) {
			flag = "SF"
			sb, db = g.uniform(20, 120), g.uniform(40, 400)
		}
		g.emit(rawConn{
			protocol: "tcp",
			label:    "saint",
			srcBytes: sb,
			dstBytes: db,
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: g.server(),
				SrcPort: g.ephemeralPort(),
				Service: services[g.rng.Intn(len(services))],
				Flag:    flag,
			},
		})
		t += g.uniform(0.1, 1.0)
	}
}

// snmpguessEpisode brute-forces SNMP community strings: a stream of
// small, identical UDP datagrams at the management port.
func (g *gen) snmpguessEpisode() {
	victim := g.server()
	src := g.client()
	n := g.intn(30, 100)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol: "udp",
			label:    "snmpguess",
			srcBytes: g.jitter(45),
			dstBytes: 0, // wrong community: no reply
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "private",
				Flag:    "SF",
			},
		})
		t += g.uniform(0.05, 0.5)
	}
}

// snmpgetattackEpisode reads MIBs with a guessed community string: like
// snmpguess but the replies come back.
func (g *gen) snmpgetattackEpisode() {
	victim := g.server()
	src := g.client()
	n := g.intn(20, 80)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		g.emit(rawConn{
			protocol: "udp",
			label:    "snmpgetattack",
			srcBytes: g.jitter(45),
			dstBytes: g.jitter(130),
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "private",
				Flag:    "SF",
			},
		})
		t += g.uniform(0.1, 1.0)
	}
}

// httptunnelEpisode smuggles an interactive channel over HTTP: long-lived
// http connections with balanced byte flow, nothing like a page fetch.
func (g *gen) httptunnelEpisode() {
	victim := g.server()
	src := g.client()
	n := g.intn(2, 6)
	start := g.when()
	t := start
	for i := 0; i < n; i++ {
		bytes := g.uniform(5000, 80000)
		g.emit(rawConn{
			protocol: "tcp",
			label:    "httptunnel",
			duration: g.uniform(120, 1200),
			srcBytes: g.jitter(bytes),
			dstBytes: g.jitter(bytes * g.uniform(0.7, 1.3)),
			fc: flowstats.Conn{
				Time:    t,
				SrcHost: src,
				DstHost: victim,
				SrcPort: g.ephemeralPort(),
				Service: "http",
				Flag:    "SF",
			},
		})
		t += g.uniform(60, 600)
	}
}

// xtermEpisode exploits an xterm buffer overflow for a root shell.
func (g *gen) xtermEpisode() {
	g.u2rSession("xterm", 1, 4, 1, 0, 1, 3, 1, 2)
}

// psEpisode escalates through the Solaris ps race condition.
func (g *gen) psEpisode() {
	n := g.intn(1, 2)
	for i := 0; i < n; i++ {
		g.u2rSession("ps", 1, 3, 1, 1, 1, 2, 0, 2)
	}
}

// NovelAttackEpisodes returns an episode mix containing only the
// test-set-only attacks, scaled by factor (1 = a light mix suitable for
// appending to Small).
func NovelAttackEpisodes(factor int) map[string]int {
	if factor < 1 {
		factor = 1
	}
	return map[string]int{
		"mailbomb": 2 * factor, "apache2": 2 * factor,
		"mscan": 3 * factor, "saint": 3 * factor,
		"snmpguess": 4 * factor, "snmpgetattack": 3 * factor,
		"httptunnel": 2 * factor, "xterm": 2 * factor, "ps": 2 * factor,
	}
}

// WithNovelAttacks returns a copy of cfg with the novel-attack mix added
// on top of its existing episodes — the "corrected test set" analogue.
func WithNovelAttacks(cfg Config, factor int) Config {
	out := cfg
	out.AttackEpisodes = make(map[string]int, len(cfg.AttackEpisodes)+9)
	for l, n := range cfg.AttackEpisodes {
		out.AttackEpisodes[l] = n
	}
	for l, n := range NovelAttackEpisodes(factor) {
		out.AttackEpisodes[l] += n
	}
	return out
}
