// Package trafficgen synthesizes KDD-99-style network traffic: normal
// service sessions (HTTP, SMTP, FTP, Telnet, DNS, ...) and the canonical
// KDD attack families, generated as raw connection events and converted to
// full 41-feature records via the internal/flowstats window statistics.
//
// The generator replaces the KDD Cup 99 dataset, which cannot be downloaded
// in this offline environment (see DESIGN.md, "Reproduction gates and
// substitutions"). It reproduces the distributional signatures each attack
// imprints on the KDD features — e.g. a neptune SYN flood yields S0 flags,
// near-1 serror_rate and count in the hundreds, while a portsweep yields
// REJ flags and near-1 diff_srv_rate — which is exactly the structure that
// SOM-family detectors cluster on.
package trafficgen

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadConfig is returned when a Config fails validation.
var ErrBadConfig = errors.New("trafficgen: invalid config")

// Config controls one synthetic trace.
type Config struct {
	// Seed drives all randomness; identical configs generate identical
	// traces.
	Seed int64
	// Duration is the virtual trace length in seconds. Events are placed
	// in [0, Duration).
	Duration float64
	// NormalSessions is the number of legitimate sessions (each session
	// yields one or more connection records).
	NormalSessions int
	// AttackEpisodes maps a KDD attack label to the number of episodes of
	// that attack. Each episode produces a label-dependent burst of
	// records (a SYN-flood episode yields hundreds, an R2L episode a
	// handful).
	AttackEpisodes map[string]int
	// Clients and Servers size the simulated host population.
	Clients, Servers int
	// Noise in [0, 1] blurs the class structure: it scales byte/duration
	// jitter and the probability of protocol anomalies inside normal
	// traffic (flag errors, retries), which raises the Bayes error of the
	// dataset. 0 gives the cleanest separation.
	Noise float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("duration %v <= 0: %w", c.Duration, ErrBadConfig)
	case c.NormalSessions < 0:
		return fmt.Errorf("normalSessions %d < 0: %w", c.NormalSessions, ErrBadConfig)
	case c.Clients < 1 || c.Servers < 1:
		return fmt.Errorf("need at least 1 client and 1 server: %w", ErrBadConfig)
	case c.Noise < 0 || c.Noise > 1:
		return fmt.Errorf("noise %v outside [0, 1]: %w", c.Noise, ErrBadConfig)
	}
	total := c.NormalSessions
	for label, n := range c.AttackEpisodes {
		if n < 0 {
			return fmt.Errorf("attack %q episode count %d < 0: %w", label, n, ErrBadConfig)
		}
		if _, ok := episodeGens[label]; !ok {
			return fmt.Errorf("unknown attack label %q: %w", label, ErrBadConfig)
		}
		total += n
	}
	if total == 0 {
		return fmt.Errorf("config generates no traffic: %w", ErrBadConfig)
	}
	return nil
}

// SupportedAttacks returns the attack labels the generator implements,
// sorted alphabetically.
func SupportedAttacks() []string {
	out := make([]string, 0, len(episodeGens))
	for label := range episodeGens {
		out = append(out, label)
	}
	sort.Strings(out)
	return out
}

// KDD99Like returns the headline scenario: a DoS-heavy mix approximating
// the KDD Cup 99 10% training-set proportions, roughly 45-55k records.
func KDD99Like(seed int64) Config {
	return Config{
		Seed:           seed,
		Duration:       7200,
		NormalSessions: 4500, // ~12k normal records
		Clients:        120,
		Servers:        40,
		Noise:          0.15,
		AttackEpisodes: map[string]int{
			// DoS (dominates record count, as in KDD-99).
			"neptune": 28, "smurf": 18, "back": 24, "teardrop": 10, "pod": 10, "land": 12,
			// Probe.
			"portsweep": 36, "ipsweep": 36, "nmap": 24, "satan": 28,
			// R2L (low volume).
			"guess_passwd": 45, "warezclient": 30, "warezmaster": 10,
			"ftp_write": 8, "imap": 10, "phf": 6, "multihop": 5, "spy": 3,
			// U2R (rare).
			"buffer_overflow": 12, "rootkit": 6, "loadmodule": 5, "perl": 2,
		},
	}
}

// Small returns a fast scenario (~4-6k records) for tests and examples.
func Small(seed int64) Config {
	return Config{
		Seed:           seed,
		Duration:       1200,
		NormalSessions: 700,
		Clients:        40,
		Servers:        15,
		Noise:          0.15,
		AttackEpisodes: map[string]int{
			"neptune": 4, "smurf": 3, "back": 4, "teardrop": 2, "pod": 2, "land": 3,
			"portsweep": 6, "ipsweep": 6, "nmap": 4, "satan": 5,
			"guess_passwd": 8, "warezclient": 5, "imap": 3,
			"buffer_overflow": 3, "rootkit": 2,
		},
	}
}

// HardMix returns the stress scenario: higher noise, more low-volume
// attacks relative to DoS, used for the hard-case evaluation.
func HardMix(seed int64) Config {
	c := KDD99Like(seed)
	c.Noise = 0.45
	c.AttackEpisodes = map[string]int{
		"neptune": 10, "smurf": 6, "back": 10, "teardrop": 5, "pod": 5, "land": 6,
		"portsweep": 30, "ipsweep": 30, "nmap": 20, "satan": 24,
		"guess_passwd": 70, "warezclient": 45, "warezmaster": 16,
		"ftp_write": 12, "imap": 14, "phf": 10, "multihop": 8, "spy": 5,
		"buffer_overflow": 18, "rootkit": 10, "loadmodule": 8, "perl": 4,
	}
	return c
}

// WithoutAttacks returns a copy of cfg with the given labels removed from
// the episode mix — used to hold attacks out of training for the novelty
// (unseen-attack) ablation.
func WithoutAttacks(cfg Config, labels ...string) Config {
	out := cfg
	out.AttackEpisodes = make(map[string]int, len(cfg.AttackEpisodes))
	drop := make(map[string]bool, len(labels))
	for _, l := range labels {
		drop[l] = true
	}
	for l, n := range cfg.AttackEpisodes {
		if !drop[l] {
			out.AttackEpisodes[l] = n
		}
	}
	return out
}

// OnlyAttacks returns a copy of cfg keeping only the given attack labels
// (normal traffic is preserved).
func OnlyAttacks(cfg Config, labels ...string) Config {
	out := cfg
	out.AttackEpisodes = make(map[string]int, len(labels))
	for _, l := range labels {
		if n, ok := cfg.AttackEpisodes[l]; ok {
			out.AttackEpisodes[l] = n
		}
	}
	return out
}
