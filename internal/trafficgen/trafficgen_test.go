package trafficgen

import (
	"errors"
	"math"
	"testing"

	"ghsom/internal/kdd"
)

func TestConfigValidate(t *testing.T) {
	if err := KDD99Like(1).Validate(); err != nil {
		t.Fatalf("KDD99Like invalid: %v", err)
	}
	if err := Small(1).Validate(); err != nil {
		t.Fatalf("Small invalid: %v", err)
	}
	if err := HardMix(1).Validate(); err != nil {
		t.Fatalf("HardMix invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"negative sessions", func(c *Config) { c.NormalSessions = -1 }},
		{"no clients", func(c *Config) { c.Clients = 0 }},
		{"no servers", func(c *Config) { c.Servers = 0 }},
		{"noise above one", func(c *Config) { c.Noise = 1.5 }},
		{"negative noise", func(c *Config) { c.Noise = -0.1 }},
		{"unknown attack", func(c *Config) { c.AttackEpisodes = map[string]int{"zeroday": 1} }},
		{"negative episodes", func(c *Config) { c.AttackEpisodes = map[string]int{"neptune": -1} }},
		{"empty trace", func(c *Config) { c.NormalSessions = 0; c.AttackEpisodes = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Small(1)
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Errorf("Validate = %v, want ErrBadConfig", err)
			}
			if _, err := Generate(cfg); err == nil {
				t.Error("Generate accepted invalid config")
			}
		})
	}
}

func TestSupportedAttacksCoverTaxonomy(t *testing.T) {
	attacks := SupportedAttacks()
	// 22 training-set attacks + 9 corrected-test-set novel attacks.
	if len(attacks) != 31 {
		t.Errorf("SupportedAttacks has %d labels, want 31", len(attacks))
	}
	for _, a := range attacks {
		if kdd.CategoryOf(a) == kdd.Unknown || kdd.CategoryOf(a) == kdd.Normal {
			t.Errorf("attack %q not a known attack label", a)
		}
	}
}

func TestNovelAttackGeneration(t *testing.T) {
	base := Config{
		Seed: 8, Duration: 600, NormalSessions: 100, Clients: 20, Servers: 8,
	}
	cfg := WithNovelAttacks(base, 1)
	recs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			t.Fatalf("record %d (%s) invalid: %v", i, recs[i].Label, err)
		}
		counts[recs[i].Label]++
	}
	for label := range NovelAttackEpisodes(1) {
		if counts[label] == 0 {
			t.Errorf("no %s records generated", label)
		}
		if !kdd.IsNovelLabel(label) {
			t.Errorf("%s should be a novel label", label)
		}
	}
	// Spot-check signatures.
	var mailbombSmtp, snmpUDP, tunnelLong bool
	for i := range recs {
		switch recs[i].Label {
		case "mailbomb":
			if recs[i].Service == "smtp" && recs[i].SrcBytes > 3000 {
				mailbombSmtp = true
			}
		case "snmpguess":
			if recs[i].Protocol == "udp" && recs[i].DstBytes == 0 {
				snmpUDP = true
			}
		case "httptunnel":
			if recs[i].Duration > 100 {
				tunnelLong = true
			}
		}
	}
	if !mailbombSmtp || !snmpUDP || !tunnelLong {
		t.Errorf("novel attack signatures missing: mailbomb=%v snmp=%v tunnel=%v",
			mailbombSmtp, snmpUDP, tunnelLong)
	}
	// WithNovelAttacks must not mutate the input.
	if len(base.AttackEpisodes) != 0 {
		t.Error("WithNovelAttacks mutated input config")
	}
}

func TestGenerateSmall(t *testing.T) {
	recs, err := Generate(Small(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2000 {
		t.Fatalf("Small produced only %d records", len(recs))
	}
	counts := kdd.CategoryCounts(recs)
	for _, cat := range kdd.Categories() {
		if counts[cat] == 0 {
			t.Errorf("no records of category %v", cat)
		}
	}
	if counts[kdd.Unknown] != 0 {
		t.Errorf("%d records with unknown labels", counts[kdd.Unknown])
	}
	// All records must be schema-valid.
	bad := 0
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			if bad < 5 {
				t.Errorf("record %d invalid: %v", i, err)
			}
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d invalid records", bad)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Small(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Small(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between identical-seed runs", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a, _ := Generate(Small(1))
	b, _ := Generate(Small(2))
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestAttackSignatures(t *testing.T) {
	cfg := Small(3)
	recs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := make(map[string][]kdd.Record)
	for _, r := range recs {
		byLabel[r.Label] = append(byLabel[r.Label], r)
	}

	// neptune: S0 flags, high serror rate on average.
	nep := byLabel["neptune"]
	if len(nep) < 100 {
		t.Fatalf("only %d neptune records", len(nep))
	}
	var s0, highSerror, highCount int
	for _, r := range nep {
		if r.Flag == "S0" {
			s0++
		}
		if r.SerrorRate > 0.8 {
			highSerror++
		}
		if r.Count > 20 {
			highCount++
		}
	}
	if s0 != len(nep) {
		t.Errorf("neptune: %d/%d records have S0", s0, len(nep))
	}
	if float64(highSerror)/float64(len(nep)) < 0.7 {
		t.Errorf("neptune: only %d/%d records with high serror_rate", highSerror, len(nep))
	}
	if float64(highCount)/float64(len(nep)) < 0.5 {
		t.Errorf("neptune: only %d/%d records with high count", highCount, len(nep))
	}

	// smurf: icmp ecr_i, srcBytes 1032.
	for _, r := range byLabel["smurf"] {
		if r.Protocol != "icmp" || r.Service != "ecr_i" {
			t.Error("smurf record not icmp/ecr_i")
			break
		}
		if r.SrcBytes != 1032 {
			t.Error("smurf src_bytes not 1032")
			break
		}
	}

	// portsweep: high diff_srv_rate or rerror on average.
	ps := byLabel["portsweep"]
	if len(ps) < 30 {
		t.Fatalf("only %d portsweep records", len(ps))
	}
	var rej int
	for _, r := range ps {
		if r.Flag == "REJ" || r.Flag == "S0" {
			rej++
		}
	}
	if rej != len(ps) {
		t.Errorf("portsweep: %d/%d REJ|S0", rej, len(ps))
	}

	// guess_passwd: failed logins present.
	gp := byLabel["guess_passwd"]
	if len(gp) == 0 {
		t.Fatal("no guess_passwd records")
	}
	for _, r := range gp {
		if r.NumFailedLogins < 1 {
			t.Error("guess_passwd without failed logins")
			break
		}
	}

	// buffer_overflow: root shell and login.
	bo := byLabel["buffer_overflow"]
	if len(bo) == 0 {
		t.Fatal("no buffer_overflow records")
	}
	for _, r := range bo {
		if !r.LoggedIn {
			t.Error("buffer_overflow without login")
			break
		}
		if r.RootShell != 1 {
			t.Error("buffer_overflow without root shell")
			break
		}
	}

	// land: the land bit.
	for _, r := range byLabel["land"] {
		if !r.Land {
			t.Error("land record without land bit")
			break
		}
	}

	// teardrop: wrong fragments on udp.
	for _, r := range byLabel["teardrop"] {
		if r.Protocol != "udp" || r.WrongFragment == 0 {
			t.Error("teardrop signature wrong")
			break
		}
	}

	// Normal traffic: overwhelmingly SF, low error rates.
	norm := byLabel["normal"]
	if len(norm) < 500 {
		t.Fatalf("only %d normal records", len(norm))
	}
	var sf int
	for _, r := range norm {
		if r.Flag == "SF" {
			sf++
		}
	}
	if float64(sf)/float64(len(norm)) < 0.85 {
		t.Errorf("normal: only %d/%d SF", sf, len(norm))
	}
}

func TestWithoutAttacks(t *testing.T) {
	cfg := Small(1)
	held := WithoutAttacks(cfg, "neptune", "smurf")
	if _, ok := held.AttackEpisodes["neptune"]; ok {
		t.Error("neptune not removed")
	}
	if _, ok := held.AttackEpisodes["portsweep"]; !ok {
		t.Error("portsweep should remain")
	}
	// Original untouched.
	if _, ok := cfg.AttackEpisodes["neptune"]; !ok {
		t.Error("WithoutAttacks mutated input config")
	}
	recs, err := Generate(held)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Label == "neptune" || r.Label == "smurf" {
			t.Fatal("held-out attack still generated")
		}
	}
}

func TestOnlyAttacks(t *testing.T) {
	cfg := Small(1)
	only := OnlyAttacks(cfg, "neptune")
	if len(only.AttackEpisodes) != 1 {
		t.Errorf("OnlyAttacks kept %d labels", len(only.AttackEpisodes))
	}
	recs, err := Generate(only)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.IsAttack() && r.Label != "neptune" {
			t.Fatalf("unexpected attack %q", r.Label)
		}
	}
}

func TestGenerateSequence(t *testing.T) {
	quiet := Config{
		Seed: 1, Duration: 300, NormalSessions: 200, Clients: 10, Servers: 5,
	}
	noisy := Config{
		Seed: 2, Duration: 300, NormalSessions: 100, Clients: 10, Servers: 5,
		AttackEpisodes: map[string]int{"neptune": 2},
	}
	records, err := GenerateSequence(quiet, noisy)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 contributes only normal traffic; neptune appears after it.
	firstNeptune := -1
	for i, r := range records {
		if r.Label == "neptune" {
			firstNeptune = i
			break
		}
	}
	if firstNeptune < 0 {
		t.Fatal("no neptune in phase 2")
	}
	q1, err := Generate(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if firstNeptune < len(q1) {
		t.Errorf("attack at %d inside quiet phase of %d records", firstNeptune, len(q1))
	}
	if len(records) <= len(q1) {
		t.Error("phase 2 contributed nothing")
	}
	if _, err := GenerateSequence(); err == nil {
		t.Error("empty phase list accepted")
	}
}

func TestRecordsEncodable(t *testing.T) {
	recs, err := Generate(Small(4))
	if err != nil {
		t.Fatal(err)
	}
	enc := kdd.NewEncoder(recs, kdd.EncoderConfig{LogTransform: true})
	vecs, err := enc.EncodeAll(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != len(recs) {
		t.Fatalf("encoded %d of %d", len(vecs), len(recs))
	}
	for i, v := range vecs {
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("record %d encodes to non-finite value", i)
			}
		}
	}
}

func TestDoSDominatesKDD99Like(t *testing.T) {
	// The KDD99-like scenario must be DoS-heavy like the original data.
	recs, err := Generate(KDD99Like(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 20000 {
		t.Fatalf("KDD99Like produced only %d records", len(recs))
	}
	counts := kdd.CategoryCounts(recs)
	if counts[kdd.DoS] <= counts[kdd.Normal] {
		t.Errorf("DoS (%d) should outnumber normal (%d)", counts[kdd.DoS], counts[kdd.Normal])
	}
	if counts[kdd.U2R] >= counts[kdd.Probe] {
		t.Errorf("U2R (%d) should be rare vs probe (%d)", counts[kdd.U2R], counts[kdd.Probe])
	}
}
