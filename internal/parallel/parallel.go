// Package parallel provides the bounded fork-join primitives shared by the
// training and inference hot paths: a resolved worker count, parallel
// index loops with and without first-error propagation, and a
// deterministic chunked map-reduce.
//
// # The Parallelism knob
//
// Every layer of the library (som, core, anomaly, the Pipeline façade)
// exposes a Parallelism int configuration field that is interpreted by
// Workers: values <= 0 mean "use runtime.GOMAXPROCS(0)", 1 means strictly
// serial execution on the calling goroutine, and n > 1 bounds the fan-out
// at n goroutines. The worker count is additionally capped by the job
// count, so small inputs never pay goroutine overhead.
//
// # Determinism
//
// ForEach runs fn exactly once per index; when every fn(i) writes only to
// its own output slot, the result is identical for every worker count —
// this is how BMU assignment and batch classification stay bit-for-bit
// reproducible under parallelism. Reductions whose result must not depend
// on the worker count (floating-point sums on the training path) are
// instead expressed as a parallel per-index pass followed by a serial
// index-order fold in the caller. MapReduce is deterministic for a fixed
// (p, n) pair: chunk boundaries depend only on p and n, and partial
// results are folded in ascending chunk order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Parallelism knob value to a concrete worker budget:
// p <= 0 selects runtime.GOMAXPROCS(0), any other value is returned as is.
func Resolve(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Workers resolves a Parallelism knob value p against a job count n: p <= 0
// selects runtime.GOMAXPROCS(0), and the result is clamped to [1, n] (with
// a floor of 1 even for n == 0).
func Workers(p, n int) int {
	p = Resolve(p)
	if n < p {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// ForEach invokes fn(i) exactly once for every i in [0, n), using at most
// Workers(p, n) goroutines. Indices are handed out in contiguous grains via
// an atomic cursor, so uneven per-index costs (e.g. GHSOM subtrees of very
// different sizes) stay balanced across workers. ForEach returns after all
// calls complete. fn must be safe to call concurrently; writes to distinct
// per-index slots need no further synchronization.
func ForEach(p, n int, fn func(i int)) {
	w := Workers(p, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Grain size trades scheduling overhead against balance: ~8 grains per
	// worker keeps the atomic traffic negligible while still smoothing
	// skewed workloads.
	grain := n / (w * 8)
	if grain < 1 {
		grain = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for c := 0; c < w; c++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ForEachErr invokes fn(i) for every i in [0, n) on up to Workers(p, n)
// goroutines and returns the error of the lowest failing index, matching
// the semantics of a serial loop that aborts on first error. The happy
// path is allocation-free beyond the worker goroutines themselves: error
// bookkeeping is engaged only when some fn actually fails. Once a failure
// at index i is observed, calls for indices greater than i may be skipped
// — callers must treat all outputs as invalid when an error is returned.
// fn must be safe to call concurrently.
func ForEachErr(p, n int, fn func(i int) error) error {
	w := Workers(p, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu       sync.Mutex
		firstIdx atomic.Int64
		firstErr error
	)
	firstIdx.Store(int64(n))
	ForEach(p, n, func(i int) {
		if int64(i) > firstIdx.Load() {
			return // an earlier index already failed; this result is moot
		}
		if err := fn(i); err != nil {
			mu.Lock()
			if int64(i) < firstIdx.Load() {
				firstIdx.Store(int64(i))
				firstErr = err
			}
			mu.Unlock()
		}
	})
	return firstErr
}

// MapReduce splits [0, n) into Workers(p, n) contiguous chunks, runs mapFn
// on each chunk concurrently, and folds the partial results into zero in
// ascending chunk order: reduceFn(...reduceFn(zero, part0)..., partK). The
// chunk layout is a function of (p, n) only, so the result is deterministic
// for a fixed worker count. mapFn must be safe to call concurrently.
func MapReduce[T any](p, n int, zero T, mapFn func(lo, hi int) T, reduceFn func(acc, part T) T) T {
	w := Workers(p, n)
	if w <= 1 {
		if n <= 0 {
			return zero
		}
		return reduceFn(zero, mapFn(0, n))
	}
	parts := make([]T, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for c := 0; c < w; c++ {
		lo, hi := c*n/w, (c+1)*n/w
		go func(c, lo, hi int) {
			defer wg.Done()
			parts[c] = mapFn(lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
	acc := zero
	for _, part := range parts {
		acc = reduceFn(acc, part)
	}
	return acc
}
