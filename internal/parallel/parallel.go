// Package parallel provides the bounded fork-join primitives shared by the
// training and inference hot paths: a resolved worker count, parallel
// index loops with and without first-error propagation, and a
// deterministic chunked map-reduce.
//
// # The Parallelism knob
//
// Every layer of the library (som, core, anomaly, the Pipeline façade)
// exposes a Parallelism int configuration field that is interpreted by
// Workers: values <= 0 mean "use runtime.GOMAXPROCS(0)", 1 means strictly
// serial execution on the calling goroutine, and n > 1 bounds the fan-out
// at n goroutines. The worker count is additionally capped by the job
// count, so small inputs never pay goroutine overhead.
//
// # Determinism
//
// ForEach runs fn exactly once per index; when every fn(i) writes only to
// its own output slot, the result is identical for every worker count —
// this is how BMU assignment and batch classification stay bit-for-bit
// reproducible under parallelism. Reductions whose result must not depend
// on the worker count (floating-point sums on the training path) are
// instead expressed as a parallel per-index pass followed by a serial
// index-order fold in the caller. MapReduce is deterministic for a fixed
// (p, n) pair: chunk boundaries depend only on p and n, and partial
// results are folded in ascending chunk order.
//
// The chunked scheduler (ForEachChunk, MapReduceChunk) strengthens that
// guarantee to every worker count: its chunk layout is a function of (n,
// grain) only — never of p — chunks are handed to workers by an atomic
// cursor (work stealing, so skewed chunk costs balance), and
// MapReduceChunk folds per-chunk partials in ascending chunk order.
// Because each chunk's partial is computed over the same index range with
// the same serial order no matter which worker runs it, floating-point
// reductions built on MapReduceChunk are bit-identical at every
// Parallelism setting, including 1.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// CacheLineSize is the assumed coherence granularity used by Padded. 64
// bytes covers x86-64 and most arm64 cores (Apple silicon uses 128-byte
// lines; Padded's slot spacing still removes the adjacent-slot sharing
// that dominates in practice).
const CacheLineSize = 64

// Padded wraps a value in a full trailing cache line so adjacent elements
// of a []Padded[T] never share a line through their tails — the
// accumulator-slot layout of MapReduceChunk and of callers keeping
// per-worker counters. For slot types at least a cache line wide the pad
// is redundant but harmless.
type Padded[T any] struct {
	V T
	_ [CacheLineSize]byte
}

// Resolve maps a Parallelism knob value to a concrete worker budget:
// p <= 0 selects runtime.GOMAXPROCS(0), any other value is returned as is.
func Resolve(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Workers resolves a Parallelism knob value p against a job count n: p <= 0
// selects runtime.GOMAXPROCS(0), and the result is clamped to [1, n] (with
// a floor of 1 even for n == 0).
func Workers(p, n int) int {
	p = Resolve(p)
	if n < p {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// WorkersGrain resolves the knob p against n jobs whose natural work
// granule is grain indices (a GEMM tile of rows, a pooled classify
// chunk): the worker count is additionally clamped so no worker would
// receive less than one full granule. Workers(p, n) alone oversubscribes
// small batches — at n=40 rows and p=16 every worker gets under one
// 32-row GEMM tile and the fan-out costs more than it buys. A grain <= 1
// degenerates to Workers(p, n).
func WorkersGrain(p, n, grain int) int {
	w := Workers(p, n)
	if grain > 1 {
		if g := (n + grain - 1) / grain; g < w {
			w = g
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Chunks returns the number of fixed-layout chunks ForEachChunk and
// MapReduceChunk split [0, n) into at the given grain: ceil(n/grain),
// with grain floored at 1. The layout depends only on (n, grain).
func Chunks(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// ForEachChunk splits [0, n) into fixed chunks of grain indices — chunk c
// covers [c*grain, min((c+1)*grain, n)), a layout that depends only on
// (n, grain) — and invokes fn(w, lo, hi) once per chunk on at most
// WorkersGrain(p, n, grain) workers. Chunks are handed out through an
// atomic cursor, so uneven per-chunk costs (hierarchy descents of varying
// depth) balance across workers (work stealing), while w identifies the
// calling worker in [0, WorkersGrain(p, n, grain)) so callers can keep
// per-worker scratch arenas without locks or pools on the chunk path.
// Serial execution (one worker) visits chunks in ascending order with
// w == 0. fn must be safe for concurrent calls; writes to distinct
// per-index slots need no further synchronization.
func ForEachChunk(p, n, grain int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	w := WorkersGrain(p, n, grain)
	if w <= 1 {
		for c := 0; c < chunks; c++ {
			hi := (c + 1) * grain
			if hi > n {
				hi = n
			}
			fn(0, c*grain, hi)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for id := 0; id < w; id++ {
		go func(id int) {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					return
				}
				hi := (c + 1) * grain
				if hi > n {
					hi = n
				}
				fn(id, c*grain, hi)
			}
		}(id)
	}
	wg.Wait()
}

// MapReduceChunk runs mapFn over the same fixed chunk layout as
// ForEachChunk — chunk boundaries depend only on (n, grain) — storing
// each chunk's partial in its own cache-line-padded slot, then folds the
// partials into zero in ascending chunk order once all chunks complete:
// reduceFn(...reduceFn(zero, part0)..., partK). Unlike MapReduce (whose
// chunk layout follows the worker count), the result is bit-identical at
// EVERY worker count, including serial execution, because each partial is
// computed over an identical index range in identical serial order and
// the fold order never changes. This is the scheduler under the
// floating-point training folds (BMU-class accumulation, MQE sums).
//
// Callers bound peak memory by choosing grain: all ceil(n/grain) partials
// are alive until the fold runs. reduceFn may recycle part's storage into
// a pool after folding it.
func MapReduceChunk[T any](p, n, grain int, zero T, mapFn func(lo, hi int) T, reduceFn func(acc, part T) T) T {
	if n <= 0 {
		return zero
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	parts := make([]Padded[T], chunks)
	ForEachChunk(p, n, grain, func(w, lo, hi int) {
		parts[lo/grain].V = mapFn(lo, hi)
	})
	acc := zero
	for c := range parts {
		acc = reduceFn(acc, parts[c].V)
	}
	return acc
}

// ForEach invokes fn(i) exactly once for every i in [0, n), using at most
// Workers(p, n) goroutines. Indices are handed out in contiguous grains via
// an atomic cursor, so uneven per-index costs (e.g. GHSOM subtrees of very
// different sizes) stay balanced across workers. ForEach returns after all
// calls complete. fn must be safe to call concurrently; writes to distinct
// per-index slots need no further synchronization.
func ForEach(p, n int, fn func(i int)) {
	w := Workers(p, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Grain size trades scheduling overhead against balance: ~8 grains per
	// worker keeps the atomic traffic negligible while still smoothing
	// skewed workloads.
	grain := n / (w * 8)
	if grain < 1 {
		grain = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for c := 0; c < w; c++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ForEachErr invokes fn(i) for every i in [0, n) on up to Workers(p, n)
// goroutines and returns the error of the lowest failing index, matching
// the semantics of a serial loop that aborts on first error. The happy
// path is allocation-free beyond the worker goroutines themselves: error
// bookkeeping is engaged only when some fn actually fails. Once a failure
// at index i is observed, calls for indices greater than i may be skipped
// — callers must treat all outputs as invalid when an error is returned.
// fn must be safe to call concurrently.
func ForEachErr(p, n int, fn func(i int) error) error {
	w := Workers(p, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu       sync.Mutex
		firstIdx atomic.Int64
		firstErr error
	)
	firstIdx.Store(int64(n))
	ForEach(p, n, func(i int) {
		if int64(i) > firstIdx.Load() {
			return // an earlier index already failed; this result is moot
		}
		if err := fn(i); err != nil {
			mu.Lock()
			if int64(i) < firstIdx.Load() {
				firstIdx.Store(int64(i))
				firstErr = err
			}
			mu.Unlock()
		}
	})
	return firstErr
}

// MapReduce splits [0, n) into Workers(p, n) contiguous chunks, runs mapFn
// on each chunk concurrently, and folds the partial results into zero in
// ascending chunk order: reduceFn(...reduceFn(zero, part0)..., partK). The
// chunk layout is a function of (p, n) only, so the result is deterministic
// for a fixed worker count. mapFn must be safe to call concurrently.
func MapReduce[T any](p, n int, zero T, mapFn func(lo, hi int) T, reduceFn func(acc, part T) T) T {
	w := Workers(p, n)
	if w <= 1 {
		if n <= 0 {
			return zero
		}
		return reduceFn(zero, mapFn(0, n))
	}
	parts := make([]T, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for c := 0; c < w; c++ {
		lo, hi := c*n/w, (c+1)*n/w
		go func(c, lo, hi int) {
			defer wg.Done()
			parts[c] = mapFn(lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
	acc := zero
	for _, part := range parts {
		acc = reduceFn(acc, part)
	}
	return acc
}
