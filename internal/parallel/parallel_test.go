package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		p, n, want int
	}{
		{0, 100, min(gmp, 100)},
		{-3, 100, min(gmp, 100)},
		{1, 100, 1},
		{4, 100, 4},
		{4, 2, 2},
		{4, 0, 1},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.p, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.p, c.n, got, c.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 0} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			counts := make([]int32, n)
			ForEach(p, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("p=%d n=%d: index %d visited %d times", p, n, i, c)
				}
			}
		}
	}
}

func TestForEachDeterministicOutputAcrossWorkerCounts(t *testing.T) {
	n := 512
	ref := make([]int, n)
	ForEach(1, n, func(i int) { ref[i] = i * i })
	for _, p := range []int{2, 4, 8, 0} {
		out := make([]int, n)
		ForEach(p, n, func(i int) { out[i] = i * i })
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("p=%d: out[%d] = %d, want %d", p, i, out[i], ref[i])
			}
		}
	}
}

func TestForEachErrHappyPath(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 0} {
		n := 300
		counts := make([]int32, n)
		err := ForEachErr(p, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: err = %v", p, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("p=%d: index %d visited %d times", p, i, c)
			}
		}
	}
}

// TestForEachErrLowestIndexWins verifies the serial-loop error contract:
// with several failing indices, the error of the lowest one is returned at
// every worker count.
func TestForEachErrLowestIndexWins(t *testing.T) {
	fail := map[int]error{
		17:  errTest(17),
		200: errTest(200),
		999: errTest(999),
	}
	for _, p := range []int{1, 2, 4, 8, 0} {
		err := ForEachErr(p, 1000, func(i int) error { return fail[i] })
		if err != errTest(17) {
			t.Errorf("p=%d: err = %v, want %v", p, err, errTest(17))
		}
	}
}

func TestForEachErrEmpty(t *testing.T) {
	if err := ForEachErr(4, 0, func(i int) error { return errTest(i) }); err != nil {
		t.Errorf("empty range err = %v", err)
	}
}

type errTest int

func (e errTest) Error() string { return "test error" }

func TestMapReduceSum(t *testing.T) {
	n := 1000
	want := n * (n - 1) / 2
	for _, p := range []int{1, 2, 4, 8, 0} {
		got := MapReduce(p, n, 0,
			func(lo, hi int) int {
				s := 0
				for i := lo; i < hi; i++ {
					s += i
				}
				return s
			},
			func(acc, part int) int { return acc + part })
		if got != want {
			t.Errorf("p=%d: sum = %d, want %d", p, got, want)
		}
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(4, 0, 42,
		func(lo, hi int) int { t.Fatal("mapFn called on empty range"); return 0 },
		func(acc, part int) int { return acc + part })
	if got != 42 {
		t.Errorf("empty MapReduce = %d, want zero value 42", got)
	}
}

func TestWorkersGrain(t *testing.T) {
	cases := []struct {
		p, n, grain, want int
	}{
		{16, 40, 32, 2}, // 40 rows / 32-row tiles: two workers, not 16
		{16, 1000, 32, 16} /* enough tiles for everyone */, {16, 31, 32, 1},
		{16, 0, 32, 1},
		{4, 100, 0, 4}, // grain <= 1 degenerates to Workers
		{4, 100, 1, 4},
		{1, 100, 32, 1},
	}
	for _, c := range cases {
		if got := WorkersGrain(c.p, c.n, c.grain); got != c.want {
			t.Errorf("WorkersGrain(%d, %d, %d) = %d, want %d", c.p, c.n, c.grain, got, c.want)
		}
	}
}

// TestForEachChunkCoversRangeOnce checks every index is covered by exactly
// one chunk, chunk boundaries follow the fixed (n, grain) layout, and
// worker ids stay in range, at every worker count.
func TestForEachChunkCoversRangeOnce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 0} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			for _, grain := range []int{1, 7, 64, 2000} {
				counts := make([]int32, n)
				maxW := WorkersGrain(p, n, grain)
				var badWorker atomic.Int32
				badWorker.Store(-1)
				ForEachChunk(p, n, grain, func(w, lo, hi int) {
					if w < 0 || w >= maxW {
						badWorker.Store(int32(w))
					}
					if lo%grain != 0 || (hi != n && hi-lo != grain) || hi > n {
						badWorker.Store(int32(-2))
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				if w := badWorker.Load(); w != -1 {
					t.Fatalf("p=%d n=%d grain=%d: bad worker id or chunk bounds (%d)", p, n, grain, w)
				}
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("p=%d n=%d grain=%d: index %d visited %d times", p, n, grain, i, c)
					}
				}
			}
		}
	}
}

// TestMapReduceChunkBitIdenticalAcrossWorkerCounts is the determinism
// contract of the chunked scheduler: a floating-point sum whose rounding
// depends on the grouping must come out bit-identical at every worker
// count because the chunk layout and fold order never depend on it.
func TestMapReduceChunkBitIdenticalAcrossWorkerCounts(t *testing.T) {
	n := 10_000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+1)
	}
	sum := func(p, grain int) float64 {
		return MapReduceChunk(p, n, grain, 0.0,
			func(lo, hi int) float64 {
				var s float64
				for i := lo; i < hi; i++ {
					s += vals[i]
				}
				return s
			},
			func(acc, part float64) float64 { return acc + part })
	}
	for _, grain := range []int{1, 97, 1024, n} {
		ref := sum(1, grain)
		for _, p := range []int{2, 3, 8, 0} {
			if got := sum(p, grain); got != ref {
				t.Fatalf("grain=%d p=%d: sum %v differs from serial %v", grain, p, got, ref)
			}
		}
	}
}

// TestMapReduceChunkFoldOrder verifies ascending-chunk fold order and the
// fixed chunk layout.
func TestMapReduceChunkFoldOrder(t *testing.T) {
	for _, p := range []int{1, 4, 0} {
		got := MapReduceChunk(p, 100, 16, []int(nil),
			func(lo, hi int) []int { return []int{lo, hi} },
			func(acc, part []int) []int { return append(acc, part...) })
		want := Chunks(100, 16)
		if len(got) != 2*want {
			t.Fatalf("p=%d: %d chunks, want %d", p, len(got)/2, want)
		}
		for c := 0; c < want; c++ {
			lo, hi := got[2*c], got[2*c+1]
			if lo != c*16 || hi != min(lo+16, 100) {
				t.Fatalf("p=%d: chunk %d spans [%d,%d)", p, c, lo, hi)
			}
		}
	}
}

func TestMapReduceChunkEmpty(t *testing.T) {
	got := MapReduceChunk(4, 0, 8, 42,
		func(lo, hi int) int { t.Fatal("mapFn called on empty range"); return 0 },
		func(acc, part int) int { return acc + part })
	if got != 42 {
		t.Errorf("empty MapReduceChunk = %d, want zero value 42", got)
	}
}

// TestMapReduceChunkOrder verifies partials are folded in ascending chunk
// order — the documented determinism contract.
func TestMapReduceChunkOrder(t *testing.T) {
	n, p := 100, 4
	got := MapReduce(p, n, []int(nil),
		func(lo, hi int) []int { return []int{lo} },
		func(acc, part []int) []int { return append(acc, part...) })
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("chunk lows not ascending: %v", got)
		}
	}
	if len(got) != Workers(p, n) {
		t.Fatalf("got %d chunks, want %d", len(got), Workers(p, n))
	}
}
