package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file adds cancellation-aware variants of the chunked scheduler.
// The cancellation contract is deliberately coarse: checkpoints sit ONLY
// between chunks — a chunk that has started always runs to completion —
// so a call that is never canceled executes the exact same chunked
// computation tree as ForEachChunk/MapReduceChunk and inherits their
// bit-identity guarantee at every worker count. A canceled call returns
// ctx.Err() and the caller must treat all outputs as invalid; no partial
// result is ever observed as a complete one.

// ForEachChunkErrCtx is ForEachChunk with two additions: fn may fail,
// and ctx may cancel the loop between chunks. The chunk layout is the
// fixed (n, grain) layout of ForEachChunk — never a function of the
// worker count. On fn failure the error of the lowest failing chunk is
// returned (chunks after an observed failure may be skipped), matching
// ForEachErr's lowest-index semantics when per-chunk work scans
// ascending indices. On cancellation with no fn error, ctx.Err() is
// returned — but only if the cancellation actually cut chunks short:
// a ctx that fires after the last chunk completed does not fail the
// call, because the computation is whole. A nil ctx never cancels.
func ForEachChunkErrCtx(ctx context.Context, p, n, grain int, fn func(w, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	canceled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	w := WorkersGrain(p, n, grain)
	if w <= 1 {
		for c := 0; c < chunks; c++ {
			if canceled() {
				return ctx.Err()
			}
			hi := (c + 1) * grain
			if hi > n {
				hi = n
			}
			if err := fn(0, c*grain, hi); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor   atomic.Int64
		cut      atomic.Bool // a checkpoint skipped remaining chunks
		mu       sync.Mutex
		firstChk atomic.Int64
		firstErr error
	)
	firstChk.Store(int64(chunks))
	var wg sync.WaitGroup
	wg.Add(w)
	for id := 0; id < w; id++ {
		go func(id int) {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					return
				}
				if canceled() {
					cut.Store(true)
					return
				}
				if int64(c) > firstChk.Load() {
					continue // an earlier chunk failed; skip, but keep draining the cursor
				}
				hi := (c + 1) * grain
				if hi > n {
					hi = n
				}
				if err := fn(id, c*grain, hi); err != nil {
					mu.Lock()
					if int64(c) < firstChk.Load() {
						firstChk.Store(int64(c))
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}(id)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if cut.Load() {
		return ctx.Err()
	}
	return nil
}

// ForEachChunkCtx is ForEachChunk with cancellation checkpoints between
// chunks: it returns nil exactly when every chunk ran (in which case the
// results are identical to ForEachChunk's at every worker count), and
// ctx.Err() when cancellation cut the loop short.
func ForEachChunkCtx(ctx context.Context, p, n, grain int, fn func(w, lo, hi int)) error {
	return ForEachChunkErrCtx(ctx, p, n, grain, func(w, lo, hi int) error {
		fn(w, lo, hi)
		return nil
	})
}

// MapReduceChunkCtx is MapReduceChunk with cancellation checkpoints
// between chunks. A nil error guarantees the returned value is the full
// deterministic fold — bit-identical to MapReduceChunk at every worker
// count; on cancellation the zero value and ctx.Err() are returned and
// no partial fold escapes.
func MapReduceChunkCtx[T any](ctx context.Context, p, n, grain int, zero T, mapFn func(lo, hi int) T, reduceFn func(acc, part T) T) (T, error) {
	if n <= 0 {
		return zero, nil
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	parts := make([]Padded[T], chunks)
	err := ForEachChunkCtx(ctx, p, n, grain, func(w, lo, hi int) {
		parts[lo/grain].V = mapFn(lo, hi)
	})
	if err != nil {
		return zero, err
	}
	acc := zero
	for c := range parts {
		acc = reduceFn(acc, parts[c].V)
	}
	return acc, nil
}
