package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachChunkCtxMatchesForEachChunk proves the uncanceled ctx
// variant visits the identical chunk layout as ForEachChunk for a sweep
// of (n, grain, p).
func TestForEachChunkCtxMatchesForEachChunk(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, grain := range []int{1, 8, 33} {
			for _, p := range []int{1, 2, 8} {
				var mu sync.Mutex
				plain := map[[2]int]bool{}
				ForEachChunk(p, n, grain, func(w, lo, hi int) {
					mu.Lock()
					plain[[2]int{lo, hi}] = true
					mu.Unlock()
				})
				ctxed := map[[2]int]bool{}
				err := ForEachChunkCtx(context.Background(), p, n, grain, func(w, lo, hi int) {
					mu.Lock()
					ctxed[[2]int{lo, hi}] = true
					mu.Unlock()
				})
				if err != nil {
					t.Fatalf("n=%d grain=%d p=%d: err %v", n, grain, p, err)
				}
				if len(plain) != len(ctxed) {
					t.Fatalf("n=%d grain=%d p=%d: %d vs %d chunks", n, grain, p, len(plain), len(ctxed))
				}
				for k := range plain {
					if !ctxed[k] {
						t.Fatalf("n=%d grain=%d p=%d: chunk %v missing", n, grain, p, k)
					}
				}
			}
		}
	}
}

// TestForEachChunkCtxNilCtx pins that a nil ctx is valid and never
// cancels.
func TestForEachChunkCtxNilCtx(t *testing.T) {
	var ran atomic.Int64
	if err := ForEachChunkCtx(nil, 4, 100, 10, func(w, lo, hi int) { ran.Add(int64(hi - lo)) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d indices, want 100", ran.Load())
	}
}

// TestForEachChunkCtxPreCanceled: an already-canceled ctx runs no chunks
// and reports ctx.Err().
func TestForEachChunkCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEachChunkCtx(ctx, p, 1000, 10, func(w, lo, hi int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("p=%d: err = %v, want Canceled", p, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("p=%d: %d chunks ran under pre-canceled ctx", p, ran.Load())
		}
	}
}

// TestForEachChunkCtxCancelMidway cancels from inside a chunk and checks
// the loop stops between chunks: started chunks complete, the tail is
// skipped, and ctx.Err() is returned.
func TestForEachChunkCtxCancelMidway(t *testing.T) {
	for _, p := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n, grain = 1000, 10
		var ran atomic.Int64
		var completed atomic.Int64
		err := ForEachChunkCtx(ctx, p, n, grain, func(w, lo, hi int) {
			if ran.Add(1) == 5 {
				cancel()
			}
			completed.Add(1) // a started chunk always finishes
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("p=%d: err = %v, want Canceled", p, err)
		}
		if c := completed.Load(); c >= n/grain {
			t.Fatalf("p=%d: all %d chunks ran despite cancellation", p, c)
		}
		if ran.Load() != completed.Load() {
			t.Fatalf("p=%d: %d started != %d completed (a chunk was cut mid-run)", p, ran.Load(), completed.Load())
		}
	}
}

// TestForEachChunkCtxLateCancelIsComplete: cancellation that fires after
// every chunk completed must not fail the call — the computation is
// whole.
func TestForEachChunkCtxLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachChunkCtx(ctx, 1, 100, 10, func(w, lo, hi int) { ran.Add(1) })
	cancel()
	if err != nil || ran.Load() != 10 {
		t.Fatalf("err=%v ran=%d, want nil and 10", err, ran.Load())
	}
}

// TestForEachChunkErrCtxLowestChunk checks first-error semantics: the
// error of the lowest failing chunk wins regardless of worker count.
func TestForEachChunkErrCtxLowestChunk(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		err := ForEachChunkErrCtx(context.Background(), p, 100, 10, func(w, lo, hi int) error {
			if lo >= 30 {
				return fmt.Errorf("chunk at %d", lo)
			}
			return nil
		})
		if err == nil || err.Error() != "chunk at 30" {
			t.Fatalf("p=%d: err = %v, want chunk at 30", p, err)
		}
	}
}

// TestForEachChunkErrCtxErrorBeatsCancel: when a chunk fails and the ctx
// is also canceled, the fn error is reported (the caller needs the root
// cause, not the cascade).
func TestForEachChunkErrCtxErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForEachChunkErrCtx(ctx, 4, 100, 10, func(w, lo, hi int) error {
		if lo == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestMapReduceChunkCtxMatchesMapReduceChunk proves the uncanceled fold
// is bit-identical to MapReduceChunk at every worker count.
func TestMapReduceChunkCtxMatchesMapReduceChunk(t *testing.T) {
	n := 1003
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1.0 / float64(i+3)
	}
	mapFn := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		return s
	}
	add := func(a, b float64) float64 { return a + b }
	want := MapReduceChunk(1, n, 17, 0.0, mapFn, add)
	for _, p := range []int{1, 2, 8} {
		got, err := MapReduceChunkCtx(context.Background(), p, n, 17, 0.0, mapFn, add)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("p=%d: fold %v != %v (not bit-identical)", p, got, want)
		}
	}
}

// TestMapReduceChunkCtxCanceledReturnsZero: no partial fold escapes a
// canceled call.
func TestMapReduceChunkCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := MapReduceChunkCtx(ctx, 4, 1000, 10, 0.0,
		func(lo, hi int) float64 { return 1 },
		func(a, b float64) float64 { return a + b })
	if !errors.Is(err, context.Canceled) || got != 0 {
		t.Fatalf("got %v, %v; want 0, Canceled", got, err)
	}
}
