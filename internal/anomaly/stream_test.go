package anomaly

import (
	"math"
	"testing"
)

func TestStreamBasicCounters(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, err := NewStream(d, StreamConfig{WindowSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _ = s.Observe([]float64{0.5}); false {
			t.Fatal()
		}
	}
	if s.Total() != 5 {
		t.Errorf("Total = %d", s.Total())
	}
	if s.AttackRate() != 0 {
		t.Errorf("AttackRate = %v on clean traffic", s.AttackRate())
	}
	for i := 0; i < 5; i++ {
		s.Observe([]float64{1.5})
	}
	if s.AttackRate() != 0.5 {
		t.Errorf("AttackRate = %v, want 0.5", s.AttackRate())
	}
	counts := s.LabelCounts()
	if counts["normal"] != 5 || counts["neptune"] != 5 {
		t.Errorf("LabelCounts = %v", counts)
	}
}

func TestStreamAlarmEdgeTriggered(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, err := NewStream(d, StreamConfig{WindowSize: 8, AlarmRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Clean prefix: no alarm.
	for i := 0; i < 8; i++ {
		if _, alarm := s.Observe([]float64{0.5}); alarm {
			t.Fatal("alarm during clean traffic")
		}
	}
	// Attack burst: exactly one new-alarm edge.
	var edges int
	for i := 0; i < 16; i++ {
		if _, alarm := s.Observe([]float64{1.5}); alarm {
			edges++
		}
	}
	if edges != 1 {
		t.Errorf("alarm edges during burst = %d, want 1", edges)
	}
	if !s.InAlarm() {
		t.Error("stream should be in alarm after burst")
	}
	if s.Alarms() != 1 {
		t.Errorf("Alarms = %d", s.Alarms())
	}
	// Recovery: alarm clears, a second burst re-triggers.
	for i := 0; i < 16; i++ {
		s.Observe([]float64{0.5})
	}
	if s.InAlarm() {
		t.Error("alarm did not clear after recovery")
	}
	for i := 0; i < 16; i++ {
		s.Observe([]float64{1.5})
	}
	if s.Alarms() != 2 {
		t.Errorf("Alarms after second burst = %d, want 2", s.Alarms())
	}
}

func TestStreamWindowRate(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, err := NewStream(d, StreamConfig{WindowSize: 4, AlarmRate: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe([]float64{1.5})
	s.Observe([]float64{1.5})
	s.Observe([]float64{0.5})
	s.Observe([]float64{0.5})
	if got := s.WindowRate(); got != 0.5 {
		t.Errorf("WindowRate = %v, want 0.5", got)
	}
	// Window slides: four clean records push the attacks out.
	for i := 0; i < 4; i++ {
		s.Observe([]float64{0.5})
	}
	if got := s.WindowRate(); got != 0 {
		t.Errorf("WindowRate after slide = %v, want 0", got)
	}
}

func TestStreamNoveltyRate(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, err := NewStream(d, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe([]float64{0.5}) // clean
	s.Observe([]float64{9.9}) // unseen cell, high QE -> novel
	if got := s.NoveltyRate(); got != 0.5 {
		t.Errorf("NoveltyRate = %v, want 0.5", got)
	}
}

func TestStreamNaNInputSurvives(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, err := NewStream(d, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.Observe([]float64{math.NaN()})
	if math.IsNaN(p.QE) {
		t.Error("NaN propagated through stream")
	}
}

func TestNewStreamValidation(t *testing.T) {
	d := fitTestDetector(t, Config{})
	if _, err := NewStream(nil, StreamConfig{}); err == nil {
		t.Error("nil detector accepted")
	}
	if _, err := NewStream(d, StreamConfig{WindowSize: -1}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := NewStream(d, StreamConfig{AlarmRate: 2}); err == nil {
		t.Error("alarm rate 2 accepted")
	}
}

func TestStreamEmptyRates(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, _ := NewStream(d, StreamConfig{})
	if s.AttackRate() != 0 || s.NoveltyRate() != 0 || s.WindowRate() != 0 {
		t.Error("empty stream rates should be 0")
	}
}
