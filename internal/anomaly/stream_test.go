package anomaly

import (
	"math"
	"testing"
)

func TestStreamBasicCounters(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, err := NewStream(d, StreamConfig{WindowSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _ = s.Observe([]float64{0.5}); false {
			t.Fatal()
		}
	}
	if s.Total() != 5 {
		t.Errorf("Total = %d", s.Total())
	}
	if s.AttackRate() != 0 {
		t.Errorf("AttackRate = %v on clean traffic", s.AttackRate())
	}
	for i := 0; i < 5; i++ {
		s.Observe([]float64{1.5})
	}
	if s.AttackRate() != 0.5 {
		t.Errorf("AttackRate = %v, want 0.5", s.AttackRate())
	}
	counts := s.LabelCounts()
	if counts["normal"] != 5 || counts["neptune"] != 5 {
		t.Errorf("LabelCounts = %v", counts)
	}
}

func TestStreamAlarmEdgeTriggered(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, err := NewStream(d, StreamConfig{WindowSize: 8, AlarmRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Clean prefix: no alarm.
	for i := 0; i < 8; i++ {
		if _, alarm := s.Observe([]float64{0.5}); alarm {
			t.Fatal("alarm during clean traffic")
		}
	}
	// Attack burst: exactly one new-alarm edge.
	var edges int
	for i := 0; i < 16; i++ {
		if _, alarm := s.Observe([]float64{1.5}); alarm {
			edges++
		}
	}
	if edges != 1 {
		t.Errorf("alarm edges during burst = %d, want 1", edges)
	}
	if !s.InAlarm() {
		t.Error("stream should be in alarm after burst")
	}
	if s.Alarms() != 1 {
		t.Errorf("Alarms = %d", s.Alarms())
	}
	// Recovery: alarm clears, a second burst re-triggers.
	for i := 0; i < 16; i++ {
		s.Observe([]float64{0.5})
	}
	if s.InAlarm() {
		t.Error("alarm did not clear after recovery")
	}
	for i := 0; i < 16; i++ {
		s.Observe([]float64{1.5})
	}
	if s.Alarms() != 2 {
		t.Errorf("Alarms after second burst = %d, want 2", s.Alarms())
	}
}

func TestStreamWindowRate(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, err := NewStream(d, StreamConfig{WindowSize: 4, AlarmRate: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe([]float64{1.5})
	s.Observe([]float64{1.5})
	s.Observe([]float64{0.5})
	s.Observe([]float64{0.5})
	if got := s.WindowRate(); got != 0.5 {
		t.Errorf("WindowRate = %v, want 0.5", got)
	}
	// Window slides: four clean records push the attacks out.
	for i := 0; i < 4; i++ {
		s.Observe([]float64{0.5})
	}
	if got := s.WindowRate(); got != 0 {
		t.Errorf("WindowRate after slide = %v, want 0", got)
	}
}

func TestStreamNoveltyRate(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, err := NewStream(d, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe([]float64{0.5}) // clean
	s.Observe([]float64{9.9}) // unseen cell, high QE -> novel
	if got := s.NoveltyRate(); got != 0.5 {
		t.Errorf("NoveltyRate = %v, want 0.5", got)
	}
}

func TestStreamNaNInputSurvives(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, err := NewStream(d, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.Observe([]float64{math.NaN()})
	if math.IsNaN(p.QE) {
		t.Error("NaN propagated through stream")
	}
}

func TestNewStreamValidation(t *testing.T) {
	d := fitTestDetector(t, Config{})
	if _, err := NewStream(nil, StreamConfig{}); err == nil {
		t.Error("nil detector accepted")
	}
	if _, err := NewStream(d, StreamConfig{WindowSize: -1}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := NewStream(d, StreamConfig{AlarmRate: 2}); err == nil {
		t.Error("alarm rate 2 accepted")
	}
}

func TestStreamEmptyRates(t *testing.T) {
	d := fitTestDetector(t, Config{})
	s, _ := NewStream(d, StreamConfig{})
	if s.AttackRate() != 0 || s.NoveltyRate() != 0 || s.WindowRate() != 0 {
		t.Error("empty stream rates should be 0")
	}
}

// TestObserveBatchMatchesSequentialObserve pins the ObserveBatch
// satellite guarantee: batching the classification changes nothing — the
// predictions, counters, window state, and alarm edges are identical to
// calling Observe per record in order, including NaN/Inf guarding and
// ragged rows.
func TestObserveBatchMatchesSequentialObserve(t *testing.T) {
	d := fitTestDetector(t, Config{})
	mkStream := func() *Stream {
		s, err := NewStream(d, StreamConfig{WindowSize: 8, AlarmRate: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	seq, bat := mkStream(), mkStream()

	// Mixed traffic: normals, attacks, novelty, malformed (NaN/Inf), and
	// a ragged short row to exercise the per-record fallback.
	var records [][]float64
	for i := 0; i < 120; i++ {
		switch i % 6 {
		case 0, 1:
			records = append(records, []float64{0.45})
		case 2, 3:
			records = append(records, []float64{1.5})
		case 4:
			records = append(records, []float64{math.NaN()})
		default:
			records = append(records, []float64{9.9})
		}
	}
	records = append(records, []float64{0.5, 0.6}) // ragged row
	records = append(records, []float64{math.Inf(1)})

	var wantPreds []Prediction
	wantAlarms := 0
	for _, x := range records {
		p, newAlarm := seq.Observe(x)
		wantPreds = append(wantPreds, p)
		if newAlarm {
			wantAlarms++
		}
	}

	// Feed the same records through ObserveBatch in uneven batch sizes,
	// reusing the output buffer across calls.
	gotAlarms := 0
	var got []Prediction
	var out []Prediction
	for lo := 0; lo < len(records); {
		hi := lo + 7
		if hi > len(records) {
			hi = len(records)
		}
		var n int
		out, n = bat.ObserveBatch(records[lo:hi], out)
		got = append(got, out...)
		gotAlarms += n
		lo = hi
	}

	if len(got) != len(wantPreds) {
		t.Fatalf("got %d predictions, want %d", len(got), len(wantPreds))
	}
	for i := range got {
		if got[i] != wantPreds[i] {
			t.Fatalf("record %d: batch %+v, sequential %+v", i, got[i], wantPreds[i])
		}
	}
	if gotAlarms != wantAlarms {
		t.Fatalf("batch alarms = %d, sequential %d", gotAlarms, wantAlarms)
	}
	if seq.Total() != bat.Total() || seq.AttackRate() != bat.AttackRate() ||
		seq.NoveltyRate() != bat.NoveltyRate() || seq.WindowRate() != bat.WindowRate() ||
		seq.Alarms() != bat.Alarms() || seq.InAlarm() != bat.InAlarm() {
		t.Fatalf("stream state diverged: seq total=%d rate=%v window=%v alarms=%d inAlarm=%v; "+
			"batch total=%d rate=%v window=%v alarms=%d inAlarm=%v",
			seq.Total(), seq.AttackRate(), seq.WindowRate(), seq.Alarms(), seq.InAlarm(),
			bat.Total(), bat.AttackRate(), bat.WindowRate(), bat.Alarms(), bat.InAlarm())
	}
	sc, bc := seq.LabelCounts(), bat.LabelCounts()
	if len(sc) != len(bc) {
		t.Fatalf("label counts diverged: %v vs %v", sc, bc)
	}
	for k, v := range sc {
		if bc[k] != v {
			t.Fatalf("label %q count: seq %d, batch %d", k, v, bc[k])
		}
	}

	// Empty batch is a no-op.
	if _, n := bat.ObserveBatch(nil, nil); n != 0 {
		t.Fatalf("empty batch raised %d alarms", n)
	}
	if bat.Total() != seq.Total() {
		t.Fatal("empty batch changed stream state")
	}
}
