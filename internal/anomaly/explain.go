package anomaly

import (
	"math"
	"sort"
)

// WeightQuantizer is implemented by quantizers that can expose the weight
// vector behind a cell, enabling per-feature explanations.
type WeightQuantizer interface {
	Quantizer
	// CellWeight returns the weight vector of the given cell, or nil if
	// the cell identifier is unknown.
	CellWeight(cell string) []float64
}

// Contribution is one feature's share of a record's quantization error.
type Contribution struct {
	// Dim is the feature index in the encoded vector.
	Dim int
	// Delta is x[Dim] - w[Dim]: positive when the record exceeds the
	// matched prototype in this feature.
	Delta float64
}

// Explain returns the top-k features contributing to x's distance from
// its matched prototype, ordered by decreasing |Delta|. It returns nil
// when the detector's quantizer cannot expose cell weights or the cell is
// unknown. Use it to answer "why was this connection flagged": for a SYN
// flood the top contributions are count/serror_rate, for a U2R session
// the content features.
func (d *Detector) Explain(x []float64, k int) []Contribution {
	wq, ok := d.q.(WeightQuantizer)
	if !ok {
		return nil
	}
	cell, _ := d.q.Quantize(x)
	w := wq.CellWeight(cell)
	if w == nil || len(w) != len(x) {
		return nil
	}
	out := make([]Contribution, len(x))
	for i := range x {
		out[i] = Contribution{Dim: i, Delta: x[i] - w[i]}
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].Delta) > math.Abs(out[j].Delta)
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}
