package anomaly

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"ghsom/internal/baseline"
	"ghsom/internal/core"
	"ghsom/internal/som"
)

// GHSOMQuantizer adapts a trained GHSOM to the Quantizer interface: the
// cell is the hierarchical leaf placement "nodeID/unit". Routing uses
// RouteTrained so classification stays on the effective codebook (units
// that won training data).
//
// Build it with NewGHSOMQuantizer over a compiled model (core.Compile)
// on the inference hot path: routing then runs on the flat-arena
// table-driven descent — no pointer chasing, no map lookups — and the
// constructor precomputes the "nodeID/unit" cell name of every unit in
// the hierarchy, so Quantize and QuantizeBatch hand out shared immutable
// strings instead of formatting one per record. The plain composite
// literal GHSOMQuantizer{Model: m} remains valid and routes identically
// through the pointer tree, falling back to per-call formatting.
type GHSOMQuantizer struct {
	// Model is the trained pointer-tree hierarchy, used when no compiled
	// model is present.
	Model *core.GHSOM
	// compiled is the flat-arena model the hot path routes on; nil when
	// built from the composite literal.
	compiled *core.Compiled
	// names caches the cell name of every (node, unit) pair, indexed by
	// node ID then unit; nil when built without NewGHSOMQuantizer.
	names [][]string
}

var (
	_ Quantizer       = GHSOMQuantizer{}
	_ BatchQuantizer  = GHSOMQuantizer{}
	_ WeightQuantizer = GHSOMQuantizer{}
)

// NewGHSOMQuantizer builds the adapter over a compiled model, with its
// cell-name cache — the allocation-free form used by the batch inference
// dataplane. Placements (and therefore cells and verdicts) are
// byte-identical to routing through the pointer tree the model was
// compiled from.
func NewGHSOMQuantizer(compiled *core.Compiled) GHSOMQuantizer {
	names := make([][]string, compiled.NumNodes())
	for id := range names {
		units := make([]string, compiled.NodeUnits(id))
		for u := range units {
			units[u] = core.UnitKey{NodeID: id, Unit: u}.String()
		}
		names[id] = units
	}
	return GHSOMQuantizer{compiled: compiled, names: names}
}

// Compiled returns the compiled model the adapter routes on, or nil for
// a tree-backed adapter.
func (g GHSOMQuantizer) Compiled() *core.Compiled { return g.compiled }

// routeTrained routes through the compiled model when present, else the
// pointer tree.
func (g GHSOMQuantizer) routeTrained(x []float64) core.Placement {
	if g.compiled != nil {
		return g.compiled.RouteTrained(x)
	}
	return g.Model.RouteTrained(x)
}

// Quantize routes x down the hierarchy.
func (g GHSOMQuantizer) Quantize(x []float64) (string, float64) {
	p := g.routeTrained(x)
	return g.cellName(p), p.QE
}

// placeScratchPool recycles the Placement scratch QuantizeBatch hands to
// the model's flat batch descent.
var placeScratchPool = sync.Pool{
	New: func() any { return &placeScratch{buf: make([]core.Placement, 256)} },
}

type placeScratch struct{ buf []core.Placement }

// completeRows returns how many full d-wide rows flat actually holds, at
// most n — the defensive clamp shared by the batch quantizers so a
// truncated batch degrades to sentinels instead of panicking.
func completeRows(flat []float64, n, d int) int {
	if d <= 0 || n <= 0 {
		return 0
	}
	if rows := len(flat) / d; rows < n {
		return rows
	}
	return n
}

// padSentinel fills out[rows:n] — rows a truncated batch could not
// provide — with the given degenerate-quantization sentinel.
func padSentinel(out []CellQE, rows, n int, cell string) {
	for i := rows; i < n; i++ {
		out[i] = CellQE{Cell: cell, QE: math.NaN()}
	}
}

// QuantizeBatch routes the flat batch down the hierarchy via the batch
// descent (the compiled RouteTrainedFlat when the adapter was built with
// NewGHSOMQuantizer, the tree's otherwise; serial within the batch —
// ClassifyBatch parallelizes across chunks), writing cells and
// quantization errors into out. With a cached name table the steady
// state performs no per-row allocation; the Placement scratch is pooled.
// Rows whose width d does not match the model keep Quantize's
// dimension-mismatch sentinel, and a truncated flat (fewer than n
// complete rows) yields sentinels for the missing tail instead of
// panicking.
func (g GHSOMQuantizer) QuantizeBatch(flat []float64, n, d int, out []CellQE) {
	rows := completeRows(flat, n, d)
	defer padSentinel(out, rows, n, "-1/-1")
	dim := 0
	if g.compiled != nil {
		dim = g.compiled.Dim()
	} else {
		dim = g.Model.Dim()
	}
	if d != dim {
		for i := 0; i < rows; i++ {
			p := g.routeTrained(flat[i*d : (i+1)*d])
			out[i] = CellQE{Cell: g.cellName(p), QE: p.QE}
		}
		return
	}
	if rows == 0 {
		return
	}
	scratch := placeScratchPool.Get().(*placeScratch)
	if cap(scratch.buf) < rows {
		scratch.buf = make([]core.Placement, rows)
	}
	places := scratch.buf[:rows]
	// rows complete full-width rows are guaranteed above, so the descent
	// cannot fail.
	if g.compiled != nil {
		_ = g.compiled.RouteTrainedFlat(flat, rows, places, 1)
	} else {
		_ = g.Model.RouteTrainedFlat(flat, rows, places, 1)
	}
	for i := 0; i < rows; i++ {
		out[i] = CellQE{Cell: g.cellName(places[i]), QE: places[i].QE}
	}
	placeScratchPool.Put(scratch)
}

// cellName resolves a placement to its cell string, preferring the cached
// table and falling back to formatting for cache misses (foreign node
// IDs, dimension-mismatch placements with NodeID -1).
func (g GHSOMQuantizer) cellName(p core.Placement) string {
	if p.NodeID >= 0 && p.NodeID < len(g.names) {
		if units := g.names[p.NodeID]; p.Unit >= 0 && p.Unit < len(units) {
			return units[p.Unit]
		}
	}
	return p.Key().String()
}

// CellWeight returns the weight vector of a "nodeID/unit" cell, or nil
// for malformed or unknown identifiers.
func (g GHSOMQuantizer) CellWeight(cell string) []float64 {
	var nodeID, unit int
	if _, err := fmt.Sscanf(cell, "%d/%d", &nodeID, &unit); err != nil {
		return nil
	}
	if g.compiled != nil {
		return g.compiled.UnitWeight(nodeID, unit)
	}
	return g.Model.NearestUnitWeight(core.UnitKey{NodeID: nodeID, Unit: unit})
}

// SOMQuantizer adapts a flat SOM: the cell is the BMU index. When
// UnitCounts (per-unit training record counts, e.g. from Map.Assign over
// the training set) is set, the BMU search is restricted to units with
// data, mirroring GHSOMQuantizer's effective-codebook routing.
type SOMQuantizer struct {
	// Map is the trained SOM.
	Map *som.Map
	// UnitCounts optionally restricts matching to units that won
	// training data.
	UnitCounts []int
}

var (
	_ Quantizer      = SOMQuantizer{}
	_ BatchQuantizer = SOMQuantizer{}
)

// Quantize finds the best-matching unit of x.
func (s SOMQuantizer) Quantize(x []float64) (string, float64) {
	if s.UnitCounts != nil {
		bmu, d2, ok := s.Map.BMUMasked(x, s.UnitCounts)
		if ok {
			return strconv.Itoa(bmu), math.Sqrt(d2)
		}
	}
	bmu, d2 := s.Map.BMU(x)
	return strconv.Itoa(bmu), math.Sqrt(d2)
}

// bmuScratchPool recycles the AssignFlat outputs of SOMQuantizer batches.
var bmuScratchPool = sync.Pool{New: func() any { return &bmuScratch{} }}

type bmuScratch struct {
	bmus []int
	d2s  []float64
}

// QuantizeBatch assigns the flat batch through the map's batch BMU
// kernel (AssignFlat, pinned serial — ClassifyBatch already parallelizes
// across chunks). Effective-codebook maps (UnitCounts set) and rows
// whose width d does not match the map fall back to per-row Quantize; a
// truncated flat yields sentinels for the missing tail. Cell names are
// formatted per row (the flat-SOM baseline path does not cache them).
func (s SOMQuantizer) QuantizeBatch(flat []float64, n, d int, out []CellQE) {
	rows := completeRows(flat, n, d)
	defer padSentinel(out, rows, n, "")
	if d != s.Map.Dim() || s.UnitCounts != nil {
		for i := 0; i < rows; i++ {
			out[i].Cell, out[i].QE = s.Quantize(flat[i*d : (i+1)*d])
		}
		return
	}
	if rows == 0 {
		return
	}
	scratch := bmuScratchPool.Get().(*bmuScratch)
	if cap(scratch.bmus) < rows {
		scratch.bmus = make([]int, rows)
		scratch.d2s = make([]float64, rows)
	}
	bmus, d2s := scratch.bmus[:rows], scratch.d2s[:rows]
	// rows complete full-width rows are guaranteed above, so the
	// assignment cannot fail.
	_ = s.Map.AssignFlat(flat[:rows*d], rows, bmus, d2s, 1)
	for i := 0; i < rows; i++ {
		out[i] = CellQE{Cell: strconv.Itoa(bmus[i]), QE: math.Sqrt(d2s[i])}
	}
	bmuScratchPool.Put(scratch)
}

// KMeansQuantizer adapts a k-means codebook: the cell is the centroid
// index.
type KMeansQuantizer struct {
	// Model is the trained clustering.
	Model *baseline.KMeans
}

var _ Quantizer = KMeansQuantizer{}

// Quantize assigns x to its nearest centroid.
func (k KMeansQuantizer) Quantize(x []float64) (string, float64) {
	c, dist := k.Model.Assign(x)
	return strconv.Itoa(c), dist
}

// AggloQuantizer adapts an agglomerative clustering codebook: the cell is
// the cluster index of the dendrogram cut.
type AggloQuantizer struct {
	// Model is the trained clustering.
	Model *baseline.Agglo
}

var _ Quantizer = AggloQuantizer{}

// Quantize assigns x to its nearest cluster centroid.
func (a AggloQuantizer) Quantize(x []float64) (string, float64) {
	c, dist := a.Model.Assign(x)
	return strconv.Itoa(c), dist
}
