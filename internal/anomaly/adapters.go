package anomaly

import (
	"fmt"
	"math"
	"strconv"

	"ghsom/internal/baseline"
	"ghsom/internal/core"
	"ghsom/internal/som"
)

// GHSOMQuantizer adapts a trained GHSOM to the Quantizer interface: the
// cell is the hierarchical leaf placement "nodeID/unit". Routing uses
// RouteTrained so classification stays on the effective codebook (units
// that won training data).
type GHSOMQuantizer struct {
	// Model is the trained hierarchy.
	Model *core.GHSOM
}

var (
	_ Quantizer       = GHSOMQuantizer{}
	_ WeightQuantizer = GHSOMQuantizer{}
)

// Quantize routes x down the hierarchy.
func (g GHSOMQuantizer) Quantize(x []float64) (string, float64) {
	p := g.Model.RouteTrained(x)
	return p.Key().String(), p.QE
}

// CellWeight returns the weight vector of a "nodeID/unit" cell, or nil
// for malformed or unknown identifiers.
func (g GHSOMQuantizer) CellWeight(cell string) []float64 {
	var nodeID, unit int
	if _, err := fmt.Sscanf(cell, "%d/%d", &nodeID, &unit); err != nil {
		return nil
	}
	return g.Model.NearestUnitWeight(core.UnitKey{NodeID: nodeID, Unit: unit})
}

// SOMQuantizer adapts a flat SOM: the cell is the BMU index. When
// UnitCounts (per-unit training record counts, e.g. from Map.Assign over
// the training set) is set, the BMU search is restricted to units with
// data, mirroring GHSOMQuantizer's effective-codebook routing.
type SOMQuantizer struct {
	// Map is the trained SOM.
	Map *som.Map
	// UnitCounts optionally restricts matching to units that won
	// training data.
	UnitCounts []int
}

var _ Quantizer = SOMQuantizer{}

// Quantize finds the best-matching unit of x.
func (s SOMQuantizer) Quantize(x []float64) (string, float64) {
	if s.UnitCounts != nil {
		bmu, d2, ok := s.Map.BMUWhere(x, func(u int) bool {
			return u < len(s.UnitCounts) && s.UnitCounts[u] > 0
		})
		if ok {
			return strconv.Itoa(bmu), math.Sqrt(d2)
		}
	}
	bmu, d2 := s.Map.BMU(x)
	return strconv.Itoa(bmu), math.Sqrt(d2)
}

// KMeansQuantizer adapts a k-means codebook: the cell is the centroid
// index.
type KMeansQuantizer struct {
	// Model is the trained clustering.
	Model *baseline.KMeans
}

var _ Quantizer = KMeansQuantizer{}

// Quantize assigns x to its nearest centroid.
func (k KMeansQuantizer) Quantize(x []float64) (string, float64) {
	c, dist := k.Model.Assign(x)
	return strconv.Itoa(c), dist
}

// AggloQuantizer adapts an agglomerative clustering codebook: the cell is
// the cluster index of the dendrogram cut.
type AggloQuantizer struct {
	// Model is the trained clustering.
	Model *baseline.Agglo
}

var _ Quantizer = AggloQuantizer{}

// Quantize assigns x to its nearest cluster centroid.
func (a AggloQuantizer) Quantize(x []float64) (string, float64) {
	c, dist := a.Model.Assign(x)
	return strconv.Itoa(c), dist
}
