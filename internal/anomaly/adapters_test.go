package anomaly

import (
	"math/rand"
	"strconv"
	"testing"

	"ghsom/internal/baseline"
	"ghsom/internal/core"
	"ghsom/internal/som"
)

// tinyClusters returns two tight, well-separated blobs.
func tinyClusters(seed int64, nPer int) ([][]float64, []string) {
	rng := rand.New(rand.NewSource(seed))
	var data [][]float64
	var labels []string
	for i := 0; i < nPer; i++ {
		data = append(data, []float64{rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2})
		labels = append(labels, "normal")
	}
	for i := 0; i < nPer; i++ {
		data = append(data, []float64{10 + rng.NormFloat64()*0.2, 10 + rng.NormFloat64()*0.2})
		labels = append(labels, "neptune")
	}
	return data, labels
}

func TestGHSOMQuantizerEndToEnd(t *testing.T) {
	data, labels := tinyClusters(1, 60)
	cfg := core.DefaultConfig()
	cfg.EpochsPerGrowth = 3
	cfg.FineTuneEpochs = 3
	cfg.MaxGrowIters = 3
	cfg.MinMapData = 10
	model, err := core.Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := GHSOMQuantizer{Model: model}
	det, err := Fit(q, data, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p := det.Classify([]float64{0, 0}); p.Attack {
		t.Errorf("normal center flagged: %+v", p)
	}
	if p := det.Classify([]float64{10, 10}); !p.Attack || p.Label != "neptune" {
		t.Errorf("attack center missed: %+v", p)
	}
	// CellWeight reconstructs the routed prototype.
	cell, _ := q.Quantize([]float64{0, 0})
	w := q.CellWeight(cell)
	if w == nil || len(w) != 2 {
		t.Fatalf("CellWeight(%q) = %v", cell, w)
	}
	if q.CellWeight("not-a-cell") != nil {
		t.Error("malformed cell should yield nil weight")
	}
	if q.CellWeight("9999/0") != nil {
		t.Error("unknown node should yield nil weight")
	}
	// Explain works through the adapter.
	if contribs := det.Explain([]float64{0, 5}, 1); len(contribs) != 1 {
		t.Errorf("Explain through GHSOM adapter = %v", contribs)
	}
}

func TestSOMQuantizerEndToEnd(t *testing.T) {
	data, labels := tinyClusters(2, 60)
	rng := rand.New(rand.NewSource(2))
	m, err := som.New(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitSample(data, rng); err != nil {
		t.Fatal(err)
	}
	tc := som.DefaultTrainConfig(rng)
	if _, err := m.TrainOnline(data, tc); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, m.Units())
	for _, b := range m.Assign(data) {
		counts[b]++
	}
	det, err := Fit(SOMQuantizer{Map: m, UnitCounts: counts}, data, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p := det.Classify([]float64{10, 10}); !p.Attack {
		t.Errorf("SOM detector missed attack center: %+v", p)
	}
	// Restricted quantizer never lands on a data-less unit.
	q := SOMQuantizer{Map: m, UnitCounts: counts}
	for i := 0; i < 50; i++ {
		x := []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		cell, _ := q.Quantize(x)
		u, err := strconv.Atoi(cell)
		if err != nil {
			t.Fatal(err)
		}
		if counts[u] == 0 {
			t.Fatalf("restricted SOM quantizer landed on empty unit %d", u)
		}
	}
	// Without counts it falls back to plain BMU.
	plain := SOMQuantizer{Map: m}
	if cell, _ := plain.Quantize([]float64{0, 0}); cell == "" {
		t.Error("plain quantizer returned empty cell")
	}
}

func TestKMeansQuantizerEndToEnd(t *testing.T) {
	data, labels := tinyClusters(3, 60)
	rng := rand.New(rand.NewSource(3))
	km, err := baseline.TrainKMeans(data, baseline.KMeansConfig{K: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	det, err := Fit(KMeansQuantizer{Model: km}, data, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p := det.Classify([]float64{10, 10}); !p.Attack {
		t.Errorf("kmeans detector missed attack center: %+v", p)
	}
	if p := det.Classify([]float64{0, 0}); p.Attack {
		t.Errorf("kmeans detector flagged normal center: %+v", p)
	}
}
