package anomaly

import (
	"errors"
	"math"
	"strconv"
	"testing"
)

// gridQuantizer is a deterministic test quantizer: cell is the integer
// floor of the first coordinate, QE is the distance from the cell center.
type gridQuantizer struct{}

func (gridQuantizer) Quantize(x []float64) (string, float64) {
	cell := int(math.Floor(x[0]))
	center := float64(cell) + 0.5
	return strconv.Itoa(cell), math.Abs(x[0] - center)
}

// fitTestDetector builds a detector over two cells: cell 0 normal,
// cell 1 attack-dominated.
func fitTestDetector(t *testing.T, cfg Config) *Detector {
	t.Helper()
	var data [][]float64
	var labels []string
	for i := 0; i < 50; i++ {
		data = append(data, []float64{0.4 + 0.004*float64(i)}) // cell 0, qe <= ~0.1
		labels = append(labels, "normal")
	}
	for i := 0; i < 40; i++ {
		data = append(data, []float64{1.4 + 0.005*float64(i)}) // cell 1
		labels = append(labels, "neptune")
	}
	for i := 0; i < 10; i++ {
		data = append(data, []float64{1.45})
		labels = append(labels, "normal") // minority in cell 1
	}
	d, err := Fit(gridQuantizer{}, data, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFitAndClassifyMajorityVote(t *testing.T) {
	d := fitTestDetector(t, Config{})
	// Cell 0 is normal.
	p := d.Classify([]float64{0.5})
	if p.Label != "normal" || p.Attack {
		t.Errorf("cell 0 prediction = %+v", p)
	}
	// Cell 1 is neptune-majority.
	p = d.Classify([]float64{1.5})
	if p.Label != "neptune" || !p.Attack {
		t.Errorf("cell 1 prediction = %+v", p)
	}
	if d.Cells() != 2 {
		t.Errorf("Cells = %d", d.Cells())
	}
}

func TestNoveltyByQE(t *testing.T) {
	d := fitTestDetector(t, Config{})
	// Deep inside cell 0 but far from center: qe 0.49 vs thresholds ~0.1.
	p := d.Classify([]float64{0.01})
	if !p.Novel || !p.Attack {
		t.Errorf("high-QE record not flagged: %+v", p)
	}
	if p.Label != "normal" {
		t.Errorf("novelty should preserve cell label, got %q", p.Label)
	}
}

func TestUnseenCellIsNovel(t *testing.T) {
	d := fitTestDetector(t, Config{})
	// Far from the unseen cell's center: QE 0.4 exceeds the global
	// threshold (~0.15 with the default margin) => novel attack.
	p := d.Classify([]float64{7.9})
	if !p.Novel || !p.Attack {
		t.Errorf("unseen cell not flagged: %+v", p)
	}
	if p.Label != NovelLabel {
		t.Errorf("unseen cell label = %q, want %q", p.Label, NovelLabel)
	}
	if p.Score <= 0.5 {
		t.Errorf("unseen cell score = %v, want > 0.5", p.Score)
	}
	// At the unseen cell's exact center (QE 0) the record is judged by
	// the global threshold only: interpolated units inside known regions
	// must not auto-flag.
	pc := d.Classify([]float64{7.5})
	if pc.Attack || pc.Novel {
		t.Errorf("unseen-cell center flagged: %+v", pc)
	}
	if pc.Label != "normal" {
		t.Errorf("unseen-cell center label = %q, want normal", pc.Label)
	}
}

func TestScoreMonotoneInAttackFraction(t *testing.T) {
	d := fitTestDetector(t, Config{})
	normalScore := d.Score([]float64{0.5})
	attackScore := d.Score([]float64{1.5})
	if attackScore <= normalScore {
		t.Errorf("attack cell score %v <= normal cell score %v", attackScore, normalScore)
	}
}

func TestScoreMonotoneInQE(t *testing.T) {
	d := fitTestDetector(t, Config{})
	near := d.Score([]float64{0.5}) // at center
	far := d.Score([]float64{0.02}) // far from center, same cell
	if far <= near {
		t.Errorf("far score %v <= near score %v", far, near)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(gridQuantizer{}, nil, nil, Config{}); !errors.Is(err, ErrNoData) {
		t.Errorf("no-data err = %v", err)
	}
	if _, err := Fit(gridQuantizer{}, [][]float64{{1}}, []string{"a", "b"}, Config{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit(gridQuantizer{}, [][]float64{{1}}, []string{"a"}, Config{QEQuantile: 2}); err == nil {
		t.Error("bad quantile accepted")
	}
	if _, err := Fit(gridQuantizer{}, [][]float64{{1}}, []string{"a"}, Config{MinCellCount: -1}); err == nil {
		t.Error("negative MinCellCount accepted")
	}
	if _, err := Fit(gridQuantizer{}, [][]float64{{1}}, []string{"a"}, Config{NoveltyMargin: 0.5}); err == nil {
		t.Error("sub-unit NoveltyMargin accepted")
	}
}

func TestNoveltyMarginWidensThresholds(t *testing.T) {
	tight := fitTestDetector(t, Config{NoveltyMargin: 1.0})
	wide := fitTestDetector(t, Config{NoveltyMargin: 3.0})
	// A moderately off-center record: flagged by the tight detector,
	// tolerated by the wide one. Cell-0 QEs reach ~0.1, so QE 0.2 sits
	// between 1x and 3x the quantile.
	x := []float64{0.3}
	if !tight.Classify(x).Novel {
		t.Error("tight detector did not flag moderate outlier")
	}
	if wide.Classify(x).Novel {
		t.Error("wide detector flagged moderate outlier")
	}
}

func TestCustomNormalLabel(t *testing.T) {
	data := [][]float64{{0.5}, {0.5}, {1.5}}
	labels := []string{"benign", "benign", "evil"}
	d, err := Fit(gridQuantizer{}, data, labels, Config{NormalLabel: "benign", MinCellCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p := d.Classify([]float64{0.5}); p.Attack {
		t.Errorf("benign cell flagged: %+v", p)
	}
	if p := d.Classify([]float64{1.5}); !p.Attack {
		t.Errorf("evil cell not flagged: %+v", p)
	}
}

func TestSparseCellFallsBackToGlobalThreshold(t *testing.T) {
	// Cell 2 has a single record; with MinCellCount 5 it must use the
	// global threshold rather than its own degenerate one.
	var data [][]float64
	var labels []string
	for i := 0; i < 20; i++ {
		data = append(data, []float64{0.3 + 0.02*float64(i)})
		labels = append(labels, "normal")
	}
	data = append(data, []float64{2.5})
	labels = append(labels, "normal")
	d, err := Fit(gridQuantizer{}, data, labels, Config{MinCellCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A record close to the sparse cell's center must not be flagged
	// merely because the cell had one training point.
	p := d.Classify([]float64{2.45})
	if p.Novel {
		t.Errorf("sparse-cell record flagged as novel: %+v", p)
	}
}

func TestCellLabelAndDistribution(t *testing.T) {
	d := fitTestDetector(t, Config{})
	label, ok := d.CellLabel("0")
	if !ok || label != "normal" {
		t.Errorf("CellLabel(0) = %q, %v", label, ok)
	}
	if _, ok := d.CellLabel("999"); ok {
		t.Error("unknown cell reported as known")
	}
	dist := d.LabelDistribution()
	if dist["normal"] != 1 || dist["neptune"] != 1 {
		t.Errorf("LabelDistribution = %v", dist)
	}
}

func TestClassifyAll(t *testing.T) {
	d := fitTestDetector(t, Config{})
	ps := d.ClassifyAll([][]float64{{0.5}, {1.5}})
	if len(ps) != 2 || ps[0].Attack == ps[1].Attack {
		t.Errorf("ClassifyAll = %+v", ps)
	}
}

func TestNaNGuard(t *testing.T) {
	in := []float64{1, math.NaN(), math.Inf(1), math.Inf(-1), 2}
	out := NaNGuard(in)
	want := []float64{1, 0, 0, 0, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("NaNGuard[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Input untouched.
	if !math.IsNaN(in[1]) {
		t.Error("NaNGuard mutated input")
	}
}

func TestNoveltyRatioBounds(t *testing.T) {
	if r := noveltyRatio(0, 1); r != 0 {
		t.Errorf("ratio(0,1) = %v", r)
	}
	if r := noveltyRatio(1, 1); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("ratio(1,1) = %v, want 0.5", r)
	}
	if r := noveltyRatio(1e12, 1); r <= 0.99 || r > 1 {
		t.Errorf("ratio(huge,1) = %v, want ~1", r)
	}
	if r := noveltyRatio(1, 0); r != 1 {
		t.Errorf("ratio(1,0) = %v, want 1", r)
	}
	if r := noveltyRatio(0, 0); r != 0 {
		t.Errorf("ratio(0,0) = %v, want 0", r)
	}
}

func TestDegenerateAllIdenticalTraining(t *testing.T) {
	data := make([][]float64, 20)
	labels := make([]string, 20)
	for i := range data {
		data[i] = []float64{0.5} // exactly at cell center: QE 0
		labels[i] = "normal"
	}
	d, err := Fit(gridQuantizer{}, data, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The training point itself must not be flagged.
	if p := d.Classify([]float64{0.5}); p.Novel {
		t.Errorf("exact training point flagged: %+v", p)
	}
	// A clearly different point in the same cell should be flagged.
	if p := d.Classify([]float64{0.05}); !p.Novel {
		t.Errorf("perturbed point not flagged on degenerate detector: %+v", p)
	}
}

// batchGridQuantizer is gridQuantizer with a batch path, so Fit's
// batched quantize pass is exercised directly.
type batchGridQuantizer struct{ gridQuantizer }

func (q batchGridQuantizer) QuantizeBatch(flat []float64, n, d int, out []CellQE) {
	for i := 0; i < n; i++ {
		out[i].Cell, out[i].QE = q.Quantize(flat[i*d : (i+1)*d])
	}
}

// TestFitBatchedScratchReshaped is the regression test for the pooled
// fit-scratch shape hazard: a Fit over wide rows in small chunks leaves
// pool entries whose flat arena is large but whose cell buffer is
// small; a following Fit over narrow rows in full-size chunks must not
// panic reslicing the stale cell buffer, and both fits must match the
// per-row quantize path exactly.
func TestFitBatchedScratchReshaped(t *testing.T) {
	mkData := func(n, d int, span float64) ([][]float64, []string) {
		data := make([][]float64, n)
		labels := make([]string, n)
		for i := range data {
			row := make([]float64, d)
			row[0] = span * float64(i) / float64(n)
			data[i] = row
			if i%3 == 0 {
				labels[i] = "neptune"
			} else {
				labels[i] = "normal"
			}
		}
		return data, labels
	}
	// Wide rows, many workers → small chunks with a wide flat arena.
	wideData, wideLabels := mkData(64, 118, 4)
	if _, err := Fit(batchGridQuantizer{}, wideData, wideLabels, Config{Parallelism: 8}); err != nil {
		t.Fatal(err)
	}
	// Narrow rows, serial → full classifyChunk-sized chunks; the pooled
	// cell buffers from the wide fit must be regrown.
	narrowData, narrowLabels := mkData(4096, 2, 8)
	got, err := Fit(batchGridQuantizer{}, narrowData, narrowLabels, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Fit(gridQuantizer{}, narrowData, narrowLabels, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cells() != want.Cells() || got.GlobalThreshold() != want.GlobalThreshold() {
		t.Fatalf("batched fit differs from per-row fit: cells %d/%d, global %v/%v",
			got.Cells(), want.Cells(), got.GlobalThreshold(), want.GlobalThreshold())
	}
	for _, x := range [][]float64{{0.4, 0}, {1.7, 0}, {7.2, 0}} {
		a, b := got.Classify(x), want.Classify(x)
		if a != b {
			t.Fatalf("verdicts differ for %v: %+v vs %+v", x, a, b)
		}
	}
}
