package anomaly

import (
	"fmt"
	"sort"
)

// CellState is the serializable form of one fitted cell.
type CellState struct {
	// Cell is the quantizer cell identifier.
	Cell string `json:"cell"`
	// Label is the cell's majority training label.
	Label string `json:"label"`
	// Count is the number of training records mapped to the cell.
	Count int `json:"count"`
	// AttackFrac is the fraction of those records that were attacks.
	AttackFrac float64 `json:"attackFrac"`
	// QEThreshold is the cell's novelty threshold.
	QEThreshold float64 `json:"qeThreshold"`
}

// State is the serializable form of a fitted Detector, excluding the
// quantizer (which is serialized by its own package).
type State struct {
	// Config is the fitting configuration.
	Config Config `json:"config"`
	// GlobalQE is the global novelty threshold.
	GlobalQE float64 `json:"globalQe"`
	// Majority is the dataset-wide majority label.
	Majority string `json:"majority"`
	// Cells is the fitted cell table.
	Cells []CellState `json:"cells"`
}

// State exports the detector's fitted state for serialization.
func (d *Detector) State() State {
	st := State{
		Config:   d.cfg,
		GlobalQE: d.globalQE,
		Majority: d.majority,
		Cells:    make([]CellState, 0, len(d.cells)),
	}
	for cell, info := range d.cells {
		st.Cells = append(st.Cells, CellState{
			Cell:        cell,
			Label:       info.label,
			Count:       info.count,
			AttackFrac:  info.attackFrac,
			QEThreshold: info.qeThreshold,
		})
	}
	// Map iteration order is random; sort so serialized detectors are
	// byte-for-byte reproducible for identical fits.
	sort.Slice(st.Cells, func(i, j int) bool { return st.Cells[i].Cell < st.Cells[j].Cell })
	return st
}

// FromState rebuilds a detector around q from exported state.
func FromState(q Quantizer, st State) (*Detector, error) {
	if q == nil {
		return nil, fmt.Errorf("anomaly: nil quantizer: %w", ErrNotFitted)
	}
	cfg := st.Config
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(st.Cells) == 0 {
		return nil, fmt.Errorf("anomaly: state has no cells: %w", ErrNotFitted)
	}
	d := &Detector{
		q:        q,
		cfg:      cfg,
		cells:    make(map[string]cellInfo, len(st.Cells)),
		globalQE: st.GlobalQE,
		majority: st.Majority,
	}
	if d.globalQE <= 0 {
		d.globalQE = 1e-9
	}
	for _, c := range st.Cells {
		if c.Cell == "" {
			return nil, fmt.Errorf("anomaly: state cell with empty identifier")
		}
		if _, dup := d.cells[c.Cell]; dup {
			return nil, fmt.Errorf("anomaly: duplicate cell %q in state", c.Cell)
		}
		d.cells[c.Cell] = cellInfo{
			label:       c.Label,
			count:       c.Count,
			attackFrac:  c.AttackFrac,
			qeThreshold: c.QEThreshold,
		}
	}
	return d, nil
}
