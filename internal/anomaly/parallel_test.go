package anomaly

import (
	"math/rand"
	"strconv"
	"testing"
)

// TestFitAndClassifyIdenticalAcrossParallelism verifies the determinism
// contract of the parallel quantization pass and ClassifyAll: fitted state
// and predictions are identical at every worker count.
func TestFitAndClassifyIdenticalAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var data [][]float64
	var labels []string
	for i := 0; i < 2000; i++ {
		cell := rng.Intn(6)
		data = append(data, []float64{float64(cell) + rng.Float64()})
		if cell >= 4 && rng.Float64() < 0.8 {
			labels = append(labels, "neptune")
		} else {
			labels = append(labels, "normal")
		}
	}
	test := make([][]float64, 500)
	for i := range test {
		test[i] = []float64{rng.Float64() * 8}
	}

	fit := func(p int) *Detector {
		d, err := Fit(gridQuantizer{}, data, labels, Config{Parallelism: p})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		return d
	}
	ref := fit(1)
	refPreds := ref.ClassifyAll(test)
	for _, p := range []int{2, 8, 0} {
		d := fit(p)
		if d.GlobalThreshold() != ref.GlobalThreshold() {
			t.Errorf("p=%d: global threshold %v, want %v", p, d.GlobalThreshold(), ref.GlobalThreshold())
		}
		if d.Cells() != ref.Cells() {
			t.Fatalf("p=%d: %d cells, want %d", p, d.Cells(), ref.Cells())
		}
		for c := -1; c < 10; c++ {
			cell := strconv.Itoa(c)
			gotInfo, gotOK := d.cells[cell]
			wantInfo, wantOK := ref.cells[cell]
			if gotOK != wantOK || gotInfo != wantInfo {
				t.Errorf("p=%d: cell %s state (%+v, %v), want (%+v, %v)",
					p, cell, gotInfo, gotOK, wantInfo, wantOK)
			}
		}
		preds := d.ClassifyAll(test)
		for i := range preds {
			if preds[i] != refPreds[i] {
				t.Fatalf("p=%d: prediction %d = %+v, want %+v", p, i, preds[i], refPreds[i])
			}
		}
	}
}
