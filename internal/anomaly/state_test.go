package anomaly

import (
	"testing"
)

func TestStateRoundTrip(t *testing.T) {
	d := fitTestDetector(t, Config{})
	st := d.State()
	if len(st.Cells) != d.Cells() {
		t.Fatalf("state has %d cells, detector %d", len(st.Cells), d.Cells())
	}
	if st.GlobalQE != d.GlobalThreshold() {
		t.Errorf("state globalQE %v != %v", st.GlobalQE, d.GlobalThreshold())
	}
	restored, err := FromState(gridQuantizer{}, st)
	if err != nil {
		t.Fatal(err)
	}
	// Identical verdicts across the whole decision surface sample.
	for _, x := range []float64{0.01, 0.3, 0.5, 1.1, 1.5, 2.5, 7.9} {
		p1 := d.Classify([]float64{x})
		p2 := restored.Classify([]float64{x})
		if p1 != p2 {
			t.Fatalf("x=%v: verdicts differ: %+v vs %+v", x, p1, p2)
		}
	}
}

func TestFromStateValidation(t *testing.T) {
	d := fitTestDetector(t, Config{})
	st := d.State()

	if _, err := FromState(nil, st); err == nil {
		t.Error("nil quantizer accepted")
	}
	empty := st
	empty.Cells = nil
	if _, err := FromState(gridQuantizer{}, empty); err == nil {
		t.Error("empty cell table accepted")
	}
	dup := st
	dup.Cells = append([]CellState{}, st.Cells...)
	dup.Cells = append(dup.Cells, st.Cells[0])
	if _, err := FromState(gridQuantizer{}, dup); err == nil {
		t.Error("duplicate cells accepted")
	}
	unnamed := st
	unnamed.Cells = append([]CellState{}, st.Cells...)
	unnamed.Cells[0].Cell = ""
	if _, err := FromState(gridQuantizer{}, unnamed); err == nil {
		t.Error("empty cell identifier accepted")
	}
	badCfg := st
	badCfg.Config.QEQuantile = 7
	if _, err := FromState(gridQuantizer{}, badCfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFromStateZeroGlobalQEFloored(t *testing.T) {
	d := fitTestDetector(t, Config{})
	st := d.State()
	st.GlobalQE = 0
	restored, err := FromState(gridQuantizer{}, st)
	if err != nil {
		t.Fatal(err)
	}
	if restored.GlobalThreshold() <= 0 {
		t.Error("restored global threshold not floored above zero")
	}
}
