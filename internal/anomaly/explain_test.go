package anomaly

import (
	"math"
	"strconv"
	"testing"
)

// weightedGrid extends gridQuantizer with cell weights (the cell center),
// satisfying WeightQuantizer.
type weightedGrid struct{ gridQuantizer }

var _ WeightQuantizer = weightedGrid{}

func (weightedGrid) CellWeight(cell string) []float64 {
	c, err := strconv.Atoi(cell)
	if err != nil {
		return nil
	}
	return []float64{float64(c) + 0.5}
}

func fitWeighted(t *testing.T) *Detector {
	t.Helper()
	var data [][]float64
	var labels []string
	for i := 0; i < 30; i++ {
		data = append(data, []float64{0.45 + 0.003*float64(i)})
		labels = append(labels, "normal")
	}
	d, err := Fit(weightedGrid{}, data, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExplainDelta(t *testing.T) {
	d := fitWeighted(t)
	contribs := d.Explain([]float64{0.9}, 0)
	if len(contribs) != 1 {
		t.Fatalf("got %d contributions", len(contribs))
	}
	if contribs[0].Dim != 0 {
		t.Errorf("dim = %d", contribs[0].Dim)
	}
	if math.Abs(contribs[0].Delta-0.4) > 1e-9 {
		t.Errorf("delta = %v, want 0.4", contribs[0].Delta)
	}
}

func TestExplainDimensionMismatch(t *testing.T) {
	// CellWeight returns 1-D weights; a 2-D record cannot be explained.
	d := fitWeighted(t)
	if contribs := d.Explain([]float64{0.9, 0.1}, 1); contribs != nil {
		t.Error("dimension mismatch should return nil")
	}
}

func TestExplainNonWeightQuantizer(t *testing.T) {
	var data [][]float64
	var labels []string
	for i := 0; i < 10; i++ {
		data = append(data, []float64{0.5})
		labels = append(labels, "normal")
	}
	d, err := Fit(gridQuantizer{}, data, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Explain([]float64{0.5}, 3) != nil {
		t.Error("plain quantizer should not explain")
	}
}
