package anomaly

import "fmt"

// Stream wraps a fitted Detector for online use: it classifies records
// one at a time, maintains rolling novelty/attack rates over a sliding
// window, and raises a burst alarm when the windowed attack rate exceeds
// a configured level — the operational mode of a deployed detector.
type Stream struct {
	det *Detector

	windowSize int
	alarmRate  float64

	// ring of recent binary verdicts.
	recent []bool
	next   int
	filled int
	hits   int

	total      int
	attacks    int
	novel      int
	alarms     int
	inAlarm    bool
	lastLabels map[string]int

	// batchBuf is the reusable flat encode arena of ObserveBatch.
	batchBuf []float64
}

// StreamConfig controls the sliding-window alarm.
type StreamConfig struct {
	// WindowSize is the number of recent records in the rolling window
	// (default 200).
	WindowSize int
	// AlarmRate raises the burst alarm when the windowed attack fraction
	// exceeds it (default 0.5).
	AlarmRate float64
}

// NewStream wraps det with streaming state.
func NewStream(det *Detector, cfg StreamConfig) (*Stream, error) {
	if det == nil {
		return nil, ErrNotFitted
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 200
	}
	if cfg.WindowSize < 1 {
		return nil, fmt.Errorf("anomaly: window size %d < 1", cfg.WindowSize)
	}
	if cfg.AlarmRate == 0 {
		cfg.AlarmRate = 0.5
	}
	if cfg.AlarmRate < 0 || cfg.AlarmRate > 1 {
		return nil, fmt.Errorf("anomaly: alarm rate %v outside [0, 1]", cfg.AlarmRate)
	}
	return &Stream{
		det:        det,
		windowSize: cfg.WindowSize,
		alarmRate:  cfg.AlarmRate,
		recent:     make([]bool, cfg.WindowSize),
		lastLabels: make(map[string]int),
	}, nil
}

// Observe classifies one record, updates the rolling window, and reports
// whether this observation newly triggered the burst alarm (an
// edge-triggered signal: true only on the transition into alarm).
func (s *Stream) Observe(x []float64) (Prediction, bool) {
	p := s.det.Classify(NaNGuard(x))
	return p, s.observeVerdict(p)
}

// observeVerdict folds one prediction into the stream state — counters,
// rolling window, and alarm edge detection — and reports whether it
// newly triggered the burst alarm. It is the single state-update kernel
// shared by Observe and ObserveBatch, so the two paths cannot diverge.
func (s *Stream) observeVerdict(p Prediction) bool {
	s.total++
	if p.Attack {
		s.attacks++
	}
	if p.Novel {
		s.novel++
	}
	s.lastLabels[p.Label]++

	// Rolling window update.
	if s.filled == s.windowSize {
		if s.recent[s.next] {
			s.hits--
		}
	} else {
		s.filled++
	}
	s.recent[s.next] = p.Attack
	if p.Attack {
		s.hits++
	}
	s.next = (s.next + 1) % s.windowSize

	rate := float64(s.hits) / float64(s.filled)
	newAlarm := false
	if rate > s.alarmRate && s.filled >= s.windowSize/4 {
		if !s.inAlarm {
			newAlarm = true
			s.alarms++
		}
		s.inAlarm = true
	} else {
		s.inAlarm = false
	}
	return newAlarm
}

// ObserveBatch classifies a batch of records through the detector's flat
// batch path (DetectBatch's dataplane) and folds every verdict into the
// stream state in input order, returning the predictions in out (grown
// when under capacity) and the number of observations that newly
// triggered the burst alarm. Predictions, counters, window state, and
// alarm edges are identical to calling Observe on each record in order —
// only the classification work is batched. Like Observe, ObserveBatch
// NaN-guards every record, so malformed streaming input cannot crash the
// detector. The Stream itself is single-goroutine state; concurrent
// ObserveBatch calls require external synchronization, exactly like
// Observe.
func (s *Stream) ObserveBatch(xs [][]float64, out []Prediction) ([]Prediction, int) {
	n := len(xs)
	if cap(out) < n {
		out = make([]Prediction, n)
	}
	out = out[:n]
	if n == 0 {
		return out, 0
	}
	d := len(xs[0])
	uniform := d > 0
	for _, x := range xs {
		if len(x) != d {
			uniform = false
			break
		}
	}
	if uniform {
		if cap(s.batchBuf) < n*d {
			s.batchBuf = make([]float64, n*d)
		}
		flat := s.batchBuf[:n*d]
		for i, x := range xs {
			NaNGuardInto(flat[i*d:(i+1)*d], x)
		}
		// The flat buffer holds exactly n complete d-wide rows, so the
		// batch classification cannot fail.
		_ = s.det.ClassifyBatch(flat, n, d, out)
	} else {
		// Ragged input (or zero-width rows): classify per record, exactly
		// like Observe would.
		for i, x := range xs {
			out[i] = s.det.Classify(NaNGuard(x))
		}
	}
	newAlarms := 0
	for i := range out {
		if s.observeVerdict(out[i]) {
			newAlarms++
		}
	}
	return out, newAlarms
}

// Total returns the number of records observed.
func (s *Stream) Total() int { return s.total }

// AttackRate returns the lifetime fraction of attack verdicts.
func (s *Stream) AttackRate() float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.attacks) / float64(s.total)
}

// NoveltyRate returns the lifetime fraction of novelty flags.
func (s *Stream) NoveltyRate() float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.novel) / float64(s.total)
}

// WindowRate returns the attack fraction of the current window.
func (s *Stream) WindowRate() float64 {
	if s.filled == 0 {
		return 0
	}
	return float64(s.hits) / float64(s.filled)
}

// Alarms returns the number of distinct alarm episodes raised.
func (s *Stream) Alarms() int { return s.alarms }

// InAlarm reports whether the stream is currently in an alarm episode.
func (s *Stream) InAlarm() bool { return s.inAlarm }

// LabelCounts returns a copy of the lifetime predicted-label tally.
func (s *Stream) LabelCounts() map[string]int {
	out := make(map[string]int, len(s.lastLabels))
	for k, v := range s.lastLabels {
		out[k] = v
	}
	return out
}
