// Package anomaly turns a trained vector quantizer — a GHSOM hierarchy, a
// flat SOM, or a k-means codebook — into a network intrusion detector.
//
// Two complementary decision paths are combined, following the GHSOM-IDS
// literature:
//
//  1. Unit labeling: each quantizer cell is labeled by majority vote of
//     the training records it wins. A test record inherits its cell's
//     label; any non-normal label is an attack verdict. This path catches
//     attacks seen (in some form) during training.
//  2. Novelty (quantization error): a record whose distance to its cell
//     exceeds a calibrated per-cell threshold is flagged anomalous even
//     if the cell is labeled normal. This path catches attacks absent
//     from training — the reason to prefer an unsupervised detector.
package anomaly

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"ghsom/internal/parallel"
	"ghsom/internal/vecmath"
)

// Errors returned by the package.
var (
	// ErrNoData is returned when fitting is attempted with no records.
	ErrNoData = errors.New("anomaly: no data")
	// ErrNotFitted is returned when classification precedes fitting.
	ErrNotFitted = errors.New("anomaly: detector not fitted")
)

// Quantizer maps a vector to a discrete cell and a quantization error.
// Cells are opaque strings: "nodeID/unit" for a GHSOM, a unit index for a
// flat SOM, a centroid index for k-means.
type Quantizer interface {
	Quantize(x []float64) (cell string, qe float64)
}

// CellQE is the quantization result for one row of a flat batch.
type CellQE struct {
	// Cell is the quantizer cell the row landed in.
	Cell string
	// QE is the row's quantization error.
	QE float64
}

// BatchQuantizer is a Quantizer with a flat-batch fast path. ClassifyBatch
// uses it when available, so quantizers that can amortize work across a
// batch (or avoid per-row allocation, like the GHSOM adapter's cached cell
// names) should implement it.
type BatchQuantizer interface {
	Quantizer
	// QuantizeBatch quantizes the n d-wide rows of the flat row-major
	// matrix into out, which must have length at least n. Each complete
	// row is quantized exactly like Quantize on the corresponding
	// subslice (including degenerate-input behavior); a truncated flat
	// degrades to sentinel cells for the missing tail rather than
	// panicking. Implementations should keep steady-state allocation
	// bounded per batch (not per row) and avoid spawning unbounded
	// concurrency of their own — ClassifyBatch already parallelizes
	// across row ranges.
	QuantizeBatch(flat []float64, n, d int, out []CellQE)
}

// Config controls detector fitting.
type Config struct {
	// NormalLabel is the label of legitimate traffic (default "normal").
	NormalLabel string
	// QEQuantile is the quantile of per-cell training quantization errors
	// used as the novelty threshold (default 0.99). Records above the
	// threshold are anomalous regardless of cell label.
	QEQuantile float64
	// MinCellCount is the minimum number of training records a cell needs
	// for its own threshold; sparser cells fall back to the global
	// threshold (default 5).
	MinCellCount int
	// NoveltyMargin scales the quantile thresholds (default 1.5). Values
	// above 1 absorb distribution shift between training and deployment
	// traffic, trading novelty sensitivity for false-positive rate.
	NoveltyMargin float64
	// Parallelism bounds the workers used by Fit's quantization pass and
	// by ClassifyAll: 0 means GOMAXPROCS, 1 forces serial execution.
	// Fitted thresholds and predictions are bit-for-bit identical for
	// every setting (per-record quantization is embarrassingly parallel;
	// threshold accumulation stays in data order). Requires the quantizer
	// to be safe for concurrent Quantize calls, which all adapters over
	// trained models in this repository are. The knob is an execution
	// detail, not fitted state, and is excluded from serialized detectors.
	Parallelism int `json:"-"`
}

func (c *Config) fillDefaults() {
	if c.NormalLabel == "" {
		c.NormalLabel = "normal"
	}
	if c.QEQuantile == 0 {
		c.QEQuantile = 0.99
	}
	if c.MinCellCount == 0 {
		c.MinCellCount = 5
	}
	if c.NoveltyMargin == 0 {
		c.NoveltyMargin = 1.5
	}
}

func (c *Config) validate() error {
	if c.QEQuantile < 0 || c.QEQuantile > 1 {
		return fmt.Errorf("anomaly: qeQuantile %v outside [0, 1]", c.QEQuantile)
	}
	if c.MinCellCount < 1 {
		return fmt.Errorf("anomaly: minCellCount %d < 1", c.MinCellCount)
	}
	if c.NoveltyMargin < 1 {
		return fmt.Errorf("anomaly: noveltyMargin %v < 1", c.NoveltyMargin)
	}
	return nil
}

// cellInfo is the fitted state of one quantizer cell.
type cellInfo struct {
	label       string  // majority label
	count       int     // training records seen
	attackFrac  float64 // fraction of training records that are attacks
	qeThreshold float64 // novelty threshold (quantile of training QEs)
}

// Detector is a fitted intrusion detector over a quantizer.
type Detector struct {
	q        Quantizer
	cfg      Config
	cells    map[string]cellInfo
	globalQE float64 // global novelty threshold
	majority string  // dataset-wide majority label (fallback)
}

// Prediction is the verdict for one record.
type Prediction struct {
	// Label is the predicted label: the cell's majority label, or the
	// detector's NovelLabel value when the record hits an unseen cell.
	Label string
	// Attack reports the binary verdict: a non-normal label or a novelty
	// flag.
	Attack bool
	// Novel reports that the record exceeded the novelty threshold or
	// landed in a cell never seen in training.
	Novel bool
	// Cell is the quantizer cell the record landed in.
	Cell string
	// QE is the record's quantization error.
	QE float64
	// Score is a monotone anomaly score in [0, ~2]: the cell's training
	// attack fraction plus the clipped novelty ratio. Suitable for ROC
	// sweeps.
	Score float64
}

// NovelLabel is the label assigned to records landing in cells with no
// training data.
const NovelLabel = "(novel)"

// Fit builds a detector from a trained quantizer, the encoded training
// vectors, and their ground-truth labels.
func Fit(q Quantizer, data [][]float64, labels []string, cfg Config) (*Detector, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, ErrNoData
	}
	if len(data) != len(labels) {
		return nil, fmt.Errorf("anomaly: %d rows vs %d labels", len(data), len(labels))
	}

	// Quantize every record in parallel (the dominant cost: one hierarchy
	// descent per record), then fold the per-cell statistics with the
	// chunked deterministic scheduler: each chunk accumulates its rows in
	// data order into a private table (no shared maps, no false sharing)
	// and the per-chunk partials merge in ascending chunk order, so the
	// fitted thresholds are identical at every Parallelism setting —
	// counts are exact integers and every per-cell QE list comes out in
	// data order, exactly as the retired serial fold produced it.
	// Quantizers with a flat-batch fast path run it over gathered row
	// chunks — the same blocked BMU descent ClassifyBatch uses — which is
	// what keeps detector fitting on the batched engine inside
	// TrainPipeline; QuantizeBatch is contractually identical to Quantize
	// per row, so the fitted state does not depend on the path taken.
	cellOf := make([]string, len(data))
	qeOf := make([]float64, len(data))
	if bq, ok := q.(BatchQuantizer); ok && uniformDim(data) > 0 {
		fitQuantizeBatch(bq, data, cellOf, qeOf, cfg.Parallelism)
	} else {
		parallel.ForEach(cfg.Parallelism, len(data), func(i int) {
			cellOf[i], qeOf[i] = q.Quantize(data[i])
		})
	}

	stats := parallel.MapReduceChunk(cfg.Parallelism, len(data), fitStatsGrain, (*fitStats)(nil),
		func(lo, hi int) *fitStats {
			s := &fitStats{
				accum:       make(map[string]*cellAccum),
				labelTotals: make(map[string]int),
				allQEs:      make([]float64, 0, hi-lo),
			}
			for i := lo; i < hi; i++ {
				cell, qe := cellOf[i], qeOf[i]
				a, ok := s.accum[cell]
				if !ok {
					a = &cellAccum{labelCounts: make(map[string]int)}
					s.accum[cell] = a
				}
				a.labelCounts[labels[i]]++
				a.qes = append(a.qes, qe)
				if labels[i] != cfg.NormalLabel {
					a.attacks++
				}
				s.allQEs = append(s.allQEs, qe)
				s.labelTotals[labels[i]]++
			}
			return s
		},
		mergeFitStats)
	accum, allQEs, labelTotals := stats.accum, stats.allQEs, stats.labelTotals

	d := &Detector{
		q:        q,
		cfg:      cfg,
		cells:    make(map[string]cellInfo, len(accum)),
		majority: majorityLabel(labelTotals),
	}
	sort.Float64s(allQEs)
	d.globalQE = vecmath.QuantileSorted(allQEs, cfg.QEQuantile) * cfg.NoveltyMargin
	for cell, a := range accum {
		info := cellInfo{
			label:      majorityLabel(a.labelCounts),
			count:      len(a.qes),
			attackFrac: float64(a.attacks) / float64(len(a.qes)),
		}
		if info.count >= cfg.MinCellCount {
			sort.Float64s(a.qes)
			info.qeThreshold = vecmath.QuantileSorted(a.qes, cfg.QEQuantile) * cfg.NoveltyMargin
			// A cell whose training errors are all ~zero would flag
			// everything; floor at the global threshold scale.
			if info.qeThreshold <= 0 {
				info.qeThreshold = d.globalQE
			}
		} else {
			info.qeThreshold = d.globalQE
		}
		d.cells[cell] = info
	}
	if d.globalQE <= 0 {
		// Degenerate training data (all records identical to their
		// units): fall back to a tiny positive threshold so finite
		// perturbations are flagged but exact matches are not.
		d.globalQE = 1e-9
	}
	return d, nil
}

// cellAccum is the training evidence gathered for one quantizer cell.
type cellAccum struct {
	labelCounts map[string]int
	qes         []float64
	attacks     int
}

// fitStats is one chunk's partial of Fit's statistics fold.
type fitStats struct {
	accum       map[string]*cellAccum
	allQEs      []float64
	labelTotals map[string]int
}

// fitStatsGrain is the chunk grain of the fold: constant, so the chunk
// layout — and with it every per-cell QE list order — depends on the
// row count only, never the worker count.
const fitStatsGrain = 4096

// mergeFitStats folds one chunk partial into the accumulator. Called in
// ascending chunk order, so each cell's QE list and label counts come
// out exactly as a serial data-order pass would produce them (the map
// iteration below is unordered, but each cell merges independently).
func mergeFitStats(acc, part *fitStats) *fitStats {
	if acc == nil {
		return part
	}
	for cell, pa := range part.accum {
		a, ok := acc.accum[cell]
		if !ok {
			acc.accum[cell] = pa
			continue
		}
		for l, n := range pa.labelCounts {
			a.labelCounts[l] += n
		}
		a.qes = append(a.qes, pa.qes...)
		a.attacks += pa.attacks
	}
	acc.allQEs = append(acc.allQEs, part.allQEs...)
	for l, n := range part.labelTotals {
		acc.labelTotals[l] += n
	}
	return acc
}

// uniformDim returns the shared row width of data, or 0 when rows have
// mixed widths (which the per-row path handles and the flat batch path
// cannot).
func uniformDim(data [][]float64) int {
	if len(data) == 0 {
		return 0
	}
	d := len(data[0])
	for _, row := range data[1:] {
		if len(row) != d {
			return 0
		}
	}
	return d
}

// fitScratch is the pooled per-worker gather arena of Fit's batched
// quantize pass.
type fitScratch struct {
	flat  []float64
	cells []CellQE
}

var fitScratchPool = sync.Pool{New: func() any { return &fitScratch{} }}

// fitQuantizeBatch runs Fit's quantization through the quantizer's batch
// path: work-stealing workers gather row chunks into per-worker pooled
// flat arenas (claimed once per call, not per chunk) and quantize each
// with one batch call. Results are positionally identical to per-row
// Quantize at every worker count.
func fitQuantizeBatch(bq BatchQuantizer, data [][]float64, cellOf []string, qeOf []float64, parallelism int) {
	n, d := len(data), len(data[0])
	w := parallel.Workers(parallelism, n)
	grain := min((n+w-1)/w, classifyChunk)
	if grain < 1 {
		grain = 1
	}
	scratches := make([]*fitScratch, parallel.WorkersGrain(parallelism, n, grain))
	for i := range scratches {
		scratches[i] = fitScratchPool.Get().(*fitScratch)
	}
	parallel.ForEachChunk(parallelism, n, grain, func(wk, lo, hi int) {
		sc := scratches[wk]
		// Pool entries are shared across Fit calls with different row
		// widths and chunk sizes: each buffer's capacity must be checked
		// on its own.
		if cap(sc.flat) < (hi-lo)*d {
			sc.flat = make([]float64, (hi-lo)*d)
		}
		if cap(sc.cells) < hi-lo {
			sc.cells = make([]CellQE, hi-lo)
		}
		flat, cells := sc.flat[:(hi-lo)*d], sc.cells[:hi-lo]
		for i := lo; i < hi; i++ {
			copy(flat[(i-lo)*d:(i-lo+1)*d], data[i])
		}
		bq.QuantizeBatch(flat, hi-lo, d, cells)
		for i := lo; i < hi; i++ {
			cellOf[i], qeOf[i] = cells[i-lo].Cell, cells[i-lo].QE
		}
	})
	for _, sc := range scratches {
		fitScratchPool.Put(sc)
	}
}

// majorityLabel returns the label with the highest count, breaking ties
// lexicographically for determinism.
func majorityLabel(counts map[string]int) string {
	best, bestN := "", -1
	for l, n := range counts {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	return best
}

// Classify returns the verdict for one encoded record.
func (d *Detector) Classify(x []float64) Prediction {
	cell, qe := d.q.Quantize(x)
	return d.verdict(cell, qe)
}

// verdict turns a quantization result into a prediction — the single
// decision kernel shared by Classify, ClassifyAll, and ClassifyBatch. It
// performs no allocation.
func (d *Detector) verdict(cell string, qe float64) Prediction {
	info, seen := d.cells[cell]
	p := Prediction{Cell: cell, QE: qe}
	if !seen {
		// A cell with no training data is usually an interpolated unit
		// sitting inside a known region, so it is judged purely by the
		// global novelty threshold rather than auto-flagged; only records
		// genuinely far from the codebook become attacks.
		p.Novel = qe > d.globalQE
		p.Attack = p.Novel
		if p.Novel {
			p.Label = NovelLabel
		} else {
			p.Label = d.cfg.NormalLabel
		}
		p.Score = 0.5 + noveltyRatio(qe, d.globalQE)
		return p
	}
	p.Label = info.label
	p.Novel = qe > info.qeThreshold
	p.Attack = info.label != d.cfg.NormalLabel || p.Novel
	p.Score = info.attackFrac + noveltyRatio(qe, info.qeThreshold)
	return p
}

// noveltyRatio maps a quantization error to a bounded [0, 1] novelty
// contribution: 0 well under the threshold, 0.5 at the threshold,
// saturating toward 1 beyond it.
func noveltyRatio(qe, threshold float64) float64 {
	if threshold <= 0 {
		if qe > 0 {
			return 1
		}
		return 0
	}
	r := qe / threshold
	return r / (1 + r)
}

// ClassifyAll classifies every row. Records are classified concurrently on
// the detector's configured Parallelism; predictions are positionally
// stable and identical to serial classification.
func (d *Detector) ClassifyAll(data [][]float64) []Prediction {
	out := make([]Prediction, len(data))
	parallel.ForEach(d.cfg.Parallelism, len(data), func(i int) {
		out[i] = d.Classify(data[i])
	})
	return out
}

// classifyChunk is the largest number of rows one ClassifyBatch worker
// quantizes per pooled CellQE scratch buffer; the chunk size shrinks
// below it so a batch always splits across the configured workers.
const classifyChunk = 256

// cellScratch is the pooled per-worker quantization scratch of
// ClassifyBatch.
var cellScratchPool = sync.Pool{
	New: func() any { return &cellScratch{buf: make([]CellQE, classifyChunk)} },
}

type cellScratch struct{ buf []CellQE }

// ClassifyBatch classifies the n d-wide rows of the flat row-major matrix
// into out, which must have length at least n. Rows are processed in
// chunks, concurrently on the detector's configured Parallelism, each
// chunk quantized through the quantizer's batch path (BatchQuantizer)
// when it has one and per row otherwise. Predictions are positionally
// stable and byte-identical to calling Classify on each row. In steady
// state the call performs no per-record heap allocation: quantization
// scratch comes from an internal pool and verdicts are written straight
// into out.
func (d *Detector) ClassifyBatch(flat []float64, n, dim int, out []Prediction) error {
	return d.ClassifyBatchAt(flat, n, dim, out, d.cfg.Parallelism)
}

// ClassifyBatchAt is ClassifyBatch with an explicit worker bound (0 =
// GOMAXPROCS, 1 = serial) instead of the detector's knob. Callers that
// already fan out across row ranges themselves (Pipeline.DetectBatch)
// pin it to 1 so the layers do not multiply their worker counts — the
// same convention the batch quantizers follow one layer down.
func (d *Detector) ClassifyBatchAt(flat []float64, n, dim int, out []Prediction, parallelism int) error {
	if d.q == nil {
		return ErrNotFitted
	}
	if dim <= 0 {
		return fmt.Errorf("anomaly: classify batch with dim %d", dim)
	}
	if len(flat) < n*dim {
		return fmt.Errorf("anomaly: classify batch of %d rows from %d values, want >= %d", n, len(flat), n*dim)
	}
	if len(out) < n {
		return fmt.Errorf("anomaly: classify batch of %d rows into %d predictions", n, len(out))
	}
	bq, batch := d.q.(BatchQuantizer)
	w := parallel.Workers(parallelism, n)
	grain := min((n+w-1)/w, classifyChunk)
	if grain < 1 {
		grain = 1
	}
	if !batch {
		parallel.ForEachChunk(parallelism, n, grain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				cell, qe := d.q.Quantize(flat[i*dim : (i+1)*dim])
				out[i] = d.verdict(cell, qe)
			}
		})
		return nil
	}
	// Work-stealing chunks over per-worker scratches: each worker claims
	// one pooled CellQE buffer for the whole call, so the per-chunk path
	// touches no pool and no lock.
	scratches := make([]*cellScratch, parallel.WorkersGrain(parallelism, n, grain))
	for i := range scratches {
		scratches[i] = cellScratchPool.Get().(*cellScratch)
	}
	parallel.ForEachChunk(parallelism, n, grain, func(wk, lo, hi int) {
		sc := scratches[wk]
		if cap(sc.buf) < hi-lo {
			sc.buf = make([]CellQE, hi-lo)
		}
		cells := sc.buf[:hi-lo]
		bq.QuantizeBatch(flat[lo*dim:hi*dim], hi-lo, dim, cells)
		for i := lo; i < hi; i++ {
			out[i] = d.verdict(cells[i-lo].Cell, cells[i-lo].QE)
		}
	})
	for _, sc := range scratches {
		cellScratchPool.Put(sc)
	}
	return nil
}

// SetParallelism adjusts the worker bound used by ClassifyAll after
// fitting (or loading from state): 0 means GOMAXPROCS, 1 forces serial
// execution. Predictions are identical at every setting.
func (d *Detector) SetParallelism(p int) { d.cfg.Parallelism = p }

// Parallelism returns the configured worker bound.
func (d *Detector) Parallelism() int { return d.cfg.Parallelism }

// Score returns the anomaly score of x (higher = more anomalous).
func (d *Detector) Score(x []float64) float64 { return d.Classify(x).Score }

// Cells returns the number of distinct cells seen in training.
func (d *Detector) Cells() int { return len(d.cells) }

// GlobalThreshold returns the fitted global novelty threshold.
func (d *Detector) GlobalThreshold() float64 { return d.globalQE }

// CellLabel returns the majority label of a cell and whether the cell was
// seen in training.
func (d *Detector) CellLabel(cell string) (string, bool) {
	info, ok := d.cells[cell]
	if !ok {
		return "", false
	}
	return info.label, true
}

// LabelDistribution returns, per predicted label, the number of cells
// carrying it — a compact summary of how the quantizer partitioned the
// classes.
func (d *Detector) LabelDistribution() map[string]int {
	out := make(map[string]int)
	for _, info := range d.cells {
		out[info.label]++
	}
	return out
}

// NaNGuard returns a defensive copy of x with NaN/Inf replaced by 0, for
// streaming paths that must not crash on malformed input.
func NaNGuard(x []float64) []float64 {
	out := make([]float64, len(x))
	NaNGuardInto(out, x)
	return out
}

// NaNGuardInto writes the NaN/Inf-guarded copy of x into dst, which must
// have length len(x) — the allocation-free form used by the batch
// streaming path.
func NaNGuardInto(dst, x []float64) {
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			dst[i] = 0
			continue
		}
		dst[i] = v
	}
}
