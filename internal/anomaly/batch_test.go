package anomaly

import (
	"math"
	"math/rand"
	"testing"

	"ghsom/internal/core"
	"ghsom/internal/som"
)

// flatten packs rows into one row-major array.
func flatten(rows [][]float64) ([]float64, int) {
	if len(rows) == 0 {
		return nil, 0
	}
	d := len(rows[0])
	flat := make([]float64, 0, len(rows)*d)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	return flat, d
}

// gridBatchQuantizer wraps gridQuantizer with a batch path, to exercise
// ClassifyBatch's BatchQuantizer branch against the per-row fallback.
type gridBatchQuantizer struct{ gridQuantizer }

func (g gridBatchQuantizer) QuantizeBatch(flat []float64, n, d int, out []CellQE) {
	for i := 0; i < n; i++ {
		out[i].Cell, out[i].QE = g.Quantize(flat[i*d : (i+1)*d])
	}
}

var _ BatchQuantizer = gridBatchQuantizer{}

// TestClassifyBatchMatchesClassify verifies both ClassifyBatch branches
// (batch quantizer and per-row fallback) are byte-identical to Classify,
// at every worker count and across the chunking boundary.
func TestClassifyBatchMatchesClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var data [][]float64
	var labels []string
	for i := 0; i < 400; i++ {
		x := rng.Float64() * 3
		data = append(data, []float64{x})
		if x >= 1 && x < 2 {
			labels = append(labels, "neptune")
		} else {
			labels = append(labels, "normal")
		}
	}
	for name, q := range map[string]Quantizer{
		"per-row": gridQuantizer{},
		"batch":   gridBatchQuantizer{},
	} {
		det, err := Fit(q, data, labels, Config{})
		if err != nil {
			t.Fatal(err)
		}
		// n spans several classify chunks so the chunked path is exercised.
		n := classifyChunk*2 + 57
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.Float64() * 6}
		}
		flat, d := flatten(rows)
		want := make([]Prediction, n)
		for i := range rows {
			want[i] = det.Classify(rows[i])
		}
		for _, p := range []int{1, 2, 8, 0} {
			det.SetParallelism(p)
			out := make([]Prediction, n)
			if err := det.ClassifyBatch(flat, n, d, out); err != nil {
				t.Fatal(err)
			}
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("%s p=%d row %d: batch %+v, want %+v", name, p, i, out[i], want[i])
				}
			}
		}
	}
}

func TestClassifyBatchValidation(t *testing.T) {
	det := fitTestDetector(t, Config{})
	flat := make([]float64, 4)
	out := make([]Prediction, 4)
	if err := det.ClassifyBatch(flat, 4, 0, out); err == nil {
		t.Error("dim 0 accepted")
	}
	if err := det.ClassifyBatch(flat, 5, 1, out); err == nil {
		t.Error("short flat accepted")
	}
	if err := det.ClassifyBatch(flat, 4, 1, out[:2]); err == nil {
		t.Error("short out accepted")
	}
	var unfitted Detector
	if err := unfitted.ClassifyBatch(flat, 4, 1, out); err == nil {
		t.Error("unfitted detector accepted")
	}
}

// TestGHSOMQuantizeBatchMatchesQuantize verifies the GHSOM adapter's batch
// path (with cached cell names) equals per-row Quantize, and that the
// cached names are identical to the composite-literal fallback's.
func TestGHSOMQuantizeBatchMatchesQuantize(t *testing.T) {
	data, _ := tinyClusters(5, 60)
	cfg := core.DefaultConfig()
	cfg.EpochsPerGrowth = 3
	cfg.FineTuneEpochs = 3
	cfg.MaxGrowIters = 3
	cfg.MinMapData = 10
	model, err := core.Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cached := NewGHSOMQuantizer(core.Compile(model))
	plain := GHSOMQuantizer{Model: model}
	rng := rand.New(rand.NewSource(6))
	n := 150
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 8, rng.NormFloat64() * 8}
	}
	flat, d := flatten(rows)
	out := make([]CellQE, n)
	cached.QuantizeBatch(flat, n, d, out)
	for i := range rows {
		wantCell, wantQE := plain.Quantize(rows[i])
		if out[i].Cell != wantCell || out[i].QE != wantQE {
			t.Fatalf("row %d: batch (%q, %v), per-row (%q, %v)",
				i, out[i].Cell, out[i].QE, wantCell, wantQE)
		}
		gotCell, gotQE := cached.Quantize(rows[i])
		if gotCell != wantCell || gotQE != wantQE {
			t.Fatalf("row %d: cached (%q, %v), plain (%q, %v)", i, gotCell, gotQE, wantCell, wantQE)
		}
	}
	// Dimension-mismatch rows keep Quantize's sentinel cell via fallback.
	badCell, badQE := cached.Quantize([]float64{1, 2, 3})
	if badCell != "-1/-1" || !math.IsNaN(badQE) {
		t.Errorf("dim mismatch = (%q, %v), want (-1/-1, NaN)", badCell, badQE)
	}
	// A truncated flat batch (fewer than n complete rows) must not panic:
	// complete rows quantize normally, the missing tail gets sentinels.
	short := flat[:5*d-1]
	shortOut := make([]CellQE, 7)
	cached.QuantizeBatch(short, 7, d, shortOut)
	for i := 0; i < 4; i++ {
		if shortOut[i] != out[i] {
			t.Fatalf("truncated batch row %d: %+v, want %+v", i, shortOut[i], out[i])
		}
	}
	for i := 4; i < 7; i++ {
		if shortOut[i].Cell != "-1/-1" || !math.IsNaN(shortOut[i].QE) {
			t.Fatalf("truncated batch tail row %d = %+v, want sentinel", i, shortOut[i])
		}
	}
	// Degenerate dims must not panic either.
	cached.QuantizeBatch(nil, 3, 0, shortOut[:3])
	cached.QuantizeBatch(flat, 2, d+1, shortOut[:2])
}

// TestSOMQuantizeBatchMatchesQuantize verifies the flat-SOM adapter's
// batch path (AssignFlat) and its masked/truncated fallbacks equal
// per-row Quantize.
func TestSOMQuantizeBatchMatchesQuantize(t *testing.T) {
	data, _ := tinyClusters(9, 40)
	m, err := som.New(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitSample(data, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	counts := m.Assign(data)
	unitCounts := make([]int, m.Units())
	for _, u := range counts {
		unitCounts[u]++
	}
	rng := rand.New(rand.NewSource(10))
	n := 120
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 6, rng.NormFloat64() * 6}
	}
	flat, d := flatten(rows)
	for name, q := range map[string]SOMQuantizer{
		"unmasked": {Map: m},
		"masked":   {Map: m, UnitCounts: unitCounts},
	} {
		out := make([]CellQE, n)
		q.QuantizeBatch(flat, n, d, out)
		for i := range rows {
			wantCell, wantQE := q.Quantize(rows[i])
			if out[i].Cell != wantCell || out[i].QE != wantQE {
				t.Fatalf("%s row %d: batch (%q, %v), per-row (%q, %v)",
					name, i, out[i].Cell, out[i].QE, wantCell, wantQE)
			}
		}
		// Truncated flat: sentinel tail, no panic.
		shortOut := make([]CellQE, 4)
		q.QuantizeBatch(flat[:2*d+1], 4, d, shortOut)
		for i := 2; i < 4; i++ {
			if shortOut[i].Cell != "" || !math.IsNaN(shortOut[i].QE) {
				t.Fatalf("%s truncated tail row %d = %+v, want sentinel", name, i, shortOut[i])
			}
		}
	}
}
