package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ghsom/internal/serve"
)

// Config bundles the gateway's knobs. Zero values resolve to the
// defaults documented per field.
type Config struct {
	// Replicas are the base URLs of the ghsom-serve fleet members.
	Replicas []string
	// Instance is the gateway's own identity, echoed on every response.
	Instance string
	// Replication is how many distinct replicas serve each model's shard
	// (default 2, capped at the fleet size).
	Replication int
	// MaxRetries bounds additional attempts after the first (default 3).
	// Retries never extend past the request's deadline.
	MaxRetries int
	// RetryBase and RetryMax shape the exponential backoff between
	// attempts (defaults 25ms and 2s); a replica's Retry-After hint is
	// honored as a floor on top.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Hedge, when positive, launches a second request to another shard
	// member if the first has not answered within this delay. Detects are
	// idempotent, so the duplicate is safe; the first complete response
	// wins and the loser is discarded.
	Hedge time.Duration
	// HealthEvery is the active checker's probe period (default 1s);
	// ProbeTimeout bounds one probe (default 2s).
	HealthEvery  time.Duration
	ProbeTimeout time.Duration
	// BreakerThreshold consecutive failures open a replica's breaker;
	// after BreakerCooldown it half-opens for probe requests (defaults 3
	// and 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DefaultTimeout is the deadline given to requests carrying none
	// (default 30s); MaxBody and MaxModel cap one /detect body and one
	// model envelope.
	DefaultTimeout time.Duration
	MaxBody        int64
	MaxModel       int64
	// Transport underlies all gateway→replica requests (default
	// http.DefaultTransport); tests inject one. Fault-injection points
	// wrap whatever is configured.
	Transport http.RoundTripper
}

func (cfg *Config) fillDefaults() {
	if cfg.Replication < 1 {
		cfg.Replication = 2
	}
	if cfg.Replication > len(cfg.Replicas) {
		cfg.Replication = len(cfg.Replicas)
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.BreakerThreshold < 1 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = serve.DefaultJobTimeout
	}
	if cfg.MaxBody < 1 {
		cfg.MaxBody = serve.DefaultMaxBodyBytes
	}
	if cfg.MaxModel < 1 {
		cfg.MaxModel = serve.DefaultMaxModelBytes
	}
	if cfg.Transport == nil {
		cfg.Transport = http.DefaultTransport
	}
}

// Gateway is the coordinator: an http.Handler exposing the same surface
// as one ghsom-serve replica, backed by the whole fleet.
type Gateway struct {
	cfg         Config
	replicas    []*replica
	ring        *ring
	client      *http.Client // proxy traffic; bounded per request by deadline contexts
	probeClient *http.Client // health probes, bounded by ProbeTimeout
	stop        chan struct{}
	stopOnce    sync.Once
	wg          sync.WaitGroup
	// rr rotates round-robin among equally-backlogged shard members.
	rr atomic.Uint64

	requests      atomic.Int64
	retries       atomic.Int64
	hedges        atomic.Int64
	hedgeWins     atomic.Int64
	shedNoReplica atomic.Int64
	deadlineStops atomic.Int64
}

// New builds the gateway over the configured fleet and starts the
// active health checker. Close stops it.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: no replicas configured")
	}
	cfg.fillDefaults()
	seen := make(map[string]bool, len(cfg.Replicas))
	g := &Gateway{cfg: cfg, stop: make(chan struct{})}
	for _, u := range cfg.Replicas {
		for len(u) > 0 && u[len(u)-1] == '/' {
			u = u[:len(u)-1]
		}
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		g.replicas = append(g.replicas, &replica{
			url:     u,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	if len(g.replicas) == 0 {
		return nil, errors.New("cluster: no distinct replicas configured")
	}
	if g.cfg.Replication > len(g.replicas) {
		g.cfg.Replication = len(g.replicas)
	}
	g.ring = newRing(g.replicas)
	transport := faultTransport{base: cfg.Transport}
	g.client = &http.Client{Transport: transport}
	g.probeClient = &http.Client{Transport: transport, Timeout: cfg.ProbeTimeout}
	g.wg.Add(1)
	go g.healthLoop()
	return g, nil
}

// Close stops the health checker. In-flight proxied requests finish on
// their own deadlines.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// CheckNow runs one synchronous health sweep, for tests and startup
// scripts that need the fleet classified before traffic.
func (g *Gateway) CheckNow() { g.checkAll() }

// Handler builds the gateway's HTTP surface.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /detect", g.handleDetect)
	mux.HandleFunc("POST /model", g.handleLoadModel)
	mux.HandleFunc("DELETE /model", g.handleUnloadModel)
	mux.HandleFunc("GET /models", g.handleModels)
	mux.HandleFunc("GET /stats", g.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		for _, rep := range g.replicas {
			if rep.routable() {
				w.WriteHeader(http.StatusOK)
				fmt.Fprintln(w, "ok")
				return
			}
		}
		http.Error(w, "no healthy replicas", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if g.cfg.Instance == "" {
		return mux
	}
	instance := g.cfg.Instance
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(serve.InstanceHeader, instance)
		mux.ServeHTTP(w, r)
	})
}

// proxyResult is one settled gateway→replica exchange: either a whole
// received response (status, headers of interest, full body) or a
// transport-level error. Responses are received whole before being
// committed to the client, so a replica dying mid-body costs a retry,
// never a torn client stream.
type proxyResult struct {
	status      int
	contentType string
	retryAfter  int // parsed Retry-After seconds, 0 if absent
	upstream    string
	body        []byte
	err         error
}

// retryable reports whether the exchange may be retried elsewhere:
// transport failures and deliberate shedding (429 overload, 503
// drain/unavailable) are; everything else — including 4xx client errors
// and verdict-bearing 200s — is final.
func (p proxyResult) retryable() bool {
	return p.err != nil || p.status == http.StatusTooManyRequests || p.status == http.StatusServiceUnavailable
}

func (g *Gateway) handleDetect(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	if model == "" {
		model = serve.DefaultModelName
	}
	deadline, err := serve.RequestDeadline(r, g.cfg.DefaultTimeout)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Buffer the body: retries and hedges need to replay it, and the
	// columnar format passes through as opaque bytes either way.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	g.requests.Add(1)
	res := g.route(r.Context(), model, r.Header.Get("Content-Type"), body, deadline)
	if res.err != nil {
		// Every attempt failed at the transport level and the retry budget
		// or deadline is spent: the shard is effectively down right now.
		w.Header().Set("Retry-After", "2")
		http.Error(w, fmt.Sprintf("no replica completed the request: %v", res.err), http.StatusServiceUnavailable)
		return
	}
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if res.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(res.retryAfter))
	}
	if res.upstream != "" {
		w.Header().Set("X-GHSOM-Upstream", res.upstream)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// route drives the bounded retry loop for one detect: pick the best
// eligible shard member, exchange, and on a retryable outcome back off
// (exponential with jitter, floored by the replica's Retry-After hint)
// and try again — but never past the request's deadline and never more
// than MaxRetries extra attempts. A shard with no routable member sheds
// with a synthetic 503 + Retry-After while other shards keep serving.
func (g *Gateway) route(ctx context.Context, model, contentType string, body []byte, deadline time.Time) proxyResult {
	backoff := g.cfg.RetryBase
	var last proxyResult
	var lastRep *replica
	haveLast := false
	for attempt := 0; attempt <= g.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			g.retries.Add(1)
		}
		rep, probe := g.pick(model, lastRep)
		if rep == nil {
			break // no routable member: degrade this shard only
		}
		res := g.exchange(ctx, rep, probe, model, contentType, body, deadline)
		if !res.retryable() {
			return res
		}
		last, haveLast, lastRep = res, true, rep
		// Back off before the next attempt, honoring the replica's
		// Retry-After as a floor, and never sleeping past the deadline.
		wait := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		if ra := time.Duration(res.retryAfter) * time.Second; ra > wait {
			wait = ra
		}
		if backoff *= 2; backoff > g.cfg.RetryMax {
			backoff = g.cfg.RetryMax
		}
		if !deadline.IsZero() && time.Now().Add(wait).After(deadline) {
			g.deadlineStops.Add(1)
			return last // out of budget: report the last shed, do not retry past the deadline
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return proxyResult{err: ctx.Err()}
		}
	}
	if haveLast {
		return last
	}
	g.shedNoReplica.Add(1)
	return proxyResult{
		status:      http.StatusServiceUnavailable,
		contentType: "text/plain; charset=utf-8",
		retryAfter:  2,
		body:        []byte(fmt.Sprintf("no healthy replica for model %q right now\n", model)),
	}
}

// pick selects the shard member to try next: routable (health),
// admitted by its breaker, preferring replicas other than the one that
// just failed. Members whose scraped backlog (queue-wait mean plus
// depth) is within a small band of the least-backlogged spread traffic
// round-robin — a shard with healthy siblings shares load instead of
// funnelling everything into one replica between stats scrapes — and
// more-backlogged members serve only as fallbacks, least-loaded first.
// Breaker admission is only claimed on the replica actually returned,
// so half-open probes are never leaked.
func (g *Gateway) pick(model string, avoid *replica) (*replica, bool) {
	shard := g.ring.shard(model, g.cfg.Replication)
	cands := make([]*replica, 0, len(shard))
	for _, rep := range shard {
		if rep.routable() && rep != avoid {
			cands = append(cands, rep)
		}
	}
	if len(cands) == 0 {
		// A single-member shard retries where it failed, or sheds.
		if avoid != nil && avoid.routable() {
			cands = append(cands, avoid)
		} else {
			return nil, false
		}
	}
	backlog := func(r *replica) float64 {
		return r.queueWaitMs.load() + float64(r.queueDepth.Load())*10
	}
	minB := math.Inf(1)
	for _, c := range cands {
		if b := backlog(c); b < minB {
			minB = b
		}
	}
	const bandMs = 5
	band := cands[:0:len(cands)]
	var rest []*replica
	for _, c := range cands {
		if backlog(c) <= minB+bandMs {
			band = append(band, c)
		} else {
			rest = append(rest, c)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return backlog(rest[i]) < backlog(rest[j]) })
	now := time.Now()
	start := int(g.rr.Add(1) % uint64(len(band)))
	for i := 0; i < len(band); i++ {
		c := band[(start+i)%len(band)]
		if ok, probe := c.breaker.allow(now); ok {
			return c, probe
		}
	}
	for _, c := range rest {
		if ok, probe := c.breaker.allow(now); ok {
			return c, probe
		}
	}
	return nil, false
}

// exchange performs one gateway→replica detect exchange, hedged with a
// second shard member when configured. The breaker and per-replica
// counters are settled inside send, so hedge losers settle themselves.
func (g *Gateway) exchange(ctx context.Context, rep *replica, probe bool, model, contentType string, body []byte, deadline time.Time) proxyResult {
	if g.cfg.Hedge <= 0 {
		return g.send(ctx, rep, probe, model, contentType, body, deadline)
	}
	ch := make(chan proxyResult, 2)
	go func() { ch <- g.send(ctx, rep, probe, model, contentType, body, deadline) }()
	var hedged bool
	select {
	case res := <-ch:
		return res
	case <-time.After(g.cfg.Hedge):
	}
	// Primary is slow: race a second member. The loser finishes on its
	// own (its breaker/counters settle in send) and is discarded — detect
	// is idempotent, so the duplicate work is the cost of the tail cut.
	rep2, probe2 := g.pick(model, rep)
	if rep2 != nil && rep2 != rep {
		g.hedges.Add(1)
		hedged = true
		go func() { ch <- g.send(ctx, rep2, probe2, model, contentType, body, deadline) }()
	}
	res := <-ch
	if res.retryable() && hedged {
		// First finisher failed; the race still has a runner — give it its
		// chance before reporting failure upward.
		if res2 := <-ch; !res2.retryable() {
			res = res2
		}
	}
	if hedged && res.upstream != "" && rep2 != nil && res.upstream == rep2.url {
		g.hedgeWins.Add(1)
	}
	return res
}

// send performs exactly one exchange with one replica: the deadline
// budget is re-encoded per hop as the remaining milliseconds, the
// response body is read whole, and the breaker is settled — success on
// any complete response that is not a server-side failure, failure on
// transport errors, torn bodies, and non-shedding 5xx.
func (g *Gateway) send(ctx context.Context, rep *replica, probe bool, model, contentType string, body []byte, deadline time.Time) proxyResult {
	_ = probe // the breaker tracks its own probe state; settled below
	rep.sent.Add(1)
	cancel := context.CancelFunc(func() {})
	if !deadline.IsZero() {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			// Out of budget before sending: settle the breaker as a success
			// (the replica did nothing wrong) and report a synthetic shed.
			rep.breaker.success()
			return proxyResult{status: http.StatusTooManyRequests, retryAfter: 1,
				contentType: "text/plain; charset=utf-8",
				body:        []byte("deadline exhausted before dispatch\n")}
		}
		ctx, cancel = context.WithDeadline(ctx, deadline)
	}
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/detect?model="+model, bytes.NewReader(body))
	if err != nil {
		rep.breaker.success()
		return proxyResult{err: err}
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if !deadline.IsZero() {
		ms := time.Until(deadline).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(serve.DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := g.client.Do(req)
	now := time.Now()
	if err != nil {
		rep.failed.Add(1)
		rep.breaker.failure(now)
		return proxyResult{err: err, upstream: rep.url}
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		// Response torn mid-body: nothing was committed to the client, so
		// this is a clean retry — and a real replica failure.
		rep.failed.Add(1)
		rep.breaker.failure(now)
		return proxyResult{err: fmt.Errorf("response torn mid-body: %w", err), upstream: rep.url}
	}
	if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
		rep.failed.Add(1)
		rep.breaker.failure(now)
	} else {
		rep.breaker.success()
	}
	retryAfter, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	return proxyResult{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  retryAfter,
		upstream:    rep.url,
		body:        raw,
	}
}
