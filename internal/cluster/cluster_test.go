package cluster

// Unit tests for the coordinator's mechanisms: the consistent-hash ring,
// the per-replica circuit breaker, health classification, routing,
// retry/backoff semantics, deadline budgets, and hedging — all against
// lightweight fake replicas, so they run even with -short. The
// end-to-end fleet behaviour over real ghsom-serve registries lives in
// chaos_test.go.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ghsom/internal/serve"
)

func testReplicas(n int) []*replica {
	reps := make([]*replica, n)
	for i := range reps {
		reps[i] = &replica{url: fmt.Sprintf("http://replica-%d:8741", i), breaker: newBreaker(3, time.Second)}
	}
	return reps
}

func TestRingDeterministicDistinctShards(t *testing.T) {
	reps := testReplicas(3)
	r1, r2 := newRing(reps), newRing(reps)
	for _, model := range []string{"default", "alpha", "beta", "a-very-long-model-name"} {
		s1, s2 := r1.shard(model, 2), r2.shard(model, 2)
		if len(s1) != 2 || len(s2) != 2 {
			t.Fatalf("shard(%q, 2) sizes = %d, %d", model, len(s1), len(s2))
		}
		if s1[0] != s2[0] || s1[1] != s2[1] {
			t.Errorf("shard(%q) not deterministic across ring builds", model)
		}
		if s1[0] == s1[1] {
			t.Errorf("shard(%q) repeated a replica", model)
		}
	}
	// Requesting more copies than members yields every member, once.
	if got := r1.shard("default", 5); len(got) != 3 {
		t.Errorf("shard(default, 5) = %d replicas, want all 3", len(got))
	}
	// Every replica owns a reasonable share of primaries.
	owners := map[*replica]int{}
	for i := 0; i < 300; i++ {
		owners[r1.shard(fmt.Sprintf("model-%d", i), 1)[0]]++
	}
	for _, rep := range reps {
		if owners[rep] < 30 {
			t.Errorf("replica %s owns only %d/300 primaries; ring badly skewed", rep.url, owners[rep])
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(2, 50*time.Millisecond)
	now := time.Now()
	if ok, probe := b.allow(now); !ok || probe {
		t.Fatalf("closed breaker: allow = %v, %v", ok, probe)
	}
	b.failure(now)
	if ok, _ := b.allow(now); !ok {
		t.Fatal("one failure under threshold should still allow")
	}
	b.failure(now) // hits threshold: opens
	if ok, _ := b.allow(now); ok {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if state, opens := b.snapshot(now); state != "open" || opens != 1 {
		t.Fatalf("snapshot = %s/%d, want open/1", state, opens)
	}
	later := now.Add(60 * time.Millisecond)
	if state, _ := b.snapshot(later); state != "half-open" {
		t.Fatalf("post-cooldown display state = %s, want half-open", state)
	}
	ok, probe := b.allow(later)
	if !ok || !probe {
		t.Fatalf("post-cooldown allow = %v, %v, want probe admission", ok, probe)
	}
	if ok, _ := b.allow(later); ok {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	b.failure(later) // probe failed: re-open
	if state, opens := b.snapshot(later); state != "open" || opens != 2 {
		t.Fatalf("after failed probe: %s/%d, want open/2", state, opens)
	}
	later = later.Add(60 * time.Millisecond)
	if ok, probe := b.allow(later); !ok || !probe {
		t.Fatal("second probe not admitted after second cooldown")
	}
	b.success()
	if state, _ := b.snapshot(later); state != "closed" {
		t.Fatal("probe success did not close the breaker")
	}
	if ok, probe := b.allow(later); !ok || probe {
		t.Fatal("closed breaker after recovery should pass traffic freely")
	}
}

func TestNewValidatesAndDedupes(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no replicas succeeded")
	}
	g, err := New(Config{Replicas: []string{"http://a:1/", "http://a:1", "http://b:2"}, HealthEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if len(g.replicas) != 2 {
		t.Errorf("dedupe: %d replicas, want 2", len(g.replicas))
	}
	if g.cfg.Replication != 2 {
		t.Errorf("replication defaulted to %d, want 2 (capped at fleet)", g.cfg.Replication)
	}
}

// fakeReplica is a scriptable stand-in for ghsom-serve: a handler whose
// detect behaviour is swappable at runtime.
type fakeReplica struct {
	srv    *httptest.Server
	detect atomic.Pointer[http.HandlerFunc]
}

func newFakeReplica(t *testing.T, instance string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	okDetect := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "echo:%s:%d", instance, len(body))
	})
	f.detect.Store(&okDetect)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/livez", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "{}") })
	mux.HandleFunc("/detect", func(w http.ResponseWriter, r *http.Request) { (*f.detect.Load())(w, r) })
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(serve.InstanceHeader, instance)
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) script(h http.HandlerFunc) { f.detect.Store(&h) }

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = time.Hour // probe only via CheckNow, keeping tests deterministic
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		g.Close()
		g.client.CloseIdleConnections()
		g.probeClient.CloseIdleConnections()
	})
	g.CheckNow()
	return g
}

func TestGatewayPassThroughAndDeadlineRewrite(t *testing.T) {
	f := newFakeReplica(t, "rep-a")
	var sawDeadline atomic.Int64
	f.script(func(w http.ResponseWriter, r *http.Request) {
		if ms := r.Header.Get(serve.DeadlineHeader); ms != "" {
			var v int64
			fmt.Sscanf(ms, "%d", &v)
			sawDeadline.Store(v)
		}
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, "verdict")
	})
	g := newTestGateway(t, Config{Replicas: []string{f.srv.URL}, Instance: "gw-test"})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/detect", strings.NewReader("{}\n"))
	req.Header.Set(serve.DeadlineHeader, "5000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "verdict" {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
	if got := resp.Header.Get(serve.InstanceHeader); got != "gw-test" {
		t.Errorf("gateway instance header = %q", got)
	}
	if resp.Header.Get("X-GHSOM-Upstream") != f.srv.URL {
		t.Errorf("upstream header = %q, want %s", resp.Header.Get("X-GHSOM-Upstream"), f.srv.URL)
	}
	// The per-hop deadline must be the remaining budget: positive and no
	// larger than what the client sent.
	if ms := sawDeadline.Load(); ms < 1 || ms > 5000 {
		t.Errorf("replica saw deadline %dms, want (0, 5000]", ms)
	}
}

func TestGatewayRetriesFailoverToSibling(t *testing.T) {
	a := newFakeReplica(t, "rep-a")
	b := newFakeReplica(t, "rep-b")
	// Both replicas shed with 503 a few times, then serve. Wherever the
	// ring sends the first attempt, the bounded retry loop must land on a
	// success without the client seeing any failure.
	var sheds atomic.Int64
	shedThen := func(f *fakeReplica, inst string) {
		f.script(func(w http.ResponseWriter, r *http.Request) {
			if sheds.Add(1) <= 2 {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			io.Copy(io.Discard, r.Body)
			fmt.Fprint(w, "ok:"+inst)
		})
	}
	shedThen(a, "rep-a")
	shedThen(b, "rep-b")
	g := newTestGateway(t, Config{
		Replicas:   []string{a.srv.URL, b.srv.URL},
		MaxRetries: 3,
		RetryBase:  5 * time.Millisecond,
	})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	start := time.Now()
	resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", strings.NewReader("{}\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok:") {
		t.Fatalf("status %d body %q, want retried success", resp.StatusCode, body)
	}
	// Retry-After: 1 from the shed responses must floor the backoff: two
	// sheds mean at least ~2s total wait before the success.
	if elapsed := time.Since(start); elapsed < 1500*time.Millisecond {
		t.Errorf("request completed in %v; Retry-After floor not honored", elapsed)
	}
	if g.retries.Load() < 2 {
		t.Errorf("retries = %d, want >= 2", g.retries.Load())
	}
}

func TestGatewayNeverRetriesPastDeadline(t *testing.T) {
	f := newFakeReplica(t, "rep-a")
	var attempts atomic.Int64
	f.script(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Retry-After", "5")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	})
	g := newTestGateway(t, Config{Replicas: []string{f.srv.URL}, MaxRetries: 5, RetryBase: 5 * time.Millisecond})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/detect", strings.NewReader("{}\n"))
	req.Header.Set(serve.DeadlineHeader, "300") // far less than the 5s Retry-After floor
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want the replica's 429 passed through", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("request took %v; gateway slept past the deadline budget", elapsed)
	}
	if n := attempts.Load(); n != 1 {
		t.Errorf("replica saw %d attempts, want 1 (no budget for a retry)", n)
	}
	if g.deadlineStops.Load() != 1 {
		t.Errorf("deadlineStops = %d, want 1", g.deadlineStops.Load())
	}
}

func TestGatewayShedsWhenShardEmpty(t *testing.T) {
	f := newFakeReplica(t, "rep-a")
	g := newTestGateway(t, Config{Replicas: []string{f.srv.URL}, MaxRetries: 2, RetryBase: time.Millisecond})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	f.srv.Close() // the whole shard dies
	g.CheckNow()
	resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", strings.NewReader("{}\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 for an empty shard", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 missing Retry-After")
	}
	if g.shedNoReplica.Load() != 1 {
		t.Errorf("shedNoReplica = %d, want 1", g.shedNoReplica.Load())
	}
	// The gateway itself is now unhealthy: no routable replicas at all.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("gateway /healthz = %d with a dead fleet, want 503", hresp.StatusCode)
	}
}

func TestGatewayHealthClassification(t *testing.T) {
	healthy := newFakeReplica(t, "rep-ok")
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case "/livez":
			fmt.Fprintln(w, "ok")
		}
	}))
	defer draining.Close()
	g := newTestGateway(t, Config{Replicas: []string{healthy.srv.URL, draining.URL}})
	for _, rep := range g.replicas {
		want := healthHealthy
		if rep.url == draining.URL {
			want = healthDraining
		}
		if got := int(rep.health.Load()); got != want {
			t.Errorf("replica %s health = %s, want %s", rep.url, healthStateName(got), healthStateName(want))
		}
	}
	roll := g.Rollup(t.Context(), "")
	if roll.Aggregate.Routable != 1 {
		t.Errorf("routable = %d, want 1", roll.Aggregate.Routable)
	}
	for _, st := range roll.Replicas {
		if st.Replica == healthy.srv.URL && st.Instance != "rep-ok" {
			t.Errorf("instance identity not captured from probe: %+v", st)
		}
	}
}

func TestGatewayHedgesSlowReplica(t *testing.T) {
	a := newFakeReplica(t, "rep-a")
	b := newFakeReplica(t, "rep-b")
	g := newTestGateway(t, Config{
		Replicas: []string{a.srv.URL, b.srv.URL},
		Hedge:    25 * time.Millisecond,
	})
	// Whichever member receives the first attempt stalls, so the hedge
	// must fire and the sibling must win the race — independent of which
	// member the balancer rotates to first.
	var arrivals atomic.Int64
	stall := func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if arrivals.Add(1) == 1 {
			time.Sleep(600 * time.Millisecond)
			fmt.Fprint(w, "slow")
			return
		}
		fmt.Fprint(w, "fast")
	}
	a.script(stall)
	b.script(stall)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	start := time.Now()
	resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", strings.NewReader("{}\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) == "slow" {
		t.Fatalf("status %d body %q, want the fast sibling's answer", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("hedged request took %v, slower than the slow replica path", elapsed)
	}
	if g.hedges.Load() != 1 || g.hedgeWins.Load() != 1 {
		t.Errorf("hedges/wins = %d/%d, want 1/1", g.hedges.Load(), g.hedgeWins.Load())
	}
	time.Sleep(700 * time.Millisecond) // let the slow loser finish before leak-sensitive teardown
}
