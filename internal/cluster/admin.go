package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"ghsom/internal/serve"
)

// PushResult is one replica's outcome of a fan-out model load or
// unload, including the post-push verification against its GET /models.
type PushResult struct {
	Replica  string `json:"replica"`
	Instance string `json:"instance,omitempty"`
	Status   int    `json:"status,omitempty"`
	Error    string `json:"error,omitempty"`
	// Verified is true once GET /models on the replica confirmed the
	// pushed model is (or, for unload, is no longer) registered.
	Verified bool             `json:"verified"`
	View     *serve.ModelView `json:"view,omitempty"`
}

// PushSummary is the gateway's response to a fan-out model operation.
type PushSummary struct {
	Model    string       `json:"model"`
	Replicas []PushResult `json:"replicas"`
	OK       bool         `json:"ok"`
}

// handleLoadModel distributes a model envelope to every fleet member:
// the body is buffered once, pushed to each replica's POST /model
// concurrently, and each push is verified by reading the replica's
// GET /models back. Partial success is reported per replica with 502 so
// the operator retries; detection traffic keeps flowing either way.
func (g *Gateway) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = serve.DefaultModelName
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxModel))
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	results := g.fanOut(func(rep *replica) PushResult {
		res := PushResult{Replica: rep.url, Instance: rep.instanceName()}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			rep.url+"/model?name="+url.QueryEscape(name), bytes.NewReader(body))
		if err != nil {
			res.Error = err.Error()
			return res
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := g.client.Do(req)
		if err != nil {
			res.Error = err.Error()
			return res
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		res.Status = resp.StatusCode
		// 200 is a hot-swap of an existing entry, 201 a fresh load.
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			res.Error = string(bytes.TrimSpace(raw))
			return res
		}
		var view serve.ModelView
		if json.Unmarshal(raw, &view) == nil {
			res.View = &view
		}
		// Verification: the replica must list the model back.
		if view, ok, err := g.replicaModel(r.Context(), rep, name); err != nil {
			res.Error = fmt.Sprintf("verify: %v", err)
		} else if !ok {
			res.Error = fmt.Sprintf("verify: model %q not listed after push", name)
		} else {
			res.Verified = true
			res.View = view
		}
		return res
	})
	writeSummary(w, name, results)
}

// handleUnloadModel fans a DELETE /model out to the fleet, verifying
// each replica no longer lists the model.
func (g *Gateway) handleUnloadModel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "name required", http.StatusBadRequest)
		return
	}
	results := g.fanOut(func(rep *replica) PushResult {
		res := PushResult{Replica: rep.url, Instance: rep.instanceName()}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodDelete,
			rep.url+"/model?name="+url.QueryEscape(name), nil)
		if err != nil {
			res.Error = err.Error()
			return res
		}
		resp, err := g.client.Do(req)
		if err != nil {
			res.Error = err.Error()
			return res
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		res.Status = resp.StatusCode
		// 404 is success for an unload: the model is not there.
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
			res.Error = string(bytes.TrimSpace(raw))
			return res
		}
		if _, ok, err := g.replicaModel(r.Context(), rep, name); err != nil {
			res.Error = fmt.Sprintf("verify: %v", err)
		} else if ok {
			res.Error = fmt.Sprintf("verify: model %q still listed after unload", name)
		} else {
			res.Verified = true
		}
		return res
	})
	writeSummary(w, name, results)
}

// fanOut runs one operation against every replica concurrently,
// preserving fleet order in the results.
func (g *Gateway) fanOut(op func(*replica) PushResult) []PushResult {
	results := make([]PushResult, len(g.replicas))
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			results[i] = op(rep)
		}(i, rep)
	}
	wg.Wait()
	return results
}

// replicaModel reads one replica's GET /models and reports whether it
// lists the named model.
func (g *Gateway) replicaModel(ctx context.Context, rep *replica, name string) (*serve.ModelView, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/models", nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("GET /models: %s", resp.Status)
	}
	var views []serve.ModelView
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&views); err != nil {
		return nil, false, err
	}
	for i := range views {
		if views[i].Name == name {
			return &views[i], true, nil
		}
	}
	return nil, false, nil
}

func writeSummary(w http.ResponseWriter, model string, results []PushResult) {
	sum := PushSummary{Model: model, Replicas: results, OK: true}
	for _, r := range results {
		if !r.Verified {
			sum.OK = false
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if !sum.OK {
		w.WriteHeader(http.StatusBadGateway)
	}
	json.NewEncoder(w).Encode(&sum)
}

// ReplicaModels is one replica's model listing in the aggregated
// GET /models view.
type ReplicaModels struct {
	Replica  string            `json:"replica"`
	Instance string            `json:"instance,omitempty"`
	Error    string            `json:"error,omitempty"`
	Models   []serve.ModelView `json:"models,omitempty"`
}

// handleModels aggregates every replica's model listing.
func (g *Gateway) handleModels(w http.ResponseWriter, r *http.Request) {
	out := make([]ReplicaModels, len(g.replicas))
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			out[i] = ReplicaModels{Replica: rep.url, Instance: rep.instanceName()}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rep.url+"/models", nil)
			if err != nil {
				out[i].Error = err.Error()
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				out[i].Error = err.Error()
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&out[i].Models); err != nil {
				out[i].Error = err.Error()
			}
		}(i, rep)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// ReplicaStatus is one fleet member's row in the cluster rollup: the
// gateway's view of it (health, breaker, routing counters, balancer
// signals) plus the replica's own live StatsView when reachable.
type ReplicaStatus struct {
	Replica           string  `json:"replica"`
	Instance          string  `json:"instance,omitempty"`
	Health            string  `json:"health"`
	HealthTransitions int64   `json:"healthTransitions"`
	Breaker           string  `json:"breaker"`
	BreakerOpens      int64   `json:"breakerOpens"`
	Sent              int64   `json:"sent"`
	Failed            int64   `json:"failed"`
	QueueDepth        int64   `json:"queueDepth"`
	QueueWaitMeanMs   float64 `json:"queueWaitMeanMs"`

	Stats      *serve.StatsView `json:"stats,omitempty"`
	StatsError string           `json:"statsError,omitempty"`
}

// AggregateStats sums the detection counters across reachable replicas.
type AggregateStats struct {
	Replicas        int   `json:"replicas"`
	Routable        int   `json:"routable"`
	Batches         int64 `json:"batches"`
	Records         int64 `json:"records"`
	Admitted        int64 `json:"admitted"`
	ShedQueueFull   int64 `json:"shedQueueFull"`
	ShedDeadline    int64 `json:"shedDeadline"`
	ShedClosed      int64 `json:"shedClosed"`
	DroppedDeadline int64 `json:"droppedDeadline"`
	Quarantined     int64 `json:"quarantined"`
}

// Rollup is the gateway's GET /stats document: gateway-level routing
// counters, the per-replica fleet view, and the aggregate.
type Rollup struct {
	Instance    string `json:"instance,omitempty"`
	Replication int    `json:"replication"`

	Requests      int64 `json:"requests"`
	Retries       int64 `json:"retries"`
	Hedges        int64 `json:"hedges"`
	HedgeWins     int64 `json:"hedgeWins"`
	ShedNoReplica int64 `json:"shedNoReplica"`
	DeadlineStops int64 `json:"deadlineStops"`

	Replicas  []ReplicaStatus `json:"replicaStatus"`
	Aggregate AggregateStats  `json:"aggregate"`
}

// Rollup builds the cluster stats document, scraping each replica's
// live /stats concurrently (model query passed through).
func (g *Gateway) Rollup(ctx context.Context, model string) Rollup {
	now := time.Now()
	roll := Rollup{
		Instance:      g.cfg.Instance,
		Replication:   g.cfg.Replication,
		Requests:      g.requests.Load(),
		Retries:       g.retries.Load(),
		Hedges:        g.hedges.Load(),
		HedgeWins:     g.hedgeWins.Load(),
		ShedNoReplica: g.shedNoReplica.Load(),
		DeadlineStops: g.deadlineStops.Load(),
		Replicas:      make([]ReplicaStatus, len(g.replicas)),
	}
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			breakerState, opens := rep.breaker.snapshot(now)
			st := ReplicaStatus{
				Replica:           rep.url,
				Instance:          rep.instanceName(),
				Health:            healthStateName(int(rep.health.Load())),
				HealthTransitions: rep.transitions.Load(),
				Breaker:           breakerState,
				BreakerOpens:      opens,
				Sent:              rep.sent.Load(),
				Failed:            rep.failed.Load(),
				QueueDepth:        rep.queueDepth.Load(),
				QueueWaitMeanMs:   rep.queueWaitMs.load(),
			}
			target := rep.url + "/stats"
			if model != "" {
				target += "?model=" + url.QueryEscape(model)
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
			if err == nil {
				if resp, err := g.probeClient.Do(req); err != nil {
					st.StatsError = err.Error()
				} else {
					var snap serve.StatsView
					if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap); err != nil {
						st.StatsError = err.Error()
					} else {
						st.Stats = &snap
					}
					resp.Body.Close()
				}
			}
			roll.Replicas[i] = st
		}(i, rep)
	}
	wg.Wait()
	roll.Aggregate.Replicas = len(g.replicas)
	for i, rep := range g.replicas {
		if rep.routable() {
			roll.Aggregate.Routable++
		}
		if s := roll.Replicas[i].Stats; s != nil {
			roll.Aggregate.Batches += s.Batches
			roll.Aggregate.Records += s.Records
			roll.Aggregate.Admitted += s.Admitted
			roll.Aggregate.ShedQueueFull += s.ShedQueueFull
			roll.Aggregate.ShedDeadline += s.ShedDeadline
			roll.Aggregate.ShedClosed += s.ShedClosed
			roll.Aggregate.DroppedDeadline += s.DroppedDeadline
			roll.Aggregate.Quarantined += s.Quarantined
		}
	}
	return roll
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	roll := g.Rollup(r.Context(), r.URL.Query().Get("model"))
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&roll)
}
