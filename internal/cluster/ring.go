package cluster

import (
	"hash/fnv"
	"sort"
)

// vnodesPerReplica is the virtual-node count each replica contributes to
// the hash ring. 64 points per replica keeps the shard assignment within
// a few percent of uniform for small fleets while keeping ring rebuilds
// (only on membership change) cheap.
const vnodesPerReplica = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a replica.
type ringPoint struct {
	hash uint64
	rep  *replica
}

// ring is a consistent-hash ring over the member replicas. Model names
// hash onto the circle and walk clockwise collecting distinct replicas,
// so adding or removing one replica only remaps the shards adjacent to
// its points instead of reshuffling every model.
type ring struct {
	points []ringPoint
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a diffuses trailing bytes
// poorly — strings sharing a prefix ("replica#01", "replica#02", …) hash
// into one tight band, which collapses the ring into per-replica arcs —
// so every hash is passed through a full avalanche before it becomes a
// circle position.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds the ring from the member set. Deterministic for a given
// membership: the same replicas always own the same shards, so every
// gateway instance fronting the fleet routes identically.
func newRing(reps []*replica) *ring {
	r := &ring{points: make([]ringPoint, 0, len(reps)*vnodesPerReplica)}
	for _, rep := range reps {
		base := hash64(rep.url)
		for v := 0; v < vnodesPerReplica; v++ {
			r.points = append(r.points, ringPoint{
				hash: mix64(base + uint64(v)*0x9e3779b97f4a7c15),
				rep:  rep,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// shard returns the n distinct replicas owning the named model: the
// first n unique owners encountered walking clockwise from the model's
// hash. Order is the preference order — the first entry is the shard's
// primary for that model.
func (r *ring) shard(model string, n int) []*replica {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= hash64(model)
	})
	seen := make(map[*replica]bool, n)
	out := make([]*replica, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.rep] {
			seen[p.rep] = true
			out = append(out, p.rep)
		}
	}
	return out
}
