// Package cluster is the fault-tolerant distributed serving tier behind
// cmd/ghsom-gateway: a coordinator fronting N ghsom-serve replicas with
// per-model consistent-hash sharding, configurable replication, active
// health checking, bounded deadline-aware retries with a per-replica
// circuit breaker, optional hedged requests, and graceful per-shard
// degradation. Model distribution rides the replicas' existing
// POST /model API (fan-out push with per-replica verification), and
// GET /stats rolls the fleet up into one document.
//
// The gateway never invents verdicts: /detect bodies (NDJSON or
// columnar frames) pass through opaquely to exactly one replica, and a
// response is only committed to the client once it arrived whole — a
// replica dying mid-response costs a retry, never a torn stream.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ghsom/internal/faultinject"
	"ghsom/internal/serve"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Replica health states as seen by the active checker.
const (
	healthUnknown = iota
	healthHealthy
	healthLoading
	healthDraining
	healthDead
)

func healthStateName(s int) string {
	switch s {
	case healthHealthy:
		return "healthy"
	case healthLoading:
		return "loading"
	case healthDraining:
		return "draining"
	case healthDead:
		return "dead"
	default:
		return "unknown"
	}
}

// replica is one ghsom-serve member: its base URL, the health state the
// checker last observed, its circuit breaker, and the balancer signals
// scraped from its /stats.
type replica struct {
	url      string
	instance atomic.Pointer[string]
	health   atomic.Int32
	// transitions counts health-state changes (for the rollup; a flapping
	// replica shows a high count).
	transitions atomic.Int64
	breaker     *breaker
	// queueWaitMs and queueDepth are the last /stats scrape's backlog
	// signals; the balancer prefers the least-backlogged shard member.
	queueWaitMs atomicFloat
	queueDepth  atomic.Int64
	// sent/failed count requests the gateway routed to this replica.
	sent   atomic.Int64
	failed atomic.Int64
}

// atomicFloat is a float64 carried in a uint64 cell.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) store(v float64) { f.bits.Store(floatBits(v)) }
func (f *atomicFloat) load() float64   { return floatFromBits(f.bits.Load()) }

// setHealth stores the observed state, counting the transition.
func (r *replica) setHealth(s int32) {
	if r.health.Swap(s) != s {
		r.transitions.Add(1)
	}
}

// routable reports whether the balancer may send detection work here:
// the checker saw it healthy (unknown counts as routable until the first
// probe lands, so a fresh gateway does not shed while the checker warms
// up).
func (r *replica) routable() bool {
	s := r.health.Load()
	return s == healthHealthy || s == healthUnknown
}

func (r *replica) instanceName() string {
	if p := r.instance.Load(); p != nil {
		return *p
	}
	return ""
}

// checkOnce probes one replica: GET /healthz classifies it (ok, loading,
// draining, dead on transport failure), and — when reachable — a /stats
// scrape refreshes the balancer's backlog signals. The instance identity
// comes from the X-GHSOM-Instance response header.
func (r *replica) checkOnce(client *http.Client) {
	resp, err := client.Get(r.url + "/healthz")
	if err != nil {
		r.setHealth(healthDead)
		return
	}
	if inst := resp.Header.Get(serve.InstanceHeader); inst != "" && r.instanceName() != inst {
		r.instance.Store(&inst)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		r.setHealth(healthHealthy)
	case strings.Contains(string(body), "draining"):
		r.setHealth(healthDraining)
	case strings.Contains(string(body), "loading"):
		r.setHealth(healthLoading)
	default:
		// Readiness failed for a reason the server did not name; check
		// liveness to distinguish a sick process from a dead one.
		if lresp, err := client.Get(r.url + "/livez"); err != nil {
			r.setHealth(healthDead)
		} else {
			io.Copy(io.Discard, lresp.Body)
			lresp.Body.Close()
			r.setHealth(healthDraining)
		}
		return
	}
	// Backlog scrape for the balancer. Note each scrape consumes the
	// replica's queue-wait window ("since last scrape" semantics).
	sresp, err := client.Get(r.url + "/stats")
	if err != nil {
		return
	}
	defer sresp.Body.Close()
	var snap serve.StatsView
	if json.NewDecoder(io.LimitReader(sresp.Body, 1<<20)).Decode(&snap) == nil {
		r.queueWaitMs.store(snap.QueueWaitMeanMs)
		r.queueDepth.Store(int64(snap.QueueDepth))
	}
}

// healthLoop drives the active checker: every period, every replica is
// probed concurrently until stop closes.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.cfg.HealthEvery)
	defer ticker.Stop()
	for {
		g.checkAll()
		select {
		case <-ticker.C:
		case <-g.stop:
			return
		}
	}
}

func (g *Gateway) checkAll() {
	var wg sync.WaitGroup
	for _, rep := range g.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rep.checkOnce(g.probeClient)
		}(rep)
	}
	wg.Wait()
}

// faultTransport wires the network-layer fault-injection points into
// every gateway→replica request: dial-error fails before bytes are sent,
// slow-replica delays in flight, dropped-response discards a response
// that actually arrived — the three failure shapes the retry/breaker
// path must absorb.
type faultTransport struct{ base http.RoundTripper }

func (t faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := faultinject.Hit(faultinject.DialError); err != nil {
		return nil, err
	}
	faultinject.Hit(faultinject.SlowReplica)
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if err := faultinject.Hit(faultinject.DroppedResponse); err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("response dropped: %w", err)
	}
	return resp, nil
}
