package cluster

import (
	"sync"
	"time"
)

// Breaker states. The breaker trips per replica on consecutive
// request-level failures (transport errors, 5xx other than deliberate
// shedding), distinct from the health checker's view: health marks what
// the replica says about itself, the breaker marks what requests through
// it actually experienced.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-replica circuit breaker: closed passes traffic and
// counts consecutive failures; at threshold it opens and sheds for the
// cooldown; after the cooldown it half-opens and admits exactly one
// probe request at a time — a probe success closes the breaker, a probe
// failure re-opens it for another cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     int
	fails     int
	openedAt  time.Time
	probing   bool
	// opens counts closed/half-open → open transitions for the rollup.
	opens int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may go through right now. In half-open
// (entered automatically once the cooldown elapses) only one in-flight
// probe is admitted; probe reports whether this request is it, so the
// caller must settle it via success or failure.
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = false
		fallthrough
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// success settles a request that completed acceptably: a half-open probe
// success closes the breaker; in closed state the failure streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.probing = false
	}
}

// failure settles a request that failed at the transport or server
// level: a half-open probe failure re-opens immediately; in closed state
// the streak grows and opens the breaker at threshold.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.opens++
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens++
		}
	case breakerOpen:
		// A straggler failure from before the open; nothing to do.
	}
}

// snapshot returns the display state (open flips to half-open once the
// cooldown has elapsed, matching what allow would do) and the open
// count.
func (b *breaker) snapshot(now time.Time) (state string, opens int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.state
	if s == breakerOpen && now.Sub(b.openedAt) >= b.cooldown {
		s = breakerHalfOpen
	}
	return breakerStateName(s), b.opens
}
