package cluster

// Cluster chaos suite: a real gateway fronting real in-process
// ghsom-serve replicas (internal/serve registries over httptest), with
// replicas killed abruptly, drained, revived, and hot-swapped while a
// client streams detection work through. The invariants under every
// fault: zero failed client requests for shards with a surviving
// replica, byte-identical verdicts versus a single direct node, retries
// bounded by the deadline budget, and killed replicas re-admitted
// through the breaker's half-open probes after revival.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ghsom"
	"ghsom/internal/faultinject"
	"ghsom/internal/kdd"
	"ghsom/internal/leakcheck"
	"ghsom/internal/serve"
	"ghsom/internal/trafficgen"
)

// clusterPipe caches one trained pipeline and its records across the
// chaos tests of this package.
var clusterPipe struct {
	once sync.Once
	pipe *ghsom.Pipeline
	recs []kdd.Record
	err  error
}

func testPipeline(t *testing.T) (*ghsom.Pipeline, []kdd.Record) {
	t.Helper()
	if testing.Short() {
		t.Skip("cluster chaos test; skipped with -short")
	}
	clusterPipe.once.Do(func() {
		recs, err := trafficgen.Generate(trafficgen.Small(71))
		if err != nil {
			clusterPipe.err = err
			return
		}
		cfg := ghsom.DefaultPipelineConfig()
		cfg.Model.EpochsPerGrowth = 3
		cfg.Model.FineTuneEpochs = 3
		cfg.Model.MaxGrowIters = 6
		cfg.Model.MaxDepth = 3
		cfg.TrainCapPerLabel = 800
		clusterPipe.pipe, clusterPipe.err = ghsom.TrainPipeline(recs, cfg)
		clusterPipe.recs = recs
	})
	if clusterPipe.err != nil {
		t.Fatal(clusterPipe.err)
	}
	return clusterPipe.pipe, clusterPipe.recs
}

func ndjson(t *testing.T, recs []kdd.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// wantBytes renders predictions exactly as the serve tier does (one JSON
// document per line), so responses can be compared byte for byte.
func wantBytes(t *testing.T, preds []ghsom.Prediction) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range preds {
		if err := enc.Encode(&preds[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// member is one in-process fleet replica: a real serve.Registry behind
// an httptest server whose connections can be severed abruptly — the
// down flag makes every new request hijack its connection and slam it
// shut, indistinguishable from the process dying mid-exchange.
type member struct {
	reg  *serve.Registry
	srv  *httptest.Server
	down atomic.Bool
}

func (m *member) kill()   { m.down.Store(true); m.srv.CloseClientConnections() }
func (m *member) revive() { m.down.Store(false) }

// startFleet brings up n replicas, each hosting the default model.
func startFleet(t *testing.T, n int, pipe *ghsom.Pipeline) []*member {
	t.Helper()
	fleet := make([]*member, n)
	for i := range fleet {
		m := &member{}
		m.reg = serve.NewRegistry(serve.Config{
			Instance:    fmt.Sprintf("replica-%d", i),
			MaxBatch:    64,
			FlushEvery:  2 * time.Millisecond,
			Parallelism: 2,
		})
		if _, _, err := m.reg.Swap(serve.DefaultModelName, pipe); err != nil {
			t.Fatal(err)
		}
		inner := m.reg.Mux()
		m.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if m.down.Load() {
				if hj, ok := w.(http.Hijacker); ok {
					if conn, _, err := hj.Hijack(); err == nil {
						conn.Close() // abrupt death: no status line, no FIN handshake grace
						return
					}
				}
				panic(http.ErrAbortHandler)
			}
			inner.ServeHTTP(w, r)
		}))
		fleet[i] = m
		t.Cleanup(func() { m.srv.Close(); m.reg.Close() })
	}
	return fleet
}

func fleetURLs(fleet []*member) []string {
	urls := make([]string, len(fleet))
	for i, m := range fleet {
		urls[i] = m.srv.URL
	}
	return urls
}

func memberByURL(fleet []*member, url string) *member {
	for _, m := range fleet {
		if m.srv.URL == url {
			return m
		}
	}
	return nil
}

// startGateway builds a gateway over the fleet with chaos-friendly
// timings and returns it with its HTTP front.
func startGateway(t *testing.T, fleet []*member, mut func(*Config)) (*Gateway, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Replicas:         fleetURLs(fleet),
		Instance:         "gw-chaos",
		Replication:      2,
		MaxRetries:       4,
		RetryBase:        10 * time.Millisecond,
		HealthEvery:      50 * time.Millisecond,
		ProbeTimeout:     time.Second,
		BreakerThreshold: 1,
		BreakerCooldown:  200 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		front.Close()
		g.Close()
		g.client.CloseIdleConnections()
		g.probeClient.CloseIdleConnections()
	})
	g.CheckNow()
	return g, front
}

// detectOnce posts one NDJSON batch through the gateway and returns
// status, body, and the Retry-After header.
func detectOnce(t *testing.T, client *http.Client, frontURL, model string, body []byte, deadlineMs int) (int, []byte, string) {
	t.Helper()
	target := frontURL + "/detect"
	if model != "" {
		target += "?model=" + model
	}
	req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if deadlineMs > 0 {
		req.Header.Set(serve.DeadlineHeader, fmt.Sprint(deadlineMs))
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("client-visible transport error through gateway: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("torn response through gateway: %v", err)
	}
	return resp.StatusCode, raw, resp.Header.Get("Retry-After")
}

// streamPhase fires reqs requests of chunk records each from workers
// goroutines, asserting every response is 200 and byte-identical to the
// direct single-node verdicts. Returns when the phase's workload is
// fully served.
func streamPhase(t *testing.T, client *http.Client, frontURL string, chunks [][]byte, wants [][]byte, workers int) {
	t.Helper()
	var wg sync.WaitGroup
	var failures atomic.Int64
	per := (len(chunks) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, min((w+1)*per, len(chunks))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				status, raw, _ := detectOnce(t, client, frontURL, "", chunks[i], 10_000)
				if status != http.StatusOK {
					failures.Add(1)
					t.Errorf("request %d: status %d body %.120q", i, status, raw)
					continue
				}
				if !bytes.Equal(raw, wants[i]) {
					failures.Add(1)
					t.Errorf("request %d: verdicts not byte-identical to single-node", i)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d failed requests in phase (want zero)", n)
	}
}

// chunkWorkload slices eval records into per-request NDJSON bodies with
// their expected byte-exact responses.
func chunkWorkload(t *testing.T, pipe *ghsom.Pipeline, recs []kdd.Record, nReq, per int) (chunks, wants [][]byte) {
	t.Helper()
	for i := 0; i < nReq; i++ {
		part := recs[(i*per)%(len(recs)-per) : (i*per)%(len(recs)-per)+per]
		preds, err := pipe.DetectAll(part)
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, ndjson(t, part))
		wants = append(wants, wantBytes(t, preds))
	}
	return chunks, wants
}

// TestClusterKillReviveMidStream is the headline drill: three replicas,
// a client streaming detects through the gateway, and the shard primary
// killed abruptly mid-stream, then revived. The client must see zero
// failures and byte-identical verdicts throughout; the gateway must
// absorb the death via retries, open the victim's breaker, route around
// it, and re-admit it through a half-open probe after revival.
func TestClusterKillReviveMidStream(t *testing.T) {
	leakcheck.CheckSlack(t, 4)
	pipe, recs := testPipeline(t)
	fleet := startFleet(t, 3, pipe)
	g, front := startGateway(t, fleet, nil)
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	// The victim is the shard primary for the default model: the member
	// the balancer prefers, guaranteed to be taking traffic when killed.
	shard := g.ring.shard(serve.DefaultModelName, 2)
	victim := memberByURL(fleet, shard[0].url)
	victimRep := shard[0]

	chunks, wants := chunkWorkload(t, pipe, recs, 36, 15)

	// Phase 1: whole fleet up.
	streamPhase(t, client, front.URL, chunks[:12], wants[:12], 3)

	// Phase 2: kill the primary while requests are in flight.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		victim.kill()
	}()
	streamPhase(t, client, front.URL, chunks[12:24], wants[12:24], 3)
	wg.Wait()

	// The death was absorbed: retries happened, the victim's breaker
	// opened, and the checker marked it dead.
	if g.retries.Load() == 0 {
		t.Error("primary killed mid-stream but the gateway never retried")
	}
	if _, opens := victimRep.breaker.snapshot(time.Now()); opens == 0 {
		t.Error("victim breaker never opened despite abrupt connection kills")
	}
	deadline := time.Now().Add(2 * time.Second)
	for victimRep.health.Load() != healthDead && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := victimRep.health.Load(); got != healthDead {
		t.Errorf("victim health = %s after kill, want dead", healthStateName(int(got)))
	}
	sentWhileDead := victimRep.sent.Load()

	// Phase 3: revive. The checker re-classifies it healthy, the breaker
	// half-opens after its cooldown, and a probe request re-admits it.
	victim.revive()
	time.Sleep(300 * time.Millisecond) // > health period + breaker cooldown
	streamPhase(t, client, front.URL, chunks[24:], wants[24:], 3)

	if got := victimRep.health.Load(); got != healthHealthy {
		t.Errorf("victim health = %s after revival, want healthy", healthStateName(int(got)))
	}
	if state, _ := victimRep.breaker.snapshot(time.Now()); state != "closed" {
		t.Errorf("victim breaker = %s after successful probe, want closed", state)
	}
	if victimRep.sent.Load() <= sentWhileDead {
		t.Error("victim received no traffic after revival; breaker did not re-admit it")
	}
	if victimRep.transitions.Load() < 3 {
		t.Errorf("victim health transitions = %d, want >= 3 (unknown→healthy→dead→healthy)", victimRep.transitions.Load())
	}
	roll := g.Rollup(t.Context(), "")
	if roll.Requests < 36 || roll.Retries == 0 {
		t.Errorf("rollup requests/retries = %d/%d", roll.Requests, roll.Retries)
	}
}

// TestClusterDrainRoutesAround verifies graceful-drain integration: a
// draining replica flips its /healthz, the checker reclassifies it
// within one probe period, and new work flows only to its shard
// sibling — zero client-visible failures.
func TestClusterDrainRoutesAround(t *testing.T) {
	leakcheck.CheckSlack(t, 4)
	pipe, recs := testPipeline(t)
	fleet := startFleet(t, 3, pipe)
	g, front := startGateway(t, fleet, nil)
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	shard := g.ring.shard(serve.DefaultModelName, 2)
	draining := memberByURL(fleet, shard[0].url)
	drainingRep := shard[0]

	chunks, wants := chunkWorkload(t, pipe, recs, 16, 10)
	streamPhase(t, client, front.URL, chunks[:8], wants[:8], 2)

	draining.reg.BeginDrain()
	deadline := time.Now().Add(2 * time.Second)
	for drainingRep.health.Load() != healthDraining && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := drainingRep.health.Load(); got != healthDraining {
		t.Fatalf("health = %s after BeginDrain, want draining", healthStateName(int(got)))
	}
	sentAtDrain := drainingRep.sent.Load()
	streamPhase(t, client, front.URL, chunks[8:], wants[8:], 2)
	// Post-drain traffic went to the sibling; the drained replica may
	// have absorbed at most the retried stragglers from the reclassify
	// window, which the retry loop turned into successes elsewhere.
	if got := drainingRep.sent.Load(); got > sentAtDrain+2 {
		t.Errorf("draining replica kept receiving traffic: %d sends after drain", got-sentAtDrain)
	}
}

// TestClusterShardDegradationAndModelFanOut drives the per-shard
// degradation contract with replication 1 — killing a model's only
// owner sheds that model with 503 + Retry-After while other models keep
// serving — and, on the way, the gateway's model distribution: fan-out
// push with per-replica verification against GET /models.
func TestClusterShardDegradationAndModelFanOut(t *testing.T) {
	leakcheck.CheckSlack(t, 4)
	pipe, recs := testPipeline(t)
	fleet := startFleet(t, 3, pipe)
	g, front := startGateway(t, fleet, func(cfg *Config) {
		cfg.Replication = 1
		cfg.MaxRetries = 2
	})
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	// Distribute a second model through the gateway and verify the
	// fan-out reached (and was verified on) every replica.
	var envelope bytes.Buffer
	if err := pipe.Save(&envelope); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(front.URL+"/model?name=secondary", "application/octet-stream", bytes.NewReader(envelope.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sum PushSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !sum.OK || len(sum.Replicas) != 3 {
		t.Fatalf("fan-out push: status %d, summary %+v", resp.StatusCode, sum)
	}
	for _, pr := range sum.Replicas {
		if !pr.Verified || pr.View == nil || pr.View.Name != "secondary" {
			t.Errorf("replica %s push not verified: %+v", pr.Replica, pr)
		}
	}

	// Pick a second model name whose single-owner shard differs from the
	// default model's owner, so one shard can die while the other serves.
	defOwner := g.ring.shard(serve.DefaultModelName, 1)[0]
	altOwner := g.ring.shard("secondary", 1)[0]
	if defOwner == altOwner {
		t.Skipf("default and secondary hash to the same owner; shard isolation not observable here")
	}

	eval := recs[100:130]
	preds, err := pipe.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	body, want := ndjson(t, eval), wantBytes(t, preds)

	// Kill the default model's only owner and wait for the checker.
	memberByURL(fleet, defOwner.url).kill()
	deadline := time.Now().Add(2 * time.Second)
	for defOwner.health.Load() != healthDead && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	status, raw, retryAfter := detectOnce(t, client, front.URL, "", body, 5000)
	if status != http.StatusServiceUnavailable {
		t.Errorf("dead shard: status %d body %.120q, want 503", status, raw)
	}
	if retryAfter == "" {
		t.Error("dead-shard 503 carries no Retry-After")
	}
	// The other shard is untouched: same fleet, same gateway, different
	// model — byte-identical verdicts keep flowing.
	status, raw, _ = detectOnce(t, client, front.URL, "secondary", body, 5000)
	if status != http.StatusOK || !bytes.Equal(raw, want) {
		t.Errorf("surviving shard: status %d, identical=%v — degradation leaked across shards", status, bytes.Equal(raw, want))
	}
	// Gateway stays ready: at least one replica is routable.
	hresp, err := client.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("gateway /healthz = %d with a surviving shard, want 200", hresp.StatusCode)
	}
	if g.shedNoReplica.Load() == 0 {
		t.Error("shedNoReplica counter did not move")
	}
}

// TestClusterSwapUnderLoad rolls a binary envelope to all three replicas
// through the gateway while clients stream detects: the distribution
// satellite's acceptance — zero dropped or torn responses and verdicts
// byte-identical to a single node throughout the roll.
func TestClusterSwapUnderLoad(t *testing.T) {
	leakcheck.CheckSlack(t, 4)
	pipe, recs := testPipeline(t)
	fleet := startFleet(t, 3, pipe)
	_, front := startGateway(t, fleet, func(cfg *Config) { cfg.Replication = 3 })
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	var envelope bytes.Buffer
	if err := pipe.Save(&envelope); err != nil {
		t.Fatal(err)
	}
	chunks, wants := chunkWorkload(t, pipe, recs, 30, 12)

	// Stream in the background; roll the model twice from here while the
	// stream is in flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		streamPhase(t, client, front.URL, chunks, wants, 3)
	}()
	for i := 0; i < 2; i++ {
		time.Sleep(5 * time.Millisecond)
		resp, err := client.Post(front.URL+"/model", "application/octet-stream", bytes.NewReader(envelope.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var sum PushSummary
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !sum.OK {
			t.Fatalf("roll %d: push not verified on all replicas: %+v", i, sum)
		}
	}
	<-done
	// Both rolls landed: every replica's default model swapped twice.
	for i, m := range fleet {
		resp, err := client.Get(m.srv.URL + "/models")
		if err != nil {
			t.Fatal(err)
		}
		var views []serve.ModelView
		if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(views) != 1 || views[0].Swaps < 2 {
			t.Errorf("replica %d models = %+v, want default with >= 2 swaps", i, views)
		}
	}
}

// TestClusterFaultInjectionNetwork drives the injected network faults —
// dial errors, dropped responses, slow replicas — through the gateway's
// transport and checks the retry path absorbs each without any
// client-visible failure.
func TestClusterFaultInjectionNetwork(t *testing.T) {
	leakcheck.CheckSlack(t, 4)
	pipe, recs := testPipeline(t)
	fleet := startFleet(t, 3, pipe)
	_, front := startGateway(t, fleet, func(cfg *Config) {
		cfg.HealthEvery = time.Hour // classify once below; faults then hit only the detect path
		cfg.BreakerThreshold = 2
	})
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	chunks, wants := chunkWorkload(t, pipe, recs, 12, 10)
	spec := fmt.Sprintf("%s=error:2,%s=error:1,%s=latency:20ms:3",
		faultinject.DialError, faultinject.DroppedResponse, faultinject.SlowReplica)
	if err := faultinject.Arm(spec); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()
	streamPhase(t, client, front.URL, chunks, wants, 2)
	if faultinject.Hits(faultinject.DialError) < 2 {
		t.Errorf("dial-error fired %d times, want 2", faultinject.Hits(faultinject.DialError))
	}
	if faultinject.Hits(faultinject.DroppedResponse) < 1 {
		t.Error("dropped-response never fired")
	}
}

// TestClusterGatewayStatsRollup sanity-checks the aggregated /stats
// document over a live fleet.
func TestClusterGatewayStatsRollup(t *testing.T) {
	pipe, recs := testPipeline(t)
	fleet := startFleet(t, 2, pipe)
	_, front := startGateway(t, fleet, nil)
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	chunks, wants := chunkWorkload(t, pipe, recs, 6, 8)
	streamPhase(t, client, front.URL, chunks, wants, 2)

	resp, err := client.Get(front.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var roll Rollup
	if err := json.NewDecoder(resp.Body).Decode(&roll); err != nil {
		t.Fatal(err)
	}
	if roll.Instance != "gw-chaos" || roll.Requests < 6 || len(roll.Replicas) != 2 {
		t.Fatalf("rollup = %+v", roll)
	}
	if roll.Aggregate.Records < int64(6*8) || roll.Aggregate.Routable != 2 {
		t.Errorf("aggregate = %+v, want >= %d records over 2 routable replicas", roll.Aggregate, 6*8)
	}
	for _, st := range roll.Replicas {
		if st.Health != "healthy" || st.Breaker != "closed" || st.Stats == nil {
			t.Errorf("replica status %+v, want healthy/closed with live stats", st)
		}
		if !strings.HasPrefix(st.Instance, "replica-") {
			t.Errorf("replica instance identity %q not propagated", st.Instance)
		}
	}
	// Aggregated model listing reaches both replicas.
	mresp, err := client.Get(front.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var listing []ReplicaModels
	if err := json.NewDecoder(mresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing) != 2 || len(listing[0].Models) != 1 || listing[0].Models[0].Name != serve.DefaultModelName {
		t.Errorf("aggregated /models = %+v", listing)
	}
}
