package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestConfusionBasic(t *testing.T) {
	c := NewConfusion()
	c.Add("normal", "normal")
	c.Add("normal", "dos")
	c.Add("dos", "dos")
	c.Add("dos", "dos")
	c.Add("probe", "normal")

	if c.Total() != 5 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.Count("normal", "dos"); got != 1 {
		t.Errorf("Count(normal,dos) = %d", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.6", got)
	}
	if got := c.Recall("dos"); got != 1 {
		t.Errorf("Recall(dos) = %v", got)
	}
	if got := c.Recall("normal"); got != 0.5 {
		t.Errorf("Recall(normal) = %v", got)
	}
	if got := c.Precision("dos"); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Precision(dos) = %v", got)
	}
	if got := c.TruthTotal("probe"); got != 1 {
		t.Errorf("TruthTotal(probe) = %d", got)
	}
	if got := c.PredictedTotal("normal"); got != 2 {
		t.Errorf("PredictedTotal(normal) = %d", got)
	}
}

func TestConfusionUnknownLabels(t *testing.T) {
	c := NewConfusion()
	c.Add("a", "a")
	if c.Count("zzz", "a") != 0 || c.Count("a", "zzz") != 0 {
		t.Error("unknown labels should count 0")
	}
	if !math.IsNaN(c.Recall("zzz")) {
		t.Error("Recall of unseen truth should be NaN")
	}
	if !math.IsNaN(c.Precision("zzz")) {
		t.Error("Precision of unpredicted label should be NaN")
	}
}

func TestConfusionEmptyAccuracy(t *testing.T) {
	if !math.IsNaN(NewConfusion().Accuracy()) {
		t.Error("empty matrix Accuracy should be NaN")
	}
}

func TestConfusionAddAll(t *testing.T) {
	c := NewConfusion()
	if err := c.AddAll([]string{"a", "b"}, []string{"a", "a"}); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 2 {
		t.Errorf("Total = %d", c.Total())
	}
	if err := c.AddAll([]string{"a"}, []string{"a", "b"}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("mismatch err = %v", err)
	}
}

func TestConfusionF1(t *testing.T) {
	c := NewConfusion()
	// precision 0.5 (1 of 2 predicted), recall 1 (1 of 1 truth)
	c.Add("a", "a")
	c.Add("b", "a")
	f1 := c.F1("a")
	want := 2 * 0.5 * 1 / 1.5
	if math.Abs(f1-want) > 1e-12 {
		t.Errorf("F1 = %v, want %v", f1, want)
	}
}

func TestConfusionMarginalsProperty(t *testing.T) {
	// Sum of truth totals == sum of predicted totals == total.
	c := NewConfusion()
	pairs := [][2]string{{"a", "b"}, {"b", "b"}, {"c", "a"}, {"a", "a"}, {"c", "c"}, {"b", "a"}}
	for _, p := range pairs {
		c.Add(p[0], p[1])
	}
	var tSum, pSum int
	for _, l := range c.Labels() {
		tSum += c.TruthTotal(l)
		pSum += c.PredictedTotal(l)
	}
	if tSum != c.Total() || pSum != c.Total() {
		t.Errorf("marginals %d/%d != total %d", tSum, pSum, c.Total())
	}
}

func TestConfusionString(t *testing.T) {
	c := NewConfusion()
	c.Add("dos", "normal")
	s := c.String()
	if !strings.Contains(s, "dos") || !strings.Contains(s, "normal") {
		t.Errorf("String missing labels: %q", s)
	}
}

func TestConfusionSeedLabelsStable(t *testing.T) {
	c := NewConfusion("normal", "dos", "probe")
	labels := c.Labels()
	if labels[0] != "normal" || labels[1] != "dos" || labels[2] != "probe" {
		t.Errorf("seed label order not preserved: %v", labels)
	}
}

func TestBinaryOutcome(t *testing.T) {
	var o BinaryOutcome
	o.AddBinary(true, true)   // TP
	o.AddBinary(true, true)   // TP
	o.AddBinary(true, false)  // FN
	o.AddBinary(false, true)  // FP
	o.AddBinary(false, false) // TN
	o.AddBinary(false, false) // TN

	if o.TP != 2 || o.FN != 1 || o.FP != 1 || o.TN != 2 {
		t.Fatalf("cells = %+v", o)
	}
	if got := o.DetectionRate(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("DR = %v", got)
	}
	if got := o.FalsePositiveRate(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("FPR = %v", got)
	}
	if got := o.Precision(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	if got := o.Accuracy(); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if !strings.Contains(o.String(), "dr=") {
		t.Error("String malformed")
	}
}

func TestBinaryOutcomeDegenerate(t *testing.T) {
	var o BinaryOutcome
	if !math.IsNaN(o.DetectionRate()) || !math.IsNaN(o.FalsePositiveRate()) ||
		!math.IsNaN(o.Precision()) || !math.IsNaN(o.Accuracy()) || !math.IsNaN(o.F1()) {
		t.Error("empty outcome should be all-NaN")
	}
}

func TestROCPerfectDetector(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []bool{true, true, false, false}
	curve, err := ROC(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	auc := AUC(curve)
	if math.Abs(auc-1) > 1e-12 {
		t.Errorf("perfect detector AUC = %v, want 1", auc)
	}
	// Curve starts at (0,0) and ends at (1,1).
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("curve start = %+v", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve end = %+v", last)
	}
}

func TestROCRandomDetector(t *testing.T) {
	// Alternating scores with alternating truth: AUC ~ 0.5.
	var scores []float64
	var truth []bool
	for i := 0; i < 100; i++ {
		scores = append(scores, float64(i))
		truth = append(truth, i%2 == 0)
	}
	curve, err := ROC(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	auc := AUC(curve)
	if math.Abs(auc-0.5) > 0.05 {
		t.Errorf("random detector AUC = %v, want ~0.5", auc)
	}
}

func TestROCInvertedDetector(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	truth := []bool{true, true, false, false}
	curve, err := ROC(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(curve); math.Abs(auc) > 1e-12 {
		t.Errorf("inverted detector AUC = %v, want 0", auc)
	}
}

func TestROCTiesHandled(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	truth := []bool{true, false, true, false}
	curve, err := ROC(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	// All ties: single step from (0,0) to (1,1); AUC 0.5.
	if auc := AUC(curve); math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("all-ties AUC = %v", auc)
	}
	if len(curve) != 2 {
		t.Errorf("all-ties curve has %d points, want 2", len(curve))
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC([]float64{1}, []bool{true, false}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("length mismatch err = %v", err)
	}
	if _, err := ROC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("single-class ROC accepted")
	}
}

func TestROCMonotonicity(t *testing.T) {
	scores := []float64{5, 4, 4, 3, 2, 2, 1, 0.5, 0.2, 0.1}
	truth := []bool{true, true, false, true, false, true, false, false, true, false}
	curve, err := ROC(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
	}
}

func TestAUCDegenerate(t *testing.T) {
	if !math.IsNaN(AUC(nil)) || !math.IsNaN(AUC([]ROCPoint{{}})) {
		t.Error("AUC of short curve should be NaN")
	}
}

func TestOperatingPoint(t *testing.T) {
	curve := []ROCPoint{
		{Threshold: math.Inf(1), FPR: 0, TPR: 0},
		{Threshold: 0.9, FPR: 0.01, TPR: 0.6},
		{Threshold: 0.5, FPR: 0.05, TPR: 0.9},
		{Threshold: 0.1, FPR: 0.5, TPR: 0.99},
	}
	p := OperatingPoint(curve, 0.1)
	if p.TPR != 0.9 || p.Threshold != 0.5 {
		t.Errorf("OperatingPoint(0.1) = %+v", p)
	}
	p = OperatingPoint(curve, 0.001)
	if p.TPR != 0 {
		t.Errorf("OperatingPoint(0.001) = %+v, want origin", p)
	}
}
