package metrics

import (
	"fmt"
	"math"
	"sort"
)

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct {
	// Threshold is the score cutoff: scores >= Threshold predict attack.
	Threshold float64
	// Recall is the detection rate at this threshold.
	Recall float64
	// Precision is the attack-prediction precision at this threshold.
	Precision float64
}

// PR computes the precision-recall curve for scores where higher means
// more anomalous. The curve is returned in increasing-recall order. It
// requires at least one positive.
func PR(scores []float64, truthAttack []bool) ([]PRPoint, error) {
	if len(scores) != len(truthAttack) {
		return nil, fmt.Errorf("%d scores vs %d truths: %w", len(scores), len(truthAttack), ErrLengthMismatch)
	}
	var pos int
	for _, a := range truthAttack {
		if a {
			pos++
		}
	}
	if pos == 0 {
		return nil, fmt.Errorf("metrics: PR needs at least one positive")
	}
	type scored struct {
		s      float64
		attack bool
	}
	rows := make([]scored, len(scores))
	for i := range scores {
		rows[i] = scored{scores[i], truthAttack[i]}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].s > rows[j].s })

	var points []PRPoint
	var tp, fp int
	for i := 0; i < len(rows); {
		j := i
		for j < len(rows) && rows[j].s == rows[i].s {
			if rows[j].attack {
				tp++
			} else {
				fp++
			}
			j++
		}
		points = append(points, PRPoint{
			Threshold: rows[i].s,
			Recall:    float64(tp) / float64(pos),
			Precision: float64(tp) / float64(tp+fp),
		})
		i = j
	}
	return points, nil
}

// AveragePrecision returns the area under the PR curve using the step
// interpolation standard in IR evaluation: sum over recall increments of
// the precision at that threshold.
func AveragePrecision(curve []PRPoint) float64 {
	if len(curve) == 0 {
		return math.NaN()
	}
	var ap, prevRecall float64
	for _, p := range curve {
		ap += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return ap
}

// MCC returns the Matthews correlation coefficient of a binary outcome —
// the balanced single-number summary that stays meaningful under the
// heavy class skew of intrusion data. Returns 0 when any marginal is
// empty (the conventional limit).
func MCC(o BinaryOutcome) float64 {
	tp, fp, tn, fn := float64(o.TP), float64(o.FP), float64(o.TN), float64(o.FN)
	denom := math.Sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
	if denom == 0 {
		return 0
	}
	return (tp*tn - fp*fn) / denom
}
