package metrics

import (
	"math"
	"testing"
)

func TestPRPerfectDetector(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []bool{true, true, false, false}
	curve, err := PR(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ap := AveragePrecision(curve); math.Abs(ap-1) > 1e-12 {
		t.Errorf("perfect detector AP = %v, want 1", ap)
	}
	// First point: recall 0.5, precision 1.
	if curve[0].Recall != 0.5 || curve[0].Precision != 1 {
		t.Errorf("first point = %+v", curve[0])
	}
	// Last point reaches full recall.
	if curve[len(curve)-1].Recall != 1 {
		t.Errorf("final recall = %v", curve[len(curve)-1].Recall)
	}
}

func TestPRInvertedDetector(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	truth := []bool{true, true, false, false}
	curve, err := PR(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	ap := AveragePrecision(curve)
	if ap > 0.5 {
		t.Errorf("inverted detector AP = %v, want low", ap)
	}
}

func TestPRTies(t *testing.T) {
	scores := []float64{1, 1, 1, 1}
	truth := []bool{true, false, true, false}
	curve, err := PR(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 1 {
		t.Fatalf("all-ties curve has %d points", len(curve))
	}
	if curve[0].Recall != 1 || curve[0].Precision != 0.5 {
		t.Errorf("tie point = %+v", curve[0])
	}
	if ap := AveragePrecision(curve); math.Abs(ap-0.5) > 1e-12 {
		t.Errorf("tie AP = %v", ap)
	}
}

func TestPRErrors(t *testing.T) {
	if _, err := PR([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PR([]float64{1, 2}, []bool{false, false}); err == nil {
		t.Error("no-positive input accepted")
	}
}

func TestPRRecallMonotone(t *testing.T) {
	scores := []float64{9, 8, 7, 6, 5, 4, 3, 2, 1}
	truth := []bool{true, false, true, true, false, true, false, false, true}
	curve, err := PR(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Fatal("recall not monotone")
		}
	}
}

func TestAveragePrecisionEmpty(t *testing.T) {
	if !math.IsNaN(AveragePrecision(nil)) {
		t.Error("empty AP should be NaN")
	}
}

func TestMCC(t *testing.T) {
	tests := []struct {
		name string
		o    BinaryOutcome
		want float64
		tol  float64
	}{
		{"perfect", BinaryOutcome{TP: 50, TN: 50}, 1, 0},
		{"inverted", BinaryOutcome{FP: 50, FN: 50}, -1, 0},
		{"balanced random", BinaryOutcome{TP: 25, FP: 25, TN: 25, FN: 25}, 0, 0},
		{"empty", BinaryOutcome{}, 0, 0},
		{"one marginal empty", BinaryOutcome{TP: 10, FN: 5}, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MCC(tt.o); math.Abs(got-tt.want) > tt.tol {
				t.Errorf("MCC = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMCCKnownValue(t *testing.T) {
	o := BinaryOutcome{TP: 90, FN: 10, FP: 5, TN: 95}
	got := MCC(o)
	// Direct computation.
	want := (90.0*95 - 5.0*10) / math.Sqrt(95*100*100*105)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MCC = %v, want %v", got, want)
	}
	if got < 0.8 {
		t.Errorf("strong detector MCC = %v, want high", got)
	}
}
