// Package metrics implements the detection-quality measures reported by
// the experiments: confusion matrices over arbitrary label sets, the
// binary detection measures of the IDS literature (detection rate, false
// positive rate, precision, F1), and ROC curves with AUC.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrLengthMismatch is returned when prediction and truth slices differ in
// length.
var ErrLengthMismatch = errors.New("metrics: prediction/truth length mismatch")

// Confusion is a confusion matrix over a dynamic label set.
type Confusion struct {
	labels []string
	index  map[string]int
	// counts[t][p] = number of records with truth t predicted as p.
	counts [][]int
	total  int
}

// NewConfusion returns an empty confusion matrix. Labels are added on
// first use, so callers need not pre-declare the label set; pass seed
// labels to fix report ordering.
func NewConfusion(seedLabels ...string) *Confusion {
	c := &Confusion{index: make(map[string]int)}
	for _, l := range seedLabels {
		c.labelIndex(l)
	}
	return c
}

func (c *Confusion) labelIndex(label string) int {
	if i, ok := c.index[label]; ok {
		return i
	}
	i := len(c.labels)
	c.labels = append(c.labels, label)
	c.index[label] = i
	for r := range c.counts {
		c.counts[r] = append(c.counts[r], 0)
	}
	c.counts = append(c.counts, make([]int, len(c.labels)))
	return i
}

// Add records one (truth, predicted) observation.
func (c *Confusion) Add(truth, predicted string) {
	t := c.labelIndex(truth)
	p := c.labelIndex(predicted)
	c.counts[t][p]++
	c.total++
}

// AddAll records a batch of observations.
func (c *Confusion) AddAll(truth, predicted []string) error {
	if len(truth) != len(predicted) {
		return fmt.Errorf("%d truths vs %d predictions: %w", len(truth), len(predicted), ErrLengthMismatch)
	}
	for i := range truth {
		c.Add(truth[i], predicted[i])
	}
	return nil
}

// Labels returns the label set in first-use order.
func (c *Confusion) Labels() []string {
	out := make([]string, len(c.labels))
	copy(out, c.labels)
	return out
}

// Total returns the number of observations.
func (c *Confusion) Total() int { return c.total }

// Count returns counts[truth][predicted]; unknown labels yield 0.
func (c *Confusion) Count(truth, predicted string) int {
	t, ok := c.index[truth]
	if !ok {
		return 0
	}
	p, ok := c.index[predicted]
	if !ok {
		return 0
	}
	return c.counts[t][p]
}

// TruthTotal returns the number of observations whose truth is label.
func (c *Confusion) TruthTotal(label string) int {
	t, ok := c.index[label]
	if !ok {
		return 0
	}
	var n int
	for _, v := range c.counts[t] {
		n += v
	}
	return n
}

// PredictedTotal returns the number of observations predicted as label.
func (c *Confusion) PredictedTotal(label string) int {
	p, ok := c.index[label]
	if !ok {
		return 0
	}
	var n int
	for t := range c.counts {
		n += c.counts[t][p]
	}
	return n
}

// Accuracy returns the fraction of observations on the diagonal.
func (c *Confusion) Accuracy() float64 {
	if c.total == 0 {
		return math.NaN()
	}
	var correct int
	for i := range c.labels {
		correct += c.counts[i][i]
	}
	return float64(correct) / float64(c.total)
}

// Recall returns the per-class recall (diagonal / truth total) for label,
// NaN when the label never occurs as truth.
func (c *Confusion) Recall(label string) float64 {
	tt := c.TruthTotal(label)
	if tt == 0 {
		return math.NaN()
	}
	return float64(c.Count(label, label)) / float64(tt)
}

// Precision returns the per-class precision (diagonal / predicted total)
// for label, NaN when the label is never predicted.
func (c *Confusion) Precision(label string) float64 {
	pt := c.PredictedTotal(label)
	if pt == 0 {
		return math.NaN()
	}
	return float64(c.Count(label, label)) / float64(pt)
}

// F1 returns the harmonic mean of precision and recall for label.
func (c *Confusion) F1(label string) float64 {
	p, r := c.Precision(label), c.Recall(label)
	if math.IsNaN(p) || math.IsNaN(r) || p+r == 0 {
		return math.NaN()
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix as an aligned table (truth rows, predicted
// columns).
func (c *Confusion) String() string {
	labels := c.Labels()
	sort.Strings(labels)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "truth\\pred")
	for _, p := range labels {
		fmt.Fprintf(&b, "%10s", p)
	}
	b.WriteByte('\n')
	for _, t := range labels {
		fmt.Fprintf(&b, "%-12s", t)
		for _, p := range labels {
			fmt.Fprintf(&b, "%10d", c.Count(t, p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BinaryOutcome tallies the binary (attack vs normal) detection outcome.
type BinaryOutcome struct {
	// TP, FP, TN, FN are the four cells of the binary confusion matrix,
	// with "attack" as the positive class.
	TP, FP, TN, FN int
}

// AddBinary tallies one observation into the outcome.
func (o *BinaryOutcome) AddBinary(truthAttack, predictedAttack bool) {
	switch {
	case truthAttack && predictedAttack:
		o.TP++
	case truthAttack && !predictedAttack:
		o.FN++
	case !truthAttack && predictedAttack:
		o.FP++
	default:
		o.TN++
	}
}

// Total returns the number of observations.
func (o BinaryOutcome) Total() int { return o.TP + o.FP + o.TN + o.FN }

// DetectionRate returns TP/(TP+FN) — recall of the attack class, the
// headline IDS number. NaN with no positives.
func (o BinaryOutcome) DetectionRate() float64 {
	if o.TP+o.FN == 0 {
		return math.NaN()
	}
	return float64(o.TP) / float64(o.TP+o.FN)
}

// FalsePositiveRate returns FP/(FP+TN). NaN with no negatives.
func (o BinaryOutcome) FalsePositiveRate() float64 {
	if o.FP+o.TN == 0 {
		return math.NaN()
	}
	return float64(o.FP) / float64(o.FP+o.TN)
}

// Precision returns TP/(TP+FP). NaN with no positive predictions.
func (o BinaryOutcome) Precision() float64 {
	if o.TP+o.FP == 0 {
		return math.NaN()
	}
	return float64(o.TP) / float64(o.TP+o.FP)
}

// Accuracy returns (TP+TN)/total. NaN with no observations.
func (o BinaryOutcome) Accuracy() float64 {
	if o.Total() == 0 {
		return math.NaN()
	}
	return float64(o.TP+o.TN) / float64(o.Total())
}

// F1 returns the harmonic mean of precision and detection rate.
func (o BinaryOutcome) F1() float64 {
	p, r := o.Precision(), o.DetectionRate()
	if math.IsNaN(p) || math.IsNaN(r) || p+r == 0 {
		return math.NaN()
	}
	return 2 * p * r / (p + r)
}

// String renders the outcome as a single line.
func (o BinaryOutcome) String() string {
	return fmt.Sprintf("acc=%.4f dr=%.4f fpr=%.4f prec=%.4f f1=%.4f (tp=%d fp=%d tn=%d fn=%d)",
		o.Accuracy(), o.DetectionRate(), o.FalsePositiveRate(), o.Precision(), o.F1(),
		o.TP, o.FP, o.TN, o.FN)
}
