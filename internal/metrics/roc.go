package metrics

import (
	"fmt"
	"math"
	"sort"
)

// ROCPoint is one operating point of a detector: the false positive rate
// and true positive rate achieved at a given score threshold.
type ROCPoint struct {
	// Threshold is the score cutoff: scores >= Threshold predict attack.
	Threshold float64
	// FPR is the false positive rate at this threshold.
	FPR float64
	// TPR is the true positive rate (detection rate) at this threshold.
	TPR float64
}

// ROC computes the full ROC curve for scores where higher means more
// anomalous. truthAttack[i] reports whether record i is a true attack.
// The curve is returned in increasing-FPR order, starting at (0,0) and
// ending at (1,1). It requires at least one positive and one negative.
func ROC(scores []float64, truthAttack []bool) ([]ROCPoint, error) {
	if len(scores) != len(truthAttack) {
		return nil, fmt.Errorf("%d scores vs %d truths: %w", len(scores), len(truthAttack), ErrLengthMismatch)
	}
	var pos, neg int
	for _, a := range truthAttack {
		if a {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("metrics: ROC needs both classes (pos=%d neg=%d)", pos, neg)
	}
	type scored struct {
		s      float64
		attack bool
	}
	rows := make([]scored, len(scores))
	for i := range scores {
		rows[i] = scored{scores[i], truthAttack[i]}
	}
	// Descending score: as the threshold lowers, TP and FP accumulate.
	sort.Slice(rows, func(i, j int) bool { return rows[i].s > rows[j].s })

	points := []ROCPoint{{Threshold: math.Inf(1), FPR: 0, TPR: 0}}
	var tp, fp int
	for i := 0; i < len(rows); {
		// Process ties together so the curve is threshold-consistent.
		j := i
		for j < len(rows) && rows[j].s == rows[i].s {
			if rows[j].attack {
				tp++
			} else {
				fp++
			}
			j++
		}
		points = append(points, ROCPoint{
			Threshold: rows[i].s,
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
		})
		i = j
	}
	return points, nil
}

// AUC returns the area under an ROC curve via the trapezoid rule. The
// curve must be in increasing-FPR order (as returned by ROC).
func AUC(curve []ROCPoint) float64 {
	if len(curve) < 2 {
		return math.NaN()
	}
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// OperatingPoint returns the curve point with the largest TPR subject to
// FPR <= maxFPR, which is how the experiments pick a threshold for a
// target false-alarm budget. Returns the (0,0) point if nothing
// qualifies.
func OperatingPoint(curve []ROCPoint, maxFPR float64) ROCPoint {
	best := ROCPoint{Threshold: math.Inf(1)}
	for _, p := range curve {
		if p.FPR <= maxFPR && p.TPR >= best.TPR {
			best = p
		}
	}
	return best
}
