package flowstats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func mustObserve(t *testing.T, tr *Tracker, c Conn) Derived {
	t.Helper()
	d, err := tr.Observe(c)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFirstConnection(t *testing.T) {
	tr := NewTracker()
	d := mustObserve(t, tr, Conn{Time: 0, SrcHost: 1, DstHost: 2, SrcPort: 40000, Service: "http", Flag: "SF"})
	if d.Count != 1 || d.SrvCount != 1 {
		t.Errorf("counts = %v/%v, want 1/1", d.Count, d.SrvCount)
	}
	if d.SameSrvRate != 1 || d.DiffSrvRate != 0 {
		t.Errorf("srv rates = %v/%v", d.SameSrvRate, d.DiffSrvRate)
	}
	if d.SerrorRate != 0 || d.RerrorRate != 0 {
		t.Errorf("error rates = %v/%v", d.SerrorRate, d.RerrorRate)
	}
	if d.DstHostCount != 1 || d.DstHostSrvCount != 1 {
		t.Errorf("host counts = %v/%v", d.DstHostCount, d.DstHostSrvCount)
	}
	if d.DstHostSameSrcPortRate != 1 {
		t.Errorf("same src port rate = %v, want 1 (only itself)", d.DstHostSameSrcPortRate)
	}
}

func TestTimeWindowCounting(t *testing.T) {
	tr := NewTracker()
	base := Conn{SrcHost: 1, DstHost: 2, SrcPort: 40000, Service: "http", Flag: "SF"}
	for i := 0; i < 5; i++ {
		c := base
		c.Time = float64(i) * 0.1
		mustObserve(t, tr, c)
	}
	c := base
	c.Time = 0.5
	d := mustObserve(t, tr, c)
	if d.Count != 6 {
		t.Errorf("Count = %v, want 6", d.Count)
	}
	// A connection to a different host shares the service window only.
	c2 := Conn{Time: 0.6, SrcHost: 1, DstHost: 9, SrcPort: 40001, Service: "http", Flag: "SF"}
	d2 := mustObserve(t, tr, c2)
	if d2.Count != 1 {
		t.Errorf("different-host Count = %v, want 1", d2.Count)
	}
	if d2.SrvCount != 7 {
		t.Errorf("SrvCount = %v, want 7", d2.SrvCount)
	}
	if d2.SrvDiffHostRate <= 0.8 {
		t.Errorf("SrvDiffHostRate = %v, want high", d2.SrvDiffHostRate)
	}
}

func TestTimeWindowEviction(t *testing.T) {
	tr := NewTracker()
	base := Conn{SrcHost: 1, DstHost: 2, SrcPort: 40000, Service: "http", Flag: "SF"}
	c := base
	c.Time = 0
	mustObserve(t, tr, c)
	// 2.5 seconds later the first connection is outside the 2s window.
	c = base
	c.Time = 2.5
	d := mustObserve(t, tr, c)
	if d.Count != 1 {
		t.Errorf("Count after window expiry = %v, want 1", d.Count)
	}
	// Exactly at the boundary (cutoff = Time - 2): a connection at t=0.5
	// is included when the probe is at 2.5.
	c = base
	c.Time = 2.5
	d = mustObserve(t, tr, c)
	if d.Count != 2 {
		t.Errorf("boundary Count = %v, want 2", d.Count)
	}
}

func TestSynFloodSignature(t *testing.T) {
	// A neptune-style flood: many S0 connections to one host/service must
	// produce high count and serror_rate ~ 1.
	tr := NewTracker()
	for i := 0; i < 50; i++ {
		c := Conn{
			Time: float64(i) * 0.01, SrcHost: 100 + i, DstHost: 7,
			SrcPort: 30000 + i, Service: "private", Flag: "S0",
		}
		mustObserve(t, tr, c)
	}
	d := mustObserve(t, tr, Conn{Time: 0.5, SrcHost: 999, DstHost: 7, SrcPort: 12345, Service: "private", Flag: "S0"})
	if d.Count < 50 {
		t.Errorf("flood Count = %v", d.Count)
	}
	if d.SerrorRate != 1 {
		t.Errorf("flood SerrorRate = %v, want 1", d.SerrorRate)
	}
	if d.DstHostSerrorRate != 1 {
		t.Errorf("flood DstHostSerrorRate = %v, want 1", d.DstHostSerrorRate)
	}
	if d.SameSrvRate != 1 {
		t.Errorf("flood SameSrvRate = %v", d.SameSrvRate)
	}
}

func TestPortScanSignature(t *testing.T) {
	// A portsweep: one source probing many services on one host with REJ.
	tr := NewTracker()
	services := []string{"http", "ftp", "telnet", "smtp", "pop_3", "imap4", "ssh", "finger"}
	for i := 0; i < 40; i++ {
		c := Conn{
			Time: float64(i) * 0.02, SrcHost: 5, DstHost: 7,
			SrcPort: 50000 + i, Service: services[i%len(services)], Flag: "REJ",
		}
		mustObserve(t, tr, c)
	}
	d := mustObserve(t, tr, Conn{Time: 0.9, SrcHost: 5, DstHost: 7, SrcPort: 50100, Service: "auth", Flag: "REJ"})
	if d.RerrorRate < 0.9 {
		t.Errorf("scan RerrorRate = %v, want ~1", d.RerrorRate)
	}
	if d.DiffSrvRate < 0.9 {
		t.Errorf("scan DiffSrvRate = %v, want ~1 (every service different)", d.DiffSrvRate)
	}
	if d.DstHostDiffSrvRate < 0.8 {
		t.Errorf("scan DstHostDiffSrvRate = %v, want high", d.DstHostDiffSrvRate)
	}
}

func TestHostWindowCap(t *testing.T) {
	tr := NewTracker()
	// 150 connections to one host, spread beyond the time window so only
	// the host window sees them all.
	for i := 0; i < 150; i++ {
		c := Conn{Time: float64(i), SrcHost: 1, DstHost: 2, SrcPort: 40000, Service: "http", Flag: "SF"}
		mustObserve(t, tr, c)
	}
	d := mustObserve(t, tr, Conn{Time: 151, SrcHost: 1, DstHost: 2, SrcPort: 40000, Service: "http", Flag: "SF"})
	if d.DstHostCount != HostWindow {
		t.Errorf("DstHostCount = %v, want capped at %v", d.DstHostCount, HostWindow)
	}
}

func TestHostWindowIsPerHost(t *testing.T) {
	tr := NewTracker()
	mustObserve(t, tr, Conn{Time: 0, SrcHost: 1, DstHost: 2, SrcPort: 1, Service: "http", Flag: "SF"})
	mustObserve(t, tr, Conn{Time: 1, SrcHost: 1, DstHost: 3, SrcPort: 1, Service: "smtp", Flag: "SF"})
	d := mustObserve(t, tr, Conn{Time: 2, SrcHost: 1, DstHost: 2, SrcPort: 1, Service: "http", Flag: "SF"})
	if d.DstHostCount != 2 {
		t.Errorf("DstHostCount = %v, want 2 (host 3 is separate)", d.DstHostCount)
	}
	if d.DstHostSameSrvRate != 1 {
		t.Errorf("DstHostSameSrvRate = %v", d.DstHostSameSrvRate)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	tr := NewTracker()
	mustObserve(t, tr, Conn{Time: 5, Service: "http", Flag: "SF"})
	if _, err := tr.Observe(Conn{Time: 4, Service: "http", Flag: "SF"}); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("out-of-order err = %v, want ErrOutOfOrder", err)
	}
	// Equal timestamps are fine.
	if _, err := tr.Observe(Conn{Time: 5, Service: "http", Flag: "SF"}); err != nil {
		t.Errorf("equal timestamp rejected: %v", err)
	}
}

func TestReset(t *testing.T) {
	tr := NewTracker()
	mustObserve(t, tr, Conn{Time: 10, SrcHost: 1, DstHost: 2, Service: "http", Flag: "SF"})
	tr.Reset()
	// After reset, earlier timestamps are fine and windows are empty.
	d := mustObserve(t, tr, Conn{Time: 0, SrcHost: 1, DstHost: 2, Service: "http", Flag: "SF"})
	if d.Count != 1 || d.DstHostCount != 1 {
		t.Errorf("after Reset counts = %v/%v, want 1/1", d.Count, d.DstHostCount)
	}
}

func TestFlagClassifiers(t *testing.T) {
	for _, f := range []string{"S0", "S1", "S2", "S3"} {
		if !IsSynError(f) {
			t.Errorf("IsSynError(%q) = false", f)
		}
	}
	for _, f := range []string{"SF", "REJ", "RSTO", "SH", "OTH", ""} {
		if IsSynError(f) {
			t.Errorf("IsSynError(%q) = true", f)
		}
	}
	if !IsRejError("REJ") || IsRejError("SF") || IsRejError("S0") {
		t.Error("IsRejError misclassifies")
	}
}

func TestPropRatesAlwaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	tr := NewTracker()
	flags := []string{"SF", "S0", "REJ", "RSTO", "SH", "S1"}
	services := []string{"http", "smtp", "private", "ecr_i"}
	tm := 0.0
	for i := 0; i < 5000; i++ {
		tm += rng.Float64() * 0.05
		c := Conn{
			Time:    tm,
			SrcHost: rng.Intn(20),
			DstHost: rng.Intn(10),
			SrcPort: 1024 + rng.Intn(60000),
			Service: services[rng.Intn(len(services))],
			Flag:    flags[rng.Intn(len(flags))],
		}
		d, err := tr.Observe(c)
		if err != nil {
			t.Fatal(err)
		}
		rates := []float64{
			d.SerrorRate, d.SrvSerrorRate, d.RerrorRate, d.SrvRerrorRate,
			d.SameSrvRate, d.DiffSrvRate, d.SrvDiffHostRate,
			d.DstHostSameSrvRate, d.DstHostDiffSrvRate, d.DstHostSameSrcPortRate,
			d.DstHostSrvDiffHostRate, d.DstHostSerrorRate, d.DstHostSrvSerrorRate,
			d.DstHostRerrorRate, d.DstHostSrvRerrorRate,
		}
		for ri, r := range rates {
			if r < 0 || r > 1 || math.IsNaN(r) {
				t.Fatalf("iteration %d rate %d = %v out of range", i, ri, r)
			}
		}
		if d.Count < 1 || d.SrvCount < 1 || d.DstHostCount < 1 {
			t.Fatalf("iteration %d: counts must include current conn", i)
		}
		if d.SameSrvRate+d.DiffSrvRate > 1+1e-9 {
			t.Fatalf("iteration %d: same+diff srv rate = %v", i, d.SameSrvRate+d.DiffSrvRate)
		}
		if d.DstHostSrvCount > d.DstHostCount {
			t.Fatalf("iteration %d: srv count exceeds host count", i)
		}
	}
}

func TestPropCompactionPreservesCounts(t *testing.T) {
	// Drive enough volume through one tracker to trigger slice compaction
	// and verify window counts stay exact against a naive recomputation.
	rng := rand.New(rand.NewSource(21))
	tr := NewTracker()
	var all []Conn
	tm := 0.0
	for i := 0; i < 20000; i++ {
		tm += 0.001
		c := Conn{
			Time: tm, SrcHost: rng.Intn(5), DstHost: rng.Intn(3),
			SrcPort: rng.Intn(100), Service: "http", Flag: "SF",
		}
		all = append(all, c)
		d, err := tr.Observe(c)
		if err != nil {
			t.Fatal(err)
		}
		if i%5000 == 4999 {
			// Naive count for cross-checking.
			var naive int
			for _, p := range all {
				if p.Time >= c.Time-TimeWindow && p.DstHost == c.DstHost {
					naive++
				}
			}
			if int(d.Count) != naive {
				t.Fatalf("iteration %d: Count = %v, naive %d", i, d.Count, naive)
			}
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	tr := NewTracker()
	conns := make([]Conn, 10000)
	tm := 0.0
	for i := range conns {
		tm += 0.002
		conns[i] = Conn{
			Time: tm, SrcHost: rng.Intn(50), DstHost: rng.Intn(20),
			SrcPort: rng.Intn(60000), Service: "http", Flag: "SF",
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := conns[i%len(conns)]
		c.Time = float64(i) * 0.002
		if _, err := tr.Observe(c); err != nil {
			b.Fatal(err)
		}
	}
}
