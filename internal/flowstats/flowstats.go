// Package flowstats computes the derived traffic features of the KDD-99
// schema from a time-ordered stream of raw connection events: the nine
// time-based features over a two-second sliding window (count, srv_count,
// serror_rate, ...) and the ten host-based features over a window of the
// last hundred connections to the same destination host (dst_host_*).
//
// This is the part of the original KDD feature pipeline (derived from Bro
// logs) that turns per-connection observations into the contextual
// statistics the detectors actually cluster on: a SYN flood is invisible in
// a single connection record but unmistakable in count/serror_rate.
package flowstats

import (
	"errors"
	"fmt"
)

// TimeWindow is the KDD time-based feature window in seconds.
const TimeWindow = 2.0

// HostWindow is the KDD host-based feature window in connections.
const HostWindow = 100

// ErrOutOfOrder is returned when a connection is observed with a timestamp
// earlier than a previously observed one.
var ErrOutOfOrder = errors.New("flowstats: connections must arrive in time order")

// Conn is one raw connection event, the input to the tracker. It carries
// only the fields the derived features depend on.
type Conn struct {
	// Time is the connection start time in seconds since the trace start.
	Time float64
	// SrcHost and DstHost identify the endpoints (opaque IDs).
	SrcHost, DstHost int
	// SrcPort is the source port (used by dst_host_same_src_port_rate).
	SrcPort int
	// Service is the destination service name.
	Service string
	// Flag is the KDD connection-status flag (SF, S0, REJ, ...).
	Flag string
}

// Derived holds the 19 derived features for one connection: the nine
// time-window features and the ten host-window features.
type Derived struct {
	// Count is connections to the same destination host in the past two
	// seconds, including this one.
	Count float64
	// SrvCount is connections to the same service in the past two seconds,
	// including this one.
	SrvCount float64
	// SerrorRate is the SYN-error fraction of Count.
	SerrorRate float64
	// SrvSerrorRate is the SYN-error fraction of SrvCount.
	SrvSerrorRate float64
	// RerrorRate is the REJ fraction of Count.
	RerrorRate float64
	// SrvRerrorRate is the REJ fraction of SrvCount.
	SrvRerrorRate float64
	// SameSrvRate is the same-service fraction of Count.
	SameSrvRate float64
	// DiffSrvRate is the different-service fraction of Count.
	DiffSrvRate float64
	// SrvDiffHostRate is the different-host fraction of SrvCount.
	SrvDiffHostRate float64

	// DstHostCount is the size of the host window (up to HostWindow).
	DstHostCount float64
	// DstHostSrvCount is same-service connections in the host window.
	DstHostSrvCount float64
	// DstHostSameSrvRate is DstHostSrvCount / DstHostCount.
	DstHostSameSrvRate float64
	// DstHostDiffSrvRate is 1 - DstHostSameSrvRate.
	DstHostDiffSrvRate float64
	// DstHostSameSrcPortRate is the same-source-port fraction in the host
	// window.
	DstHostSameSrcPortRate float64
	// DstHostSrvDiffHostRate is the fraction of same-service connections
	// in the host window that came from a different source host.
	DstHostSrvDiffHostRate float64
	// DstHostSerrorRate is the SYN-error fraction in the host window.
	DstHostSerrorRate float64
	// DstHostSrvSerrorRate is the SYN-error fraction of same-service
	// connections in the host window.
	DstHostSrvSerrorRate float64
	// DstHostRerrorRate is the REJ fraction in the host window.
	DstHostRerrorRate float64
	// DstHostSrvRerrorRate is the REJ fraction of same-service connections
	// in the host window.
	DstHostSrvRerrorRate float64
}

// IsSynError reports whether flag indicates a half-open connection (the
// KDD "serror" condition).
func IsSynError(flag string) bool {
	switch flag {
	case "S0", "S1", "S2", "S3":
		return true
	default:
		return false
	}
}

// IsRejError reports whether flag indicates a rejected connection (the
// KDD "rerror" condition).
func IsRejError(flag string) bool { return flag == "REJ" }

// Tracker computes derived features over a time-ordered connection stream.
// It is not safe for concurrent use.
type Tracker struct {
	lastTime float64
	started  bool

	// recent is a FIFO of connections within the time window, oldest
	// first, stored as a slice with a moving head to amortize eviction.
	recent []Conn
	head   int

	// hostWin maps destination host to its ring of the last HostWindow
	// connections.
	hostWin map[int]*hostRing
}

// hostRing is a fixed-capacity ring of the most recent connections to one
// destination host.
type hostRing struct {
	buf  [HostWindow]hostEntry
	size int
	next int
}

type hostEntry struct {
	srcHost int
	srcPort int
	service string
	serror  bool
	rerror  bool
}

func (h *hostRing) add(e hostEntry) {
	h.buf[h.next] = e
	h.next = (h.next + 1) % HostWindow
	if h.size < HostWindow {
		h.size++
	}
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{hostWin: make(map[int]*hostRing)}
}

// Observe folds one connection into the tracker and returns its derived
// features. KDD semantics include the current connection in every window,
// so the features are computed after insertion. Connections must arrive in
// non-decreasing time order.
func (t *Tracker) Observe(c Conn) (Derived, error) {
	if t.started && c.Time < t.lastTime {
		return Derived{}, fmt.Errorf("connection at %v after %v: %w", c.Time, t.lastTime, ErrOutOfOrder)
	}
	t.started = true
	t.lastTime = c.Time

	// Evict connections older than the time window.
	cutoff := c.Time - TimeWindow
	for t.head < len(t.recent) && t.recent[t.head].Time < cutoff {
		t.head++
	}
	// Compact the backing slice when the dead prefix dominates.
	if t.head > 4096 && t.head*2 > len(t.recent) {
		t.recent = append(t.recent[:0], t.recent[t.head:]...)
		t.head = 0
	}
	t.recent = append(t.recent, c)

	ring, ok := t.hostWin[c.DstHost]
	if !ok {
		ring = &hostRing{}
		t.hostWin[c.DstHost] = ring
	}
	ring.add(hostEntry{
		srcHost: c.SrcHost,
		srcPort: c.SrcPort,
		service: c.Service,
		serror:  IsSynError(c.Flag),
		rerror:  IsRejError(c.Flag),
	})

	var d Derived
	t.timeFeatures(&c, &d)
	hostFeatures(ring, &c, &d)
	return d, nil
}

// timeFeatures fills the nine 2-second-window features.
func (t *Tracker) timeFeatures(c *Conn, d *Derived) {
	var (
		count, srvCount               int
		serror, srvSerror             int
		rerror, srvRerror             int
		sameSrv, diffSrv, srvDiffHost int
	)
	for i := t.head; i < len(t.recent); i++ {
		p := &t.recent[i]
		sameHost := p.DstHost == c.DstHost
		sameService := p.Service == c.Service
		if sameHost {
			count++
			if IsSynError(p.Flag) {
				serror++
			}
			if IsRejError(p.Flag) {
				rerror++
			}
			if sameService {
				sameSrv++
			} else {
				diffSrv++
			}
		}
		if sameService {
			srvCount++
			if IsSynError(p.Flag) {
				srvSerror++
			}
			if IsRejError(p.Flag) {
				srvRerror++
			}
			if !sameHost {
				srvDiffHost++
			}
		}
	}
	d.Count = float64(count)
	d.SrvCount = float64(srvCount)
	if count > 0 {
		fc := float64(count)
		d.SerrorRate = float64(serror) / fc
		d.RerrorRate = float64(rerror) / fc
		d.SameSrvRate = float64(sameSrv) / fc
		d.DiffSrvRate = float64(diffSrv) / fc
	}
	if srvCount > 0 {
		fs := float64(srvCount)
		d.SrvSerrorRate = float64(srvSerror) / fs
		d.SrvRerrorRate = float64(srvRerror) / fs
		d.SrvDiffHostRate = float64(srvDiffHost) / fs
	}
}

// hostFeatures fills the ten host-window features from the ring of the
// connection's destination host.
func hostFeatures(ring *hostRing, c *Conn, d *Derived) {
	var (
		srvCount, samePort   int
		serror, rerror       int
		srvSerror, srvRerror int
		srvDiffHost          int
	)
	for i := 0; i < ring.size; i++ {
		e := &ring.buf[i]
		if e.serror {
			serror++
		}
		if e.rerror {
			rerror++
		}
		if e.srcPort == c.SrcPort {
			samePort++
		}
		if e.service == c.Service {
			srvCount++
			if e.serror {
				srvSerror++
			}
			if e.rerror {
				srvRerror++
			}
			if e.srcHost != c.SrcHost {
				srvDiffHost++
			}
		}
	}
	n := float64(ring.size)
	d.DstHostCount = n
	d.DstHostSrvCount = float64(srvCount)
	if ring.size > 0 {
		d.DstHostSameSrvRate = float64(srvCount) / n
		d.DstHostDiffSrvRate = 1 - d.DstHostSameSrvRate
		d.DstHostSameSrcPortRate = float64(samePort) / n
		d.DstHostSerrorRate = float64(serror) / n
		d.DstHostRerrorRate = float64(rerror) / n
	}
	if srvCount > 0 {
		fs := float64(srvCount)
		d.DstHostSrvDiffHostRate = float64(srvDiffHost) / fs
		d.DstHostSrvSerrorRate = float64(srvSerror) / fs
		d.DstHostSrvRerrorRate = float64(srvRerror) / fs
	}
}

// Reset clears all tracker state.
func (t *Tracker) Reset() {
	t.lastTime = 0
	t.started = false
	t.recent = t.recent[:0]
	t.head = 0
	t.hostWin = make(map[int]*hostRing)
}
