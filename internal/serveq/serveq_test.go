package serveq

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// tj is the test job: a value with an optional deadline.
type tj struct {
	id int
	dl time.Time
}

func (j tj) Deadline() time.Time { return j.dl }

func TestPushPopOrderAndDepth(t *testing.T) {
	q := New[tj](4)
	if q.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", q.Cap())
	}
	for i := 0; i < 3; i++ {
		if err := q.Push(tj{id: i}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if q.Depth() != 3 {
		t.Fatalf("Depth() = %d, want 3", q.Depth())
	}
	for i := 0; i < 3; i++ {
		j := <-q.C()
		if j.id != i {
			t.Fatalf("dequeued %d, want %d (FIFO)", j.id, i)
		}
		if !q.Alive(j, time.Now()) {
			t.Fatalf("job %d without deadline reported dead", i)
		}
	}
	st := q.Stats()
	if st.Admitted != 3 || st.RejectedFull != 0 || st.DroppedDeadline != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPushShedsWhenFull(t *testing.T) {
	q := New[tj](2)
	if err := q.Push(tj{id: 0}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(tj{id: 1}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(tj{id: 2}); !errors.Is(err, ErrFull) {
		t.Fatalf("push to full queue: %v, want ErrFull", err)
	}
	if st := q.Stats(); st.Admitted != 2 || st.RejectedFull != 1 {
		t.Errorf("stats = %+v, want 2 admitted, 1 rejected full", st)
	}
	// Draining one slot re-opens admission.
	<-q.C()
	if err := q.Push(tj{id: 3}); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
}

func TestPushRejectsPastDeadline(t *testing.T) {
	q := New[tj](4)
	now := time.Now()
	err := q.PushAt(tj{dl: now.Add(-time.Millisecond)}, now)
	if !errors.Is(err, ErrPastDeadline) {
		t.Fatalf("expired push: %v, want ErrPastDeadline", err)
	}
	// A deadline exactly at now is also past: the job cannot finish
	// within it.
	if err := q.PushAt(tj{dl: now}, now); !errors.Is(err, ErrPastDeadline) {
		t.Fatalf("deadline==now push: %v, want ErrPastDeadline", err)
	}
	if err := q.PushAt(tj{dl: now.Add(time.Second)}, now); err != nil {
		t.Fatalf("live push: %v", err)
	}
	if st := q.Stats(); st.RejectedDeadline != 2 || st.Admitted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAliveDropsExpiredAtDequeue(t *testing.T) {
	q := New[tj](4)
	now := time.Now()
	if err := q.PushAt(tj{id: 1, dl: now.Add(time.Millisecond)}, now); err != nil {
		t.Fatal(err)
	}
	j := <-q.C()
	if q.Alive(j, now.Add(2*time.Millisecond)) {
		t.Fatal("expired job reported alive at dequeue")
	}
	if st := q.Stats(); st.DroppedDeadline != 1 {
		t.Errorf("stats = %+v, want 1 dropped", st)
	}
}

func TestCloseAdmissionShedsNewKeepsQueued(t *testing.T) {
	q := New[tj](4)
	if err := q.Push(tj{id: 7}); err != nil {
		t.Fatal(err)
	}
	q.CloseAdmission()
	q.CloseAdmission() // idempotent
	if !q.Closed() {
		t.Fatal("Closed() = false after CloseAdmission")
	}
	if err := q.Push(tj{id: 8}); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	// The queued job is still there for the drain loop.
	select {
	case j := <-q.C():
		if j.id != 7 {
			t.Fatalf("drained job %d, want 7", j.id)
		}
	default:
		t.Fatal("queued job lost on CloseAdmission")
	}
	if st := q.Stats(); st.RejectedClosed != 1 {
		t.Errorf("stats = %+v, want 1 rejected closed", st)
	}
}

// TestConcurrentPushDrain hammers Push from many goroutines against a
// draining consumer and checks conservation: every job is exactly one of
// admitted-and-served or rejected. Run with -race.
func TestConcurrentPushDrain(t *testing.T) {
	q := New[tj](8)
	const producers = 8
	const perProducer = 200
	var served atomic64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case j := <-q.C():
				if q.Alive(j, time.Now()) {
					served.add(1)
				}
			default:
				if q.Closed() && q.Depth() == 0 {
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	var rejected atomic64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Push(tj{id: i}); err != nil {
					rejected.add(1)
				}
			}
		}()
	}
	wg.Wait()
	q.CloseAdmission()
	<-done
	st := q.Stats()
	total := int64(producers * perProducer)
	if st.Admitted+st.RejectedFull != total {
		t.Errorf("admitted %d + rejectedFull %d != %d pushes", st.Admitted, st.RejectedFull, total)
	}
	if served.load() != st.Admitted {
		t.Errorf("served %d != admitted %d", served.load(), st.Admitted)
	}
	if rejected.load() != st.RejectedFull {
		t.Errorf("push errors %d != rejectedFull %d", rejected.load(), st.RejectedFull)
	}
}

// atomic64 is a tiny local counter to keep the test self-contained.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
