// Package serveq provides the bounded, deadline-aware admission queue
// behind ghsom-serve: jobs carry an absolute deadline, admission is
// non-blocking (a full queue sheds immediately instead of building an
// unbounded backlog), and expired jobs are dropped before they waste
// dataplane work. Every outcome — admitted, shed on capacity, shed on
// deadline, shed after admission close, dropped expired at dequeue — is
// counted, so overload behavior is observable from /stats.
//
// The queue itself is a channel, so consumers keep ordinary select
// loops; serveq owns only the admission policy and the counters.
package serveq

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by Push. Callers map them to wire semantics: ErrFull
// and ErrPastDeadline are overload sheds (HTTP 429 + Retry-After),
// ErrClosed means the server is draining (HTTP 503).
var (
	// ErrFull is returned when the queue is at capacity.
	ErrFull = errors.New("serveq: queue full")
	// ErrPastDeadline is returned when the job's deadline has already
	// passed at enqueue time.
	ErrPastDeadline = errors.New("serveq: deadline already passed")
	// ErrClosed is returned after CloseAdmission: the server is draining
	// and admits no new work.
	ErrClosed = errors.New("serveq: admission closed")
)

// Job is implemented by queued work items. A zero Deadline means the job
// never expires.
type Job interface {
	Deadline() time.Time
}

// Stats is a snapshot of the queue's monotonic outcome counters.
type Stats struct {
	// Admitted counts jobs accepted into the queue.
	Admitted int64
	// RejectedFull counts jobs shed because the queue was at capacity.
	RejectedFull int64
	// RejectedDeadline counts jobs shed because their deadline had
	// already passed at enqueue.
	RejectedDeadline int64
	// RejectedClosed counts jobs shed after admission closed (drain).
	RejectedClosed int64
	// DroppedDeadline counts admitted jobs dropped at dequeue or flush
	// because their deadline passed while they waited.
	DroppedDeadline int64
}

// Queue is a bounded admission queue of deadline-carrying jobs.
type Queue[T Job] struct {
	c                chan T
	closed           atomic.Bool
	admitted         atomic.Int64
	rejectedFull     atomic.Int64
	rejectedDeadline atomic.Int64
	rejectedClosed   atomic.Int64
	droppedDeadline  atomic.Int64

	// Queue-wait aggregates since the last TakeWaitStats scrape. The
	// consumer reports each dequeued job's wait via ObserveWait; a stats
	// scrape drains the window. A mutex (not atomics) because observation
	// happens once per dequeue, far off the per-record hot path.
	waitMu    sync.Mutex
	waitCount int64
	waitSum   time.Duration
	waitMax   time.Duration
}

// New returns a queue holding at most capacity pending jobs (floored at
// 1).
func New[T Job](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{c: make(chan T, capacity)}
}

// Push admits j, never blocking: a closed queue returns ErrClosed, an
// already-expired job ErrPastDeadline, a full queue ErrFull. Each
// outcome increments its counter.
func (q *Queue[T]) Push(j T) error {
	return q.PushAt(j, time.Now())
}

// PushAt is Push with an explicit clock reading, for tests.
func (q *Queue[T]) PushAt(j T, now time.Time) error {
	if q.closed.Load() {
		q.rejectedClosed.Add(1)
		return ErrClosed
	}
	if dl := j.Deadline(); !dl.IsZero() && !now.Before(dl) {
		q.rejectedDeadline.Add(1)
		return ErrPastDeadline
	}
	select {
	case q.c <- j:
		q.admitted.Add(1)
		return nil
	default:
		q.rejectedFull.Add(1)
		return ErrFull
	}
}

// C is the receive side: consumers select on it directly. The channel is
// never closed (CloseAdmission only stops Push), so drain loops must
// use their own quit signal plus non-blocking receives.
func (q *Queue[T]) C() <-chan T { return q.c }

// Alive reports whether a dequeued job is still worth serving at now.
// It returns false — and counts a deadline-miss drop — when the job's
// deadline passed while it waited. Each job should be checked via Alive
// until it is either dropped or served, so a job is counted at most
// once.
func (q *Queue[T]) Alive(j T, now time.Time) bool {
	if dl := j.Deadline(); !dl.IsZero() && !now.Before(dl) {
		q.droppedDeadline.Add(1)
		return false
	}
	return true
}

// WaitStats aggregates observed queue waits — the time jobs spent
// between admission and dequeue — over one scrape window.
type WaitStats struct {
	// Count is the number of waits observed in the window.
	Count int64
	// Max is the longest observed wait.
	Max time.Duration
	// Mean is the arithmetic mean wait.
	Mean time.Duration
}

// ObserveWait records one dequeued job's queue wait. Consumers call it
// when they pull a job off C, so the aggregates reflect real backlog:
// a balancer fronting several queues can prefer the one whose jobs wait
// least.
func (q *Queue[T]) ObserveWait(d time.Duration) {
	if d < 0 {
		d = 0
	}
	q.waitMu.Lock()
	q.waitCount++
	q.waitSum += d
	if d > q.waitMax {
		q.waitMax = d
	}
	q.waitMu.Unlock()
}

// TakeWaitStats snapshots and resets the queue-wait aggregates: each
// scrape sees the waits observed since the previous scrape, so a stats
// poller gets per-interval pressure rather than a lifetime average that
// goes numb under load swings.
func (q *Queue[T]) TakeWaitStats() WaitStats {
	q.waitMu.Lock()
	defer q.waitMu.Unlock()
	out := WaitStats{Count: q.waitCount, Max: q.waitMax}
	if q.waitCount > 0 {
		out.Mean = q.waitSum / time.Duration(q.waitCount)
	}
	q.waitCount, q.waitSum, q.waitMax = 0, 0, 0
	return out
}

// CloseAdmission stops admitting new jobs: every subsequent Push returns
// ErrClosed. Jobs already queued stay queued for the consumer to drain.
// Safe to call more than once.
func (q *Queue[T]) CloseAdmission() { q.closed.Store(true) }

// Closed reports whether admission has been closed.
func (q *Queue[T]) Closed() bool { return q.closed.Load() }

// Depth is the number of jobs currently waiting in the queue.
func (q *Queue[T]) Depth() int { return len(q.c) }

// Cap is the queue's capacity.
func (q *Queue[T]) Cap() int { return cap(q.c) }

// Stats snapshots the outcome counters.
func (q *Queue[T]) Stats() Stats {
	return Stats{
		Admitted:         q.admitted.Load(),
		RejectedFull:     q.rejectedFull.Load(),
		RejectedDeadline: q.rejectedDeadline.Load(),
		RejectedClosed:   q.rejectedClosed.Load(),
		DroppedDeadline:  q.droppedDeadline.Load(),
	}
}
