package core

import (
	"fmt"
	"math"

	"ghsom/internal/parallel"
	"ghsom/internal/vecmath"
)

// Placement identifies where a vector lands in the hierarchy: the leaf node
// reached by descending best-matching units, the winning unit on that map,
// and the quantization error there.
type Placement struct {
	// NodeID is the ID of the leaf node (the deepest map reached).
	NodeID int
	// Unit is the best-matching unit index on that map.
	Unit int
	// Depth is the leaf node's layer.
	Depth int
	// QE is the Euclidean distance from the vector to the winning unit's
	// weight.
	QE float64
}

// Key returns a compact stable identifier for the (node, unit) pair,
// suitable as a map key for unit labeling.
func (p Placement) Key() UnitKey { return UnitKey{NodeID: p.NodeID, Unit: p.Unit} }

// UnitKey identifies one unit of one map in a trained hierarchy.
type UnitKey struct {
	// NodeID is the map's ID within the model.
	NodeID int
	// Unit is the unit index within that map.
	Unit int
}

// String renders the key as "node/unit".
func (k UnitKey) String() string { return fmt.Sprintf("%d/%d", k.NodeID, k.Unit) }

// Route descends the hierarchy from the root, at each map following the
// best-matching unit into its child map if one exists, and returns the
// final placement. Route never fails on a trained model; a dimension
// mismatch returns a Placement with QE = NaN.
//
// This is the pointer-tree reference walk. The serving hot path routes
// through the compiled representation instead (Compile → Compiled.Route
// and friends), which produces byte-identical placements from flat
// tables; the tree walk remains the semantic baseline the compiled
// kernels are equivalence-tested against.
func (g *GHSOM) Route(x []float64) Placement {
	if len(x) != g.dim {
		return Placement{NodeID: -1, Unit: -1, QE: math.NaN()}
	}
	node := g.root
	for {
		bmu, d2 := node.Map.BMU(x)
		child, ok := node.Children[bmu]
		if !ok {
			return Placement{NodeID: node.ID, Unit: bmu, Depth: node.Depth, QE: math.Sqrt(d2)}
		}
		node = child
	}
}

// RouteTrained is like Route but restricts the BMU search at every map to
// units that won at least one training record, falling back to the full
// map when none did. Growth interpolation leaves some units with no
// training data; routing test records onto those data-less units would
// give them no label evidence, so the detection layer routes through the
// effective codebook instead.
func (g *GHSOM) RouteTrained(x []float64) Placement {
	if len(x) != g.dim {
		return Placement{NodeID: -1, Unit: -1, QE: math.NaN()}
	}
	return g.routeTrainedRow(x)
}

// routeTrainedRow is the validated effective-codebook descent kernel:
// len(x) == g.dim. It is allocation-free (BMUMasked instead of a
// per-level predicate closure) and shared by RouteTrained and
// RouteTrainedFlat so the per-record and batch paths cannot diverge.
func (g *GHSOM) routeTrainedRow(x []float64) Placement {
	node := g.root
	for {
		bmu, d2, ok := node.Map.BMUMasked(x, node.UnitCount)
		if !ok {
			bmu, d2 = node.Map.BMU(x)
		}
		child, exists := node.Children[bmu]
		if !exists {
			return Placement{NodeID: node.ID, Unit: bmu, Depth: node.Depth, QE: math.Sqrt(d2)}
		}
		node = child
	}
}

// RouteTrainedFlat routes every row of the flat row-major batch (n rows
// of Dim() values) through the effective codebook, writing placements
// into out, which must have length at least n. Rows are routed
// concurrently on up to Workers(parallelism, n) goroutines (0 =
// GOMAXPROCS, 1 = serial); placements are positionally stable and
// identical to calling RouteTrained per row at every setting. This is the
// batch BMU descent under anomaly batch quantization: beyond the worker
// goroutines it performs no per-row allocation.
func (g *GHSOM) RouteTrainedFlat(flat []float64, n int, out []Placement, parallelism int) error {
	if len(flat) < n*g.dim {
		return fmt.Errorf("core: route flat batch of %d rows from %d values, want >= %d", n, len(flat), n*g.dim)
	}
	if len(out) < n {
		return fmt.Errorf("core: route flat batch of %d rows into %d placements", n, len(out))
	}
	parallel.ForEach(parallelism, n, func(i int) {
		out[i] = g.routeTrainedRow(flat[i*g.dim : (i+1)*g.dim])
	})
	return nil
}

// RouteAll routes every row of data and returns the placements.
func (g *GHSOM) RouteAll(data [][]float64) []Placement {
	out := make([]Placement, len(data))
	for i, x := range data {
		out[i] = g.Route(x)
	}
	return out
}

// Path returns the chain of (nodeID, unit) hops from the root map to the
// leaf placement for x, in order. Useful for explaining a classification.
func (g *GHSOM) Path(x []float64) []UnitKey {
	if len(x) != g.dim {
		return nil
	}
	var path []UnitKey
	node := g.root
	for {
		bmu, _ := node.Map.BMU(x)
		path = append(path, UnitKey{NodeID: node.ID, Unit: bmu})
		child, ok := node.Children[bmu]
		if !ok {
			return path
		}
		node = child
	}
}

// LeafQE returns the quantization error of x at its leaf placement. It is
// the model's raw anomaly score: large errors mean the input is far from
// everything the model learned.
func (g *GHSOM) LeafQE(x []float64) float64 {
	return g.Route(x).QE
}

// NearestUnitWeight returns a copy of the weight vector of the unit
// identified by key, or nil if the key does not exist in the model.
func (g *GHSOM) NearestUnitWeight(key UnitKey) []float64 {
	n := g.Node(key.NodeID)
	if n == nil || key.Unit < 0 || key.Unit >= n.Map.Units() {
		return nil
	}
	return vecmath.Clone(n.Map.Weight(key.Unit))
}
