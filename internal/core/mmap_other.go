//go:build !unix

package core

import "os"

// Mapping is a read-only view of a file. On platforms without mmap
// support it degrades to a plain heap read: the loader semantics are
// identical, only the page-cache sharing and lazy fault-in are lost.
type Mapping struct {
	data []byte
	mmap bool
}

// OpenMapping reads path into memory (no mmap on this platform).
func OpenMapping(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data}, nil
}

// Close releases the mapping.
func (m *Mapping) Close() error {
	if m != nil {
		m.data = nil
	}
	return nil
}
