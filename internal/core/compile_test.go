package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// compileTestModel trains a deep-ish hierarchy for compilation tests.
func compileTestModel(t testing.TB, seed int64, nPer int) (*GHSOM, [][]float64) {
	t.Helper()
	data := fourBlobs(seed, nPer)
	cfg := quickConfig()
	cfg.MaxDepth = 3
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, data
}

// queryMix returns the training data plus perturbed, far-out, and
// degenerate queries, exercising both codebook hits and novelty paths.
func queryMix(data [][]float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := append([][]float64(nil), data...)
	for i := 0; i < 200; i++ {
		x := make([]float64, len(data[0]))
		for d := range x {
			x[d] = rng.NormFloat64() * 20
		}
		out = append(out, x)
	}
	out = append(out, []float64{math.NaN(), math.NaN()})
	out = append(out, []float64{math.Inf(1), 0})
	return out
}

// TestCompiledRouteEquivalence pins the core guarantee: the compiled
// table-driven descent produces placements byte-identical to the pointer
// tree walk, for both full-map and effective-codebook routing.
func TestCompiledRouteEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		g, data := compileTestModel(t, seed, 60)
		c := Compile(g)
		for i, x := range queryMix(data, seed+1) {
			want, got := g.Route(x), c.Route(x)
			if !placementsBitIdentical(want, got) {
				t.Fatalf("seed %d query %d: Route tree %+v, compiled %+v", seed, i, want, got)
			}
			wantT, gotT := g.RouteTrained(x), c.RouteTrained(x)
			if !placementsBitIdentical(wantT, gotT) {
				t.Fatalf("seed %d query %d: RouteTrained tree %+v, compiled %+v", seed, i, wantT, gotT)
			}
		}
		// Dimension mismatch sentinel.
		bad := []float64{1, 2, 3}
		if p := c.Route(bad); p.NodeID != -1 || p.Unit != -1 || !math.IsNaN(p.QE) {
			t.Fatalf("dim mismatch Route = %+v", p)
		}
		if p := c.RouteTrained(bad); p.NodeID != -1 || !math.IsNaN(p.QE) {
			t.Fatalf("dim mismatch RouteTrained = %+v", p)
		}
	}
}

// placementsBitIdentical compares placements treating NaN QE as equal to
// NaN QE (bit-level equality intent).
func placementsBitIdentical(a, b Placement) bool {
	if a.NodeID != b.NodeID || a.Unit != b.Unit || a.Depth != b.Depth {
		return false
	}
	if math.IsNaN(a.QE) && math.IsNaN(b.QE) {
		return true
	}
	return math.Float64bits(a.QE) == math.Float64bits(b.QE)
}

// TestCompiledRouteFlatParallelism verifies the batch descents are
// positionally stable and identical to the per-row calls at every worker
// bound (run under -race in CI, which also proves data-race freedom).
func TestCompiledRouteFlatParallelism(t *testing.T) {
	g, data := compileTestModel(t, 3, 80)
	c := Compile(g)
	queries := queryMix(data, 4)
	// Keep only dim-matched rows for the flat batch.
	dim := c.Dim()
	flat := make([]float64, 0, len(queries)*dim)
	n := 0
	for _, x := range queries {
		if len(x) == dim {
			flat = append(flat, x...)
			n++
		}
	}
	want := make([]Placement, n)
	if err := g.RouteTrainedFlat(flat, n, want, 1); err != nil {
		t.Fatal(err)
	}
	wantFull := make([]Placement, n)
	if err := c.RouteFlat(flat, n, wantFull, 1); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 3, 8, 0} {
		got := make([]Placement, n)
		if err := c.RouteTrainedFlat(flat, n, got, par); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !placementsBitIdentical(want[i], got[i]) {
				t.Fatalf("par %d row %d: tree %+v, compiled %+v", par, i, want[i], got[i])
			}
		}
		gotFull := make([]Placement, n)
		if err := c.RouteFlat(flat, n, gotFull, par); err != nil {
			t.Fatal(err)
		}
		for i := range gotFull {
			if !placementsBitIdentical(wantFull[i], gotFull[i]) {
				t.Fatalf("par %d row %d: RouteFlat differs across parallelism", par, i)
			}
		}
	}
	// Undersized inputs are rejected, not panics.
	if err := c.RouteTrainedFlat(flat[:dim], 2, make([]Placement, 2), 1); err == nil {
		t.Error("short flat accepted")
	}
	if err := c.RouteTrainedFlat(flat, n, make([]Placement, n-1), 1); err == nil {
		t.Error("short out accepted")
	}
	// Empty batches are no-ops, like the tree walk.
	if err := c.RouteTrainedFlat(nil, 0, nil, 1); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if err := c.RouteFlat(nil, 0, nil, 1); err != nil {
		t.Errorf("empty RouteFlat batch: %v", err)
	}
}

// TestCompiledStatsMatchTree verifies the flat tables carry the same
// structure the tree reports.
func TestCompiledStatsMatchTree(t *testing.T) {
	g, _ := compileTestModel(t, 5, 60)
	c := Compile(g)
	ts, cs := g.Stats(), c.Stats()
	if ts.Maps != cs.Maps || ts.Units != cs.Units || ts.LeafUnits != cs.LeafUnits ||
		ts.MaxDepth != cs.MaxDepth || ts.LargestMapUnits != cs.LargestMapUnits {
		t.Fatalf("stats differ: tree %+v, compiled %+v", ts, cs)
	}
	for d := range ts.MapsPerDepth {
		if ts.MapsPerDepth[d] != cs.MapsPerDepth[d] || ts.UnitsPerDepth[d] != cs.UnitsPerDepth[d] {
			t.Fatalf("depth %d structure differs: tree %+v, compiled %+v", d, ts, cs)
		}
	}
	if c.NumNodes() != ts.Maps || c.TotalUnits() != ts.Units {
		t.Fatalf("NumNodes/TotalUnits = %d/%d, want %d/%d", c.NumNodes(), c.TotalUnits(), ts.Maps, ts.Units)
	}
	if c.ArenaBytes() != ts.Units*c.Dim()*8 {
		t.Fatalf("ArenaBytes = %d", c.ArenaBytes())
	}
	if c.TableBytes() <= 0 {
		t.Fatal("TableBytes not positive")
	}
}

// TestCompiledDecompileRoundTrip verifies Compile → Decompile preserves
// the model exactly: the decompiled tree serializes byte-identically to
// the original and routes identically.
func TestCompiledDecompileRoundTrip(t *testing.T) {
	g, data := compileTestModel(t, 9, 60)
	c := Compile(g)
	back, err := c.Decompile()
	if err != nil {
		t.Fatal(err)
	}
	var orig, rt bytes.Buffer
	if err := g.Save(&orig); err != nil {
		t.Fatal(err)
	}
	if err := back.Save(&rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), rt.Bytes()) {
		t.Fatalf("decompiled model serializes differently (%d vs %d bytes)", orig.Len(), rt.Len())
	}
	for i, x := range data {
		if want, got := g.RouteTrained(x), back.RouteTrained(x); !placementsBitIdentical(want, got) {
			t.Fatalf("row %d: decompiled route differs: %+v vs %+v", i, want, got)
		}
	}
}

// TestCompiledBinaryRoundTrip verifies WriteBinary → ReadCompiledBinary →
// WriteBinary is bit-identical and the reloaded model routes identically.
func TestCompiledBinaryRoundTrip(t *testing.T) {
	g, data := compileTestModel(t, 13, 60)
	c := Compile(g)
	var blob1 bytes.Buffer
	if err := c.WriteBinary(&blob1); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCompiledBinary(bytes.NewReader(blob1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var blob2 bytes.Buffer
	if err := loaded.WriteBinary(&blob2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob1.Bytes(), blob2.Bytes()) {
		t.Fatalf("binary round trip not bit-identical (%d vs %d bytes)", blob1.Len(), blob2.Len())
	}
	for i, x := range queryMix(data, 14) {
		if len(x) != c.Dim() {
			continue
		}
		if want, got := c.RouteTrained(x), loaded.RouteTrained(x); !placementsBitIdentical(want, got) {
			t.Fatalf("query %d: reloaded route differs: %+v vs %+v", i, want, got)
		}
	}
	if cfg := loaded.Config(); cfg.Tau1 != c.Config().Tau1 || cfg.Seed != c.Config().Seed {
		t.Fatalf("reloaded config differs: %+v", cfg)
	}
	if loaded.MQE0() != c.MQE0() {
		t.Fatal("reloaded mqe0 differs")
	}
}

// TestReadCompiledBinaryRejectsCorrupt walks truncations and targeted
// mutations of a valid blob; every one must error (or load to a routable
// model), never panic.
func TestReadCompiledBinaryRejectsCorrupt(t *testing.T) {
	g, _ := compileTestModel(t, 17, 40)
	c := Compile(g)
	var blob bytes.Buffer
	if err := c.WriteBinary(&blob); err != nil {
		t.Fatal(err)
	}
	raw := blob.Bytes()
	// Truncations at every prefix length on a coarse grid plus the exact
	// boundaries near the header.
	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := ReadCompiledBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bit flips across the header and tables.
	for pos := 0; pos < len(raw); pos += 11 {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x41
		m, err := ReadCompiledBinary(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		// A mutation that still loads must still route safely.
		x := make([]float64, m.Dim())
		_ = m.RouteTrained(x)
	}
	if _, err := ReadCompiledBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty blob accepted")
	}
	if _, err := ReadCompiledBinary(bytes.NewReader([]byte("GHSOMCB1"))); err == nil {
		t.Error("magic-only blob accepted")
	}
}

// BenchmarkRouteTree and BenchmarkRouteCompiled are the CI smoke pair for
// the routing dataplane: tree-walk vs compiled table-driven descent on
// the same model and queries (serial, per-record throughput). The data
// is synthetic clusters at a KDD-like dimensionality, so the smoke
// numbers approximate the real encoded operating point; the tracked
// measurement is cmd/benchjson's BENCH_routing.json, which uses the
// production pipeline model.
func benchRouteSetup(b *testing.B) (*GHSOM, *Compiled, []float64, int) {
	const dim = 48
	rng := rand.New(rand.NewSource(21))
	centers := make([][]float64, 6)
	for i := range centers {
		c := make([]float64, dim)
		for d := range c {
			c[d] = rng.Float64() * 10
		}
		centers[i] = c
	}
	// Traffic-shaped mix: cluster sizes are skewed (a dominant class, like
	// DoS in KDD traces) and part of the dominant class repeats one exact
	// vector, like a flood repeating one encoded record.
	sizes := []int{450, 200, 120, 70, 40, 20}
	flood := make([]float64, dim)
	for d := range flood {
		flood[d] = centers[0][d] + rng.NormFloat64()*0.1
	}
	data := make([][]float64, 0, 900)
	for ci, size := range sizes {
		for i := 0; i < size; i++ {
			if ci == 0 && i%2 == 0 {
				data = append(data, flood)
				continue
			}
			x := make([]float64, dim)
			for d := range x {
				x[d] = centers[ci][d] + rng.NormFloat64()*0.3
			}
			data = append(data, x)
		}
	}
	cfg := quickConfig()
	cfg.MaxDepth = 3
	g, err := Train(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	c := Compile(g)
	flat := make([]float64, 0, len(data)*dim)
	for _, x := range data {
		flat = append(flat, x...)
	}
	return g, c, flat, len(data)
}

func BenchmarkRouteTree(b *testing.B) {
	g, _, flat, n := benchRouteSetup(b)
	out := make([]Placement, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.RouteTrainedFlat(flat, n, out, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "records/sec")
}

func BenchmarkRouteCompiled(b *testing.B) {
	_, c, flat, n := benchRouteSetup(b)
	out := make([]Placement, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.RouteTrainedFlat(flat, n, out, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "records/sec")
}
