package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// This file implements the in-memory counterpart of the compiled-blob
// streaming reader plus its alignment-aware writer: together they are
// the zero-copy model-loading path. A blob written with WriteBinaryAt
// places its three big tables (counts, unitQE, arena) on 8-byte file
// offsets; ReadCompiledBinaryBytes over an mmap of that file can then
// take those tables as direct views of the mapping — no heap copy, no
// page touched until routing first reads it, and every process serving
// the same file sharing one physical copy. The small derived tables
// (child index, probe order, pruning and norm tables) are rebuilt
// heap-side exactly as the streaming reader does, so routing on a
// mapped model is byte-identical to routing on a heap-loaded one.

// alignPad returns how many padding bytes WriteBinaryAt must append to
// the config JSON so the counts table lands 8-byte aligned, given the
// blob starts at file offset blobOff and the unpadded config is cfgLen
// bytes. The fixed prefix ahead of counts is magic(8) + cfgLen(4) +
// cfg + dim(4) + mqe0(8) + mean(dim*8) + nodeCount(4) + nodes(16 each):
// every term except 8+4+4+8+4 = 28 and cfgLen is a multiple of 8, so
// alignment only depends on (blobOff + 28 + cfgLen) mod 8. unitQE and
// the arena follow counts at multiples of 8 and inherit its alignment.
func alignPad(blobOff int64, cfgLen int) int {
	return int((8 - (blobOff+28+int64(cfgLen))%8) % 8)
}

// WriteBinaryAt writes the compiled model like WriteBinary, padding the
// embedded config JSON with trailing spaces (whitespace is legal after
// a JSON value) so that the counts/unitQE/arena tables land on 8-byte
// file offsets when the blob starts at file offset blobOff. Blobs
// written this way load zero-copy via ReadCompiledBinaryBytes over a
// mapping; readers that ignore alignment parse them identically.
func (c *Compiled) WriteBinaryAt(w io.Writer, blobOff int64) error {
	cfgJSON, err := json.Marshal(c.cfg)
	if err != nil {
		return fmt.Errorf("core: encode compiled config: %w", err)
	}
	return c.writeBinaryCfg(w, append(cfgJSON, spaces[:alignPad(blobOff, len(cfgJSON))]...))
}

var spaces = [8]byte{' ', ' ', ' ', ' ', ' ', ' ', ' ', ' '}

// ReadCompiledBinaryBytes parses a compiled blob held in memory —
// typically a window of an OpenMapping — validating exactly like
// ReadCompiledBinary. With zeroCopy true, the counts, unitQE, and
// weight-arena tables become direct views of data whenever their
// offsets are 8-byte aligned machine addresses (guaranteed for
// WriteBinaryAt output over a page-aligned mapping on little-endian
// hosts); otherwise they are decoded into fresh heap slices. The caller
// must keep data alive and unmodified for the life of the model;
// MappedBytes reports how many bytes of the model alias data.
func ReadCompiledBinaryBytes(data []byte, zeroCopy bool) (*Compiled, error) {
	cur := &byteCursor{data: data}
	magic, err := cur.bytes(8, "compiled magic")
	if err != nil {
		return nil, err
	}
	if [8]byte(magic) != compiledMagic {
		return nil, fmt.Errorf("core: not a compiled model blob (magic %q)", magic)
	}
	cfgLen, err := cur.u32("compiled config length")
	if err != nil {
		return nil, err
	}
	if cfgLen > 1<<20 {
		return nil, fmt.Errorf("core: compiled config of %d bytes exceeds cap", cfgLen)
	}
	cfgJSON, err := cur.bytes(int(cfgLen), "compiled config")
	if err != nil {
		return nil, err
	}
	c := &Compiled{}
	if err := json.Unmarshal(cfgJSON, &c.cfg); err != nil {
		return nil, fmt.Errorf("core: decode compiled config: %w", err)
	}
	if err := c.cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: compiled config: %w", err)
	}
	dim, err := cur.u32("compiled dim")
	if err != nil {
		return nil, err
	}
	if dim < 1 || dim > maxModelDim {
		return nil, fmt.Errorf("core: compiled dim %d outside [1, %d]", dim, maxModelDim)
	}
	c.dim = int(dim)
	mqe0, err := cur.bytes(8, "compiled mqe0")
	if err != nil {
		return nil, err
	}
	c.mqe0 = math.Float64frombits(binary.LittleEndian.Uint64(mqe0))
	// mqe0 and the mean are deliberately always copied: they sit ahead of
	// the aligned tables (and are a handful of values), so copying keeps
	// the padding rule simple without giving up any real sharing.
	meanOff, err := cur.skip(c.dim*8, "compiled mean")
	if err != nil {
		return nil, err
	}
	c.mean = copyFloat64s(data, meanOff, c.dim)

	nodeCount, err := cur.u32("compiled node count")
	if err != nil {
		return nil, err
	}
	if nodeCount < 1 || nodeCount > maxModelNodes {
		return nil, fmt.Errorf("core: compiled node count %d outside [1, %d]", nodeCount, maxModelNodes)
	}
	// The whole blob is already resident (or mapped), so unlike the
	// streaming reader there is no allocate-before-arrival hazard: bounds
	// are simply checked against len(data) before each section.
	hdrOff, err := cur.skip(int(nodeCount)*16, "compiled node table")
	if err != nil {
		return nil, err
	}
	c.nodes = make([]compiledNode, 0, nodeCount)
	totalUnits := 0
	for i := 0; i < int(nodeCount); i++ {
		h := data[hdrOff+16*i:]
		parent := int(int32(binary.LittleEndian.Uint32(h)))
		parentUnit := int(int32(binary.LittleEndian.Uint32(h[4:])))
		rows := int(int32(binary.LittleEndian.Uint32(h[8:])))
		cols := int(int32(binary.LittleEndian.Uint32(h[12:])))
		if rows < 1 || rows > maxMapSide || cols < 1 || cols > maxMapSide {
			return nil, fmt.Errorf("core: compiled node %d shape %dx%d outside [1, %d]", i, rows, cols, maxMapSide)
		}
		units := rows * cols
		if units > maxUnitsPerMap {
			return nil, fmt.Errorf("core: compiled node %d has %d units, cap %d", i, units, maxUnitsPerMap)
		}
		nd := compiledNode{
			weightOff:  totalUnits * c.dim,
			unitBase:   totalUnits,
			units:      units,
			rows:       rows,
			cols:       cols,
			parent:     parent,
			parentUnit: parentUnit,
		}
		if totalUnits += units; totalUnits > maxTotalUnits {
			return nil, fmt.Errorf("core: compiled model exceeds %d total units", maxTotalUnits)
		}
		if i == 0 {
			if parent != -1 {
				return nil, fmt.Errorf("core: compiled node 0 has parent %d, want -1 (root)", parent)
			}
			nd.depth = 1
		} else {
			if parent < 0 || parent >= i {
				return nil, fmt.Errorf("core: compiled node %d has parent %d, want [0, %d)", i, parent, i)
			}
			if parentUnit < 0 || parentUnit >= c.nodes[parent].units {
				return nil, fmt.Errorf("core: compiled node %d parent unit %d outside parent's %d units",
					i, parentUnit, c.nodes[parent].units)
			}
			nd.depth = c.nodes[parent].depth + 1
		}
		c.nodes = append(c.nodes, nd)
	}
	arenaFloats := int64(totalUnits) * int64(c.dim)
	if arenaFloats > maxArenaFloats {
		return nil, fmt.Errorf("core: compiled arena of %d floats exceeds cap %d", arenaFloats, maxArenaFloats)
	}

	countsOff, err := cur.skip(totalUnits*8, "compiled counts")
	if err != nil {
		return nil, err
	}
	qeOff, err := cur.skip(totalUnits*8, "compiled unit errors")
	if err != nil {
		return nil, err
	}
	arenaOff, err := cur.skip(totalUnits*c.dim*8, "compiled arena")
	if err != nil {
		return nil, err
	}

	// The three big tables: views over data when permitted and aligned,
	// heap copies otherwise (legacy unpadded blobs, interior offsets of a
	// foreign buffer, big-endian hosts).
	view := zeroCopy && hostLittleEndian && totalUnits > 0 &&
		aligned8(data, countsOff) && aligned8(data, qeOff) && aligned8(data, arenaOff)
	if view {
		c.counts = viewInt64s(data, countsOff, totalUnits)
		c.unitQE = viewFloat64s(data, qeOff, totalUnits)
		c.arena = viewFloat64s(data, arenaOff, totalUnits*c.dim)
		c.viewBytes = totalUnits*16 + totalUnits*c.dim*8
	} else {
		c.counts = copyInt64s(data, countsOff, totalUnits)
		c.unitQE = copyFloat64s(data, qeOff, totalUnits)
		c.arena = copyFloat64s(data, arenaOff, totalUnits*c.dim)
	}
	for i, cnt := range c.counts {
		if cnt < 0 {
			return nil, fmt.Errorf("core: compiled unit %d has negative count %d", i, cnt)
		}
	}
	if cur.off != len(data) {
		return nil, fmt.Errorf("core: compiled blob has %d trailing bytes", len(data)-cur.off)
	}

	c.childIndex = make([]int32, totalUnits)
	for i := range c.childIndex {
		c.childIndex[i] = -1
	}
	for i := 1; i < len(c.nodes); i++ {
		nd := &c.nodes[i]
		slot := c.nodes[nd.parent].unitBase + nd.parentUnit
		if c.childIndex[slot] != -1 {
			return nil, fmt.Errorf("core: compiled node %d unit %d expanded by more than one child",
				nd.parent, nd.parentUnit)
		}
		c.childIndex[slot] = int32(i)
	}
	c.buildTrainedIndex()
	return c, nil
}

// MappedBytes reports how many bytes of the model are views over the
// caller-provided buffer of ReadCompiledBinaryBytes (0 for a fully
// heap-resident model). For a model over an OpenMapping this is the
// page-cache-shared portion — the weight arena and serialized unit
// tables — while TableBytes covers the heap-side derived tables.
func (c *Compiled) MappedBytes() int { return c.viewBytes }

// byteCursor walks a fully-resident blob with bounds-checked sections.
type byteCursor struct {
	data []byte
	off  int
}

func (c *byteCursor) bytes(n int, what string) ([]byte, error) {
	if n < 0 || len(c.data)-c.off < n {
		return nil, fmt.Errorf("core: read %s: blob truncated at byte %d", what, c.off)
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

// skip advances past an n-byte section, returning its start offset.
func (c *byteCursor) skip(n int, what string) (int, error) {
	if n < 0 || len(c.data)-c.off < n {
		return 0, fmt.Errorf("core: read %s: blob truncated at byte %d", what, c.off)
	}
	off := c.off
	c.off += n
	return off, nil
}

func (c *byteCursor) u32(what string) (uint32, error) {
	b, err := c.bytes(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// copyFloat64s decodes n little-endian float64s at data[off] into a
// fresh slice.
func copyFloat64s(data []byte, off, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*i:]))
	}
	return out
}

// copyInt64s is copyFloat64s for int64 tables.
func copyInt64s(data []byte, off, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(data[off+8*i:]))
	}
	return out
}
