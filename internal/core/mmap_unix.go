//go:build unix

package core

import (
	"fmt"
	"os"
	"syscall"
)

// Mapping is a read-only view of a file. On unix it is a real
// page-cache-shared mmap: opening a model costs no read of the weight
// bytes (pages fault in lazily on first touch), and N processes or N
// registry slots serving the same file share one physical copy.
type Mapping struct {
	data []byte
	mmap bool
}

// OpenMapping maps path read-only. The returned bytes are valid until
// Close; writing to them faults.
func OpenMapping(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("core: map %s: %d bytes exceeds address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("core: mmap %s: %w", path, err)
	}
	return &Mapping{data: data, mmap: true}, nil
}

// Close releases the mapping. Views derived from Bytes must not be used
// afterwards.
func (m *Mapping) Close() error {
	if m == nil || !m.mmap || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}
