package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"unsafe"

	"ghsom/internal/parallel"
	"ghsom/internal/som"
	"ghsom/internal/vecmath"
)

// This file implements the compiled model representation: a trained GHSOM
// packed into one shared row-major weight arena plus flat routing tables,
// so the hierarchy descent — the per-record hot loop of serving — runs as
// a tight table-driven scan with zero pointer chasing, zero map lookups,
// and zero allocations. Placements are byte-identical to the pointer-tree
// walk (Route/RouteTrained): the distance kernels accumulate in the exact
// same term order, only abandoning a unit once its partial sum can no
// longer win, which never changes the winner or its error.

// compiledNode is one map of the hierarchy in the flat node table. All
// offsets index the Compiled arrays, never the heap.
type compiledNode struct {
	// weightOff is the node's first weight in the arena (float64 offset);
	// unit u of this node occupies arena[weightOff+u*dim : +dim].
	weightOff int
	// unitBase is the node's first entry in the per-unit tables
	// (childIndex, counts, unitQE): unit u is at index unitBase+u.
	unitBase int
	// units is rows*cols.
	units int
	// rows, cols is the grid shape.
	rows, cols int
	// depth is the node's layer (root = 1).
	depth int
	// parent is the parent node index (-1 for the root), parentUnit the
	// unit of the parent map this node expands.
	parent, parentUnit int
	// trainedBase/trainedLen delimit the node's slice of trainedIdx: the
	// ascending unit indices that won at least one training record (the
	// effective codebook of RouteTrained).
	trainedBase, trainedLen int
	// pairBase is the node's offset into pairDist (units*units entries),
	// or -1 when the node has no pairwise pruning table.
	pairBase int
}

// Compiled is a trained GHSOM compiled for serving: every map's weights
// from all levels live in one contiguous row-major arena, and the
// hierarchy is a flat node table plus a flat child index (one int32 per
// unit, -1 = leaf). Routing methods produce placements byte-identical to
// the equivalent *GHSOM tree walk at every Parallelism setting. A
// Compiled is immutable after construction and safe for concurrent use.
type Compiled struct {
	cfg  Config
	dim  int
	mean []float64
	mqe0 float64

	nodes []compiledNode
	// childIndex[unitBase+u] is the node index of the child expanding
	// unit u, or -1 when the unit is a leaf.
	childIndex []int32
	// counts[unitBase+u] is the number of training records unit u won.
	counts []int64
	// unitQE[unitBase+u] is the unit's mean training quantization error.
	unitQE []float64
	// trainedIdx holds, per node, the ascending unit indices with
	// counts > 0 (see compiledNode.trainedBase/trainedLen).
	trainedIdx []int32
	// probeIdx is trainedIdx reordered for the masked BMU search: the
	// four highest-count units first (the opening group), the rest by
	// proximity to the top unit. Probing likely winners first makes the
	// pruning bounds tight from the start; explicit tie rules keep the
	// result identical to the ascending scan.
	probeIdx []int32
	// pairDist holds per-node units×units matrices of quarter-squared
	// distances between unit weights ((d/2)^2, see compiledNode.pairBase),
	// the triangle-inequality pruning tables of the masked BMU search.
	// Derived from the arena at compile/load time, never serialized.
	pairDist []float64
	// parentDist[unitBase+u] is the linear distance from unit u to the
	// weight of the parent unit this node expands — the parent-ball
	// screening row of the masked BMU search (zero for the root, which
	// has no parent). Derived, never serialized.
	parentDist []float64
	// norms[unitBase+u] is the squared Euclidean norm of unit u's arena
	// row — the ‖w‖² term of the blocked batch descent's expanded-form
	// BMU search. A Compiled is immutable, so unlike som.Map's versioned
	// NormCache these can never go stale. Derived, never serialized.
	norms []float64
	// nodeMaxNorm[i] is the largest squared unit norm of node i, the
	// magnitude term of the batch descent's settle margin and overflow
	// guard. Derived, never serialized.
	nodeMaxNorm []float64
	// quant[i] is node i's reduced-precision shadow codebook for the
	// descent's candidate generation, or nil where the resolved BMU
	// precision leaves the node on the f64 engine (tiny codebooks under
	// auto). Like the norm tables: derived from the arena in
	// buildNormTables, never serialized, and immutable once built —
	// placements stay byte-identical because quantized scores only
	// nominate candidates for the canonical settle.
	quant []*vecmath.QuantArena
	// tile is the GEMM block shape of the batch descent, resolved at
	// compile/load time from the model's widest codebook and the
	// machine's core count (vecmath.ResolveTile). Tile size never
	// affects placements — the expanded form only nominates candidates —
	// so the resolution is free to chase cache fit. Derived, never
	// serialized.
	tile vecmath.TileConfig
	// arena is the shared weight storage: totalUnits*dim float64s. For a
	// heap-loaded model it is owned storage; for a zero-copy load (see
	// ReadCompiledBinaryBytes) it is a read-only view over the caller's
	// mapping, as are counts and unitQE.
	arena []float64
	// viewBytes is how many bytes of the model alias the source buffer
	// of a zero-copy load (0 when fully heap-resident).
	viewBytes int
}

// Compile packs a trained hierarchy into its compiled representation.
// The model is copied; the Compiled shares no storage with g.
func Compile(g *GHSOM) *Compiled {
	c := &Compiled{
		cfg:  g.cfg,
		dim:  g.dim,
		mean: append([]float64(nil), g.mean...),
		mqe0: g.mqe0,
	}
	total := 0
	for _, n := range g.nodes {
		total += n.Map.Units()
	}
	c.nodes = make([]compiledNode, len(g.nodes))
	c.childIndex = make([]int32, total)
	c.counts = make([]int64, total)
	c.unitQE = make([]float64, total)
	c.arena = make([]float64, total*g.dim)
	base := 0
	for i, n := range g.nodes {
		units := n.Map.Units()
		cn := compiledNode{
			weightOff:  base * g.dim,
			unitBase:   base,
			units:      units,
			rows:       n.Map.Rows(),
			cols:       n.Map.Cols(),
			depth:      n.Depth,
			parent:     -1,
			parentUnit: n.ParentUnit,
		}
		copy(c.arena[cn.weightOff:cn.weightOff+units*g.dim], n.Map.Weights())
		for u := 0; u < units; u++ {
			c.childIndex[base+u] = -1
			if u < len(n.UnitCount) {
				c.counts[base+u] = int64(n.UnitCount[u])
			}
			if u < len(n.UnitQE) {
				c.unitQE[base+u] = n.UnitQE[u]
			}
		}
		c.nodes[i] = cn
		base += units
	}
	for i, n := range g.nodes {
		for u, ch := range n.Children {
			c.childIndex[c.nodes[i].unitBase+u] = int32(ch.ID)
			c.nodes[ch.ID].parent = i
			c.nodes[ch.ID].parentUnit = u
		}
	}
	c.buildTrainedIndex()
	return c
}

// buildTrainedIndex derives the per-node effective-codebook unit lists
// from the counts table, plus the count-ordered probe lists the masked
// BMU search scans.
func (c *Compiled) buildTrainedIndex() {
	if len(c.parentDist) != len(c.childIndex) {
		c.parentDist = make([]float64, len(c.childIndex))
	}
	c.trainedIdx = c.trainedIdx[:0]
	for i := range c.nodes {
		nd := &c.nodes[i]
		nd.trainedBase = len(c.trainedIdx)
		for u := 0; u < nd.units; u++ {
			if c.counts[nd.unitBase+u] > 0 {
				c.trainedIdx = append(c.trainedIdx, int32(u))
			}
		}
		nd.trainedLen = len(c.trainedIdx) - nd.trainedBase
	}
	c.probeIdx = append(c.probeIdx[:0], c.trainedIdx...)
	c.buildPairTables()
	c.buildNormTables()
	for i := range c.nodes {
		nd := &c.nodes[i]
		probe := c.probeIdx[nd.trainedBase : nd.trainedBase+nd.trainedLen]
		counts := c.counts[nd.unitBase : nd.unitBase+nd.units]
		sort.SliceStable(probe, func(a, b int) bool {
			ca, cb := counts[probe[a]], counts[probe[b]]
			if ca != cb {
				return ca > cb
			}
			return probe[a] < probe[b]
		})
		// Parent-ball row: the linear distance from every unit to the
		// parent unit's weight. The descent knows the exact distance
		// d(x, parent unit) when it enters this node, so the row turns
		// into a screening annulus at zero extra distance computations.
		if nd.parent >= 0 {
			pn := &c.nodes[nd.parent]
			pOff := pn.weightOff + nd.parentUnit*c.dim
			pw := c.arena[pOff : pOff+c.dim]
			pRow := c.parentDist[nd.unitBase : nd.unitBase+nd.units]
			for u := 0; u < nd.units; u++ {
				pRow[u] = math.Sqrt(vecmath.SquaredDistanceFlat(pw, c.arena, nd.weightOff+u*c.dim))
			}
		}
		// Probes beyond the opening group are reordered by proximity to
		// the top probe: when screening lets a near-tie through, meeting
		// it early tightens the best bound for everything after it. Scan
		// order never changes the result (the tie rules in bmuMasked are
		// order-independent), only the pruning rate.
		if len(probe) > 4 && nd.pairBase >= 0 {
			pd := c.pairDist[nd.pairBase+int(probe[0])*nd.units:][:nd.units]
			rest := probe[4:]
			sort.SliceStable(rest, func(a, b int) bool {
				da, db := pd[rest[a]], pd[rest[b]]
				if da != db {
					return da < db
				}
				return rest[a] < rest[b]
			})
		}
	}
}

// Pairwise-table build caps: a degenerate model with one huge map must
// not force a quadratic allocation, so oversized nodes simply run without
// a pruning table.
const (
	pairMaxUnits  = 2048    // per-node unit cap for a units×units table
	pairMaxFloats = 1 << 22 // total pairwise entries across the model
)

// buildPairTables precomputes, per node, the quarter-squared distances
// ((d/2)^2) between every pair of unit weights — the triangle-inequality
// pruning tables of bmuMasked, stored in squared space so the hot-path
// comparison needs no square roots. Derived deterministically from the
// arena.
func (c *Compiled) buildPairTables() {
	c.pairDist = c.pairDist[:0]
	for i := range c.nodes {
		nd := &c.nodes[i]
		nd.pairBase = -1
		units := nd.units
		if units > pairMaxUnits || len(c.pairDist)+units*units > pairMaxFloats {
			continue
		}
		base := len(c.pairDist)
		nd.pairBase = base
		c.pairDist = append(c.pairDist, make([]float64, units*units)...)
		pd := c.pairDist[base : base+units*units]
		for a := 0; a < units; a++ {
			rowA := c.arena[nd.weightOff+a*c.dim : nd.weightOff+(a+1)*c.dim]
			for b := a + 1; b < units; b++ {
				d := vecmath.SquaredDistanceFlat(rowA, c.arena, nd.weightOff+b*c.dim) * 0.25
				pd[a*units+b] = d
				pd[b*units+a] = d
			}
		}
	}
}

// buildNormTables precomputes the per-unit squared weight norms and the
// per-node maxima that feed the blocked batch descent's expanded-form
// candidate generator, and resolves the descent's GEMM tile shape for
// this model on this machine (every load path — Compile and both
// deserializers — funnels through here). Derived deterministically from
// the arena.
func (c *Compiled) buildNormTables() {
	c.norms = vecmath.SquaredNorms(c.arena, c.dim, c.norms[:0])
	if cap(c.nodeMaxNorm) < len(c.nodes) {
		c.nodeMaxNorm = make([]float64, len(c.nodes))
	}
	c.nodeMaxNorm = c.nodeMaxNorm[:len(c.nodes)]
	maxUnits := 0
	for i := range c.nodes {
		nd := &c.nodes[i]
		c.nodeMaxNorm[i] = vecmath.MaxOrZero(c.norms[nd.unitBase : nd.unitBase+nd.units])
		if nd.units > maxUnits {
			maxUnits = nd.units
		}
	}
	// Per-node quantized shadow codebooks: the configured precision
	// (after GHSOM_BMU_PRECISION resolution) is sized per node, so under
	// auto only codebooks big enough to pay for quantization carry an
	// arena and the rest stay nil (f64 engine). Derived here with the
	// other tables so every load path gets them; never serialized.
	prec := vecmath.ResolvePrecision(c.cfg.BMUPrecision)
	c.quant = make([]*vecmath.QuantArena, len(c.nodes))
	for i := range c.nodes {
		nd := &c.nodes[i]
		if eff := prec.Effective(nd.units, c.dim); eff != vecmath.PrecisionF64 {
			c.quant[i] = vecmath.BuildQuantArena(
				c.arena[nd.weightOff:nd.weightOff+nd.units*c.dim], c.dim, eff)
		}
	}
	// Sized for the widest codebook of the hierarchy (the root dominates
	// the descent's GEMM work) under the machine's full worker budget —
	// the routing pool's steady-state concurrency — at the record element
	// width of that codebook's resolved precision.
	c.tile = vecmath.ResolveTileElem(c.dim, maxUnits, parallel.Resolve(0),
		prec.Effective(maxUnits, c.dim).RecordElemBytes())
}

// SetBMUPrecision reconfigures the candidate-generation precision of the
// descent and rebuilds the derived quantized tables. Placements are
// bit-identical at every setting; the knob only moves the
// speed/footprint point, like SetParallelism on the pipeline. Not safe
// to call concurrently with routing — reconfigure at load time or
// behind the owner's swap mechanism.
func (c *Compiled) SetBMUPrecision(p vecmath.Precision) {
	c.cfg.BMUPrecision = p
	c.buildNormTables()
}

// BMUPrecision returns the effective candidate-generation rung of the
// model's widest codebook (which dominates descent work) under the
// configured precision and environment — what an operator should read
// as "the precision this model routes at".
func (c *Compiled) BMUPrecision() vecmath.Precision {
	maxUnits := 0
	for i := range c.nodes {
		if c.nodes[i].units > maxUnits {
			maxUnits = c.nodes[i].units
		}
	}
	return vecmath.ResolvePrecision(c.cfg.BMUPrecision).Effective(maxUnits, c.dim)
}

// Dim returns the input dimension.
func (c *Compiled) Dim() int { return c.dim }

// Config returns the configuration the model was trained with.
func (c *Compiled) Config() Config { return c.cfg }

// MQE0 returns the layer-0 quantization error.
func (c *Compiled) MQE0() float64 { return c.mqe0 }

// Mean returns a copy of the layer-0 mean vector.
func (c *Compiled) Mean() []float64 { return append([]float64(nil), c.mean...) }

// NumNodes returns the number of maps in the hierarchy.
func (c *Compiled) NumNodes() int { return len(c.nodes) }

// TotalUnits returns the number of units across all maps — the length of
// the per-unit tables and the arena row count.
func (c *Compiled) TotalUnits() int { return len(c.childIndex) }

// NodeUnits returns the unit count of node id, or 0 when out of range.
func (c *Compiled) NodeUnits(id int) int {
	if id < 0 || id >= len(c.nodes) {
		return 0
	}
	return c.nodes[id].units
}

// UnitWeight returns a copy of the weight vector of the given unit, or
// nil when the (node, unit) pair does not exist.
func (c *Compiled) UnitWeight(nodeID, unit int) []float64 {
	if nodeID < 0 || nodeID >= len(c.nodes) {
		return nil
	}
	nd := &c.nodes[nodeID]
	if unit < 0 || unit >= nd.units {
		return nil
	}
	off := nd.weightOff + unit*c.dim
	return append([]float64(nil), c.arena[off:off+c.dim]...)
}

// ArenaBytes returns the memory footprint of the shared weight arena.
func (c *Compiled) ArenaBytes() int { return len(c.arena) * 8 }

// TableBytes returns the memory footprint of the routing tables (node
// table, child index, counts, unit errors, trained/probe unit lists,
// pairwise pruning tables, and the norm caches of the batch descent).
func (c *Compiled) TableBytes() int {
	const nodeBytes = 11 * 8 // compiledNode fields
	return len(c.nodes)*nodeBytes +
		len(c.childIndex)*4 +
		len(c.counts)*8 +
		len(c.unitQE)*8 +
		len(c.trainedIdx)*4 +
		len(c.probeIdx)*4 +
		len(c.pairDist)*8 +
		len(c.parentDist)*8 +
		c.NormBytes() +
		c.QuantBytes()
}

// NormBytes returns the memory footprint of the norm caches the blocked
// batch descent tiles over: the per-unit squared-norm table plus the
// per-node maxima.
func (c *Compiled) NormBytes() int {
	return len(c.norms)*8 + len(c.nodeMaxNorm)*8
}

// QuantBytes returns the memory footprint of the quantized shadow
// codebooks of the descent's candidate generation (0 when the resolved
// precision leaves every node on the f64 engine).
func (c *Compiled) QuantBytes() int {
	total := 0
	for _, qa := range c.quant {
		total += qa.Bytes()
	}
	return total
}

// BlockShape describes the GEMM block of one hierarchy level as the
// blocked batch descent tiles it: at a level (depth), each record group
// routed into one of Nodes maps is scored against a units×dim weight
// block.
type BlockShape struct {
	// Depth is the level (root = 1).
	Depth int
	// Nodes is the number of maps at the level.
	Nodes int
	// MinUnits and MaxUnits bound the per-node unit counts (GEMM block
	// heights) at the level.
	MinUnits, MaxUnits int
	// Dim is the block width (the feature dimension).
	Dim int
	// WeightBytes is the total weight storage of the level's blocks.
	WeightBytes int
}

// BlockShapes reports, per level, the units×dim GEMM block shapes the
// batch descent will tile — the operator's view of what the engine
// multiplies at each step of the hierarchy.
func (c *Compiled) BlockShapes() []BlockShape {
	var out []BlockShape
	for i := range c.nodes {
		nd := &c.nodes[i]
		for len(out) < nd.depth {
			out = append(out, BlockShape{Depth: len(out) + 1, Dim: c.dim})
		}
		b := &out[nd.depth-1]
		b.Nodes++
		if b.MinUnits == 0 || nd.units < b.MinUnits {
			b.MinUnits = nd.units
		}
		if nd.units > b.MaxUnits {
			b.MaxUnits = nd.units
		}
		b.WeightBytes += nd.units * c.dim * 8
	}
	return out
}

// Stats computes the same structure statistics as GHSOM.Stats from the
// flat tables.
func (c *Compiled) Stats() Stats {
	var s Stats
	for i := range c.nodes {
		nd := &c.nodes[i]
		s.Maps++
		s.Units += nd.units
		if nd.depth > s.MaxDepth {
			s.MaxDepth = nd.depth
		}
		for len(s.MapsPerDepth) < nd.depth {
			s.MapsPerDepth = append(s.MapsPerDepth, 0)
			s.UnitsPerDepth = append(s.UnitsPerDepth, 0)
		}
		s.MapsPerDepth[nd.depth-1]++
		s.UnitsPerDepth[nd.depth-1] += nd.units
		if nd.units > s.LargestMapUnits {
			s.LargestMapUnits = nd.units
		}
		for u := 0; u < nd.units; u++ {
			if c.childIndex[nd.unitBase+u] < 0 {
				s.LeafUnits++
			}
		}
	}
	if s.Maps > 0 {
		s.MeanMapUnits = float64(s.Units) / float64(s.Maps)
	}
	return s
}

// The BMU kernels below accumulate each unit's squared Euclidean
// distance in the exact term order of vecmath.SquaredDistanceFlat,
// abandoning a unit once its partial sum reaches the current best: the
// remaining terms are non-negative, so the final sum could only be >= the
// partial and the unit can no longer win. A winning unit is never
// abandoned, so the chosen BMUs and their distances — and therefore every
// placement — are bit-identical to the unbounded tree-walk kernels. The
// distance loop is written inline (not as a helper) so the hot descent
// carries no per-unit call overhead.

// bmuFull is the full-map BMU search of one compiled node, mirroring
// som.Map.BMU on the dimension-matched path (including the degenerate
// all-NaN contract of reporting unit 0).
func (c *Compiled) bmuFull(x []float64, nd *compiledNode) (int, float64) {
	best, bestVal := -1, math.Inf(1)
	dim := len(x)
	off := nd.weightOff
	for u := 0; u < nd.units; u, off = u+1, off+dim {
		row := c.arena[off : off+dim]
		var sum float64
		j := 0
		for ; j+4 <= dim; j += 4 {
			d0 := x[j] - row[j]
			sum += d0 * d0
			d1 := x[j+1] - row[j+1]
			sum += d1 * d1
			d2 := x[j+2] - row[j+2]
			sum += d2 * d2
			d3 := x[j+3] - row[j+3]
			sum += d3 * d3
			if sum >= bestVal {
				break
			}
		}
		if j+4 <= dim {
			continue // abandoned: this unit cannot win
		}
		for ; j < dim; j++ {
			d := x[j] - row[j]
			sum += d * d
		}
		if sum < bestVal {
			best, bestVal = u, sum
		}
	}
	if best < 0 {
		return 0, bestVal
	}
	return best, bestVal
}

// pairSkipMargin is the relative safety factor of the pairwise-distance
// pruning rule, applied in squared space: a probe u is skipped only when
// (d(u,best)/2)^2 > d2(x,best) * pairSkipMargin. The triangle inequality
// d(x,u) >= d(u,best) - d(x,best) makes the unmargined rule exact in real
// arithmetic; the compiled tables and the running best are computed in
// floating point, whose accumulated relative error over a distance sum is
// ~1e-13 at most. Inflating the threshold by 1e-9 therefore only ever
// keeps extra candidates (which are then judged by their exact canonical
// distance) — it can never skip a unit that would have won or tied — so
// placements remain bit-identical.
const pairSkipMargin = 1 + 1e-9

// bmuMasked is the effective-codebook BMU search of one compiled node,
// mirroring som.Map.BMUMasked: only units that won training data compete,
// and ok is false when the node has none.
//
// The scan is organized for speed without changing the result:
//
//   - Units are probed in descending training-count order (probeIdx), so
//     the likeliest winner is met first and the pruning bound is tight
//     from the start.
//   - The first four probes are scanned together with four independent
//     accumulators, so their serial float-add chains overlap in the
//     pipeline. Each unit's sum is still accumulated in the exact term
//     order of vecmath.SquaredDistanceFlat, so every distance is
//     bit-identical to the tree walk's.
//   - Remaining units are screened by the compiled pairwise-distance
//     table: unit u cannot beat (or tie) the best b when
//     d(u, b) > 2*d(x, b), by the triangle inequality, so most units
//     cost one table load and one compare instead of a distance scan.
//   - Survivors run the canonical distance loop with partial-sum
//     abandonment (strictly above best only — an exact tie must finish
//     so the index rule below can judge it).
//   - Ties resolve to the lowest unit index — exactly the result of
//     BMUMasked's ascending scan.
func (c *Compiled) bmuMasked(x []float64, nd *compiledNode, parentDelta float64) (int, float64, bool) {
	dim := len(x)
	probe := c.probeIdx[nd.trainedBase : nd.trainedBase+nd.trainedLen]
	if len(probe) == 0 {
		return 0, 0, false
	}
	best, bestVal := -1, math.Inf(1)
	arena := c.arena
	// Opening group: up to four probes scanned with independent
	// accumulators so their serial float-add chains overlap in the
	// pipeline. NaN or +Inf sums never pass the comparisons below,
	// mirroring the reference kernel where such units are never selected.
	start := len(probe)
	if start > 4 {
		start = 4
	}
	switch start {
	case 4:
		u0, u1, u2, u3 := int(probe[0]), int(probe[1]), int(probe[2]), int(probe[3])
		r0 := arena[nd.weightOff+u0*dim:][:dim]
		r1 := arena[nd.weightOff+u1*dim:][:dim]
		r2 := arena[nd.weightOff+u2*dim:][:dim]
		r3 := arena[nd.weightOff+u3*dim:][:dim]
		var s0, s1, s2, s3 float64
		for j := 0; j < dim; j++ {
			xv := x[j]
			d0 := xv - r0[j]
			s0 += d0 * d0
			d1 := xv - r1[j]
			s1 += d1 * d1
			d2 := xv - r2[j]
			s2 += d2 * d2
			d3 := xv - r3[j]
			s3 += d3 * d3
		}
		if s0 < bestVal {
			best, bestVal = u0, s0
		}
		if s1 < bestVal || (s1 == bestVal && u1 < best) {
			best, bestVal = u1, s1
		}
		if s2 < bestVal || (s2 == bestVal && u2 < best) {
			best, bestVal = u2, s2
		}
		if s3 < bestVal || (s3 == bestVal && u3 < best) {
			best, bestVal = u3, s3
		}
	case 3:
		u0, u1, u2 := int(probe[0]), int(probe[1]), int(probe[2])
		r0 := arena[nd.weightOff+u0*dim:][:dim]
		r1 := arena[nd.weightOff+u1*dim:][:dim]
		r2 := arena[nd.weightOff+u2*dim:][:dim]
		var s0, s1, s2 float64
		for j := 0; j < dim; j++ {
			xv := x[j]
			d0 := xv - r0[j]
			s0 += d0 * d0
			d1 := xv - r1[j]
			s1 += d1 * d1
			d2 := xv - r2[j]
			s2 += d2 * d2
		}
		if s0 < bestVal {
			best, bestVal = u0, s0
		}
		if s1 < bestVal || (s1 == bestVal && u1 < best) {
			best, bestVal = u1, s1
		}
		if s2 < bestVal || (s2 == bestVal && u2 < best) {
			best, bestVal = u2, s2
		}
	case 2:
		u0, u1 := int(probe[0]), int(probe[1])
		r0 := arena[nd.weightOff+u0*dim:][:dim]
		r1 := arena[nd.weightOff+u1*dim:][:dim]
		var s0, s1 float64
		for j := 0; j < dim; j++ {
			xv := x[j]
			d0 := xv - r0[j]
			s0 += d0 * d0
			d1 := xv - r1[j]
			s1 += d1 * d1
		}
		if s0 < bestVal {
			best, bestVal = u0, s0
		}
		if s1 < bestVal || (s1 == bestVal && u1 < best) {
			best, bestVal = u1, s1
		}
	case 1:
		u0 := int(probe[0])
		r0 := arena[nd.weightOff+u0*dim:][:dim]
		var s0 float64
		for j := 0; j < dim; j++ {
			d0 := x[j] - r0[j]
			s0 += d0 * d0
		}
		if s0 < bestVal {
			best, bestVal = u0, s0
		}
	}
	// Screening rules — a probe u is skipped when either triangle-
	// inequality test excludes it:
	//
	//  1. Best ball: d(u,b) > 2*d(x,b) for the running best b. The
	//     pairwise table stores (d(u,b)/2)^2, so this is one load and one
	//     compare against the running best squared distance, square-root
	//     free.
	//  2. Parent annulus: |d(u,p) - d(x,p)| > d(x,b) for the parent unit
	//     p this node expands, whose exact distance parentDelta the
	//     descent computed one level up: then d(x,u) >= |d(u,p) - d(x,p)|
	//     > d(x,b), so u cannot win or tie. Units outside the annulus
	//     [parentDelta-delta, parentDelta+delta] are skipped with one
	//     table load and two compares.
	var pdRow, pRow []float64
	qbound := math.Inf(1)
	pHi, pLo := math.Inf(1), math.Inf(-1)
	if best >= 0 {
		qbound = bestVal * pairSkipMargin
		if nd.pairBase >= 0 {
			pdRow = c.pairDist[nd.pairBase+best*nd.units:][:nd.units]
		}
		if nd.parent >= 0 && parentDelta == parentDelta {
			pRow = c.parentDist[nd.unitBase : nd.unitBase+nd.units]
			delta := math.Sqrt(bestVal)
			pHi = (parentDelta + delta) * pairSkipMargin
			// The lower bound subtracts two near-equal magnitudes, so a
			// relative margin on the difference would not cover the
			// subtraction's own rounding error; the safety margin must be
			// absolute, scaled to the operands' magnitude.
			pLo = parentDelta - delta - parentDelta*(pairSkipMargin-1)
		}
	}
	// Scan the survivors four at a time with independent accumulators and
	// group abandonment (all four partial sums strictly above best —
	// strict, because an exact tie must finish so the index rule can judge
	// it). The bound only tightens as the scan advances, so screening a
	// later probe against an older, looser bound is always conservative.
	i := start
	for i < len(probe) {
		var pend [4]int
		np := 0
		for ; i < len(probe) && np < 4; i++ {
			u := int(probe[i])
			if pdRow != nil && pdRow[u] > qbound {
				continue // best ball: u cannot win or tie
			}
			if pRow != nil && (pRow[u] > pHi || pRow[u] < pLo) {
				continue // parent annulus: u cannot win or tie
			}
			pend[np] = u
			np++
		}
		prevBest := best
		if np == 4 {
			u0, u1, u2, u3 := pend[0], pend[1], pend[2], pend[3]
			r0 := arena[nd.weightOff+u0*dim:][:dim]
			r1 := arena[nd.weightOff+u1*dim:][:dim]
			r2 := arena[nd.weightOff+u2*dim:][:dim]
			r3 := arena[nd.weightOff+u3*dim:][:dim]
			var s0, s1, s2, s3 float64
			j := 0
			abandoned := false
			for j+8 <= dim {
				lim := j + 8
				for ; j < lim; j++ {
					xv := x[j]
					d0 := xv - r0[j]
					s0 += d0 * d0
					d1 := xv - r1[j]
					s1 += d1 * d1
					d2 := xv - r2[j]
					s2 += d2 * d2
					d3 := xv - r3[j]
					s3 += d3 * d3
				}
				if s0 > bestVal && s1 > bestVal && s2 > bestVal && s3 > bestVal {
					abandoned = true
					break
				}
			}
			if !abandoned {
				for ; j < dim; j++ {
					xv := x[j]
					d0 := xv - r0[j]
					s0 += d0 * d0
					d1 := xv - r1[j]
					s1 += d1 * d1
					d2 := xv - r2[j]
					s2 += d2 * d2
					d3 := xv - r3[j]
					s3 += d3 * d3
				}
				if s0 < bestVal || (s0 == bestVal && u0 < best) {
					best, bestVal = u0, s0
				}
				if s1 < bestVal || (s1 == bestVal && u1 < best) {
					best, bestVal = u1, s1
				}
				if s2 < bestVal || (s2 == bestVal && u2 < best) {
					best, bestVal = u2, s2
				}
				if s3 < bestVal || (s3 == bestVal && u3 < best) {
					best, bestVal = u3, s3
				}
			}
		} else {
			for k := 0; k < np; k++ {
				u := pend[k]
				row := arena[nd.weightOff+u*dim:][:dim]
				var sum float64
				j := 0
				abandoned := false
				for j+8 <= dim {
					lim := j + 8
					for ; j < lim; j++ {
						d := x[j] - row[j]
						sum += d * d
					}
					if sum > bestVal {
						abandoned = true
						break
					}
				}
				if abandoned {
					continue
				}
				for ; j < dim; j++ {
					d := x[j] - row[j]
					sum += d * d
				}
				if sum < bestVal || (sum == bestVal && u < best) {
					best, bestVal = u, sum
				}
			}
		}
		if best != prevBest {
			qbound = bestVal * pairSkipMargin
			if nd.pairBase >= 0 {
				pdRow = c.pairDist[nd.pairBase+best*nd.units:][:nd.units]
			}
			if pRow != nil {
				delta := math.Sqrt(bestVal)
				pHi = (parentDelta + delta) * pairSkipMargin
				pLo = parentDelta - delta - parentDelta*(pairSkipMargin-1)
			}
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestVal, true
}

// Route descends the compiled hierarchy by full-map best-matching units,
// exactly like GHSOM.Route: a dimension mismatch returns a Placement with
// QE = NaN, and placements are byte-identical to the tree walk.
func (c *Compiled) Route(x []float64) Placement {
	if len(x) != c.dim {
		return Placement{NodeID: -1, Unit: -1, QE: math.NaN()}
	}
	ni := 0
	for {
		nd := &c.nodes[ni]
		bmu, d2 := c.bmuFull(x, nd)
		child := c.childIndex[nd.unitBase+bmu]
		if child < 0 {
			return Placement{NodeID: ni, Unit: bmu, Depth: nd.depth, QE: math.Sqrt(d2)}
		}
		ni = int(child)
	}
}

// RouteTrained descends through the effective codebook (units that won
// training data, falling back to the full map when a node has none),
// exactly like GHSOM.RouteTrained, with byte-identical placements.
func (c *Compiled) RouteTrained(x []float64) Placement {
	if len(x) != c.dim {
		return Placement{NodeID: -1, Unit: -1, QE: math.NaN()}
	}
	return c.routeTrainedRow(x)
}

// routeTrainedRow is the table-driven descent kernel: one scan over the
// node's trained-unit list per level, one child-index load to descend.
func (c *Compiled) routeTrainedRow(x []float64) Placement {
	ni := 0
	parentDelta := math.NaN() // no parent ball at the root
	for {
		nd := &c.nodes[ni]
		bmu, d2, ok := c.bmuMasked(x, nd, parentDelta)
		if !ok {
			bmu, d2 = c.bmuFull(x, nd)
		}
		child := c.childIndex[nd.unitBase+bmu]
		if child < 0 {
			return Placement{NodeID: ni, Unit: bmu, Depth: nd.depth, QE: math.Sqrt(d2)}
		}
		parentDelta = math.Sqrt(d2)
		ni = int(child)
	}
}

// RouteFlat routes every row of the flat row-major batch (n rows of
// Dim() values) by full-map descent into out, which must have length at
// least n. Rows are routed concurrently on up to Workers(parallelism, n)
// goroutines (0 = GOMAXPROCS, 1 = serial); placements are positionally
// stable and byte-identical to calling Route per row at every setting.
func (c *Compiled) RouteFlat(flat []float64, n int, out []Placement, parallelism int) error {
	if err := c.checkFlat(flat, n, out); err != nil {
		return err
	}
	parallel.ForEach(parallelism, n, func(i int) {
		row := flat[i*c.dim : (i+1)*c.dim]
		ni := 0
		for {
			nd := &c.nodes[ni]
			bmu, d2 := c.bmuFull(row, nd)
			child := c.childIndex[nd.unitBase+bmu]
			if child < 0 {
				out[i] = Placement{NodeID: ni, Unit: bmu, Depth: nd.depth, QE: math.Sqrt(d2)}
				return
			}
			ni = int(child)
		}
	})
	return nil
}

// routeScratchPool recycles the per-worker state of the blocked batch
// descent: the duplicate-row index, the per-record descent state, and
// the GEMM score tiles. The maps are cleared before being pooled, so no
// caller memory is retained across calls.
var routeScratchPool = sync.Pool{
	New: func() any { return &routeScratch{seen: make(map[string]int, 512)} },
}

type routeScratch struct {
	seen   map[string]int
	ref    []int32   // per chunk row: chunk-relative representative (dedup)
	xn     []float64 // per unique row: squared record norm
	pd     []float64 // per unique row: exact distance at the parent level (NaN = unknown)
	cur    []int32   // per unique row: current node of the descent
	act    []int32   // active unique rows (not yet placed)
	nxt    []int32   // next level's active rows (double buffer)
	counts []int32   // per node: counting-sort state
	order  []int32   // active rows grouped by node
	gidx   []int     // absolute matrix rows of one GEMM tile
	allIdx []int32   // 0..units-1 candidate set for untrained nodes
	scores []float64 // GEMM tile: records×units dots, then expanded distances

	// Quantized candidate-generation tile state (nil/empty until a node
	// with a shadow codebook is descended): per-tile record codes or
	// narrowed rows plus the per-record quantization scale/residual-norm
	// tables the int8 settle margin consumes.
	xq       []int8
	x32      []float32
	rowScale []float64
	rowResid []float64
}

// routeGemmMin is the smallest per-node group the descent scores through
// the blocked engine — smaller groups take the scalar screened probe
// path (bmuMasked), which wins when there is no batch to amortize the
// block over. The record rows per GEMM block are no longer a constant:
// they come from the per-model TileConfig resolved in buildNormTables.
const routeGemmMin = 8

// RouteTrainedFlat routes every row of the flat row-major batch through
// the effective codebook into out — the compiled counterpart of
// GHSOM.RouteTrainedFlat, with byte-identical placements at every
// parallelism setting and zero per-row steady-state allocation.
//
// The descent is level-synchronous and blocked: within a worker chunk,
// records are deduplicated (byte-identical rows — common in real
// traffic, where a flood repeats one encoded vector — are routed once),
// then all records sitting at the same node of the hierarchy are scored
// against that node's units×dim weight block with one blocked
// expanded-form matrix product per group (vecmath.MulBatchT plus the
// compiled norm tables) instead of one scalar probe loop per record.
// Expanded distances only nominate candidates; winners are settled with
// the canonical kernel exactly as bmuMasked would, interior levels skip
// the canonical scan entirely when a single candidate survives the
// margin, and groups too small to fill a block — or records whose
// magnitudes fall outside the expanded form's error model — take the
// scalar screened path, so placements stay byte-identical to the
// per-record tree walk. The dedup index keys alias the caller's flat
// buffer only for the duration of the call (the caller must not mutate
// flat concurrently, which the batch contract already requires) and are
// dropped before the scratch returns to its pool.
func (c *Compiled) RouteTrainedFlat(flat []float64, n int, out []Placement, parallelism int) error {
	if err := c.checkFlat(flat, n, out); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	mat, err := vecmath.MatrixOver(flat, n, c.dim)
	if err != nil {
		return fmt.Errorf("core: route flat batch: %w", err)
	}
	// Chunk cap: keeps each worker's duplicate index small enough to stay
	// cache-resident (duplicate traffic clusters in time, so locality is
	// preserved), and spreads big batches across workers. Each worker
	// claims one pooled scratch for the whole call and chunks are handed
	// out by the work-stealing chunked scheduler, so the per-chunk path
	// touches no pool and no lock; placements are per-slot writes,
	// byte-identical at every worker count.
	const routeChunk = 2048
	w := parallel.Workers(parallelism, n)
	grain := (n + w - 1) / w
	if grain > routeChunk {
		grain = routeChunk
	}
	scratches := make([]*routeScratch, parallel.WorkersGrain(parallelism, n, grain))
	for i := range scratches {
		scratches[i] = routeScratchPool.Get().(*routeScratch)
	}
	parallel.ForEachChunk(parallelism, n, grain, func(wk, lo, hi int) {
		c.routeTrainedChunk(mat, lo, hi, out, scratches[wk])
	})
	for _, sc := range scratches {
		routeScratchPool.Put(sc)
	}
	return nil
}

// grow32 resizes buf to n int32s, reallocating only on capacity growth.
func grow32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growF is grow32 for float64 scratch.
func growF(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// routeTrainedChunk runs the deduplicated level-synchronous descent for
// chunk rows [lo, hi) of mat, writing placements into out at absolute
// row positions.
func (c *Compiled) routeTrainedChunk(mat vecmath.Matrix, lo, hi int, out []Placement, sc *routeScratch) {
	m := hi - lo
	ref := grow32(&sc.ref, m)
	xn := growF(&sc.xn, m)
	pd := growF(&sc.pd, m)
	cur := grow32(&sc.cur, m)
	act := sc.act[:0]
	for i := 0; i < m; i++ {
		row := mat.Row(lo + i)
		key := unsafe.String((*byte)(unsafe.Pointer(&row[0])), len(row)*8)
		if j, ok := sc.seen[key]; ok {
			ref[i] = int32(j)
			continue
		}
		sc.seen[key] = i
		ref[i] = int32(i)
		cur[i] = 0
		xn[i] = vecmath.SumSquares(row)
		pd[i] = math.NaN() // no parent ball at the root
		act = append(act, int32(i))
	}
	clear(sc.seen)

	nodes := len(c.nodes)
	counts := grow32(&sc.counts, nodes)
	for len(act) > 0 {
		// Counting sort groups the active records by their current node:
		// one pass to count, one stable scatter pass. Every record at the
		// same node then shares that node's GEMM blocks this level.
		for i := range counts {
			counts[i] = 0
		}
		for _, r := range act {
			counts[cur[r]]++
		}
		sum := int32(0)
		for ni := 0; ni < nodes; ni++ {
			cnt := counts[ni]
			counts[ni] = sum
			sum += cnt
		}
		order := grow32(&sc.order, len(act))
		for _, r := range act {
			order[counts[cur[r]]] = r
			counts[cur[r]]++
		}
		nxt := sc.nxt[:0]
		start := int32(0)
		for ni := 0; ni < nodes && int(start) < len(order); ni++ {
			end := counts[ni] // post-scatter: end offset of node ni's group
			if end == start {
				continue
			}
			nxt = c.routeLevelNode(mat, lo, ni, order[start:end], xn, pd, cur, out, nxt, sc)
			start = end
		}
		sc.act = act
		act = nxt
		sc.act, sc.nxt = nxt, sc.act
	}
	sc.act = act[:0]

	// Replay the placements of deduplicated rows.
	for i := 0; i < m; i++ {
		if int(ref[i]) != i {
			out[lo+i] = out[lo+int(ref[i])]
		}
	}
}

// routeLevelNode advances one node's record group by one level: the
// group is scored in GEMM blocks of the model's resolved tile rows
// against the node's weight block (or probed scalar when too small),
// each record's BMU is settled exactly, and records descending into a
// child are appended to nxt.
func (c *Compiled) routeLevelNode(mat vecmath.Matrix, lo, ni int, group []int32, xn, pd []float64, cur []int32, out []Placement, nxt []int32, sc *routeScratch) []int32 {
	nd := &c.nodes[ni]
	dim := c.dim
	if len(group) < routeGemmMin {
		for _, r := range group {
			row := mat.Row(lo + int(r))
			bmu, d2, ok := c.bmuMasked(row, nd, pd[r])
			if !ok {
				bmu, d2 = c.bmuFull(row, nd)
			}
			nxt = c.stepRecord(ni, nd, int(r), bmu, d2, true, row, cur, pd, out, lo, nxt)
		}
		return nxt
	}
	weights := c.arena[nd.weightOff : nd.weightOff+nd.units*dim]
	norms := c.norms[nd.unitBase : nd.unitBase+nd.units]
	maxN := c.nodeMaxNorm[ni]
	// The candidate set is the effective codebook; a node with no trained
	// units falls back to the full map, exactly like the scalar descent.
	units := c.trainedIdx[nd.trainedBase : nd.trainedBase+nd.trainedLen]
	masked := len(units) > 0
	if !masked {
		all := grow32(&sc.allIdx, nd.units)
		for u := range all {
			all[u] = int32(u)
		}
		units = all
	}
	qa := c.quant[ni]
	tileRows := c.tile.Rows()
	for gLo := 0; gLo < len(group); gLo += tileRows {
		gHi := gLo + tileRows
		if gHi > len(group) {
			gHi = len(group)
		}
		blk := group[gLo:gHi]
		if qa != nil {
			nxt = c.routeTileQuant(mat, lo, ni, nd, blk, qa, norms, maxN, units, masked, xn, pd, cur, out, nxt, sc)
			continue
		}
		gidx := sc.gidx[:0]
		for _, r := range blk {
			gidx = append(gidx, lo+int(r))
		}
		sc.gidx = gidx
		if cap(sc.scores) < len(blk)*nd.units {
			sc.scores = make([]float64, len(blk)*nd.units)
		}
		scores := sc.scores[:len(blk)*nd.units]
		vecmath.MulBatchT(mat.Subset(gidx), weights, scores)
		for k, r := range blk {
			row := mat.Row(lo + int(r))
			bmu, d2, haveD2 := c.settleNode(row, xn[r], nd, norms, maxN, units, masked, scores[k*nd.units:(k+1)*nd.units])
			nxt = c.stepRecord(ni, nd, int(r), bmu, d2, haveD2, row, cur, pd, out, lo, nxt)
		}
	}
	return nxt
}

// routeTileQuant scores one GEMM tile of records against a node's
// quantized shadow codebook instead of the f64 arena: record rows are
// quantized (int8, with per-record scale and residual norm) or narrowed
// (float32) into the scratch, the reduced-precision dot block runs over
// the node's full padded unit range, and each record settles through
// settleNodeQuant — same placements as the f64 tile path, bit for bit.
func (c *Compiled) routeTileQuant(mat vecmath.Matrix, lo, ni int, nd *compiledNode, blk []int32, qa *vecmath.QuantArena, norms []float64, maxN float64, units []int32, masked bool, xn, pd []float64, cur []int32, out []Placement, nxt []int32, sc *routeScratch) []int32 {
	dim := c.dim
	stride := qa.Stride()
	upad := qa.UnitsPadded()
	rows := len(blk)
	if cap(sc.scores) < rows*upad {
		sc.scores = make([]float64, rows*upad)
	}
	scores := sc.scores[:rows*upad]
	i8 := qa.Precision() == vecmath.PrecisionI8
	if i8 {
		if cap(sc.xq) < rows*stride {
			sc.xq = make([]int8, rows*stride)
		}
		if cap(sc.rowScale) < rows {
			sc.rowScale = make([]float64, rows)
			sc.rowResid = make([]float64, rows)
		}
		xq := sc.xq[:rows*stride]
		rowScale, rowResid := sc.rowScale[:rows], sc.rowResid[:rows]
		for k, r := range blk {
			rowScale[k], rowResid[k] = vecmath.QuantizeRecordQ8(
				mat.Row(lo+int(r)), xq[k*stride:k*stride+dim])
			for j := k*stride + dim; j < (k+1)*stride; j++ {
				xq[j] = 0 // pooled scratch may hold another model's tile
			}
		}
		qa.MulBatchQ8(xq, rows, scores)
	} else {
		if cap(sc.x32) < rows*stride {
			sc.x32 = make([]float32, rows*stride)
		}
		x32 := sc.x32[:rows*stride]
		for k, r := range blk {
			vecmath.NarrowRecord(mat.Row(lo+int(r)), x32[k*stride:k*stride+dim])
			for j := k*stride + dim; j < (k+1)*stride; j++ {
				x32[j] = 0
			}
		}
		qa.MulBatchF32(x32, rows, scores)
	}
	for k, r := range blk {
		row := mat.Row(lo + int(r))
		var xs, exn float64
		if i8 {
			xs, exn = sc.rowScale[:rows][k], sc.rowResid[:rows][k]
		}
		bmu, d2, haveD2 := c.settleNodeQuant(row, xn[r], nd, norms, maxN, units, masked, qa, xs, exn,
			scores[k*upad:k*upad+nd.units])
		nxt = c.stepRecord(ni, nd, int(r), bmu, d2, haveD2, row, cur, pd, out, lo, nxt)
	}
	return nxt
}

// stepRecord places record r at its leaf or descends it one level. When
// the settle skipped the canonical distance (haveD2 false, interior
// fast path) and the unit turns out to be a leaf, the canonical distance
// of the winner is computed here — exactly one canonical scan per
// record, at the only level whose QE is observable.
func (c *Compiled) stepRecord(ni int, nd *compiledNode, r, bmu int, d2 float64, haveD2 bool, row []float64, cur []int32, pd []float64, out []Placement, lo int, nxt []int32) []int32 {
	child := c.childIndex[nd.unitBase+bmu]
	if child < 0 {
		if !haveD2 {
			d2 = vecmath.SquaredDistanceFlat(row, c.arena, nd.weightOff+bmu*c.dim)
		}
		out[lo+r] = Placement{NodeID: ni, Unit: bmu, Depth: nd.depth, QE: math.Sqrt(d2)}
		return nxt
	}
	cur[r] = child
	if haveD2 {
		pd[r] = math.Sqrt(d2)
	} else {
		pd[r] = math.NaN() // scalar fallback below just skips the annulus screen
	}
	return append(nxt, int32(r))
}

// settleNode resolves one record's BMU at one node from its GEMM dot
// row, byte-identically to the scalar descent (bmuMasked with bmuFull
// fallback): expanded-form distances nominate candidates within the
// settle margin, the canonical kernel judges them (ties to the lowest
// unit index), and degenerate magnitudes or empty candidate sets fall
// back to the scalar kernels. units is the ascending candidate set —
// the node's trained units (masked true) or every unit when none
// trained, mirroring the scalar fallback chain. haveD2 reports whether
// d2 is the settled canonical distance; it is false on the interior
// fast path where a single candidate survived and no canonical scan was
// needed. dots is overwritten with expanded distances.
func (c *Compiled) settleNode(row []float64, xn float64, nd *compiledNode, norms []float64, maxN float64, units []int32, masked bool, dots []float64) (int, float64, bool) {
	scalar := func() (int, float64, bool) {
		if masked {
			if bmu, d2, ok := c.bmuMasked(row, nd, math.NaN()); ok {
				return bmu, d2, true
			}
		}
		bmu, d2 := c.bmuFull(row, nd)
		return bmu, d2, true
	}
	if !vecmath.ExpandGuardOK(xn, maxN) {
		return scalar()
	}
	minD := math.Inf(1)
	for _, u32 := range units {
		u := u32
		d := xn + norms[u] - 2*dots[u]
		dots[u] = d
		if d < minD {
			minD = d
		}
	}
	thr := minD + vecmath.ExpandSettleRel*(xn+maxN)
	cand, ncand := -1, 0
	for _, u32 := range units {
		if dots[u32] <= thr {
			cand = int(u32)
			if ncand++; ncand > 1 {
				break
			}
		}
	}
	if ncand == 1 {
		// The scalar winner is always within the margin, so a unique
		// candidate is it; its canonical distance is deferred until
		// observable (leaf QE).
		return cand, 0, false
	}
	best, bestVal := -1, math.Inf(1)
	for _, u32 := range units {
		u := int(u32)
		if dots[u] <= thr {
			if d := vecmath.SquaredDistanceFlat(row, c.arena, nd.weightOff+u*c.dim); d < bestVal {
				best, bestVal = u, d
			}
		}
	}
	if best >= 0 {
		return best, bestVal, true
	}
	// All candidate distances were NaN: defer to the scalar kernels,
	// whose degenerate contracts are authoritative.
	return scalar()
}

// settleNodeQuant is settleNode with the shadow codebook as candidate
// generator: the expanded-form rescale uses the quantized dots (int8
// dots rescaled by the record and unit scales; float32 dots used as
// is), and the settle margin is widened by the rung's rigorous
// per-call dot-error bound so the true winner — judged canonically,
// ties to the lowest unit index — can never be screened out. xs/exn
// carry the record's int8 scale and residual norm (unused for f32).
func (c *Compiled) settleNodeQuant(row []float64, xn float64, nd *compiledNode, norms []float64, maxN float64, units []int32, masked bool, qa *vecmath.QuantArena, xs, exn float64, dots []float64) (int, float64, bool) {
	scalar := func() (int, float64, bool) {
		if masked {
			if bmu, d2, ok := c.bmuMasked(row, nd, math.NaN()); ok {
				return bmu, d2, true
			}
		}
		bmu, d2 := c.bmuFull(row, nd)
		return bmu, d2, true
	}
	if !vecmath.ExpandGuardOK(xn, maxN) {
		return scalar()
	}
	var slack float64
	minD := math.Inf(1)
	if qa.Precision() == vecmath.PrecisionI8 {
		scales := qa.Scales()
		for _, u32 := range units {
			u := u32
			d := xn + norms[u] - 2*(xs*scales[u]*dots[u])
			dots[u] = d
			if d < minD {
				minD = d
			}
		}
		slack = vecmath.QuantSettleSlack(qa.DotErrBoundQ8(math.Sqrt(xn), exn))
	} else {
		if !vecmath.F32GuardOK(xn, maxN) {
			return scalar()
		}
		for _, u32 := range units {
			u := u32
			d := xn + norms[u] - 2*dots[u]
			dots[u] = d
			if d < minD {
				minD = d
			}
		}
		slack = vecmath.QuantSettleSlack(vecmath.F32DotErrBound(c.dim, xn, maxN))
	}
	thr := minD + vecmath.ExpandSettleRel*(xn+maxN) + slack
	cand, ncand := -1, 0
	for _, u32 := range units {
		if dots[u32] <= thr {
			cand = int(u32)
			if ncand++; ncand > 1 {
				break
			}
		}
	}
	if ncand == 1 {
		return cand, 0, false
	}
	best, bestVal := -1, math.Inf(1)
	for _, u32 := range units {
		u := int(u32)
		if dots[u] <= thr {
			if d := vecmath.SquaredDistanceFlat(row, c.arena, nd.weightOff+u*c.dim); d < bestVal {
				best, bestVal = u, d
			}
		}
	}
	if best >= 0 {
		return best, bestVal, true
	}
	return scalar()
}

func (c *Compiled) checkFlat(flat []float64, n int, out []Placement) error {
	if len(flat) < n*c.dim {
		return fmt.Errorf("core: route flat batch of %d rows from %d values, want >= %d", n, len(flat), n*c.dim)
	}
	if len(out) < n {
		return fmt.Errorf("core: route flat batch of %d rows into %d placements", n, len(out))
	}
	return nil
}

// Decompile rebuilds the pointer-tree GHSOM from the compiled tables —
// the inverse of Compile, used when a binary envelope is loaded and the
// structural API (Stats, TreeString, U-matrices) is still wanted. The
// rebuilt model routes byte-identically to the Compiled.
func (c *Compiled) Decompile() (*GHSOM, error) {
	g := &GHSOM{
		cfg:  c.cfg,
		dim:  c.dim,
		mean: append([]float64(nil), c.mean...),
		mqe0: c.mqe0,
	}
	g.nodes = make([]*Node, len(c.nodes))
	for i := range c.nodes {
		nd := &c.nodes[i]
		m, err := som.New(nd.rows, nd.cols, c.dim)
		if err != nil {
			return nil, fmt.Errorf("core: decompile node %d: %w", i, err)
		}
		for u := 0; u < nd.units; u++ {
			off := nd.weightOff + u*c.dim
			if err := m.SetWeight(u, c.arena[off:off+c.dim]); err != nil {
				return nil, fmt.Errorf("core: decompile node %d unit %d: %w", i, u, err)
			}
		}
		counts := make([]int, nd.units)
		qes := make([]float64, nd.units)
		for u := 0; u < nd.units; u++ {
			counts[u] = int(c.counts[nd.unitBase+u])
			qes[u] = c.unitQE[nd.unitBase+u]
		}
		g.nodes[i] = &Node{
			ID:         i,
			Depth:      nd.depth,
			Map:        m,
			ParentUnit: nd.parentUnit,
			UnitQE:     qes,
			UnitCount:  counts,
		}
	}
	for i := range c.nodes {
		nd := &c.nodes[i]
		if nd.parent == -1 {
			if g.root != nil {
				return nil, fmt.Errorf("core: decompile: multiple roots (%d and %d)", g.root.ID, i)
			}
			g.root = g.nodes[i]
			continue
		}
		if nd.parent < 0 || nd.parent >= len(c.nodes) {
			return nil, fmt.Errorf("core: decompile node %d: parent %d out of range", i, nd.parent)
		}
		p := g.nodes[nd.parent]
		if p.Children == nil {
			p.Children = make(map[int]*Node)
		}
		p.Children[nd.parentUnit] = g.nodes[i]
	}
	if g.root == nil {
		return nil, fmt.Errorf("core: decompile: model has no root node")
	}
	return g, nil
}
