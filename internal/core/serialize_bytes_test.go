package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"unsafe"
)

// alignedCopyAt places blob into an 8-aligned backing buffer so that the
// returned slice's base address has the same (mod 8) residue as file
// offset blobOff in a page-aligned mapping — letting tests reproduce any
// file-offset alignment deterministically on the heap.
func alignedCopyAt(blob []byte, blobOff int) []byte {
	backing := make([]float64, (blobOff+len(blob))/8+2)
	raw := unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), len(backing)*8)
	misalign := blobOff % 8
	copy(raw[misalign:], blob)
	return raw[misalign : misalign+len(blob)]
}

// routesIdentical routes n random vectors through both models and
// requires bit-identical placements from every routing entry point.
func routesIdentical(t *testing.T, a, b *Compiled, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n = 200
	flat := make([]float64, n*a.dim)
	for i := range flat {
		flat[i] = rng.Float64() * 12
	}
	for i := 0; i < n; i++ {
		x := flat[i*a.dim : (i+1)*a.dim]
		pa, pb := a.Route(x), b.Route(x)
		if pa != pb && !(math.IsNaN(pa.QE) && math.IsNaN(pb.QE)) {
			t.Fatalf("Route diverged at %d: %+v vs %+v", i, pa, pb)
		}
		ta, tb := a.RouteTrained(x), b.RouteTrained(x)
		if ta != tb && !(math.IsNaN(ta.QE) && math.IsNaN(tb.QE)) {
			t.Fatalf("RouteTrained diverged at %d: %+v vs %+v", i, ta, tb)
		}
	}
	for _, par := range []int{1, 0} {
		oa := make([]Placement, n)
		ob := make([]Placement, n)
		if err := a.RouteTrainedFlat(flat, n, oa, par); err != nil {
			t.Fatal(err)
		}
		if err := b.RouteTrainedFlat(flat, n, ob, par); err != nil {
			t.Fatal(err)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("RouteTrainedFlat(par=%d) diverged at %d: %+v vs %+v", par, i, oa[i], ob[i])
			}
		}
	}
}

func trainedCompiled(t testing.TB, seed int64) *Compiled {
	t.Helper()
	cfg := quickConfig()
	cfg.Tau1 = 0.5
	cfg.Tau2 = 0.02
	g, err := Train(fourBlobs(seed, 60), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return Compile(g)
}

func TestReadCompiledBinaryBytesMatchesStream(t *testing.T) {
	c := trainedCompiled(t, 51)
	var blob bytes.Buffer
	if err := c.WriteBinary(&blob); err != nil {
		t.Fatal(err)
	}
	stream, err := ReadCompiledBinary(bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromBytes, err := ReadCompiledBinaryBytes(blob.Bytes(), false)
	if err != nil {
		t.Fatal(err)
	}
	if fromBytes.MappedBytes() != 0 {
		t.Fatalf("copy-mode load reports %d mapped bytes", fromBytes.MappedBytes())
	}
	if fromBytes.dim != stream.dim || fromBytes.mqe0 != stream.mqe0 ||
		len(fromBytes.nodes) != len(stream.nodes) {
		t.Fatal("bytes reader metadata diverged from stream reader")
	}
	routesIdentical(t, stream, fromBytes, 1)

	// Both readers must re-serialize to the same bytes.
	var again bytes.Buffer
	if err := fromBytes.WriteBinary(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), blob.Bytes()) {
		t.Fatal("bytes-loaded model re-serialized differently")
	}
}

func TestWriteBinaryAtZeroCopyViews(t *testing.T) {
	c := trainedCompiled(t, 52)
	// Every file offset residue must produce an aligned, viewable blob.
	for blobOff := 0; blobOff < 16; blobOff++ {
		var buf bytes.Buffer
		if err := c.WriteBinaryAt(&buf, int64(blobOff)); err != nil {
			t.Fatal(err)
		}
		data := alignedCopyAt(buf.Bytes(), blobOff)
		m, err := ReadCompiledBinaryBytes(data, true)
		if err != nil {
			t.Fatalf("blobOff %d: %v", blobOff, err)
		}
		if m.MappedBytes() == 0 {
			t.Fatalf("blobOff %d: aligned blob did not zero-copy", blobOff)
		}
		wantMapped := len(m.counts)*16 + len(m.arena)*8
		if m.MappedBytes() != wantMapped {
			t.Fatalf("blobOff %d: MappedBytes = %d, want %d", blobOff, m.MappedBytes(), wantMapped)
		}
		// The arena must alias data, not a heap copy.
		if &data[len(data)-8] != (*byte)(unsafe.Pointer(&m.arena[len(m.arena)-1])) {
			t.Fatalf("blobOff %d: arena does not alias the source buffer", blobOff)
		}
		routesIdentical(t, c, m, int64(100+blobOff))
	}
}

func TestReadCompiledBinaryBytesLegacyUnaligned(t *testing.T) {
	c := trainedCompiled(t, 53)
	var buf bytes.Buffer
	if err := c.WriteBinary(&buf); err != nil { // unpadded legacy blob
		t.Fatal(err)
	}
	// Sweep base residues: whatever the alignment lands on, the load must
	// succeed; when the tables happen to be misaligned it must fall back
	// to copies rather than fail.
	sawCopy := false
	for off := 0; off < 8; off++ {
		m, err := ReadCompiledBinaryBytes(alignedCopyAt(buf.Bytes(), off), true)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if m.MappedBytes() == 0 {
			sawCopy = true
		}
		routesIdentical(t, c, m, int64(200+off))
	}
	if !sawCopy {
		t.Fatal("all 8 residues aligned — alignment fallback never exercised")
	}
}

func TestReadCompiledBinaryBytesRejectsCorrupt(t *testing.T) {
	c := trainedCompiled(t, 54)
	var buf bytes.Buffer
	if err := c.WriteBinaryAt(&buf, 0); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := ReadCompiledBinaryBytes(blob[:cut], true); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := ReadCompiledBinaryBytes(append(bytes.Clone(blob), 0), true); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatal("trailing byte accepted")
	}
	bad := bytes.Clone(blob)
	bad[0] = 'X'
	if _, err := ReadCompiledBinaryBytes(bad, true); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// FuzzReadCompiledBinaryBytes asserts the bytes reader never panics and
// agrees with the streaming reader on accept/reject for arbitrary
// blobs (modulo the bytes reader's stricter no-trailing-bytes rule).
func FuzzReadCompiledBinaryBytes(f *testing.F) {
	c := trainedCompiled(f, 55)
	var buf bytes.Buffer
	if err := c.WriteBinaryAt(&buf, 0); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("GHSOMCB1"))
	f.Add([]byte(""))
	mut := bytes.Clone(valid)
	if len(mut) > 32 {
		mut[12] ^= 0xff
		mut[28] ^= 0x01
	}
	f.Add(mut)
	f.Fuzz(func(t *testing.T, in []byte) {
		m, err := ReadCompiledBinaryBytes(in, true)
		sm, serr := ReadCompiledBinary(bytes.NewReader(in))
		if err != nil {
			// The stream reader tolerates trailing bytes; the bytes
			// reader must reject only for that reason when the stream
			// reader accepts.
			if serr == nil && !strings.Contains(err.Error(), "trailing") {
				t.Fatalf("bytes reader rejected (%v) what stream reader accepted", err)
			}
			return
		}
		if serr != nil {
			t.Fatalf("bytes reader accepted what stream reader rejected (%v)", serr)
		}
		x := make([]float64, m.Dim())
		if p := m.RouteTrained(x); p.NodeID < 0 {
			t.Fatal("loaded model RouteTrained to invalid node")
		}
		_ = sm
	})
}
