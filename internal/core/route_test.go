package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func trainedModel(t *testing.T) *GHSOM {
	t.Helper()
	data := fourBlobs(20, 100)
	cfg := quickConfig()
	cfg.Tau1 = 0.5
	cfg.Tau2 = 0.02
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRouteReachesLeaf(t *testing.T) {
	g := trainedModel(t)
	p := g.Route([]float64{0, 0})
	if p.NodeID < 0 || p.Unit < 0 {
		t.Fatalf("invalid placement %+v", p)
	}
	node := g.Node(p.NodeID)
	if node == nil {
		t.Fatal("placement references unknown node")
	}
	if !node.IsLeafUnit(p.Unit) {
		t.Error("Route stopped at a unit that has a child")
	}
	if p.Depth != node.Depth {
		t.Errorf("placement depth %d, node depth %d", p.Depth, node.Depth)
	}
	if math.IsNaN(p.QE) || p.QE < 0 {
		t.Errorf("bad QE %v", p.QE)
	}
}

func TestRouteDimensionMismatch(t *testing.T) {
	g := trainedModel(t)
	p := g.Route([]float64{1, 2, 3})
	if p.NodeID != -1 || !math.IsNaN(p.QE) {
		t.Errorf("dim mismatch placement = %+v, want sentinel", p)
	}
	if g.Path([]float64{1}) != nil {
		t.Error("Path with wrong dim should be nil")
	}
}

func TestRouteAll(t *testing.T) {
	g := trainedModel(t)
	data := fourBlobs(21, 10)
	ps := g.RouteAll(data)
	if len(ps) != len(data) {
		t.Fatalf("got %d placements for %d rows", len(ps), len(data))
	}
	for i, p := range ps {
		if p.NodeID < 0 {
			t.Errorf("row %d invalid placement", i)
		}
	}
}

func TestPathConsistentWithRoute(t *testing.T) {
	g := trainedModel(t)
	for _, x := range [][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}} {
		path := g.Path(x)
		if len(path) == 0 {
			t.Fatal("empty path")
		}
		p := g.Route(x)
		last := path[len(path)-1]
		if last != p.Key() {
			t.Errorf("path end %v != route key %v", last, p.Key())
		}
		// First hop is always on the root map.
		if path[0].NodeID != g.Root().ID {
			t.Errorf("path starts at node %d, want root %d", path[0].NodeID, g.Root().ID)
		}
		// Path length equals placement depth.
		if len(path) != p.Depth {
			t.Errorf("path length %d != depth %d", len(path), p.Depth)
		}
	}
}

func TestPropRouteAlwaysTerminatesAtLeaf(t *testing.T) {
	g := trainedModel(t)
	rng := rand.New(rand.NewSource(30))
	for i := 0; i < 500; i++ {
		x := []float64{rng.NormFloat64() * 20, rng.NormFloat64() * 20}
		p := g.Route(x)
		n := g.Node(p.NodeID)
		if n == nil {
			t.Fatalf("iteration %d: placement node missing", i)
		}
		if !n.IsLeafUnit(p.Unit) {
			t.Fatalf("iteration %d: placement not at leaf", i)
		}
		if p.QE < 0 || math.IsNaN(p.QE) {
			t.Fatalf("iteration %d: bad QE %v", i, p.QE)
		}
	}
}

func TestRouteTrainedStaysOnCodebook(t *testing.T) {
	g := trainedModel(t)
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 300; i++ {
		x := []float64{rng.NormFloat64() * 20, rng.NormFloat64() * 20}
		p := g.RouteTrained(x)
		n := g.Node(p.NodeID)
		if n == nil {
			t.Fatal("placement node missing")
		}
		// Every RouteTrained placement must carry training evidence
		// (unless the whole map won nothing, which cannot happen for a
		// trained model's visited maps).
		if n.UnitCount[p.Unit] == 0 {
			t.Fatalf("RouteTrained landed on a data-less unit: node %d unit %d", p.NodeID, p.Unit)
		}
		if p.QE < 0 || math.IsNaN(p.QE) {
			t.Fatalf("bad QE %v", p.QE)
		}
	}
}

func TestRouteTrainedQEAtLeastRoute(t *testing.T) {
	// Restricting the search space cannot find a closer unit than the
	// unrestricted search on the same map; across maps the leaf may
	// differ, but for training points the two agree almost always. Check
	// the weaker invariant on training-like data.
	g := trainedModel(t)
	for _, x := range [][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}} {
		full := g.Route(x)
		trained := g.RouteTrained(x)
		if trained.QE+1e-9 < 0 {
			t.Fatal("negative QE")
		}
		// Training cluster centers must route identically.
		if full.Key() != trained.Key() {
			t.Errorf("center %v: Route %v vs RouteTrained %v", x, full.Key(), trained.Key())
		}
	}
}

func TestRouteTrainedDimMismatch(t *testing.T) {
	g := trainedModel(t)
	p := g.RouteTrained([]float64{1})
	if p.NodeID != -1 || !math.IsNaN(p.QE) {
		t.Errorf("dim mismatch placement = %+v", p)
	}
}

// TestRouteTrainedFlatMatchesPerRow verifies the flat batch descent is
// bit-identical to RouteTrained per row at every worker count.
func TestRouteTrainedFlatMatchesPerRow(t *testing.T) {
	g := trainedModel(t)
	rng := rand.New(rand.NewSource(44))
	n := 400
	flat := make([]float64, n*g.Dim())
	for i := range flat {
		flat[i] = rng.NormFloat64() * 15
	}
	want := make([]Placement, n)
	for i := 0; i < n; i++ {
		want[i] = g.RouteTrained(flat[i*g.Dim() : (i+1)*g.Dim()])
	}
	for _, p := range []int{1, 2, 8, 0} {
		out := make([]Placement, n)
		if err := g.RouteTrainedFlat(flat, n, out, p); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("p=%d row %d: flat %+v, per-row %+v", p, i, out[i], want[i])
			}
		}
	}
}

func TestRouteTrainedFlatValidation(t *testing.T) {
	g := trainedModel(t)
	flat := make([]float64, 3*g.Dim())
	if err := g.RouteTrainedFlat(flat, 4, make([]Placement, 4), 1); err == nil {
		t.Error("short flat accepted")
	}
	if err := g.RouteTrainedFlat(flat, 3, make([]Placement, 2), 1); err == nil {
		t.Error("short out accepted")
	}
}

func TestLeafQEMatchesRoute(t *testing.T) {
	g := trainedModel(t)
	x := []float64{3, 7}
	if got, want := g.LeafQE(x), g.Route(x).QE; got != want {
		t.Errorf("LeafQE = %v, Route QE = %v", got, want)
	}
}

func TestNearestUnitWeight(t *testing.T) {
	g := trainedModel(t)
	p := g.Route([]float64{0, 0})
	w := g.NearestUnitWeight(p.Key())
	if w == nil {
		t.Fatal("nil weight for valid key")
	}
	if len(w) != g.Dim() {
		t.Errorf("weight dim %d", len(w))
	}
	// Mutating the returned slice must not affect the model.
	w[0] = 1e9
	w2 := g.NearestUnitWeight(p.Key())
	if w2[0] == 1e9 {
		t.Error("NearestUnitWeight exposes internal storage")
	}
	if g.NearestUnitWeight(UnitKey{NodeID: -1, Unit: 0}) != nil {
		t.Error("invalid node key should return nil")
	}
	if g.NearestUnitWeight(UnitKey{NodeID: 0, Unit: 9999}) != nil {
		t.Error("invalid unit key should return nil")
	}
}

func TestUnitKeyString(t *testing.T) {
	k := UnitKey{NodeID: 3, Unit: 7}
	if k.String() != "3/7" {
		t.Errorf("String = %q", k.String())
	}
}

func TestMeanReturnsCopy(t *testing.T) {
	g := trainedModel(t)
	m := g.Mean()
	m[0] = 1e9
	if g.Mean()[0] == 1e9 {
		t.Error("Mean exposes internal storage")
	}
}

func TestTreeString(t *testing.T) {
	g := trainedModel(t)
	s := g.TreeString()
	if !strings.Contains(s, "[node 0]") {
		t.Errorf("TreeString missing root: %q", s)
	}
	if !strings.Contains(s, "depth=1") {
		t.Error("TreeString missing depth")
	}
	// Line count equals map count.
	lines := strings.Count(strings.TrimRight(s, "\n"), "\n") + 1
	if lines != g.Stats().Maps {
		t.Errorf("TreeString has %d lines, want %d maps", lines, g.Stats().Maps)
	}
}

func TestStatsInternalConsistency(t *testing.T) {
	g := trainedModel(t)
	st := g.Stats()
	var mapsSum, unitsSum int
	for d := range st.MapsPerDepth {
		mapsSum += st.MapsPerDepth[d]
		unitsSum += st.UnitsPerDepth[d]
	}
	if mapsSum != st.Maps {
		t.Errorf("MapsPerDepth sums to %d, want %d", mapsSum, st.Maps)
	}
	if unitsSum != st.Units {
		t.Errorf("UnitsPerDepth sums to %d, want %d", unitsSum, st.Units)
	}
	if st.LeafUnits > st.Units {
		t.Error("more leaf units than units")
	}
	if st.LargestMapUnits > st.Units {
		t.Error("largest map bigger than total")
	}
	if !strings.Contains(st.String(), "maps=") {
		t.Error("Stats.String malformed")
	}
}
