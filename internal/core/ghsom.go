// Package core implements the Growing Hierarchical Self-Organizing Map
// (GHSOM) — the primary contribution reproduced by this repository.
//
// A GHSOM is a tree of small SOMs. Training starts with a virtual layer-0
// map consisting of a single unit whose weight is the mean of all training
// data; its quantization error mqe0 measures the total variation of the
// data. Layer 1 is a 2x2 SOM that grows horizontally — inserting rows or
// columns between the highest-error unit and its most dissimilar neighbor —
// until its mean unit error falls below tau1 times the error of its parent
// unit. Any unit that still represents its data too coarsely (unit error
// above tau2 times mqe0) is expanded vertically with a child map trained
// only on the records mapped to that unit. The two parameters therefore
// control the shape of the model: tau1 the breadth of each map, tau2 the
// overall depth/granularity of the hierarchy.
//
// Reference: Dittenbach, Merkl, Rauber — "The Growing Hierarchical
// Self-Organizing Map" (IJCNN 2000); Rauber, Merkl, Dittenbach (IEEE TNN
// 2002). This is the algorithm applied to network intrusion detection by
// the DSN 2013 paper this repository reproduces.
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"ghsom/internal/som"
	"ghsom/internal/vecmath"
)

// Errors returned by the package.
var (
	// ErrNoData is returned when training is attempted with no data.
	ErrNoData = errors.New("core: no training data")
	// ErrBadConfig is returned when a Config fails validation.
	ErrBadConfig = errors.New("core: invalid config")
)

// Config controls GHSOM training. Obtain defaults with DefaultConfig and
// override as needed; all fields are validated by Train.
type Config struct {
	// Tau1 is the breadth parameter: a map stops growing horizontally once
	// its mean unit quantization error drops below Tau1 times the
	// quantization error of its parent unit. Smaller values produce larger,
	// flatter maps. Must be in (0, 1].
	Tau1 float64
	// Tau2 is the depth parameter: a unit is expanded into a child map
	// while its quantization error exceeds Tau2 times the layer-0 error of
	// the whole data set. Smaller values produce deeper hierarchies. Must
	// be in (0, 1].
	Tau2 float64
	// MaxDepth caps hierarchy depth (layer-1 map has depth 1). Must be at
	// least 1.
	MaxDepth int
	// MaxMapUnits caps the number of units any single map may grow to.
	MaxMapUnits int
	// MaxGrowIters caps the number of row/column insertions per map.
	MaxGrowIters int
	// MinMapData is the minimum number of records a unit must win before
	// it may be expanded into a child map.
	MinMapData int
	// EpochsPerGrowth is the number of training epochs between growth
	// checks.
	EpochsPerGrowth int
	// FineTuneEpochs is the number of additional epochs after a map stops
	// growing.
	FineTuneEpochs int
	// Alpha0 and AlphaEnd are the online learning-rate schedule endpoints.
	Alpha0, AlphaEnd float64
	// RadiusEnd is the final neighborhood radius; the initial radius is
	// always derived from the current map size.
	RadiusEnd float64
	// Kernel is the SOM neighborhood function.
	Kernel som.Kernel
	// Decay is the SOM parameter schedule.
	Decay som.Decay
	// Batch selects deterministic batch training instead of online
	// stochastic training for each map.
	Batch bool
	// InitSpread is the standard deviation of the gaussian jitter used to
	// initialize child maps around their parent unit's weight.
	InitSpread float64
	// OrientChildren initializes each child 2x2 map from the parent
	// unit's grid neighborhood so child maps inherit the parent layer's
	// orientation (the coherent-orientation refinement of the original
	// GHSOM papers). When false, children start as jittered copies of
	// their data mean.
	OrientChildren bool
	// Seed drives all stochastic choices; identical seeds and data yield
	// identical models. Each node of the hierarchy trains on its own RNG
	// stream derived deterministically from Seed and the node's position in
	// the tree, so the model is reproducible at every Parallelism setting.
	Seed int64
	// CollectTrace enables recording of the per-map growth trace used by
	// the convergence and growth figures. Off by default to save memory.
	CollectTrace bool
	// Parallelism bounds the worker goroutines used to train independent
	// sibling subtrees concurrently and to run batch BMU passes: 0 means
	// GOMAXPROCS, 1 forces serial execution. Models are bit-for-bit
	// identical for every setting. The knob is an execution detail, not
	// model state, and is excluded from serialized models.
	Parallelism int `json:"-"`
	// BMUPrecision selects the candidate-generation rung of the blocked
	// BMU engine (vecmath.PrecisionAuto/F64/F32/I8) for training and
	// compiled routing. Like Parallelism, it never changes results —
	// reduced-precision arenas only nominate candidates and the exact
	// settle keeps winners bit-identical — so it is an execution detail
	// excluded from serialized models.
	BMUPrecision vecmath.Precision `json:"-"`
}

// DefaultConfig returns the configuration used by the reproduction
// experiments: tau1=0.6, tau2=0.03, online training.
func DefaultConfig() Config {
	return Config{
		Tau1:            0.6,
		Tau2:            0.03,
		MaxDepth:        4,
		MaxMapUnits:     100,
		MaxGrowIters:    20,
		MinMapData:      30,
		EpochsPerGrowth: 5,
		FineTuneEpochs:  10,
		Alpha0:          0.5,
		AlphaEnd:        0.01,
		RadiusEnd:       0.5,
		Kernel:          som.KernelGaussian,
		Decay:           som.DecayExponential,
		InitSpread:      0.05,
		OrientChildren:  true,
		Seed:            1,
	}
}

// Validate checks the configuration, returning an error wrapping
// ErrBadConfig when a field is out of range.
func (c Config) Validate() error {
	switch {
	case !(c.Tau1 > 0 && c.Tau1 <= 1):
		return fmt.Errorf("tau1 %v outside (0, 1]: %w", c.Tau1, ErrBadConfig)
	case !(c.Tau2 > 0 && c.Tau2 <= 1):
		return fmt.Errorf("tau2 %v outside (0, 1]: %w", c.Tau2, ErrBadConfig)
	case c.MaxDepth < 1:
		return fmt.Errorf("maxDepth %d < 1: %w", c.MaxDepth, ErrBadConfig)
	case c.MaxMapUnits < 4:
		return fmt.Errorf("maxMapUnits %d < 4: %w", c.MaxMapUnits, ErrBadConfig)
	case c.MaxGrowIters < 0:
		return fmt.Errorf("maxGrowIters %d < 0: %w", c.MaxGrowIters, ErrBadConfig)
	case c.MinMapData < 1:
		return fmt.Errorf("minMapData %d < 1: %w", c.MinMapData, ErrBadConfig)
	case c.EpochsPerGrowth < 1:
		return fmt.Errorf("epochsPerGrowth %d < 1: %w", c.EpochsPerGrowth, ErrBadConfig)
	case c.FineTuneEpochs < 0:
		return fmt.Errorf("fineTuneEpochs %d < 0: %w", c.FineTuneEpochs, ErrBadConfig)
	case !(c.Alpha0 > 0 && c.Alpha0 <= 1):
		return fmt.Errorf("alpha0 %v outside (0, 1]: %w", c.Alpha0, ErrBadConfig)
	case c.AlphaEnd < 0 || c.AlphaEnd > c.Alpha0:
		return fmt.Errorf("alphaEnd %v outside [0, alpha0]: %w", c.AlphaEnd, ErrBadConfig)
	case !c.Kernel.Valid():
		return fmt.Errorf("kernel %v: %w", c.Kernel, ErrBadConfig)
	case !c.Decay.Valid():
		return fmt.Errorf("decay %v: %w", c.Decay, ErrBadConfig)
	case c.InitSpread < 0:
		return fmt.Errorf("initSpread %v < 0: %w", c.InitSpread, ErrBadConfig)
	}
	return nil
}

// Node is one map in the GHSOM hierarchy.
type Node struct {
	// ID is a stable, training-order identifier unique within the model.
	ID int
	// Depth is the node's layer: the root (layer-1) map has depth 1.
	Depth int
	// Map is the trained SOM of this node.
	Map *som.Map
	// ParentUnit is the unit index in the parent map that this node
	// expands; -1 for the root.
	ParentUnit int
	// Children maps a unit index of this node's Map to the child expanding
	// it. Units without children are leaves of the hierarchy at this node.
	Children map[int]*Node
	// UnitQE holds the mean quantization error of each unit over the
	// training records mapped to it (zero for units that won nothing).
	UnitQE []float64
	// UnitCount holds the number of training records mapped to each unit.
	UnitCount []int
}

// IsLeafUnit reports whether unit u of this node has no child map.
func (n *Node) IsLeafUnit(u int) bool {
	_, ok := n.Children[u]
	return !ok
}

// GHSOM is a trained growing hierarchical self-organizing map.
type GHSOM struct {
	cfg   Config
	dim   int
	mean  []float64
	mqe0  float64
	root  *Node
	nodes []*Node // all nodes in training (BFS) order, nodes[i].ID == i
	trace *GrowthTrace
}

// Config returns the configuration the model was trained with.
func (g *GHSOM) Config() Config { return g.cfg }

// Dim returns the input dimension.
func (g *GHSOM) Dim() int { return g.dim }

// MQE0 returns the layer-0 quantization error (mean distance of the
// training data to its global mean) that anchors the tau2 criterion.
func (g *GHSOM) MQE0() float64 { return g.mqe0 }

// Mean returns a copy of the layer-0 mean vector.
func (g *GHSOM) Mean() []float64 {
	out := make([]float64, len(g.mean))
	copy(out, g.mean)
	return out
}

// Root returns the layer-1 node.
func (g *GHSOM) Root() *Node { return g.root }

// Nodes returns all nodes in stable training order. The returned slice is
// shared; callers must not modify it.
func (g *GHSOM) Nodes() []*Node { return g.nodes }

// Node returns the node with the given ID, or nil if out of range.
func (g *GHSOM) Node(id int) *Node {
	if id < 0 || id >= len(g.nodes) {
		return nil
	}
	return g.nodes[id]
}

// Trace returns the growth trace recorded during training, or nil when
// tracing was disabled.
func (g *GHSOM) Trace() *GrowthTrace { return g.trace }

// newRNG builds the model's deterministic random source.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
