package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"ghsom/internal/vecmath"
)

// TestTrainMatrixMatchesSliceAdapter proves the zero-copy entry point and
// the slice adapter are the same model: byte-identical serialized output,
// for both training rules.
func TestTrainMatrixMatchesSliceAdapter(t *testing.T) {
	data := clusteredData(900, 6)
	mat, err := vecmath.MatrixFromRows(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []bool{false, true} {
		cfg := trainCfgForParallelTest(2)
		cfg.Batch = batch
		fromSlices, err := Train(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fromMatrix, err := TrainMatrix(mat, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := fromSlices.Save(&a); err != nil {
			t.Fatal(err)
		}
		if err := fromMatrix.Save(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("batch=%v: TrainMatrix model differs from Train model", batch)
		}
	}
}

// TestTrainMatrixSubsetMatchesGather proves an index selection trains the
// same model as physically gathering the rows.
func TestTrainMatrixSubsetMatchesGather(t *testing.T) {
	data := clusteredData(1000, 7)
	mat, err := vecmath.MatrixFromRows(data)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 0, 500)
	for i := 0; i < len(data); i += 2 {
		idx = append(idx, i)
	}
	gathered := make([][]float64, len(idx))
	for k, i := range idx {
		gathered[k] = data[i]
	}
	cfg := trainCfgForParallelTest(0)
	fromView, err := TrainMatrix(mat, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromRows, err := Train(gathered, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := fromView.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := fromRows.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("subset-view model differs from gathered-rows model")
	}
}

func TestTrainMatrixValidation(t *testing.T) {
	mat, err := vecmath.MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if _, err := TrainMatrix(mat, []int{0, 2}, cfg); !errors.Is(err, vecmath.ErrBadShape) {
		t.Errorf("out-of-range idx err = %v", err)
	}
	if _, err := TrainMatrix(mat, []int{}, cfg); !errors.Is(err, ErrNoData) {
		t.Errorf("empty idx err = %v", err)
	}
	empty, err := vecmath.NewMatrix(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainMatrix(empty, nil, cfg); !errors.Is(err, ErrNoData) {
		t.Errorf("empty matrix err = %v", err)
	}
	bad, err := vecmath.MatrixFromRows([][]float64{{1, 2}, {3, math.NaN()}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainMatrix(bad, nil, cfg); err == nil {
		t.Error("NaN row accepted")
	}
}
