package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ghsom/internal/som"
	"ghsom/internal/vecmath"
)

// blobs generates n points per center from tight gaussian blobs.
func blobs(rng *rand.Rand, nPer int, spread float64, centers ...[]float64) [][]float64 {
	data := make([][]float64, 0, nPer*len(centers))
	for _, c := range centers {
		for i := 0; i < nPer; i++ {
			x := make([]float64, len(c))
			for d := range x {
				x[d] = c[d] + rng.NormFloat64()*spread
			}
			data = append(data, x)
		}
	}
	return data
}

// fourBlobs is the standard test workload: four well-separated clusters in
// 2D, enough structure to force both horizontal growth and (with small
// tau2) vertical expansion.
func fourBlobs(seed int64, nPer int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	return blobs(rng, nPer, 0.3,
		[]float64{0, 0}, []float64{10, 0}, []float64{0, 10}, []float64{10, 10})
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.EpochsPerGrowth = 3
	cfg.FineTuneEpochs = 3
	cfg.MaxGrowIters = 8
	cfg.MinMapData = 10
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"tau1 zero", func(c *Config) { c.Tau1 = 0 }},
		{"tau1 above one", func(c *Config) { c.Tau1 = 1.5 }},
		{"tau2 zero", func(c *Config) { c.Tau2 = 0 }},
		{"tau2 negative", func(c *Config) { c.Tau2 = -0.1 }},
		{"maxDepth zero", func(c *Config) { c.MaxDepth = 0 }},
		{"maxMapUnits small", func(c *Config) { c.MaxMapUnits = 3 }},
		{"negative growIters", func(c *Config) { c.MaxGrowIters = -1 }},
		{"minMapData zero", func(c *Config) { c.MinMapData = 0 }},
		{"epochs zero", func(c *Config) { c.EpochsPerGrowth = 0 }},
		{"negative fineTune", func(c *Config) { c.FineTuneEpochs = -1 }},
		{"alpha0 zero", func(c *Config) { c.Alpha0 = 0 }},
		{"alphaEnd above alpha0", func(c *Config) { c.Alpha0 = 0.1; c.AlphaEnd = 0.5 }},
		{"bad kernel", func(c *Config) { c.Kernel = som.Kernel(77) }},
		{"bad decay", func(c *Config) { c.Decay = som.Decay(0) }},
		{"negative spread", func(c *Config) { c.InitSpread = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Errorf("Validate = %v, want ErrBadConfig", err)
			}
			if _, err := Train(fourBlobs(1, 5), cfg); err == nil {
				t.Error("Train accepted invalid config")
			}
		})
	}
}

func TestTrainRejectsBadData(t *testing.T) {
	cfg := quickConfig()
	if _, err := Train(nil, cfg); !errors.Is(err, ErrNoData) {
		t.Errorf("Train(nil) err = %v, want ErrNoData", err)
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, cfg); err == nil {
		t.Error("Train accepted ragged data")
	}
	if _, err := Train([][]float64{{1, math.NaN()}}, cfg); err == nil {
		t.Error("Train accepted NaN data")
	}
	if _, err := Train([][]float64{{1, math.Inf(1)}}, cfg); err == nil {
		t.Error("Train accepted Inf data")
	}
}

func TestTrainBasicStructure(t *testing.T) {
	data := fourBlobs(2, 100)
	cfg := quickConfig()
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dim() != 2 {
		t.Errorf("Dim = %d", g.Dim())
	}
	if g.MQE0() <= 0 {
		t.Errorf("MQE0 = %v, want > 0", g.MQE0())
	}
	if g.Root() == nil {
		t.Fatal("no root")
	}
	if g.Root().Depth != 1 {
		t.Errorf("root depth = %d", g.Root().Depth)
	}
	if g.Root().ParentUnit != -1 {
		t.Errorf("root ParentUnit = %d, want -1", g.Root().ParentUnit)
	}
	st := g.Stats()
	if st.Maps < 1 || st.Units < 4 {
		t.Errorf("stats = %+v", st)
	}
	// Four separated blobs need at least 4 units to quantize.
	if st.Units < 4 {
		t.Errorf("too few units: %d", st.Units)
	}
	// Node IDs must be dense and match slice positions.
	for i, n := range g.Nodes() {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
	}
}

func TestTrainSeparatesBlobCenters(t *testing.T) {
	data := fourBlobs(3, 150)
	cfg := quickConfig()
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	seen := make(map[UnitKey]bool)
	for _, c := range centers {
		p := g.Route(c)
		if p.QE > 2 {
			t.Errorf("center %v lands far from any unit: QE %v", c, p.QE)
		}
		seen[p.Key()] = true
	}
	if len(seen) < 4 {
		t.Errorf("blob centers share leaf units: %d distinct of 4", len(seen))
	}
}

func TestTrainGrowsBeyondInitialMap(t *testing.T) {
	// With 8 well-separated blobs and a strict tau1, the layer-1 map must
	// grow beyond 2x2 to meet the criterion.
	rng := rand.New(rand.NewSource(4))
	data := blobs(rng, 60, 0.2,
		[]float64{0, 0}, []float64{8, 0}, []float64{16, 0}, []float64{24, 0},
		[]float64{0, 8}, []float64{8, 8}, []float64{16, 8}, []float64{24, 8})
	cfg := quickConfig()
	cfg.Tau1 = 0.2
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Root().Map.Units() <= 4 {
		t.Errorf("root map did not grow: %dx%d", g.Root().Map.Rows(), g.Root().Map.Cols())
	}
}

func TestTrainExpandsHierarchy(t *testing.T) {
	// Hierarchical data: two macro-clusters, each containing two
	// micro-clusters. With tau2 small, units should expand.
	rng := rand.New(rand.NewSource(5))
	data := blobs(rng, 120, 0.1,
		[]float64{0, 0}, []float64{1.5, 0}, // macro A, micro 1+2
		[]float64{20, 20}, []float64{21.5, 20}) // macro B, micro 1+2
	cfg := quickConfig()
	cfg.Tau1 = 0.8 // keep layer-1 small
	cfg.Tau2 = 0.01
	cfg.MaxGrowIters = 2
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.MaxDepth < 2 {
		t.Errorf("hierarchy did not expand: depth = %d, stats %v", st.MaxDepth, st)
	}
	// Parent links must be consistent.
	for _, n := range g.Nodes() {
		for u, c := range n.Children {
			if c.ParentUnit != u {
				t.Errorf("child node %d ParentUnit = %d, want %d", c.ID, c.ParentUnit, u)
			}
			if c.Depth != n.Depth+1 {
				t.Errorf("child node %d depth = %d, parent depth %d", c.ID, c.Depth, n.Depth)
			}
		}
	}
}

func TestTrainRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := blobs(rng, 200, 1.0, []float64{0, 0})
	cfg := quickConfig()
	cfg.Tau2 = 0.0001 // wants infinite depth
	cfg.Tau1 = 0.99
	cfg.MaxDepth = 2
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.MaxDepth > 2 {
		t.Errorf("depth %d exceeds MaxDepth 2", st.MaxDepth)
	}
}

func TestTrainRespectsMaxMapUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := blobs(rng, 40, 0.2,
		[]float64{0, 0}, []float64{5, 0}, []float64{10, 0}, []float64{15, 0},
		[]float64{0, 5}, []float64{5, 5}, []float64{10, 5}, []float64{15, 5})
	cfg := quickConfig()
	cfg.Tau1 = 0.01 // wants a huge map
	cfg.MaxMapUnits = 9
	cfg.MaxGrowIters = 50
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		// One growth step adds a full row or column, so the cap can be
		// exceeded by at most one insertion's worth of units.
		if n.Map.Units() > cfg.MaxMapUnits+maxInt(n.Map.Rows(), n.Map.Cols()) {
			t.Errorf("node %d grew to %d units, cap %d", n.ID, n.Map.Units(), cfg.MaxMapUnits)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestTrainDeterministic(t *testing.T) {
	data := fourBlobs(8, 80)
	cfg := quickConfig()
	g1, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Nodes()) != len(g2.Nodes()) {
		t.Fatalf("node counts differ: %d vs %d", len(g1.Nodes()), len(g2.Nodes()))
	}
	for i := range g1.Nodes() {
		n1, n2 := g1.Nodes()[i], g2.Nodes()[i]
		if n1.Map.Rows() != n2.Map.Rows() || n1.Map.Cols() != n2.Map.Cols() {
			t.Fatalf("node %d shapes differ", i)
		}
		for u := 0; u < n1.Map.Units(); u++ {
			if !vecmath.Equal(n1.Map.Weight(u), n2.Map.Weight(u), 0) {
				t.Fatalf("node %d unit %d weights differ", i, u)
			}
		}
	}
}

func TestTrainSeedChangesModel(t *testing.T) {
	data := fourBlobs(9, 80)
	cfg := quickConfig()
	g1, _ := Train(data, cfg)
	cfg.Seed = 999
	g2, _ := Train(data, cfg)
	same := len(g1.Nodes()) == len(g2.Nodes())
	if same {
		for i := range g1.Nodes() {
			n1, n2 := g1.Nodes()[i], g2.Nodes()[i]
			if n1.Map.Units() != n2.Map.Units() {
				same = false
				break
			}
			for u := 0; same && u < n1.Map.Units(); u++ {
				if !vecmath.Equal(n1.Map.Weight(u), n2.Map.Weight(u), 0) {
					same = false
				}
			}
		}
	}
	if same {
		t.Error("different seeds produced identical models (suspicious)")
	}
}

func TestTrainConstantData(t *testing.T) {
	// All-identical records: mqe0 = 0, no growth, no expansion, no panic.
	data := make([][]float64, 50)
	for i := range data {
		data[i] = []float64{3, 3, 3}
	}
	cfg := quickConfig()
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.MQE0() != 0 {
		t.Errorf("MQE0 = %v, want 0", g.MQE0())
	}
	st := g.Stats()
	if st.Maps != 1 || st.MaxDepth != 1 {
		t.Errorf("constant data should yield a single map: %v", st)
	}
	p := g.Route([]float64{3, 3, 3})
	if p.QE > 0.5 {
		t.Errorf("QE at training point = %v", p.QE)
	}
}

func TestTrainSingleRecord(t *testing.T) {
	cfg := quickConfig()
	cfg.MinMapData = 1
	g, err := Train([][]float64{{1, 2}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := g.Route([]float64{1, 2})
	if p.QE > 0.5 {
		t.Errorf("single-record model QE = %v", p.QE)
	}
}

func TestBatchTrainingMode(t *testing.T) {
	data := fourBlobs(10, 80)
	cfg := quickConfig()
	cfg.Batch = true
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Batch-trained model must still quantize the blobs tightly.
	for _, c := range [][]float64{{0, 0}, {10, 10}} {
		if p := g.Route(c); p.QE > 2 {
			t.Errorf("batch model QE at %v = %v", c, p.QE)
		}
	}
}

func TestUnitQEAndCountsConsistent(t *testing.T) {
	data := fourBlobs(11, 60)
	g, err := Train(data, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Root unit counts must sum to the full data set.
	var total int
	for _, c := range g.Root().UnitCount {
		total += c
	}
	if total != len(data) {
		t.Errorf("root UnitCount sums to %d, want %d", total, len(data))
	}
	for _, n := range g.Nodes() {
		if len(n.UnitQE) != n.Map.Units() || len(n.UnitCount) != n.Map.Units() {
			t.Errorf("node %d stats length mismatch", n.ID)
		}
		for u, qe := range n.UnitQE {
			if qe < 0 {
				t.Errorf("node %d unit %d negative QE", n.ID, u)
			}
			if n.UnitCount[u] == 0 && qe != 0 {
				t.Errorf("node %d unit %d empty but QE %v", n.ID, u, qe)
			}
		}
	}
}

func TestOrientationCorners(t *testing.T) {
	m, err := som.New(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Gradient map: weight = (row, col).
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			_ = m.SetWeight(m.Index(r, c), []float64{float64(r), float64(c)})
		}
	}
	corners := orientationCorners(m, m.Index(1, 1))
	if len(corners) != 4 {
		t.Fatalf("got %d corners", len(corners))
	}
	// For the center unit: up-left direction = ((-1,0)+(0,-1))/2 = (-0.5,-0.5).
	want := [][]float64{
		{-0.5, -0.5}, {-0.5, 0.5}, {0.5, -0.5}, {0.5, 0.5},
	}
	for i := range want {
		if !vecmath.Equal(corners[i], want[i], 1e-12) {
			t.Errorf("corner %d = %v, want %v", i, corners[i], want[i])
		}
	}
	// Corner unit (0,0): out-of-grid directions contribute zero.
	corners = orientationCorners(m, m.Index(0, 0))
	// up and left are zero; up-left mix = (0,0); down-right = ((1,0)+(0,1))/2.
	if !vecmath.Equal(corners[0], []float64{0, 0}, 1e-12) {
		t.Errorf("corner-unit up-left = %v, want origin", corners[0])
	}
	if !vecmath.Equal(corners[3], []float64{0.5, 0.5}, 1e-12) {
		t.Errorf("corner-unit down-right = %v", corners[3])
	}
}

func TestOrientChildrenToggleChangesChildren(t *testing.T) {
	// Hierarchical data that forces expansion; the toggle must flip child
	// initialization while both configurations still train successfully.
	rng := rand.New(rand.NewSource(60))
	data := blobs(rng, 120, 0.1,
		[]float64{0, 0}, []float64{1.5, 0},
		[]float64{20, 20}, []float64{21.5, 20})
	cfg := quickConfig()
	cfg.Tau1 = 0.8
	cfg.Tau2 = 0.01
	cfg.OrientChildren = true
	gOn, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OrientChildren = false
	gOff, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gOn.Stats().MaxDepth < 2 || gOff.Stats().MaxDepth < 2 {
		t.Skip("no expansion occurred; toggle not exercised")
	}
	// Both models quantize the micro-clusters tightly.
	for _, c := range [][]float64{{0, 0}, {1.5, 0}, {20, 20}, {21.5, 20}} {
		if p := gOn.Route(c); p.QE > 1 {
			t.Errorf("oriented model QE at %v = %v", c, p.QE)
		}
		if p := gOff.Route(c); p.QE > 1 {
			t.Errorf("unoriented model QE at %v = %v", c, p.QE)
		}
	}
}

func TestGrowthTrace(t *testing.T) {
	data := fourBlobs(12, 80)
	cfg := quickConfig()
	cfg.CollectTrace = true
	cfg.Tau1 = 0.2
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Trace()
	if tr == nil || len(tr.Events) == 0 {
		t.Fatal("trace empty despite CollectTrace")
	}
	rootEvents := tr.ForNode(g.Root().ID)
	if len(rootEvents) == 0 {
		t.Fatal("no events for root")
	}
	// Iterations must start at 0 and increase; unit counts must be
	// non-decreasing within a node.
	prevIter, prevUnits := -1, 0
	for _, e := range rootEvents {
		if e.Iteration != prevIter+1 {
			t.Errorf("iteration jump: %d after %d", e.Iteration, prevIter)
		}
		if e.Rows*e.Cols < prevUnits {
			t.Errorf("unit count decreased: %d -> %d", prevUnits, e.Rows*e.Cols)
		}
		prevIter, prevUnits = e.Iteration, e.Rows*e.Cols
	}
	// Without the flag there is no trace.
	cfg.CollectTrace = false
	g2, _ := Train(data, cfg)
	if g2.Trace() != nil {
		t.Error("trace collected without CollectTrace")
	}
}
