package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"ghsom/internal/vecmath"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	data := fourBlobs(40, 80)
	cfg := quickConfig()
	cfg.Tau1 = 0.5
	cfg.Tau2 = 0.02
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Dim() != g.Dim() {
		t.Errorf("dim %d != %d", g2.Dim(), g.Dim())
	}
	if g2.MQE0() != g.MQE0() {
		t.Errorf("mqe0 %v != %v", g2.MQE0(), g.MQE0())
	}
	if !vecmath.Equal(g2.Mean(), g.Mean(), 0) {
		t.Error("mean differs")
	}
	if len(g2.Nodes()) != len(g.Nodes()) {
		t.Fatalf("node count %d != %d", len(g2.Nodes()), len(g.Nodes()))
	}
	for i := range g.Nodes() {
		n1, n2 := g.Nodes()[i], g2.Nodes()[i]
		if n1.Depth != n2.Depth || n1.ParentUnit != n2.ParentUnit {
			t.Errorf("node %d metadata differs", i)
		}
		if n1.Map.Rows() != n2.Map.Rows() || n1.Map.Cols() != n2.Map.Cols() {
			t.Errorf("node %d shape differs", i)
		}
		for u := 0; u < n1.Map.Units(); u++ {
			if !vecmath.Equal(n1.Map.Weight(u), n2.Map.Weight(u), 0) {
				t.Errorf("node %d unit %d weight differs", i, u)
			}
		}
		if len(n1.Children) != len(n2.Children) {
			t.Errorf("node %d children count differs", i)
		}
		for u, c1 := range n1.Children {
			c2, ok := n2.Children[u]
			if !ok || c1.ID != c2.ID {
				t.Errorf("node %d child at unit %d differs", i, u)
			}
		}
	}
}

func TestRoutingIdenticalAfterRoundTrip(t *testing.T) {
	data := fourBlobs(41, 80)
	cfg := quickConfig()
	cfg.Tau2 = 0.02
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		x := []float64{rng.NormFloat64() * 15, rng.NormFloat64() * 15}
		p1, p2 := g.Route(x), g2.Route(x)
		if p1 != p2 {
			t.Fatalf("placement differs after round trip: %+v vs %+v", p1, p2)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"not json", "this is not json"},
		{"empty object", "{}"},
		{"wrong version", `{"version":999,"dim":2,"nodes":[{"id":0,"rows":2,"cols":2,"weights":[]}]}`},
		{"no nodes", `{"version":1,"dim":2,"nodes":[]}`},
		{"bad dim", `{"version":1,"dim":0,"nodes":[{"id":0}]}`},
		{"weight count mismatch", `{"version":1,"dim":2,"nodes":[{"id":0,"parentId":-1,"rows":2,"cols":2,"weights":[1,2,3]}]}`},
		{"out of order ids", `{"version":1,"dim":1,"nodes":[{"id":5,"parentId":-1,"rows":1,"cols":1,"weights":[1]}]}`},
		{"dangling child", `{"version":1,"dim":1,"nodes":[{"id":0,"parentId":-1,"rows":1,"cols":1,"weights":[1],"children":{"0":9}}]}`},
		{"child unit out of range", `{"version":1,"dim":1,"nodes":[{"id":0,"parentId":-1,"rows":1,"cols":1,"weights":[1],"children":{"7":0}}]}`},
		{"no root", `{"version":1,"dim":1,"nodes":[{"id":0,"parentId":0,"rows":1,"cols":1,"weights":[1]}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tt.in)); err == nil {
				t.Error("Load accepted malformed input")
			}
		})
	}
}

func TestSaveLoadPreservesConfig(t *testing.T) {
	data := fourBlobs(43, 40)
	cfg := quickConfig()
	cfg.Tau1 = 0.42
	cfg.Tau2 = 0.077
	g, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Config().Tau1 != 0.42 || g2.Config().Tau2 != 0.077 {
		t.Errorf("config not preserved: %+v", g2.Config())
	}
}

// TestLoadRejectsNonBFSOrder pins the training-order invariant the
// compiled representation relies on: the root must be node 0 and every
// child must follow its parent. A hand-crafted envelope with the root at
// ID 1 would otherwise load "successfully" and then be misrouted by the
// compiled descent, which starts at node 0.
func TestLoadRejectsNonBFSOrder(t *testing.T) {
	// Root at node 1, child (depth-2 map) at node 0, cross-linked.
	rootAt1 := `{"version":1,"dim":1,"mean":[0],"nodes":[
		{"id":0,"depth":2,"parentId":1,"parentUnit":0,"rows":1,"cols":1,"weights":[0]},
		{"id":1,"depth":1,"parentId":-1,"parentUnit":-1,"rows":1,"cols":2,"weights":[0,1],
		 "children":{"0":0}}]}`
	if _, err := Load(strings.NewReader(rootAt1)); err == nil {
		t.Fatal("envelope with root at node 1 accepted")
	} else if !strings.Contains(err.Error(), "root") && !strings.Contains(err.Error(), "BFS") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Root correctly at 0 but referencing an earlier... itself is caught
	// elsewhere; a child id equal to its parent's must be rejected by the
	// BFS-order check.
	selfChild := `{"version":1,"dim":1,"mean":[0],"nodes":[
		{"id":0,"depth":1,"parentId":-1,"parentUnit":-1,"rows":1,"cols":2,"weights":[0,1],
		 "children":{"0":0}}]}`
	if _, err := Load(strings.NewReader(selfChild)); err == nil {
		t.Fatal("envelope with self-child accepted")
	}
}

// TestReadCompiledBinaryHugeClaimTinyBody pins the memory-safety contract
// of the binary loader: a few hundred bytes of headers claiming a
// near-cap model (16 maps of 1024x1024 units) must fail on the missing
// payload without allocating the claimed tables.
func TestReadCompiledBinaryHugeClaimTinyBody(t *testing.T) {
	var b bytes.Buffer
	b.WriteString("GHSOMCB1")
	le := binary.LittleEndian
	cfgJSON, err := json.Marshal(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	binary.Write(&b, le, uint32(len(cfgJSON)))
	b.Write(cfgJSON)
	binary.Write(&b, le, uint32(8))  // dim
	binary.Write(&b, le, float64(1)) // mqe0
	for i := 0; i < 8; i++ {
		binary.Write(&b, le, float64(0)) // mean
	}
	binary.Write(&b, le, uint32(16)) // node count
	for i := 0; i < 16; i++ {
		parent := int32(-1)
		if i > 0 {
			parent = 0
		}
		binary.Write(&b, le, [4]int32{parent, int32(i), 1024, 1024})
	}
	// No payload tables follow: 16 Mi units were claimed by ~300 bytes.
	if _, err := ReadCompiledBinary(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("header-only blob claiming 16Mi units accepted")
	}
}
