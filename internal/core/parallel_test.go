package core

import (
	"bytes"
	"math/rand"
	"testing"
)

func clusteredData(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{
		{0, 0, 0}, {5, 5, 0}, {0, 5, 5}, {5, 0, 5},
	}
	data := make([][]float64, n)
	for i := range data {
		c := centers[rng.Intn(len(centers))]
		data[i] = []float64{
			c[0] + rng.NormFloat64()*0.3,
			c[1] + rng.NormFloat64()*0.3,
			c[2] + rng.NormFloat64()*0.3,
		}
	}
	return data
}

// trainCfgForParallelTest builds a config that reliably produces a
// multi-level hierarchy on the clustered data, so the parallel expansion
// path actually runs with more than one job per level.
func trainCfgForParallelTest(parallelism int) Config {
	cfg := DefaultConfig()
	cfg.Tau1 = 0.5
	cfg.Tau2 = 0.05
	cfg.MinMapData = 20
	cfg.MaxDepth = 3
	cfg.Parallelism = parallelism
	return cfg
}

// TestTrainByteIdenticalAcrossParallelism is the headline determinism
// guarantee: for a fixed seed and data, serial and parallel training must
// produce byte-identical serialized models.
func TestTrainByteIdenticalAcrossParallelism(t *testing.T) {
	data := clusteredData(1200, 4)
	serialize := func(p int) []byte {
		g, err := Train(data, trainCfgForParallelTest(p))
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatalf("parallelism %d: save: %v", p, err)
		}
		return buf.Bytes()
	}
	ref := serialize(1)
	for _, p := range []int{2, 8, 0} {
		if got := serialize(p); !bytes.Equal(got, ref) {
			t.Errorf("Parallelism=%d model differs from Parallelism=1 (lens %d vs %d)",
				p, len(got), len(ref))
		}
	}

	// Batch training must hold the same guarantee (it adds the parallel
	// per-epoch BMU pass inside TrainBatch).
	batch := func(p int) []byte {
		cfg := trainCfgForParallelTest(p)
		cfg.Batch = true
		g, err := Train(data, cfg)
		if err != nil {
			t.Fatalf("batch parallelism %d: %v", p, err)
		}
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	refBatch := batch(1)
	if got := batch(8); !bytes.Equal(got, refBatch) {
		t.Error("batch training differs between Parallelism=1 and Parallelism=8")
	}
}

// TestTrainParallelStructure sanity-checks that the parallel path produces
// a real hierarchy (the guarantee above would hold trivially for a single
// root map).
func TestTrainParallelStructure(t *testing.T) {
	data := clusteredData(1200, 4)
	g, err := Train(data, trainCfgForParallelTest(8))
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Maps < 3 {
		t.Fatalf("expected a multi-map hierarchy, got %d maps", st.Maps)
	}
	// Node IDs must be the stable BFS order: the slice index, with depths
	// non-decreasing.
	prevDepth := 0
	for i, n := range g.Nodes() {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
		if n.Depth < prevDepth {
			t.Errorf("node %d depth %d after depth %d: not BFS order", i, n.Depth, prevDepth)
		}
		prevDepth = n.Depth
	}
}

// TestTrainTraceIdenticalAcrossParallelism pins the growth-trace ordering:
// events are grouped per node in ID order regardless of worker count.
func TestTrainTraceIdenticalAcrossParallelism(t *testing.T) {
	data := clusteredData(900, 11)
	trace := func(p int) []GrowthEvent {
		cfg := trainCfgForParallelTest(p)
		cfg.CollectTrace = true
		g, err := Train(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g.Trace().Events
	}
	ref := trace(1)
	got := trace(8)
	if len(ref) != len(got) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ref), len(got))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("trace event %d differs: %+v vs %+v", i, ref[i], got[i])
		}
	}
}

func TestDeriveSeedStable(t *testing.T) {
	// Distinct paths must get distinct streams; same path the same stream.
	seen := map[int64]string{}
	root := deriveSeed(1, -1)
	seen[root] = "root"
	for u := 0; u < 32; u++ {
		s := deriveSeed(root, u)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %s and root/%d", prev, u)
		}
		seen[s] = "root/" + string(rune('0'+u))
		for v := 0; v < 8; v++ {
			s2 := deriveSeed(s, v)
			if prev, dup := seen[s2]; dup {
				t.Fatalf("seed collision at depth 2 (%s)", prev)
			}
			seen[s2] = "deep"
		}
	}
	if deriveSeed(1, -1) != root {
		t.Error("deriveSeed not stable across calls")
	}
}
