package core

import (
	"encoding/json"
	"fmt"
	"io"

	"ghsom/internal/som"
)

// modelJSON is the on-disk representation of a GHSOM.
type modelJSON struct {
	Version int        `json:"version"`
	Config  Config     `json:"config"`
	Dim     int        `json:"dim"`
	Mean    []float64  `json:"mean"`
	MQE0    float64    `json:"mqe0"`
	Nodes   []nodeJSON `json:"nodes"`
}

type nodeJSON struct {
	ID         int            `json:"id"`
	Depth      int            `json:"depth"`
	ParentID   int            `json:"parentId"` // -1 for root
	ParentUnit int            `json:"parentUnit"`
	Rows       int            `json:"rows"`
	Cols       int            `json:"cols"`
	Weights    []float64      `json:"weights"` // row-major flattened, Rows*Cols*Dim
	UnitQE     []float64      `json:"unitQe"`
	UnitCount  []int          `json:"unitCount"`
	Children   map[string]int `json:"children,omitempty"` // unit -> child node ID
}

const modelVersion = 1

// Save writes the model as JSON to w.
func (g *GHSOM) Save(w io.Writer) error {
	mj := modelJSON{
		Version: modelVersion,
		Config:  g.cfg,
		Dim:     g.dim,
		Mean:    g.mean,
		MQE0:    g.mqe0,
	}
	parentOf := map[int]int{g.root.ID: -1}
	for _, n := range g.nodes {
		for _, c := range n.Children {
			parentOf[c.ID] = n.ID
		}
	}
	for _, n := range g.nodes {
		nj := nodeJSON{
			ID:         n.ID,
			Depth:      n.Depth,
			ParentID:   parentOf[n.ID],
			ParentUnit: n.ParentUnit,
			Rows:       n.Map.Rows(),
			Cols:       n.Map.Cols(),
			UnitQE:     n.UnitQE,
			UnitCount:  n.UnitCount,
		}
		nj.Weights = make([]float64, 0, n.Map.Units()*g.dim)
		for u := 0; u < n.Map.Units(); u++ {
			nj.Weights = append(nj.Weights, n.Map.Weight(u)...)
		}
		if len(n.Children) > 0 {
			nj.Children = make(map[string]int, len(n.Children))
			for u, c := range n.Children {
				nj.Children[fmt.Sprint(u)] = c.ID
			}
		}
		mj.Nodes = append(mj.Nodes, nj)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(mj); err != nil {
		return fmt.Errorf("core: encode model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*GHSOM, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if mj.Version != modelVersion {
		return nil, fmt.Errorf("core: unsupported model version %d, want %d", mj.Version, modelVersion)
	}
	if mj.Dim < 1 {
		return nil, fmt.Errorf("core: model dim %d invalid", mj.Dim)
	}
	if len(mj.Nodes) == 0 {
		return nil, fmt.Errorf("core: model has no nodes")
	}
	g := &GHSOM{cfg: mj.Config, dim: mj.Dim, mean: mj.Mean, mqe0: mj.MQE0}
	g.nodes = make([]*Node, len(mj.Nodes))
	// First pass: rebuild maps.
	for i, nj := range mj.Nodes {
		if nj.ID != i {
			return nil, fmt.Errorf("core: node %d stored out of order (id %d)", i, nj.ID)
		}
		if nj.Depth < 1 {
			return nil, fmt.Errorf("core: node %d has depth %d, want >= 1", i, nj.Depth)
		}
		m, err := som.New(nj.Rows, nj.Cols, mj.Dim)
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", i, err)
		}
		want := nj.Rows * nj.Cols * mj.Dim
		if len(nj.Weights) != want {
			return nil, fmt.Errorf("core: node %d has %d weights, want %d", i, len(nj.Weights), want)
		}
		for u := 0; u < m.Units(); u++ {
			if err := m.SetWeight(u, nj.Weights[u*mj.Dim:(u+1)*mj.Dim]); err != nil {
				return nil, fmt.Errorf("core: node %d unit %d: %w", i, u, err)
			}
		}
		g.nodes[i] = &Node{
			ID:         nj.ID,
			Depth:      nj.Depth,
			Map:        m,
			ParentUnit: nj.ParentUnit,
			UnitQE:     nj.UnitQE,
			UnitCount:  nj.UnitCount,
		}
	}
	// Second pass: rebuild child links.
	for i, nj := range mj.Nodes {
		if nj.ParentID == -1 {
			if g.root != nil {
				return nil, fmt.Errorf("core: multiple roots (%d and %d)", g.root.ID, i)
			}
			if nj.Depth != 1 {
				return nil, fmt.Errorf("core: root node %d has depth %d, want 1", i, nj.Depth)
			}
			g.root = g.nodes[i]
		}
		if len(nj.Children) == 0 {
			continue
		}
		g.nodes[i].Children = make(map[int]*Node, len(nj.Children))
		for unitStr, childID := range nj.Children {
			var unit int
			if _, err := fmt.Sscanf(unitStr, "%d", &unit); err != nil {
				return nil, fmt.Errorf("core: node %d child key %q: %w", i, unitStr, err)
			}
			if childID < 0 || childID >= len(g.nodes) {
				return nil, fmt.Errorf("core: node %d child id %d out of range", i, childID)
			}
			if unit < 0 || unit >= g.nodes[i].Map.Units() {
				return nil, fmt.Errorf("core: node %d child unit %d out of range", i, unit)
			}
			if g.nodes[childID].Depth != g.nodes[i].Depth+1 {
				return nil, fmt.Errorf("core: node %d (depth %d) has child %d at depth %d",
					i, g.nodes[i].Depth, childID, g.nodes[childID].Depth)
			}
			g.nodes[i].Children[unit] = g.nodes[childID]
		}
	}
	if g.root == nil {
		return nil, fmt.Errorf("core: model has no root node")
	}
	return g, nil
}
